package acache

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
)

// durQuery pads every relation to width 4 so a 300-tuple window spans
// several 4096-byte spill pages (128 tuples each) and the small test
// watermark actually forces demotions.
func durQuery() *Query {
	return NewQuery().
		WindowedRelation("R", 300, "A", "P1", "P2", "P3").
		WindowedRelation("S", 300, "A", "B", "P1", "P2").
		WindowedRelation("T", 300, "B", "P1", "P2", "P3").
		Join("R.A", "S.A").
		Join("S.B", "T.B")
}

// driveDur streams n pseudo-random appends (seeded rng) into e.
// (resultLog, the ordered delta recorder, lives in server_sharing_test.go.)
func driveDur(e *Engine, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			e.Append("R", rng.Int63n(60), 0, 0, 0)
		case 1:
			e.Append("S", rng.Int63n(60), rng.Int63n(60), 0, 0)
		default:
			e.Append("T", rng.Int63n(60), 0, 0, 0)
		}
	}
}

func durOpts(dir string) Options {
	return Options{
		ReoptInterval: 100,
		Seed:          7,
		Tier:          TierOptions{Dir: dir, HotBytes: 4096, PageBytes: 4096},
	}
}

// sameDeltas asserts the two delta streams are equal as multisets. Within a
// single update the emission order follows store iteration order, which a
// bulk-restored slab legitimately permutes, so ordered comparison would
// false-alarm; multiset equality over tagged insert/delete rows is the exact
// correctness contract.
func sameDeltas(t *testing.T, got, want *resultLog) {
	t.Helper()
	if len(got.rows) != len(want.rows) {
		t.Fatalf("%d result rows, control has %d", len(got.rows), len(want.rows))
	}
	g := append([]string(nil), got.rows...)
	w := append([]string(nil), want.rows...)
	sort.Strings(g)
	sort.Strings(w)
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("delta multiset mismatch at %d: %s vs %s", i, g[i], w[i])
		}
	}
}

// TestDurableWarmRestartCloseKeep checks the clean-shutdown path: CloseKeep
// writes a by-reference checkpoint, the spill files stay on disk, and the
// reopened engine continues producing exactly the output stream an
// uninterrupted engine produces.
func TestDurableWarmRestartCloseKeep(t *testing.T) {
	dir := t.TempDir()

	// Control: same query, same options (minus durability), uninterrupted.
	ctrl, err := durQuery().Build(Options{ReoptInterval: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	var want resultLog
	want.attach(ctrl)
	crng := rand.New(rand.NewSource(99))
	driveDur(ctrl, crng, 900)

	var got resultLog
	a, warm, err := durQuery().BuildDurable(durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("fresh directory reported a warm start")
	}
	got.attach(a)
	rng := rand.New(rand.NewSource(99))
	driveDur(a, rng, 600)
	if st := a.Stats(); st.TierColdBytes == 0 || st.TierDemotions == 0 {
		t.Fatalf("watermark produced no cold state: %+v", st)
	}
	if err := a.CloseKeep(); err != nil {
		t.Fatal(err)
	}
	// The shutdown checkpoint should be by-reference: smaller than the full
	// inlined window footprint would be, and the spill files must remain.
	if _, err := os.Stat(filepath.Join(dir, "rel0.spill")); err != nil {
		t.Fatalf("CloseKeep removed spill: %v", err)
	}

	b, warm, err := durQuery().BuildDurable(durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("checkpointed directory reported a cold start")
	}
	got.attach(b)
	driveDur(b, rng, 300)

	for _, r := range []string{"R", "S", "T"} {
		if g, w := b.WindowLen(r), ctrl.WindowLen(r); g != w {
			t.Fatalf("window %s: %d tuples after restart, control has %d", r, g, w)
		}
	}
	sameDeltas(t, &got, &want)
	b.Close()
	if _, err := os.Stat(filepath.Join(dir, "engine.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("Close kept the checkpoint: %v", err)
	}
}

// TestDurableKillRestartWAL checks crash recovery: a checkpoint plus a
// synced WAL tail reconstruct the engine exactly, even though the engine was
// never shut down cleanly (we abandon it without Close, as a kill would).
func TestDurableKillRestartWAL(t *testing.T) {
	dir := t.TempDir()

	ctrl, err := durQuery().Build(Options{ReoptInterval: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	var want resultLog
	want.attach(ctrl)
	crng := rand.New(rand.NewSource(17))
	driveDur(ctrl, crng, 1000)

	var got resultLog
	a, _, err := durQuery().BuildDurable(durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	got.attach(a)
	rng := rand.New(rand.NewSource(17))
	driveDur(a, rng, 400)
	if err := a.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	driveDur(a, rng, 300)
	if err := a.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	// Kill: no Close, no CloseKeep. The checkpoint is self-contained and the
	// WAL tail is on disk, so the abandoned engine's spill files (which a
	// fresh build truncates) are not needed.

	b, warm, err := durQuery().BuildDurable(durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !warm {
		t.Fatal("checkpoint+WAL directory reported a cold start")
	}
	got.attach(b)
	driveDur(b, rng, 300)

	for _, r := range []string{"R", "S", "T"} {
		if g, w := b.WindowLen(r), ctrl.WindowLen(r); g != w {
			t.Fatalf("window %s: %d tuples after recovery, control has %d", r, g, w)
		}
	}
	sameDeltas(t, &got, &want)
}

// TestDurableTimeAndPartitionedRestart covers the two other window flavors:
// time-based windows (clock and per-tuple timestamps must survive) and
// partitioned windows (per-partition arrival order must survive).
func TestDurableTimeAndPartitionedRestart(t *testing.T) {
	mk := func() *Query {
		return NewQuery().
			TimeWindowedRelation("R", 50, "A").
			PartitionedRelation("S", "A", 4, "A", "B").
			WindowedRelation("T", 32, "B").
			Join("R.A", "S.A").
			Join("S.B", "T.B")
	}
	drive := func(e *Engine, rng *rand.Rand, from, n int) {
		for i := from; i < from+n; i++ {
			switch rng.Intn(3) {
			case 0:
				e.AppendAt("R", int64(i), rng.Int63n(30))
			case 1:
				e.Append("S", rng.Int63n(8), rng.Int63n(30))
			default:
				e.Append("T", rng.Int63n(30))
			}
		}
	}

	ctrl, err := mk().Build(Options{ReoptInterval: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	var want resultLog
	want.attach(ctrl)
	crng := rand.New(rand.NewSource(5))
	drive(ctrl, crng, 0, 500)
	drive(ctrl, crng, 500, 250)

	dir := t.TempDir()
	var got resultLog
	a, _, err := mk().BuildDurable(durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	got.attach(a)
	rng := rand.New(rand.NewSource(5))
	drive(a, rng, 0, 500)
	if err := a.CloseKeep(); err != nil {
		t.Fatal(err)
	}

	b, warm, err := mk().BuildDurable(durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !warm {
		t.Fatal("expected warm restart")
	}
	got.attach(b)
	drive(b, rng, 500, 250)

	if g, w := b.WindowLen("R"), ctrl.WindowLen("R"); g != w {
		t.Fatalf("time window: %d tuples, control %d", g, w)
	}
	if g, w := b.WindowLen("S"), ctrl.WindowLen("S"); g != w {
		t.Fatalf("partitioned window: %d tuples, control %d", g, w)
	}
	sameDeltas(t, &got, &want)
}

// TestDurableCodecMismatch: a checkpoint referencing a spill file whose
// header does not verify must fail the restore loudly, not silently restart
// cold.
func TestDurableCodecMismatch(t *testing.T) {
	dir := t.TempDir()
	a, _, err := durQuery().BuildDurable(durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	driveDur(a, rng, 600)
	if err := a.CloseKeep(); err != nil {
		t.Fatal(err)
	}
	// Corrupt every spill's header version field (offset 4, little-endian
	// u32); the restore must reject whichever file the checkpoint references.
	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, fmt.Sprintf("rel%d.spill", i))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{0xff}, 4); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if _, _, err := durQuery().BuildDurable(durOpts(dir)); err == nil {
		t.Fatal("corrupted spill codec version did not fail the restore")
	}
}

// TestDurableFDLeak cycles durable engines and asserts the process's open
// file-descriptor count returns to its baseline — the mmap fds, WAL handle,
// and checkpoint temp files must all be released by Close and CloseKeep.
func TestDurableFDLeak(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("fd accounting via /proc/self/fd")
	}
	countFDs := func() int {
		ents, err := os.ReadDir("/proc/self/fd")
		if err != nil {
			t.Fatal(err)
		}
		return len(ents)
	}
	dir := t.TempDir()
	base := countFDs()
	for i := 0; i < 3; i++ {
		e, _, err := durQuery().BuildDurable(durOpts(dir))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		driveDur(e, rng, 400)
		if i%2 == 0 {
			if err := e.CloseKeep(); err != nil {
				t.Fatal(err)
			}
		} else {
			e.Close()
		}
	}
	if got := countFDs(); got > base {
		t.Fatalf("fd leak: %d open after cycles, baseline %d", got, base)
	}
}
