package acache

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"acache/internal/fault"
)

// Crash-consistency proofs. The contract under test: for ANY truncation and
// any single-byte corruption of the durable files, BuildDurable either
// restores a state differentially identical to a reference engine fed the
// applied operation prefix, or fails with a clean error — never a panic,
// never a silently wrong state.

// durOp is one scripted ingress call. Unlike driveDur, the script is a value:
// crash trials replay exact prefixes of it into reference engines.
type durOp struct {
	rel  string
	vals []int64
}

// genDurOps mirrors driveDur's distribution as a replayable script.
func genDurOps(seed int64, n int) []durOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]durOp, n)
	for i := range ops {
		switch rng.Intn(3) {
		case 0:
			ops[i] = durOp{"R", []int64{rng.Int63n(60), 0, 0, 0}}
		case 1:
			ops[i] = durOp{"S", []int64{rng.Int63n(60), rng.Int63n(60), 0, 0}}
		default:
			ops[i] = durOp{"T", []int64{rng.Int63n(60), 0, 0, 0}}
		}
	}
	return ops
}

func applyDurOps(e *Engine, ops []durOp) {
	for _, op := range ops {
		e.Append(op.rel, op.vals...)
	}
}

// relContents captures every relation's window state as sorted row multisets
// (plus the clock for time windows) — the differential-identity probe.
func relContents(e *Engine) [][]string {
	out := make([][]string, len(e.windows))
	for i := range e.windows {
		_, clock, ts, stamps := e.relState(i)
		rows := make([]string, 0, len(ts)+1)
		for j, tp := range ts {
			if stamps != nil {
				rows = append(rows, fmt.Sprintf("%v@%d", tp, stamps[j]))
			} else {
				rows = append(rows, fmt.Sprintf("%v", tp))
			}
		}
		sort.Strings(rows)
		out[i] = append(rows, fmt.Sprintf("clock=%d", clock))
	}
	return out
}

// refStates memoizes "reference engine fed ops[:k]" window states across the
// many crash trials that land on the same applied prefix.
type refStates struct {
	t    *testing.T
	ops  []durOp
	memo map[int][][]string
}

func newRefStates(t *testing.T, ops []durOp) *refStates {
	return &refStates{t: t, ops: ops, memo: make(map[int][][]string)}
}

func (r *refStates) at(k int) [][]string {
	if s, ok := r.memo[k]; ok {
		return s
	}
	if k > len(r.ops) {
		r.t.Fatalf("reference prefix %d exceeds script length %d", k, len(r.ops))
	}
	ref, err := durQuery().Build(Options{ReoptInterval: 100, Seed: 7})
	if err != nil {
		r.t.Fatal(err)
	}
	applyDurOps(ref, r.ops[:k])
	s := relContents(ref)
	ref.Close()
	r.memo[k] = s
	return s
}

// copyDurDir clones the flat durable-state directory into a fresh temp dir so
// each crash trial mutates its own copy.
func copyDurDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// makeKillState drives a durable engine through ops with a checkpoint after
// ckptAt of them, syncs the WAL, and abandons the engine without closing — a
// simulated kill. Returns the state directory.
func makeKillState(t *testing.T, ops []durOp, ckptAt int) string {
	t.Helper()
	dir := t.TempDir()
	e, warm, err := durQuery().BuildDurable(durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("fresh directory reported warm")
	}
	applyDurOps(e, ops[:ckptAt])
	if ckptAt > 0 {
		if err := e.SaveCheckpoint(); err != nil {
			t.Fatal(err)
		}
	}
	applyDurOps(e, ops[ckptAt:])
	if err := e.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// rebuild runs BuildDurable on dir and fails the test on error.
func rebuild(t *testing.T, dir string) (*Engine, bool) {
	t.Helper()
	e, warm, err := durQuery().BuildDurable(durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	return e, warm
}

// TestCrashTruncatedWAL proves torn-write recovery: every sampled truncation
// of the synced WAL recovers exactly the operations whose frames survived in
// full — checkpoint ops plus the valid frame prefix — and nothing else.
func TestCrashTruncatedWAL(t *testing.T) {
	const ckptAt, total = 200, 320
	ops := genDurOps(21, total)
	src := makeKillState(t, ops, ckptAt)
	wal, err := os.ReadFile(filepath.Join(src, walName))
	if err != nil {
		t.Fatal(err)
	}
	refs := newRefStates(t, ops)

	// Cuts: the whole header region, a stride across the body, and every
	// byte of the tail (torn final writes are the common crash shape).
	cuts := map[int]bool{0: true, len(wal): true}
	for c := 0; c <= walHdrBytes+2; c++ {
		cuts[c] = true
	}
	for c := 0; c < len(wal); c += 97 {
		cuts[c] = true
	}
	for c := len(wal) - 120; c < len(wal); c++ {
		cuts[c] = true
	}
	var sorted []int
	for c := range cuts {
		if c >= 0 && c <= len(wal) {
			sorted = append(sorted, c)
		}
	}
	sort.Ints(sorted)

	for _, cut := range sorted {
		dir := copyDurDir(t, src)
		if err := os.WriteFile(filepath.Join(dir, walName), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		e, warm := rebuild(t, dir)
		st := e.Stats()
		if !warm {
			t.Fatalf("cut %d: checkpointed state reported cold", cut)
		}
		switch st.WALReplayReason {
		case "clean", "torn-tail", "torn-header", "empty":
		default:
			t.Fatalf("cut %d: unexpected replay reason %q", cut, st.WALReplayReason)
		}
		k := ckptAt + int(st.WALRecordsReplayed)
		if got, want := relContents(e), refs.at(k); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: state diverges from reference at prefix %d\n got %v\nwant %v",
				cut, k, got, want)
		}
		e.Close()
	}
}

// TestCrashCorruptWALByte proves mid-log corruption detection: a flipped bit
// anywhere in the WAL yields either a clean error or a recovery whose state
// is exactly a valid applied prefix — never a panic, never silent garbage.
func TestCrashCorruptWALByte(t *testing.T) {
	const ckptAt, total = 150, 250
	ops := genDurOps(33, total)
	src := makeKillState(t, ops, ckptAt)
	wal, err := os.ReadFile(filepath.Join(src, walName))
	if err != nil {
		t.Fatal(err)
	}
	refs := newRefStates(t, ops)

	offs := map[int]bool{}
	for o := 0; o < len(wal); o += 23 {
		offs[o] = true
	}
	for o := len(wal) - 80; o < len(wal); o++ {
		if o >= 0 {
			offs[o] = true
		}
	}
	var sorted []int
	for o := range offs {
		sorted = append(sorted, o)
	}
	sort.Ints(sorted)

	errors, exact := 0, 0
	for _, off := range sorted {
		dir := copyDurDir(t, src)
		mut := append([]byte(nil), wal...)
		mut[off] ^= 0x10
		if err := os.WriteFile(filepath.Join(dir, walName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		e, _, err := durQuery().BuildDurable(durOpts(dir))
		if err != nil {
			errors++
			continue // clean rejection is a correct outcome
		}
		st := e.Stats()
		k := ckptAt + int(st.WALRecordsReplayed)
		if got, want := relContents(e), refs.at(k); !reflect.DeepEqual(got, want) {
			t.Fatalf("flip at %d: recovered state is not the applied prefix %d", off, k)
		}
		exact++
		e.Close()
	}
	// A flip before the last frame must either error (scan-forward finds the
	// later valid frames) or truncate replay; both paths were exercised.
	if errors == 0 || exact == 0 {
		t.Fatalf("corruption sweep degenerate: %d errors, %d exact recoveries", errors, exact)
	}
}

// TestCrashCorruptCheckpoint proves the whole-file checkpoint checksum: any
// single-byte flip and any truncation of engine.ckpt is detected as a clean
// error before any state is touched.
func TestCrashCorruptCheckpoint(t *testing.T) {
	ops := genDurOps(44, 300)
	dir := t.TempDir()
	e, _, err := durQuery().BuildDurable(durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	applyDurOps(e, ops)
	if err := e.CloseKeep(); err != nil {
		t.Fatal(err)
	}
	ckPath := filepath.Join(dir, ckptName)
	ck, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}

	// Bit flips: restore the byte after each trial. A trial that wrongly
	// succeeds fails the test immediately, so in-place mutation is safe —
	// parse rejects before Build ever touches the spills.
	for off := 0; off < len(ck); off += 7 {
		ck[off] ^= 0x04
		if err := os.WriteFile(ckPath, ck, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := durQuery().BuildDurable(durOpts(dir)); err == nil {
			t.Fatalf("flip at %d: corrupted checkpoint accepted", off)
		}
		ck[off] ^= 0x04
	}
	// Truncations.
	for cut := 0; cut < len(ck); cut += 11 {
		if err := os.WriteFile(ckPath, ck[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := durQuery().BuildDurable(durOpts(dir)); err == nil {
			t.Fatalf("truncation at %d: corrupted checkpoint accepted", cut)
		}
	}
	// Restore and prove the pristine file still loads warm.
	if err := os.WriteFile(ckPath, ck, 0o644); err != nil {
		t.Fatal(err)
	}
	b, warm := rebuild(t, dir)
	if !warm {
		t.Fatal("pristine checkpoint reported cold")
	}
	refs := newRefStates(t, ops)
	if got, want := relContents(b), refs.at(len(ops)); !reflect.DeepEqual(got, want) {
		t.Fatal("pristine restore diverges from reference")
	}
	b.Close()
}

// TestCrashCorruptSpill proves cold-page integrity: with a by-reference
// checkpoint, flipped bytes inside a spill file are caught by the per-tuple
// CRC (clean error) or land outside any referenced page (exact recovery).
func TestCrashCorruptSpill(t *testing.T) {
	ops := genDurOps(55, 900)
	src := t.TempDir()
	e, _, err := durQuery().BuildDurable(durOpts(src))
	if err != nil {
		t.Fatal(err)
	}
	applyDurOps(e, ops)
	if st := e.Stats(); st.TierDemotions == 0 {
		t.Fatal("no demotions; spill corruption test needs cold pages")
	}
	if err := e.CloseKeep(); err != nil {
		t.Fatal(err)
	}
	refs := newRefStates(t, ops)

	errors, exact := 0, 0
	for rel := 0; rel < 3; rel++ {
		name := fmt.Sprintf("rel%d.spill", rel)
		spill, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		// Sample the header, the first few data pages (where cold tuples
		// live), and the sparse tail.
		offs := []int{0, 5, 9, 17, 25}
		for o := 4096; o < min(len(spill), 4096*5); o += 512 {
			offs = append(offs, o+3)
		}
		if len(spill) > 64 {
			offs = append(offs, len(spill)-64)
		}
		for _, off := range offs {
			if off >= len(spill) {
				continue
			}
			dir := copyDurDir(t, src)
			mut := append([]byte(nil), spill...)
			mut[off] ^= 0x20
			if err := os.WriteFile(filepath.Join(dir, name), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			b, _, err := durQuery().BuildDurable(durOpts(dir))
			if err != nil {
				errors++
				continue
			}
			if got, want := relContents(b), refs.at(len(ops)); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s flip at %d: silent state divergence", name, off)
			}
			exact++
			b.Close()
		}
	}
	if errors == 0 {
		t.Fatalf("spill sweep never tripped a checksum (%d exact)", exact)
	}
}

// TestCrashBetweenCheckpointAndTruncate is the double-apply regression: a
// crash after the checkpoint rename but before the WAL truncate leaves a
// stale full WAL next to a checkpoint that already contains its effects. The
// epoch stamp must make replay ignore every stale record.
func TestCrashBetweenCheckpointAndTruncate(t *testing.T) {
	const total = 260
	ops := genDurOps(66, total)
	dir := t.TempDir()
	e, _, err := durQuery().BuildDurable(durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	applyDurOps(e, ops)
	if err := e.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	preWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: the pre-checkpoint WAL reappears in full.
	if err := os.WriteFile(walPath, preWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	b, warm := rebuild(t, dir)
	st := b.Stats()
	if !warm {
		t.Fatal("restart reported cold")
	}
	if st.WALReplayReason != "stale-epoch" {
		t.Fatalf("replay reason %q, want stale-epoch", st.WALReplayReason)
	}
	if st.WALRecordsReplayed != 0 {
		t.Fatalf("%d stale records replayed; checkpoint effects double-applied", st.WALRecordsReplayed)
	}
	if want := uint64(len(preWAL) - walHdrBytes); st.WALBytesIgnored != want {
		t.Fatalf("WALBytesIgnored = %d, want %d", st.WALBytesIgnored, want)
	}
	refs := newRefStates(t, ops)
	if got, want := relContents(b), refs.at(total); !reflect.DeepEqual(got, want) {
		t.Fatal("state after stale-WAL restart is not exactly-once")
	}
	b.Close()
}

// TestWALSyncFailureSticky: a failed WAL fsync poisons the engine's
// durability — every later durability call surfaces the same error, nothing
// self-heals, and a restart recovers exactly the synced prefix.
func TestWALSyncFailureSticky(t *testing.T) {
	ops := genDurOps(77, 60)
	dir := t.TempDir()
	inj := fault.NewDisk(nil).FailAt(walName, fault.OpSync, 2, fault.SyncErr)
	opts := durOpts(dir)
	opts.fs = inj
	e, _, err := durQuery().BuildDurable(opts)
	if err != nil {
		t.Fatal(err) // sync #1 is the fresh-WAL reset
	}
	applyDurOps(e, ops[:40])
	err1 := e.SyncWAL()
	if err1 == nil {
		t.Fatal("SyncWAL succeeded through a failing fsync")
	}
	applyDurOps(e, ops[40:]) // silently dropped from the log: engine is poisoned
	if err2 := e.SyncWAL(); err2 != err1 {
		t.Fatalf("sticky error not preserved: %v vs %v", err2, err1)
	}
	if err := e.SaveCheckpoint(); err == nil {
		t.Fatal("SaveCheckpoint accepted a poisoned WAL")
	}
	if st := e.Stats(); st.WALErrors != 1 {
		t.Fatalf("WALErrors = %d, want 1", st.WALErrors)
	}
	if len(inj.Fired()) != 1 {
		t.Fatalf("injector fired %v, want exactly one fault", inj.Fired())
	}
	if err := e.CloseKeep(); err != err1 {
		t.Fatalf("CloseKeep returned %v, want the sticky %v", err, err1)
	}

	// The flush preceding the failed fsync reached the page cache, so the
	// recoverable prefix is everything logged before the poison.
	b, _ := rebuild(t, dir)
	if n := b.Stats().WALRecordsReplayed; n != 40 {
		t.Fatalf("replayed %d records, want the 40 synced ones", n)
	}
	refs := newRefStates(t, ops)
	if got, want := relContents(b), refs.at(40); !reflect.DeepEqual(got, want) {
		t.Fatal("restart state is not the synced prefix")
	}
	b.Close()
}

// TestWALWriteFailureSticky: a failed WAL write poisons durability the same
// way a failed fsync does.
func TestWALWriteFailureSticky(t *testing.T) {
	ops := genDurOps(88, 40)
	dir := t.TempDir()
	// Write #1 is the fresh-WAL header flush; #2 is the first frame flush.
	inj := fault.NewDisk(nil).FailAt(walName, fault.OpWrite, 2, fault.WriteErr)
	opts := durOpts(dir)
	opts.fs = inj
	e, _, err := durQuery().BuildDurable(opts)
	if err != nil {
		t.Fatal(err)
	}
	applyDurOps(e, ops)
	err1 := e.SyncWAL()
	if err1 == nil {
		t.Fatal("SyncWAL succeeded through a failing write")
	}
	if err2 := e.SyncWAL(); err2 != err1 {
		t.Fatalf("sticky error not preserved: %v vs %v", err2, err1)
	}
	if st := e.Stats(); st.WALErrors != 1 {
		t.Fatalf("WALErrors = %d, want 1", st.WALErrors)
	}
	if err := e.CloseKeep(); err == nil {
		t.Fatal("CloseKeep reported success after a lost write")
	}
	// Nothing but the header survived; the restart must come up empty rather
	// than replay a torn buffer.
	b, _ := rebuild(t, dir)
	if n := b.Stats().WALRecordsReplayed; n != 0 {
		t.Fatalf("replayed %d records from a failed-write log", n)
	}
	b.Close()
}

// TestCheckpointWriteFailureKeepsWAL: a torn checkpoint write fails
// SaveCheckpoint cleanly and must leave the WAL intact — the old durable
// record stays authoritative.
func TestCheckpointWriteFailureKeepsWAL(t *testing.T) {
	const total = 120
	ops := genDurOps(99, total)
	dir := t.TempDir()
	inj := fault.NewDisk(nil).FailAt(ckptName+".tmp", fault.OpWrite, 1, fault.TornWrite)
	opts := durOpts(dir)
	opts.fs = inj
	e, _, err := durQuery().BuildDurable(opts)
	if err != nil {
		t.Fatal(err)
	}
	applyDurOps(e, ops)
	if err := e.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveCheckpoint(); err == nil {
		t.Fatal("SaveCheckpoint succeeded through a torn write")
	}
	// The failure is not a WAL fault: logging must still work.
	if err := e.SyncWAL(); err != nil {
		t.Fatalf("WAL poisoned by a checkpoint-only failure: %v", err)
	}
	// Kill, then restart without the injector: the full WAL replays.
	b, _ := rebuild(t, dir)
	if n := b.Stats().WALRecordsReplayed; n != total {
		t.Fatalf("replayed %d records, want %d", n, total)
	}
	refs := newRefStates(t, ops)
	if got, want := relContents(b), refs.at(total); !reflect.DeepEqual(got, want) {
		t.Fatal("restart lost operations after a failed checkpoint")
	}
	b.Close()
}

// TestCloseKeepCheckpointFailureKeepsWAL: when the shutdown checkpoint's
// rename fails, CloseKeep must report the error and leave the WAL as the
// durable record instead of truncating it (the state-loss bug this PR fixes).
func TestCloseKeepCheckpointFailureKeepsWAL(t *testing.T) {
	const total = 100
	ops := genDurOps(111, total)
	dir := t.TempDir()
	inj := fault.NewDisk(nil).FailAt(ckptName, fault.OpRename, 1, fault.WriteErr)
	opts := durOpts(dir)
	opts.fs = inj
	e, _, err := durQuery().BuildDurable(opts)
	if err != nil {
		t.Fatal(err)
	}
	applyDurOps(e, ops)
	if err := e.CloseKeep(); err == nil {
		t.Fatal("CloseKeep reported success though the checkpoint never published")
	}
	fi, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= int64(walHdrBytes) {
		t.Fatal("CloseKeep truncated the WAL after a failed checkpoint")
	}
	b, _ := rebuild(t, dir)
	if n := b.Stats().WALRecordsReplayed; n != total {
		t.Fatalf("replayed %d records, want %d", n, total)
	}
	refs := newRefStates(t, ops)
	if got, want := relContents(b), refs.at(total); !reflect.DeepEqual(got, want) {
		t.Fatal("failed-checkpoint shutdown lost operations")
	}
	b.Close()
}

// TestSpillWriteFailureDegrades: ENOSPC on a spill grow degrades that store
// to hot-only — results stay exact, and the failure is visible in Stats.
func TestSpillWriteFailureDegrades(t *testing.T) {
	ctrl, err := durQuery().Build(Options{ReoptInterval: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var want resultLog
	want.attach(ctrl)
	driveDur(ctrl, rand.New(rand.NewSource(5)), 900)

	dir := t.TempDir()
	inj := fault.NewDisk(nil).FailAt("rel0.spill", fault.OpTruncate, 1, fault.NoSpace)
	opts := durOpts(dir)
	opts.fs = inj
	e, err := durQuery().Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	var got resultLog
	got.attach(e)
	driveDur(e, rand.New(rand.NewSource(5)), 900)
	sameDeltas(t, &got, &want)

	st := e.Stats()
	if st.TierWriteErrors == 0 {
		t.Fatal("spill ENOSPC not counted in TierWriteErrors")
	}
	if !st.DurabilityDegraded {
		t.Fatal("spill ENOSPC did not set DurabilityDegraded")
	}
	if len(inj.Fired()) != 1 {
		t.Fatalf("injector fired %v, want exactly once", inj.Fired())
	}
	ctrl.Close()
	e.Close()
}

// TestShardHealthDurabilityDegraded: the degraded flag propagates through a
// sharded engine into per-shard health and aggregated stats.
func TestShardHealthDurabilityDegraded(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewDisk(nil).FailAt("rel0.spill", fault.OpTruncate, 1, fault.NoSpace)
	opts := durOpts(dir)
	opts.fs = inj
	se, err := durQuery().BuildSharded(opts, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1800; i++ {
		switch rng.Intn(3) {
		case 0:
			se.Append("R", rng.Int63n(60), 0, 0, 0)
		case 1:
			se.Append("S", rng.Int63n(60), rng.Int63n(60), 0, 0)
		default:
			se.Append("T", rng.Int63n(60), 0, 0, 0)
		}
	}
	se.Flush()
	st := se.Stats()
	if st.TierWriteErrors == 0 {
		t.Fatal("sharded stats missed the spill write error")
	}
	if !st.DurabilityDegraded {
		t.Fatal("sharded stats missed the degraded flag")
	}
	degraded := false
	for _, h := range se.Health() {
		degraded = degraded || h.DurabilityDegraded
	}
	if !degraded {
		t.Fatal("no shard reports DurabilityDegraded in Health()")
	}
}

// validFramePrefix mirrors the WAL scanner: the number of leading frames with
// valid header and body checksums and a contiguous sequence, under a valid
// epoch-0 v2 header. This is the exact count replay must apply when it
// reports a clean or torn-tail stop.
func validFramePrefix(data []byte) uint64 {
	if len(data) < walHdrBytes ||
		binary.LittleEndian.Uint32(data[0:]) != walMagic ||
		binary.LittleEndian.Uint32(data[4:]) != durVersion ||
		binary.LittleEndian.Uint64(data[8:]) != 0 {
		return 0
	}
	frames := data[walHdrBytes:]
	pos, n := 0, uint64(0)
	for pos+frameHdrBytes <= len(frames) {
		if binary.LittleEndian.Uint32(frames[pos:]) !=
			crc32.Checksum(frames[pos+4:pos+frameHdrBytes], crcTable) {
			break
		}
		l := int(binary.LittleEndian.Uint32(frames[pos+8:]))
		if l > walMaxRecord || pos+frameHdrBytes+l > len(frames) {
			break
		}
		if binary.LittleEndian.Uint32(frames[pos+4:]) !=
			crc32.Checksum(frames[pos+frameHdrBytes:pos+frameHdrBytes+l], crcTable) {
			break
		}
		if binary.LittleEndian.Uint64(frames[pos+12:]) != n+1 {
			break
		}
		n++
		pos += frameHdrBytes + l
	}
	return n
}

// FuzzReplayWAL: arbitrary bytes as wal.log must never panic BuildDurable,
// and any accepted log must apply exactly its valid checksummed frame prefix.
func FuzzReplayWAL(f *testing.F) {
	ops := genDurOps(123, 40)
	seedDir := f.TempDir()
	e, _, err := durQuery().BuildDurable(durOpts(seedDir))
	if err != nil {
		f.Fatal(err)
	}
	applyDurOps(e, ops)
	if err := e.SyncWAL(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(seedDir, walName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	mut := append([]byte(nil), seed...)
	mut[len(mut)/3] ^= 1
	f.Add(mut)
	f.Add(seed[:walHdrBytes])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), data, 0o644); err != nil {
			t.Skip()
		}
		b, _, err := durQuery().BuildDurable(durOpts(dir))
		if err != nil {
			return // clean rejection; the proof is the absence of a panic
		}
		want := validFramePrefix(data)
		if got := b.Stats().WALRecordsReplayed; got != want {
			t.Fatalf("replayed %d records, valid checksummed prefix has %d", got, want)
		}
		b.Close()
	})
}
