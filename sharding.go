package acache

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"acache/internal/core"
	"acache/internal/cost"
	"acache/internal/join"
	"acache/internal/query"
	"acache/internal/shard"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// ShardOptions tune hash-partitioned parallel execution.
type ShardOptions struct {
	// Shards is the number of worker shards P. Values ≤ 1 — and join graphs
	// the partition planner deems degenerate — run a single shard.
	Shards int
	// BatchSize is how many updates the ingress buffers per shard before
	// handing the batch to the shard's mailbox (≤ 0 uses a default sized to
	// amortize channel traffic).
	BatchSize int
	// MaxBatch caps how many updates a shard hands to its engine's
	// vectorized batch path per call (≤ 0: whole mailbox batches). Larger
	// batches are faster; the cap exists for experiments that bound batch
	// effects.
	MaxBatch int
	// Resilience enables overload and fault handling: bounded admission,
	// the degradation ladder, checkpoint/replay panic recovery, and the
	// watchdog. The zero value keeps the exact plain execution path.
	Resilience ResilienceOptions
	// Pipeline, when non-zero, overrides Options.Pipeline for every shard
	// engine: each shard runs staged pipeline-parallel execution with this
	// worker count, multiplying the two parallelism axes (P shards ×
	// Workers stages). Results and cost totals are unchanged either way.
	Pipeline PipelineOptions
	// ReoptStagger offsets shard i's first post-startup re-optimization by
	// i×ReoptStagger updates (added to Options.ReoptOffset), so the shards'
	// re-optimization work is spread across the interval instead of landing
	// in the same ingress window. Cache adoption can shift in time by at
	// most the offset, but caches are output-transparent: join results are
	// identical with or without staggering. 0 disables staggering.
	ReoptStagger int
}

// ShardedEngine executes a built query hash-partitioned across P worker
// shards, each running its own unmodified single-goroutine adaptive engine —
// its own cost meter, profiler, and cache set — on a dedicated goroutine fed
// by a batched mailbox. The partition planner picks the scheme from the join
// graph: a class covering every relation partitions all of them (disjoint
// result slices per shard); otherwise the largest-degree class partitions
// the relations it covers and the rest are broadcast to all shards.
//
// Ingress (Insert, Delete, Append, AppendAt, AdvanceTime, Flush, Close) is
// single-producer: one goroutine feeds the engine, defining the global
// update order, exactly like the serial Engine. Updates are processed
// asynchronously; ingress calls return once the update is routed, so they
// report no per-call result count — use OnResult for deltas and Stats for
// totals. Flush blocks until every routed update is fully processed.
//
// Ordering contract: within a shard, updates are processed in ingress order
// (each shard sees the global order restricted to its slice); cross-shard
// interleaving is unspecified. OnResult callbacks preserve per-shard
// emission order and interleave arbitrarily across shards.
type ShardedEngine struct {
	q    *Query
	plan shard.Plan
	sh   *shard.Engine

	windows  []*stream.SlidingWindow
	timeWins []*stream.TimeWindow
	partWins []*stream.PartitionedWindow
	seq      uint64
	server   *Server // non-nil when hosted by a Server

	// Resilience layer (resilience.go). resOn mirrors the shard engine's
	// mode; the ladder and deferred grant are ingress-owned.
	resOn         bool
	ladder        ladderState
	deferredGrant int
	grantDeferred bool
}

// BuildSharded validates the query and constructs a sharded engine. The
// memory budget in opts is the whole engine's budget; each shard receives an
// equal slice.
func (q *Query) BuildSharded(opts Options, sopts ShardOptions) (*ShardedEngine, error) {
	if q.err != nil {
		return nil, q.err
	}
	iq, err := query.NewWithThetas(q.schemas, q.preds, q.thetas)
	if err != nil {
		return nil, err
	}
	cfg, err := opts.coreConfig(q)
	if err != nil {
		return nil, err
	}
	plan := shard.PlanPartitions(iq, sopts.Shards)
	if cfg.MemoryBudget > 0 && plan.Shards > 1 {
		cfg.MemoryBudget /= plan.Shards
		if cfg.MemoryBudget < 1 {
			cfg.MemoryBudget = 1
		}
	}
	if sopts.Pipeline != (PipelineOptions{}) {
		cfg.Pipeline = join.PipelineOptions{
			Workers:     sopts.Pipeline.Workers,
			StageBuffer: sopts.Pipeline.StageBuffer,
		}
	}
	r := sopts.Resilience
	sh, err := shard.New(plan, shard.Options{
		BatchSize:       sopts.BatchSize,
		MaxBatch:        sopts.MaxBatch,
		Admission:       r.Admission,
		OfferTimeout:    r.OfferTimeout,
		CheckpointEvery: r.CheckpointEvery,
		MaxRecoveries:   r.MaxRecoveries,
		StallTimeout:    r.StallTimeout,
		Injector:        r.FaultInjector,
		// The ladder needs the resilient workers' occupancy counters and
		// cache-pause control channels even when nothing else is set.
		ForceResilient: r.DegradeHighWater > 0,
	}, func(i int) (*core.Engine, error) {
		c := cfg
		// Decorrelate per-shard sampling and randomized selection; shard 0
		// keeps the caller's seed so P=1 reproduces the serial engine.
		c.Seed = cfg.Seed + int64(i)*1_000_003
		// Phase-shift each shard's first re-optimization so the shards'
		// selection work does not land in the same ingress window.
		c.ReoptOffset = cfg.ReoptOffset + i*sopts.ReoptStagger
		// Each shard spills into its own subdirectory: shards are rebuilt
		// independently on panic recovery, and a rebuild must be able to
		// remove and recreate its spill files without touching its siblings'.
		if cfg.Tier.Enabled() {
			c.Tier.Dir = filepath.Join(cfg.Tier.Dir, fmt.Sprintf("shard%d", i))
		}
		// Scope cross-query cache identities to the shard's slice of the
		// partition plan: shard i of one sharded query pools only with
		// shard i of another partitioned the same way — different slices
		// hold different contents and must never aggregate.
		if len(cfg.RelTokens) > 0 {
			suffix := fmt.Sprintf("#%d/%d:%v", i, plan.Shards, plan.KeyCols)
			toks := make([]string, len(cfg.RelTokens))
			for r, t := range cfg.RelTokens {
				toks[r] = t + suffix
			}
			c.RelTokens = toks
		}
		return core.NewEngine(iq, nil, c)
	})
	if err != nil {
		return nil, err
	}
	e := &ShardedEngine{q: q, plan: plan, sh: sh, resOn: r.enabled()}
	e.ladder = newLadder(r, len(q.names), cfg.Seed)
	e.windows, e.timeWins, e.partWins = q.buildWindows()
	return e, nil
}

// NumShards returns the number of worker shards the planner settled on.
func (e *ShardedEngine) NumShards() int { return e.sh.NumShards() }

// Partitioning describes the partition plan: the chosen scheme and, per
// relation, whether it is hash-partitioned or broadcast.
func (e *ShardedEngine) Partitioning() string {
	if e.plan.Shards <= 1 {
		return "serial (P=1)"
	}
	var parts, bcast []string
	for i, name := range e.q.names {
		if e.plan.Covered(i) {
			col := e.plan.KeyCols[i]
			parts = append(parts, name+"."+e.q.schemas[i].Col(col).Name)
		} else {
			bcast = append(bcast, name)
		}
	}
	s := fmt.Sprintf("P=%d, partitioned on %s", e.plan.Shards, strings.Join(parts, ", "))
	if len(bcast) > 0 {
		s += ", broadcast " + strings.Join(bcast, ", ")
	}
	return s
}

// route stamps the global sequence number and hands the update to its
// shard(s).
func (e *ShardedEngine) route(u stream.Update) {
	e.seq++
	u.Seq = e.seq
	e.sh.Offer(u)
	if e.server != nil {
		e.server.tick()
	}
	e.tickLadder()
}

// Insert routes an insertion into the named relation. Processing is
// asynchronous; use Flush to wait for completion.
func (e *ShardedEngine) Insert(rel string, values ...int64) {
	e.applySharded(stream.Insert, e.q.relIndex(rel), values)
}

// Delete routes a deletion from the named relation.
func (e *ShardedEngine) Delete(rel string, values ...int64) {
	e.applySharded(stream.Delete, e.q.relIndex(rel), values)
}

func (e *ShardedEngine) applySharded(op stream.Op, rel int, values []int64) {
	e.q.checkArity(rel, values)
	e.route(stream.Update{Op: op, Rel: rel, Tuple: tuple.Tuple(values)})
}

// Append pushes one tuple of a count-windowed relation's append-only stream,
// routing the expiry delete (if the window was full) and then the insert.
// The window operators live at the ingress, so window semantics are global —
// identical to the serial engine — regardless of how tuples are partitioned.
func (e *ShardedEngine) Append(rel string, values ...int64) {
	idx := e.q.relIndex(rel)
	e.q.checkArity(idx, values)
	if e.shedIngress(idx) {
		return
	}
	for _, u := range e.windowAppend(idx, values, rel) {
		u.Rel = idx
		e.route(u)
	}
}

// windowAppend runs the count-window operators for one appended tuple and
// returns the updates to route: the expiry delete (if the window was full)
// followed by the insert.
func (e *ShardedEngine) windowAppend(idx int, values []int64, rel string) []stream.Update {
	switch {
	case e.partWins[idx] != nil:
		return e.partWins[idx].Append(tuple.Tuple(values).Clone())
	case e.windows[idx] != nil:
		return e.windows[idx].Append(tuple.Tuple(values).Clone())
	default:
		panic(fmt.Sprintf("acache: relation %q is time-windowed; use AppendAt", rel))
	}
}

// AppendBatch pushes a batch of tuples of a count-windowed relation's
// append-only stream, routing the expiry deletes the batch forces out first
// and then the inserts (the grouped window schedule — see
// stream.SlidingWindow.AppendBatchInto). The long same-operation runs it
// produces are what each shard's vectorized batch path digests fastest.
func (e *ShardedEngine) AppendBatch(rel string, rows [][]int64) {
	idx := e.q.relIndex(rel)
	ts := make([]tuple.Tuple, 0, len(rows))
	for _, r := range rows {
		e.q.checkArity(idx, r)
		if e.shedIngress(idx) {
			continue
		}
		ts = append(ts, tuple.Tuple(r).Clone())
	}
	if len(ts) == 0 {
		return
	}
	var ups []stream.Update
	switch {
	case e.partWins[idx] != nil:
		ups = e.partWins[idx].AppendBatch(ts)
	case e.windows[idx] != nil:
		ups = e.windows[idx].AppendBatch(ts)
	default:
		panic(fmt.Sprintf("acache: relation %q is time-windowed; use AppendAt", rel))
	}
	for _, u := range ups {
		u.Rel = idx
		e.route(u)
	}
}

// AppendAt pushes one tuple of a time-windowed relation's stream at
// application time ts, expiring every time window first (as AdvanceTime).
// Timestamps must be non-decreasing across the engine.
func (e *ShardedEngine) AppendAt(rel string, ts int64, values ...int64) {
	idx := e.q.relIndex(rel)
	if e.timeWins[idx] == nil {
		panic(fmt.Sprintf("acache: relation %q is not time-windowed; use Append or Insert", rel))
	}
	e.q.checkArity(idx, values)
	e.AdvanceTime(ts)
	if e.shedIngress(idx) {
		return
	}
	for _, u := range e.timeWins[idx].Append(tuple.Tuple(values).Clone(), ts) {
		u.Rel = idx
		e.route(u)
	}
}

// AdvanceTime moves the global clock to ts without inserting anything,
// routing every time window's expiry deletes.
func (e *ShardedEngine) AdvanceTime(ts int64) {
	for idx, w := range e.timeWins {
		if w == nil {
			continue
		}
		for _, u := range w.AdvanceTo(ts) {
			u.Rel = idx
			e.route(u)
		}
	}
}

// Flush blocks until every routed update has been processed by its shard —
// the quiescent point for Stats, Explain, and DescribePlan.
func (e *ShardedEngine) Flush() { e.sh.Flush() }

// Close flushes, stops the shard goroutines, and releases the engine. The
// engine must not be used afterwards.
func (e *ShardedEngine) Close() { e.sh.Close() }

// OnResult registers a callback receiving every join-result delta as a flat
// row (see Query.ResultColumns for the labels), with insert = true for
// additions and false for retractions. Callbacks are merged across shards
// under a mutex: per-shard emission order is preserved, cross-shard
// interleaving is unspecified. Must be called before the first update; the
// callback runs on shard goroutines and must not call back into the engine.
func (e *ShardedEngine) OnResult(f func(insert bool, row []int64)) {
	e.sh.OnResult(func(ins bool, vals []tuple.Value) { f(ins, vals) })
}

// Stats flushes and returns counters aggregated across shards: Updates is
// the ingress count (broadcast updates counted once), Outputs and
// WorkSeconds are summed (WorkSeconds is aggregate work, not wall-clock —
// shards run concurrently), and UsedCaches lists each distinct cache
// placement annotated with how many shards currently use it.
func (e *ShardedEngine) Stats() Stats {
	snap := e.sh.Snapshot() // flushes
	s := Stats{
		Updates:          e.seq,
		Outputs:          snap.Outputs,
		WorkSeconds:      cost.Seconds(snap.Work),
		Reopts:           snap.Reopts,
		SkippedReopts:    snap.SkippedReopts,
		CacheMemoryBytes: snap.CacheMemoryBytes,

		ReoptNanos:        snap.ReoptNanos,
		SampledUpdates:    snap.SampledUpdates,
		CandidateRescores: snap.CandidateRescores,
		ReoptsSuppressed:  snap.ReoptsSuppressed,

		FilterBytes:          snap.FilterBytes,
		FilteredProbes:       snap.FilteredProbes,
		FilterFalsePositives: snap.FilterFalsePositives,
		PipelineWorkers:      snap.PipelineWorkers,
		StageStalls:          snap.StageStalls,
		StageOverlapRatio:    snap.StageOverlapRatio,
		WindowBytes:          snap.WindowBytes,
		TierHotBytes:         snap.TierHotBytes,
		TierColdBytes:        snap.TierColdBytes,
		TierPromotions:       snap.TierPromotions,
		TierDemotions:        snap.TierDemotions,
		TierWriteErrors:      snap.TierWriteErrors,
		DurabilityDegraded:   snap.DurDegraded,
	}
	counts := make(map[string]int)
	for i := 0; i < e.sh.NumShards(); i++ {
		for _, spec := range e.sh.Shard(i).UsedCaches() {
			counts[e.q.describeSpec(spec)]++
		}
	}
	for desc, k := range counts {
		if e.sh.NumShards() > 1 {
			desc = fmt.Sprintf("%s [%d/%d shards]", desc, k, e.sh.NumShards())
		}
		s.UsedCaches = append(s.UsedCaches, desc)
	}
	sort.Strings(s.UsedCaches)
	e.fillResilienceStats(&s)
	return s
}

// fillResilienceStats populates the Stats resilience fields from live
// counters. It does not quiesce the shards, so it is safe during overload —
// including from the ingress while a flush would wedge on a stalled shard.
func (e *ShardedEngine) fillResilienceStats(s *Stats) {
	s.CallbackPanics = e.sh.CallbackPanics()
	if !e.resOn {
		return
	}
	s.Shedded = e.sh.Shed() + e.ladder.shedTotal
	s.Recoveries = e.sh.Recoveries()
	s.QueueDepth = e.sh.QueueDepth()
	s.AdmissionWaitSeconds = e.sh.AdmissionWait().Seconds()
	s.DegradeLevel = e.ladder.level
	byRel := e.sh.ShedByRelation()
	m := make(map[string]uint64)
	for i, name := range e.q.names {
		n := uint64(0)
		if i < len(byRel) {
			n += byRel[i]
		}
		if e.ladder.shed != nil {
			n += e.ladder.shed[i]
		}
		if n > 0 {
			m[name] = n
		}
	}
	if len(m) > 0 {
		s.SheddedByRelation = m
	}
}

// ShardStats flushes — quiescing the shard goroutines, as the per-shard
// engines' lock-free snapshot contract requires — and returns one Stats per
// shard, in shard order. Updates counts the updates the shard actually
// processed (a broadcast update counts once per shard), and UsedCaches lists
// that shard's own cache placements; the aggregate view is Stats.
func (e *ShardedEngine) ShardStats() []Stats {
	snaps := e.sh.Snapshots() // flushes
	var health []ShardHealth
	if e.resOn {
		health = e.sh.Health()
	}
	out := make([]Stats, len(snaps))
	for i, snap := range snaps {
		s := Stats{
			Updates:          uint64(snap.Updates),
			Outputs:          snap.Outputs,
			WorkSeconds:      cost.Seconds(snap.Work),
			Reopts:           snap.Reopts,
			SkippedReopts:    snap.SkippedReopts,
			CacheMemoryBytes: snap.CacheMemoryBytes,

			FilterBytes:          snap.FilterBytes,
			FilteredProbes:       snap.FilteredProbes,
			FilterFalsePositives: snap.FilterFalsePositives,
		}
		if health != nil {
			s.Shedded = health[i].Shed
			s.QueueDepth = health[i].Pending
		}
		for _, spec := range e.sh.Shard(i).UsedCaches() {
			s.UsedCaches = append(s.UsedCaches, e.q.describeSpec(spec))
		}
		sort.Strings(s.UsedCaches)
		out[i] = s
	}
	return out
}

// Explain flushes and renders every shard's adaptive-optimizer view, one
// section per shard.
func (e *ShardedEngine) Explain() string {
	e.Flush()
	var b strings.Builder
	for i := 0; i < e.sh.NumShards(); i++ {
		fmt.Fprintf(&b, "— shard %d —\n", i)
		for _, c := range e.sh.Shard(i).Candidates() {
			fmt.Fprintf(&b, "%-9s %s  benefit=%.4f cost=%.4f miss=%.2f",
				c.State.String(), e.q.describeSpec(c.Spec), c.Benefit, c.Cost, c.MissProb)
			if !c.Ready {
				b.WriteString("  (estimating)")
			}
			if c.Demotions > 0 {
				fmt.Fprintf(&b, "  demoted×%d", c.Demotions)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// DescribePlan flushes and renders every shard's physical plan, one section
// per shard, prefixed by the partitioning scheme.
func (e *ShardedEngine) DescribePlan() string {
	e.Flush()
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", e.Partitioning())
	for i := 0; i < e.sh.NumShards(); i++ {
		fmt.Fprintf(&b, "— shard %d —\n", i)
		plan := e.sh.Shard(i).Plan()
		for p, pipe := range plan.Pipelines {
			fmt.Fprintf(&b, "Δ%s:", e.q.names[p])
			for _, r := range pipe {
				fmt.Fprintf(&b, " ⋈ %s", e.q.names[r])
			}
			b.WriteByte('\n')
		}
		for _, c := range plan.Caches {
			mode := "prefix"
			switch {
			case c.SelfMnt:
				mode = "self-maintained"
			case c.Reduced:
				mode = "reduced"
			}
			fmt.Fprintf(&b, "  cache %s [%s]: %d entries, %.1f KB, %.0f%% hits\n",
				e.q.describeSpec(c.Spec), mode, c.Entries, float64(c.Bytes)/1024, 100*c.HitRate)
		}
	}
	return b.String()
}

// WindowLen flushes and returns the named relation's current tuple count:
// summed across shards for a partitioned relation (shards hold disjoint
// slices), and one shard's count for a broadcast relation (every shard holds
// an identical replica).
func (e *ShardedEngine) WindowLen(rel string) int {
	e.Flush()
	idx := e.q.relIndex(rel)
	if !e.plan.Covered(idx) {
		return e.sh.Shard(0).Exec().Store(idx).Len()
	}
	total := 0
	for i := 0; i < e.sh.NumShards(); i++ {
		total += e.sh.Shard(i).Exec().Store(idx).Len()
	}
	return total
}

// SetMemoryBudget changes the engine-wide cache memory budget at run time;
// each shard receives an equal slice and re-divides it among its caches by
// priority immediately.
func (e *ShardedEngine) SetMemoryBudget(bytes int) {
	if bytes <= 0 {
		bytes = -1
	}
	e.sh.SetMemoryBudget(bytes)
}

// memoryDemand flushes and sums the shards' cache-memory demand, for the
// hosting server's cross-query rebalance.
func (e *ShardedEngine) memoryDemand() (bytes int, net float64) {
	return e.sh.MemoryDemand()
}

// memoryDemandDetail flushes and concatenates the shards' per-group demand
// detail (group identities are already shard-scoped, see BuildSharded), for
// the hosting server's pooled rebalance.
func (e *ShardedEngine) memoryDemandDetail() ([]core.GroupDemand, int) {
	return e.sh.MemoryDemandDetail()
}

// applyGrant receives a budget grant from the hosting server. While the
// degradation ladder is engaged the grant is deferred — re-dividing cache
// memory mid-overload would thrash caches the ladder has already paused —
// and applied when the ladder steps back to level 0.
func (e *ShardedEngine) applyGrant(bytes int) {
	if e.ladder.level > 0 {
		e.deferredGrant, e.grantDeferred = bytes, true
		return
	}
	e.sh.SetMemoryBudget(bytes)
}
