package acache

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternerAssignsDenseIDs(t *testing.T) {
	in := NewInterner()
	a := in.ID("alpha")
	b := in.ID("beta")
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d, %d; want dense from 0", a, b)
	}
	if got := in.ID("alpha"); got != a {
		t.Fatalf("re-intern changed id: %d != %d", got, a)
	}
	if name := in.Name(b); name != "beta" {
		t.Fatalf("Name(%d) = %q", b, name)
	}
	if _, ok := in.Lookup("gamma"); ok {
		t.Fatal("Lookup invented an id")
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
}

// TestInternerConcurrent hammers one interner from many goroutines — the
// multi-producer sharded-ingress pattern. Run under -race it verifies the
// locking; the assertions verify ids stay dense, stable, and bijective.
func TestInternerConcurrent(t *testing.T) {
	const producers = 8
	// Prime, so every producer's stride (p+1) permutes the full index range.
	const strings = 199
	in := NewInterner()
	var wg sync.WaitGroup
	ids := make([][]int64, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ids[p] = make([]int64, strings)
			for i := 0; i < strings; i++ {
				// Every producer interns the same strings in a different
				// order, maximizing first-sight contention.
				k := (i*(p+1) + p) % strings
				s := fmt.Sprintf("sym-%03d", k)
				ids[p][k] = in.ID(s)
				if got := in.Name(ids[p][k]); got != s {
					t.Errorf("Name(ID(%q)) = %q", s, got)
				}
				if id, ok := in.Lookup(s); !ok || id != ids[p][k] {
					t.Errorf("Lookup(%q) = %d,%v after ID returned %d", s, id, ok, ids[p][k])
				}
			}
		}(p)
	}
	wg.Wait()
	if in.Len() != strings {
		t.Fatalf("Len = %d, want %d", in.Len(), strings)
	}
	for p := 1; p < producers; p++ {
		for k := 0; k < strings; k++ {
			if ids[p][k] != ids[0][k] {
				t.Fatalf("producer %d got id %d for string %d, producer 0 got %d",
					p, ids[p][k], k, ids[0][k])
			}
		}
	}
}
