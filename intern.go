package acache

import "sync"

// Interner maps strings to dense int64 ids and back — a symbol table for
// feeding string-keyed streams into the engine, whose attribute values are
// int64 by design (the paper's experiments use integer join attributes; a
// real deployment interns its strings exactly like this).
//
// Unlike the engines, an Interner is safe for concurrent use: with sharded
// execution, multiple producer goroutines intern strings while preparing
// updates, so lookups take a read lock and only first-sight assignment takes
// the write lock.
type Interner struct {
	mu    sync.RWMutex
	ids   map[string]int64
	names []string
}

// NewInterner creates an empty symbol table.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int64)}
}

// ID returns the id for s, assigning the next dense id on first sight.
func (in *Interner) ID(s string) int64 {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[s]; ok {
		// Another producer assigned it between the two locks.
		return id
	}
	id = int64(len(in.names))
	in.ids[s] = id
	in.names = append(in.names, s)
	return id
}

// Lookup returns the id for s without assigning, and whether it was known.
func (in *Interner) Lookup(s string) (int64, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	id, ok := in.ids[s]
	return id, ok
}

// Name returns the string for a previously assigned id; it panics on an
// unknown id, which indicates a caller bug (ids only come from ID).
func (in *Interner) Name(id int64) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if id < 0 || id >= int64(len(in.names)) {
		panic("acache: unknown interned id")
	}
	return in.names[id]
}

// Len returns the number of interned strings.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.names)
}
