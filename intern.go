package acache

// Interner maps strings to dense int64 ids and back — a symbol table for
// feeding string-keyed streams into the engine, whose attribute values are
// int64 by design (the paper's experiments use integer join attributes; a
// real deployment interns its strings exactly like this).
//
// Like the engine, an Interner is not safe for concurrent use.
type Interner struct {
	ids   map[string]int64
	names []string
}

// NewInterner creates an empty symbol table.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int64)}
}

// ID returns the id for s, assigning the next dense id on first sight.
func (in *Interner) ID(s string) int64 {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := int64(len(in.names))
	in.ids[s] = id
	in.names = append(in.names, s)
	return id
}

// Lookup returns the id for s without assigning, and whether it was known.
func (in *Interner) Lookup(s string) (int64, bool) {
	id, ok := in.ids[s]
	return id, ok
}

// Name returns the string for a previously assigned id; it panics on an
// unknown id, which indicates a caller bug (ids only come from ID).
func (in *Interner) Name(id int64) string {
	if id < 0 || id >= int64(len(in.names)) {
		panic("acache: unknown interned id")
	}
	return in.names[id]
}

// Len returns the number of interned strings.
func (in *Interner) Len() int { return len(in.names) }
