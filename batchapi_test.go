package acache

import (
	"fmt"
	"math/rand"
	"testing"
)

// Batch-ingestion API tests: AppendBatch must leave the engine with the same
// result multiset and window state as appending the same rows one by one.
// (The delta sequence legitimately differs — the grouped window schedule
// reorders expiries ahead of inserts within a batch — so comparisons are on
// multisets and final state, not sequences.)

// resultCounter tallies result deltas as a multiset: inserts count up,
// retractions count down.
func resultCounter(m map[string]int) func(bool, []int64) {
	return func(insert bool, row []int64) {
		k := fmt.Sprint(row)
		if insert {
			m[k]++
		} else {
			m[k]--
		}
	}
}

func diffCounts(t *testing.T, label string, serial, batched map[string]int) {
	t.Helper()
	for k, n := range serial {
		if batched[k] != n {
			t.Fatalf("%s: result %s: serial count %d, batch count %d", label, k, n, batched[k])
		}
	}
	for k, n := range batched {
		if serial[k] != n {
			t.Fatalf("%s: result %s: batch count %d, serial count %d", label, k, n, serial[k])
		}
	}
}

func windowedThreeWay(t *testing.T, window int) *Engine {
	t.Helper()
	eng, err := NewQuery().
		WindowedRelation("R", window, "A").
		WindowedRelation("S", window, "A", "B").
		WindowedRelation("T", window, "B").
		Join("R.A", "S.A").
		Join("S.B", "T.B").
		Build(Options{ReoptInterval: 400, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// burstRows generates the shared row stream: bursts of rows per relation,
// rotating relations, values drawn from a small domain so joins fire.
func burstRows(nRounds, burst int, arities []int, seed int64) [][][]int64 {
	rng := rand.New(rand.NewSource(seed))
	rounds := make([][][]int64, 0, nRounds)
	for r := 0; r < nRounds; r++ {
		rows := make([][]int64, burst)
		for i := range rows {
			row := make([]int64, arities[r%len(arities)])
			for c := range row {
				row[c] = rng.Int63n(8)
			}
			rows[i] = row
		}
		rounds = append(rounds, rows)
	}
	return rounds
}

func TestAppendBatchMatchesAppend(t *testing.T) {
	names := []string{"R", "S", "T"}
	arities := []int{1, 2, 1}
	rounds := burstRows(120, 12, arities, 31)

	serial := windowedThreeWay(t, 16)
	serialRes := make(map[string]int)
	serial.OnResult(resultCounter(serialRes))
	serialTotal := 0
	for r, rows := range rounds {
		for _, row := range rows {
			serialTotal += serial.Append(names[r%3], row...)
		}
	}

	batched := windowedThreeWay(t, 16)
	batchRes := make(map[string]int)
	batched.OnResult(resultCounter(batchRes))
	batchTotal := 0
	for r, rows := range rounds {
		batchTotal += batched.AppendBatch(names[r%3], rows)
	}

	if serialTotal != batchTotal {
		t.Fatalf("total deltas: serial %d, batch %d", serialTotal, batchTotal)
	}
	if s, b := serial.Stats(), batched.Stats(); s.Outputs != b.Outputs || s.Updates != b.Updates {
		t.Fatalf("stats diverge: serial %+v, batch %+v", s, b)
	}
	for _, n := range names {
		if serial.WindowLen(n) != batched.WindowLen(n) {
			t.Fatalf("window %s: serial %d, batch %d", n, serial.WindowLen(n), batched.WindowLen(n))
		}
	}
	diffCounts(t, "three-way", serialRes, batchRes)
}

func TestAppendBatchPartitionedMatchesAppend(t *testing.T) {
	build := func() *Engine {
		eng, err := NewQuery().
			PartitionedRelation("L", "K", 3, "K", "V").
			WindowedRelation("R", 8, "K").
			Join("L.K", "R.K").
			Build(Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	rng := rand.New(rand.NewSource(41))
	rounds := make([][][]int64, 60)
	for r := range rounds {
		rows := make([][]int64, 10)
		for i := range rows {
			// 3 partitions, 10 rows per batch: single batches overflow a
			// partition's 3-row window (the degenerate grouped-schedule case).
			rows[i] = []int64{rng.Int63n(3), rng.Int63n(50)}
		}
		rounds[r] = rows
	}

	serial, batched := build(), build()
	serialRes, batchRes := make(map[string]int), make(map[string]int)
	serial.OnResult(resultCounter(serialRes))
	batched.OnResult(resultCounter(batchRes))
	for _, rows := range rounds {
		for _, row := range rows {
			serial.Append("L", row...)
		}
		batched.AppendBatch("L", rows)
		rrow := []int64{rng.Int63n(3)}
		serial.Append("R", rrow...)
		batched.AppendBatch("R", [][]int64{rrow})
	}
	if s, b := serial.Stats(), batched.Stats(); s.Outputs != b.Outputs {
		t.Fatalf("outputs diverge: serial %+v, batch %+v", s, b)
	}
	if serial.WindowLen("L") != batched.WindowLen("L") {
		t.Fatalf("window L: serial %d, batch %d", serial.WindowLen("L"), batched.WindowLen("L"))
	}
	diffCounts(t, "partitioned", serialRes, batchRes)
}

func TestShardedAppendBatchMatchesSerial(t *testing.T) {
	q := func() *Query {
		return NewQuery().
			WindowedRelation("A", 20, "K").
			WindowedRelation("B", 20, "K").
			WindowedRelation("C", 20, "K").
			Join("A.K", "B.K").
			Join("B.K", "C.K")
	}
	serial, err := q().Build(Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// MaxBatch smaller than the ingress batch exercises worker chunking.
	sharded, err := q().BuildSharded(Options{Seed: 3}, ShardOptions{Shards: 4, BatchSize: 32, MaxBatch: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	serialRes, shardRes := make(map[string]int), make(map[string]int)
	serial.OnResult(resultCounter(serialRes))
	sharded.OnResult(resultCounter(shardRes))

	names := []string{"A", "B", "C"}
	rounds := burstRows(90, 8, []int{1, 1, 1}, 77)
	for r, rows := range rounds {
		serial.AppendBatch(names[r%3], rows)
		sharded.AppendBatch(names[r%3], rows)
	}
	sst := sharded.Stats() // flushes
	if got, want := sst.Outputs, serial.Stats().Outputs; got != want {
		t.Fatalf("outputs: sharded %d, serial %d", got, want)
	}
	for _, n := range names {
		if got, want := sharded.WindowLen(n), serial.WindowLen(n); got != want {
			t.Fatalf("window %s: sharded %d, serial %d", n, got, want)
		}
	}
	diffCounts(t, "sharded", serialRes, shardRes)

	per := sharded.ShardStats()
	if len(per) != sharded.NumShards() {
		t.Fatalf("ShardStats returned %d entries for %d shards", len(per), sharded.NumShards())
	}
	var sumOut uint64
	var sumUpd uint64
	for _, s := range per {
		sumOut += s.Outputs
		sumUpd += s.Updates
	}
	if sumOut != sst.Outputs {
		t.Fatalf("per-shard outputs sum %d, aggregate %d", sumOut, sst.Outputs)
	}
	if sumUpd == 0 {
		t.Fatal("per-shard update counts all zero")
	}
}
