// Package acache is an adaptive caching engine for continuous multiway join
// queries over update streams, reproducing "Adaptive Caching for Continuous
// Queries" (Babu, Munagala, Widom, Motwani — ICDE 2005).
//
// A continuous n-way equijoin (a windowed stream join, or an incrementally
// maintained join view) is executed as an MJoin — one pipeline per input
// stream — and the engine adaptively splices join-subresult caches into the
// pipelines, covering the whole plan spectrum from stateless MJoins to
// fully materialized XJoins. Cache benefits and costs are estimated online,
// the cache set is re-optimized as stream and system conditions change, and
// memory is divided among caches by priority.
//
// Basic use:
//
//	q := acache.NewQuery().
//		Relation("R", "A").
//		Relation("S", "A", "B").
//		Relation("T", "B").
//		Join("R.A", "S.A").
//		Join("S.B", "T.B")
//	eng, err := q.Build(acache.Options{})
//	...
//	n := eng.Insert("R", 1)        // process an insertion, get result-delta count
//	n = eng.Delete("S", 1, 2)      // process a deletion
//
// For windowed streams, give each relation a window size and use Append:
// the engine emits the expiry delete and the insert in order.
//
// For multi-core scale-out, BuildSharded runs the same query hash-partitioned
// across P worker shards, each an independent adaptive engine; see
// ShardedEngine for the ingress API and ordering contract.
package acache

import (
	"fmt"
	"sort"
	"strings"

	"acache/internal/core"
	"acache/internal/cost"
	"acache/internal/cql"
	"acache/internal/fault"
	"acache/internal/join"
	"acache/internal/planner"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tier"
	"acache/internal/tuple"
)

// Query declares a continuous multiway equijoin. Construct with NewQuery,
// add relations and join predicates, then Build an Engine.
type Query struct {
	names   []string
	indexOf map[string]int
	schemas []*tuple.Schema
	windows []int    // count-based window sizes; 0 = unbounded
	spans   []int64  // time-based window spans; 0 = not time-windowed
	partBy  []string // partitioning attribute for per-partition windows; "" = none
	preds   []query.Pred
	thetas  []query.ThetaPred
	err     error
}

// NewQuery starts an empty query declaration.
func NewQuery() *Query {
	return &Query{indexOf: make(map[string]int)}
}

// ParseQuery builds a query declaration from a CQL-style statement — the
// continuous query language of the STREAM project this engine reproduces:
//
//	SELECT * FROM R (A) [ROWS 100], S (A, B) [ROWS 100], T (B) [RANGE 60]
//	WHERE R.A = S.A AND S.B = T.B
//
// `[ROWS n]` declares a count-based sliding window (feed with Append),
// `[RANGE n]` a time-based one (feed with AppendAt), and `[UNBOUNDED]` — the
// default — a plain relation (feed with Insert/Delete). Attribute lists may
// be omitted when every attribute appears in the WHERE clause.
func ParseQuery(src string) (*Query, error) {
	st, err := cql.Parse(src)
	if err != nil {
		return nil, err
	}
	q := NewQuery()
	for _, r := range st.Relations {
		switch r.Window {
		case cql.Rows:
			q.WindowedRelation(r.Name, int(r.N), r.Attrs...)
		case cql.Range:
			q.TimeWindowedRelation(r.Name, r.N, r.Attrs...)
		case cql.Partitioned:
			q.PartitionedRelation(r.Name, r.PartitionBy, int(r.N), r.Attrs...)
		default:
			q.Relation(r.Name, r.Attrs...)
		}
	}
	for _, p := range st.Preds {
		q.Join(p.Left.String(), p.Right.String())
	}
	for _, t := range st.Thetas {
		q.Filter(t.Left.String(), t.Op, t.Right.String())
	}
	return q, q.err
}

// Relation adds a relation with the given attribute names and an unbounded
// window (explicit deletes only — the materialized-view regime).
func (q *Query) Relation(name string, attrs ...string) *Query {
	return q.WindowedRelation(name, 0, attrs...)
}

// WindowedRelation adds a relation backed by a count-based sliding window of
// the given size: each Append yields an insert plus, once the window fills,
// the expiring tuple's delete.
func (q *Query) WindowedRelation(name string, window int, attrs ...string) *Query {
	return q.addRelation(name, window, 0, attrs)
}

// PartitionedRelation adds a relation backed by CQL's
// `[PARTITION BY attr ROWS rows]` window: the stream partitions on one
// attribute's value and each partition keeps its own count-based window of
// the rows most recent tuples. Feed it with Append.
func (q *Query) PartitionedRelation(name, partitionBy string, rows int, attrs ...string) *Query {
	if rows <= 0 {
		q.err = fmt.Errorf("acache: relation %q: partition window rows must be positive", name)
		return q
	}
	found := false
	for _, a := range attrs {
		if a == partitionBy {
			found = true
		}
	}
	if !found {
		q.err = fmt.Errorf("acache: relation %q: partition attribute %q not among %v", name, partitionBy, attrs)
		return q
	}
	q.addRelation(name, rows, 0, attrs)
	if q.err == nil {
		q.partBy[len(q.partBy)-1] = partitionBy
	}
	return q
}

// TimeWindowedRelation adds a relation backed by a time-based sliding window
// spanning the given number of time units (CQL's `[RANGE span]`). Feed it
// with AppendAt, which carries the application timestamp; timestamps must be
// non-decreasing across the whole engine.
func (q *Query) TimeWindowedRelation(name string, span int64, attrs ...string) *Query {
	if span <= 0 {
		q.err = fmt.Errorf("acache: relation %q: time window span must be positive", name)
		return q
	}
	return q.addRelation(name, 0, span, attrs)
}

func (q *Query) addRelation(name string, window int, span int64, attrs []string) *Query {
	if q.err != nil {
		return q
	}
	if _, dup := q.indexOf[name]; dup {
		q.err = fmt.Errorf("acache: duplicate relation %q", name)
		return q
	}
	idx := len(q.names)
	q.indexOf[name] = idx
	q.names = append(q.names, name)
	q.schemas = append(q.schemas, tuple.RelationSchema(idx, attrs...))
	q.windows = append(q.windows, window)
	q.spans = append(q.spans, span)
	q.partBy = append(q.partBy, "")
	return q
}

// Join adds an equijoin predicate between two "Rel.Attr" references.
func (q *Query) Join(left, right string) *Query {
	if q.err != nil {
		return q
	}
	l, err := q.parseRef(left)
	if err != nil {
		q.err = err
		return q
	}
	r, err := q.parseRef(right)
	if err != nil {
		q.err = err
		return q
	}
	q.preds = append(q.preds, query.Pred{Left: l, Right: r})
	return q
}

// Filter adds a residual theta predicate between two "Rel.Attr" references;
// op is one of "<", "<=", ">", ">=", "!=". Theta predicates are evaluated
// as filters during join processing; the equijoin predicates alone must
// still connect all relations. This extends the paper's equijoin-only
// setting (Section 3.1).
func (q *Query) Filter(left, op, right string) *Query {
	if q.err != nil {
		return q
	}
	l, err := q.parseRef(left)
	if err != nil {
		q.err = err
		return q
	}
	r, err := q.parseRef(right)
	if err != nil {
		q.err = err
		return q
	}
	cmp, ok := cmpOps[op]
	if !ok {
		q.err = fmt.Errorf("acache: unknown comparison operator %q (want <, <=, >, >=, !=)", op)
		return q
	}
	q.thetas = append(q.thetas, query.ThetaPred{Left: l, Op: cmp, Right: r})
	return q
}

var cmpOps = map[string]query.CmpOp{
	"<": query.Lt, "<=": query.Le, ">": query.Gt, ">=": query.Ge, "!=": query.Ne,
}

func (q *Query) parseRef(ref string) (tuple.Attr, error) {
	dot := strings.IndexByte(ref, '.')
	if dot <= 0 || dot == len(ref)-1 {
		return tuple.Attr{}, fmt.Errorf("acache: malformed attribute reference %q (want Rel.Attr)", ref)
	}
	rel, attr := ref[:dot], ref[dot+1:]
	idx, ok := q.indexOf[rel]
	if !ok {
		return tuple.Attr{}, fmt.Errorf("acache: unknown relation %q in %q", rel, ref)
	}
	return tuple.Attr{Rel: idx, Name: attr}, nil
}

// Options tune the engine; the zero value uses the paper's defaults:
// adaptive cache selection with globally-consistent caches enabled,
// unlimited cache memory, re-optimization every 10 000 updates.
type Options struct {
	// ReoptInterval is the re-optimization interval I in updates
	// (default 10 000).
	ReoptInterval int
	// MemoryBudget is the bytes available to caches (≤ 0 for unlimited).
	MemoryBudget int
	// DisableCaching runs a plain MJoin.
	DisableCaching bool
	// DisableGlobalCaches restricts candidates to the prefix invariant
	// (Section 4); by default globally-consistent caches (Section 6) are
	// considered with the paper's quota m = 6.
	DisableGlobalCaches bool
	// AdaptOrdering enables adaptive pipeline reordering.
	AdaptOrdering bool
	// Seed fixes sampling randomness for reproducible runs.
	Seed int64
	// NoIndex lists "Rel.Attr" references that must not use hash indexes
	// (joins on them fall back to nested-loop scans).
	NoIndex []string
	// Incremental enables the incremental re-optimizer and the
	// unimportant-statistics tracker (the paper's Section 8 future work)
	// instead of from-scratch selection at every re-optimization.
	Incremental bool
	// BudgetAware integrates the memory budget into cache selection itself
	// rather than the paper's modular select-then-allocate pipeline. Only
	// meaningful with a finite MemoryBudget.
	BudgetAware bool
	// TwoWayCaches switches plain caches to 2-way set-associative
	// replacement (Section 3.3's planned replacement-scheme experiment).
	TwoWayCaches bool
	// PrimeCaches eagerly populates freshly selected caches instead of
	// filling them through misses.
	PrimeCaches bool
	// DisableFilters turns off the fingerprint filters in front of the
	// relation indexes and cache tables (for ablation and differential
	// testing). Results and simulated cost are identical either way; the
	// filters only short-circuit real slot searches on guaranteed misses.
	DisableFilters bool
	// FilterAwareCostModel makes the profiler's probe-cost estimates use
	// the observed filter effectiveness (the filtered-miss / hit-path cost
	// split) instead of the unfiltered tariff. Off by default so published
	// cost figures stay byte-identical with and without filters.
	FilterAwareCostModel bool
	// SampleStride makes the profiler observe 1 in SampleStride updates
	// (with unbiased scaling) instead of every update, cutting hot-path
	// profiling overhead at the price of statistics that converge
	// SampleStride× slower and carry sampling noise. ≤ 1 keeps the exact,
	// every-update profiler; results are identical either way — only the
	// measured statistics (and therefore adaptation timing) can differ.
	SampleStride int
	// ReoptOffset delays the engine's first post-startup re-optimization
	// by the given number of updates. Used by sharded builds to stagger
	// shards' re-optimization work (see ShardOptions.ReoptStagger); single
	// engines rarely need it. Steady-state cadence is unaffected.
	ReoptOffset int
	// storeProvider and relTokens are injected by Server.Register before it
	// builds a hosted engine: the provider lets equivalent relations attach
	// to the server's shared window stores, and the tokens give cache specs
	// their cross-query identity for pooled demand accounting. Never set by
	// callers — sharing is meaningless without the server's registry.
	storeProvider join.StoreProvider
	relTokens     []string
	// fs is the filesystem seam durability I/O (WAL, checkpoint, spill
	// files) goes through; nil uses the real filesystem. Set only by tests,
	// which inject a fault.DiskInjector to exercise disk-failure paths
	// deterministically.
	fs fault.FS
	// Pipeline enables staged pipeline-parallel execution inside the
	// engine (inside each shard, for sharded engines): join pipelines are
	// split into bounded-buffer stages overlapping probe work, cache
	// maintenance, and result emission across Workers goroutines. Results,
	// window and cache contents, and simulated cost totals are bit-identical
	// to serial execution; only wall-clock time changes. The zero value
	// keeps the serial path. Engines built with workers should be Closed
	// when no longer needed.
	Pipeline PipelineOptions
	// Tier enables tiered slab storage: relation-window pages and cache-entry
	// payloads past a hot-bytes watermark spill to memory-mapped files under
	// Tier.Dir, with access-tracked promotion back to the hot tier. Results,
	// window contents, and simulated cost totals are bit-identical with
	// tiering on or off — the cost meter always charges the in-memory tariff
	// — while the resident footprint reported to the memory allocator shrinks
	// to the hot tier. Sharded engines give each shard a subdirectory. The
	// zero value keeps everything in memory.
	Tier TierOptions
}

// TierOptions configure tiered (mmap-backed cold tier) storage.
type TierOptions struct {
	// Dir is the spill directory; empty disables tiering.
	Dir string
	// HotBytes is the hot-tier watermark per store and per engine's cache
	// pool, in bytes (≤ 0 uses a default).
	HotBytes int
	// PageBytes is the spill page size (≤ 0 uses a default; rounded up to
	// the OS page granularity).
	PageBytes int
}

// PipelineOptions configure staged pipeline-parallel execution.
type PipelineOptions struct {
	// Workers is the number of stage workers per engine (0 = serial).
	Workers int
	// StageBuffer is the capacity, in chunks, of the bounded buffers
	// connecting stages (0 = default). Smaller buffers apply backpressure
	// sooner; Stats.StageStalls counts blocked hand-offs.
	StageBuffer int
}

// Engine executes a built query. It is not safe for concurrent use: updates
// are processed strictly in call order, each to completion, matching the
// paper's execution model.
type Engine struct {
	q        *Query
	core     *core.Engine
	windows  []*stream.SlidingWindow
	timeWins []*stream.TimeWindow        // non-nil for time-windowed relations
	partWins []*stream.PartitionedWindow // non-nil for partitioned relations
	seq      uint64
	server   *Server         // non-nil when hosted by a Server
	upsBuf   []stream.Update // Append's window-update scratch, reused per call
	dur      *durable        // non-nil for durable engines (BuildDurable)
}

// coreConfig translates the public Options into the core engine's
// configuration — shared by Build and BuildSharded (where every shard gets
// the same configuration apart from its seed and budget slice).
func (opts Options) coreConfig(q *Query) (core.Config, error) {
	cfg := core.Config{
		ReoptInterval:  opts.ReoptInterval,
		MemoryBudget:   opts.MemoryBudget,
		DisableCaching: opts.DisableCaching,
		AdaptOrdering:  opts.AdaptOrdering,
		Incremental:    opts.Incremental,
		BudgetAware:    opts.BudgetAware,
		TwoWayCaches:   opts.TwoWayCaches,
		PrimeCaches:    opts.PrimeCaches,
		Seed:           opts.Seed,
		DisableFilters: opts.DisableFilters,
		StoreProvider:  opts.storeProvider,
		RelTokens:      opts.relTokens,
		ReoptOffset:    opts.ReoptOffset,

		FilterAwareCostModel: opts.FilterAwareCostModel,
		Pipeline: join.PipelineOptions{
			Workers:     opts.Pipeline.Workers,
			StageBuffer: opts.Pipeline.StageBuffer,
		},
		Tier: tier.Options{
			Dir:       opts.Tier.Dir,
			HotBytes:  opts.Tier.HotBytes,
			PageBytes: opts.Tier.PageBytes,
			FS:        opts.fs,
		},
	}
	cfg.Profiler.SampleStride = opts.SampleStride
	if cfg.MemoryBudget <= 0 {
		cfg.MemoryBudget = -1
	}
	if !opts.DisableGlobalCaches {
		cfg.GCQuota = 6
	}
	for _, ref := range opts.NoIndex {
		a, err := q.parseRef(ref)
		if err != nil {
			return core.Config{}, err
		}
		cfg.ScanOnly = append(cfg.ScanOnly, a)
	}
	return cfg, nil
}

// winSig renders relation i's window declaration canonically — part of every
// cross-query sharing identity, because two queries share state over a stream
// only when their windows retain exactly the same tuples.
func (q *Query) winSig(i int) string {
	switch {
	case q.spans[i] > 0:
		return fmt.Sprintf("t%d", q.spans[i])
	case q.partBy[i] != "":
		return fmt.Sprintf("p%d:%s", q.windows[i], q.partBy[i])
	default:
		return fmt.Sprintf("s%d", q.windows[i])
	}
}

// storeToken identifies relation i for physical window-store sharing: stream
// name, full attribute list, and window. Two queries may attach to one store
// only when all three agree — the store's schema and slab layout are shared
// verbatim, so attribute renaming is NOT allowed here (unlike relToken).
func (q *Query) storeToken(i int) string {
	var b strings.Builder
	b.WriteString(q.names[i])
	b.WriteByte('|')
	for _, a := range q.schemas[i].Cols() {
		b.WriteString(a.Name)
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(q.winSig(i))
	return b.String()
}

// relToken identifies relation i for cross-query cache accounting: stream
// name, arity, and window — no attribute names, because cache contents are
// positional and survive renaming (see planner.CrossID).
func (q *Query) relToken(i int) string {
	return fmt.Sprintf("%s|%d|%s", q.names[i], q.schemas[i].Len(), q.winSig(i))
}

// relTokens renders every relation's relToken, for Options.relTokens.
func (q *Query) allRelTokens() []string {
	out := make([]string, len(q.names))
	for i := range q.names {
		out[i] = q.relToken(i)
	}
	return out
}

// buildWindows constructs the per-relation ingress window operators shared
// by Engine and ShardedEngine.
func (q *Query) buildWindows() (wins []*stream.SlidingWindow, timeWins []*stream.TimeWindow, partWins []*stream.PartitionedWindow) {
	wins = make([]*stream.SlidingWindow, len(q.windows))
	timeWins = make([]*stream.TimeWindow, len(q.windows))
	partWins = make([]*stream.PartitionedWindow, len(q.windows))
	for i, w := range q.windows {
		switch {
		case q.spans[i] > 0:
			timeWins[i] = stream.NewTimeWindow(q.spans[i])
		case q.partBy[i] != "":
			col := q.schemas[i].MustColOf(tuple.Attr{Rel: i, Name: q.partBy[i]})
			partWins[i] = stream.NewPartitionedWindow(w, col)
		default:
			wins[i] = stream.NewSlidingWindow(w)
		}
	}
	return wins, timeWins, partWins
}

// Build validates the query and constructs an Engine.
func (q *Query) Build(opts Options) (*Engine, error) {
	if q.err != nil {
		return nil, q.err
	}
	iq, err := query.NewWithThetas(q.schemas, q.preds, q.thetas)
	if err != nil {
		return nil, err
	}
	cfg, err := opts.coreConfig(q)
	if err != nil {
		return nil, err
	}
	en, err := core.NewEngine(iq, nil, cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{q: q, core: en}
	e.windows, e.timeWins, e.partWins = q.buildWindows()
	return e, nil
}

func (q *Query) relIndex(name string) int {
	idx, ok := q.indexOf[name]
	if !ok {
		panic(fmt.Sprintf("acache: unknown relation %q", name))
	}
	return idx
}

func (q *Query) checkArity(rel int, values []int64) {
	if want := q.schemas[rel].Len(); len(values) != want {
		panic(fmt.Sprintf("acache: relation %q has %d attributes, got %d values",
			q.names[rel], want, len(values)))
	}
}

func (e *Engine) relIndex(name string) int { return e.q.relIndex(name) }

func (e *Engine) checkArity(rel int, values []int64) { e.q.checkArity(rel, values) }

// Insert processes an insertion into the named relation and returns the
// number of join-result updates emitted.
func (e *Engine) Insert(rel string, values ...int64) int {
	return e.apply(stream.Insert, e.relIndex(rel), values)
}

// Delete processes a deletion from the named relation and returns the
// number of join-result updates emitted.
func (e *Engine) Delete(rel string, values ...int64) int {
	return e.apply(stream.Delete, e.relIndex(rel), values)
}

func (e *Engine) apply(op stream.Op, rel int, values []int64) int {
	e.checkArity(rel, values)
	e.seq++
	n := e.processOne(stream.Update{
		Op:    op,
		Rel:   rel,
		Tuple: tuple.Tuple(values),
		Seq:   e.seq,
	})
	if e.dur != nil {
		e.durLogApply(op, rel, values)
	}
	return n
}

// processOne pushes one update through the core engine and drives the
// hosting server's rebalance cadence, if any.
func (e *Engine) processOne(u stream.Update) int {
	n := e.core.Process(u)
	if e.server != nil {
		e.server.tick()
	}
	return n
}

// Append pushes one tuple of a count-windowed relation's append-only
// stream, processing the expiry delete (if the window was full) and then
// the insert. It returns the total join-result updates emitted.
//
// When the engine is hosted by a Server and shares this relation's window
// store with other queries, drive the stream through Server.Append instead:
// it interleaves the expiry delete and the insert across all sharers in the
// lockstep order the shared store requires.
func (e *Engine) Append(rel string, values ...int64) int {
	idx := e.relIndex(rel)
	ups := e.windowUpdates(idx, values)
	total := 0
	for _, u := range ups {
		e.seq++
		u.Seq = e.seq
		total += e.processOne(u)
	}
	if e.dur != nil {
		e.logOp(walAppend, idx, 0, values)
	}
	return total
}

// windowUpdates runs relation idx's count-window operator for one appended
// tuple and returns the updates to process — the expiry delete (if the
// window was full) followed by the insert, Rel already stamped. The returned
// slice aliases the engine's reusable scratch; it is valid until the next
// windowUpdates or AppendBatch call.
func (e *Engine) windowUpdates(idx int, values []int64) []stream.Update {
	e.checkArity(idx, values)
	var ups []stream.Update
	switch {
	case e.partWins[idx] != nil:
		ups = e.partWins[idx].AppendInto(tuple.Tuple(values).Clone(), e.upsBuf[:0])
	case e.windows[idx] != nil:
		ups = e.windows[idx].AppendInto(tuple.Tuple(values).Clone(), e.upsBuf[:0])
	default:
		panic(fmt.Sprintf("acache: relation %q is time-windowed; use AppendAt", e.q.names[idx]))
	}
	e.upsBuf = ups[:0]
	for i := range ups {
		ups[i].Rel = idx
	}
	return ups
}

// AppendBatch pushes a batch of tuples of a count-windowed relation's
// append-only stream and processes the resulting window updates through the
// engine's vectorized batch path. The window emits the expiry deletes the
// batch forces out first and then the inserts (grouped schedule, see
// stream.SlidingWindow.AppendBatchInto), so the executor sees two long
// same-operation runs it can vectorize instead of alternating singletons.
// It returns the total join-result updates emitted.
func (e *Engine) AppendBatch(rel string, rows [][]int64) int {
	idx := e.relIndex(rel)
	ts := make([]tuple.Tuple, len(rows))
	for i, r := range rows {
		e.checkArity(idx, r)
		ts[i] = tuple.Tuple(r).Clone()
	}
	var ups []stream.Update
	switch {
	case e.partWins[idx] != nil:
		ups = e.partWins[idx].AppendBatchInto(ts, e.upsBuf[:0])
	case e.windows[idx] != nil:
		ups = e.windows[idx].AppendBatchInto(ts, e.upsBuf[:0])
	default:
		panic(fmt.Sprintf("acache: relation %q is time-windowed; use AppendAt", rel))
	}
	for i := range ups {
		ups[i].Rel = idx
		e.seq++
		ups[i].Seq = e.seq
	}
	total := e.core.ProcessBatch(ups)
	if e.server != nil {
		for range ups {
			e.server.tick()
		}
	}
	e.upsBuf = ups[:0]
	if e.dur != nil {
		e.logBatch(idx, rows)
	}
	return total
}

// AppendAt pushes one tuple of a time-windowed relation's stream at
// application time ts. Time is global: before the insert, every
// time-windowed relation expires its tuples older than its span relative to
// ts, and those deletes are processed first (oldest first, per relation in
// declaration order). Timestamps must be non-decreasing across the engine.
// It returns the total join-result updates emitted.
func (e *Engine) AppendAt(rel string, ts int64, values ...int64) int {
	idx := e.relIndex(rel)
	if e.timeWins[idx] == nil {
		panic(fmt.Sprintf("acache: relation %q is not time-windowed; use Append or Insert", rel))
	}
	e.checkArity(idx, values)
	total := e.advanceTime(ts)
	for _, u := range e.timeWins[idx].Append(tuple.Tuple(values).Clone(), ts) {
		u.Rel = idx
		e.seq++
		u.Seq = e.seq
		total += e.processOne(u)
	}
	if e.dur != nil {
		e.logOp(walAppendAt, idx, ts, values)
	}
	return total
}

// AdvanceTime moves the global clock to ts without inserting anything,
// expiring every time window's old tuples and processing their deletes. It
// returns the join-result updates emitted by the retractions.
func (e *Engine) AdvanceTime(ts int64) int {
	total := e.advanceTime(ts)
	if e.dur != nil {
		e.logOp(walAdvance, 0, ts, nil)
	}
	return total
}

// advanceTime is AdvanceTime without the WAL record — AppendAt advances the
// clock as part of its own (single) logged call.
func (e *Engine) advanceTime(ts int64) int {
	total := 0
	for idx, w := range e.timeWins {
		if w == nil {
			continue
		}
		for _, u := range w.AdvanceTo(ts) {
			u.Rel = idx
			e.seq++
			u.Seq = e.seq
			total += e.processOne(u)
		}
	}
	return total
}

// Stats is a snapshot of the engine's state and counters.
type Stats struct {
	// Updates is the number of updates processed.
	Updates uint64
	// Outputs is the number of join-result updates emitted.
	Outputs uint64
	// WorkSeconds is the simulated processing time consumed so far.
	WorkSeconds float64
	// UsedCaches describes the caches currently spliced into pipelines.
	UsedCaches []string
	// Reopts and SkippedReopts count selection runs and p-threshold skips.
	Reopts, SkippedReopts int

	// Adaptivity-overhead telemetry (summed across shards for sharded
	// engines; process-local, not persisted by durable checkpoints).

	// ReoptNanos is the wall-clock time spent in the re-optimization
	// machinery (change monitoring, candidate rescoring, selection, and
	// plan application) — the adaptivity work that is not probe execution
	// or cache maintenance.
	ReoptNanos int64
	// SampledUpdates counts the updates on which the profiler actually
	// drew a profiling decision: every update with Options.SampleStride
	// ≤ 1, roughly Updates/SampleStride otherwise.
	SampledUpdates uint64
	// CandidateRescores counts candidate cost-model evaluations across all
	// re-optimizations — the work Options.Incremental's rescore suppression
	// avoids.
	CandidateRescores uint64
	// ReoptsSuppressed counts skipped re-optimization rounds in which the
	// unimportant-statistics filter silenced at least one candidate.
	ReoptsSuppressed int
	// CacheMemoryBytes is the total bytes held by used caches.
	CacheMemoryBytes int
	// FilterBytes is the memory resident in fingerprint filters (store
	// indexes plus cache tables), charged against the server budget.
	FilterBytes int
	// FilteredProbes counts probes the filters short-circuited: guaranteed
	// misses answered without touching a bucket.
	FilteredProbes uint64
	// FilterFalsePositives counts probes the filters passed that then
	// missed anyway (the cuckoo false-positive tail).
	FilterFalsePositives uint64

	// PipelineWorkers is the staged-pipeline worker count in effect
	// (per shard, for sharded engines); 0 means serial execution.
	PipelineWorkers int
	// StageStalls counts blocked hand-offs between pipeline stages —
	// backpressure events where a stage's bounded buffer was full.
	StageStalls uint64
	// StageOverlapRatio is the fraction of updates whose join pass executed
	// with stage overlap (ineligible pipelines fall back to serial).
	StageOverlapRatio float64

	// WindowBytes is the tuple footprint of the relation window stores
	// (shared stores counted at full size in every sharer's Stats; see
	// SharedBytesSaved for the server-scope discount).
	WindowBytes int

	// Tiered-storage telemetry (zero with tiering off): TierHotBytes /
	// TierColdBytes split the window and cache footprint into the resident
	// hot tier and the spilled cold tier; TierPromotions / TierDemotions
	// count moves between them.
	TierHotBytes   int
	TierColdBytes  int
	TierPromotions uint64
	TierDemotions  uint64

	// Durability telemetry (zero for non-durable, untiered engines).

	// WALErrors counts durability I/O failures (failed WAL writes, flushes,
	// and syncs); the first one poisons the WAL — see SyncWAL.
	WALErrors uint64
	// WALRecordsReplayed is how many WAL records BuildDurable applied at
	// startup; WALBytesIgnored is how many WAL bytes it did not apply (a
	// torn tail, or a whole stale-epoch log); WALReplayReason says how
	// replay ended: "" (not durable), "empty", "clean", "torn-tail",
	// "torn-header", or "stale-epoch".
	WALRecordsReplayed uint64
	WALBytesIgnored    uint64
	WALReplayReason    string
	// TierWriteErrors counts failed spill writes; DurabilityDegraded is
	// true once a store or the cache tier has dropped to hot-only operation
	// (results stay exact, the cold-tier memory win is lost).
	TierWriteErrors    uint64
	DurabilityDegraded bool

	// Cross-query sharing telemetry, populated for engines hosted by a
	// Server (see Server.Register); zero elsewhere.

	// SharedStores is the number of this engine's relations attached to a
	// server-scope shared window store.
	SharedStores int
	// SharedCaches is the number of cache sharing groups whose memory
	// demand the server pools across ≥ 2 registered queries.
	SharedCaches int
	// SharerCount is the largest number of queries (this one included)
	// attached to any one of this engine's shared window stores.
	SharerCount int
	// SharedBytesSaved is the window-store and filter memory this engine
	// avoids duplicating by attaching to stores another registered query
	// already carries (the first registrant's Stats report the bytes;
	// later sharers report the saving).
	SharedBytesSaved int

	// Resilience telemetry, populated by sharded engines (ShardedEngine
	// with ShardOptions.Resilience set); zero elsewhere.

	// Shedded is the number of input tuples dropped under overload —
	// admission shedding plus degradation-ladder ingress shedding. Results
	// remain the exact answer over the non-shed subset of the input.
	Shedded uint64
	// SheddedByRelation breaks Shedded down by relation name (nil when
	// nothing was shed).
	SheddedByRelation map[string]uint64
	// CallbackPanics counts OnResult callback panics that were isolated.
	CallbackPanics uint64
	// Recoveries counts shard workers rebuilt from checkpoint after a panic.
	Recoveries int
	// QueueDepth is the updates buffered between ingress and shards.
	QueueDepth int
	// AdmissionWaitSeconds is the total time the ingress spent blocked on
	// full shard mailboxes (backpressure).
	AdmissionWaitSeconds float64
	// DegradeLevel is the degradation-ladder rung in effect: 0 normal,
	// 1 caches paused, 2 caches paused + input shedding.
	DegradeLevel int
}

// Stats returns a snapshot of counters and the current plan.
func (e *Engine) Stats() Stats {
	snap := e.core.Snapshot()
	s := Stats{
		Updates:          e.seq,
		Outputs:          snap.Outputs,
		WorkSeconds:      cost.Seconds(snap.Work),
		Reopts:           snap.Reopts,
		SkippedReopts:    snap.SkippedReopts,
		CacheMemoryBytes: snap.CacheMemoryBytes,

		ReoptNanos:        snap.ReoptNanos,
		SampledUpdates:    snap.SampledUpdates,
		CandidateRescores: snap.CandidateRescores,
		ReoptsSuppressed:  snap.ReoptsSuppressed,

		FilterBytes:          snap.FilterBytes,
		FilteredProbes:       snap.FilteredProbes,
		FilterFalsePositives: snap.FilterFalsePositives,
		PipelineWorkers:      snap.PipelineWorkers,
		StageStalls:          snap.StageStalls,
		StageOverlapRatio:    snap.StageOverlapRatio,
		WindowBytes:          snap.WindowBytes,
		SharedStores:         snap.SharedStores,
		TierHotBytes:         snap.TierHotBytes,
		TierColdBytes:        snap.TierColdBytes,
		TierPromotions:       snap.TierPromotions,
		TierDemotions:        snap.TierDemotions,
		TierWriteErrors:      snap.TierWriteErrors,
		DurabilityDegraded:   snap.DurDegraded,
	}
	if d := e.dur; d != nil {
		s.WALErrors = d.walErrs
		s.WALRecordsReplayed = d.recsReplayed
		s.WALBytesIgnored = d.bytesIgnored
		s.WALReplayReason = d.replayReason
	}
	for _, spec := range e.core.UsedCaches() {
		s.UsedCaches = append(s.UsedCaches, e.describe(spec))
	}
	sort.Strings(s.UsedCaches)
	return s
}

// describe renders a cache spec with the query's relation names.
func (e *Engine) describe(spec *planner.Spec) string { return e.q.describeSpec(spec) }

// describeSpec renders a cache spec with the query's relation names.
func (q *Query) describeSpec(spec *planner.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Δ%s: cache(", q.names[spec.Pipeline])
	for i, r := range spec.Segment {
		if i > 0 {
			b.WriteString(" ⋈ ")
		}
		b.WriteString(q.names[r])
	}
	switch {
	case spec.SelfMaint:
		b.WriteString(", self-maintained")
	case spec.GC:
		b.WriteString(" ⋉")
		for _, r := range spec.Y {
			b.WriteString(" " + q.names[r])
		}
	}
	b.WriteString(")")
	return b.String()
}

// Close releases the engine's staged-pipeline workers and tiered-storage
// spill files, if any. Engines built with Options.Pipeline and Options.Tier
// zero-valued need no Close; calling it is a harmless no-op. Idempotent.
// Updates processed after Close fall back to the serial path (same results,
// no overlap). For durable engines Close discards the on-disk state
// (checkpoint, WAL, spills) — use CloseKeep to preserve it for a warm
// restart.
func (e *Engine) Close() {
	e.core.Close()
	if e.dur != nil {
		e.dur.discard()
		e.dur = nil
	}
}

// SetMemoryBudget changes the cache memory budget at run time; the engine
// re-divides it among caches by priority immediately.
func (e *Engine) SetMemoryBudget(bytes int) {
	if bytes <= 0 {
		bytes = -1
	}
	e.core.SetMemoryBudget(bytes)
}

// WindowLen returns the current tuple count of the named relation's window.
func (e *Engine) WindowLen(rel string) int {
	return e.core.Exec().Store(e.relIndex(rel)).Len()
}

// RelationNames returns the declared relation names in declaration order
// and each relation's attribute count — what a generic driver needs to feed
// the engine.
func (q *Query) RelationNames() (names []string, arities []int) {
	for i, n := range q.names {
		names = append(names, n)
		arities = append(arities, q.schemas[i].Len())
	}
	return names, arities
}

// OnResult registers a callback receiving every join-result delta as a flat
// row (see ResultColumns for the column labels), with insert = true for
// additions and false for retractions. Callbacks run synchronously inside
// update processing and must not call back into the engine.
func (e *Engine) OnResult(f func(insert bool, row []int64)) {
	e.core.OnResult(func(ins bool, vals []tuple.Value) { f(ins, vals) })
}

// ResultColumns returns the labels of result-row columns, in the order
// OnResult delivers them: relations in declaration order, each relation's
// attributes in declaration order, as "Rel.Attr".
func (q *Query) ResultColumns() []string {
	var out []string
	for i, name := range q.names {
		for _, a := range q.schemas[i].Cols() {
			out = append(out, name+"."+a.Name)
		}
	}
	return out
}

// Explain renders the adaptive optimizer's view: every candidate cache with
// its state (used / profiled / unused) and latest benefit, maintenance
// cost, and miss-probability estimates in unit-time terms — EXPLAIN for a
// continuously optimized query.
func (e *Engine) Explain() string {
	var b strings.Builder
	for _, c := range e.core.Candidates() {
		fmt.Fprintf(&b, "%-9s %s  benefit=%.4f cost=%.4f miss=%.2f",
			c.State.String(), e.describe(c.Spec), c.Benefit, c.Cost, c.MissProb)
		if !c.Ready {
			b.WriteString("  (estimating)")
		}
		if c.Demotions > 0 {
			fmt.Fprintf(&b, "  demoted×%d", c.Demotions)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DescribePlan renders the engine's current physical plan — one line per
// pipeline with its join order, then one line per cache placement with its
// mode, occupancy, and hit rate.
func (e *Engine) DescribePlan() string {
	plan := e.core.Plan()
	var b strings.Builder
	for i, pipe := range plan.Pipelines {
		fmt.Fprintf(&b, "Δ%s:", e.q.names[i])
		for _, r := range pipe {
			fmt.Fprintf(&b, " ⋈ %s", e.q.names[r])
		}
		b.WriteByte('\n')
	}
	for _, c := range plan.Caches {
		mode := "prefix"
		switch {
		case c.SelfMnt:
			mode = "self-maintained"
		case c.Reduced:
			mode = "reduced"
		}
		shared := ""
		if c.Shared {
			shared = ", shared"
		}
		fmt.Fprintf(&b, "  cache %s [%s%s]: %d entries, %.1f KB, %.0f%% hits\n",
			e.describe(c.Spec), mode, shared, c.Entries, float64(c.Bytes)/1024, 100*c.HitRate)
	}
	return b.String()
}
