package acache

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"acache/internal/bench"
	"acache/internal/cache"
	"acache/internal/cost"
	"acache/internal/tuple"
)

// Figure/table benchmarks: each regenerates one of the paper's experiments
// at a reduced scale per iteration and reports headline shape metrics. Run
// `go run ./cmd/acache-bench -scale full` for the paper-scale tables; these
// testing.B entry points exist so `go test -bench` regenerates every figure
// and so CI catches shape regressions.

// reportEdges reports the first and last Y of the experiment's first two
// series (caching and MJoin, or the plan families), which carry the
// crossover shapes the paper's figures show.
func reportEdges(b *testing.B, e *bench.Experiment) {
	b.Helper()
	for _, s := range e.Series {
		if len(s.Y) == 0 {
			b.Fatalf("series %q empty", s.Label)
		}
		unit := strings.Map(func(r rune) rune {
			if r == ' ' || r == '(' || r == ')' || r == '/' {
				return '_'
			}
			return r
		}, s.Label)
		b.ReportMetric(s.Y[0], unit+"_first")
		b.ReportMetric(s.Y[len(s.Y)-1], unit+"_last")
	}
}

func benchScale() bench.RunConfig {
	return bench.RunConfig{Warmup: 2_000, Measure: 5_000, Seed: 42}
}

func BenchmarkFig6HitProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportEdges(b, bench.Fig6(benchScale()))
	}
}

func BenchmarkFig7JoinSelectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportEdges(b, bench.Fig7(benchScale()))
	}
}

func BenchmarkFig8UpdateProbeRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportEdges(b, bench.Fig8(benchScale()))
	}
}

func BenchmarkFig9NWayJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportEdges(b, bench.Fig9(benchScale()))
	}
}

func BenchmarkFig10JoinCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportEdges(b, bench.Fig10(benchScale()))
	}
}

func BenchmarkFig11PlanSpectrum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportEdges(b, bench.Fig11(benchScale()))
	}
}

func BenchmarkFig12Adaptivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportEdges(b, bench.Fig12(benchScale()))
	}
}

func BenchmarkFig13Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportEdges(b, bench.Fig13(benchScale()))
	}
}

// Micro-benchmarks: real wall-clock cost of the hot paths.

func BenchmarkEngineInsertThreeWay(b *testing.B) {
	eng, err := NewQuery().
		WindowedRelation("R", 100, "A").
		WindowedRelation("S", 100, "A", "B").
		WindowedRelation("T", 100, "B").
		Join("R.A", "S.A").
		Join("S.B", "T.B").
		Build(Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch i % 3 {
		case 0:
			eng.Append("R", rng.Int63n(100))
		case 1:
			eng.Append("S", rng.Int63n(100), rng.Int63n(100))
		default:
			eng.Append("T", rng.Int63n(100))
		}
	}
}

// BenchmarkEngineAdaptiveHotpath measures the warm caching-enabled hot path:
// windows full, the adaptive engine settled on a cache set, profiler and
// re-optimizer live. This is the configuration the off-hot-path adaptivity
// work (sampled profiling, epoch-gated readiness, allocation-free
// re-optimization) targets, so CI guards it against the merge base alongside
// the raw insert path.
func BenchmarkEngineAdaptiveHotpath(b *testing.B) {
	eng, err := NewQuery().
		WindowedRelation("R", 100, "A").
		WindowedRelation("S", 100, "A", "B").
		WindowedRelation("T", 100, "B").
		Join("R.A", "S.A").
		Join("S.B", "T.B").
		Build(Options{ReoptInterval: 2000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	step := func() {
		switch i := rng.Intn(3); i {
		case 0:
			eng.Append("R", rng.Int63n(100))
		case 1:
			eng.Append("S", rng.Int63n(100), rng.Int63n(100))
		default:
			eng.Append("T", rng.Int63n(100))
		}
	}
	for i := 0; i < 20000; i++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// TestEngineInsertAllocBudget pins the steady-state allocation count of the
// warm three-way insert path. The slab store, open-addressing indexes, and
// join arena exist to keep this near zero; the budget has slack so GC-timing
// noise does not flake, but a regression back to per-update key/slice
// allocations (tens per op) fails loudly.
func TestEngineInsertAllocBudget(t *testing.T) {
	const budget = 12 // actual is ~2: the window clone + one cache-resident segment
	eng, err := NewQuery().
		WindowedRelation("R", 100, "A").
		WindowedRelation("S", 100, "A", "B").
		WindowedRelation("T", 100, "B").
		Join("R.A", "S.A").
		Join("S.B", "T.B").
		Build(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	step := func() {
		switch v := rng.Int63n(100); rng.Intn(3) {
		case 0:
			eng.Append("R", v)
		case 1:
			eng.Append("S", v, rng.Int63n(100))
		default:
			eng.Append("T", v)
		}
	}
	// Warm: fill every window past capacity so inserts, evictions, probes,
	// and output emission are all exercised by the measured runs.
	for i := 0; i < 2_000; i++ {
		step()
	}
	if got := testing.AllocsPerRun(500, step); got > budget {
		t.Fatalf("warm three-way insert: %.1f allocs/op, budget %d", got, budget)
	}
}

// BenchmarkEngineProcessBatch measures the vectorized batch path against the
// per-update loop on a bursty 4-way common-attribute workload (window 64,
// domain 16, bursts of 256 rows per relation visit). Domain 16 puts each
// probe's fan-out near 4 — the join-selectivity regime the paper's
// experiments run at, and the one the batch path amortizes: sub-batches of
// composites share probe keys and duplicate updates share whole pipeline
// passes. Every sub-benchmark replays the identical row stream; b.N counts
// tuples. "loop" appends rows one at a time, "batch=K" feeds the same bursts
// through AppendBatch in chunks of K. ReoptInterval is pushed out so the
// steady state after the initial cache selection is what's measured. `go run
// ./cmd/acache-bench -experiment batch` records the same comparison (at the
// internal/core layer) into BENCH_batch.json.
func BenchmarkEngineProcessBatch(b *testing.B) {
	const nRel, window, domain, burst = 4, 64, 16, 256
	names := make([]string, nRel)
	for i := range names {
		names[i] = fmt.Sprintf("R%d", i)
	}
	run := func(b *testing.B, batch int) {
		q := NewQuery()
		for _, n := range names {
			q.WindowedRelation(n, window, "A")
		}
		for i := 1; i < nRel; i++ {
			q.Join("R0.A", names[i]+".A")
		}
		eng, err := q.Build(Options{Seed: 1, ReoptInterval: 10_000_000})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		rows := make([][]int64, burst)
		for i := range rows {
			rows[i] = make([]int64, 1)
		}
		rel := 0
		feed := func(n int) {
			for i := 0; i < n; i++ {
				rows[i][0] = rng.Int63n(domain)
			}
			name := names[rel]
			rel = (rel + 1) % nRel
			if batch <= 0 {
				for _, r := range rows[:n] {
					eng.Append(name, r...)
				}
				return
			}
			for off := 0; off < n; off += batch {
				end := off + batch
				if end > n {
					end = n
				}
				eng.AppendBatch(name, rows[off:end])
			}
		}
		// Warm: fill every window past capacity so the measured runs exercise
		// expiries, probes, and output emission.
		for i := 0; i < 2*nRel; i++ {
			feed(burst)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; {
			n := burst
			if rest := b.N - done; n > rest {
				n = rest
			}
			feed(n)
			done += n
		}
	}
	b.Run("loop", func(b *testing.B) { run(b, 0) })
	for _, batch := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) { run(b, batch) })
	}
}

// BenchmarkShardedInsert measures wall-clock append throughput of the
// sharded engine at increasing shard counts on the Fig9-style n-way
// common-attribute workload (6 relations joined on A, window 50, domain
// 100). On a multi-core host throughput scales with shards; with
// GOMAXPROCS=1 the shards time-slice one core and the numbers measure
// sharding overhead instead (see BENCH_sharding.json's gomaxprocs field).
func BenchmarkShardedInsert(b *testing.B) {
	const nRel = 6
	names := make([]string, nRel)
	for i := range names {
		names[i] = fmt.Sprintf("R%d", i)
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", p), func(b *testing.B) {
			q := NewQuery()
			for _, n := range names {
				q.WindowedRelation(n, 50, "A")
			}
			for i := 1; i < nRel; i++ {
				q.Join("R0.A", names[i]+".A")
			}
			eng, err := q.BuildSharded(Options{Seed: 1}, ShardOptions{Shards: p})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Append(names[i%nRel], rng.Int63n(100))
			}
			eng.Flush()
			b.StopTimer()
		})
	}
}

func BenchmarkCacheProbeHit(b *testing.B) {
	c := cache.New(1<<12, 8, -1, &cost.Meter{})
	keys := make([]tuple.Key, 256)
	for i := range keys {
		keys[i] = tuple.KeyOfValues([]tuple.Value{int64(i)})
		c.Create(keys[i], []tuple.Tuple{{int64(i), int64(i)}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Probe(keys[i%len(keys)])
	}
}

func BenchmarkCacheMaintenance(b *testing.B) {
	c := cache.New(1<<12, 8, -1, &cost.Meter{})
	keys := make([]tuple.Key, 256)
	for i := range keys {
		keys[i] = tuple.KeyOfValues([]tuple.Value{int64(i)})
		c.Create(keys[i], nil)
	}
	tp := tuple.Tuple{1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := keys[i%len(keys)]
		c.Insert(u, tp)
		c.Delete(u, tp)
	}
}
