package acache

import (
	"math/rand"
	"testing"

	"acache/internal/memory"
)

func threeWayDecl(prefix string) *Query {
	return NewQuery().
		WindowedRelation(prefix+"R", 60, "A").
		WindowedRelation(prefix+"S", 60, "A", "B").
		WindowedRelation(prefix+"T", 60, "B").
		Join(prefix+"R.A", prefix+"S.A").
		Join(prefix+"S.B", prefix+"T.B")
}

func TestServerRegisterAndDeregister(t *testing.T) {
	s := NewServer(64 * 1024)
	a, err := s.Register("a", threeWayDecl("a"), Options{Seed: 1})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := s.Register("a", threeWayDecl("x"), Options{}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if s.Engine("a") != a {
		t.Fatal("Engine lookup failed")
	}
	if _, err := s.Register("b", threeWayDecl("b"), Options{Seed: 2}); err != nil {
		t.Fatalf("Register b: %v", err)
	}
	if got := s.Queries(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Queries = %v", got)
	}
	s.Deregister("a")
	if s.Engine("a") != nil || len(s.Queries()) != 1 {
		t.Fatal("Deregister incomplete")
	}
	s.Deregister("a") // idempotent
}

func TestServerDividesBudgetByPriority(t *testing.T) {
	// Query "hot" has a high-benefit, small-footprint cache (few repeating
	// probe keys); query "cold" only benefits from negative caching over a
	// huge key domain — low benefit per byte. Under a budget too small for
	// both demands, the priority rule must satisfy hot's ask first.
	s := NewServer(3 * 1024)
	s.RebalanceEvery = 2_000
	hot, err := s.Register("hot", threeWayDecl("h"), Options{ReoptInterval: 2_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.Register("cold", threeWayDecl("c"), Options{ReoptInterval: 2_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40_000; i++ {
		switch {
		case i%12 < 8:
			hot.Append("hT", rng.Int63n(25))
		case i%12 == 8:
			hot.Append("hR", rng.Int63n(25))
		case i%12 == 9:
			hot.Append("hS", rng.Int63n(25), rng.Int63n(25))
		case i%12 == 10:
			cold.Append("cT", rng.Int63n(1000))
		default:
			cold.Append("cR", 1_000_000+rng.Int63n(1000))
		}
	}
	if len(hot.Stats().UsedCaches) == 0 {
		t.Skip("hot query adopted no cache under this horizon; cannot judge the split")
	}
	_ = cold
	b := s.Budgets()
	if b["hot"] < b["cold"] {
		t.Fatalf("budget split inverted: hot granted %d bytes, cold %d bytes (hot caches: %v, cold: %v)",
			b["hot"], b["cold"], hot.Stats().UsedCaches, cold.Stats().UsedCaches)
	}
	if b["hot"] == 0 {
		t.Fatal("hot query starved of memory")
	}
	if b["hot"]+b["cold"] > 3*1024 {
		t.Fatalf("grants %v exceed the global budget", b)
	}
}

func TestServerUnlimitedBudget(t *testing.T) {
	s := NewServer(0) // unlimited
	eng, err := s.Register("q", threeWayDecl("q"), Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	eng.Append("qR", 1)
	s.Rebalance()
	s.SetBudget(16 * 1024)
	s.SetBudget(0)
}

func TestServerStatsAggregation(t *testing.T) {
	s := NewServer(16 * 1024)
	a, _ := s.Register("a", threeWayDecl("a"), Options{Seed: 7})
	a.Append("aR", 1)
	a.Append("aS", 1, 2)
	a.Append("aT", 2)
	st := s.Stats()
	if st["a"].Updates != 3 || st["a"].Outputs != 1 {
		t.Fatalf("stats = %+v", st["a"])
	}
}

func TestServerPriorityOrdering(t *testing.T) {
	s := NewServer(16 * 1024)
	s.Register("a", threeWayDecl("a"), Options{Seed: 8})
	s.Register("b", threeWayDecl("b"), Options{Seed: 9})
	names := s.sortedByPriority()
	if len(names) != 2 {
		t.Fatalf("priority order = %v", names)
	}
}

func TestServerRebalanceGrantsArePageMultiples(t *testing.T) {
	s := NewServer(10 * memory.PageBytes)
	eng, _ := s.Register("q", threeWayDecl("q"), Options{Seed: 10})
	s.Rebalance()
	_ = eng
}

func TestServerHostsShardedQuery(t *testing.T) {
	s := NewServer(64 * 1024)
	sq, err := s.RegisterSharded("sq", threeWayDecl("s"), Options{Seed: 11}, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Sharded("sq") != sq || s.Engine("sq") != nil {
		t.Fatal("sharded lookup failed")
	}
	if _, err := s.Register("sq", threeWayDecl("x"), Options{}); err == nil {
		t.Fatal("duplicate name across serial/sharded accepted")
	}
	serial, err := s.Register("plain", threeWayDecl("p"), Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2_000; i++ {
		sq.Append("sR", rng.Int63n(30))
		sq.Append("sS", rng.Int63n(30), rng.Int63n(30))
		sq.Append("sT", rng.Int63n(30))
		serial.Append("pR", rng.Int63n(30))
	}
	s.Rebalance()
	b := s.Budgets()
	if b["sq"] < 0 || b["plain"] < 0 {
		t.Fatalf("finite global budget granted unlimited memory: %v", b)
	}
	if b["sq"]+b["plain"] > 64*1024 {
		t.Fatalf("grants %v exceed the global budget", b)
	}
	st := s.Stats()
	if st["sq"].Updates == 0 {
		t.Fatal("sharded query stats missing")
	}
	s.Deregister("sq")
	if s.Sharded("sq") != nil || len(s.Queries()) != 1 {
		t.Fatal("sharded Deregister incomplete")
	}
}

// TestServerRebalanceAllocBudget pins the steady-state allocation count of
// the periodic rebalance path (the Server.tick → Rebalance loop every
// RebalanceEvery updates). The request slice, grant maps, and the memory
// manager's sort scratch are all reused, so a warm rebalance should allocate
// nothing; the budget leaves slack for map-growth noise but a regression
// back to per-call slice+map churn fails loudly — the same contract
// TestEngineInsertAllocBudget pins for the insert hot path.
func TestServerRebalanceAllocBudget(t *testing.T) {
	const budget = 4 // actual is 0 at steady state
	s := NewServer(32 * 1024)
	a, err := s.Register("a", threeWayDecl("a"), Options{ReoptInterval: 500, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Register("b", threeWayDecl("b"), Options{ReoptInterval: 500, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 4_000; i++ {
		a.Append("aR", rng.Int63n(20))
		a.Append("aS", rng.Int63n(20), rng.Int63n(20))
		b.Append("bT", rng.Int63n(20))
	}
	s.Rebalance() // warm the reused buffers
	if got := testing.AllocsPerRun(200, s.Rebalance); got > budget {
		t.Fatalf("warm Rebalance: %.1f allocs/op, budget %d", got, budget)
	}
}

// TestServerStatsFilterTelemetry drives a miss-heavy workload and asserts
// the fingerprint-filter counters surface through Server.Stats(): probes
// short-circuited by the filters, the false-positive tail, and the filter
// bytes resident (which MemoryDemand charges against the server budget).
func TestServerStatsFilterTelemetry(t *testing.T) {
	s := NewServer(32 * 1024)
	eng, err := s.Register("q", threeWayDecl("q"), Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	// Disjoint key ranges per relation: nearly every probe misses, the
	// regime the filters short-circuit.
	for i := 0; i < 3_000; i++ {
		eng.Append("qR", rng.Int63n(1000))
		eng.Append("qS", 10_000+rng.Int63n(1000), 20_000+rng.Int63n(1000))
		eng.Append("qT", 30_000+rng.Int63n(1000))
	}
	st := s.Stats()["q"]
	if st.FilteredProbes == 0 {
		t.Fatal("miss-heavy workload produced no filter short-circuits")
	}
	if st.FilterBytes == 0 {
		t.Fatal("resident filters report zero bytes")
	}
	if st.FilterFalsePositives > st.FilteredProbes {
		t.Fatalf("false positives (%d) exceed short-circuits (%d): counters miswired",
			st.FilterFalsePositives, st.FilteredProbes)
	}
	// The filters' memory is part of the query's demand, so the server's
	// grant (page-rounded) must cover at least the filter bytes.
	if g := s.Budgets()["q"]; g >= 0 && g < st.FilterBytes {
		t.Fatalf("grant %d bytes does not cover %d filter bytes", g, st.FilterBytes)
	}
}
