package acache

import (
	"fmt"
	"sort"

	"acache/internal/memory"
)

// Server hosts multiple continuous queries and divides a global cache-memory
// budget among them — the DSMS setting the paper situates A-Caching in:
// "the memory in a DSMS must be partitioned among all active continuous
// queries" (Section 5). Each registered query runs its own adaptive engine;
// Rebalance applies the Section 5 greedy priority rule *across* queries,
// granting memory where the aggregate net benefit per byte is highest.
//
// Like the engines it hosts, a Server is not safe for concurrent use: the
// caller serializes updates and rebalances.
type Server struct {
	mgr     *memory.Manager
	engines map[string]*Engine
	order   []string
	// RebalanceEvery is how many processed updates pass between automatic
	// rebalances (0 disables automatic rebalancing; call Rebalance
	// directly). Default 10 000.
	RebalanceEvery int
	sinceRebalance int
}

// NewServer creates a server with the given global cache-memory budget in
// bytes (≤ 0 for unlimited).
func NewServer(memoryBudget int) *Server {
	if memoryBudget <= 0 {
		memoryBudget = -1
	}
	return &Server{
		mgr:            memory.NewManager(memoryBudget),
		engines:        make(map[string]*Engine),
		RebalanceEvery: 10_000,
	}
}

// Register builds the query and adds its engine under the given name. The
// engine starts with no cache memory until the first rebalance (or with
// unlimited memory when the server's budget is unlimited).
func (s *Server) Register(name string, q *Query, opts Options) (*Engine, error) {
	if _, dup := s.engines[name]; dup {
		return nil, fmt.Errorf("acache: query %q already registered", name)
	}
	if s.mgr.Budget() >= 0 {
		// Start minimal; Rebalance grants real budgets by priority.
		opts.MemoryBudget = memory.PageBytes
	}
	eng, err := q.Build(opts)
	if err != nil {
		return nil, err
	}
	eng.server = s
	s.engines[name] = eng
	s.order = append(s.order, name)
	s.Rebalance()
	return eng, nil
}

// Deregister removes a query's engine, returning its memory to the pool.
func (s *Server) Deregister(name string) {
	if _, ok := s.engines[name]; !ok {
		return
	}
	delete(s.engines, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i:i], s.order[i+1:]...)
			break
		}
	}
	s.Rebalance()
}

// Engine returns the named query's engine, or nil.
func (s *Server) Engine(name string) *Engine { return s.engines[name] }

// Queries returns the registered query names in registration order.
func (s *Server) Queries() []string { return append([]string(nil), s.order...) }

// Rebalance re-divides the global budget across the registered queries by
// the Section 5 priority rule: each query asks for its used caches' memory
// demand and is ranked by aggregate net benefit per byte; grants are made
// greedily in priority order. With an unlimited budget every query gets
// unlimited memory.
func (s *Server) Rebalance() {
	s.sinceRebalance = 0
	if s.mgr.Budget() < 0 {
		for _, eng := range s.engines {
			eng.core.SetMemoryBudget(-1)
		}
		return
	}
	var reqs []memory.Request
	for _, name := range s.order {
		eng := s.engines[name]
		bytes, net := eng.core.MemoryDemand()
		if bytes < memory.PageBytes {
			bytes = memory.PageBytes // headroom so new caches can start
		}
		reqs = append(reqs, memory.Request{
			ID:       name,
			Priority: net / float64(bytes),
			Bytes:    bytes,
		})
	}
	grants := s.mgr.Allocate(reqs)
	for name, grant := range grants {
		s.engines[name].core.SetMemoryBudget(grant)
	}
}

// SetBudget changes the global budget and rebalances immediately.
func (s *Server) SetBudget(bytes int) {
	if bytes <= 0 {
		bytes = -1
	}
	s.mgr.SetBudget(bytes)
	s.Rebalance()
}

// Budgets returns each query's currently granted cache-memory budget in
// bytes (−1 = unlimited), keyed by query name.
func (s *Server) Budgets() map[string]int {
	out := make(map[string]int, len(s.engines))
	for name, eng := range s.engines {
		out[name] = eng.core.MemoryBudgetBytes()
	}
	return out
}

// Stats aggregates per-query statistics, keyed by query name.
func (s *Server) Stats() map[string]Stats {
	out := make(map[string]Stats, len(s.engines))
	for name, eng := range s.engines {
		out[name] = eng.Stats()
	}
	return out
}

// tick is called by hosted engines after each processed update to drive
// automatic rebalancing.
func (s *Server) tick() {
	if s.RebalanceEvery <= 0 {
		return
	}
	s.sinceRebalance++
	if s.sinceRebalance >= s.RebalanceEvery {
		s.Rebalance()
	}
}

// sortedByPriority is a testing aid: query names by descending current
// priority.
func (s *Server) sortedByPriority() []string {
	type pq struct {
		name string
		prio float64
	}
	var ps []pq
	for _, name := range s.order {
		bytes, net := s.engines[name].core.MemoryDemand()
		if bytes < 1 {
			bytes = 1
		}
		ps = append(ps, pq{name, net / float64(bytes)})
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].prio > ps[b].prio })
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.name
	}
	return out
}
