package acache

import (
	"fmt"
	"sort"

	"acache/internal/memory"
)

// Server hosts multiple continuous queries and divides a global cache-memory
// budget among them — the DSMS setting the paper situates A-Caching in:
// "the memory in a DSMS must be partitioned among all active continuous
// queries" (Section 5). Each registered query runs its own adaptive engine;
// Rebalance applies the Section 5 greedy priority rule *across* queries,
// granting memory where the aggregate net benefit per byte is highest.
//
// Like the engines it hosts, a Server is not safe for concurrent use: the
// caller serializes updates and rebalances. Sharded engines run their shards
// on worker goroutines, but their ingress is part of the same single-caller
// contract — the server quiesces them (Flush) before reading their demand.
type Server struct {
	mgr     *memory.Manager
	engines map[string]*Engine
	sharded map[string]*ShardedEngine
	order   []string
	// RebalanceEvery is how many processed updates pass between automatic
	// rebalances (0 disables automatic rebalancing; call Rebalance
	// directly). Default 10 000.
	RebalanceEvery int
	sinceRebalance int
	// Rebalance's request and grant buffers, reused per call so the
	// periodic rebalance path does not churn a slice and map every time.
	reqs   []memory.Request
	grants map[string]int
}

// NewServer creates a server with the given global cache-memory budget in
// bytes (≤ 0 for unlimited).
func NewServer(memoryBudget int) *Server {
	if memoryBudget <= 0 {
		memoryBudget = -1
	}
	return &Server{
		mgr:            memory.NewManager(memoryBudget),
		engines:        make(map[string]*Engine),
		sharded:        make(map[string]*ShardedEngine),
		RebalanceEvery: 10_000,
	}
}

// Register builds the query and adds its engine under the given name. The
// engine starts with no cache memory until the first rebalance (or with
// unlimited memory when the server's budget is unlimited).
func (s *Server) Register(name string, q *Query, opts Options) (*Engine, error) {
	if s.registered(name) {
		return nil, fmt.Errorf("acache: query %q already registered", name)
	}
	if s.mgr.Budget() >= 0 {
		// Start minimal; Rebalance grants real budgets by priority.
		opts.MemoryBudget = memory.PageBytes
	}
	eng, err := q.Build(opts)
	if err != nil {
		return nil, err
	}
	eng.server = s
	s.engines[name] = eng
	s.order = append(s.order, name)
	s.Rebalance()
	return eng, nil
}

func (s *Server) registered(name string) bool {
	_, e := s.engines[name]
	_, sh := s.sharded[name]
	return e || sh
}

// RegisterSharded builds the query as a hash-partitioned sharded engine and
// adds it under the given name. The server treats the whole sharded engine
// as one query for budgeting: Rebalance grants it one budget, which the
// engine divides evenly across its shards.
func (s *Server) RegisterSharded(name string, q *Query, opts Options, sopts ShardOptions) (*ShardedEngine, error) {
	if s.registered(name) {
		return nil, fmt.Errorf("acache: query %q already registered", name)
	}
	if s.mgr.Budget() >= 0 {
		// Start minimal (one page per shard); Rebalance grants real budgets.
		shards := sopts.Shards
		if shards < 1 {
			shards = 1
		}
		opts.MemoryBudget = memory.PageBytes * shards
	}
	eng, err := q.BuildSharded(opts, sopts)
	if err != nil {
		return nil, err
	}
	eng.server = s
	s.sharded[name] = eng
	s.order = append(s.order, name)
	s.Rebalance()
	return eng, nil
}

// Deregister removes a query's engine, returning its memory to the pool. A
// sharded engine is closed (its shard goroutines stop).
func (s *Server) Deregister(name string) {
	if !s.registered(name) {
		return
	}
	if eng, ok := s.sharded[name]; ok {
		eng.Close()
	}
	delete(s.engines, name)
	delete(s.sharded, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i:i], s.order[i+1:]...)
			break
		}
	}
	s.Rebalance()
}

// Engine returns the named query's serial engine, or nil (sharded queries
// are reached through Sharded).
func (s *Server) Engine(name string) *Engine { return s.engines[name] }

// Sharded returns the named query's sharded engine, or nil.
func (s *Server) Sharded(name string) *ShardedEngine { return s.sharded[name] }

// Queries returns the registered query names in registration order.
func (s *Server) Queries() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Rebalance re-divides the global budget across the registered queries by
// the Section 5 priority rule: each query asks for its used caches' memory
// demand and is ranked by aggregate net benefit per byte; grants are made
// greedily in priority order. With an unlimited budget every query gets
// unlimited memory.
func (s *Server) Rebalance() {
	s.sinceRebalance = 0
	if s.mgr.Budget() < 0 {
		for _, eng := range s.engines {
			eng.core.SetMemoryBudget(-1)
		}
		for _, eng := range s.sharded {
			eng.applyGrant(-1)
		}
		return
	}
	s.reqs = s.reqs[:0]
	for _, name := range s.order {
		bytes, net := s.demandOf(name)
		s.reqs = append(s.reqs, memory.Request{
			ID:       name,
			Priority: net / float64(bytes),
			Bytes:    bytes,
		})
	}
	if s.grants == nil {
		s.grants = make(map[string]int, len(s.order))
	}
	s.mgr.AllocateInto(s.grants, s.reqs)
	for name, grant := range s.grants {
		if eng, ok := s.engines[name]; ok {
			eng.core.SetMemoryBudget(grant)
			continue
		}
		// A sharded engine receives one grant and splits it evenly across
		// its shards; each shard re-divides its slice among its caches by
		// the Section 5 priority rule, so the hierarchy is server → query →
		// shard → cache. A degraded engine defers the grant until its
		// ladder steps back down (see ShardedEngine.applyGrant).
		s.sharded[name].applyGrant(grant)
	}
}

// demandOf returns the named query's cache-memory demand and aggregate net
// benefit, floored at one page per shard so new caches can start.
func (s *Server) demandOf(name string) (bytes int, net float64) {
	floor := memory.PageBytes
	if eng, ok := s.engines[name]; ok {
		bytes, net = eng.core.MemoryDemand()
	} else {
		eng := s.sharded[name]
		bytes, net = eng.memoryDemand() // quiesces the shards
		floor *= eng.NumShards()
	}
	if bytes < floor {
		bytes = floor
	}
	return bytes, net
}

// SetBudget changes the global budget and rebalances immediately.
func (s *Server) SetBudget(bytes int) {
	if bytes <= 0 {
		bytes = -1
	}
	s.mgr.SetBudget(bytes)
	s.Rebalance()
}

// Budgets returns each query's currently granted cache-memory budget in
// bytes (−1 = unlimited), keyed by query name. A sharded query reports the
// sum of its shards' budgets.
func (s *Server) Budgets() map[string]int {
	out := make(map[string]int, len(s.order))
	for _, name := range s.order {
		if eng, ok := s.engines[name]; ok {
			out[name] = eng.core.MemoryBudgetBytes()
			continue
		}
		eng := s.sharded[name]
		eng.Flush()
		total := 0
		for i := 0; i < eng.NumShards(); i++ {
			b := eng.sh.Shard(i).MemoryBudgetBytes()
			if b < 0 {
				total = -1
				break
			}
			total += b
		}
		out[name] = total
	}
	return out
}

// Stats aggregates per-query statistics, keyed by query name.
func (s *Server) Stats() map[string]Stats {
	out := make(map[string]Stats, len(s.order))
	for _, name := range s.order {
		if eng, ok := s.engines[name]; ok {
			out[name] = eng.Stats()
		} else {
			out[name] = s.sharded[name].Stats()
		}
	}
	return out
}

// Health reports per-shard health for every registered sharded query, keyed
// by query name (serial engines have no shards and are omitted). Safe to
// call while engines are running.
func (s *Server) Health() map[string][]ShardHealth {
	out := make(map[string][]ShardHealth, len(s.sharded))
	for name, eng := range s.sharded {
		out[name] = eng.Health()
	}
	return out
}

// tick is called by hosted engines after each processed update to drive
// automatic rebalancing.
func (s *Server) tick() {
	if s.RebalanceEvery <= 0 {
		return
	}
	s.sinceRebalance++
	if s.sinceRebalance >= s.RebalanceEvery {
		s.Rebalance()
	}
}

// sortedByPriority is a testing aid: query names by descending current
// priority.
func (s *Server) sortedByPriority() []string {
	type pq struct {
		name string
		prio float64
	}
	var ps []pq
	for _, name := range s.order {
		bytes, net := s.demandOf(name)
		ps = append(ps, pq{name, net / float64(bytes)})
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].prio > ps[b].prio })
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.name
	}
	return out
}
