package acache

import (
	"fmt"
	"sort"

	"acache/internal/core"
	"acache/internal/cost"
	"acache/internal/join"
	"acache/internal/memory"
	"acache/internal/relation"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// Server hosts multiple continuous queries and divides a global cache-memory
// budget among them — the DSMS setting the paper situates A-Caching in:
// "the memory in a DSMS must be partitioned among all active continuous
// queries" (Section 5). Each registered query runs its own adaptive engine;
// Rebalance applies the Section 5 greedy priority rule *across* queries,
// granting memory where the aggregate net benefit per byte is highest.
//
// Like the engines it hosts, a Server is not safe for concurrent use: the
// caller serializes updates and rebalances. Sharded engines run their shards
// on worker goroutines, but their ingress is part of the same single-caller
// contract — the server quiesces them (Flush) before reading their demand.
type Server struct {
	mgr     *memory.Manager
	engines map[string]*Engine
	sharded map[string]*ShardedEngine
	order   []string
	// RebalanceEvery is how many processed updates pass between automatic
	// rebalances (0 disables automatic rebalancing; call Rebalance
	// directly). Default 10 000.
	RebalanceEvery int
	sinceRebalance int
	// Rebalance's request and grant buffers, reused per call so the
	// periodic rebalance path does not churn a slice and map every time.
	reqs   []memory.Request
	grants map[string]int

	// Cross-query sharing registry (see DESIGN.md §12). shares holds one
	// entry per physically shared window store, keyed by the full sharing
	// identity (stream + attributes + window + index signature + filter
	// mode); attached lists, per registered query, the entries its engine
	// is a sharer of. Both are maintained by Register/Deregister only.
	shares   map[string]*sharedStoreEntry
	attached map[string][]*sharedStoreEntry
	// Pooled-rebalance scratch, reused per call: cross-query cache groups
	// keyed by planner.CrossID, and the per-query free top-up for pooled
	// bytes another query's request already carries.
	crossGroups map[string]pooledGroup
	topUps      map[string]int
	// Append's fan-out scratch, reused per call.
	feedEngines []*Engine
	feedUps     [][]stream.Update
}

// sharedStoreEntry is one refcounted shared window store: the queries in
// sharers feed it in lockstep through the replay protocol (relation.Store's
// shared mode), each charging its own tariffs. sharers is attach order; the
// first live sharer "carries" the store's bytes in telemetry, later sharers
// report them as saved.
type sharedStoreEntry struct {
	key     string
	store   *relation.Store
	sharers []string
}

// pooledGroup aggregates one cross-query cache sharing group during a
// rebalance: the carrier (first registrant using it) asks for the group's
// bytes once with the sharers' summed net benefit; other sharers get the
// bytes as a free top-up on their grant.
type pooledGroup struct {
	carrier string
	bytes   int
	net     float64
	users   int
}

// NewServer creates a server with the given global cache-memory budget in
// bytes (≤ 0 for unlimited).
func NewServer(memoryBudget int) *Server {
	if memoryBudget <= 0 {
		memoryBudget = -1
	}
	return &Server{
		mgr:            memory.NewManager(memoryBudget),
		engines:        make(map[string]*Engine),
		sharded:        make(map[string]*ShardedEngine),
		shares:         make(map[string]*sharedStoreEntry),
		attached:       make(map[string][]*sharedStoreEntry),
		RebalanceEvery: 10_000,
	}
}

// Register builds the query and adds its engine under the given name. The
// engine starts with no cache memory until the first rebalance (or with
// unlimited memory when the server's budget is unlimited).
//
// Registration is where cross-query sharing happens: relations declaring the
// same stream, attributes, and window as an already registered query attach
// to that query's window store instead of duplicating it (when the index
// needs and filter mode match too, and the store hasn't ingested anything
// yet), and cache sharing groups equivalent across queries pool their memory
// demand in Rebalance. Results, window contents, and cost totals stay
// bit-identical to unshared engines; sharers must then be fed in lockstep —
// every sharer processes update k of a shared stream before any processes
// k+1, which is the natural order when one caller fans an update out to all
// registered queries. Engines with AdaptOrdering never share stores (a
// reordering could change a store's index set mid-stream, changing tariffs).
func (s *Server) Register(name string, q *Query, opts Options) (*Engine, error) {
	if s.registered(name) {
		return nil, fmt.Errorf("acache: query %q already registered", name)
	}
	if s.mgr.Budget() >= 0 {
		// Start minimal; Rebalance grants real budgets by priority.
		opts.MemoryBudget = memory.PageBytes
	}
	opts.relTokens = q.allRelTokens()
	var handed []providerGrant
	if !opts.AdaptOrdering {
		opts.storeProvider = s.shareProvider(q, opts, &handed)
	}
	eng, err := q.Build(opts)
	if err != nil {
		// Build cannot fail after the store provider has been consulted
		// (every error fires during validation, before the executor is
		// built); entries created for this registration are still unwound
		// defensively.
		for _, g := range handed {
			if g.created {
				delete(s.shares, g.ent.key)
			}
		}
		return nil, err
	}
	eng.server = s
	s.engines[name] = eng
	for _, g := range handed {
		g.ent.sharers = append(g.ent.sharers, name)
		s.attached[name] = append(s.attached[name], g.ent)
	}
	s.order = append(s.order, name)
	s.Rebalance()
	return eng, nil
}

// providerGrant records one store the share provider handed to a building
// engine, so Register can finish (or unwind) the registry bookkeeping once
// the build's outcome is known.
type providerGrant struct {
	ent     *sharedStoreEntry
	created bool
}

// shareProvider returns the join.StoreProvider consulted for each of q's
// relations while its engine is built. It hands out a registry store when
// the full sharing identity matches — stream name, attribute names, window,
// index signature, and filter mode — and the store is still empty (a warm
// store's ring order cannot be reconstructed for a late joiner, so late
// registrations fall back to private stores). The first query with a given
// identity creates the entry; it shares through the same replay protocol as
// every later sharer.
func (s *Server) shareProvider(q *Query, opts Options, handed *[]providerGrant) join.StoreProvider {
	return func(rel int, schema *tuple.Schema, meter *cost.Meter, indexSig string) *relation.Store {
		key := fmt.Sprintf("%s|idx=%s|nofil=%v", q.storeToken(rel), indexSig, opts.DisableFilters)
		ent, ok := s.shares[key]
		created := false
		if !ok {
			ent = &sharedStoreEntry{key: key, store: relation.NewStore(rel, schema, meter)}
			s.shares[key] = ent
			created = true
		} else if ent.store.Len() != 0 || ent.store.SharedSeq() != 0 {
			return nil
		}
		*handed = append(*handed, providerGrant{ent: ent, created: created})
		return ent.store
	}
}

func (s *Server) registered(name string) bool {
	_, e := s.engines[name]
	_, sh := s.sharded[name]
	return e || sh
}

// RegisterSharded builds the query as a hash-partitioned sharded engine and
// adds it under the given name. The server treats the whole sharded engine
// as one query for budgeting: Rebalance grants it one budget, which the
// engine divides evenly across its shards.
func (s *Server) RegisterSharded(name string, q *Query, opts Options, sopts ShardOptions) (*ShardedEngine, error) {
	if s.registered(name) {
		return nil, fmt.Errorf("acache: query %q already registered", name)
	}
	if s.mgr.Budget() >= 0 {
		// Start minimal (one page per shard); Rebalance grants real budgets.
		shards := sopts.Shards
		if shards < 1 {
			shards = 1
		}
		opts.MemoryBudget = memory.PageBytes * shards
	}
	// Sharded engines never share stores physically (shards run on worker
	// goroutines; lockstep across engines is impossible), but their caches
	// participate in pooled demand accounting per shard — BuildSharded
	// suffixes each shard's tokens with its slice of the partition plan.
	opts.relTokens = q.allRelTokens()
	eng, err := q.BuildSharded(opts, sopts)
	if err != nil {
		return nil, err
	}
	eng.server = s
	s.sharded[name] = eng
	s.order = append(s.order, name)
	s.Rebalance()
	return eng, nil
}

// Deregister removes a query's engine, returning its memory to the pool. A
// sharded engine is closed (its shard goroutines stop). A query attached to
// shared window stores detaches without disturbing the other sharers — its
// replay cursor is dropped and the store's pending log trimmed; the last
// sharer's departure removes the store from the registry entirely, releasing
// its memory.
func (s *Server) Deregister(name string) {
	if !s.registered(name) {
		return
	}
	if eng, ok := s.sharded[name]; ok {
		eng.Close()
	}
	if eng, ok := s.engines[name]; ok {
		eng.core.Exec().ReleaseSharedStores()
	}
	for _, ent := range s.attached[name] {
		for i, n := range ent.sharers {
			if n == name {
				ent.sharers = append(ent.sharers[:i:i], ent.sharers[i+1:]...)
				break
			}
		}
		if len(ent.sharers) == 0 {
			delete(s.shares, ent.key)
		}
	}
	delete(s.attached, name)
	delete(s.engines, name)
	delete(s.sharded, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i:i], s.order[i+1:]...)
			break
		}
	}
	s.Rebalance()
}

// Engine returns the named query's serial engine, or nil (sharded queries
// are reached through Sharded).
func (s *Server) Engine(name string) *Engine { return s.engines[name] }

// Sharded returns the named query's sharded engine, or nil.
func (s *Server) Sharded(name string) *ShardedEngine { return s.sharded[name] }

// Queries returns the registered query names in registration order.
func (s *Server) Queries() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Rebalance re-divides the global budget across the registered queries by
// the Section 5 priority rule: each query asks for its used caches' memory
// demand and is ranked by aggregate net benefit per byte; grants are made
// greedily in priority order, iterating registered names in registration
// order so grant order is reproducible across runs. With an unlimited budget
// every query gets unlimited memory.
//
// Cache sharing groups equivalent across queries (same planner.CrossID) are
// pooled: the first registrant using a group carries its bytes in one
// request, with every sharer's net benefit folded in — the greedy selector
// sees the aggregate benefit and charges the budget once — and the other
// sharers receive the group's bytes as a free top-up on their grant, so a
// pooled group never starves a later sharer's copy. Shared window stores'
// filter bytes are likewise charged only to the store's first sharer.
func (s *Server) Rebalance() {
	s.sinceRebalance = 0
	if s.mgr.Budget() < 0 {
		for _, name := range s.order {
			if eng, ok := s.engines[name]; ok {
				eng.core.SetMemoryBudget(-1)
				continue
			}
			s.sharded[name].applyGrant(-1)
		}
		return
	}
	s.poolGroups()
	if s.topUps == nil {
		s.topUps = make(map[string]int, len(s.order))
	}
	clear(s.topUps)
	s.reqs = s.reqs[:0]
	for _, name := range s.order {
		groups, filterBytes := s.demandDetailOf(name)
		bytes := filterBytes - s.dupSharedFilterBytes(name)
		net := 0.0
		for _, g := range groups {
			if g.CrossID == "" {
				bytes += g.Bytes
				net += g.Net
				continue
			}
			pool := s.crossGroups[g.CrossID]
			if pool.carrier == name {
				bytes += pool.bytes
				net += pool.net
			} else {
				s.topUps[name] += g.Bytes
			}
		}
		floor := memory.PageBytes
		if eng, ok := s.sharded[name]; ok {
			floor *= eng.NumShards()
		}
		if bytes < floor {
			bytes = floor
		}
		s.reqs = append(s.reqs, memory.Request{
			ID:       name,
			Priority: net / float64(bytes),
			Bytes:    bytes,
		})
	}
	if s.grants == nil {
		s.grants = make(map[string]int, len(s.order))
	}
	s.mgr.AllocateInto(s.grants, s.reqs)
	for _, name := range s.order {
		grant := s.grants[name]
		if grant >= 0 {
			grant += s.topUps[name]
		}
		if eng, ok := s.engines[name]; ok {
			eng.core.SetMemoryBudget(grant)
			continue
		}
		// A sharded engine receives one grant and splits it evenly across
		// its shards; each shard re-divides its slice among its caches by
		// the Section 5 priority rule, so the hierarchy is server → query →
		// shard → cache. A degraded engine defers the grant until its
		// ladder steps back down (see ShardedEngine.applyGrant).
		s.sharded[name].applyGrant(grant)
	}
}

// poolGroups rebuilds the cross-query cache-group aggregation from every
// registered query's current demand detail, in registration order (the first
// registrant using a group becomes its carrier).
func (s *Server) poolGroups() {
	if s.crossGroups == nil {
		s.crossGroups = make(map[string]pooledGroup)
	}
	clear(s.crossGroups)
	for _, name := range s.order {
		groups, _ := s.demandDetailOf(name)
		for _, g := range groups {
			if g.CrossID == "" {
				continue
			}
			pool, ok := s.crossGroups[g.CrossID]
			if !ok {
				s.crossGroups[g.CrossID] = pooledGroup{carrier: name, bytes: g.Bytes, net: g.Net, users: 1}
				continue
			}
			pool.users++
			pool.net += g.Net
			if g.Bytes > pool.bytes {
				pool.bytes = g.Bytes
			}
			s.crossGroups[g.CrossID] = pool
		}
	}
}

// demandDetailOf returns the named query's per-group demand detail and
// filter footprint. The returned slice aliases engine scratch: it is valid
// until the engine's next MemoryDemandDetail call.
func (s *Server) demandDetailOf(name string) ([]core.GroupDemand, int) {
	if eng, ok := s.engines[name]; ok {
		return eng.core.MemoryDemandDetail()
	}
	return s.sharded[name].memoryDemandDetail() // quiesces the shards
}

// dupSharedFilterBytes is the filter memory resident in shared window stores
// this query is attached to but does not carry (another live sharer
// registered first); those bytes are already in the carrier's request.
func (s *Server) dupSharedFilterBytes(name string) int {
	n := 0
	for _, ent := range s.attached[name] {
		if len(ent.sharers) > 1 && ent.sharers[0] != name {
			n += ent.store.FilterBytes()
		}
	}
	return n
}

// demandOf returns the named query's cache-memory demand and aggregate net
// benefit, floored at one page per shard so new caches can start.
func (s *Server) demandOf(name string) (bytes int, net float64) {
	floor := memory.PageBytes
	if eng, ok := s.engines[name]; ok {
		bytes, net = eng.core.MemoryDemand()
	} else {
		eng := s.sharded[name]
		bytes, net = eng.memoryDemand() // quiesces the shards
		floor *= eng.NumShards()
	}
	if bytes < floor {
		bytes = floor
	}
	return bytes, net
}

// SetBudget changes the global budget and rebalances immediately.
func (s *Server) SetBudget(bytes int) {
	if bytes <= 0 {
		bytes = -1
	}
	s.mgr.SetBudget(bytes)
	s.Rebalance()
}

// Budgets returns each query's currently granted cache-memory budget in
// bytes (−1 = unlimited), keyed by query name. A sharded query reports the
// sum of its shards' budgets.
func (s *Server) Budgets() map[string]int {
	out := make(map[string]int, len(s.order))
	for _, name := range s.order {
		if eng, ok := s.engines[name]; ok {
			out[name] = eng.core.MemoryBudgetBytes()
			continue
		}
		eng := s.sharded[name]
		eng.Flush()
		total := 0
		for i := 0; i < eng.NumShards(); i++ {
			b := eng.sh.Shard(i).MemoryBudgetBytes()
			if b < 0 {
				total = -1
				break
			}
			total += b
		}
		out[name] = total
	}
	return out
}

// Stats aggregates per-query statistics, keyed by query name and decorated
// with the server's cross-query sharing view: SharerCount and
// SharedBytesSaved from the window-store registry, SharedCaches from the
// pooled demand groups. Iteration follows registration order, so repeated
// calls observe engines in a reproducible sequence.
func (s *Server) Stats() map[string]Stats {
	s.poolGroups()
	out := make(map[string]Stats, len(s.order))
	for _, name := range s.order {
		var st Stats
		if eng, ok := s.engines[name]; ok {
			st = eng.Stats()
		} else {
			st = s.sharded[name].Stats()
		}
		for _, ent := range s.attached[name] {
			if n := len(ent.sharers); n > st.SharerCount {
				st.SharerCount = n
			}
			if len(ent.sharers) > 1 && ent.sharers[0] != name {
				st.SharedBytesSaved += ent.store.MemoryBytes() + ent.store.FilterBytes()
			}
		}
		groups, _ := s.demandDetailOf(name)
		for _, g := range groups {
			if g.CrossID != "" && s.crossGroups[g.CrossID].users >= 2 {
				st.SharedCaches++
			}
		}
		out[name] = st
	}
	return out
}

// Health reports per-shard health for every registered sharded query, keyed
// by query name (serial engines have no shards and are omitted), iterating
// queries in registration order. Safe to call while engines are running.
func (s *Server) Health() map[string][]ShardHealth {
	out := make(map[string][]ShardHealth, len(s.sharded))
	for _, name := range s.order {
		if eng, ok := s.sharded[name]; ok {
			out[name] = eng.Health()
		}
	}
	return out
}

// Append pushes one tuple of the named count-windowed stream into every
// registered query that declares a relation by that name, and returns the
// total join-result updates emitted across them. The resulting window
// updates are interleaved per update index — every engine processes the
// expiry delete before any engine processes the insert — which is the
// lockstep order queries sharing the stream's window store require (driving
// the engines' own Append methods one after the other would let the first
// sharer run a full delete+insert ahead, which the shared store rejects).
// Queries not sharing anything are fed identically; for them the order is
// merely deterministic. Sharded engines route their updates asynchronously,
// as their own Append does.
func (s *Server) Append(stream string, values ...int64) int {
	s.feedEngines = s.feedEngines[:0]
	s.feedUps = s.feedUps[:0]
	maxUps := 0
	for _, name := range s.order {
		if sh, ok := s.sharded[name]; ok {
			if _, declared := sh.q.indexOf[stream]; declared {
				sh.Append(stream, values...)
			}
			continue
		}
		eng := s.engines[name]
		idx, declared := eng.q.indexOf[stream]
		if !declared {
			continue
		}
		ups := eng.windowUpdates(idx, values)
		s.feedEngines = append(s.feedEngines, eng)
		s.feedUps = append(s.feedUps, ups)
		if len(ups) > maxUps {
			maxUps = len(ups)
		}
	}
	total := 0
	for k := 0; k < maxUps; k++ {
		for i, eng := range s.feedEngines {
			if ups := s.feedUps[i]; k < len(ups) {
				u := ups[k]
				eng.seq++
				u.Seq = eng.seq
				total += eng.processOne(u)
			}
		}
	}
	return total
}

// Insert processes an insertion into the named stream in every registered
// query declaring it, in registration order, and returns the total
// join-result updates emitted. One call is one update, so sharers stay in
// lockstep by construction.
func (s *Server) Insert(stream string, values ...int64) int {
	return s.applyAll(true, stream, values)
}

// Delete processes a deletion from the named stream in every registered
// query declaring it, in registration order, and returns the total
// join-result updates emitted.
func (s *Server) Delete(stream string, values ...int64) int {
	return s.applyAll(false, stream, values)
}

func (s *Server) applyAll(insert bool, stream string, values []int64) int {
	total := 0
	for _, name := range s.order {
		if sh, ok := s.sharded[name]; ok {
			if _, declared := sh.q.indexOf[stream]; declared {
				if insert {
					sh.Insert(stream, values...)
				} else {
					sh.Delete(stream, values...)
				}
			}
			continue
		}
		eng := s.engines[name]
		if _, declared := eng.q.indexOf[stream]; !declared {
			continue
		}
		if insert {
			total += eng.Insert(stream, values...)
		} else {
			total += eng.Delete(stream, values...)
		}
	}
	return total
}

// tick is called by hosted engines after each processed update to drive
// automatic rebalancing.
func (s *Server) tick() {
	if s.RebalanceEvery <= 0 {
		return
	}
	s.sinceRebalance++
	if s.sinceRebalance >= s.RebalanceEvery {
		s.Rebalance()
	}
}

// sortedByPriority is a testing aid: query names by descending current
// priority.
func (s *Server) sortedByPriority() []string {
	type pq struct {
		name string
		prio float64
	}
	var ps []pq
	for _, name := range s.order {
		bytes, net := s.demandOf(name)
		ps = append(ps, pq{name, net / float64(bytes)})
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].prio > ps[b].prio })
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.name
	}
	return out
}
