module acache

go 1.22
