package acache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"acache/internal/relation"
	"acache/internal/tuple"
)

// resultBag collects OnResult deltas into a multiset; the mutex makes it safe
// for emission from shard goroutines.
type resultBag struct {
	mu sync.Mutex
	m  map[string]int
}

func newResultBag() *resultBag { return &resultBag{m: make(map[string]int)} }

func (b *resultBag) hook() func(bool, []int64) {
	return func(insert bool, row []int64) {
		b.mu.Lock()
		b.m[fmt.Sprint(insert, row)]++
		b.mu.Unlock()
	}
}

func diffBags(t *testing.T, label string, want, got map[string]int) {
	t.Helper()
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s: delta %s seen %d times, want %d", label, k, got[k], n)
		}
	}
	for k, n := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: unexpected delta %s ×%d", label, k, n)
		}
	}
}

func storeBag(st *relation.Store) map[string]int {
	m := make(map[string]int)
	st.Scan(func(tp tuple.Tuple) bool {
		m[fmt.Sprint([]int64(tp))]++
		return true
	})
	return m
}

type appendOp struct {
	rel  string
	vals []int64
}

// randomOps builds a fixed random append workload over the given relations
// (sliding windows turn the appends into insert+expiry-delete streams, so the
// equivalence check covers deletions too).
func randomOps(seed int64, n int, rels []string, arities []int, domain int64) []appendOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]appendOp, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Intn(len(rels))
		vals := make([]int64, arities[r])
		for j := range vals {
			vals[j] = rng.Int63n(domain)
		}
		ops = append(ops, appendOp{rels[r], vals})
	}
	return ops
}

// fiveWayStar joins five relations on a common attribute — the fully
// partitioned case: every relation is hash-partitioned on A, no broadcast.
func fiveWayStar() *Query {
	q := NewQuery()
	for i := 0; i < 5; i++ {
		q.WindowedRelation(fmt.Sprintf("R%d", i), 20, "A", "B")
	}
	for i := 1; i < 5; i++ {
		q.Join("R0.A", fmt.Sprintf("R%d.A", i))
	}
	return q
}

// checkShardedEquivalence drives the same workload through a serial engine
// and 1- and 4-shard sharded engines, then asserts identical result-delta
// multisets and identical final window contents per relation (merged across
// shards for partitioned relations, per-replica for broadcast ones).
func checkShardedEquivalence(t *testing.T, mkQuery func() *Query, ops []appendOp) {
	serial, err := mkQuery().Build(Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	serialBag := newResultBag()
	serial.OnResult(serialBag.hook())

	shardCounts := []int{1, 4}
	engines := make([]*ShardedEngine, len(shardCounts))
	bags := make([]*resultBag, len(shardCounts))
	for i, p := range shardCounts {
		eng, err := mkQuery().BuildSharded(Options{Seed: 21}, ShardOptions{Shards: p, BatchSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		engines[i] = eng
		bags[i] = newResultBag()
		eng.OnResult(bags[i].hook())
	}

	for _, op := range ops {
		serial.Append(op.rel, op.vals...)
		for _, eng := range engines {
			eng.Append(op.rel, op.vals...)
		}
	}
	for _, eng := range engines {
		eng.Flush()
	}

	for i, eng := range engines {
		label := fmt.Sprintf("P=%d", shardCounts[i])
		if want, got := serial.Stats().Outputs, eng.Stats().Outputs; got != want {
			t.Errorf("%s: outputs = %d, want %d", label, got, want)
		}
		diffBags(t, label+" results", serialBag.m, bags[i].m)

		for rel := range serial.q.names {
			name := serial.q.names[rel]
			want := storeBag(serial.core.Exec().Store(rel))
			if eng.plan.Covered(rel) {
				// Partitioned: shards hold disjoint slices whose union is
				// the serial window.
				got := make(map[string]int)
				for s := 0; s < eng.NumShards(); s++ {
					for k, n := range storeBag(eng.sh.Shard(s).Exec().Store(rel)) {
						got[k] += n
					}
				}
				diffBags(t, fmt.Sprintf("%s window %s (merged)", label, name), want, got)
			} else {
				// Broadcast: every shard holds an identical replica.
				for s := 0; s < eng.NumShards(); s++ {
					got := storeBag(eng.sh.Shard(s).Exec().Store(rel))
					diffBags(t, fmt.Sprintf("%s window %s (shard %d)", label, name, s), want, got)
				}
			}
			if got, want := eng.WindowLen(name), serial.WindowLen(name); got != want {
				t.Errorf("%s: WindowLen(%s) = %d, want %d", label, name, got, want)
			}
		}
	}
}

func TestShardedEquivalenceThreeWayChain(t *testing.T) {
	n := 4000
	if testing.Short() {
		n = 800
	}
	// R(A) ⋈ S(A,B) ⋈ T(B): no class covers all three relations, so the
	// planner partitions the largest class and broadcasts the rest.
	ops := randomOps(11, n, []string{"R", "S", "T"}, []int{1, 2, 1}, 25)
	checkShardedEquivalence(t, func() *Query { return threeWayDecl("") }, ops)
}

func TestShardedEquivalenceFiveWayStar(t *testing.T) {
	n := 3000
	if testing.Short() {
		n = 600
	}
	ops := randomOps(13, n,
		[]string{"R0", "R1", "R2", "R3", "R4"}, []int{2, 2, 2, 2, 2}, 8)
	checkShardedEquivalence(t, fiveWayStar, ops)
}

func TestShardedPlanShapes(t *testing.T) {
	chain, err := threeWayDecl("").BuildSharded(Options{}, ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Close()
	if chain.NumShards() != 4 {
		t.Fatalf("chain NumShards = %d, want 4", chain.NumShards())
	}
	if desc := chain.Partitioning(); desc == "serial (P=1)" {
		t.Fatalf("chain unexpectedly serial: %s", desc)
	}

	star, err := fiveWayStar().BuildSharded(Options{}, ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer star.Close()
	for rel := 0; rel < 5; rel++ {
		if !star.plan.Covered(rel) {
			t.Errorf("star relation %d not partitioned", rel)
		}
	}

	// A P ≤ 1 request falls back to serial execution regardless of the
	// join graph.
	one, err := threeWayDecl("").BuildSharded(Options{}, ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	if one.NumShards() != 1 {
		t.Fatalf("P=1 NumShards = %d, want 1", one.NumShards())
	}
	if desc := one.Partitioning(); desc != "serial (P=1)" {
		t.Fatalf("P=1 Partitioning = %q", desc)
	}
}
