package acache

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestShardedPanicRecoveryMatchesSerial is the headline chaos scenario: a
// panic injected into 1 of 4 shards mid-stream. The engine must keep
// serving, Health must report the recovery, and — because nothing was shed —
// the result multiset and final window contents must match a serial
// reference exactly.
func TestShardedPanicRecoveryMatchesSerial(t *testing.T) {
	n := 2500
	if testing.Short() {
		n = 600
	}
	ops := randomOps(17, n, []string{"R0", "R1", "R2", "R3", "R4"},
		[]int{2, 2, 2, 2, 2}, 8)

	serial, err := fiveWayStar().Build(Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	serialBag := newResultBag()
	serial.OnResult(serialBag.hook())

	inj := NewFaultInjector().PanicAt(2, 60)
	eng, err := fiveWayStar().BuildSharded(Options{Seed: 21}, ShardOptions{
		Shards:    4,
		BatchSize: 16,
		Resilience: ResilienceOptions{
			CheckpointEvery: 32,
			FaultInjector:   inj,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bag := newResultBag()
	eng.OnResult(bag.hook())

	for _, op := range ops {
		serial.Append(op.rel, op.vals...)
		eng.Append(op.rel, op.vals...)
	}
	eng.Flush()

	if panics, _, _, _ := inj.Counts(); panics != 1 {
		t.Fatalf("injector fired %d panics, want 1", panics)
	}
	st := eng.Stats()
	if st.Recoveries != 1 {
		t.Fatalf("Stats.Recoveries = %d, want 1", st.Recoveries)
	}
	if st.Shedded != 0 {
		t.Fatalf("Stats.Shedded = %d, want 0 (blocking admission)", st.Shedded)
	}
	health := eng.Health()
	if health[2].Recoveries != 1 || health[2].LastError == "" {
		t.Fatalf("shard 2 health = %+v, want one recorded recovery", health[2])
	}
	if health[2].State == Quarantined {
		t.Fatalf("shard 2 quarantined; recovery should have succeeded")
	}

	if want, got := serial.Stats().Outputs, st.Outputs; got != want {
		t.Errorf("outputs = %d, want %d", got, want)
	}
	diffBags(t, "post-recovery results", serialBag.m, bag.m)
	for rel, name := range serial.q.names {
		want := storeBag(serial.core.Exec().Store(rel))
		got := make(map[string]int)
		for s := 0; s < eng.NumShards(); s++ {
			for k, c := range storeBag(eng.sh.Shard(s).Exec().Store(rel)) {
				got[k] += c
			}
		}
		diffBags(t, fmt.Sprintf("window %s (merged)", name), want, got)
	}
}

// TestDegradationLadder stalls one shard so the worst-shard occupancy pins
// at 1 and asserts the ladder climbs to rung 2 (caches paused, input
// shedding, exact per-relation accounting), defers server grants, and steps
// back down to 0 once the overload clears.
func TestDegradationLadder(t *testing.T) {
	inj := NewFaultInjector().StallAt(0, 1)
	eng, err := fiveWayStar().BuildSharded(Options{Seed: 5}, ShardOptions{
		Shards:    4,
		BatchSize: 4,
		Resilience: ResilienceOptions{
			Admission:        AdmitShedOldest,
			DegradeHighWater: 0.5,
			FaultInjector:    inj,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ops := randomOps(19, 2000, []string{"R0", "R1", "R2", "R3", "R4"},
		[]int{2, 2, 2, 2, 2}, 8)
	for _, op := range ops {
		eng.Append(op.rel, op.vals...)
	}
	if lvl := eng.DegradeLevel(); lvl != 2 {
		t.Fatalf("DegradeLevel = %d under a pinned mailbox, want 2", lvl)
	}
	if eng.ladder.shedTotal == 0 {
		t.Fatal("rung 2 shed nothing at the window ingress")
	}
	// A server grant arriving while degraded is deferred, not applied.
	eng.applyGrant(1 << 20)
	if !eng.grantDeferred {
		t.Fatal("budget grant applied while the ladder is engaged")
	}

	var st Stats
	eng.fillResilienceStats(&st)
	if st.DegradeLevel != 2 {
		t.Fatalf("Stats.DegradeLevel = %d, want 2", st.DegradeLevel)
	}
	var byRel uint64
	for _, c := range st.SheddedByRelation {
		byRel += c
	}
	if byRel != st.Shedded || st.Shedded == 0 {
		t.Fatalf("SheddedByRelation sums to %d, Shedded = %d", byRel, st.Shedded)
	}

	// Clear the overload: the stalled worker resumes and the queues drain.
	// Under a light trickle (flush after every append, so occupancy is ~0 at
	// each ladder check) the ladder steps down one rung per check until
	// normal operation resumes and the deferred grant lands.
	inj.Release()
	eng.Flush()
	for i := 0; i < 4*ladderCheckEvery && eng.DegradeLevel() > 0; i++ {
		eng.Append("R0", 1, 1)
		eng.Flush()
	}
	if lvl := eng.DegradeLevel(); lvl != 0 {
		t.Fatalf("DegradeLevel = %d after the overload cleared, want 0", lvl)
	}
	if eng.grantDeferred {
		t.Fatal("deferred grant never applied after recovery")
	}
}

// TestTryAppendAndAppendContext exercises the non-blocking and
// deadline-bounded ingress paths against a stalled shard.
func TestTryAppendAndAppendContext(t *testing.T) {
	inj := NewFaultInjector().StallAt(0, 1)
	eng, err := fiveWayStar().BuildSharded(Options{Seed: 9}, ShardOptions{
		Shards:    2,
		BatchSize: 1,
		Resilience: ResilienceOptions{
			FaultInjector: inj,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ops := randomOps(29, 400, []string{"R0", "R1", "R2", "R3", "R4"},
		[]int{2, 2, 2, 2, 2}, 8)
	sawFull := false
	accepted := 0
	for _, op := range ops {
		if eng.TryAppend(op.rel, op.vals...) {
			accepted++
		} else {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("TryAppend never reported a full engine behind a stalled shard")
	}
	if accepted == 0 {
		t.Fatal("TryAppend accepted nothing")
	}

	// A cancelled context cannot block: AppendContext shdes the blocked
	// batch and reports the cancellation once an update lands on the full
	// shard.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ctxErr error
	for _, op := range ops {
		if err := eng.AppendContext(ctx, op.rel, op.vals...); err != nil {
			ctxErr = err
			break
		}
	}
	if ctxErr == nil {
		t.Fatal("AppendContext never surfaced the cancelled context")
	}
	if !errors.Is(ctxErr, context.Canceled) {
		t.Fatalf("AppendContext error = %v, want context.Canceled", ctxErr)
	}

	// FlushContext must time out rather than wedge while the stall holds.
	tctx, tcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer tcancel()
	if err := eng.FlushContext(tctx); err == nil {
		t.Fatal("FlushContext returned nil during a stall")
	}

	inj.Release()
	if err := eng.FlushContext(context.Background()); err != nil {
		t.Fatalf("flush after release: %v", err)
	}
	if st := eng.Stats(); st.Shedded == 0 {
		t.Fatalf("Stats.Shedded = 0 after context-shed batches")
	}
}

// TestServerResilience hosts a resilient sharded query, drives a panic
// through it, and asserts the server surfaces the recovery via Health and
// survives Deregister after a user-initiated Close (idempotent Close).
func TestServerResilience(t *testing.T) {
	srv := NewServer(1 << 20)
	inj := NewFaultInjector().PanicAt(1, 30)
	eng, err := srv.RegisterSharded("q", fiveWayStar(), Options{Seed: 3}, ShardOptions{
		Shards:    2,
		BatchSize: 8,
		Resilience: ResilienceOptions{
			CheckpointEvery: 16,
			FaultInjector:   inj,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range randomOps(31, 400, []string{"R0", "R1", "R2", "R3", "R4"},
		[]int{2, 2, 2, 2, 2}, 8) {
		eng.Append(op.rel, op.vals...)
	}
	eng.Flush()
	if panics, _, _, _ := inj.Counts(); panics != 1 {
		t.Fatalf("injector fired %d panics, want 1", panics)
	}
	health := srv.Health()["q"]
	if len(health) != 2 || health[1].Recoveries != 1 {
		t.Fatalf("server health = %+v, want one recovery on shard 1", health)
	}
	if st := srv.Stats()["q"]; st.Recoveries != 1 {
		t.Fatalf("server stats recoveries = %d, want 1", st.Recoveries)
	}

	eng.Close() // user closes first …
	eng.Close() // … twice, even
	srv.Deregister("q") // … and the server's own Close must still be safe
	if srv.Sharded("q") != nil {
		t.Fatal("query still registered after Deregister")
	}
}
