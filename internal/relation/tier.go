package relation

import (
	"fmt"
	"unsafe"

	"acache/internal/tier"
	"acache/internal/tuple"
)

// Tiered slab storage: the store's id-addressed slab is partitioned into
// fixed-width pages (perPage tuples of the relation's arity each). Hot pages
// are heap value arrays; pages demoted past the hot-bytes watermark are
// copied into a slot of a memory-mapped spill file and the slab headers of
// their ids are rewritten to point into the mapping. Because mapped memory
// is directly addressable, every probe, scan, and chain walk works on cold
// tuples unchanged — a cold access simply faults the page in — and the
// fingerprint filters in front of the indexes keep guaranteed misses from
// faulting anything.
//
// Charge identity is absolute: nothing in this file touches the cost meter,
// so results, window contents, and simulated cost totals are bit-identical
// with tiering on or off. Only HotMemoryBytes — what the engine reports to
// the memory allocator — and wall-clock time change.
//
// Concurrency: a page move rewrites s.tuples headers in place, so moves are
// only legal from the goroutine owning the store (the staged executor's
// ownership discipline). Headers are always re-fetched through s.tuples[id]
// at use time, and a page keeps its spill slot for life once assigned —
// demoting page P only ever rewrites P's own slot — so a header value read
// before a move stays readable until the same page cycles through another
// promote+demote, which cannot happen within one store operation.

// tierPage is one slab page's table entry.
type tierPage struct {
	vals []tuple.Value // heap storage when hot; nil when cold
	slot int32         // spill slot; -1 until first demotion, then kept for life
	cold bool
	live int32  // live (non-free) ids on this page
	hits uint32 // cold accesses since demotion; drives promotion
	use  uint64 // last hot access (tier clock); drives LRU demotion
}

// promoteAfter is how many tracked accesses a cold page absorbs before it is
// promoted back to the hot tier.
const promoteAfter = 4

// storeTier is the page table and policy state of one tiered store.
type storeTier struct {
	sp       *tier.Spill
	width    int // values per tuple
	perPage  int // tuples per page
	pages    []tierPage
	hotLimit int    // watermark on hot page footprint (actual bytes)
	hotPages int    // pages currently hot
	hotLive  int    // live tuples on hot pages (TupleBytes accounting)
	clock    uint64 // access clock for LRU
	promos   uint64
	demos    uint64
	// writeErrs counts failed spill writes; the first one degrades the store
	// to hot-only operation (demotion stops, results stay exact).
	writeErrs uint64
	degraded  bool
}

func (tr *storeTier) pageFootprint() int { return tr.perPage * tr.width * 8 }

// EnableTier switches an empty store to tiered slab storage, creating its
// spill file at path. The spill's metadata word records the tuple width, so
// a warm restart re-verifies the codec geometry before trusting page refs.
func (s *Store) EnableTier(o tier.Options, path string) error {
	if s.Len() > 0 || len(s.tuples) > 0 {
		return fmt.Errorf("relation: EnableTier on non-empty store %v", s)
	}
	if s.tier != nil {
		return fmt.Errorf("relation: store %v already tiered", s)
	}
	o = o.WithDefaults()
	width := s.schema.Len()
	perPage := o.PageBytes / (8 * width)
	if perPage < 1 {
		return fmt.Errorf("relation: page size %d below tuple width %d", o.PageBytes, width)
	}
	sp, err := tier.Create(path, o.PageBytes, uint64(width), o.FS)
	if err != nil {
		return err
	}
	s.tier = &storeTier{sp: sp, width: width, perPage: perPage, hotLimit: o.HotBytes}
	return nil
}

// TierEnabled reports whether the store runs tiered slab storage.
func (s *Store) TierEnabled() bool { return s.tier != nil }

// CloseTier unmaps and removes the spill file (transient teardown).
// Idempotent; a no-op on untired stores.
func (s *Store) CloseTier() error {
	if s.tier == nil {
		return nil
	}
	return s.tier.sp.Close()
}

// CloseTierKeep unmaps but keeps the spill file on disk, for a durable
// shutdown whose checkpoint references cold pages by slot.
func (s *Store) CloseTierKeep() error {
	if s.tier == nil {
		return nil
	}
	return s.tier.sp.CloseKeep()
}

// pageValues reinterprets a spill page as a value array. Spill pages are
// 8-byte aligned by construction (tier.Spill guarantees it on every build).
func pageValues(b []byte, n int) []tuple.Value {
	return unsafe.Slice((*tuple.Value)(unsafe.Pointer(&b[0])), n)
}

// ColdTuple reads one tuple (idx within page slot) out of a reopened spill
// file — the warm-restart resolver for checkpoint page refs. The returned
// tuple is a copy, valid after the spill closes.
func ColdTuple(sp *tier.Spill, slot int32, idx, width int) tuple.Tuple {
	vals := pageValues(sp.Bytes(slot), sp.PageBytes()/8)
	out := make(tuple.Tuple, width)
	copy(out, vals[idx*width:(idx+1)*width])
	return out
}

// page returns the table entry for id, growing the table as the slab grows.
func (tr *storeTier) page(id int32) *tierPage {
	p := int(id) / tr.perPage
	for len(tr.pages) <= p {
		tr.pages = append(tr.pages, tierPage{slot: -1})
	}
	return &tr.pages[p]
}

// place copies t into id's page slot (promoting the page first if it is
// cold, allocating heap storage if the page is new) and returns the slab
// header for the stored copy.
func (tr *storeTier) place(s *Store, id int32, t tuple.Tuple) tuple.Tuple {
	p := tr.page(id)
	if p.cold {
		tr.promote(s, p, int(id)/tr.perPage)
	}
	if p.vals == nil {
		p.vals = make([]tuple.Value, tr.perPage*tr.width)
		tr.hotPages++
	}
	tr.clock++
	p.use = tr.clock
	p.live++
	tr.hotLive++
	off := (int(id) % tr.perPage) * tr.width
	w := p.vals[off : off+tr.width : off+tr.width]
	copy(w, t)
	return w
}

// unplace records id's removal for the resident accounting (the header is
// cleared by the caller).
func (tr *storeTier) unplace(id int32) {
	p := tr.page(id)
	p.live--
	if !p.cold {
		tr.hotLive--
	}
}

// touch records an access to id's page: cold hits accumulate toward
// promotion, hot hits refresh the LRU clock. Called from the probe and scan
// walks; purely advisory, never charged.
func (tr *storeTier) touch(s *Store, id int32) {
	pi := int(id) / tr.perPage
	p := &tr.pages[pi]
	tr.clock++
	if p.cold {
		p.hits++
		if p.hits >= promoteAfter {
			tr.promote(s, p, pi)
			p.use = tr.clock
		}
		return
	}
	p.use = tr.clock
}

// promote copies a cold page back to the heap and rewrites its ids'
// headers. The page keeps its spill slot (reused at the next demotion).
func (tr *storeTier) promote(s *Store, p *tierPage, pi int) {
	vals := make([]tuple.Value, tr.perPage*tr.width)
	copy(vals, pageValues(tr.sp.Bytes(p.slot), tr.perPage*tr.width))
	p.vals = vals
	p.cold = false
	p.hits = 0
	tr.hotPages++
	tr.hotLive += int(p.live)
	tr.promos++
	tr.rewrite(s, p, pi, vals)
}

// demote copies a hot page into its spill slot and rewrites its ids'
// headers into the mapping.
func (tr *storeTier) demote(s *Store, p *tierPage, pi int) error {
	if p.slot < 0 {
		slot, err := tr.sp.Alloc()
		if err != nil {
			return err
		}
		p.slot = slot
	}
	cold := pageValues(tr.sp.Bytes(p.slot), tr.perPage*tr.width)
	copy(cold, p.vals)
	p.vals = nil
	p.cold = true
	p.hits = 0
	tr.hotPages--
	tr.hotLive -= int(p.live)
	tr.demos++
	tr.rewrite(s, p, pi, cold)
	return nil
}

// rewrite repoints the slab headers of every live id on page pi into vals.
func (tr *storeTier) rewrite(s *Store, p *tierPage, pi int, vals []tuple.Value) {
	lo := pi * tr.perPage
	hi := lo + tr.perPage
	if hi > len(s.tuples) {
		hi = len(s.tuples)
	}
	for id := lo; id < hi; id++ {
		if s.tuples[id] == nil {
			continue
		}
		off := (id - lo) * tr.width
		s.tuples[id] = vals[off : off+tr.width : off+tr.width]
	}
}

// maintain demotes least-recently-used hot pages while the hot footprint
// exceeds the watermark. Called after inserts (the only point hot bytes
// grow); keeps at least one page hot so the active fill page never thrashes.
func (tr *storeTier) maintain(s *Store) {
	fp := tr.pageFootprint()
	for tr.hotPages > 1 && tr.hotPages*fp > tr.hotLimit {
		victim, min := -1, uint64(0)
		for i := range tr.pages {
			p := &tr.pages[i]
			if p.vals == nil {
				continue
			}
			if victim < 0 || p.use < min {
				victim, min = i, p.use
			}
		}
		if victim < 0 {
			return
		}
		if err := tr.demote(s, &tr.pages[victim], victim); err != nil {
			// Spill I/O failed (disk full, …): stop demoting — the store
			// degrades to fully hot, which is always correct — and leave the
			// failure visible through TierWriteErrors / TierDegraded.
			tr.writeErrs++
			tr.degraded = true
			tr.hotLimit = int(^uint(0) >> 1)
			return
		}
	}
}

// HotMemoryBytes is the store's resident tuple footprint — live tuples on
// hot pages, in the same TupleBytes units as MemoryBytes — which is what
// the engine reports to the memory allocator. Equal to MemoryBytes on an
// untired store.
func (s *Store) HotMemoryBytes() int {
	if s.tier == nil {
		return s.MemoryBytes()
	}
	return s.tier.hotLive * TupleBytes
}

// ColdMemoryBytes is the tuple footprint demoted to the spill file.
func (s *Store) ColdMemoryBytes() int {
	if s.tier == nil {
		return 0
	}
	return (len(s.order) - s.tier.hotLive) * TupleBytes
}

// TierCounters returns cumulative page promotions and demotions.
func (s *Store) TierCounters() (promotions, demotions uint64) {
	if s.tier == nil {
		return 0, 0
	}
	return s.tier.promos, s.tier.demos
}

// TierWriteErrors returns the count of failed spill writes.
func (s *Store) TierWriteErrors() uint64 {
	if s.tier == nil {
		return 0
	}
	return s.tier.writeErrs
}

// TierDegraded reports whether a spill-write failure has degraded the store
// to hot-only operation: demotion is disabled, every tuple stays resident,
// and results remain exact — only the cold-tier memory win is lost.
func (s *Store) TierDegraded() bool {
	return s.tier != nil && s.tier.degraded
}

// EachDurable visits every stored tuple in scan order for checkpointing:
// hot tuples pass slot −1 (the checkpoint inlines their values), cold
// tuples pass their spill slot and index within the page (the checkpoint
// records the ref; the spill file carries the bytes).
func (s *Store) EachDurable(f func(t tuple.Tuple, slot int32, idx int)) {
	for _, id := range s.order {
		t := s.tuples[id]
		if s.tier == nil {
			f(t, -1, 0)
			continue
		}
		p := s.tier.page(id)
		if p.cold {
			f(t, p.slot, int(id)%s.tier.perPage)
		} else {
			f(t, -1, 0)
		}
	}
}

// TierWidth returns the tuple width recorded in the spill codec header, or
// 0 for untired stores.
func (s *Store) TierWidth() int {
	if s.tier == nil {
		return 0
	}
	return s.tier.width
}
