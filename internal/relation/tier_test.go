package relation

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"acache/internal/cost"
	"acache/internal/tier"
	"acache/internal/tuple"
)

// Differential test: a tiered store against an untired twin fed the same
// randomized operation stream. Results, contents, and meter totals must be
// bit-identical — tiering only moves bytes, never behavior — while the
// constrained watermark forces real demotion traffic.
func TestStoreTierDifferential(t *testing.T) {
	for _, hot := range []int{4096, 16384, 1 << 20} {
		dir := t.TempDir()
		schema := tuple.RelationSchema(0, "A", "B", "C")
		var mt, mm cost.Meter
		tiered := NewStore(0, schema, &mt)
		opts := tier.Options{Dir: dir, HotBytes: hot, PageBytes: 4096}
		if err := tiered.EnableTier(opts, filepath.Join(dir, "rel0.spill")); err != nil {
			t.Fatal(err)
		}
		mem := NewStore(0, schema, &mm)
		idxT := tiered.CreateIndex("A")
		idxM := mem.CreateIndex("A")
		rng := rand.New(rand.NewSource(int64(hot)))

		randTuple := func() tuple.Tuple {
			return tuple.Tuple{int64(rng.Intn(64)), int64(rng.Intn(8)), int64(rng.Intn(8))}
		}
		for step := 0; step < 8000; step++ {
			switch op := rng.Intn(100); {
			case op < 55:
				u := randTuple()
				tiered.Insert(u.Clone())
				mem.Insert(u)
			case op < 75:
				u := randTuple()
				if got, want := tiered.Delete(u), mem.Delete(u); got != want {
					t.Fatalf("hot=%d step %d: Delete = %v, want %v", hot, step, got, want)
				}
			case op < 90:
				vals := []tuple.Value{int64(rng.Intn(64))}
				var got, want []tuple.Tuple
				tiered.ProbeEach(idxT, vals, func(m tuple.Tuple) { got = append(got, m.Clone()) })
				mem.ProbeEach(idxM, vals, func(m tuple.Tuple) { want = append(want, m.Clone()) })
				sameOrdered(t, "tiered ProbeEach", got, want)
			default:
				u := randTuple()
				if got, want := tiered.CountOf(u), mem.CountOf(u); got != want {
					t.Fatalf("hot=%d step %d: CountOf = %d, want %d", hot, step, got, want)
				}
			}
			if tiered.Len() != mem.Len() {
				t.Fatalf("hot=%d step %d: Len %d vs %d", hot, step, tiered.Len(), mem.Len())
			}
		}
		if mt.Total() != mm.Total() {
			t.Fatalf("hot=%d: meter totals diverge: tiered %v, in-memory %v", hot, mt.Total(), mm.Total())
		}
		sameMultiset(t, "All", tiered.All(), mem.All())
		if tiered.HotMemoryBytes()+tiered.ColdMemoryBytes() != tiered.MemoryBytes() {
			t.Fatalf("hot=%d: tier accounting: hot %d + cold %d != logical %d", hot,
				tiered.HotMemoryBytes(), tiered.ColdMemoryBytes(), tiered.MemoryBytes())
		}
		promos, demos := tiered.TierCounters()
		if hot == 4096 && demos == 0 {
			t.Fatalf("constrained watermark produced no demotions (promos %d)", promos)
		}
		if hot == 4096 && tiered.HotMemoryBytes() >= tiered.MemoryBytes() && tiered.Len() > 200 {
			t.Fatalf("constrained watermark left everything hot: %d of %d bytes",
				tiered.HotMemoryBytes(), tiered.MemoryBytes())
		}
		path := filepath.Join(dir, "rel0.spill")
		if err := tiered.CloseTier(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("CloseTier left spill file: %v", err)
		}
	}
}

// EachDurable must partition the store exactly into inline hot tuples and
// resolvable cold page refs.
func TestStoreTierEachDurable(t *testing.T) {
	dir := t.TempDir()
	schema := tuple.RelationSchema(0, "A", "B")
	s := NewStore(0, schema, &cost.Meter{})
	path := filepath.Join(dir, "rel0.spill")
	if err := s.EnableTier(tier.Options{Dir: dir, HotBytes: 4096, PageBytes: 4096}, path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		s.Insert(tuple.Tuple{int64(i), int64(i % 7)})
	}
	var hot, cold int
	var all []tuple.Tuple
	s.EachDurable(func(u tuple.Tuple, slot int32, idx int) {
		if slot < 0 {
			hot++
			all = append(all, u.Clone())
		} else {
			cold++
			all = append(all, ColdTuple(s.tier.sp, slot, idx, s.TierWidth()))
		}
	})
	if cold == 0 {
		t.Fatal("no cold refs at a constrained watermark")
	}
	if hot+cold != s.Len() {
		t.Fatalf("EachDurable visited %d, want %d", hot+cold, s.Len())
	}
	sameMultiset(t, "EachDurable", all, s.All())
	if err := s.CloseTier(); err != nil {
		t.Fatal(err)
	}
}
