// Package relation implements the windowed relation stores the MJoin
// pipelines probe: the current contents of each sliding window, with hash
// indexes on join attributes and an index-free scan path for nested-loop
// joins (used by the Figure 10 experiment, which drops the index on S.B).
package relation

import (
	"fmt"
	"sort"
	"strings"

	"acache/internal/cost"
	"acache/internal/tuple"
)

// TupleBytes is the paper's input tuple size (Section 7.1); stores and
// subresult structures account memory in these units.
const TupleBytes = 32

// Store holds the current contents of one relation's sliding window.
// Tuples are identified by stable integer ids so indexes survive arbitrary
// insert/delete interleavings. All mutating and probing operations charge
// the configured cost meter.
type Store struct {
	rel    int
	schema *tuple.Schema
	meter  *cost.Meter

	nextID int
	byID   map[int]tuple.Tuple
	order  []int       // ids in scan order (swap-remove)
	orderP map[int]int // id -> position in order
	byVal  map[tuple.Key][]int

	indexes map[string]*HashIndex
}

// NewStore creates an empty store for relation rel with the given schema.
// meter may be shared across stores; it must not be nil.
func NewStore(rel int, schema *tuple.Schema, meter *cost.Meter) *Store {
	return &Store{
		rel:     rel,
		schema:  schema,
		meter:   meter,
		byID:    make(map[int]tuple.Tuple),
		orderP:  make(map[int]int),
		byVal:   make(map[tuple.Key][]int),
		indexes: make(map[string]*HashIndex),
	}
}

// Rel returns the relation index this store holds.
func (s *Store) Rel() int { return s.rel }

// Schema returns the relation schema.
func (s *Store) Schema() *tuple.Schema { return s.schema }

// Len returns the number of tuples currently stored.
func (s *Store) Len() int { return len(s.order) }

// indexName canonicalizes an attribute-name set into an index identifier.
func indexName(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return strings.Join(sorted, ",")
}

// CreateIndex builds (or returns) a hash index on the given attribute names.
// Existing tuples are back-filled.
func (s *Store) CreateIndex(names ...string) *HashIndex {
	id := indexName(names)
	if idx, ok := s.indexes[id]; ok {
		return idx
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	cols := make([]int, len(sorted))
	for i, n := range sorted {
		cols[i] = s.schema.MustColOf(tuple.Attr{Rel: s.rel, Name: n})
	}
	idx := &HashIndex{cols: cols, buckets: make(map[tuple.Key][]int)}
	for _, tid := range s.order {
		idx.insert(tuple.KeyOf(s.byID[tid], idx.cols), tid)
	}
	s.indexes[id] = idx
	return idx
}

// DropIndex removes the index on the given attribute names, if present.
// Joins on those attributes fall back to nested-loop scans.
func (s *Store) DropIndex(names ...string) { delete(s.indexes, indexName(names)) }

// Index returns the index on the given attribute names, or nil when absent.
func (s *Store) Index(names ...string) *HashIndex { return s.indexes[indexName(names)] }

// Insert adds t to the store and all indexes.
func (s *Store) Insert(t tuple.Tuple) {
	id := s.nextID
	s.nextID++
	s.byID[id] = t
	s.orderP[id] = len(s.order)
	s.order = append(s.order, id)
	k := tuple.Encode(t)
	s.byVal[k] = append(s.byVal[k], id)
	s.meter.Charge(cost.HashInsert)
	s.meter.ChargeN(cost.KeyExtract, len(t))
	for _, idx := range s.indexes {
		idx.insert(tuple.KeyOf(t, idx.cols), id)
		s.meter.Charge(cost.HashInsert)
	}
}

// Delete removes one tuple equal to t. It reports whether a tuple was found;
// deleting an absent tuple is a no-op (windows only delete what they
// inserted, so false indicates a driver bug and is surfaced to tests).
func (s *Store) Delete(t tuple.Tuple) bool {
	k := tuple.Encode(t)
	ids := s.byVal[k]
	if len(ids) == 0 {
		return false
	}
	id := ids[len(ids)-1]
	if len(ids) == 1 {
		delete(s.byVal, k)
	} else {
		s.byVal[k] = ids[:len(ids)-1]
	}
	// Swap-remove from scan order.
	p := s.orderP[id]
	last := s.order[len(s.order)-1]
	s.order[p] = last
	s.orderP[last] = p
	s.order = s.order[:len(s.order)-1]
	delete(s.orderP, id)
	delete(s.byID, id)
	s.meter.Charge(cost.HashInsert)
	for _, idx := range s.indexes {
		idx.remove(tuple.KeyOf(t, idx.cols), id)
		s.meter.Charge(cost.HashInsert)
	}
	return true
}

// Scan iterates the store's current tuples in unspecified order, charging
// nested-loop scan cost per tuple visited. The callback returns false to
// stop early. Tuples must not be retained or mutated by the callback.
func (s *Store) Scan(f func(tuple.Tuple) bool) {
	for _, id := range s.order {
		s.meter.Charge(cost.ScanStep)
		if !f(s.byID[id]) {
			return
		}
	}
}

// CountOf returns the number of stored tuples equal to t (windows may hold
// duplicate rows). Used by globally-consistent caches to recompute a cached
// tuple's segment-join multiplicity from base-store value counts.
func (s *Store) CountOf(t tuple.Tuple) int {
	s.meter.Charge(cost.HashProbe)
	return len(s.byVal[tuple.Encode(t)])
}

// All returns the current tuples (copy of the slice headers, shared values);
// for tests and oracles.
func (s *Store) All() []tuple.Tuple {
	out := make([]tuple.Tuple, len(s.order))
	for i, id := range s.order {
		out[i] = s.byID[id]
	}
	return out
}

// Probe looks up the tuples matching key on the given index, charging join
// probe cost. The returned slice must not be mutated.
func (s *Store) Probe(idx *HashIndex, key tuple.Key) []tuple.Tuple {
	s.meter.Charge(cost.IndexProbe)
	ids := idx.buckets[key]
	if len(ids) == 0 {
		return nil
	}
	out := make([]tuple.Tuple, len(ids))
	for i, id := range ids {
		out[i] = s.byID[id]
	}
	return out
}

// MemoryBytes returns the store's tuple footprint (window contents only; the
// paper's memory experiments budget join subresults, not base windows).
func (s *Store) MemoryBytes() int { return len(s.order) * TupleBytes }

func (s *Store) String() string {
	return fmt.Sprintf("R%d[%d tuples]", s.rel+1, s.Len())
}

// HashIndex is an equality index mapping packed key values to tuple ids.
type HashIndex struct {
	cols    []int
	buckets map[tuple.Key][]int
}

// Cols returns the schema columns (sorted by attribute name) the index keys on.
func (ix *HashIndex) Cols() []int { return append([]int(nil), ix.cols...) }

// KeyFor extracts the index key for a tuple of the store's schema.
func (ix *HashIndex) KeyFor(t tuple.Tuple) tuple.Key { return tuple.KeyOf(t, ix.cols) }

// Buckets returns the number of distinct keys currently indexed.
func (ix *HashIndex) Buckets() int { return len(ix.buckets) }

func (ix *HashIndex) insert(k tuple.Key, id int) { ix.buckets[k] = append(ix.buckets[k], id) }

func (ix *HashIndex) remove(k tuple.Key, id int) {
	ids := ix.buckets[k]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(ix.buckets, k)
	} else {
		ix.buckets[k] = ids
	}
}
