// Package relation implements the windowed relation stores the MJoin
// pipelines probe: the current contents of each sliding window, with hash
// indexes on join attributes and an index-free scan path for nested-loop
// joins (used by the Figure 10 experiment, which drops the index on S.B).
//
// Storage is a slab: tuples live in a dense slice addressed by small integer
// ids recycled through a free list, scan order is a swap-remove id slice, and
// both the by-value table and every hash index are open-addressing tables
// keyed by an inline 64-bit hash of the relevant columns — no key string is
// materialized on the insert/delete/probe paths, so steady-state window
// maintenance does not allocate.
package relation

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"acache/internal/cost"
	"acache/internal/filter"
	"acache/internal/tuple"
)

// TupleBytes is the paper's input tuple size (Section 7.1); stores and
// subresult structures account memory in these units.
const TupleBytes = 32

// hashSeed is the fixed seed for the store's inline hashing. Deterministic
// across runs so fixed-seed workloads reproduce bit-identically.
const hashSeed uint64 = 0x9e3779b97f4a7c15

// initialFilterCapacity sizes a fresh index filter; filterAdd rebuilds at
// doubled capacity whenever an insert overflows, so this is only a floor.
const initialFilterCapacity = 64

// Chain-link sentinel: end of a bucket chain.
const nilID int32 = -1

// Open-addressing slot states, stored in oaSlot.head.
const (
	emptySlot int32 = -1 // never occupied (probe chains stop here)
	tombSlot  int32 = -2 // deleted; probe chains continue past it
)

// oaSlot is one open-addressing slot: the key hash plus the head tuple id of
// the chain of tuples sharing that key (chained through a per-table next
// array indexed by tuple id).
type oaSlot struct {
	hash       uint64
	head, tail int32
}

// oaTable is a linear-probing open-addressing table from 64-bit key hashes
// to tuple-id chains. Equality on hash collisions is delegated to the caller
// through an eq callback that compares the probe key against a resident id.
type oaTable struct {
	slots []oaSlot
	mask  uint64
	live  int // occupied slots
	used  int // occupied + tombstones (drives rehash)
}

const minTableSize = 8

func newOATable() oaTable {
	t := oaTable{slots: make([]oaSlot, minTableSize), mask: minTableSize - 1}
	for i := range t.slots {
		t.slots[i].head = emptySlot
	}
	return t
}

// find returns the slot index holding hash with eq(head) true, or -1.
func (t *oaTable) find(hash uint64, eq func(id int32) bool) int {
	if t.slots == nil {
		return -1
	}
	for i := hash & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.head == emptySlot {
			return -1
		}
		if s.head != tombSlot && s.hash == hash && eq(s.head) {
			return int(i)
		}
	}
}

// findOrClaim returns the slot index for hash/eq, claiming an empty or
// tombstone slot when the key is absent (claimed reports which). The caller
// must immediately occupy a claimed slot.
func (t *oaTable) findOrClaim(hash uint64, eq func(id int32) bool) (idx int, claimed bool) {
	if t.slots == nil {
		*t = newOATable()
	}
	firstFree := -1
	for i := hash & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.head == emptySlot {
			if firstFree >= 0 {
				return firstFree, true
			}
			return int(i), true
		}
		if s.head == tombSlot {
			if firstFree < 0 {
				firstFree = int(i)
			}
			continue
		}
		if s.hash == hash && eq(s.head) {
			return int(i), false
		}
	}
}

// occupy marks a claimed slot live, growing the table when it passes the
// load threshold. rehash is invoked after a grow to re-insert every chain
// (the caller owns chain storage, so it drives the rebuild).
func (t *oaTable) occupy(idx int, hash uint64, head, tail int32) (grew bool) {
	s := &t.slots[idx]
	if s.head == emptySlot {
		t.used++
	}
	s.hash = hash
	s.head = head
	s.tail = tail
	t.live++
	// Grow at 3/4 load (counting tombstones, which lengthen probe chains).
	return t.used*4 >= len(t.slots)*3
}

// clearSlot removes a slot's chain, leaving a tombstone.
func (t *oaTable) clearSlot(idx int) {
	t.slots[idx].head = tombSlot
	t.live--
}

// reset re-allocates the slot array for at least capacity chains; the caller
// re-inserts every chain afterwards.
func (t *oaTable) reset(capacity int) {
	size := minTableSize
	for size*3 < capacity*4 { // inverse of the 3/4 load threshold
		size *= 2
	}
	size *= 2 // headroom so a rehash isn't immediately re-triggered
	t.slots = make([]oaSlot, size)
	t.mask = uint64(size - 1)
	for i := range t.slots {
		t.slots[i].head = emptySlot
	}
	t.live = 0
	t.used = 0
}

// insertChain re-inserts a whole chain during a rehash: no equality check is
// needed because chains are unique per key.
func (t *oaTable) insertChain(hash uint64, head, tail int32) {
	for i := hash & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.head == emptySlot {
			s.hash = hash
			s.head = head
			s.tail = tail
			t.live++
			t.used++
			return
		}
	}
}

// Store holds the current contents of one relation's sliding window.
// Tuples are identified by slab ids (dense, free-list recycled) so indexes
// survive arbitrary insert/delete interleavings. All mutating and probing
// operations charge the configured cost meter.
type Store struct {
	rel    int
	schema *tuple.Schema
	meter  *cost.Meter

	tuples   []tuple.Tuple // slab: id -> tuple (nil when free)
	freeIDs  []int32
	order    []int32 // ids in scan order (swap-remove)
	orderPos []int32 // id -> position in order

	byVal   oaTable // full-tuple hash -> duplicate chain
	valNext []int32 // id -> next id in its byVal chain

	indexes map[string]*HashIndex
	idxList []*HashIndex // map values as a slice, so hot paths avoid map iteration
	epoch   uint64       // bumped on index create/drop so compiled steps revalidate

	mutations uint64 // bumped on every Insert/Delete; validates probe memos

	// filtersOn enables the per-index fingerprint filters that answer
	// guaranteed-miss probes without a bucket walk. Results and meter
	// charges are identical either way — the filter short-circuits only
	// real CPU work — so the re-optimizer can toggle it like any other
	// cheap plan knob.
	filtersOn bool
	fstats    FilterStats
	chainOps  uint64 // index chain creations + clears (filter-maintenance proxy)

	// shared, when non-nil, marks a store attached to more than one executor
	// (cross-query window sharing). See ApplyShared for the protocol.
	shared *sharedState

	// tier, when non-nil, runs the slab on tiered pages: hot pages on the
	// heap, pages past the hot watermark demoted to a memory-mapped spill
	// file (see tier.go). Never charged; results are identical either way.
	tier *storeTier
}

// sharedState is the bookkeeping of a cross-query shared store: every sharer
// feeds the same per-relation update sequence, the first arrival of each
// update mutates the store, and later arrivals replay only the cost charges.
// Outcomes are logged so replays charge exactly what the physical application
// charged (a delete's tariff depends on whether the tuple was found).
type sharedState struct {
	baseSeq uint64       // log[0] records the outcome of op baseSeq+1
	lastSeq uint64       // highest physically applied op sequence
	log     []sharedOp   // outcomes of ops baseSeq+1 .. lastSeq
	cursors map[int]uint64 // sharer id -> last consumed op sequence
	nextID  int
}

type sharedOp struct {
	del   bool
	found bool // delete outcome (an absent tuple charges nothing)
	width int  // inserted tuple width (drives the KeyExtract replay charge)
}

// Share registers a new sharer and returns its id. The sharer's cursor starts
// at the store's current sequence, so sharing must be established before any
// shared updates flow (the server enforces this by only adopting empty
// stores).
func (s *Store) Share() int {
	if s.shared == nil {
		s.shared = &sharedState{cursors: make(map[int]uint64)}
	}
	id := s.shared.nextID
	s.shared.nextID++
	s.shared.cursors[id] = s.shared.lastSeq
	return id
}

// Unshare removes a sharer. The store and its contents survive for the
// remaining sharers; the last departure leaves the store intact for its
// owner to drop.
func (s *Store) Unshare(id int) {
	if s.shared == nil {
		return
	}
	delete(s.shared.cursors, id)
	s.trimSharedLog()
}

// Sharers returns the number of executors currently attached.
func (s *Store) Sharers() int {
	if s.shared == nil {
		return 0
	}
	return len(s.shared.cursors)
}

// SharedSeq returns the number of shared updates physically applied so far.
func (s *Store) SharedSeq() uint64 {
	if s.shared == nil {
		return 0
	}
	return s.shared.lastSeq
}

// SharedLag returns how many applied updates the given sharer has not yet
// consumed. Executors use it to enforce the lockstep contract: every sharer
// must process update k of a shared relation before any sharer processes
// update k+1, so the lag is 0 for every store except the one being updated,
// where it is at most 1.
func (s *Store) SharedLag(id int) uint64 {
	if s.shared == nil {
		return 0
	}
	return s.shared.lastSeq - s.shared.cursors[id]
}

// ApplyShared applies one window update on behalf of sharer id. The first
// sharer to present update k mutates the store and logs the outcome; every
// later sharer replays only the cost charges of that outcome against its own
// meter (the caller rebinds the store meter per pass), so each sharer's
// cost totals are bit-identical to an unshared store fed the same sequence.
// A sharer presenting an update more than one ahead of the log panics: it
// means the sharers were not fed in per-update lockstep, and earlier join
// passes already probed windows from the wrong instant.
func (s *Store) ApplyShared(id int, op sharedOpKind, t tuple.Tuple) {
	sh := s.shared
	n := sh.cursors[id] + 1
	switch {
	case n == sh.lastSeq+1:
		oc := sharedOp{del: op == SharedDelete, width: len(t)}
		if oc.del {
			oc.found = s.Delete(t)
		} else {
			s.Insert(t)
		}
		sh.log = append(sh.log, oc)
		sh.lastSeq = n
	case n <= sh.lastSeq:
		s.replayCharges(sh.log[n-sh.baseSeq-1])
	default:
		panic(fmt.Sprintf("relation: shared store %v fed out of order (sharer %d at seq %d, store at %d); sharers must interleave per update", s, id, n, sh.lastSeq))
	}
	sh.cursors[id] = n
	s.trimSharedLog()
}

// sharedOpKind tags ApplyShared operations.
type sharedOpKind uint8

const (
	SharedInsert sharedOpKind = iota
	SharedDelete
)

// replayCharges charges the meter exactly what the physical application of
// the logged op charged, without touching the store.
func (s *Store) replayCharges(oc sharedOp) {
	if oc.del {
		if !oc.found {
			return // Delete of an absent tuple returns before any charge.
		}
		s.meter.Charge(cost.HashInsert)
		s.meter.ChargeN(cost.HashInsert, len(s.idxList))
		return
	}
	s.meter.Charge(cost.HashInsert)
	s.meter.ChargeN(cost.KeyExtract, oc.width)
	s.meter.ChargeN(cost.HashInsert, len(s.idxList))
}

// trimSharedLog drops log entries every sharer has consumed. Under the
// lockstep contract the log holds at most one entry, so the fast path resets
// it in place.
func (s *Store) trimSharedLog() {
	sh := s.shared
	if sh == nil || len(sh.log) == 0 {
		return
	}
	min := sh.lastSeq
	for _, c := range sh.cursors {
		if c < min {
			min = c
		}
	}
	if min >= sh.lastSeq {
		sh.log = sh.log[:0]
		sh.baseSeq = sh.lastSeq
	} else if min > sh.baseSeq {
		sh.log = append(sh.log[:0], sh.log[min-sh.baseSeq:]...)
		sh.baseSeq = min
	}
}

// IndexSignature canonicalizes the store's current index set — the identity
// under which insert/delete tariffs are determined (each index charges one
// HashInsert per mutation). Stores are shareable across queries only when
// their signatures agree, otherwise sharers' charges would diverge from
// their isolated baselines.
func (s *Store) IndexSignature() string {
	if len(s.idxList) == 0 {
		return ""
	}
	ids := make([]string, 0, len(s.indexes))
	for id := range s.indexes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return strings.Join(ids, ";")
}

// FilterStats are the cumulative filtered-probe counters of one store, for
// telemetry and for the re-optimizer's filter on/off decision. Probes and
// Misses are counted whether or not filters are enabled (the knob needs the
// observed miss rate in both states); ShortCircuits and FalsePositives move
// only while filters are on.
type FilterStats struct {
	// Probes counts index probes (Probe/ProbeEach/ProbeEachMemo calls).
	Probes uint64
	// Misses counts probes that found no matching chain (including
	// short-circuited ones).
	Misses uint64
	// ShortCircuits counts probes answered "guaranteed miss" by a filter
	// without touching the index table.
	ShortCircuits uint64
	// FalsePositives counts probes the filter passed through that then
	// missed in the index.
	FalsePositives uint64
}

// NewStore creates an empty store for relation rel with the given schema.
// meter may be shared across stores; it must not be nil.
func NewStore(rel int, schema *tuple.Schema, meter *cost.Meter) *Store {
	return &Store{
		rel:       rel,
		schema:    schema,
		meter:     meter,
		indexes:   make(map[string]*HashIndex),
		filtersOn: true,
	}
}

// SetMeter redirects the store's cost charges to m. The staged executor uses
// this to route one pass's charges into a stage group's journal meter and
// back; callers must guarantee the store is quiescent across the swap (the
// staged pass swaps before launching its groups and restores at the barrier,
// with the channel hand-offs providing the happens-before edges).
func (s *Store) SetMeter(m *cost.Meter) { s.meter = m }

// Rel returns the relation index this store holds.
func (s *Store) Rel() int { return s.rel }

// Schema returns the relation schema.
func (s *Store) Schema() *tuple.Schema { return s.schema }

// Len returns the number of tuples currently stored.
func (s *Store) Len() int { return len(s.order) }

// Epoch changes whenever the index set changes; compiled join steps cache
// the *HashIndex they probe and revalidate it when the epoch moves.
func (s *Store) Epoch() uint64 { return s.epoch }

// Mutations changes whenever the store's contents change (any Insert or
// successful Delete). Probe memos record it to detect staleness.
func (s *Store) Mutations() uint64 { return s.mutations }

// indexName canonicalizes an attribute-name set into an index identifier.
func indexName(names []string) string {
	if len(names) == 1 {
		return names[0]
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return strings.Join(sorted, ",")
}

// IndexNameOf returns the canonical index identifier for an attribute-name
// set, for callers that cache it and look indexes up with IndexNamed.
func IndexNameOf(names []string) string { return indexName(names) }

// CreateIndex builds (or returns) a hash index on the given attribute names.
// Existing tuples are back-filled.
func (s *Store) CreateIndex(names ...string) *HashIndex {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	id := strings.Join(sorted, ",")
	if idx, ok := s.indexes[id]; ok {
		return idx
	}
	cols := make([]int, len(sorted))
	for i, n := range sorted {
		cols[i] = s.schema.MustColOf(tuple.Attr{Rel: s.rel, Name: n})
	}
	idx := &HashIndex{store: s, cols: cols}
	idx.table = newOATable()
	idx.next = make([]int32, len(s.tuples))
	if s.filtersOn {
		idx.fil = filter.New(initialFilterCapacity)
	}
	for _, tid := range s.order {
		idx.insert(s.tuples[tid], tid)
	}
	s.indexes[id] = idx
	s.idxList = append(s.idxList, idx)
	s.epoch++
	return idx
}

// DropIndex removes the index on the given attribute names, if present.
// Joins on those attributes fall back to nested-loop scans.
func (s *Store) DropIndex(names ...string) {
	id := indexName(names)
	if idx, ok := s.indexes[id]; ok {
		delete(s.indexes, id)
		for i, other := range s.idxList {
			if other == idx {
				s.idxList = append(s.idxList[:i], s.idxList[i+1:]...)
				break
			}
		}
		s.epoch++
	}
}

// Index returns the index on the given attribute names, or nil when absent.
func (s *Store) Index(names ...string) *HashIndex { return s.indexes[indexName(names)] }

// IndexNamed returns the index with the given canonical identifier (from
// IndexNameOf), or nil — the allocation-free lookup for compiled steps.
func (s *Store) IndexNamed(id string) *HashIndex { return s.indexes[id] }

// allocID claims a slab id for t, growing every per-id side array in step.
// Untired stores alias the caller's tuple; tiered stores copy it into the
// id's page slot so the bytes live in pageable storage.
func (s *Store) allocID(t tuple.Tuple) int32 {
	var id int32
	if n := len(s.freeIDs); n > 0 {
		id = s.freeIDs[n-1]
		s.freeIDs = s.freeIDs[:n-1]
	} else {
		id = int32(len(s.tuples))
		s.tuples = append(s.tuples, nil)
		s.orderPos = append(s.orderPos, 0)
		s.valNext = append(s.valNext, nilID)
		for _, idx := range s.idxList {
			idx.next = append(idx.next, nilID)
		}
	}
	if s.tier != nil {
		s.tuples[id] = s.tier.place(s, id, t)
	} else {
		s.tuples[id] = t
	}
	return id
}

// rehashByVal rebuilds the byVal table after a grow: chains survive intact
// (they are linked through valNext), only slot placement changes.
func (s *Store) rehashByVal() {
	old := s.byVal.slots
	s.byVal.reset(s.byVal.live)
	for i := range old {
		if old[i].head >= 0 {
			s.byVal.insertChain(old[i].hash, old[i].head, old[i].tail)
		}
	}
}

// Insert adds t to the store and all indexes.
func (s *Store) Insert(t tuple.Tuple) {
	s.mutations++
	id := s.allocID(t)
	s.orderPos[id] = int32(len(s.order))
	s.order = append(s.order, id)
	h := tuple.HashTuple(t, hashSeed)
	slot, claimed := s.byVal.findOrClaim(h, func(o int32) bool { return s.tuples[o].Equal(t) })
	s.valNext[id] = nilID
	if claimed {
		if s.byVal.occupy(slot, h, id, id) {
			s.rehashByVal()
		}
	} else {
		sl := &s.byVal.slots[slot]
		s.valNext[sl.tail] = id
		sl.tail = id
	}
	s.meter.Charge(cost.HashInsert)
	s.meter.ChargeN(cost.KeyExtract, len(t))
	for _, idx := range s.idxList {
		idx.insert(t, id)
		s.meter.Charge(cost.HashInsert)
	}
	if s.tier != nil {
		s.tier.maintain(s) // demote LRU pages past the hot watermark
	}
}

// Delete removes one tuple equal to t. It reports whether a tuple was found;
// deleting an absent tuple is a no-op (windows only delete what they
// inserted, so false indicates a driver bug and is surfaced to tests).
// Among duplicates the most recently inserted tuple is removed.
func (s *Store) Delete(t tuple.Tuple) bool {
	h := tuple.HashTuple(t, hashSeed)
	slot := s.byVal.find(h, func(o int32) bool { return s.tuples[o].Equal(t) })
	if slot < 0 {
		return false
	}
	s.mutations++
	sl := &s.byVal.slots[slot]
	id := sl.tail
	if sl.head == id {
		s.byVal.clearSlot(slot)
	} else {
		prev := sl.head
		for s.valNext[prev] != id {
			prev = s.valNext[prev]
		}
		s.valNext[prev] = nilID
		sl.tail = prev
	}
	// Swap-remove from scan order.
	p := s.orderPos[id]
	last := s.order[len(s.order)-1]
	s.order[p] = last
	s.orderPos[last] = p
	s.order = s.order[:len(s.order)-1]
	s.meter.Charge(cost.HashInsert)
	full := s.tuples[id]
	for _, idx := range s.idxList {
		idx.remove(full, id)
		s.meter.Charge(cost.HashInsert)
	}
	if s.tier != nil {
		s.tier.unplace(id)
	}
	s.tuples[id] = nil
	s.freeIDs = append(s.freeIDs, id)
	return true
}

// Scan iterates the store's current tuples in unspecified order, charging
// nested-loop scan cost per tuple visited. The callback returns false to
// stop early. Tuples must not be retained or mutated by the callback.
func (s *Store) Scan(f func(tuple.Tuple) bool) {
	for _, id := range s.order {
		s.meter.Charge(cost.ScanStep)
		if s.tier != nil {
			s.tier.touch(s, id)
		}
		if !f(s.tuples[id]) {
			return
		}
	}
}

// CountOf returns the number of stored tuples equal to t (windows may hold
// duplicate rows). Used by globally-consistent caches to recompute a cached
// tuple's segment-join multiplicity from base-store value counts.
func (s *Store) CountOf(t tuple.Tuple) int {
	s.meter.Charge(cost.HashProbe)
	slot := s.byVal.find(tuple.HashTuple(t, hashSeed), func(o int32) bool { return s.tuples[o].Equal(t) })
	if slot < 0 {
		return 0
	}
	n := 0
	for id := s.byVal.slots[slot].head; id != nilID; id = s.valNext[id] {
		n++
	}
	return n
}

// All returns the current tuples (copy of the slice headers, shared values;
// tiered stores clone the values so the result survives page moves); for
// tests and oracles.
func (s *Store) All() []tuple.Tuple {
	out := make([]tuple.Tuple, len(s.order))
	for i, id := range s.order {
		if s.tier != nil {
			out[i] = s.tuples[id].Clone()
		} else {
			out[i] = s.tuples[id]
		}
	}
	return out
}

// Probe looks up the tuples matching key on the given index, charging join
// probe cost. The returned slice must not be mutated. This is the
// allocating convenience path; hot loops use ProbeEach.
func (s *Store) Probe(idx *HashIndex, key tuple.Key) []tuple.Tuple {
	s.meter.Charge(cost.IndexProbe)
	vals := key.Values()
	h := tuple.HashValues(vals, hashSeed)
	s.fstats.Probes++
	if idx.fil != nil && !idx.fil.MayContainHash(h) {
		s.fstats.ShortCircuits++
		s.fstats.Misses++
		return nil
	}
	var out []tuple.Tuple
	if !idx.each(h, vals, func(t tuple.Tuple) { out = append(out, t) }) {
		s.noteProbeMiss(idx)
	}
	return out
}

// ProbeEach visits the index's tuples whose key columns equal vals, in
// insertion order, charging one join probe. Visited tuples must not be
// retained or mutated. It is the zero-allocation probe path: no key is
// materialized and no result slice is built.
//
// When the index carries a fingerprint filter, a filter-negative probe
// returns immediately: a guaranteed miss, visiting nothing — exactly what
// the unfiltered walk would have produced. The meter charge is one
// IndexProbe in every case, so the simulated cost model cannot tell a
// short-circuited miss from a walked one; only wall-clock time differs.
func (s *Store) ProbeEach(idx *HashIndex, vals []tuple.Value, f func(t tuple.Tuple)) {
	s.meter.Charge(cost.IndexProbe)
	h := tuple.HashValues(vals, hashSeed)
	s.fstats.Probes++
	if idx.fil != nil && !idx.fil.MayContainHash(h) {
		s.fstats.ShortCircuits++
		s.fstats.Misses++
		return
	}
	if !idx.each(h, vals, f) {
		s.noteProbeMiss(idx)
	}
}

// noteProbeMiss records a probe that reached the index table and missed —
// a false positive when a filter vouched for the key first.
func (s *Store) noteProbeMiss(idx *HashIndex) {
	s.fstats.Misses++
	if idx.fil != nil {
		s.fstats.FalsePositives++
	}
}

// probeMemoSlots sizes a ProbeMemo's open-addressing table. Runs are capped
// by the profiler's rate span (well under the table size), so the fill bound
// below exists only as a safety valve, not a working limit.
const (
	probeMemoSlots   = 512 // power of two
	probeMemoMaxFill = probeMemoSlots / 2
)

// memoEntry is one memoized chain: the probe key (a window into keys) and the
// recorded chain (a window into ids). An entry is live only when its epoch
// matches the memo's, which makes reset O(1) instead of a table clear.
type memoEntry struct {
	hash       uint64
	epoch      uint32
	koff, klen int32
	off, n     int32
}

// ProbeMemo caches the tuple-id chains returned by index probes, keyed by the
// packed probe values, so repeated equal-key probes within a batch skip the
// slot search and chain walk. A memo is valid only for one (index,
// store-mutation) pair; ProbeEachMemo resets it automatically when either
// moves, so callers just embed a ProbeMemo and reuse it across batches. The
// table is a fixed epoch-stamped open-addressing array — the memo sits on the
// hot path, where a map's hashing and key-allocation overhead would cost more
// than the probes it saves.
type ProbeMemo struct {
	idx       *HashIndex
	mutations uint64
	epoch     uint32
	fill      int
	entries   []memoEntry
	keyBuf    []byte
	keys      []byte
	ids       []int32
}

func (m *ProbeMemo) reset(idx *HashIndex, mutations uint64) {
	m.idx = idx
	m.mutations = mutations
	m.fill = 0
	m.ids = m.ids[:0]
	m.keys = m.keys[:0]
	if m.entries == nil {
		m.entries = make([]memoEntry, probeMemoSlots)
	}
	m.epoch++
	if m.epoch == 0 { // wrapped: stale entries would alias the new epoch
		clear(m.entries)
		m.epoch = 1
	}
}

// ProbeEachMemo is ProbeEach with a chain memo: the first probe of a key
// walks the index and records the chain's tuple ids; subsequent probes of the
// same key replay the recorded chain in the same insertion order. Charges are
// identical to ProbeEach in both cases — one IndexProbe per logical probe —
// so the simulated cost model cannot tell the paths apart. The caller must
// not mutate the store between memoized probes it expects to share (the memo
// detects mutation and resets, which is correct but forfeits sharing).
func (s *Store) ProbeEachMemo(idx *HashIndex, vals []tuple.Value, memo *ProbeMemo, f func(t tuple.Tuple)) {
	if memo.idx != idx || memo.mutations != s.mutations || memo.entries == nil {
		memo.reset(idx, s.mutations)
	}
	s.meter.Charge(cost.IndexProbe)
	h := tuple.HashValues(vals, hashSeed)
	s.fstats.Probes++
	// Filter first: a guaranteed miss skips the memo machinery entirely
	// (recording an empty chain would replay to the same nothing). The
	// IndexProbe charge above is identical to the unfiltered miss.
	if idx.fil != nil && !idx.fil.MayContainHash(h) {
		s.fstats.ShortCircuits++
		s.fstats.Misses++
		return
	}
	memo.keyBuf = tuple.AppendKeyValues(memo.keyBuf[:0], vals)
	var free *memoEntry
	for i := h & (probeMemoSlots - 1); ; i = (i + 1) & (probeMemoSlots - 1) {
		e := &memo.entries[i]
		if e.epoch != memo.epoch {
			if memo.fill < probeMemoMaxFill {
				free = e
			}
			break
		}
		if e.hash == h && int(e.klen) == len(memo.keyBuf) &&
			bytes.Equal(memo.keys[e.koff:e.koff+e.klen], memo.keyBuf) {
			if e.n == 0 {
				s.noteProbeMiss(idx)
			}
			for _, id := range memo.ids[e.off : e.off+e.n] {
				if s.tier != nil {
					s.tier.touch(s, id)
				}
				f(s.tuples[id])
			}
			return
		}
	}
	if free == nil { // table at the fill bound: probe directly, don't record
		if !idx.each(h, vals, f) {
			s.noteProbeMiss(idx)
		}
		return
	}
	off := int32(len(memo.ids))
	slot := idx.table.find(h, func(o int32) bool {
		return idx.valsEqual(s.tuples[o], vals)
	})
	if slot >= 0 {
		for id := idx.table.slots[slot].head; id != nilID; id = idx.next[id] {
			memo.ids = append(memo.ids, id)
			if s.tier != nil {
				s.tier.touch(s, id)
			}
			f(s.tuples[id])
		}
	}
	koff := int32(len(memo.keys))
	memo.keys = append(memo.keys, memo.keyBuf...)
	*free = memoEntry{
		hash: h, epoch: memo.epoch,
		koff: koff, klen: int32(len(memo.keyBuf)),
		off: off, n: int32(len(memo.ids)) - off,
	}
	memo.fill++
}

// MemoryBytes returns the store's tuple footprint (window contents only; the
// paper's memory experiments budget join subresults, not base windows).
func (s *Store) MemoryBytes() int { return len(s.order) * TupleBytes }

// SetFiltersEnabled toggles the per-index fingerprint filters. Enabling
// rebuilds each index's filter from its table; disabling frees them. Like
// the caches of Section 3.2, filters are consistent without being required,
// so the re-optimizer toggles this as a cheap plan knob at any point.
func (s *Store) SetFiltersEnabled(on bool) {
	if on == s.filtersOn {
		return
	}
	s.filtersOn = on
	for _, idx := range s.idxList {
		if on {
			idx.rebuildFilter(idx.table.live)
		} else {
			idx.fil = nil
		}
	}
}

// FiltersEnabled reports whether index filters are currently on.
func (s *Store) FiltersEnabled() bool { return s.filtersOn }

// FilterBytes returns the resident footprint of every index filter, charged
// against the server memory budget alongside cache bytes.
func (s *Store) FilterBytes() int {
	n := 0
	for _, idx := range s.idxList {
		if idx.fil != nil {
			n += idx.fil.MemoryBytes()
		}
	}
	return n
}

// FilterStats returns the store's cumulative filtered-probe counters.
func (s *Store) FilterStats() FilterStats { return s.fstats }

// ChainOps returns the cumulative count of index chain creations and clears —
// the maintenance events a filter must mirror, which the re-optimizer weighs
// against short-circuit savings when deciding the filter knob.
func (s *Store) ChainOps() uint64 { return s.chainOps }

func (s *Store) String() string {
	return fmt.Sprintf("R%d[%d tuples]", s.rel+1, s.Len())
}

// HashIndex is an equality index mapping key values to tuple-id chains in an
// open-addressing table. Chains are linked through a per-index next array
// indexed by slab id, preserving insertion order.
type HashIndex struct {
	store *Store
	cols  []int
	table oaTable
	next  []int32 // id -> next id in its bucket chain

	// fil, when non-nil, holds one fingerprint per distinct key chain so
	// probes can answer guaranteed misses without a table walk. Membership
	// is maintained at chain creation (claimed insert) and chain clear.
	fil *filter.Filter
}

// Cols returns the schema columns (sorted by attribute name) the index keys
// on. The returned slice is the index's own and must not be modified.
func (ix *HashIndex) Cols() []int { return ix.cols }

// KeyFor extracts the index key for a tuple of the store's schema.
func (ix *HashIndex) KeyFor(t tuple.Tuple) tuple.Key { return tuple.KeyOf(t, ix.cols) }

// Buckets returns the number of distinct keys currently indexed.
func (ix *HashIndex) Buckets() int { return ix.table.live }

// keyEquals reports whether tuple o's key columns equal t's.
func (ix *HashIndex) keyEquals(o, t tuple.Tuple) bool {
	for _, c := range ix.cols {
		if o[c] != t[c] {
			return false
		}
	}
	return true
}

// valsEqual reports whether tuple o's key columns equal the probe values.
func (ix *HashIndex) valsEqual(o tuple.Tuple, vals []tuple.Value) bool {
	for i, c := range ix.cols {
		if o[c] != vals[i] {
			return false
		}
	}
	return true
}

func (ix *HashIndex) insert(t tuple.Tuple, id int32) {
	h := tuple.HashOf(t, ix.cols, hashSeed)
	s := ix.store
	slot, claimed := ix.table.findOrClaim(h, func(o int32) bool { return ix.keyEquals(s.tuples[o], t) })
	ix.next[id] = nilID
	if claimed {
		if ix.table.occupy(slot, h, id, id) {
			ix.rehash()
		}
		s.chainOps++
		ix.filterAdd(h)
		return
	}
	sl := &ix.table.slots[slot]
	ix.next[sl.tail] = id
	sl.tail = id
}

func (ix *HashIndex) remove(t tuple.Tuple, id int32) {
	h := tuple.HashOf(t, ix.cols, hashSeed)
	s := ix.store
	slot := ix.table.find(h, func(o int32) bool { return ix.keyEquals(s.tuples[o], t) })
	if slot < 0 {
		return
	}
	sl := &ix.table.slots[slot]
	if sl.head == id {
		if ix.next[id] == nilID {
			ix.table.clearSlot(slot)
			s.chainOps++
			if ix.fil != nil {
				ix.fil.Delete(h)
			}
		} else {
			sl.head = ix.next[id]
		}
		return
	}
	prev := sl.head
	for ix.next[prev] != id {
		if ix.next[prev] == nilID {
			return // id not under this key (driver bug; mirror old no-op)
		}
		prev = ix.next[prev]
	}
	ix.next[prev] = ix.next[id]
	if sl.tail == id {
		sl.tail = prev
	}
}

func (ix *HashIndex) rehash() {
	old := ix.table.slots
	ix.table.reset(ix.table.live)
	for i := range old {
		if old[i].head >= 0 {
			ix.table.insertChain(old[i].hash, old[i].head, old[i].tail)
		}
	}
}

// each visits the chain for the probe values in insertion order, reporting
// whether a chain was found.
func (ix *HashIndex) each(hash uint64, vals []tuple.Value, f func(t tuple.Tuple)) bool {
	s := ix.store
	slot := ix.table.find(hash, func(o int32) bool { return ix.valsEqual(s.tuples[o], vals) })
	if slot < 0 {
		return false
	}
	for id := ix.table.slots[slot].head; id != nilID; id = ix.next[id] {
		if s.tier != nil {
			s.tier.touch(s, id)
		}
		f(s.tuples[id])
	}
	return true
}

// filterAdd records a newly created chain's hash in the filter. When the
// bounded cuckoo insert overflows the filter's contents are invalid (a
// displaced fingerprint was dropped), so it is rebuilt larger from the index
// table — which retains every chain's full 64-bit hash, h included by now.
func (ix *HashIndex) filterAdd(h uint64) {
	if ix.fil == nil || ix.fil.Insert(h) {
		return
	}
	ix.rebuildFilter(ix.fil.Capacity() * 2)
}

// rebuildFilter builds a fresh filter of at least the given capacity holding
// one fingerprint per live chain, doubling until everything fits.
func (ix *HashIndex) rebuildFilter(capacity int) {
	if capacity < initialFilterCapacity {
		capacity = initialFilterCapacity
	}
	for {
		nf := filter.New(capacity)
		ok := true
		for i := range ix.table.slots {
			if ix.table.slots[i].head >= 0 && !nf.Insert(ix.table.slots[i].hash) {
				ok = false
				break
			}
		}
		if ok {
			ix.fil = nf
			return
		}
		capacity *= 2
	}
}
