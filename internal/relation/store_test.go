package relation

import (
	"math/rand"
	"testing"

	"acache/internal/cost"
	"acache/internal/tuple"
)

func newTestStore() (*Store, *cost.Meter) {
	m := &cost.Meter{}
	return NewStore(0, tuple.RelationSchema(0, "A", "B"), m), m
}

func TestInsertDeleteScan(t *testing.T) {
	s, _ := newTestStore()
	s.Insert(tuple.Tuple{1, 2})
	s.Insert(tuple.Tuple{3, 4})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Delete(tuple.Tuple{1, 2}) {
		t.Fatal("delete failed")
	}
	if s.Delete(tuple.Tuple{9, 9}) {
		t.Fatal("deleting absent tuple must return false")
	}
	var seen []tuple.Tuple
	s.Scan(func(tp tuple.Tuple) bool {
		seen = append(seen, tp)
		return true
	})
	if len(seen) != 1 || !seen[0].Equal(tuple.Tuple{3, 4}) {
		t.Fatalf("scan = %v", seen)
	}
}

func TestDuplicatesAreMultiset(t *testing.T) {
	s, _ := newTestStore()
	s.Insert(tuple.Tuple{1, 1})
	s.Insert(tuple.Tuple{1, 1})
	if s.CountOf(tuple.Tuple{1, 1}) != 2 {
		t.Fatalf("CountOf = %d", s.CountOf(tuple.Tuple{1, 1}))
	}
	s.Delete(tuple.Tuple{1, 1})
	if s.Len() != 1 || s.CountOf(tuple.Tuple{1, 1}) != 1 {
		t.Fatal("multiset delete removed both")
	}
}

func TestIndexProbe(t *testing.T) {
	s, _ := newTestStore()
	idx := s.CreateIndex("A")
	s.Insert(tuple.Tuple{7, 1})
	s.Insert(tuple.Tuple{7, 2})
	s.Insert(tuple.Tuple{8, 3})
	got := s.Probe(idx, tuple.KeyOfValues([]tuple.Value{7}))
	if len(got) != 2 {
		t.Fatalf("probe matched %d, want 2", len(got))
	}
	s.Delete(tuple.Tuple{7, 1})
	got = s.Probe(idx, tuple.KeyOfValues([]tuple.Value{7}))
	if len(got) != 1 || !got[0].Equal(tuple.Tuple{7, 2}) {
		t.Fatalf("after delete: %v", got)
	}
	if got := s.Probe(idx, tuple.KeyOfValues([]tuple.Value{99})); len(got) != 0 {
		t.Fatalf("absent key matched %v", got)
	}
}

func TestIndexBackfillAndDrop(t *testing.T) {
	s, _ := newTestStore()
	s.Insert(tuple.Tuple{5, 6})
	idx := s.CreateIndex("B")
	if got := s.Probe(idx, tuple.KeyOfValues([]tuple.Value{6})); len(got) != 1 {
		t.Fatal("index not backfilled")
	}
	if s.Index("B") == nil {
		t.Fatal("index lookup failed")
	}
	s.DropIndex("B")
	if s.Index("B") != nil {
		t.Fatal("index not dropped")
	}
	// CreateIndex is idempotent.
	a := s.CreateIndex("A")
	if b := s.CreateIndex("A"); a != b {
		t.Fatal("duplicate CreateIndex made a new index")
	}
}

func TestCompositeIndexCanonicalOrder(t *testing.T) {
	s, _ := newTestStore()
	// Attribute names sort to [A B] regardless of declaration order.
	i1 := s.CreateIndex("B", "A")
	i2 := s.Index("A", "B")
	if i1 != i2 {
		t.Fatal("composite index name not canonicalized")
	}
	s.Insert(tuple.Tuple{1, 2})
	if got := s.Probe(i1, tuple.KeyOfValues([]tuple.Value{1, 2})); len(got) != 1 {
		t.Fatalf("composite probe = %v", got)
	}
}

func TestScanEarlyStopAndCost(t *testing.T) {
	s, m := newTestStore()
	for i := int64(0); i < 10; i++ {
		s.Insert(tuple.Tuple{i, i})
	}
	m.Reset()
	n := 0
	s.Scan(func(tuple.Tuple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
	if m.Total() != 3*cost.ScanStep {
		t.Fatalf("scan charged %d units, want %d", m.Total(), 3*cost.ScanStep)
	}
}

func TestMemoryBytes(t *testing.T) {
	s, _ := newTestStore()
	s.Insert(tuple.Tuple{1, 2})
	s.Insert(tuple.Tuple{3, 4})
	if s.MemoryBytes() != 2*TupleBytes {
		t.Fatalf("MemoryBytes = %d", s.MemoryBytes())
	}
}

func TestRandomizedChurnAgainstNaive(t *testing.T) {
	s, _ := newTestStore()
	idx := s.CreateIndex("A")
	rng := rand.New(rand.NewSource(8))
	var live []tuple.Tuple
	for i := 0; i < 3000; i++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			j := rng.Intn(len(live))
			tp := live[j]
			live = append(live[:j:j], live[j+1:]...)
			if !s.Delete(tp) {
				t.Fatalf("delete of live tuple %v failed", tp)
			}
		} else {
			tp := tuple.Tuple{rng.Int63n(10), rng.Int63n(10)}
			live = append(live, tp)
			s.Insert(tp)
		}
		if s.Len() != len(live) {
			t.Fatalf("len mismatch: %d vs %d", s.Len(), len(live))
		}
		// Spot-check one probe per step against the naive count.
		k := rng.Int63n(10)
		want := 0
		for _, tp := range live {
			if tp[0] == k {
				want++
			}
		}
		if got := len(s.Probe(idx, tuple.KeyOfValues([]tuple.Value{k}))); got != want {
			t.Fatalf("probe A=%d: got %d want %d", k, got, want)
		}
	}
}
