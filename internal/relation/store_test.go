package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"acache/internal/cost"
	"acache/internal/tuple"
)

func newTestStore() (*Store, *cost.Meter) {
	m := &cost.Meter{}
	return NewStore(0, tuple.RelationSchema(0, "A", "B"), m), m
}

func TestInsertDeleteScan(t *testing.T) {
	s, _ := newTestStore()
	s.Insert(tuple.Tuple{1, 2})
	s.Insert(tuple.Tuple{3, 4})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Delete(tuple.Tuple{1, 2}) {
		t.Fatal("delete failed")
	}
	if s.Delete(tuple.Tuple{9, 9}) {
		t.Fatal("deleting absent tuple must return false")
	}
	var seen []tuple.Tuple
	s.Scan(func(tp tuple.Tuple) bool {
		seen = append(seen, tp)
		return true
	})
	if len(seen) != 1 || !seen[0].Equal(tuple.Tuple{3, 4}) {
		t.Fatalf("scan = %v", seen)
	}
}

func TestDuplicatesAreMultiset(t *testing.T) {
	s, _ := newTestStore()
	s.Insert(tuple.Tuple{1, 1})
	s.Insert(tuple.Tuple{1, 1})
	if s.CountOf(tuple.Tuple{1, 1}) != 2 {
		t.Fatalf("CountOf = %d", s.CountOf(tuple.Tuple{1, 1}))
	}
	s.Delete(tuple.Tuple{1, 1})
	if s.Len() != 1 || s.CountOf(tuple.Tuple{1, 1}) != 1 {
		t.Fatal("multiset delete removed both")
	}
}

func TestIndexProbe(t *testing.T) {
	s, _ := newTestStore()
	idx := s.CreateIndex("A")
	s.Insert(tuple.Tuple{7, 1})
	s.Insert(tuple.Tuple{7, 2})
	s.Insert(tuple.Tuple{8, 3})
	got := s.Probe(idx, tuple.KeyOfValues([]tuple.Value{7}))
	if len(got) != 2 {
		t.Fatalf("probe matched %d, want 2", len(got))
	}
	s.Delete(tuple.Tuple{7, 1})
	got = s.Probe(idx, tuple.KeyOfValues([]tuple.Value{7}))
	if len(got) != 1 || !got[0].Equal(tuple.Tuple{7, 2}) {
		t.Fatalf("after delete: %v", got)
	}
	if got := s.Probe(idx, tuple.KeyOfValues([]tuple.Value{99})); len(got) != 0 {
		t.Fatalf("absent key matched %v", got)
	}
}

func TestIndexBackfillAndDrop(t *testing.T) {
	s, _ := newTestStore()
	s.Insert(tuple.Tuple{5, 6})
	idx := s.CreateIndex("B")
	if got := s.Probe(idx, tuple.KeyOfValues([]tuple.Value{6})); len(got) != 1 {
		t.Fatal("index not backfilled")
	}
	if s.Index("B") == nil {
		t.Fatal("index lookup failed")
	}
	s.DropIndex("B")
	if s.Index("B") != nil {
		t.Fatal("index not dropped")
	}
	// CreateIndex is idempotent.
	a := s.CreateIndex("A")
	if b := s.CreateIndex("A"); a != b {
		t.Fatal("duplicate CreateIndex made a new index")
	}
}

func TestCompositeIndexCanonicalOrder(t *testing.T) {
	s, _ := newTestStore()
	// Attribute names sort to [A B] regardless of declaration order.
	i1 := s.CreateIndex("B", "A")
	i2 := s.Index("A", "B")
	if i1 != i2 {
		t.Fatal("composite index name not canonicalized")
	}
	s.Insert(tuple.Tuple{1, 2})
	if got := s.Probe(i1, tuple.KeyOfValues([]tuple.Value{1, 2})); len(got) != 1 {
		t.Fatalf("composite probe = %v", got)
	}
}

func TestScanEarlyStopAndCost(t *testing.T) {
	s, m := newTestStore()
	for i := int64(0); i < 10; i++ {
		s.Insert(tuple.Tuple{i, i})
	}
	m.Reset()
	n := 0
	s.Scan(func(tuple.Tuple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
	if m.Total() != 3*cost.ScanStep {
		t.Fatalf("scan charged %d units, want %d", m.Total(), 3*cost.ScanStep)
	}
}

func TestMemoryBytes(t *testing.T) {
	s, _ := newTestStore()
	s.Insert(tuple.Tuple{1, 2})
	s.Insert(tuple.Tuple{3, 4})
	if s.MemoryBytes() != 2*TupleBytes {
		t.Fatalf("MemoryBytes = %d", s.MemoryBytes())
	}
}

func TestRandomizedChurnAgainstNaive(t *testing.T) {
	s, _ := newTestStore()
	idx := s.CreateIndex("A")
	rng := rand.New(rand.NewSource(8))
	var live []tuple.Tuple
	for i := 0; i < 3000; i++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			j := rng.Intn(len(live))
			tp := live[j]
			live = append(live[:j:j], live[j+1:]...)
			if !s.Delete(tp) {
				t.Fatalf("delete of live tuple %v failed", tp)
			}
		} else {
			tp := tuple.Tuple{rng.Int63n(10), rng.Int63n(10)}
			live = append(live, tp)
			s.Insert(tp)
		}
		if s.Len() != len(live) {
			t.Fatalf("len mismatch: %d vs %d", s.Len(), len(live))
		}
		// Spot-check one probe per step against the naive count.
		k := rng.Int63n(10)
		want := 0
		for _, tp := range live {
			if tp[0] == k {
				want++
			}
		}
		if got := len(s.Probe(idx, tuple.KeyOfValues([]tuple.Value{k}))); got != want {
			t.Fatalf("probe A=%d: got %d want %d", k, got, want)
		}
	}
}

// filterWorkload drives inserts, deletes, and probes (half hitting, half on
// absent keys) through a fresh store with one index and returns the probe
// results, the meter total, and the store for counter inspection.
func filterWorkload(t *testing.T, filters bool, n int) ([]string, cost.Units, *Store) {
	t.Helper()
	m := &cost.Meter{}
	s := NewStore(0, tuple.RelationSchema(0, "A", "B"), m)
	idx := s.CreateIndex("A")
	if !filters {
		s.SetFiltersEnabled(false)
	}
	rng := rand.New(rand.NewSource(99))
	var live []tuple.Tuple
	var out []string
	for i := 0; i < n; i++ {
		switch op := rng.Intn(4); {
		case op == 0 && len(live) > 0:
			j := rng.Intn(len(live))
			s.Delete(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		case op <= 1:
			tp := tuple.Tuple{tuple.Value(rng.Int63n(50)), tuple.Value(rng.Int63n(50))}
			s.Insert(tp)
			live = append(live, tp.Clone())
		default:
			key := rng.Int63n(50)
			if op == 3 {
				key += 1_000 // guaranteed miss
			}
			var hits []tuple.Tuple
			s.ProbeEach(idx, []tuple.Value{tuple.Value(key)}, func(tp tuple.Tuple) {
				hits = append(hits, tp.Clone())
			})
			out = append(out, fmt.Sprint(key, hits))
		}
	}
	return out, m.Total(), s
}

// TestFilteredProbesMatchUnfiltered is the store-level differential test:
// the filters may only short-circuit guaranteed misses, so probe results and
// the simulated cost total must be bit-identical with filters on and off.
func TestFilteredProbesMatchUnfiltered(t *testing.T) {
	on, costOn, s := filterWorkload(t, true, 5_000)
	off, costOff, _ := filterWorkload(t, false, 5_000)
	if len(on) != len(off) {
		t.Fatalf("%d filtered probes vs %d unfiltered", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("probe %d diverges: filtered %s, unfiltered %s", i, on[i], off[i])
		}
	}
	if costOn != costOff {
		t.Fatalf("filters changed the charge: %d vs %d units", costOn, costOff)
	}
	fs := s.FilterStats()
	if fs.ShortCircuits == 0 {
		t.Fatal("miss-heavy workload produced no short-circuits")
	}
	if fs.Misses < fs.ShortCircuits {
		t.Fatalf("misses (%d) < short-circuits (%d)", fs.Misses, fs.ShortCircuits)
	}
	if s.FilterBytes() == 0 {
		t.Fatal("enabled filters report zero bytes")
	}
}

// TestSetFiltersEnabledRebuilds toggles the filters off and on again on a
// populated store and checks probes stay correct: the re-enable rebuild must
// reproduce every live chain's membership (no false negatives).
func TestSetFiltersEnabledRebuilds(t *testing.T) {
	m := &cost.Meter{}
	s := NewStore(0, tuple.RelationSchema(0, "A"), m)
	idx := s.CreateIndex("A")
	for i := 0; i < 500; i++ {
		s.Insert(tuple.Tuple{tuple.Value(i)})
	}
	s.SetFiltersEnabled(false)
	if s.FiltersEnabled() || s.FilterBytes() != 0 {
		t.Fatal("disable left filters resident")
	}
	for i := 500; i < 600; i++ { // mutate while off
		s.Insert(tuple.Tuple{tuple.Value(i)})
	}
	s.SetFiltersEnabled(true)
	if !s.FiltersEnabled() || s.FilterBytes() == 0 {
		t.Fatal("re-enable did not rebuild")
	}
	for i := 0; i < 600; i++ {
		got := s.Probe(idx, tuple.KeyOfValues([]tuple.Value{tuple.Value(i)}))
		if len(got) != 1 {
			t.Fatalf("key %d: %d matches after rebuild, want 1", i, len(got))
		}
	}
}

// TestFilterGrowsWithStore checks maintenance keeps up with churn: the
// filter must absorb far more distinct chains than its initial capacity
// (growing by rebuild) and shed membership on delete.
func TestFilterGrowsWithStore(t *testing.T) {
	m := &cost.Meter{}
	s := NewStore(0, tuple.RelationSchema(0, "A"), m)
	idx := s.CreateIndex("A")
	n := initialFilterCapacity * 8
	for i := 0; i < n; i++ {
		s.Insert(tuple.Tuple{tuple.Value(i)})
	}
	if got := s.FilterBytes(); got == 0 {
		t.Fatal("filter vanished under growth")
	}
	for i := 0; i < n; i++ {
		if len(s.Probe(idx, tuple.KeyOfValues([]tuple.Value{tuple.Value(i)}))) != 1 {
			t.Fatalf("key %d lost after growth", i)
		}
	}
	for i := 0; i < n; i++ {
		s.Delete(tuple.Tuple{tuple.Value(i)})
	}
	// All chains cleared: every probe is a guaranteed miss the filter should
	// now short-circuit (it kept no stale fingerprints).
	before := s.FilterStats().ShortCircuits
	for i := 0; i < n; i++ {
		if len(s.Probe(idx, tuple.KeyOfValues([]tuple.Value{tuple.Value(i)}))) != 0 {
			t.Fatalf("key %d still resident after delete", i)
		}
	}
	fs := s.FilterStats()
	if fs.ShortCircuits == before {
		t.Fatal("emptied store short-circuited nothing: deletes left the filter full")
	}
}
