package relation

import (
	"testing"

	"acache/internal/cost"
	"acache/internal/tuple"
)

func sharedSchema() *tuple.Schema { return tuple.RelationSchema(0, "A", "B") }

// TestSharedReplayChargeIdentity drives two sharers over one store and checks
// that each sharer's meter charges exactly what an isolated store would have
// charged it for the same operation sequence — the physical apply and the
// replay paths must be tariff-identical, including the unindexed-delete case
// (a miss charges nothing) and per-index surcharges.
func TestSharedReplayChargeIdentity(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		mShared := &cost.Meter{}
		shared := NewStore(0, sharedSchema(), mShared)
		if indexed {
			shared.CreateIndex("A")
		}
		a := shared.Share()
		b := shared.Share()
		mA, mB := &cost.Meter{}, &cost.Meter{}

		ops := []struct {
			del bool
			t   tuple.Tuple
		}{
			{false, tuple.Tuple{1, 10}},
			{false, tuple.Tuple{2, 20}},
			{true, tuple.Tuple{1, 10}},
			{true, tuple.Tuple{7, 70}}, // delete of an absent tuple: no charges
			{false, tuple.Tuple{3, 30}},
		}
		for _, op := range ops {
			kind := SharedInsert
			if op.del {
				kind = SharedDelete
			}
			// Lockstep: A first (physical apply), then B (replay).
			shared.SetMeter(mA)
			chargedA := mA.Total()
			shared.ApplyShared(a, kind, op.t)
			chargedA = mA.Total() - chargedA

			shared.SetMeter(mB)
			chargedB := mB.Total()
			shared.ApplyShared(b, kind, op.t)
			chargedB = mB.Total() - chargedB

			if chargedA != chargedB {
				t.Fatalf("indexed=%v op=%+v: physical apply charged %d, replay charged %d", indexed, op, chargedA, chargedB)
			}
		}

		// Aggregate: each sharer's total must equal an isolated twin's.
		mA3, mB3 := &cost.Meter{}, &cost.Meter{}
		twinA := NewStore(0, sharedSchema(), mA3)
		twinB := NewStore(0, sharedSchema(), mB3)
		if indexed {
			twinA.CreateIndex("A")
			twinB.CreateIndex("A")
		}
		for _, op := range ops {
			if op.del {
				twinA.Delete(op.t)
				twinB.Delete(op.t)
			} else {
				twinA.Insert(op.t)
				twinB.Insert(op.t)
			}
		}
		if mA.Total() != mA3.Total() {
			t.Fatalf("indexed=%v: sharer A charged %d, isolated twin charged %d", indexed, mA.Total(), mA3.Total())
		}
		if mB.Total() != mB3.Total() {
			t.Fatalf("indexed=%v: sharer B charged %d, isolated twin charged %d", indexed, mB.Total(), mB3.Total())
		}
		// Contents match the twin too.
		if shared.Len() != twinA.Len() {
			t.Fatalf("indexed=%v: shared store holds %d tuples, twin holds %d", indexed, shared.Len(), twinA.Len())
		}
	}
}

// TestSharedOutOfOrderPanics checks the defensive branch of ApplyShared: a
// cursor ahead of the store's sequence (impossible through the public API,
// reachable only through state corruption) panics instead of silently
// desynchronizing replay. The cross-sharer lockstep contract itself is
// enforced one level up, in join.Exec's shared-pass prologue, and is covered
// by the server-level sharing tests.
func TestSharedOutOfOrderPanics(t *testing.T) {
	m := &cost.Meter{}
	st := NewStore(0, sharedSchema(), m)
	a := st.Share()
	st.ApplyShared(a, SharedInsert, tuple.Tuple{1, 10})
	st.shared.cursors[a] = st.shared.lastSeq + 5
	defer func() {
		if recover() == nil {
			t.Fatal("apply with a cursor ahead of the store did not panic")
		}
	}()
	st.ApplyShared(a, SharedInsert, tuple.Tuple{2, 20})
}

// TestSharedRefcountAndTrim checks Share/Unshare bookkeeping: the replay log
// grows only while a sharer lags, trims once everyone catches up, and
// Unshare of a laggard releases the log it was holding back.
func TestSharedRefcountAndTrim(t *testing.T) {
	m := &cost.Meter{}
	st := NewStore(0, sharedSchema(), m)
	a := st.Share()
	b := st.Share()
	if st.Sharers() != 2 {
		t.Fatalf("Sharers() = %d, want 2", st.Sharers())
	}

	st.ApplyShared(a, SharedInsert, tuple.Tuple{1, 10})
	if lag := st.SharedLag(b); lag != 1 {
		t.Fatalf("lag of b = %d, want 1", lag)
	}
	st.ApplyShared(b, SharedInsert, tuple.Tuple{1, 10})
	if lag := st.SharedLag(b); lag != 0 {
		t.Fatalf("lag of b after replay = %d, want 0", lag)
	}
	if st.shared.log != nil && len(st.shared.log) != 0 {
		t.Fatalf("log not trimmed after all sharers caught up: %d entries", len(st.shared.log))
	}

	// b stops consuming; the log must retain entries for it...
	st.ApplyShared(a, SharedInsert, tuple.Tuple{2, 20})
	st.ApplyShared(a, SharedDelete, tuple.Tuple{1, 10})
	if len(st.shared.log) != 2 {
		t.Fatalf("log holds %d entries with a laggard at lag 2, want 2", len(st.shared.log))
	}
	// ...until b detaches: the log drains and a keeps working alone.
	st.Unshare(b)
	if st.Sharers() != 1 {
		t.Fatalf("Sharers() after Unshare = %d, want 1", st.Sharers())
	}
	if len(st.shared.log) != 0 {
		t.Fatalf("log holds %d entries after the laggard detached, want 0", len(st.shared.log))
	}
	st.ApplyShared(a, SharedInsert, tuple.Tuple{3, 30})
	if st.Len() != 2 {
		t.Fatalf("store holds %d tuples, want 2", st.Len())
	}
	// Unshare is idempotent.
	st.Unshare(b)
	st.Unshare(a)
	if st.Sharers() != 0 {
		t.Fatalf("Sharers() after full teardown = %d, want 0", st.Sharers())
	}
}
