package relation

import (
	"math/rand"
	"sort"
	"testing"

	"acache/internal/cost"
	"acache/internal/tuple"
)

// Differential property test: the slab/open-addressing Store against a
// naive map-and-slice reference model, under randomized interleavings of
// inserts (with duplicates), deletes (present and absent), probes, counts,
// scans, and index create/drop mid-stream.

// refStore is the obviously-correct model: a flat slice in insertion order.
// Delete removes the newest duplicate, matching the Store's contract (the
// last-inserted tuple of an identical-value group goes first).
type refStore struct {
	tuples []tuple.Tuple
}

func (r *refStore) insert(t tuple.Tuple) {
	r.tuples = append(r.tuples, t.Clone())
}

func (r *refStore) delete(t tuple.Tuple) bool {
	for i := len(r.tuples) - 1; i >= 0; i-- {
		if r.tuples[i].Equal(t) {
			r.tuples = append(r.tuples[:i:i], r.tuples[i+1:]...)
			return true
		}
	}
	return false
}

func (r *refStore) countOf(t tuple.Tuple) int {
	n := 0
	for _, u := range r.tuples {
		if u.Equal(t) {
			n++
		}
	}
	return n
}

// probe returns, in insertion order, the tuples matching vals on cols.
func (r *refStore) probe(cols []int, vals []tuple.Value) []tuple.Tuple {
	var out []tuple.Tuple
	for _, u := range r.tuples {
		match := true
		for i, c := range cols {
			if u[c] != vals[i] {
				match = false
				break
			}
		}
		if match {
			out = append(out, u)
		}
	}
	return out
}

func sortedKeys(ts []tuple.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = string(tuple.Encode(t))
	}
	sort.Strings(out)
	return out
}

func sameMultiset(t *testing.T, label string, got, want []tuple.Tuple) {
	t.Helper()
	g, w := sortedKeys(got), sortedKeys(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d tuples, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: multiset mismatch at %d", label, i)
		}
	}
}

func sameOrdered(t *testing.T, label string, got, want []tuple.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d (got %v want %v)", label, len(got), len(want), got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: order mismatch at %d: got %v want %v", label, i, got[i], want[i])
		}
	}
}

func TestStoreDifferential(t *testing.T) {
	const (
		steps  = 20_000
		domain = 4 // small domain → heavy duplication
	)
	attrs := []string{"A", "B", "C"}
	schema := tuple.RelationSchema(0, attrs...)
	s := NewStore(0, schema, &cost.Meter{})
	ref := &refStore{}
	rng := rand.New(rand.NewSource(7))

	randTuple := func() tuple.Tuple {
		out := make(tuple.Tuple, len(attrs))
		for i := range out {
			out[i] = int64(rng.Intn(domain))
		}
		return out
	}

	// steady is created before any data and lives forever: its chains are
	// maintained purely incrementally, so probe order must equal insertion
	// order exactly — the contract the executor's compile-time indexes rely
	// on. The other index sets cycle mid-stream: their rebuilds reindex the
	// slab (scan order, deterministic but not insertion order), so they are
	// held to multiset equality, probe-path agreement, and determinism.
	steady := s.CreateIndex("B")
	indexSets := [][]string{{"A"}, {"B", "C"}, {"A", "C"}}
	live := map[int]*HashIndex{}

	checkIndex := func(idx *HashIndex, ordered bool) {
		vals := make([]tuple.Value, len(idx.Cols()))
		for i := range vals {
			vals[i] = int64(rng.Intn(domain))
		}
		var got []tuple.Tuple
		s.ProbeEach(idx, vals, func(m tuple.Tuple) {
			got = append(got, m.Clone())
		})
		want := ref.probe(idx.Cols(), vals)
		if ordered {
			sameOrdered(t, "ProbeEach", got, want)
		} else {
			sameMultiset(t, "ProbeEach", got, want)
		}
		// The cold-path Probe must agree with the zero-copy path exactly.
		sameOrdered(t, "Probe vs ProbeEach", s.Probe(idx, tuple.KeyOfValues(vals)), got)
		// And a second pass must repeat the first: probes are read-only.
		var again []tuple.Tuple
		s.ProbeEach(idx, vals, func(m tuple.Tuple) {
			again = append(again, m.Clone())
		})
		sameOrdered(t, "ProbeEach determinism", again, got)
	}

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(100); {
		case op < 45: // insert (sometimes a guaranteed duplicate)
			u := randTuple()
			s.Insert(u)
			ref.insert(u)
		case op < 75: // delete a random tuple; often absent
			u := randTuple()
			got, want := s.Delete(u), ref.delete(u)
			if got != want {
				t.Fatalf("step %d: Delete(%v) = %v, want %v", step, u, got, want)
			}
		case op < 85: // point lookups
			u := randTuple()
			if got, want := s.CountOf(u), ref.countOf(u); got != want {
				t.Fatalf("step %d: CountOf(%v) = %d, want %d", step, u, got, want)
			}
		case op < 90: // probe the always-live index: exact insertion order
			checkIndex(steady, true)
		case op < 95: // probe a mid-stream index, if any
			for _, idx := range live {
				checkIndex(idx, false)
				break
			}
		default: // flip an index: create if absent, drop if present
			which := rng.Intn(len(indexSets))
			if idx, ok := live[which]; ok {
				s.DropIndex(indexSets[which]...)
				_ = idx
				delete(live, which)
			} else {
				live[which] = s.CreateIndex(indexSets[which]...)
			}
		}
		if s.Len() != len(ref.tuples) {
			t.Fatalf("step %d: Len = %d, want %d", step, s.Len(), len(ref.tuples))
		}
	}

	// Final full-state checks: scan contents, All(), and every index.
	var scanned []tuple.Tuple
	s.Scan(func(u tuple.Tuple) bool {
		scanned = append(scanned, u.Clone())
		return true
	})
	sameMultiset(t, "Scan", scanned, ref.tuples)
	sameMultiset(t, "All", s.All(), ref.tuples)
	for i := 0; i < 50; i++ {
		checkIndex(steady, true)
	}
	for _, idx := range live {
		for i := 0; i < 50; i++ {
			checkIndex(idx, false)
		}
	}
}

// TestStoreDifferentialChurn drains the store repeatedly so slab ids recycle
// through the free list many times while an index stays live.
func TestStoreDifferentialChurn(t *testing.T) {
	schema := tuple.RelationSchema(0, "A", "B")
	s := NewStore(0, schema, &cost.Meter{})
	ref := &refStore{}
	idx := s.CreateIndex("A")
	rng := rand.New(rand.NewSource(11))

	for round := 0; round < 50; round++ {
		var ins []tuple.Tuple
		for i := 0; i < 40; i++ {
			u := tuple.Tuple{int64(rng.Intn(3)), int64(rng.Intn(5))}
			s.Insert(u)
			ref.insert(u)
			ins = append(ins, u)
		}
		rng.Shuffle(len(ins), func(i, j int) { ins[i], ins[j] = ins[j], ins[i] })
		for _, u := range ins {
			if !s.Delete(u) || !ref.delete(u) {
				t.Fatalf("round %d: delete of known-present %v failed", round, u)
			}
		}
		if s.Len() != 0 {
			t.Fatalf("round %d: store not drained: %d left", round, s.Len())
		}
		// Probe the empty store: every key must yield nothing.
		for a := int64(0); a < 3; a++ {
			s.ProbeEach(idx, []tuple.Value{a}, func(m tuple.Tuple) {
				t.Fatalf("round %d: probe of drained store returned %v", round, m)
			})
		}
	}
}
