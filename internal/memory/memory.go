// Package memory implements the adaptive memory allocator of Section 5:
// caches are selected assuming infinite memory, then pages are granted
// greedily by priority — a cache's net benefit per byte of expected memory —
// so the engine adapts smoothly as the amount of memory available to the
// query changes.
package memory

import (
	"cmp"
	"slices"
)

// PageBytes is the allocation granularity. Grants are rounded up to whole
// pages, matching the paper's dynamically-allocated memory pages
// (Section 3.3).
const PageBytes = 1024

// Request asks for memory on behalf of one cache.
type Request struct {
	// ID identifies the cache (its sharing identity).
	ID string
	// Priority is (benefit − cost) / expected bytes (Section 5).
	Priority float64
	// Bytes is the cache's expected memory requirement.
	Bytes int
}

// Manager owns a byte budget and divides it among caches.
type Manager struct {
	budget  int       // <0 = unlimited
	scratch []Request // AllocateInto's priority-sort buffer, reused per call
}

// NewManager creates a manager with the given budget; budget < 0 means
// unlimited memory.
func NewManager(budget int) *Manager { return &Manager{budget: budget} }

// SetBudget changes the budget (Figure 13 sweeps this at run time).
func (m *Manager) SetBudget(budget int) { m.budget = budget }

// Budget returns the current budget (<0 = unlimited).
func (m *Manager) Budget() int { return m.budget }

// pages rounds bytes up to whole pages.
func pages(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	return (bytes + PageBytes - 1) / PageBytes * PageBytes
}

// Allocate grants memory greedily by descending priority: each request gets
// its full (page-rounded) ask while the budget lasts; the first request that
// does not fit gets the remainder (a cache degrades gracefully under a
// partial budget thanks to the replacement scheme), and later ones get
// nothing. With an unlimited budget every request is granted in full.
// The returned map holds granted bytes per request ID.
func (m *Manager) Allocate(reqs []Request) map[string]int {
	out := make(map[string]int, len(reqs))
	m.AllocateInto(out, reqs)
	return out
}

// AllocateInto is Allocate with caller-owned result storage: dst is cleared
// and refilled with the grants, and the priority-sort buffer lives on the
// Manager, so a steady-state rebalance loop allocates nothing.
func (m *Manager) AllocateInto(dst map[string]int, reqs []Request) {
	clear(dst)
	if m.budget < 0 {
		for _, r := range reqs {
			dst[r.ID] = -1 // unlimited
		}
		return
	}
	sorted := append(m.scratch[:0], reqs...)
	m.scratch = sorted
	slices.SortStableFunc(sorted, func(a, b Request) int {
		if a.Priority != b.Priority {
			return cmp.Compare(b.Priority, a.Priority) // descending
		}
		return cmp.Compare(a.ID, b.ID)
	})
	remaining := m.budget
	for _, r := range sorted {
		ask := pages(r.Bytes)
		if ask > remaining {
			ask = remaining / PageBytes * PageBytes
		}
		dst[r.ID] = ask
		remaining -= ask
	}
}
