package memory

import "testing"

func TestUnlimitedBudget(t *testing.T) {
	m := NewManager(-1)
	out := m.Allocate([]Request{{ID: "a", Priority: 1, Bytes: 100}})
	if out["a"] != -1 {
		t.Fatalf("unlimited grant = %d", out["a"])
	}
}

func TestGreedyByPriority(t *testing.T) {
	m := NewManager(3 * PageBytes)
	out := m.Allocate([]Request{
		{ID: "low", Priority: 0.1, Bytes: 2 * PageBytes},
		{ID: "high", Priority: 0.9, Bytes: 2 * PageBytes},
	})
	if out["high"] != 2*PageBytes {
		t.Fatalf("high-priority grant = %d", out["high"])
	}
	if out["low"] != PageBytes {
		t.Fatalf("low-priority remainder grant = %d", out["low"])
	}
}

func TestPageRounding(t *testing.T) {
	m := NewManager(10 * PageBytes)
	out := m.Allocate([]Request{{ID: "a", Priority: 1, Bytes: PageBytes + 1}})
	if out["a"] != 2*PageBytes {
		t.Fatalf("grant = %d, want rounded to 2 pages", out["a"])
	}
	out = m.Allocate([]Request{{ID: "b", Priority: 1, Bytes: 0}})
	if out["b"] != 0 {
		t.Fatalf("zero-byte ask granted %d", out["b"])
	}
}

func TestExhaustionGrantsNothing(t *testing.T) {
	m := NewManager(PageBytes)
	out := m.Allocate([]Request{
		{ID: "a", Priority: 3, Bytes: PageBytes},
		{ID: "b", Priority: 2, Bytes: PageBytes},
		{ID: "c", Priority: 1, Bytes: PageBytes},
	})
	if out["a"] != PageBytes || out["b"] != 0 || out["c"] != 0 {
		t.Fatalf("grants = %v", out)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	m := NewManager(PageBytes)
	for trial := 0; trial < 10; trial++ {
		out := m.Allocate([]Request{
			{ID: "b", Priority: 1, Bytes: PageBytes},
			{ID: "a", Priority: 1, Bytes: PageBytes},
		})
		if out["a"] != PageBytes || out["b"] != 0 {
			t.Fatalf("tie break unstable: %v", out)
		}
	}
}

func TestSetBudget(t *testing.T) {
	m := NewManager(100)
	m.SetBudget(5 * PageBytes)
	if m.Budget() != 5*PageBytes {
		t.Fatalf("budget = %d", m.Budget())
	}
}
