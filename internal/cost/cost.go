// Package cost provides the deterministic work-unit cost model used in place
// of wall-clock time throughout the engine.
//
// The paper reports performance as tuples processed per second on the
// authors' hardware. To make the reproduction deterministic and portable we
// charge each primitive operation a fixed number of abstract work units and
// convert units to "simulated seconds" with a single calibration constant.
// All relative comparisons (cache vs no cache, MJoin vs XJoin, crossover
// points) are preserved because every plan is measured with the same meter.
package cost

// Units is an amount of abstract work. One unit is roughly "one hash-bucket
// touch" on the paper's hardware.
type Units int64

// Default per-operation charges. They are package-level variables (not
// constants) so ablation benchmarks can recalibrate them; the engine reads
// them through a Tariff snapshot so a run is internally consistent.
const (
	// IndexProbe is charged per join hash-index lookup: bucket-chain
	// traversal plus predicate evaluation, the dominant cost of hash-join
	// processing on the paper's testbed.
	IndexProbe Units = 24
	// HashProbe is charged per cache-bucket or bookkeeping-map lookup —
	// the direct-mapped cache scheme of Section 3.3 is designed for low
	// run-time overhead, so it is far cheaper than a join probe.
	HashProbe Units = 10
	// HashInsert is charged per hash-index insert or delete.
	HashInsert Units = 16
	// ScanStep is charged per tuple examined by a nested-loop scan.
	ScanStep Units = 4
	// OutputTuple is charged per tuple materialized by an operator
	// (concatenation + forwarding).
	OutputTuple Units = 16
	// CacheInsertTuple is charged per tuple added to or removed from a
	// cache entry during maintenance or miss-population.
	CacheInsertTuple Units = 5
	// KeyExtract is charged per 8-byte attribute packed into a key.
	KeyExtract Units = 1
	// CompareStep is charged per residual theta-predicate evaluation.
	CompareStep Units = 2
	// BloomHash is charged per Bloom-filter hash evaluation.
	BloomHash Units = 1
	// WindowMaint is charged per window insert or expiry bookkeeping step.
	WindowMaint Units = 2

	// FilterProbe and FilterMaint split probe_cost for the fingerprint
	// filters that front index and cache lookups. They are ADVISORY: the
	// meter never charges them — a filtered structure charges exactly what
	// its unfiltered twin would, so simulated cost totals are bit-identical
	// with filters on or off. They feed only the estimate side: the
	// re-optimizer's filter on/off knob and the profiler's filter-aware
	// probe-cost split weigh short-circuited misses (FilterProbe, two
	// bucket-word loads) against maintenance mirrored on chain creation and
	// clear (FilterMaint, a bounded cuckoo insert or a lane clear).

	// FilterProbe is the advisory cost of one fingerprint-filter membership
	// check.
	FilterProbe Units = 2
	// FilterMaint is the advisory cost of one fingerprint insert or delete.
	FilterMaint Units = 3
)

// UnitsPerSecond converts work units to simulated seconds. The value is
// calibrated so the default three-way-join workload of Section 7.2 lands in
// the paper's reported 25k–50k tuples/second range.
const UnitsPerSecond Units = 6_000_000

// Meter accumulates work units. The zero value is ready to use. Meters are
// not safe for concurrent use; the data path is single-goroutine by design
// (updates are processed strictly in global order, Section 3.1).
type Meter struct {
	total Units
}

// Charge adds n units of work.
func (m *Meter) Charge(n Units) { m.total += n }

// ChargeN adds count occurrences of an n-unit operation.
func (m *Meter) ChargeN(n Units, count int) { m.total += n * Units(count) }

// Total returns the cumulative work since construction or the last Reset.
func (m *Meter) Total() Units { return m.total }

// Reset zeroes the meter.
func (m *Meter) Reset() { m.total = 0 }

// Seconds converts units to simulated seconds.
func Seconds(u Units) float64 { return float64(u) / float64(UnitsPerSecond) }

// Rate returns events per simulated second for the given work, guarding
// against a zero denominator (an idle meter means an infinitely fast plan;
// callers treat 0 work as "no measurement" instead).
func Rate(events int, u Units) float64 {
	if u <= 0 {
		return 0
	}
	return float64(events) / Seconds(u)
}

// Stopwatch measures the work attributed to a span of processing by
// differencing meter totals.
type Stopwatch struct {
	m     *Meter
	start Units
}

// NewStopwatch starts a stopwatch on m.
func NewStopwatch(m *Meter) Stopwatch { return Stopwatch{m: m, start: m.Total()} }

// Elapsed returns the units charged to the meter since the stopwatch started.
func (s Stopwatch) Elapsed() Units { return s.m.Total() - s.start }
