package cost

import "testing"

func TestMeterAccumulates(t *testing.T) {
	var m Meter
	m.Charge(10)
	m.ChargeN(3, 4)
	if m.Total() != 22 {
		t.Fatalf("Total = %d", m.Total())
	}
	m.Reset()
	if m.Total() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestStopwatch(t *testing.T) {
	var m Meter
	m.Charge(5)
	sw := NewStopwatch(&m)
	m.Charge(7)
	if sw.Elapsed() != 7 {
		t.Fatalf("Elapsed = %d", sw.Elapsed())
	}
}

func TestSecondsAndRate(t *testing.T) {
	if s := Seconds(UnitsPerSecond); s != 1 {
		t.Fatalf("Seconds(1s worth) = %v", s)
	}
	if r := Rate(100, UnitsPerSecond); r != 100 {
		t.Fatalf("Rate = %v", r)
	}
	if r := Rate(100, 0); r != 0 {
		t.Fatalf("Rate with zero work = %v, want 0", r)
	}
	if r := Rate(100, -5); r != 0 {
		t.Fatalf("Rate with negative work = %v, want 0", r)
	}
}

func TestTariffSanity(t *testing.T) {
	// The relative ordering the reproduction's calibration relies on
	// (DESIGN.md): join probes dominate cache probes; inserts are
	// comparable to probes; scans are cheap per step.
	if IndexProbe <= HashProbe {
		t.Fatal("join probes must cost more than cache probes")
	}
	if ScanStep >= IndexProbe {
		t.Fatal("a single scan step must be cheaper than an index probe")
	}
	for _, u := range []Units{IndexProbe, HashProbe, HashInsert, ScanStep, OutputTuple, CacheInsertTuple, KeyExtract, BloomHash, WindowMaint} {
		if u <= 0 {
			t.Fatal("all charges must be positive")
		}
	}
}
