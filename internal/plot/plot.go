// Package plot renders the benchmark harness's experiment series as
// standalone SVG line charts — the visual counterpart of the paper's
// figures, with no dependencies beyond the standard library.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Label string
	X, Y  []float64
}

// Chart describes one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height in pixels; zero values use 640×420.
	Width, Height int
}

// palette cycles through distinguishable stroke colors.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const (
	marginLeft   = 70.0
	marginRight  = 20.0
	marginTop    = 40.0
	marginBottom = 70.0
)

// SVG renders the chart.
func (c *Chart) SVG() string {
	w, h := c.Width, c.Height
	if w == 0 {
		w = 640
	}
	if h == 0 {
		h = 420
	}
	plotW := float64(w) - marginLeft - marginRight
	plotH := float64(h) - marginTop - marginBottom

	minX, maxX, minY, maxY := c.bounds()
	// Y axis from zero (rates); pad the top.
	if minY > 0 {
		minY = 0
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	maxY *= 1.05

	sx := func(x float64) float64 { return marginLeft + (x-minX)/(maxX-minX)*plotW }
	sy := func(y float64) float64 { return marginTop + plotH - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%g" y="20" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)

	// Ticks: 5 per axis.
	for i := 0; i <= 5; i++ {
		fx := minX + (maxX-minX)*float64(i)/5
		fy := minY + (maxY-minY)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ccc"/>`+"\n",
			sx(fx), marginTop, sx(fx), marginTop+plotH)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ccc"/>`+"\n",
			marginLeft, sy(fy), marginLeft+plotW, sy(fy))
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
			sx(fx), marginTop+plotH+16, tick(fx))
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, sy(fy)+4, tick(fy))
	}
	fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, marginTop+plotH+34, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Series lines + markers.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			pts = append(pts, fmt.Sprintf("%g,%g", sx(s.X[i]), sy(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="3" fill="%s"/>`+"\n",
				sx(s.X[i]), sy(s.Y[i]), color)
		}
		// Legend entry.
		ly := marginTop + 8 + float64(si)*16
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			marginLeft+plotW-130, ly, marginLeft+plotW-110, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g">%s</text>`+"\n",
			marginLeft+plotW-104, ly+4, escape(s.Label))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// bounds computes the data extent across all series.
func (c *Chart) bounds() (minX, maxX, minY, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) { // no data
		return 0, 1, 0, 1
	}
	return minX, maxX, minY, maxY
}

// tick formats an axis value compactly (12k style above 10 000).
func tick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10_000:
		return fmt.Sprintf("%.0fk", v/1000)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}
