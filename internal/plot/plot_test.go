package plot

import (
	"strings"
	"testing"
)

func sample() *Chart {
	return &Chart{
		Title:  "fig6 — hit probability",
		XLabel: "multiplicity",
		YLabel: "tuples/sec",
		Series: []Series{
			{Label: "With caches", X: []float64{1, 5, 10}, Y: []float64{26000, 31000, 35000}},
			{Label: "MJoin", X: []float64{1, 5, 10}, Y: []float64{24500, 23800, 23500}},
		},
	}
}

func TestSVGStructure(t *testing.T) {
	out := sample().SVG()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"fig6 — hit probability", "multiplicity", "tuples/sec",
		"With caches", "MJoin", "37k", // top tick: 35000 × 1.05 padding
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q:\n%.400s", want, out)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("want 2 polylines, got %d", strings.Count(out, "<polyline"))
	}
	if strings.Count(out, "<circle") != 6 {
		t.Fatalf("want 6 markers, got %d", strings.Count(out, "<circle"))
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	c := sample()
	c.Title = `a <b> & c`
	out := c.SVG()
	if strings.Contains(out, "<b>") {
		t.Fatal("unescaped markup in title")
	}
	if !strings.Contains(out, "a &lt;b&gt; &amp; c") {
		t.Fatal("escape output wrong")
	}
}

func TestSVGEmptyAndDegenerate(t *testing.T) {
	empty := &Chart{Title: "empty"}
	if out := empty.SVG(); !strings.Contains(out, "</svg>") {
		t.Fatal("empty chart must still render")
	}
	flat := &Chart{Series: []Series{{Label: "one", X: []float64{2}, Y: []float64{5}}}}
	if out := flat.SVG(); !strings.Contains(out, "<circle") {
		t.Fatal("single-point series must render a marker")
	}
}

func TestShortSeriesDoesNotPanic(t *testing.T) {
	c := &Chart{Series: []Series{{Label: "s", X: []float64{1, 2, 3}, Y: []float64{1}}}}
	if out := c.SVG(); strings.Count(out, "<circle") != 1 {
		t.Fatalf("short series markers = %d", strings.Count(out, "<circle"))
	}
}

func TestTickFormats(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"}, {42000, "42k"}, {150, "150"}, {0.5, "0.5"},
	} {
		if got := tick(tc.v); got != tc.want {
			t.Fatalf("tick(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
