package ordering

import (
	"testing"

	"acache/internal/cost"
	"acache/internal/join"
	"acache/internal/profiler"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/synth"
	"acache/internal/tuple"
)

func TestInitialOrdering(t *testing.T) {
	ord := InitialOrdering(3)
	want := [][]int{{1, 2}, {0, 2}, {0, 1}}
	for i := range want {
		for j := range want[i] {
			if ord[i][j] != want[i][j] {
				t.Fatalf("InitialOrdering = %v", ord)
			}
		}
	}
}

func TestRank(t *testing.T) {
	if rank(0.5, 2) != -0.25 {
		t.Fatalf("rank(0.5,2) = %v", rank(0.5, 2))
	}
	if rank(2, 1) != 1 {
		t.Fatalf("rank(2,1) = %v", rank(2, 1))
	}
	if rank(5, 0) != 0 {
		t.Fatal("zero-cost rank must be 0")
	}
}

func TestModelCost(t *testing.T) {
	steps := []stepStat{
		{fanout: 0.5, cost: 2},
		{fanout: 2, cost: 4},
	}
	// 1×2 + 0.5×4 = 4
	if c := modelCost(steps); c != 4 {
		t.Fatalf("modelCost = %v", c)
	}
	// Reversed: 1×4 + 2×2 = 8 — the reducer-first order is cheaper.
	rev := []stepStat{steps[1], steps[0]}
	if c := modelCost(rev); c != 8 {
		t.Fatalf("modelCost reversed = %v", c)
	}
}

// buildProfiled constructs a 3-way workload where ΔR1's pipeline joins an
// expensive expanding relation first — the advisor must recommend swapping.
func buildProfiled(t *testing.T) (*Advisor, *profiler.Profiler, *join.Exec) {
	t.Helper()
	q, err := query.New(
		[]*tuple.Schema{
			tuple.RelationSchema(0, "A"),
			tuple.RelationSchema(1, "A"),
			tuple.RelationSchema(2, "A"),
		},
		[]query.Pred{
			{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
			{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 2, Name: "A"}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	meter := &cost.Meter{}
	// ΔR1: joins R2 (fanout ~8) before R3 (fanout ~1) — clearly bad.
	e, err := join.NewExec(q, [][]int{{1, 2}, {0, 2}, {0, 1}}, meter, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pf := profiler.New(q, e, meter, profiler.Config{SampleProb: 1, RateSpan: 10, Seed: 1})
	// R2 holds 8 copies of each key; R3 one copy.
	for i := 0; i < 8; i++ {
		for v := int64(0); v < 10; v++ {
			e.Process(stream.Update{Op: stream.Insert, Rel: 1, Tuple: tuple.Tuple{v}})
		}
	}
	for v := int64(0); v < 10; v++ {
		e.Process(stream.Update{Op: stream.Insert, Rel: 2, Tuple: tuple.Tuple{v}})
	}
	gen := synth.Counter(0, 10, 1)
	for i := 0; i < 400; i++ {
		u := stream.Update{Op: stream.Insert, Rel: 0, Tuple: tuple.Tuple{gen.Next()}}
		res, prof := e.ProcessProfiled(u)
		_ = res
		pf.Observe(0, prof)
		pf.Tick(0)
		e.Process(stream.Update{Op: stream.Delete, Rel: 0, Tuple: u.Tuple})
		pf.Tick(0)
	}
	return New(q, pf), pf, e
}

func TestAdvisorRecommendsReducerFirst(t *testing.T) {
	adv, pf, _ := buildProfiled(t)
	if !pf.PipelineReady(0) {
		t.Fatal("pipeline 0 not ready")
	}
	got, changed := adv.Advise(0, []int{1, 2})
	if !changed {
		t.Fatal("advisor must recommend reordering the expander-first pipeline")
	}
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("advised order = %v, want [2 1]", got)
	}
}

func TestAdvisorCooldown(t *testing.T) {
	adv, _, _ := buildProfiled(t)
	_, changed := adv.Advise(0, []int{1, 2})
	if !changed {
		t.Fatal("first advice must change")
	}
	// Immediately after a reorder, the pipeline sits out the cooldown even
	// though its (stale) statistics still suggest change.
	for i := 0; i < adv.Cooldown; i++ {
		if _, ch := adv.Advise(0, []int{1, 2}); ch {
			t.Fatalf("advice during cooldown step %d", i)
		}
	}
}

func TestAdvisorStableWhenBalanced(t *testing.T) {
	adv, _, _ := buildProfiled(t)
	// Pipeline 1 was never profiled → not ready → no advice.
	if _, changed := adv.Advise(1, []int{0, 2}); changed {
		t.Fatal("unprofiled pipeline must not be reordered")
	}
}
