// Package ordering provides the adaptive join-ordering substrate A-Caching
// runs on top of (Section 4's modular decomposition, step 1). The paper uses
// A-Greedy [5], the authors' adaptive ordering algorithm for pipelined
// operators; this package implements its join analogue: each pipeline's
// operators are kept sorted by the classic rank (fanout − 1) / cost, with
// estimates profiled under the current order, and a pipeline is reordered
// only when the observed ranks violate the greedy invariant beyond a
// threshold — the hysteresis that keeps run-time overhead low.
package ordering

import (
	"sort"

	"acache/internal/profiler"
	"acache/internal/query"
)

// Advisor recommends pipeline orderings from profiled statistics.
type Advisor struct {
	q  *query.Query
	pf *profiler.Profiler
	// Threshold is the modeled-cost improvement a proposed order must
	// deliver before a reorder is advised. Reordering is expensive for the
	// caching layer (all caches drop, statistics reset), and per-operator
	// fanout estimates over W ≈ 10 profiled tuples are noisy, so the
	// default demands a 50% predicted improvement.
	Threshold float64
	// Cooldown is the number of advisories a pipeline sits out after a
	// reorder, letting fresh statistics accumulate before it may move
	// again.
	Cooldown int

	coolLeft []int
}

// New creates an advisor with the default hysteresis.
func New(q *query.Query, pf *profiler.Profiler) *Advisor {
	return &Advisor{q: q, pf: pf, Threshold: 0.5, Cooldown: 3, coolLeft: make([]int, q.N())}
}

// stepStat is a profiled view of one pipeline step: the relation it joins,
// its fanout (output/input tuple ratio) and per-tuple cost.
type stepStat struct {
	rel    int
	fanout float64
	cost   float64
	rank   float64
}

// rank computes the greedy rank (fanout − 1)/cost: negative for reducing
// operators (cheap reducers first), positive for expanding ones (expensive
// expanders last). Zero-cost steps get rank 0 — no information.
func rank(fanout, cost float64) float64 {
	if cost <= 0 {
		return 0
	}
	return (fanout - 1) / cost
}

// Advise returns a recommended ordering for pipeline pipe given its current
// order, and whether it differs enough to act on. It requires a ready
// pipeline; otherwise the current order stands.
func (a *Advisor) Advise(pipe int, current []int) ([]int, bool) {
	if a.coolLeft[pipe] > 0 {
		a.coolLeft[pipe]--
		return current, false
	}
	if !a.pf.PipelineReady(pipe) {
		return current, false
	}
	steps := make([]stepStat, len(current))
	for pos, rel := range current {
		din := a.pf.D(pipe, pos)
		dout := a.pf.D(pipe, pos+1)
		f := 0.0
		if din > 0 {
			f = dout / din
		}
		c := a.pf.C(pipe, pos)
		steps[pos] = stepStat{rel: rel, fanout: f, cost: c, rank: rank(f, c)}
	}
	curCost := modelCost(steps)
	proposed := append([]stepStat(nil), steps...)
	sort.SliceStable(proposed, func(i, j int) bool { return proposed[i].rank < proposed[j].rank })
	// Hysteresis: reorder only when the rank-sorted order's modeled cost
	// (per-step fanouts and costs treated as position-independent, the
	// standard stationarity approximation) improves on the current order
	// by more than the threshold fraction. Reordering drops every cache
	// and resets a pipeline's statistics, so near-ties must never flap —
	// the analogue of the paper's p = 20% change guard.
	newCost := modelCost(proposed)
	if newCost >= (1-a.Threshold)*curCost {
		return current, false
	}
	out := make([]int, len(proposed))
	same := true
	for i, s := range proposed {
		out[i] = s.rel
		if s.rel != current[i] {
			same = false
		}
	}
	if same {
		return current, false
	}
	a.coolLeft[pipe] = a.Cooldown
	return out, true
}

// modelCost evaluates the expected unit-time pipeline cost of an order under
// the independence approximation: a unit input flows through the steps, each
// multiplying cardinality by its fanout and charging cost per input tuple.
func modelCost(steps []stepStat) float64 {
	d, total := 1.0, 0.0
	for _, s := range steps {
		total += d * s.cost
		d *= s.fanout
	}
	return total
}

// InitialOrdering builds a static starting ordering: each pipeline joins
// the remaining relations in ascending index order, a neutral choice the
// advisor refines online.
func InitialOrdering(n int) [][]int {
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		for r := 0; r < n; r++ {
			if r != i {
				out[i] = append(out[i], r)
			}
		}
	}
	return out
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
