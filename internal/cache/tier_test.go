package cache

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"acache/internal/cost"
	"acache/internal/tuple"
)

func tierKey(vals ...tuple.Value) tuple.Key {
	return tuple.KeyOfValues(vals)
}

// Differential test: a tiered cache against an untired twin fed the same
// operation stream. Probe results, hit/miss statistics, byte accounting,
// and meter totals must be bit-identical; the constrained watermark must
// produce real demotion traffic.
func TestCacheTierDifferential(t *testing.T) {
	for _, mode := range []Associativity{DirectMapped, TwoWay} {
		dir := t.TempDir()
		tr, err := NewTier(filepath.Join(dir, "cache.spill"), 4096, 2048, nil)
		if err != nil {
			t.Fatal(err)
		}
		var mt, mm cost.Meter
		tc := NewAssociative(64, 16, -1, mode, &mt)
		mc := NewAssociative(64, 16, -1, mode, &mm)
		tc.AttachTier(tr)
		rng := rand.New(rand.NewSource(7))

		key := func() tuple.Key { return tierKey(tuple.Value(rng.Intn(200)), 0) }
		val := func() []tuple.Tuple {
			n := rng.Intn(12)
			out := make([]tuple.Tuple, n)
			for i := range out {
				out[i] = tuple.Tuple{tuple.Value(rng.Intn(50)), tuple.Value(rng.Intn(50))}
			}
			return out
		}
		for step := 0; step < 6000; step++ {
			switch op := rng.Intn(100); {
			case op < 35:
				u, v := key(), val()
				tc.Create(u, v)
				mc.Create(u, v)
			case op < 55:
				u := key()
				r := tuple.Tuple{tuple.Value(rng.Intn(50)), tuple.Value(rng.Intn(50))}
				tc.Insert(u, r.Clone())
				mc.Insert(u, r)
			case op < 65:
				u := key()
				r := tuple.Tuple{tuple.Value(rng.Intn(50)), tuple.Value(rng.Intn(50))}
				tc.Delete(u, r)
				mc.Delete(u, r)
			case op < 70:
				u := key()
				tc.Drop(u)
				mc.Drop(u)
			default:
				u := key()
				got, okG := tc.Probe(u)
				want, okW := mc.Probe(u)
				if okG != okW || len(got) != len(want) {
					t.Fatalf("%v step %d: Probe (%d,%v) vs (%d,%v)", mode, step, len(got), okG, len(want), okW)
				}
				for i := range got {
					if !got[i].Equal(want[i]) {
						t.Fatalf("%v step %d: Probe tuple %d: %v vs %v", mode, step, i, got[i], want[i])
					}
				}
			}
			if tc.UsedBytes() != mc.UsedBytes() || tc.Entries() != mc.Entries() {
				t.Fatalf("%v step %d: accounting diverged: used %d/%d entries %d/%d",
					mode, step, tc.UsedBytes(), mc.UsedBytes(), tc.Entries(), mc.Entries())
			}
		}
		if mt.Total() != mm.Total() {
			t.Fatalf("%v: meter totals diverge: %v vs %v", mode, mt.Total(), mm.Total())
		}
		sg, sw := tc.Stats(), mc.Stats()
		if sg != sw {
			t.Fatalf("%v: stats diverge:\n%+v\n%+v", mode, sg, sw)
		}
		promos, demos := tr.Counters()
		if demos == 0 || promos == 0 {
			t.Fatalf("%v: no tier traffic (promos %d, demos %d)", mode, promos, demos)
		}
		if tc.HotUsedBytes()+tc.ColdUsedBytes() != tc.UsedBytes() {
			t.Fatalf("%v: hot %d + cold %d != used %d", mode, tc.HotUsedBytes(), tc.ColdUsedBytes(), tc.UsedBytes())
		}
		// Each must see identical contents.
		seen := map[string]int{}
		tc.Each(func(u tuple.Key, v []tuple.Tuple) { seen[string(u)] = len(v) })
		mc.Each(func(u tuple.Key, v []tuple.Tuple) {
			if n, ok := seen[string(u)]; !ok || n != len(v) {
				t.Fatalf("%v: Each mismatch at key %q: %d vs %d", mode, u, n, len(v))
			}
			delete(seen, string(u))
		})
		if len(seen) != 0 {
			t.Fatalf("%v: tiered cache held %d extra keys", mode, len(seen))
		}
		path := filepath.Join(dir, "cache.spill")
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("Tier.Close left spill file: %v", err)
		}
	}
}

// Counted entries round-trip through demotion with mult and support intact.
func TestCacheTierCounted(t *testing.T) {
	dir := t.TempDir()
	tr, err := NewTier(filepath.Join(dir, "cache.spill"), 4096, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var mt, mm cost.Meter
	tc := New(32, 16, -1, &mt)
	mc := New(32, 16, -1, &mm)
	tc.AttachTier(tr)
	rng := rand.New(rand.NewSource(11))

	key := func(i int) tuple.Key { return tierKey(tuple.Value(i), 1) }
	for i := 0; i < 60; i++ {
		n := rng.Intn(8)
		tuples := make([]tuple.Tuple, n)
		mults := make([]int, n)
		supports := make([]int, n)
		for j := range tuples {
			tuples[j] = tuple.Tuple{tuple.Value(j), tuple.Value(i)}
			mults[j] = 1 + rng.Intn(3)
			supports[j] = 1 + rng.Intn(5)
		}
		tc.CreateCounted(key(i), tuples, mults, supports)
		mc.CreateCounted(key(i), tuples, mults, supports)
	}
	for step := 0; step < 2000; step++ {
		u := key(rng.Intn(60))
		r := tuple.Tuple{tuple.Value(rng.Intn(8)), tuple.Value(rng.Intn(60))}
		n := rng.Intn(3) - 1
		if n == 0 {
			n = 2
		}
		m := 1 + rng.Intn(3)
		tc.ApplyCountedDelta(u, r.Clone(), n, func() int { return m })
		mc.ApplyCountedDelta(u, r, n, func() int { return m })

		gv, gm, gok := tc.ProbeCounted(u)
		wv, wm, wok := mc.ProbeCounted(u)
		if gok != wok || len(gv) != len(wv) {
			t.Fatalf("step %d: ProbeCounted (%d,%v) vs (%d,%v)", step, len(gv), gok, len(wv), wok)
		}
		for i := range gv {
			if !gv[i].Equal(wv[i]) || gm[i] != wm[i] {
				t.Fatalf("step %d: element %d: %v×%d vs %v×%d", step, i, gv[i], gm[i], wv[i], wm[i])
			}
		}
		if tc.UsedBytes() != mc.UsedBytes() {
			t.Fatalf("step %d: used %d vs %d", step, tc.UsedBytes(), mc.UsedBytes())
		}
	}
	if mt.Total() != mm.Total() {
		t.Fatalf("meter totals diverge: %v vs %v", mt.Total(), mm.Total())
	}
	if _, demos := tr.Counters(); demos == 0 {
		t.Fatal("counted workload produced no demotions")
	}
}

// DetachTier rematerializes everything and leaves the cache untired.
func TestCacheTierDetach(t *testing.T) {
	dir := t.TempDir()
	tr, err := NewTier(filepath.Join(dir, "cache.spill"), 4096, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	c := New(16, 16, -1, &cost.Meter{})
	c.AttachTier(tr)
	for i := 0; i < 40; i++ {
		v := make([]tuple.Tuple, 10)
		for j := range v {
			v[j] = tuple.Tuple{tuple.Value(i), tuple.Value(j)}
		}
		c.Create(tierKey(tuple.Value(i), 2), v)
	}
	if c.ColdUsedBytes() == 0 {
		t.Fatal("nothing demoted before detach")
	}
	c.DetachTier()
	if c.ColdUsedBytes() != 0 || c.HotUsedBytes() != c.UsedBytes() {
		t.Fatalf("detach left cold bytes: cold %d hot %d used %d", c.ColdUsedBytes(), c.HotUsedBytes(), c.UsedBytes())
	}
	if tr.sp.LivePages() != 0 {
		t.Fatalf("detach leaked %d spill pages", tr.sp.LivePages())
	}
	n := 0
	c.Each(func(u tuple.Key, v []tuple.Tuple) { n += len(v) })
	if n == 0 {
		t.Fatal("entries lost on detach")
	}
}
