package cache

import (
	"acache/internal/cost"
	"acache/internal/tuple"
)

// Counted-value operations for globally-consistent caches (Section 6).
//
// A globally-consistent cache stores X ⋉ Y: the segment-join (X) tuples that
// currently have at least one joining combination in the reduction join Y.
// Each resident entry holds one element per *distinct* X-tuple value x with
// two numbers:
//
//   - mult: x's multiplicity in the X join (identical window rows multiply),
//     which a probe hit must replay; and
//   - support: the total Y-support T(x) = mult × (Y combinations per
//     instance).
//
// T is maintained additively and exactly: every maintenance delta batch at
// the X∪Y pipeline position contributes one composite per
// (X-instance, Y-combination) pair, and a single update changes only one
// factor of T, so T ± n is always exact. mult is recomputed from base-store
// value counts when an X relation changes (the join package supplies the
// recompute closure). An element lives exactly while T > 0, which is
// precisely x ∈ X ⋉ Y — so entries always equal the lower bound of the
// global-consistency invariant (Definition 6.1), the strongest point of its
// allowed range.
//
// Counted entries reuse the same slots as plain entries; a cache must be
// used in exactly one mode — the engine never mixes them.

// countedElemBytes is the accounted per-element overhead beyond the tuple
// reference: the mult and support integers.
const countedElemBytes = RefBytes * 3

// CreateCounted installs the complete counted value for key u: tuples[i] is
// a distinct X-tuple with multiplicity mults[i] ≥ 1 and total support
// supports[i] > 0. Semantics otherwise match Create, including direct-mapped
// eviction and budget drops.
func (c *Cache) CreateCounted(u tuple.Key, tuples []tuple.Tuple, mults, supports []int) {
	if c.assoc != 0 {
		panic("cache: counted entries require the direct-mapped scheme")
	}
	if len(tuples) != len(mults) || len(tuples) != len(supports) {
		panic("cache: tuples/mults/supports length mismatch")
	}
	c.meter.Charge(cost.HashInsert)
	c.meter.ChargeN(cost.CacheInsertTuple, len(tuples))
	size := c.keyBytes + countedElemBytes*len(tuples)
	s := c.slotOf(u)
	freed := 0
	if s.occupied {
		freed = c.slotBytes(s)
	}
	if c.budget >= 0 && c.usedBytes-freed+size > c.budget {
		c.stats.MemoryDrops++
		return
	}
	c.version++
	if s.occupied {
		if s.key != u {
			c.stats.Evictions++
		}
		c.filDel(s.key)
		c.freeCold(s)
		c.usedBytes -= freed
		c.numEntries--
	}
	s.occupied = true
	s.key = u
	s.val = append([]tuple.Tuple(nil), tuples...)
	s.mult = append([]int(nil), mults...)
	s.cnt = append([]int(nil), supports...)
	s.ref = true
	c.usedBytes += size
	c.numEntries++
	c.stats.Creates++
	c.filAdd(u)
	c.maybeMaintain()
}

// ProbeCounted looks up key u on a counted cache, returning the distinct
// tuples and their multiplicities on a hit.
func (c *Cache) ProbeCounted(u tuple.Key) (tuples []tuple.Tuple, mults []int, ok bool) {
	c.meter.Charge(cost.HashProbe)
	c.stats.Probes++
	h := hashOf(u)
	if c.filterAbsent(h) {
		c.stats.Misses++
		return nil, nil, false
	}
	s := &c.slots[h%uint64(c.nbuckets)]
	if s.occupied && s.key == u {
		c.stats.Hits++
		c.touchSlot(s)
		return s.val, s.mult, true
	}
	c.noteMiss()
	return nil, nil, false
}

// ProbeCountedBytes is ProbeCounted for a packed key supplied as bytes.
func (c *Cache) ProbeCountedBytes(k []byte) (tuples []tuple.Tuple, mults []int, ok bool) {
	c.meter.Charge(cost.HashProbe)
	c.stats.Probes++
	h := tuple.HashBytes(k, cacheSeed)
	if c.filterAbsent(h) {
		c.stats.Misses++
		return nil, nil, false
	}
	s := &c.slots[h%uint64(c.nbuckets)]
	if s.occupied && keyEq(s.key, k) {
		c.stats.Hits++
		c.touchSlot(s)
		return s.val, s.mult, true
	}
	c.noteMiss()
	return nil, nil, false
}

// ApplyCountedDelta applies a maintenance delta of n support units (n > 0
// inserts, n < 0 deletes) for X-tuple r under key u. recomputeMult returns
// r's X-join multiplicity as it will stand once the triggering update is
// applied; the join layer derives it from base-store value counts. Absent
// entries are ignored; an element is added when support arrives for a tuple
// the entry did not hold (the lower bound of Definition 6.1 requires it),
// and removed when its support reaches zero.
func (c *Cache) ApplyCountedDelta(u tuple.Key, r tuple.Tuple, n int, recomputeMult func() int) {
	c.meter.Charge(cost.HashProbe)
	h := hashOf(u)
	if c.filterAbsent(h) {
		return // absent entry: the unfiltered path would return just below
	}
	s := &c.slots[h%uint64(c.nbuckets)]
	if !s.occupied || s.key != u {
		return
	}
	c.touchSlot(s)
	c.meter.Charge(cost.CacheInsertTuple)
	c.version++
	if n > 0 {
		c.stats.Inserts++
	} else {
		c.stats.Deletes++
	}
	for i, t := range s.val {
		if !t.Equal(r) {
			continue
		}
		s.cnt[i] += n
		if s.cnt[i] <= 0 {
			last := len(s.val) - 1
			s.val[i], s.cnt[i], s.mult[i] = s.val[last], s.cnt[last], s.mult[last]
			s.val, s.cnt, s.mult = s.val[:last], s.cnt[:last], s.mult[:last]
			c.usedBytes -= countedElemBytes
			return
		}
		s.mult[i] = recomputeMult()
		return
	}
	if n <= 0 {
		return
	}
	if c.budget >= 0 && c.usedBytes+countedElemBytes > c.budget {
		c.dropSlot(s)
		c.stats.MemoryDrops++
		return
	}
	m := recomputeMult()
	s.val = append(s.val, r)
	s.cnt = append(s.cnt, n)
	s.mult = append(s.mult, m)
	c.usedBytes += countedElemBytes
	c.maybeMaintain()
}

// EachCounted visits every resident counted entry with its multiplicities
// and supports.
func (c *Cache) EachCounted(f func(u tuple.Key, v []tuple.Tuple, mults, supports []int)) {
	for i := range c.slots {
		if !c.slots[i].occupied {
			continue
		}
		if c.slots[i].cold {
			c.promoteSlot(&c.slots[i])
		}
		f(c.slots[i].key, c.slots[i].val, c.slots[i].mult, c.slots[i].cnt)
	}
}

// slotBytes returns the accounted size of a slot's entry, counted or plain.
// Cold entries report the size frozen at demotion (content is immutable
// while cold).
func (c *Cache) slotBytes(s *slot) int {
	if s.cold {
		return c.keyBytes + s.cbytes
	}
	if s.cnt != nil {
		return c.keyBytes + countedElemBytes*len(s.val)
	}
	return entryBytes(c.keyBytes, s.val)
}
