package cache

import (
	"math/rand"
	"testing"

	"acache/internal/cost"
	"acache/internal/tuple"
)

func key(v int64) tuple.Key { return tuple.KeyOfValues([]tuple.Value{v}) }

func TestTwoWayHoldsColliders(t *testing.T) {
	// One set, two ways: two keys that necessarily collide both stay
	// resident — the exact thrash case direct-mapped cannot hold.
	c := NewAssociative(1, 8, -1, TwoWay, &cost.Meter{})
	c.Create(key(1), []tuple.Tuple{{1}})
	c.Create(key(2), []tuple.Tuple{{2}})
	if _, hit := c.Probe(key(1)); !hit {
		t.Fatal("first key evicted despite a free way")
	}
	if _, hit := c.Probe(key(2)); !hit {
		t.Fatal("second key missing")
	}
	if c.Entries() != 2 {
		t.Fatalf("entries = %d", c.Entries())
	}
	// A third key evicts the LRU way (key 1 was probed before key 2...
	// probing key(2) last made way(1) MRU, so key(1)'s way is LRU only if
	// it was used earlier — probe key(1) now to protect it, then insert.
	c.Probe(key(1))
	c.Create(key(3), []tuple.Tuple{{3}})
	if _, hit := c.Probe(key(1)); !hit {
		t.Fatal("recently used key was evicted")
	}
	if _, hit := c.Probe(key(2)); hit {
		t.Fatal("LRU key survived")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestTwoWayInsertDeleteDropClear(t *testing.T) {
	c := NewAssociative(4, 8, -1, TwoWay, &cost.Meter{})
	c.Create(key(1), []tuple.Tuple{{1}})
	c.Insert(key(1), tuple.Tuple{9})
	v, _ := c.Probe(key(1))
	if len(v) != 2 {
		t.Fatalf("after insert: %v", v)
	}
	c.Delete(key(1), tuple.Tuple{9})
	if v, _ := c.Probe(key(1)); len(v) != 1 {
		t.Fatalf("after delete: %v", v)
	}
	c.Insert(key(42), tuple.Tuple{1}) // absent key ignored
	c.Drop(key(1))
	if _, hit := c.Probe(key(1)); hit {
		t.Fatal("drop failed")
	}
	c.Create(key(1), nil)
	c.Create(key(2), nil)
	c.Clear()
	if c.Entries() != 0 || c.UsedBytes() != 0 {
		t.Fatal("clear incomplete")
	}
}

func TestTwoWayMemoryAccountingInvariant(t *testing.T) {
	c := NewAssociative(8, 8, -1, TwoWay, &cost.Meter{})
	rng := rand.New(rand.NewSource(6))
	recompute := func() int {
		total := 0
		c.Each(func(u tuple.Key, v []tuple.Tuple) {
			total += len(u) + RefBytes*len(v)
		})
		return total
	}
	for i := 0; i < 3000; i++ {
		u := key(rng.Int63n(40))
		switch rng.Intn(4) {
		case 0:
			var v []tuple.Tuple
			for j := 0; j < rng.Intn(3); j++ {
				v = append(v, tuple.Tuple{rng.Int63n(5)})
			}
			c.Create(u, v)
		case 1:
			c.Insert(u, tuple.Tuple{rng.Int63n(5)})
		case 2:
			c.Delete(u, tuple.Tuple{rng.Int63n(5)})
		case 3:
			c.Drop(u)
		}
		if c.UsedBytes() != recompute() {
			t.Fatalf("step %d: accounted %d, actual %d", i, c.UsedBytes(), recompute())
		}
	}
}

// TestTwoWayBeatsDirectOnCollisions measures the future-work claim: at the
// same total capacity and a hot working set near capacity, the
// set-associative scheme's hit rate is at least the direct-mapped one's.
func TestTwoWayBeatsDirectOnCollisions(t *testing.T) {
	const sets = 32 // direct: 64 buckets; two-way: 32 sets × 2 = same entries
	direct := NewAssociative(64, 8, -1, DirectMapped, &cost.Meter{})
	assoc := NewAssociative(sets, 8, -1, TwoWay, &cost.Meter{})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30000; i++ {
		u := key(rng.Int63n(48)) // working set 48 of 64 capacity
		for _, c := range []*Cache{direct, assoc} {
			if _, hit := c.Probe(u); !hit {
				c.Create(u, []tuple.Tuple{{1}})
			}
		}
	}
	dh, ah := direct.HitRate(), assoc.HitRate()
	// Balls-in-bins: with 48 random keys over 32 sets of 2, roughly a
	// fifth of the sets overflow, so two-way lands in the 0.7s while
	// direct-mapped thrashes lower; require a clear margin, not perfection.
	if ah < dh+0.02 {
		t.Fatalf("two-way hit rate %.3f not clearly above direct-mapped %.3f", ah, dh)
	}
	if ah < 0.7 {
		t.Fatalf("two-way hit rate %.3f unexpectedly low", ah)
	}
}

func TestCountedRejectsAssociative(t *testing.T) {
	c := NewAssociative(4, 8, -1, TwoWay, &cost.Meter{})
	defer func() {
		if recover() == nil {
			t.Fatal("counted create on an associative cache must panic")
		}
	}()
	c.CreateCounted(key(1), []tuple.Tuple{{1}}, []int{1}, []int{1})
}
