package cache

import (
	"encoding/binary"

	"acache/internal/fault"
	"acache/internal/tier"
	"acache/internal/tuple"
)

// Tiered cache storage: cache tables share one engine-level spill file. A
// demoted entry keeps its key, filter fingerprint, and logical byte
// accounting resident — so placement, eviction, budget drops, and every
// meter charge are bit-identical with tiering on or off — while its payload
// (the value set, and for counted entries the mult/support arrays) is
// serialized into one spill page. Any touch of a cold entry promotes it
// first; the fingerprint filters in front of every residency check keep
// guaranteed misses from ever faulting a cold page. A clock hand across the
// attached caches demotes cold-eligible entries while the resident payload
// footprint exceeds the watermark.
//
// Unlike relation pages, entries mutate while hot, so a demoted blob does
// not keep its spill slot: the slot is freed at promotion and a fresh one is
// allocated at the next demotion. A cold entry is immutable by construction
// — every mutation path resolves the slot through a residency check that
// promotes first.

// cacheSpillMeta marks a spill file as holding cache entry blobs (the
// relation spills record their tuple width here instead).
const cacheSpillMeta = 0xcace

// Tier is the shared cold tier of one engine's cache tables.
type Tier struct {
	sp        *tier.Spill
	hotBytes  int
	caches    []*Cache
	ci, si    int // clock hand: cache index, slot index (slots then slots2)
	promos    uint64
	demos     uint64
	writeErrs uint64 // failed spill writes (each one sets disabled)
	disabled  bool   // spill I/O failed: stop demoting, degrade fully hot
}

// NewTier creates the shared cache spill at path. hotBytes is the watermark
// on the total resident payload of all attached caches. Spill I/O goes
// through fsys (nil = the real filesystem).
func NewTier(path string, pageBytes, hotBytes int, fsys fault.FS) (*Tier, error) {
	sp, err := tier.Create(path, pageBytes, cacheSpillMeta, fsys)
	if err != nil {
		return nil, err
	}
	return &Tier{sp: sp, hotBytes: hotBytes}, nil
}

// Close detaches every cache (promoting nothing — callers close caches
// first or accept the loss) and removes the spill file. Attached caches are
// left untired with their cold payloads dropped, so Close is only for
// engine teardown where the caches die too.
func (t *Tier) Close() error {
	for _, c := range t.caches {
		for _, ss := range [][]slot{c.slots, c.slots2} {
			for i := range ss {
				if ss[i].cold {
					c.dropSlot(&ss[i])
				}
			}
		}
		c.tr = nil
	}
	t.caches = nil
	return t.sp.Close()
}

// Counters returns cumulative entry promotions and demotions.
func (t *Tier) Counters() (promotions, demotions uint64) { return t.promos, t.demos }

// WriteErrors returns the count of failed spill writes.
func (t *Tier) WriteErrors() uint64 { return t.writeErrs }

// Degraded reports whether a spill-write failure has degraded the tier to
// hot-only operation: demotion is disabled and every cache payload stays
// resident. Results are unaffected — only the memory win is lost.
func (t *Tier) Degraded() bool { return t.disabled }

// ColdBytes returns the logical bytes currently spilled across all attached
// caches.
func (t *Tier) ColdBytes() int {
	n := 0
	for _, c := range t.caches {
		n += c.coldBytes
	}
	return n
}

// AttachTier registers the cache with the shared cold tier. Call once,
// before the cache holds entries worth spilling (attaching later is safe —
// existing entries simply become demotion candidates).
func (c *Cache) AttachTier(t *Tier) {
	if c.tr != nil || t == nil {
		return
	}
	c.tr = t
	t.caches = append(t.caches, c)
}

// DetachTier promotes every cold entry back to the heap and unregisters the
// cache, leaving it fully functional untired. Used when a cache outlives
// the tier (plan changes that recycle cache instances).
func (c *Cache) DetachTier() {
	t := c.tr
	if t == nil {
		return
	}
	for _, ss := range [][]slot{c.slots, c.slots2} {
		for i := range ss {
			if ss[i].cold {
				c.promoteSlot(&ss[i])
			}
		}
	}
	for i, o := range t.caches {
		if o == c {
			t.caches = append(t.caches[:i], t.caches[i+1:]...)
			break
		}
	}
	c.tr = nil
	if len(t.caches) > 0 {
		t.ci %= len(t.caches)
	} else {
		t.ci = 0
	}
	t.si = 0
}

// HotUsedBytes is the resident portion of UsedBytes — what the engine
// reports to the memory allocator. Equal to UsedBytes on an untired cache.
func (c *Cache) HotUsedBytes() int { return c.usedBytes - c.coldBytes }

// ColdUsedBytes is the logical bytes of this cache's spilled payloads.
func (c *Cache) ColdUsedBytes() int { return c.coldBytes }

// touchSlot records a hit on a resident slot, promoting it first if cold.
// Advisory only: no charges, no version bump.
func (c *Cache) touchSlot(s *slot) {
	if s.cold {
		c.promoteSlot(s)
	}
	s.ref = true
}

// freeCold releases a slot's spill page without promoting, for eviction and
// drop paths where the payload dies anyway.
func (c *Cache) freeCold(s *slot) {
	if !s.cold {
		return
	}
	c.tr.sp.Free(s.cslot)
	c.coldBytes -= s.cbytes
	s.cold = false
	s.cbytes = 0
}

// Blob layout (8-byte words): word 0 is len(val)<<1 | countedBit, word 1 is
// the tuple width, then the n×w values, then for counted entries the n mult
// words and n support words. Everything a promotion needs to rebuild the
// entry exactly; the key never leaves the heap.

// demoteSlot serializes a hot slot's payload into a fresh spill page and
// drops the heap copies. Returns the logical bytes moved cold, or 0 if the
// entry is not demotable (empty payload, oversized blob, ragged widths).
func (c *Cache) demoteSlot(s *slot) int {
	payload := c.slotBytes(s) - c.keyBytes
	if payload <= 0 {
		return 0
	}
	n := len(s.val)
	w := 0
	for i, u := range s.val {
		if i == 0 {
			w = len(u)
		} else if len(u) != w {
			return 0
		}
	}
	counted := s.cnt != nil
	words := 2 + n*w
	if counted {
		words += 2 * n
	}
	if words*8 > c.tr.sp.PageBytes() {
		return 0
	}
	slot, err := c.tr.sp.Alloc()
	if err != nil {
		c.tr.writeErrs++
		c.tr.disabled = true
		return 0
	}
	b := c.tr.sp.Bytes(slot)
	head := uint64(n) << 1
	if counted {
		head |= 1
	}
	binary.LittleEndian.PutUint64(b, head)
	binary.LittleEndian.PutUint64(b[8:], uint64(w))
	off := 16
	for _, u := range s.val {
		for _, v := range u {
			binary.LittleEndian.PutUint64(b[off:], uint64(v))
			off += 8
		}
	}
	if counted {
		for _, m := range s.mult {
			binary.LittleEndian.PutUint64(b[off:], uint64(m))
			off += 8
		}
		for _, n := range s.cnt {
			binary.LittleEndian.PutUint64(b[off:], uint64(n))
			off += 8
		}
	}
	s.cold = true
	s.cslot = slot
	s.cbytes = payload
	s.val = nil
	s.mult = nil
	s.cnt = nil
	c.coldBytes += payload
	c.tr.demos++
	return payload
}

// promoteSlot rebuilds a cold slot's payload from its spill page and frees
// the page.
func (c *Cache) promoteSlot(s *slot) {
	b := c.tr.sp.Bytes(s.cslot)
	head := binary.LittleEndian.Uint64(b)
	n := int(head >> 1)
	counted := head&1 == 1
	w := int(binary.LittleEndian.Uint64(b[8:]))
	back := make([]tuple.Value, n*w)
	off := 16
	for i := range back {
		back[i] = tuple.Value(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	val := make([]tuple.Tuple, n)
	for i := range val {
		val[i] = tuple.Tuple(back[i*w : (i+1)*w : (i+1)*w])
	}
	s.val = val
	if counted {
		s.mult = make([]int, n)
		s.cnt = make([]int, n)
		for i := range s.mult {
			s.mult[i] = int(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
		for i := range s.cnt {
			s.cnt[i] = int(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
	}
	c.tr.sp.Free(s.cslot)
	c.coldBytes -= s.cbytes
	s.cold = false
	s.cbytes = 0
	c.tr.promos++
}

// maybeMaintain runs the demotion clock if the cache is tiered. Call after
// any operation that can grow resident payload bytes.
func (c *Cache) maybeMaintain() {
	if c.tr != nil {
		c.tr.maintain()
	}
}

// maintain advances a clock hand over every attached cache's slots,
// demoting entries whose reference bit is clear, until the resident payload
// footprint fits the watermark or the hand has swept twice without finding
// enough to demote.
func (t *Tier) maintain() {
	if t.disabled || len(t.caches) == 0 {
		return
	}
	hot := 0
	total := 0
	for _, c := range t.caches {
		hot += c.usedBytes - c.coldBytes
		total += len(c.slots) + len(c.slots2)
	}
	for steps := 0; hot > t.hotBytes && steps < 2*total; steps++ {
		c := t.caches[t.ci]
		var s *slot
		if t.si < len(c.slots) {
			s = &c.slots[t.si]
		} else {
			s = &c.slots2[t.si-len(c.slots)]
		}
		t.si++
		if t.si >= len(c.slots)+len(c.slots2) {
			t.si = 0
			t.ci = (t.ci + 1) % len(t.caches)
		}
		if !s.occupied || s.cold {
			continue
		}
		if s.ref {
			s.ref = false
			continue
		}
		hot -= c.demoteSlot(s)
		if t.disabled {
			return
		}
	}
}
