// Package cache implements the join-subresult cache of Section 3.3: an
// associative store from cache-key values to the set of segment-join tuples
// for that key, with the paper's create/probe/insert/delete operations, a
// low-overhead direct-mapped replacement scheme, and explicit byte-level
// memory accounting for the adaptive memory allocator (Section 5).
package cache

import (
	"acache/internal/cost"
	"acache/internal/tuple"
)

// RefBytes is the accounted size of one cached tuple reference. The paper's
// implementation stores sets of references to relation tuples rather than
// copies; we account each value element at pointer size.
const RefBytes = 8

// BucketBytes is the accounted per-bucket overhead (hash pointer slot).
const BucketBytes = 8

// Stats are cumulative counters, exposed for the profiler and for tests.
type Stats struct {
	Probes      int64
	Hits        int64
	Misses      int64
	Creates     int64
	Inserts     int64
	Deletes     int64
	Evictions   int64 // direct-mapped collisions that replaced a resident entry
	MemoryDrops int64 // creates or inserts abandoned for lack of memory
}

// Cache is a direct-mapped associative store satisfying the consistency
// invariant (Definition 3.1): every resident entry's value is exactly the
// segment join selection for its key. Completeness is never guaranteed —
// entries may be missing — which is what lets caches be added empty and
// dropped at any time.
type Cache struct {
	nbuckets int
	slots    []slot
	meter    *cost.Meter

	// Two-way set-associative mode (NewAssociative): assoc is 2, slots2
	// holds the second way, and lru tracks each set's least-recently-used
	// way. assoc 0 is the paper's direct-mapped scheme.
	assoc  int
	slots2 []slot
	lru    []uint8

	keyBytes   int // packed key size, constant per cache
	budget     int // memory budget in bytes; <0 = unlimited
	usedBytes  int
	numEntries int

	version uint64 // bumped on every entry mutation; validates probe memos

	stats Stats
}

type slot struct {
	occupied bool
	key      tuple.Key
	val      []tuple.Tuple
	// Counted-mode parallel slices (nil for plain entries): mult is each
	// distinct tuple's X-join multiplicity, cnt its total Y-support.
	mult []int
	cnt  []int
}

// New creates a cache with nbuckets direct-mapped buckets for keys of
// keyBytes packed bytes. budget < 0 means unlimited memory.
func New(nbuckets, keyBytes, budget int, meter *cost.Meter) *Cache {
	if nbuckets < 1 {
		nbuckets = 1
	}
	return &Cache{
		nbuckets: nbuckets,
		slots:    make([]slot, nbuckets),
		meter:    meter,
		keyBytes: keyBytes,
		budget:   budget,
	}
}

// cacheSeed is a fixed hash seed: slot placement — and therefore eviction
// patterns and every cached-mode cost figure — is identical across runs for
// a fixed workload seed.
const cacheSeed uint64 = 0x2545f4914f6cdd1d

func hashOf(u tuple.Key) uint64 { return tuple.HashKey(u, cacheSeed) }

// keyEq compares a resident key against packed key bytes without
// materializing a string (the compiler elides the conversion allocations in
// a string==string comparison).
func keyEq(key tuple.Key, k []byte) bool { return string(key) == string(k) }

func (c *Cache) slotOf(u tuple.Key) *slot {
	return &c.slots[hashOf(u)%uint64(c.nbuckets)]
}

func (c *Cache) slotOfBytes(k []byte) *slot {
	return &c.slots[tuple.HashBytes(k, cacheSeed)%uint64(c.nbuckets)]
}

// residentSlot returns the slot currently holding key u, or nil — the
// mode-independent lookup for Insert/Delete/Drop.
func (c *Cache) residentSlot(u tuple.Key) *slot {
	if c.assoc == 2 {
		return c.slotForAssoc(u)
	}
	s := c.slotOf(u)
	if s.occupied && s.key == u {
		return s
	}
	return nil
}

// residentSlotBytes is residentSlot for packed key bytes.
func (c *Cache) residentSlotBytes(k []byte) *slot {
	if c.assoc == 2 {
		return c.slotForAssocBytes(k)
	}
	s := c.slotOfBytes(k)
	if s.occupied && keyEq(s.key, k) {
		return s
	}
	return nil
}

func entryBytes(keyBytes int, val []tuple.Tuple) int {
	return keyBytes + RefBytes*len(val)
}

// Probe looks up key u. On a hit it returns (value, true); the value may be
// an empty set, which is still a hit — it asserts no segment tuples join
// with u. On a miss it returns (nil, false).
func (c *Cache) Probe(u tuple.Key) ([]tuple.Tuple, bool) {
	if c.assoc == 2 {
		return c.probeAssoc(u)
	}
	c.meter.Charge(cost.HashProbe)
	c.stats.Probes++
	s := c.slotOf(u)
	if s.occupied && s.key == u {
		c.stats.Hits++
		return s.val, true
	}
	c.stats.Misses++
	return nil, false
}

// ProbeBytes is Probe for a packed key supplied as bytes (a scratch buffer
// filled by tuple.AppendKey). It allocates nothing: hashing and comparison
// work directly on the bytes. Charges and statistics match Probe exactly.
func (c *Cache) ProbeBytes(k []byte) ([]tuple.Tuple, bool) {
	if c.assoc == 2 {
		return c.probeAssocBytes(k)
	}
	c.meter.Charge(cost.HashProbe)
	c.stats.Probes++
	s := c.slotOfBytes(k)
	if s.occupied && keyEq(s.key, k) {
		c.stats.Hits++
		return s.val, true
	}
	c.stats.Misses++
	return nil, false
}

// Create installs the complete value v for key u, replacing whatever entry
// occupied the slot (the direct-mapped scheme of Section 3.3: collisions
// simply evict the resident entry, which never violates consistency). If the
// new entry does not fit in the remaining budget the create is dropped; the
// resident entry, if any, is kept.
func (c *Cache) Create(u tuple.Key, v []tuple.Tuple) {
	if c.assoc == 2 {
		c.createAssoc(u, v)
		return
	}
	c.meter.Charge(cost.HashInsert)
	c.meter.ChargeN(cost.CacheInsertTuple, len(v))
	size := entryBytes(c.keyBytes, v)
	s := c.slotOf(u)
	freed := 0
	if s.occupied {
		freed = c.slotBytes(s)
	}
	if c.budget >= 0 && c.usedBytes-freed+size > c.budget {
		c.stats.MemoryDrops++
		return
	}
	c.version++
	if s.occupied {
		if s.key != u {
			c.stats.Evictions++
		}
		c.usedBytes -= freed
		c.numEntries--
	}
	s.occupied = true
	s.key = u
	s.val = append([]tuple.Tuple(nil), v...)
	s.cnt = nil
	s.mult = nil
	c.usedBytes += size
	c.numEntries++
	c.stats.Creates++
}

// Insert adds tuple r to the entry for key u, if present; otherwise it is
// ignored (Section 3.2). If growing the entry would exceed the budget, the
// entire entry is dropped instead — absence never violates consistency,
// while a silently incomplete entry would.
func (c *Cache) Insert(u tuple.Key, r tuple.Tuple) {
	c.meter.Charge(cost.HashProbe)
	s := c.residentSlot(u)
	if s == nil {
		return
	}
	c.meter.Charge(cost.CacheInsertTuple)
	if c.budget >= 0 && c.usedBytes+RefBytes > c.budget {
		c.dropSlot(s)
		c.stats.MemoryDrops++
		return
	}
	c.version++
	s.val = append(s.val, r)
	c.usedBytes += RefBytes
	c.stats.Inserts++
}

// InsertBytes is Insert for a packed key supplied as bytes. The tuple r is
// retained by the cache, so callers passing arena-backed composites must
// clone first (maintenance extracts already copy).
func (c *Cache) InsertBytes(k []byte, r tuple.Tuple) {
	c.meter.Charge(cost.HashProbe)
	s := c.residentSlotBytes(k)
	if s == nil {
		return
	}
	c.meter.Charge(cost.CacheInsertTuple)
	if c.budget >= 0 && c.usedBytes+RefBytes > c.budget {
		c.dropSlot(s)
		c.stats.MemoryDrops++
		return
	}
	c.version++
	s.val = append(s.val, r)
	c.usedBytes += RefBytes
	c.stats.Inserts++
}

// Delete removes one tuple equal to r from the entry for key u, if the entry
// is present; otherwise it is ignored.
func (c *Cache) Delete(u tuple.Key, r tuple.Tuple) {
	c.meter.Charge(cost.HashProbe)
	s := c.residentSlot(u)
	if s == nil {
		return
	}
	c.meter.Charge(cost.CacheInsertTuple)
	for i, t := range s.val {
		if t.Equal(r) {
			c.version++
			s.val[i] = s.val[len(s.val)-1]
			s.val = s.val[:len(s.val)-1]
			c.usedBytes -= RefBytes
			c.stats.Deletes++
			return
		}
	}
}

// InsertBytesLazy is InsertBytes taking the tuple as a constructor, invoked
// only when the entry is resident and fits the budget — maintenance avoids
// materializing a heap copy of the segment tuple on the absent path. Charges
// and statistics match Insert exactly.
func (c *Cache) InsertBytesLazy(k []byte, mk func() tuple.Tuple) {
	c.meter.Charge(cost.HashProbe)
	s := c.residentSlotBytes(k)
	if s == nil {
		return
	}
	c.meter.Charge(cost.CacheInsertTuple)
	if c.budget >= 0 && c.usedBytes+RefBytes > c.budget {
		c.dropSlot(s)
		c.stats.MemoryDrops++
		return
	}
	c.version++
	s.val = append(s.val, mk())
	c.usedBytes += RefBytes
	c.stats.Inserts++
}

// DeleteBytes is Delete for a packed key supplied as bytes.
func (c *Cache) DeleteBytes(k []byte, r tuple.Tuple) {
	c.meter.Charge(cost.HashProbe)
	s := c.residentSlotBytes(k)
	if s == nil {
		return
	}
	c.meter.Charge(cost.CacheInsertTuple)
	for i, t := range s.val {
		if t.Equal(r) {
			c.version++
			s.val[i] = s.val[len(s.val)-1]
			s.val = s.val[:len(s.val)-1]
			c.usedBytes -= RefBytes
			c.stats.Deletes++
			return
		}
	}
}

func (c *Cache) dropSlot(s *slot) {
	if !s.occupied {
		return
	}
	c.version++
	c.usedBytes -= c.slotBytes(s)
	c.numEntries--
	s.occupied = false
	s.key = ""
	s.val = nil
	s.cnt = nil
	s.mult = nil
}

// Drop removes the entry for key u, if resident. Invalidation-mode caches
// use it when a segment update touches a cached key: absence never violates
// consistency, so dropping is always safe.
func (c *Cache) Drop(u tuple.Key) {
	c.meter.Charge(cost.HashProbe)
	if s := c.residentSlot(u); s != nil {
		c.dropSlot(s)
	}
}

// DropBytes is Drop for a packed key supplied as bytes.
func (c *Cache) DropBytes(k []byte) {
	c.meter.Charge(cost.HashProbe)
	if s := c.residentSlotBytes(k); s != nil {
		c.dropSlot(s)
	}
}

// Clear drops every entry, keeping the bucket array. Used when a cache's
// statistics have gone stale (e.g. after a pipeline reordering).
func (c *Cache) Clear() {
	for i := range c.slots {
		c.dropSlot(&c.slots[i])
	}
	for i := range c.slots2 {
		c.dropSlot(&c.slots2[i])
	}
}

// SetBudget changes the memory budget. Shrinking below current usage evicts
// entries (in slot order) until usage fits; this is how the adaptive memory
// allocator reclaims pages from low-priority caches.
func (c *Cache) SetBudget(budget int) {
	c.budget = budget
	if budget < 0 {
		return
	}
	for i := range c.slots {
		if c.usedBytes <= budget {
			return
		}
		c.dropSlot(&c.slots[i])
	}
	for i := range c.slots2 {
		if c.usedBytes <= budget {
			return
		}
		c.dropSlot(&c.slots2[i])
	}
}

// Budget returns the current byte budget (<0 = unlimited).
func (c *Cache) Budget() int { return c.budget }

// UsedBytes returns the currently accounted memory, excluding the fixed
// bucket array (see FixedBytes).
func (c *Cache) UsedBytes() int { return c.usedBytes }

// FixedBytes returns the bucket array overhead, charged once at allocation.
func (c *Cache) FixedBytes() int { return (c.nbuckets + len(c.slots2)) * BucketBytes }

// Entries returns the number of resident entries.
func (c *Cache) Entries() int { return c.numEntries }

// Buckets returns the configured bucket count.
func (c *Cache) Buckets() int { return c.nbuckets }

// KeyBytes returns the packed key size.
func (c *Cache) KeyBytes() int { return c.keyBytes }

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (entries are kept).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// HitRate returns hits/probes since the last ResetStats, or 0 with no probes.
// 1 − HitRate is the directly observed miss_prob of a used cache
// (Section 4.3).
func (c *Cache) HitRate() float64 {
	if c.stats.Probes == 0 {
		return 0
	}
	return float64(c.stats.Hits) / float64(c.stats.Probes)
}

// Each visits every resident entry; for tests and invariant checks.
func (c *Cache) Each(f func(u tuple.Key, v []tuple.Tuple)) {
	for i := range c.slots {
		if c.slots[i].occupied {
			f(c.slots[i].key, c.slots[i].val)
		}
	}
	for i := range c.slots2 {
		if c.slots2[i].occupied {
			f(c.slots2[i].key, c.slots2[i].val)
		}
	}
}
