// Package cache implements the join-subresult cache of Section 3.3: an
// associative store from cache-key values to the set of segment-join tuples
// for that key, with the paper's create/probe/insert/delete operations, a
// low-overhead direct-mapped replacement scheme, and explicit byte-level
// memory accounting for the adaptive memory allocator (Section 5).
package cache

import (
	"acache/internal/cost"
	"acache/internal/filter"
	"acache/internal/tuple"
)

// RefBytes is the accounted size of one cached tuple reference. The paper's
// implementation stores sets of references to relation tuples rather than
// copies; we account each value element at pointer size.
const RefBytes = 8

// BucketBytes is the accounted per-bucket overhead (hash pointer slot).
const BucketBytes = 8

// Stats are cumulative counters, exposed for the profiler and for tests.
type Stats struct {
	Probes      int64
	Hits        int64
	Misses      int64
	Creates     int64
	Inserts     int64
	Deletes     int64
	Evictions   int64 // direct-mapped collisions that replaced a resident entry
	MemoryDrops int64 // creates or inserts abandoned for lack of memory

	// FilterShortCircuits counts residency checks (probes and maintenance
	// lookups) answered "guaranteed absent" by the fingerprint filter without
	// touching the slots; FilterFalsePositives counts filter-passed checks
	// that then missed anyway.
	FilterShortCircuits  int64
	FilterFalsePositives int64
}

// Cache is a direct-mapped associative store satisfying the consistency
// invariant (Definition 3.1): every resident entry's value is exactly the
// segment join selection for its key. Completeness is never guaranteed —
// entries may be missing — which is what lets caches be added empty and
// dropped at any time.
type Cache struct {
	nbuckets int
	slots    []slot
	meter    *cost.Meter

	// Two-way set-associative mode (NewAssociative): assoc is 2, slots2
	// holds the second way, and lru tracks each set's least-recently-used
	// way. assoc 0 is the paper's direct-mapped scheme.
	assoc  int
	slots2 []slot
	lru    []uint8

	keyBytes   int // packed key size, constant per cache
	budget     int // memory budget in bytes; <0 = unlimited
	usedBytes  int
	numEntries int

	version uint64 // bumped on every entry mutation; validates probe memos

	// tr, when non-nil, is the engine's shared cold tier (see tier.go):
	// entry payloads past the hot watermark spill to a mapped file while
	// keys, filters, and all logical byte accounting stay resident.
	// coldBytes is the spilled portion of usedBytes.
	tr        *Tier
	coldBytes int

	// fil, when non-nil, fronts every residency check with a fingerprint
	// filter holding one fingerprint per resident entry, keyed by the same
	// cacheSeed hash as slot placement. A filter-negative check is a
	// guaranteed miss answered without touching the slot arrays; charges and
	// results are identical either way. Its bytes are reported by
	// FilterBytes, deliberately outside usedBytes, so eviction behavior and
	// cached cost figures are unchanged by the filter's presence.
	fil *filter.Filter

	stats Stats
}

type slot struct {
	occupied bool
	key      tuple.Key
	val      []tuple.Tuple
	// Counted-mode parallel slices (nil for plain entries): mult is each
	// distinct tuple's X-join multiplicity, cnt its total Y-support.
	mult []int
	cnt  []int

	// Tier state (see tier.go): a cold entry's payload lives in spill page
	// cslot and accounts for cbytes of the logical entry size; ref is the
	// demotion clock's reference bit.
	cold   bool
	ref    bool
	cslot  int32
	cbytes int
}

// New creates a cache with nbuckets direct-mapped buckets for keys of
// keyBytes packed bytes. budget < 0 means unlimited memory.
func New(nbuckets, keyBytes, budget int, meter *cost.Meter) *Cache {
	if nbuckets < 1 {
		nbuckets = 1
	}
	return &Cache{
		nbuckets: nbuckets,
		slots:    make([]slot, nbuckets),
		meter:    meter,
		keyBytes: keyBytes,
		budget:   budget,
		fil:      filter.New(initialFilterCapacity),
	}
}

// SetMeter redirects the cache's cost charges to m. The staged executor uses
// this to route one pass's probe/create charges into a stage group's journal
// meter and back; callers must guarantee the cache is quiescent across the
// swap (the staged pass swaps before launching its groups and restores at
// the barrier, with the channel hand-offs providing the happens-before
// edges).
func (c *Cache) SetMeter(m *cost.Meter) { c.meter = m }

// initialFilterCapacity sizes a fresh cache filter; filAdd rebuilds at
// doubled capacity on overflow, so footprint tracks resident entries rather
// than the (possibly much larger) bucket count.
const initialFilterCapacity = 64

// cacheSeed is a fixed hash seed: slot placement — and therefore eviction
// patterns and every cached-mode cost figure — is identical across runs for
// a fixed workload seed.
const cacheSeed uint64 = 0x2545f4914f6cdd1d

func hashOf(u tuple.Key) uint64 { return tuple.HashKey(u, cacheSeed) }

// keyEq compares a resident key against packed key bytes without
// materializing a string (the compiler elides the conversion allocations in
// a string==string comparison).
func keyEq(key tuple.Key, k []byte) bool { return string(key) == string(k) }

func (c *Cache) slotOf(u tuple.Key) *slot {
	return &c.slots[hashOf(u)%uint64(c.nbuckets)]
}

func (c *Cache) slotOfBytes(k []byte) *slot {
	return &c.slots[tuple.HashBytes(k, cacheSeed)%uint64(c.nbuckets)]
}

// filAdd records a newly resident key in the filter. An overflowed cuckoo
// insert invalidates the filter, so it is rebuilt larger from the slots —
// which at this point already hold the new key.
func (c *Cache) filAdd(u tuple.Key) {
	if c.fil == nil || c.fil.Insert(hashOf(u)) {
		return
	}
	c.rebuildFilter(c.fil.Capacity() * 2)
}

// filDel removes a no-longer-resident key's fingerprint.
func (c *Cache) filDel(u tuple.Key) {
	if c.fil != nil {
		c.fil.Delete(hashOf(u))
	}
}

// rebuildFilter builds a fresh filter of at least the given capacity holding
// one fingerprint per resident entry, doubling until everything fits.
func (c *Cache) rebuildFilter(capacity int) {
	if capacity < initialFilterCapacity {
		capacity = initialFilterCapacity
	}
	for {
		nf := filter.New(capacity)
		ok := true
		for _, ss := range [][]slot{c.slots, c.slots2} {
			for i := range ss {
				if ss[i].occupied && !nf.Insert(hashOf(ss[i].key)) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			c.fil = nf
			return
		}
		capacity *= 2
	}
}

// filterAbsent reports a guaranteed miss for key hash h, counting the
// short-circuit. A false return means the caller must check the slots.
func (c *Cache) filterAbsent(h uint64) bool {
	if c.fil != nil && !c.fil.MayContainHash(h) {
		c.stats.FilterShortCircuits++
		return true
	}
	return false
}

// noteMiss records a probe that reached the slots and missed — a false
// positive when the filter vouched for the key first.
func (c *Cache) noteMiss() {
	c.stats.Misses++
	if c.fil != nil {
		c.stats.FilterFalsePositives++
	}
}

// residentSlot returns the slot currently holding key u, or nil — the
// mode-independent lookup for Insert/Delete/Drop. The filter answers the
// absent case first; the unfiltered lookup returns the same nil, so callers
// behave identically either way.
func (c *Cache) residentSlot(u tuple.Key) *slot {
	if c.filterAbsent(hashOf(u)) {
		return nil
	}
	if c.assoc == 2 {
		if s := c.slotForAssoc(u); s != nil {
			c.touchSlot(s)
			return s
		}
		return nil
	}
	s := c.slotOf(u)
	if s.occupied && s.key == u {
		c.touchSlot(s)
		return s
	}
	return nil
}

// residentSlotBytes is residentSlot for packed key bytes.
func (c *Cache) residentSlotBytes(k []byte) *slot {
	if c.filterAbsent(tuple.HashBytes(k, cacheSeed)) {
		return nil
	}
	if c.assoc == 2 {
		if s := c.slotForAssocBytes(k); s != nil {
			c.touchSlot(s)
			return s
		}
		return nil
	}
	s := c.slotOfBytes(k)
	if s.occupied && keyEq(s.key, k) {
		c.touchSlot(s)
		return s
	}
	return nil
}

func entryBytes(keyBytes int, val []tuple.Tuple) int {
	return keyBytes + RefBytes*len(val)
}

// Probe looks up key u. On a hit it returns (value, true); the value may be
// an empty set, which is still a hit — it asserts no segment tuples join
// with u. On a miss it returns (nil, false).
func (c *Cache) Probe(u tuple.Key) ([]tuple.Tuple, bool) {
	if c.assoc == 2 {
		return c.probeAssoc(u)
	}
	c.meter.Charge(cost.HashProbe)
	c.stats.Probes++
	h := hashOf(u)
	if c.filterAbsent(h) {
		c.stats.Misses++
		return nil, false
	}
	s := &c.slots[h%uint64(c.nbuckets)]
	if s.occupied && s.key == u {
		c.stats.Hits++
		c.touchSlot(s)
		return s.val, true
	}
	c.noteMiss()
	return nil, false
}

// ProbeBytes is Probe for a packed key supplied as bytes (a scratch buffer
// filled by tuple.AppendKey). It allocates nothing: hashing and comparison
// work directly on the bytes. Charges and statistics match Probe exactly.
func (c *Cache) ProbeBytes(k []byte) ([]tuple.Tuple, bool) {
	if c.assoc == 2 {
		return c.probeAssocBytes(k)
	}
	c.meter.Charge(cost.HashProbe)
	c.stats.Probes++
	h := tuple.HashBytes(k, cacheSeed)
	if c.filterAbsent(h) {
		c.stats.Misses++
		return nil, false
	}
	s := &c.slots[h%uint64(c.nbuckets)]
	if s.occupied && keyEq(s.key, k) {
		c.stats.Hits++
		c.touchSlot(s)
		return s.val, true
	}
	c.noteMiss()
	return nil, false
}

// Create installs the complete value v for key u, replacing whatever entry
// occupied the slot (the direct-mapped scheme of Section 3.3: collisions
// simply evict the resident entry, which never violates consistency). If the
// new entry does not fit in the remaining budget the create is dropped; the
// resident entry, if any, is kept.
func (c *Cache) Create(u tuple.Key, v []tuple.Tuple) {
	if c.assoc == 2 {
		c.createAssoc(u, v)
		return
	}
	c.meter.Charge(cost.HashInsert)
	c.meter.ChargeN(cost.CacheInsertTuple, len(v))
	size := entryBytes(c.keyBytes, v)
	s := c.slotOf(u)
	freed := 0
	if s.occupied {
		freed = c.slotBytes(s)
	}
	if c.budget >= 0 && c.usedBytes-freed+size > c.budget {
		c.stats.MemoryDrops++
		return
	}
	c.version++
	if s.occupied {
		if s.key != u {
			c.stats.Evictions++
		}
		c.filDel(s.key)
		c.freeCold(s)
		c.usedBytes -= freed
		c.numEntries--
	}
	s.occupied = true
	s.key = u
	s.val = append([]tuple.Tuple(nil), v...)
	s.cnt = nil
	s.mult = nil
	s.ref = true
	c.usedBytes += size
	c.numEntries++
	c.stats.Creates++
	c.filAdd(u)
	c.maybeMaintain()
}

// Insert adds tuple r to the entry for key u, if present; otherwise it is
// ignored (Section 3.2). If growing the entry would exceed the budget, the
// entire entry is dropped instead — absence never violates consistency,
// while a silently incomplete entry would.
func (c *Cache) Insert(u tuple.Key, r tuple.Tuple) {
	c.meter.Charge(cost.HashProbe)
	s := c.residentSlot(u)
	if s == nil {
		return
	}
	c.meter.Charge(cost.CacheInsertTuple)
	if c.budget >= 0 && c.usedBytes+RefBytes > c.budget {
		c.dropSlot(s)
		c.stats.MemoryDrops++
		return
	}
	c.version++
	s.val = append(s.val, r)
	c.usedBytes += RefBytes
	c.stats.Inserts++
	c.maybeMaintain()
}

// InsertBytes is Insert for a packed key supplied as bytes. The tuple r is
// retained by the cache, so callers passing arena-backed composites must
// clone first (maintenance extracts already copy).
func (c *Cache) InsertBytes(k []byte, r tuple.Tuple) {
	c.meter.Charge(cost.HashProbe)
	s := c.residentSlotBytes(k)
	if s == nil {
		return
	}
	c.meter.Charge(cost.CacheInsertTuple)
	if c.budget >= 0 && c.usedBytes+RefBytes > c.budget {
		c.dropSlot(s)
		c.stats.MemoryDrops++
		return
	}
	c.version++
	s.val = append(s.val, r)
	c.usedBytes += RefBytes
	c.stats.Inserts++
	c.maybeMaintain()
}

// Delete removes one tuple equal to r from the entry for key u, if the entry
// is present; otherwise it is ignored.
func (c *Cache) Delete(u tuple.Key, r tuple.Tuple) {
	c.meter.Charge(cost.HashProbe)
	s := c.residentSlot(u)
	if s == nil {
		return
	}
	c.meter.Charge(cost.CacheInsertTuple)
	for i, t := range s.val {
		if t.Equal(r) {
			c.version++
			s.val[i] = s.val[len(s.val)-1]
			s.val = s.val[:len(s.val)-1]
			c.usedBytes -= RefBytes
			c.stats.Deletes++
			return
		}
	}
}

// InsertBytesLazy is InsertBytes taking the tuple as a constructor, invoked
// only when the entry is resident and fits the budget — maintenance avoids
// materializing a heap copy of the segment tuple on the absent path. Charges
// and statistics match Insert exactly.
func (c *Cache) InsertBytesLazy(k []byte, mk func() tuple.Tuple) {
	c.meter.Charge(cost.HashProbe)
	s := c.residentSlotBytes(k)
	if s == nil {
		return
	}
	c.meter.Charge(cost.CacheInsertTuple)
	if c.budget >= 0 && c.usedBytes+RefBytes > c.budget {
		c.dropSlot(s)
		c.stats.MemoryDrops++
		return
	}
	c.version++
	s.val = append(s.val, mk())
	c.usedBytes += RefBytes
	c.stats.Inserts++
	c.maybeMaintain()
}

// DeleteBytes is Delete for a packed key supplied as bytes.
func (c *Cache) DeleteBytes(k []byte, r tuple.Tuple) {
	c.meter.Charge(cost.HashProbe)
	s := c.residentSlotBytes(k)
	if s == nil {
		return
	}
	c.meter.Charge(cost.CacheInsertTuple)
	for i, t := range s.val {
		if t.Equal(r) {
			c.version++
			s.val[i] = s.val[len(s.val)-1]
			s.val = s.val[:len(s.val)-1]
			c.usedBytes -= RefBytes
			c.stats.Deletes++
			return
		}
	}
}

func (c *Cache) dropSlot(s *slot) {
	if !s.occupied {
		return
	}
	c.filDel(s.key)
	c.version++
	c.usedBytes -= c.slotBytes(s)
	c.freeCold(s)
	c.numEntries--
	s.occupied = false
	s.key = ""
	s.val = nil
	s.cnt = nil
	s.mult = nil
	s.ref = false
}

// Drop removes the entry for key u, if resident. Invalidation-mode caches
// use it when a segment update touches a cached key: absence never violates
// consistency, so dropping is always safe.
func (c *Cache) Drop(u tuple.Key) {
	c.meter.Charge(cost.HashProbe)
	if s := c.residentSlot(u); s != nil {
		c.dropSlot(s)
	}
}

// DropBytes is Drop for a packed key supplied as bytes.
func (c *Cache) DropBytes(k []byte) {
	c.meter.Charge(cost.HashProbe)
	if s := c.residentSlotBytes(k); s != nil {
		c.dropSlot(s)
	}
}

// Clear drops every entry, keeping the bucket array. Used when a cache's
// statistics have gone stale (e.g. after a pipeline reordering).
func (c *Cache) Clear() {
	for i := range c.slots {
		c.dropSlot(&c.slots[i])
	}
	for i := range c.slots2 {
		c.dropSlot(&c.slots2[i])
	}
}

// SetBudget changes the memory budget. Shrinking below current usage evicts
// entries (in slot order) until usage fits; this is how the adaptive memory
// allocator reclaims pages from low-priority caches.
func (c *Cache) SetBudget(budget int) {
	c.budget = budget
	if budget < 0 {
		return
	}
	for i := range c.slots {
		if c.usedBytes <= budget {
			return
		}
		c.dropSlot(&c.slots[i])
	}
	for i := range c.slots2 {
		if c.usedBytes <= budget {
			return
		}
		c.dropSlot(&c.slots2[i])
	}
}

// Budget returns the current byte budget (<0 = unlimited).
func (c *Cache) Budget() int { return c.budget }

// UsedBytes returns the currently accounted memory, excluding the fixed
// bucket array (see FixedBytes).
func (c *Cache) UsedBytes() int { return c.usedBytes }

// FixedBytes returns the bucket array overhead, charged once at allocation.
func (c *Cache) FixedBytes() int { return (c.nbuckets + len(c.slots2)) * BucketBytes }

// Entries returns the number of resident entries.
func (c *Cache) Entries() int { return c.numEntries }

// Buckets returns the configured bucket count.
func (c *Cache) Buckets() int { return c.nbuckets }

// KeyBytes returns the packed key size.
func (c *Cache) KeyBytes() int { return c.keyBytes }

// SetFilterEnabled toggles the residency filter. Enabling rebuilds it from
// the resident entries; disabling frees it. Consistency never depends on the
// filter, so the re-optimizer toggles this as a cheap plan knob at any point.
func (c *Cache) SetFilterEnabled(on bool) {
	if on == (c.fil != nil) {
		return
	}
	if !on {
		c.fil = nil
		return
	}
	c.rebuildFilter(c.numEntries)
}

// FilterEnabled reports whether the residency filter is on.
func (c *Cache) FilterEnabled() bool { return c.fil != nil }

// FilterBytes returns the filter's resident footprint. It is charged against
// the server memory budget but kept out of UsedBytes so eviction behavior is
// independent of the filter.
func (c *Cache) FilterBytes() int {
	if c.fil == nil {
		return 0
	}
	return c.fil.MemoryBytes()
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (entries are kept).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// HitRate returns hits/probes since the last ResetStats, or 0 with no probes.
// 1 − HitRate is the directly observed miss_prob of a used cache
// (Section 4.3).
func (c *Cache) HitRate() float64 {
	if c.stats.Probes == 0 {
		return 0
	}
	return float64(c.stats.Hits) / float64(c.stats.Probes)
}

// Each visits every resident entry; for tests and invariant checks. Cold
// entries are promoted so the callback sees materialized values.
func (c *Cache) Each(f func(u tuple.Key, v []tuple.Tuple)) {
	for _, ss := range [][]slot{c.slots, c.slots2} {
		for i := range ss {
			if !ss[i].occupied {
				continue
			}
			if ss[i].cold {
				c.promoteSlot(&ss[i])
			}
			f(ss[i].key, ss[i].val)
		}
	}
}
