package cache

import (
	"math/rand"
	"testing"

	"acache/internal/cost"
	"acache/internal/tuple"
)

func newCache(buckets, budget int) *Cache {
	return New(buckets, 8, budget, &cost.Meter{})
}

func TestProbeMissHitAndEmptyHit(t *testing.T) {
	c := newCache(16, -1)
	u := tuple.KeyOfValues([]tuple.Value{1})
	if _, hit := c.Probe(u); hit {
		t.Fatal("probe of empty cache hit")
	}
	c.Create(u, nil) // negative caching: empty value is a valid entry
	v, hit := c.Probe(u)
	if !hit || len(v) != 0 {
		t.Fatal("empty entry must hit with empty value")
	}
	st := c.Stats()
	if st.Probes != 2 || st.Hits != 1 || st.Misses != 1 || st.Creates != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInsertDeleteSemantics(t *testing.T) {
	c := newCache(16, -1)
	u := tuple.KeyOfValues([]tuple.Value{1})
	// Insert to an absent key is ignored (Section 3.2).
	c.Insert(u, tuple.Tuple{1, 2})
	if _, hit := c.Probe(u); hit {
		t.Fatal("insert must not create entries")
	}
	c.Create(u, []tuple.Tuple{{1, 2}})
	c.Insert(u, tuple.Tuple{1, 3})
	v, _ := c.Probe(u)
	if len(v) != 2 {
		t.Fatalf("value = %v", v)
	}
	c.Delete(u, tuple.Tuple{1, 2})
	v, _ = c.Probe(u)
	if len(v) != 1 || !v[0].Equal(tuple.Tuple{1, 3}) {
		t.Fatalf("after delete: %v", v)
	}
	// Deleting an absent tuple or key is a no-op.
	c.Delete(u, tuple.Tuple{9, 9})
	c.Delete(tuple.KeyOfValues([]tuple.Value{42}), tuple.Tuple{1})
}

func TestMultisetValues(t *testing.T) {
	c := newCache(16, -1)
	u := tuple.KeyOfValues([]tuple.Value{1})
	c.Create(u, []tuple.Tuple{{7}, {7}})
	c.Delete(u, tuple.Tuple{7})
	v, _ := c.Probe(u)
	if len(v) != 1 {
		t.Fatalf("multiset delete removed %d copies", 2-len(v))
	}
}

func TestDirectMappedEviction(t *testing.T) {
	c := newCache(1, -1) // every key collides
	u1 := tuple.KeyOfValues([]tuple.Value{1})
	u2 := tuple.KeyOfValues([]tuple.Value{2})
	c.Create(u1, []tuple.Tuple{{1}})
	c.Create(u2, []tuple.Tuple{{2}})
	if _, hit := c.Probe(u1); hit {
		t.Fatal("evicted key still resident")
	}
	if _, hit := c.Probe(u2); !hit {
		t.Fatal("new key not resident")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
	if c.Entries() != 1 {
		t.Fatalf("entries = %d", c.Entries())
	}
}

func TestCreateReplacesSameKey(t *testing.T) {
	c := newCache(4, -1)
	u := tuple.KeyOfValues([]tuple.Value{1})
	c.Create(u, []tuple.Tuple{{1}, {2}})
	c.Create(u, []tuple.Tuple{{3}})
	v, _ := c.Probe(u)
	if len(v) != 1 || !v[0].Equal(tuple.Tuple{3}) {
		t.Fatalf("re-create value = %v", v)
	}
	if c.Stats().Evictions != 0 {
		t.Fatal("same-key replace is not an eviction")
	}
}

func TestBudgetDropsCreates(t *testing.T) {
	// Budget fits the key (8) plus one ref (8) only.
	c := newCache(16, 16)
	u := tuple.KeyOfValues([]tuple.Value{1})
	c.Create(u, []tuple.Tuple{{1}, {2}}) // 8 + 16 > 16 → dropped
	if c.Entries() != 0 || c.Stats().MemoryDrops != 1 {
		t.Fatalf("oversized create not dropped: %+v", c.Stats())
	}
	c.Create(u, []tuple.Tuple{{1}})
	if c.Entries() != 1 {
		t.Fatal("fitting create dropped")
	}
	// Growing past the budget drops the whole entry (never a partial one).
	c.Insert(u, tuple.Tuple{2})
	if c.Entries() != 0 || c.Stats().MemoryDrops != 2 {
		t.Fatalf("over-budget insert must drop the entry: %+v", c.Stats())
	}
}

func TestSetBudgetEvictsDown(t *testing.T) {
	c := newCache(64, -1)
	for i := int64(0); i < 20; i++ {
		c.Create(tuple.KeyOfValues([]tuple.Value{i}), []tuple.Tuple{{i}})
	}
	before := c.UsedBytes()
	c.SetBudget(before / 2)
	if c.UsedBytes() > before/2 {
		t.Fatalf("usage %d over budget %d", c.UsedBytes(), before/2)
	}
	if c.Entries() == 0 {
		t.Fatal("eviction removed everything")
	}
}

func TestDropAndClear(t *testing.T) {
	c := newCache(16, -1)
	u := tuple.KeyOfValues([]tuple.Value{1})
	c.Create(u, []tuple.Tuple{{1}})
	c.Drop(u)
	if c.Entries() != 0 || c.UsedBytes() != 0 {
		t.Fatal("drop incomplete")
	}
	c.Drop(u) // idempotent
	c.Create(u, []tuple.Tuple{{1}})
	c.Clear()
	if c.Entries() != 0 || c.UsedBytes() != 0 {
		t.Fatal("clear incomplete")
	}
}

func TestMemoryAccountingInvariant(t *testing.T) {
	c := newCache(32, -1)
	rng := rand.New(rand.NewSource(4))
	recompute := func() int {
		total := 0
		c.Each(func(u tuple.Key, v []tuple.Tuple) {
			total += len(u) + RefBytes*len(v)
		})
		return total
	}
	for i := 0; i < 2000; i++ {
		u := tuple.KeyOfValues([]tuple.Value{rng.Int63n(50)})
		switch rng.Intn(4) {
		case 0:
			var v []tuple.Tuple
			for j := 0; j < rng.Intn(4); j++ {
				v = append(v, tuple.Tuple{rng.Int63n(5)})
			}
			c.Create(u, v)
		case 1:
			c.Insert(u, tuple.Tuple{rng.Int63n(5)})
		case 2:
			c.Delete(u, tuple.Tuple{rng.Int63n(5)})
		case 3:
			c.Drop(u)
		}
		if c.UsedBytes() != recompute() {
			t.Fatalf("step %d: accounted %d, actual %d", i, c.UsedBytes(), recompute())
		}
	}
}

func TestHitRate(t *testing.T) {
	c := newCache(16, -1)
	u := tuple.KeyOfValues([]tuple.Value{1})
	if c.HitRate() != 0 {
		t.Fatal("hit rate with no probes")
	}
	c.Probe(u)
	c.Create(u, nil)
	c.Probe(u)
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
	c.ResetStats()
	if c.Stats().Probes != 0 {
		t.Fatal("ResetStats failed")
	}
	if c.Entries() != 1 {
		t.Fatal("ResetStats must keep entries")
	}
}

func TestCountedEntries(t *testing.T) {
	c := newCache(16, -1)
	u := tuple.KeyOfValues([]tuple.Value{1})
	mult := func(n int) func() int { return func() int { return n } }
	c.CreateCounted(u, []tuple.Tuple{{1}}, []int{2}, []int{6})
	tuples, mults, hit := c.ProbeCounted(u)
	if !hit || len(tuples) != 1 || mults[0] != 2 {
		t.Fatalf("probe counted: %v %v %v", tuples, mults, hit)
	}
	// Support decays to zero → element removed.
	c.ApplyCountedDelta(u, tuple.Tuple{1}, -6, mult(0))
	tuples, _, _ = c.ProbeCounted(u)
	if len(tuples) != 0 {
		t.Fatal("zero-support tuple still resident")
	}
	// New support for an absent tuple adds it with the recomputed mult.
	c.ApplyCountedDelta(u, tuple.Tuple{2}, 3, mult(5))
	tuples, mults, _ = c.ProbeCounted(u)
	if len(tuples) != 1 || mults[0] != 5 {
		t.Fatalf("re-added: %v %v", tuples, mults)
	}
	// Negative delta on an absent tuple is ignored.
	c.ApplyCountedDelta(u, tuple.Tuple{9}, -1, mult(1))
	// Absent-entry deltas are ignored entirely.
	c.ApplyCountedDelta(tuple.KeyOfValues([]tuple.Value{42}), tuple.Tuple{1}, 1, mult(1))
	if c.Entries() != 1 {
		t.Fatalf("entries = %d", c.Entries())
	}
}

func TestCountedBadLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	newCache(4, -1).CreateCounted(tuple.KeyOfValues([]tuple.Value{1}), []tuple.Tuple{{1}}, []int{1}, nil)
}
