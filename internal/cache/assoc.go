package cache

import (
	"acache/internal/cost"
	"acache/internal/tuple"
)

// Set-associative replacement: Section 3.3 closes with "in the future we
// plan to experiment with other low-overhead cache replacement schemes";
// this file is that experiment. In 2-way set-associative mode each hash set
// holds two entries with least-recently-used replacement inside the set —
// collisions between two hot keys no longer thrash, at the price of one
// extra comparison per probe. The mode is chosen at construction and the
// ablation harness measures the difference.

// Associativity selects the replacement scheme.
type Associativity int

const (
	// DirectMapped is the paper's scheme: one entry per bucket, collision
	// replaces the resident.
	DirectMapped Associativity = iota
	// TwoWay holds two entries per set with in-set LRU replacement.
	TwoWay
)

// NewAssociative creates a cache with the given replacement scheme. nSets
// is the bucket count for DirectMapped and the set count for TwoWay (so a
// TwoWay cache holds up to 2×nSets entries).
func NewAssociative(nSets, keyBytes, budget int, assoc Associativity, meter *cost.Meter) *Cache {
	c := New(nSets, keyBytes, budget, meter)
	if assoc == TwoWay {
		c.assoc = 2
		c.slots2 = make([]slot, nSets)
		c.lru = make([]uint8, nSets) // index of the LRU way per set
	}
	return c
}

// way returns the two candidate slots for a key in two-way mode.
func (c *Cache) ways(u tuple.Key) (*slot, *slot, int) {
	h := int(hashOf(u) % uint64(c.nbuckets))
	return &c.slots[h], &c.slots2[h], h
}

// waysBytes is ways for a packed key supplied as bytes.
func (c *Cache) waysBytes(k []byte) (*slot, *slot, int) {
	h := int(tuple.HashBytes(k, cacheSeed) % uint64(c.nbuckets))
	return &c.slots[h], &c.slots2[h], h
}

// probeAssoc implements Probe for two-way mode.
func (c *Cache) probeAssoc(u tuple.Key) ([]tuple.Tuple, bool) {
	c.meter.Charge(cost.HashProbe)
	c.stats.Probes++
	if c.filterAbsent(hashOf(u)) {
		// The unfiltered miss walks both ways, paying the extra way
		// comparison; charge it here too so the meter cannot tell the
		// paths apart. The LRU state is untouched on a miss either way.
		c.meter.Charge(cost.CacheInsertTuple)
		c.stats.Misses++
		return nil, false
	}
	s0, s1, set := c.ways(u)
	if s0.occupied && s0.key == u {
		c.stats.Hits++
		c.lru[set] = 1 // way 0 just used → way 1 is LRU
		c.touchSlot(s0)
		return s0.val, true
	}
	c.meter.Charge(cost.CacheInsertTuple) // the extra way comparison
	if s1.occupied && s1.key == u {
		c.stats.Hits++
		c.lru[set] = 0
		c.touchSlot(s1)
		return s1.val, true
	}
	c.noteMiss()
	return nil, false
}

// probeAssocBytes implements ProbeBytes for two-way mode, with the same
// charges and LRU updates as probeAssoc.
func (c *Cache) probeAssocBytes(k []byte) ([]tuple.Tuple, bool) {
	c.meter.Charge(cost.HashProbe)
	c.stats.Probes++
	if c.filterAbsent(tuple.HashBytes(k, cacheSeed)) {
		c.meter.Charge(cost.CacheInsertTuple) // matches the unfiltered miss
		c.stats.Misses++
		return nil, false
	}
	s0, s1, set := c.waysBytes(k)
	if s0.occupied && keyEq(s0.key, k) {
		c.stats.Hits++
		c.lru[set] = 1
		c.touchSlot(s0)
		return s0.val, true
	}
	c.meter.Charge(cost.CacheInsertTuple) // the extra way comparison
	if s1.occupied && keyEq(s1.key, k) {
		c.stats.Hits++
		c.lru[set] = 0
		c.touchSlot(s1)
		return s1.val, true
	}
	c.noteMiss()
	return nil, false
}

// createAssoc implements Create for two-way mode: prefer an empty way, else
// evict the set's LRU way.
func (c *Cache) createAssoc(u tuple.Key, v []tuple.Tuple) {
	c.meter.Charge(cost.HashInsert)
	c.meter.ChargeN(cost.CacheInsertTuple, len(v))
	s0, s1, set := c.ways(u)
	var target *slot
	switch {
	case s0.occupied && s0.key == u:
		target = s0
	case s1.occupied && s1.key == u:
		target = s1
	case !s0.occupied:
		target = s0
	case !s1.occupied:
		target = s1
	case c.lru[set] == 0:
		target = s0
	default:
		target = s1
	}
	size := entryBytes(c.keyBytes, v)
	freed := 0
	if target.occupied {
		freed = c.slotBytes(target)
	}
	if c.budget >= 0 && c.usedBytes-freed+size > c.budget {
		c.stats.MemoryDrops++
		return
	}
	c.version++
	if target.occupied {
		if target.key != u {
			c.stats.Evictions++
		}
		c.filDel(target.key)
		c.freeCold(target)
		c.usedBytes -= freed
		c.numEntries--
	}
	target.occupied = true
	target.key = u
	target.val = append([]tuple.Tuple(nil), v...)
	target.cnt = nil
	target.mult = nil
	target.ref = true
	c.usedBytes += size
	c.numEntries++
	c.stats.Creates++
	c.filAdd(u)
	if target == s0 {
		c.lru[set] = 1
	} else {
		c.lru[set] = 0
	}
	c.maybeMaintain()
}

// slotFor finds the resident slot holding key u in two-way mode, or nil.
func (c *Cache) slotForAssoc(u tuple.Key) *slot {
	s0, s1, _ := c.ways(u)
	if s0.occupied && s0.key == u {
		return s0
	}
	if s1.occupied && s1.key == u {
		return s1
	}
	return nil
}

// slotForAssocBytes is slotForAssoc for a packed key supplied as bytes.
func (c *Cache) slotForAssocBytes(k []byte) *slot {
	s0, s1, _ := c.waysBytes(k)
	if s0.occupied && keyEq(s0.key, k) {
		return s0
	}
	if s1.occupied && keyEq(s1.key, k) {
		return s1
	}
	return nil
}
