package stream

// Batcher groups a single producer's updates into fixed-size per-route
// batches — the ingress side of sharded execution: routing updates to worker
// mailboxes one at a time would pay one channel operation per update, so the
// ingress accumulates a batch per shard and hands it off only when full (or
// on Flush).
//
// A Batcher is not safe for concurrent use; sharded ingress is
// single-producer by contract (the engine's global update order is defined
// by one caller).
type Batcher struct {
	size int
	bufs [][]Update
	emit func(route int, batch []Update)
}

// NewBatcher creates a batcher over the given number of routes. emit receives
// each completed batch and takes ownership of the slice; the batcher never
// touches an emitted batch again.
func NewBatcher(routes, size int, emit func(route int, batch []Update)) *Batcher {
	if size < 1 {
		size = 1
	}
	return &Batcher{
		size: size,
		bufs: make([][]Update, routes),
		emit: emit,
	}
}

// Add appends one update to a route's pending batch, emitting the batch when
// it reaches the configured size.
func (b *Batcher) Add(route int, u Update) {
	if b.bufs[route] == nil {
		b.bufs[route] = make([]Update, 0, b.size)
	}
	b.bufs[route] = append(b.bufs[route], u)
	if len(b.bufs[route]) >= b.size {
		b.emit(route, b.bufs[route])
		b.bufs[route] = nil
	}
}

// Flush emits every non-empty pending batch.
func (b *Batcher) Flush() {
	for route, buf := range b.bufs {
		if len(buf) > 0 {
			b.emit(route, buf)
			b.bufs[route] = nil
		}
	}
}

// Pending returns the number of buffered (not yet emitted) updates.
func (b *Batcher) Pending() int {
	n := 0
	for _, buf := range b.bufs {
		n += len(buf)
	}
	return n
}
