package stream

// Interleaver deterministically merges n streams in proportion to their
// relative rates using error diffusion: each stream accumulates credit equal
// to its rate per tick; the stream with the most credit emits next and pays
// the total rate back. Over any long run the emission frequencies converge to
// the exact rate proportions, and the schedule is reproducible — the paper's
// "global ordering on input … the system could break ties" (Section 3.1).
type Interleaver struct {
	rates  []float64
	credit []float64
	total  float64
}

// NewInterleaver creates an interleaver over len(rates) streams with the
// given relative rates. Rates must be non-negative with a positive sum.
func NewInterleaver(rates []float64) *Interleaver {
	iv := &Interleaver{}
	iv.SetRates(rates)
	iv.credit = make([]float64, len(rates))
	return iv
}

// SetRates changes the relative rates, e.g. at the start or end of a burst.
// Credits are preserved so the transition does not starve any stream.
func (iv *Interleaver) SetRates(rates []float64) {
	total := 0.0
	for _, r := range rates {
		if r < 0 {
			panic("stream: negative rate")
		}
		total += r
	}
	if total <= 0 {
		panic("stream: rates must have positive sum")
	}
	iv.rates = append(iv.rates[:0], rates...)
	iv.total = total
}

// Rates returns a copy of the current relative rates.
func (iv *Interleaver) Rates() []float64 { return append([]float64(nil), iv.rates...) }

// Next returns the index of the stream that emits the next tuple.
func (iv *Interleaver) Next() int {
	best, bestCredit := -1, 0.0
	for i := range iv.credit {
		iv.credit[i] += iv.rates[i]
		if iv.rates[i] > 0 && (best == -1 || iv.credit[i] > bestCredit) {
			best, bestCredit = i, iv.credit[i]
		}
	}
	iv.credit[best] -= iv.total
	return best
}
