package stream

import (
	"sort"

	"acache/internal/tuple"
)

// SlidingWindow converts an append-only stream into an update stream over a
// count-based sliding window of the most recent Size tuples, mirroring the
// STREAM prototype's window operators: each append yields an Insert, and once
// the window is full, a Delete of the expiring (oldest) tuple precedes it.
//
// An unbounded window (Size ≤ 0) never expires tuples, which models
// conventional materialized-view maintenance where deletes arrive explicitly.
type SlidingWindow struct {
	size int
	buf  []tuple.Tuple // ring buffer of current window contents
	head int           // index of oldest tuple
	n    int
}

// NewSlidingWindow creates a count-based window of the given size.
// size ≤ 0 means unbounded.
func NewSlidingWindow(size int) *SlidingWindow {
	w := &SlidingWindow{size: size}
	if size > 0 {
		w.buf = make([]tuple.Tuple, size)
	}
	return w
}

// Size returns the configured window size (≤ 0 for unbounded).
func (w *SlidingWindow) Size() int { return w.size }

// Len returns the number of tuples currently in the window.
func (w *SlidingWindow) Len() int { return w.n }

// Append pushes a new stream tuple and returns the resulting window updates:
// a Delete of the expired tuple first, if the window was full, then the
// Insert of t. Rel and Seq fields are left zero for the caller to fill.
func (w *SlidingWindow) Append(t tuple.Tuple) []Update {
	return w.AppendInto(t, nil)
}

// AppendInto is Append accumulating into a caller-owned buffer (appended to,
// typically passed as buf[:0]) so steady-state appends allocate nothing.
func (w *SlidingWindow) AppendInto(t tuple.Tuple, out []Update) []Update {
	if w.size <= 0 {
		return append(out, Update{Op: Insert, Tuple: t})
	}
	if w.n == w.size {
		old := w.buf[w.head]
		w.buf[w.head] = nil
		w.head = (w.head + 1) % w.size
		w.n--
		out = append(out, Update{Op: Delete, Tuple: old})
	}
	w.buf[(w.head+w.n)%w.size] = t
	w.n++
	return append(out, Update{Op: Insert, Tuple: t})
}

// AppendBatch is AppendBatchInto with a fresh output buffer.
func (w *SlidingWindow) AppendBatch(ts []tuple.Tuple) []Update {
	return w.AppendBatchInto(ts, nil)
}

// AppendBatchInto pushes a batch of stream tuples and returns the resulting
// window updates with the expiries hoisted: all deletes forced out by the
// batch first (oldest first), then all inserts in batch order. The final
// window contents and the update multiset are exactly those of appending the
// tuples one by one; only the delete/insert interleaving differs, and the
// grouped schedule is what the engine's vectorized batch path wants — two
// long same-operation runs instead of 2·len(ts) runs of one.
//
// Batches larger than the window are processed in window-sized chunks, so a
// tuple whose insert and expiry both fall inside one call is still inserted
// before it is deleted.
func (w *SlidingWindow) AppendBatchInto(ts []tuple.Tuple, out []Update) []Update {
	if w.size <= 0 {
		for _, t := range ts {
			out = append(out, Update{Op: Insert, Tuple: t})
		}
		return out
	}
	for len(ts) > 0 {
		m := len(ts)
		if m > w.size {
			m = w.size
		}
		chunk := ts[:m]
		ts = ts[m:]
		for expire := w.n + m - w.size; expire > 0; expire-- {
			old := w.buf[w.head]
			w.buf[w.head] = nil
			w.head = (w.head + 1) % w.size
			w.n--
			out = append(out, Update{Op: Delete, Tuple: old})
		}
		for _, t := range chunk {
			w.buf[(w.head+w.n)%w.size] = t
			w.n++
			out = append(out, Update{Op: Insert, Tuple: t})
		}
	}
	return out
}

// Contents returns the window's current tuples, oldest first. It is intended
// for tests, invariant checks, and checkpointing.
func (w *SlidingWindow) Contents() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, w.n)
	for i := 0; i < w.n; i++ {
		out = append(out, w.buf[(w.head+i)%w.size])
	}
	return out
}

// Load replaces the window's contents with ts, oldest first, without
// emitting any updates — the warm-restart bulk load. Unbounded windows hold
// no operator state, so Load is a no-op for them. Panics if ts exceeds a
// bounded window's size (a checkpoint can never legally hold more).
func (w *SlidingWindow) Load(ts []tuple.Tuple) {
	if w.size <= 0 {
		return
	}
	if len(ts) > w.size {
		panic("stream: Load exceeds window size")
	}
	clear(w.buf)
	w.head = 0
	w.n = len(ts)
	copy(w.buf, ts)
}

// PartitionedWindow is CQL's `[PARTITION BY attr ROWS n]`: the stream is
// partitioned by one column's value and each partition keeps its own
// count-based window of the n most recent tuples — e.g. "the last 10 quotes
// per instrument". Appends expire the oldest tuple of the same partition
// only.
type PartitionedWindow struct {
	size int
	col  int // partitioning column
	rows map[tuple.Value]*SlidingWindow
	pend map[*SlidingWindow]int // AppendBatchInto's per-call scratch
}

// NewPartitionedWindow creates a per-partition window of the given size
// over the partitioning column col. size must be positive.
func NewPartitionedWindow(size, col int) *PartitionedWindow {
	if size <= 0 {
		panic("stream: partitioned window size must be positive")
	}
	return &PartitionedWindow{size: size, col: col, rows: make(map[tuple.Value]*SlidingWindow)}
}

// Append pushes a stream tuple, returning the partition's window updates:
// the expiry delete of its partition's oldest tuple (when full), then the
// insert.
func (w *PartitionedWindow) Append(t tuple.Tuple) []Update {
	return w.AppendInto(t, nil)
}

// AppendInto is Append accumulating into a caller-owned buffer.
func (w *PartitionedWindow) AppendInto(t tuple.Tuple, out []Update) []Update {
	key := t[w.col]
	win, ok := w.rows[key]
	if !ok {
		win = NewSlidingWindow(w.size)
		w.rows[key] = win
	}
	return win.AppendInto(t, out)
}

// AppendBatch is AppendBatchInto with a fresh output buffer.
func (w *PartitionedWindow) AppendBatch(ts []tuple.Tuple) []Update {
	return w.AppendBatchInto(ts, nil)
}

// AppendBatchInto pushes a batch of stream tuples and returns the window
// updates with expiries hoisted across partitions: first every delete the
// batch forces out (each partition expiring its own oldest, in batch order),
// then every insert in batch order. Final per-partition contents and the
// update multiset match one-by-one appends exactly; see
// SlidingWindow.AppendBatchInto for why the grouped schedule.
//
// Degenerate case: when one partition receives more tuples than its window
// holds in a single batch, the overflow expiries of tuples inserted by this
// same batch are emitted in the insert pass (an insert run briefly broken by
// deletes) — correctness over run purity.
func (w *PartitionedWindow) AppendBatchInto(ts []tuple.Tuple, out []Update) []Update {
	if w.pend == nil {
		w.pend = make(map[*SlidingWindow]int)
	}
	for _, t := range ts {
		key := t[w.col]
		win, ok := w.rows[key]
		if !ok {
			win = NewSlidingWindow(w.size)
			w.rows[key] = win
		}
		if win.n > 0 && win.n+w.pend[win] >= win.size {
			old := win.buf[win.head]
			win.buf[win.head] = nil
			win.head = (win.head + 1) % win.size
			win.n--
			out = append(out, Update{Op: Delete, Tuple: old})
		}
		w.pend[win]++
	}
	clear(w.pend)
	for _, t := range ts {
		// AppendInto inserts without expiring here — the first pass already
		// made room — except in the same-batch-overflow case noted above.
		out = w.rows[t[w.col]].AppendInto(t, out)
	}
	return out
}

// Contents returns every partition's current tuples for checkpointing:
// partitions in ascending key order, each partition's tuples oldest first.
// Only the per-partition relative order matters for future expiries, so this
// deterministic flattening round-trips exactly through Load.
func (w *PartitionedWindow) Contents() []tuple.Tuple {
	keys := make([]tuple.Value, 0, len(w.rows))
	for k := range w.rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []tuple.Tuple
	for _, k := range keys {
		out = append(out, w.rows[k].Contents()...)
	}
	return out
}

// Load replaces the window's contents with ts without emitting updates,
// routing each tuple to its partition in slice order (so per-partition
// arrival order is preserved). Panics if a partition would overflow.
func (w *PartitionedWindow) Load(ts []tuple.Tuple) {
	for _, t := range ts {
		key := t[w.col]
		win, ok := w.rows[key]
		if !ok {
			win = NewSlidingWindow(w.size)
			w.rows[key] = win
		}
		if win.n == win.size {
			panic("stream: Load exceeds partition window size")
		}
		win.buf[(win.head+win.n)%win.size] = t
		win.n++
	}
}

// Len returns the total tuples across all partitions.
func (w *PartitionedWindow) Len() int {
	total := 0
	for _, win := range w.rows {
		total += win.Len()
	}
	return total
}

// Partitions returns the number of partitions seen so far.
func (w *PartitionedWindow) Partitions() int { return len(w.rows) }
