package stream

import "acache/internal/tuple"

// TupleGen produces the next tuple of an append-only stream. Implementations
// live in internal/synth; the stream layer only needs a way to pull tuples.
type TupleGen func() tuple.Tuple

// RelStream describes one input relation: its append-only tuple generator,
// its window size (≤ 0 for unbounded), and its relative arrival rate.
type RelStream struct {
	Gen        TupleGen
	WindowSize int
	Rate       float64
}

// Source merges n windowed relation streams into the single global update
// stream the engine consumes. Appends are interleaved in proportion to the
// configured rates; each append expands into the window's Delete/Insert
// updates, emitted consecutively (the expiry delete is processed immediately
// before the insert that caused it, matching the STREAM window operator).
type Source struct {
	rels    []RelStream
	windows []*SlidingWindow
	iv      *Interleaver
	pending []Update
	seq     uint64
	appends []uint64 // per-relation append counts
	total   uint64   // total appends so far
}

// NewSource builds a source over the given relation streams.
func NewSource(rels []RelStream) *Source {
	rates := make([]float64, len(rels))
	windows := make([]*SlidingWindow, len(rels))
	for i, r := range rels {
		rates[i] = r.Rate
		windows[i] = NewSlidingWindow(r.WindowSize)
	}
	return &Source{
		rels:    rels,
		windows: windows,
		iv:      NewInterleaver(rates),
		appends: make([]uint64, len(rels)),
	}
}

// Next returns the next update in the global ordering. It always succeeds:
// generators are infinite; callers decide when to stop.
func (s *Source) Next() Update {
	for len(s.pending) == 0 {
		rel := s.iv.Next()
		t := s.rels[rel].Gen()
		s.appends[rel]++
		s.total++
		ups := s.windows[rel].Append(t)
		for i := range ups {
			ups[i].Rel = rel
		}
		s.pending = ups
	}
	u := s.pending[0]
	s.pending = s.pending[1:]
	u.Seq = s.seq
	s.seq++
	return u
}

// SetRates changes the relative arrival rates mid-run (burst start/end).
func (s *Source) SetRates(rates []float64) { s.iv.SetRates(rates) }

// Appends returns the number of append-only stream tuples consumed from
// relation rel so far (the paper's x-axes count stream tuples, not updates).
func (s *Source) Appends(rel int) uint64 { return s.appends[rel] }

// TotalAppends returns the total appends across all relations.
func (s *Source) TotalAppends() uint64 { return s.total }

// WindowLen returns the current number of tuples in rel's window.
func (s *Source) WindowLen(rel int) int { return s.windows[rel].Len() }
