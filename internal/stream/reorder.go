package stream

import (
	"container/heap"

	"acache/internal/tuple"
)

// Reorderer restores the global timestamp order the engine requires
// (Section 3.1) from a stream with bounded disorder: tuples may arrive up to
// MaxLateness time units late. Arrivals are buffered in a min-heap keyed on
// timestamp and released once the watermark — the highest timestamp seen
// minus the lateness bound — passes them. Ties release in arrival order, the
// paper's "the system could break ties". A tuple later than the bound is
// rejected rather than reordered incorrectly.
//
// This is the standard watermark machinery of stream processors; the paper's
// STREAM prototype assumed ordered inputs, so this is substrate beyond the
// paper, used in front of TimeWindow feeds.
type Reorderer struct {
	maxLateness int64
	heap        pendingHeap
	watermark   int64
	seq         uint64
	started     bool
}

type pending struct {
	t   tuple.Tuple
	ts  int64
	seq uint64 // arrival order, for stable ties
}

type pendingHeap []pending

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].ts != h[j].ts {
		return h[i].ts < h[j].ts
	}
	return h[i].seq < h[j].seq
}
func (h pendingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x interface{}) { *h = append(*h, x.(pending)) }
func (h *pendingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewReorderer creates a reorderer tolerating the given lateness bound
// (≥ 0; 0 means the input must already be ordered and the reorderer only
// validates).
func NewReorderer(maxLateness int64) *Reorderer {
	if maxLateness < 0 {
		maxLateness = 0
	}
	return &Reorderer{maxLateness: maxLateness}
}

// Watermark returns the current watermark: every tuple at or below it has
// been released.
func (r *Reorderer) Watermark() int64 { return r.watermark }

// Pending returns the number of buffered tuples.
func (r *Reorderer) Pending() int { return r.heap.Len() }

// Offer accepts a tuple with timestamp ts and returns the tuples (with
// their timestamps) released by the advancing watermark, in timestamp
// order. ok is false — and the tuple dropped — when ts is already below the
// watermark, i.e. later than the lateness bound allows.
func (r *Reorderer) Offer(t tuple.Tuple, ts int64) (released []pendingOut, ok bool) {
	if r.started && ts < r.watermark {
		return nil, false
	}
	r.seq++
	heap.Push(&r.heap, pending{t: t, ts: ts, seq: r.seq})
	if wm := ts - r.maxLateness; !r.started || wm > r.watermark {
		r.watermark = wm
		r.started = true
	}
	return r.drain(r.watermark), true
}

// Flush releases everything still buffered (end of stream), advancing the
// watermark past the last tuple.
func (r *Reorderer) Flush() []pendingOut {
	if n := r.heap.Len(); n > 0 {
		r.watermark = r.heap[0].ts
		for _, p := range r.heap {
			if p.ts > r.watermark {
				r.watermark = p.ts
			}
		}
	}
	return r.drain(r.watermark)
}

// pendingOut is a released (tuple, timestamp) pair.
type pendingOut struct {
	Tuple tuple.Tuple
	TS    int64
}

func (r *Reorderer) drain(upTo int64) []pendingOut {
	var out []pendingOut
	for r.heap.Len() > 0 && r.heap[0].ts <= upTo {
		p := heap.Pop(&r.heap).(pending)
		out = append(out, pendingOut{Tuple: p.t, TS: p.ts})
	}
	return out
}
