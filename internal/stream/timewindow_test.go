package stream

import (
	"math/rand"
	"testing"

	"acache/internal/tuple"
)

func TestTimeWindowBasics(t *testing.T) {
	w := NewTimeWindow(10)
	u := w.Append(tuple.Tuple{1}, 100)
	if len(u) != 1 || u[0].Op != Insert {
		t.Fatalf("first append: %v", u)
	}
	w.Append(tuple.Tuple{2}, 105)
	// At t=111, the t=100 tuple (older than 111−10=101) expires; 105 stays.
	u = w.Append(tuple.Tuple{3}, 111)
	if len(u) != 2 || u[0].Op != Delete || !u[0].Tuple.Equal(tuple.Tuple{1}) {
		t.Fatalf("expiring append: %v", u)
	}
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
}

func TestTimeWindowBoundaryInclusive(t *testing.T) {
	// A tuple at exactly ts − span expires (≤ cutoff).
	w := NewTimeWindow(10)
	w.Append(tuple.Tuple{1}, 100)
	u := w.Append(tuple.Tuple{2}, 110)
	if len(u) != 2 || u[0].Op != Delete {
		t.Fatalf("boundary tuple should expire: %v", u)
	}
}

func TestTimeWindowAdvanceTo(t *testing.T) {
	w := NewTimeWindow(5)
	w.Append(tuple.Tuple{1}, 10)
	w.Append(tuple.Tuple{2}, 12)
	u := w.AdvanceTo(16)
	if len(u) != 1 || !u[0].Tuple.Equal(tuple.Tuple{1}) {
		t.Fatalf("advance: %v", u)
	}
	if u2 := w.AdvanceTo(16); len(u2) != 0 {
		t.Fatalf("idempotent advance emitted %v", u2)
	}
	if u3 := w.AdvanceTo(100); len(u3) != 1 {
		t.Fatalf("final advance: %v", u3)
	}
	if w.Len() != 0 {
		t.Fatalf("len = %d", w.Len())
	}
}

func TestTimeWindowRegressionPanics(t *testing.T) {
	w := NewTimeWindow(5)
	w.Append(tuple.Tuple{1}, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("timestamp regression must panic")
		}
	}()
	w.Append(tuple.Tuple{2}, 9)
}

func TestTimeWindowBadSpanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive span must panic")
		}
	}()
	NewTimeWindow(0)
}

func TestTimeWindowGrowthAndOrder(t *testing.T) {
	// Force ring-buffer growth across wraparound and check FIFO expiry.
	w := NewTimeWindow(1000)
	for i := int64(0); i < 100; i++ {
		w.Append(tuple.Tuple{i}, i)
	}
	if w.Len() != 100 {
		t.Fatalf("len = %d", w.Len())
	}
	got := w.Contents()
	for i := range got {
		if got[i][0] != int64(i) {
			t.Fatalf("contents out of order at %d: %v", i, got[i])
		}
	}
	outs := w.AdvanceTo(1050)
	for i, u := range outs {
		if u.Tuple[0] != int64(i) {
			t.Fatalf("expiry out of order at %d: %v", i, u)
		}
	}
	// Cutoff is inclusive: ts ≤ 1050 − 1000 = 50 covers tuples 0..50.
	if len(outs) != 51 {
		t.Fatalf("expired %d, want 51", len(outs))
	}
}

// Property: tuples expire exactly once, FIFO, and residency matches the
// span predicate at all times.
func TestTimeWindowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const span = 20
	w := NewTimeWindow(span)
	ts := int64(0)
	type rec struct {
		v  int64
		ts int64
	}
	var live []rec
	for i := 0; i < 2000; i++ {
		ts += rng.Int63n(4)
		v := int64(i)
		for _, u := range w.Append(tuple.Tuple{v}, ts) {
			if u.Op == Delete {
				if len(live) == 0 || live[0].v != u.Tuple[0] {
					t.Fatalf("step %d: non-FIFO expiry %v (head %v)", i, u.Tuple, live)
				}
				if live[0].ts > ts-span {
					t.Fatalf("step %d: premature expiry of ts=%d at t=%d", i, live[0].ts, ts)
				}
				live = live[1:]
			}
		}
		live = append(live, rec{v: v, ts: ts})
		for _, r := range live {
			if r.ts <= ts-span {
				t.Fatalf("step %d: stale tuple ts=%d at t=%d", i, r.ts, ts)
			}
		}
		if w.Len() != len(live) {
			t.Fatalf("step %d: len %d vs %d", i, w.Len(), len(live))
		}
	}
}
