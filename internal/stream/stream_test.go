package stream

import (
	"math"
	"testing"
	"testing/quick"

	"acache/internal/tuple"
)

func TestSlidingWindowBasics(t *testing.T) {
	w := NewSlidingWindow(2)
	u := w.Append(tuple.Tuple{1})
	if len(u) != 1 || u[0].Op != Insert {
		t.Fatalf("first append: %v", u)
	}
	w.Append(tuple.Tuple{2})
	u = w.Append(tuple.Tuple{3})
	if len(u) != 2 || u[0].Op != Delete || !u[0].Tuple.Equal(tuple.Tuple{1}) || u[1].Op != Insert {
		t.Fatalf("expiring append: %v", u)
	}
	got := w.Contents()
	if len(got) != 2 || !got[0].Equal(tuple.Tuple{2}) || !got[1].Equal(tuple.Tuple{3}) {
		t.Fatalf("contents: %v", got)
	}
}

func TestSlidingWindowUnbounded(t *testing.T) {
	w := NewSlidingWindow(0)
	for i := 0; i < 100; i++ {
		u := w.Append(tuple.Tuple{int64(i)})
		if len(u) != 1 || u[0].Op != Insert {
			t.Fatal("unbounded window must never expire")
		}
	}
}

// Property: every inserted tuple is eventually deleted exactly once, in FIFO
// order, and the window never exceeds its size.
func TestSlidingWindowInsertDeleteBalance(t *testing.T) {
	f := func(vals []int64, size8 uint8) bool {
		size := int(size8%8) + 1
		w := NewSlidingWindow(size)
		inserts, deletes := 0, 0
		var expectedDeletes []int64
		for _, v := range vals {
			for _, u := range w.Append(tuple.Tuple{v}) {
				switch u.Op {
				case Insert:
					inserts++
					expectedDeletes = append(expectedDeletes, v)
				case Delete:
					deletes++
					if u.Tuple[0] != expectedDeletes[0] {
						return false // not FIFO
					}
					expectedDeletes = expectedDeletes[1:]
				}
			}
			if w.Len() > size {
				return false
			}
		}
		return inserts == len(vals) && deletes == len(vals)-w.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaverProportions(t *testing.T) {
	iv := NewInterleaver([]float64{1, 2, 7})
	counts := make([]int, 3)
	const total = 10000
	for i := 0; i < total; i++ {
		counts[iv.Next()]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / total
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("stream %d: share %.3f, want %.3f", i, got, want)
		}
	}
}

func TestInterleaverZeroRateStreamNeverEmits(t *testing.T) {
	iv := NewInterleaver([]float64{1, 0})
	for i := 0; i < 100; i++ {
		if iv.Next() == 1 {
			t.Fatal("zero-rate stream emitted")
		}
	}
}

func TestInterleaverSetRatesMidStream(t *testing.T) {
	iv := NewInterleaver([]float64{1, 1})
	for i := 0; i < 100; i++ {
		iv.Next()
	}
	iv.SetRates([]float64{20, 1})
	counts := make([]int, 2)
	for i := 0; i < 2100; i++ {
		counts[iv.Next()]++
	}
	share := float64(counts[0]) / 2100
	if math.Abs(share-20.0/21) > 0.02 {
		t.Fatalf("post-burst share %.3f, want ≈ %.3f", share, 20.0/21)
	}
}

func TestInterleaverRejectsBadRates(t *testing.T) {
	for _, rates := range [][]float64{{-1, 1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rates %v must panic", rates)
				}
			}()
			NewInterleaver(rates)
		}()
	}
}

func TestInterleaverDeterministic(t *testing.T) {
	a := NewInterleaver([]float64{3, 1, 2})
	b := NewInterleaver([]float64{3, 1, 2})
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("interleaver not deterministic")
		}
	}
}

func TestSourceGlobalOrdering(t *testing.T) {
	n := int64(0)
	gen := func() tuple.Tuple { n++; return tuple.Tuple{n} }
	src := NewSource([]RelStream{
		{Gen: gen, WindowSize: 2, Rate: 1},
		{Gen: gen, WindowSize: 2, Rate: 1},
	})
	var lastSeq uint64
	inserts := make(map[int]int)
	deletes := make(map[int]int)
	for i := 0; i < 200; i++ {
		u := src.Next()
		if i > 0 && u.Seq != lastSeq+1 {
			t.Fatalf("sequence gap: %d then %d", lastSeq, u.Seq)
		}
		lastSeq = u.Seq
		if u.Op == Insert {
			inserts[u.Rel]++
		} else {
			deletes[u.Rel]++
		}
	}
	for rel := 0; rel < 2; rel++ {
		if inserts[rel] == 0 || deletes[rel] == 0 {
			t.Fatalf("rel %d: inserts %d deletes %d", rel, inserts[rel], deletes[rel])
		}
		if src.WindowLen(rel) > 2 {
			t.Fatalf("window overflow: %d", src.WindowLen(rel))
		}
	}
	if src.TotalAppends() != src.Appends(0)+src.Appends(1) {
		t.Fatal("append accounting inconsistent")
	}
}

func TestUpdateString(t *testing.T) {
	u := Update{Op: Insert, Rel: 0, Tuple: tuple.Tuple{1}, Seq: 5}
	if u.String() != "+∆R1<1>#5" {
		t.Fatalf("String = %q", u.String())
	}
}

func TestPartitionedWindow(t *testing.T) {
	w := NewPartitionedWindow(2, 0)
	// Partition 1 fills independently of partition 2.
	w.Append(tuple.Tuple{1, 10})
	w.Append(tuple.Tuple{1, 11})
	w.Append(tuple.Tuple{2, 20})
	u := w.Append(tuple.Tuple{1, 12}) // expires (1,10) only
	if len(u) != 2 || u[0].Op != Delete || !u[0].Tuple.Equal(tuple.Tuple{1, 10}) {
		t.Fatalf("partition expiry: %v", u)
	}
	if w.Len() != 3 || w.Partitions() != 2 {
		t.Fatalf("len=%d partitions=%d", w.Len(), w.Partitions())
	}
}

func TestPartitionedWindowBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive size must panic")
		}
	}()
	NewPartitionedWindow(0, 0)
}
