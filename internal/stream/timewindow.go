package stream

import "acache/internal/tuple"

// TimeWindow converts an append-only stream with application timestamps into
// an update stream over a time-based sliding window of the most recent Span
// time units — CQL's `[RANGE span]` windows, the second window flavor of the
// STREAM prototype (count-based windows are SlidingWindow).
//
// Timestamps must be non-decreasing (the global ordering assumption of
// Section 3.1). An append at time t first expires every tuple with
// timestamp ≤ t − Span, emitting their deletes oldest-first, then emits the
// insert.
type TimeWindow struct {
	span int64
	buf  []timedTuple
	head int
	n    int
	last int64
}

type timedTuple struct {
	t  tuple.Tuple
	ts int64
}

// NewTimeWindow creates a time-based window spanning the given number of
// time units. span must be positive.
func NewTimeWindow(span int64) *TimeWindow {
	if span <= 0 {
		panic("stream: time window span must be positive")
	}
	return &TimeWindow{span: span, buf: make([]timedTuple, 8)}
}

// Span returns the configured window span.
func (w *TimeWindow) Span() int64 { return w.span }

// Len returns the number of tuples currently in the window.
func (w *TimeWindow) Len() int { return w.n }

// Append pushes a stream tuple with timestamp ts and returns the resulting
// window updates: deletes of every expired tuple (oldest first), then the
// insert of t. It panics on a timestamp regression, which would violate the
// global ordering the engine depends on.
func (w *TimeWindow) Append(t tuple.Tuple, ts int64) []Update {
	if ts < w.last {
		panic("stream: time window timestamps must be non-decreasing")
	}
	w.last = ts
	out := w.AdvanceTo(ts)
	if w.n == len(w.buf) {
		w.grow()
	}
	w.buf[(w.head+w.n)%len(w.buf)] = timedTuple{t: t, ts: ts}
	w.n++
	return append(out, Update{Op: Insert, Tuple: t})
}

// AdvanceTo expires every tuple with timestamp ≤ ts − Span without inserting
// anything — a pure clock advance, used when time passes with no arrivals
// on this stream.
func (w *TimeWindow) AdvanceTo(ts int64) []Update {
	if ts > w.last {
		w.last = ts
	}
	cutoff := ts - w.span
	var out []Update
	for w.n > 0 && w.buf[w.head].ts <= cutoff {
		out = append(out, Update{Op: Delete, Tuple: w.buf[w.head].t})
		w.buf[w.head] = timedTuple{}
		w.head = (w.head + 1) % len(w.buf)
		w.n--
	}
	return out
}

// Clock returns the last timestamp observed (appends and advances).
func (w *TimeWindow) Clock() int64 { return w.last }

// ContentsTimed returns the window's current tuples and their timestamps,
// oldest first — the checkpointable operator state (future expiries depend
// on each tuple's own timestamp).
func (w *TimeWindow) ContentsTimed() ([]tuple.Tuple, []int64) {
	ts := make([]tuple.Tuple, 0, w.n)
	stamps := make([]int64, 0, w.n)
	for i := 0; i < w.n; i++ {
		tt := w.buf[(w.head+i)%len(w.buf)]
		ts = append(ts, tt.t)
		stamps = append(stamps, tt.ts)
	}
	return ts, stamps
}

// Load replaces the window's contents (oldest first, with per-tuple
// timestamps) and sets the clock, without emitting updates — the
// warm-restart bulk load. Panics on a timestamp regression within the load.
func (w *TimeWindow) Load(ts []tuple.Tuple, stamps []int64, clock int64) {
	if len(ts) != len(stamps) {
		panic("stream: Load tuple/timestamp length mismatch")
	}
	n := len(w.buf)
	for n < len(ts) {
		n *= 2
	}
	w.buf = make([]timedTuple, n)
	w.head = 0
	w.n = len(ts)
	prev := int64(-1 << 62)
	for i, t := range ts {
		if stamps[i] < prev {
			panic("stream: Load timestamps must be non-decreasing")
		}
		prev = stamps[i]
		w.buf[i] = timedTuple{t: t, ts: stamps[i]}
	}
	w.last = clock
}

// Contents returns the window's current tuples, oldest first (tests).
func (w *TimeWindow) Contents() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, w.n)
	for i := 0; i < w.n; i++ {
		out = append(out, w.buf[(w.head+i)%len(w.buf)].t)
	}
	return out
}

func (w *TimeWindow) grow() {
	next := make([]timedTuple, 2*len(w.buf))
	for i := 0; i < w.n; i++ {
		next[i] = w.buf[(w.head+i)%len(w.buf)]
	}
	w.buf = next
	w.head = 0
}
