// Package stream provides update streams, sliding-window operators, and the
// deterministic rate-proportional interleaver that merges per-relation
// streams into the single globally ordered update sequence the engine
// consumes (Section 3.1 of the paper).
package stream

import (
	"fmt"

	"acache/internal/tuple"
)

// Op is the kind of an update: an insertion into or a deletion from a
// relation's current contents.
type Op uint8

const (
	// Insert adds a tuple to the relation.
	Insert Op = iota
	// Delete removes a tuple from the relation.
	Delete
)

func (o Op) String() string {
	switch o {
	case Insert:
		return "+"
	case Delete:
		return "-"
	default:
		return "?"
	}
}

// Update is one element of an update stream ΔR_i: an insertion or deletion of
// a tuple in relation Rel. Seq is the position in the global ordering; the
// engine processes updates strictly in Seq order, each to completion.
type Update struct {
	Op    Op
	Rel   int
	Tuple tuple.Tuple
	Seq   uint64
}

func (u Update) String() string {
	return fmt.Sprintf("%v∆R%d%v#%d", u.Op, u.Rel+1, u.Tuple, u.Seq)
}
