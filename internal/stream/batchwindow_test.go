package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"acache/internal/tuple"
)

// applyToMultiset replays updates into a naive multiset and fails on any
// delete of an absent tuple — every prefix of a window's update stream must
// be a valid history.
func applyToMultiset(t *testing.T, label string, ups []Update) map[string]int {
	t.Helper()
	ms := make(map[string]int)
	for i, u := range ups {
		k := fmt.Sprint(u.Tuple)
		switch u.Op {
		case Insert:
			ms[k]++
		case Delete:
			if ms[k] == 0 {
				t.Fatalf("%s: update %d deletes absent tuple %s", label, i, k)
			}
			ms[k]--
		}
	}
	return ms
}

func multisetEqual(a, b map[string]int) bool {
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	for k, n := range b {
		if a[k] != n {
			return false
		}
	}
	return true
}

func TestSlidingWindowAppendBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 4, 16} {
		for _, batch := range []int{1, 3, 16, 40} {
			serial, batched := NewSlidingWindow(size), NewSlidingWindow(size)
			var serialUps, batchUps []Update
			for round := 0; round < 10; round++ {
				ts := make([]tuple.Tuple, batch)
				for i := range ts {
					ts[i] = tuple.Tuple{tuple.Value(rng.Int63n(50))}
				}
				for _, x := range ts {
					serialUps = serial.AppendInto(x, serialUps)
				}
				batchUps = batched.AppendBatchInto(ts, batchUps)
			}
			label := fmt.Sprintf("size=%d batch=%d", size, batch)
			if got, want := fmt.Sprint(batched.Contents()), fmt.Sprint(serial.Contents()); got != want {
				t.Fatalf("%s: contents %s, want %s", label, got, want)
			}
			sm := applyToMultiset(t, label+" serial", serialUps)
			bm := applyToMultiset(t, label+" batch", batchUps)
			if !multisetEqual(sm, bm) {
				t.Fatalf("%s: update multisets diverge", label)
			}
		}
	}
}

func TestSlidingWindowAppendBatchGroupsOps(t *testing.T) {
	// A full window + a batch no larger than the window must yield exactly
	// one delete run followed by one insert run.
	w := NewSlidingWindow(8)
	for i := 0; i < 8; i++ {
		w.Append(tuple.Tuple{tuple.Value(i)})
	}
	ts := make([]tuple.Tuple, 5)
	for i := range ts {
		ts[i] = tuple.Tuple{tuple.Value(100 + i)}
	}
	ups := w.AppendBatch(ts)
	if len(ups) != 10 {
		t.Fatalf("got %d updates, want 10", len(ups))
	}
	for i, u := range ups {
		want := Delete
		if i >= 5 {
			want = Insert
		}
		if u.Op != want {
			t.Fatalf("update %d: op %v, want %v (schedule not grouped)", i, u.Op, want)
		}
	}
	if ups[0].Tuple[0] != 0 || ups[4].Tuple[0] != 4 {
		t.Fatalf("deletes not oldest-first: %v", ups[:5])
	}
}

func TestPartitionedWindowAppendBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, batch := range []int{1, 5, 24} {
		serial := NewPartitionedWindow(3, 0)
		batched := NewPartitionedWindow(3, 0)
		var serialUps, batchUps []Update
		for round := 0; round < 12; round++ {
			ts := make([]tuple.Tuple, batch)
			for i := range ts {
				// Few partitions so single batches overflow a partition's
				// window (the degenerate same-batch expiry case).
				ts[i] = tuple.Tuple{tuple.Value(rng.Int63n(3)), tuple.Value(rng.Int63n(100))}
			}
			for _, x := range ts {
				serialUps = serial.AppendInto(x, serialUps)
			}
			batchUps = batched.AppendBatchInto(ts, batchUps)
		}
		label := fmt.Sprintf("batch=%d", batch)
		if serial.Len() != batched.Len() || serial.Partitions() != batched.Partitions() {
			t.Fatalf("%s: len/partitions diverge: %d/%d vs %d/%d",
				label, serial.Len(), serial.Partitions(), batched.Len(), batched.Partitions())
		}
		sm := applyToMultiset(t, label+" serial", serialUps)
		bm := applyToMultiset(t, label+" batch", batchUps)
		if !multisetEqual(sm, bm) {
			t.Fatalf("%s: update multisets diverge", label)
		}
		// Final multiset must equal window contents per partition.
		for key, win := range serial.rows {
			bwin := batched.rows[key]
			if bwin == nil || fmt.Sprint(win.Contents()) != fmt.Sprint(bwin.Contents()) {
				t.Fatalf("%s: partition %v contents diverge", label, key)
			}
		}
	}
}
