package stream

import (
	"math/rand"
	"sort"
	"testing"

	"acache/internal/tuple"
)

func TestReordererRestoresOrder(t *testing.T) {
	r := NewReorderer(5)
	var got []int64
	offer := func(v, ts int64) {
		rel, ok := r.Offer(tuple.Tuple{v}, ts)
		if !ok {
			t.Fatalf("tuple at ts=%d rejected", ts)
		}
		for _, p := range rel {
			got = append(got, p.TS)
		}
	}
	// Disordered within the bound: 10, 8, 12, 9, 15.
	offer(1, 10)
	offer(2, 8)
	offer(3, 12)
	offer(4, 9)
	offer(5, 15)
	for _, p := range r.Flush() {
		got = append(got, p.TS)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("released out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("released %d of 5", len(got))
	}
}

func TestReordererRejectsTooLate(t *testing.T) {
	r := NewReorderer(3)
	r.Offer(tuple.Tuple{1}, 100) // watermark = 97
	if _, ok := r.Offer(tuple.Tuple{2}, 96); ok {
		t.Fatal("tuple below the watermark must be rejected")
	}
	if _, ok := r.Offer(tuple.Tuple{3}, 97); !ok {
		t.Fatal("tuple at the watermark must be accepted")
	}
}

func TestReordererZeroLatenessValidates(t *testing.T) {
	r := NewReorderer(0)
	rel, ok := r.Offer(tuple.Tuple{1}, 5)
	if !ok || len(rel) != 1 {
		t.Fatalf("ordered tuple not released immediately: %v %v", rel, ok)
	}
	if _, ok := r.Offer(tuple.Tuple{2}, 4); ok {
		t.Fatal("regression must be rejected at zero lateness")
	}
}

func TestReordererStableTies(t *testing.T) {
	r := NewReorderer(10)
	r.Offer(tuple.Tuple{1}, 50)
	r.Offer(tuple.Tuple{2}, 50)
	r.Offer(tuple.Tuple{3}, 50)
	out := r.Flush()
	for i, p := range out {
		if p.Tuple[0] != int64(i+1) {
			t.Fatalf("ties released out of arrival order: %v", out)
		}
	}
}

// Property: for any stream with disorder bounded by the lateness, every
// tuple is released exactly once in non-decreasing timestamp order.
func TestReordererProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const lateness = 8
	for trial := 0; trial < 50; trial++ {
		r := NewReorderer(lateness)
		// Generate orderly timestamps, then jitter each by < lateness and
		// re-emit in jittered order.
		type ev struct{ orig, jit int64 }
		var evs []ev
		ts := int64(0)
		for i := 0; i < 300; i++ {
			ts += rng.Int63n(3)
			evs = append(evs, ev{orig: ts, jit: ts + rng.Int63n(lateness)})
		}
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].jit < evs[b].jit })
		var released []int64
		accepted := 0
		for _, e := range evs {
			rel, ok := r.Offer(tuple.Tuple{e.orig}, e.orig)
			if !ok {
				continue // jitter may exceed the effective bound between events
			}
			accepted++
			for _, p := range rel {
				released = append(released, p.TS)
			}
		}
		for _, p := range r.Flush() {
			released = append(released, p.TS)
		}
		if len(released) != accepted {
			t.Fatalf("trial %d: released %d of %d accepted", trial, len(released), accepted)
		}
		if !sort.SliceIsSorted(released, func(i, j int) bool { return released[i] < released[j] }) {
			t.Fatalf("trial %d: out of order: %v", trial, released)
		}
	}
}
