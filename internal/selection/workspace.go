package selection

import "sort"

// Workspace holds every scratch structure the selection algorithms need, so
// a host re-optimizing every interval can run them allocation-free once the
// buffers are warm. The zero value is ready to use.
//
// Contract: a Result returned by a Workspace method aliases the workspace's
// buffers and is valid only until the next call on the same Workspace. The
// package-level functions (Select, Exhaustive, Greedy, OptimalNoSharing)
// wrap a fresh Workspace per call and keep the old independent-result
// behavior.
type Workspace struct {
	// Shared result buffers.
	chosen []int // best/selected set under construction
	cur    []int // Exhaustive's working subset
	exBest float64

	// OptimalNoSharing forest-DP scratch.
	byPipe    [][]int
	parent    []int
	best      []float64
	childSum  []float64
	pick      [][]int
	childPick [][]int

	// Greedy covering scratch (see greedy.go).
	gItems    []gItem
	gGroups   []gGroup
	gGroupIdx []int
	gCovered  []bool
	gPipeOff  []int
	gLive     []gLive
	gBestSet  []int
	gChosen   []int
	gOut      []int
	groupSum  []float64
}

// Select is Workspace-backed selection dispatch; see the package function.
func (w *Workspace) Select(p *Problem) Result {
	if !p.hasSharing() {
		return w.OptimalNoSharing(p)
	}
	if len(p.Cands) <= exhaustiveLimit {
		return w.Exhaustive(p)
	}
	return w.Greedy(p)
}

// OptimalNoSharing is the Workspace-backed forest DP; see the package
// function for the algorithm.
func (w *Workspace) OptimalNoSharing(p *Problem) Result {
	nPipes := len(p.OpCosts)
	for _, c := range p.Cands {
		if c.Pipeline+1 > nPipes {
			nPipes = c.Pipeline + 1
		}
	}
	w.byPipe = growSliceOfInts(w.byPipe, nPipes)
	for i, c := range p.Cands {
		w.byPipe[c.Pipeline] = append(w.byPipe[c.Pipeline], i)
	}
	chosen := w.chosen[:0]
	for pi := 0; pi < nPipes; pi++ {
		chosen = w.optimalPipeline(p, w.byPipe[pi], chosen)
	}
	w.chosen = chosen
	sort.Ints(chosen)
	return Result{Chosen: chosen, Value: p.objective(chosen)}
}

// optimalPipeline runs the forest DP over one pipeline's candidates,
// appending its picks to out.
func (w *Workspace) optimalPipeline(p *Problem, idxs []int, out []int) []int {
	// Sort by span length ascending so parents come after children
	// (insertion sort: tiny inputs, stable, and no per-call closure).
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && p.Cands[idxs[j]].ops() < p.Cands[idxs[j-1]].ops(); j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	m := len(idxs)
	w.parent = growInts(w.parent, m)
	w.best = growFloats(w.best, m)
	w.childSum = growFloats(w.childSum, m)
	w.pick = growSliceOfInts(w.pick, m)
	w.childPick = growSliceOfInts(w.childPick, m)
	// parent[i] = position in idxs of the smallest strict superset.
	for i := 0; i < m; i++ {
		w.parent[i] = -1
		w.best[i] = 0
		w.childSum[i] = 0
		ci := &p.Cands[idxs[i]]
		for j := i + 1; j < m; j++ {
			cj := &p.Cands[idxs[j]]
			if cj.Start <= ci.Start && ci.End <= cj.End && cj.ops() > ci.ops() {
				w.parent[i] = j
				break
			}
		}
	}
	// best[i]: optimal value within i's subtree; pick[i]: chosen indexes.
	// pick[i] copies childPick[i] rather than aliasing it: with both slices
	// reused across calls, an alias would leave two logical slices sharing
	// one backing array on the next call.
	for i := 0; i < m; i++ {
		c := &p.Cands[idxs[i]]
		v := c.Benefit - p.GroupCosts[c.Group]
		if v > w.childSum[i] {
			w.best[i] = v
			w.pick[i] = append(w.pick[i][:0], idxs[i])
		} else {
			w.best[i] = w.childSum[i]
			w.pick[i] = append(w.pick[i][:0], w.childPick[i]...)
		}
		if w.best[i] < 0 {
			w.best[i] = 0
			w.pick[i] = w.pick[i][:0]
		}
		if pr := w.parent[i]; pr != -1 {
			w.childSum[pr] += w.best[i]
			w.childPick[pr] = append(w.childPick[pr], w.pick[i]...)
		}
	}
	for i := 0; i < m; i++ {
		if w.parent[i] == -1 {
			out = append(out, w.pick[i]...)
		}
	}
	return out
}

// Exhaustive is the Workspace-backed exhaustive search; see the package
// function.
func (w *Workspace) Exhaustive(p *Problem) Result {
	w.exBest = 0
	w.chosen = w.chosen[:0]
	w.cur = w.cur[:0]
	w.exhaust(p, 0)
	sort.Ints(w.chosen)
	return Result{Chosen: w.chosen, Value: w.exBest}
}

// exhaust recurses over include/exclude decisions for candidate i (a method
// rather than a closure so warm calls allocate nothing).
func (w *Workspace) exhaust(p *Problem, i int) {
	if i == len(p.Cands) {
		if v := p.objective(w.cur); v > w.exBest {
			w.exBest = v
			w.chosen = append(w.chosen[:0], w.cur...)
		}
		return
	}
	// Skip candidate i.
	w.exhaust(p, i+1)
	// Take candidate i if compatible.
	for _, j := range w.cur {
		if p.Cands[i].overlaps(&p.Cands[j]) {
			return
		}
	}
	w.cur = append(w.cur, i)
	w.exhaust(p, i+1)
	w.cur = w.cur[:len(w.cur)-1]
}

// growInts returns s with length n, reusing its array when it fits.
// Contents are unspecified; callers initialize.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growFloats is growInts for float64 slices.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growBools returns s with length n and every element false.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// growSliceOfInts returns s with length n, each element truncated to length
// zero with its capacity kept.
func growSliceOfInts(s [][]int, n int) [][]int {
	if cap(s) < n {
		ns := make([][]int, n)
		copy(ns, s[:cap(s)])
		s = ns
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}
