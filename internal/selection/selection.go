// Package selection implements the offline cache-selection algorithms of
// Section 4.4 and Appendix B: the optimal linear-time forest dynamic program
// for instances without shared caches (Theorem 4.1 / 4.2), exhaustive search
// over the 2^m candidate subsets (used for small m, as the paper does for
// n ≤ 6), the greedy O(log n)-approximation, and the randomized
// LP-rounding O(log n)-approximation (Theorem 4.3 / B.1).
//
// All algorithms work on a neutral Problem description: candidate caches
// with measured statistics, covering operator positions in pipelines, plus
// sharing groups whose update cost is paid once no matter how many group
// members are used.
package selection

// Candidate is one candidate cache with its measured statistics.
type Candidate struct {
	// Pipeline and the covered operator positions Start..End (inclusive).
	Pipeline   int
	Start, End int
	// Group is the sharing-group index (Definition 4.1); every candidate
	// belongs to exactly one group, singletons included.
	Group int
	// Benefit is benefit(C): the unit-time processing saved by using the
	// cache, before maintenance cost (Section 4.1).
	Benefit float64
}

// ops returns the number of operators the candidate covers.
func (c *Candidate) ops() int { return c.End - c.Start + 1 }

func (c *Candidate) overlaps(d *Candidate) bool {
	return c.Pipeline == d.Pipeline && c.Start <= d.End && d.Start <= c.End
}

// Problem is a cache-selection instance.
type Problem struct {
	// OpCosts[i][j] is d_ij × c_ij: the unit-time processing cost of
	// operator j of pipeline i when no cache covers it. Only used by the
	// minimization-form algorithms (greedy, LP); the objective value
	// reported by every algorithm is the maximization form.
	OpCosts [][]float64
	// Cands are the candidate caches.
	Cands []Candidate
	// GroupCosts[g] is cost(C) for the caches of group g: the unit-time
	// maintenance cost, paid once per group used.
	GroupCosts []float64
}

// Result is a selected candidate subset and its objective value
// Σ benefit(C) − Σ_{groups used} cost(G) (the paper's maximization form).
type Result struct {
	Chosen []int // candidate indexes, ascending
	Value  float64
}

// objective computes the maximization-form value of a candidate subset:
// benefits summed in subset order, then each used group's cost subtracted
// once in first-occurrence order. Allocation-free and deterministic —
// Exhaustive calls it 2^m times per selection, and a re-optimizing engine
// must not see run-to-run float-sum jitter. The duplicate-group scan is
// quadratic in the subset size, which non-overlap keeps small.
func (p *Problem) objective(chosen []int) float64 {
	v := 0.0
	for _, i := range chosen {
		v += p.Cands[i].Benefit
	}
	for ai, i := range chosen {
		g := p.Cands[i].Group
		first := true
		for _, j := range chosen[:ai] {
			if p.Cands[j].Group == g {
				first = false
				break
			}
		}
		if first {
			v -= p.GroupCosts[g]
		}
	}
	return v
}

// hasSharing reports whether any group has two or more members.
// Allocation-free: quadratic in m, which Select's call cadence (once per
// re-optimization) and candidate counts keep trivial.
func (p *Problem) hasSharing() bool {
	for a := range p.Cands {
		for b := a + 1; b < len(p.Cands); b++ {
			if p.Cands[a].Group == p.Cands[b].Group {
				return true
			}
		}
	}
	return false
}

// validate panics on overlapping chosen candidates; used by tests.
func (p *Problem) validate(chosen []int) bool {
	for a := 0; a < len(chosen); a++ {
		for b := a + 1; b < len(chosen); b++ {
			if p.Cands[chosen[a]].overlaps(&p.Cands[chosen[b]]) {
				return false
			}
		}
	}
	return true
}

// Select chooses the algorithm the way the implementation described in
// Section 4.4 does: the optimal forest DP when no candidate caches are
// shared; otherwise exhaustive search while 2^m stays cheap (m ≤
// exhaustiveLimit), falling back to the greedy approximation beyond that.
func Select(p *Problem) Result {
	var w Workspace
	return w.Select(p)
}

// exhaustiveLimit caps exhaustive search at 2^18 subsets; the paper reports
// exhaustive overhead is negligible for n ≤ 6 (m = O(n²)).
const exhaustiveLimit = 18

// OptimalNoSharing solves instances whose groups are all singletons
// optimally in O(m) per pipeline (Theorem 4.1): candidates within a
// pipeline form a containment forest, and each subtree's optimum is the
// better of its root's net benefit and the sum of its children's optima.
// With sharing present the result is still a feasible solution but carries
// no optimality guarantee (each shared group's cost is charged to every
// member).
func OptimalNoSharing(p *Problem) Result {
	var w Workspace
	return w.OptimalNoSharing(p)
}

// Exhaustive enumerates every nonoverlapping candidate subset and returns
// the best; exact for any instance, exponential in m.
func Exhaustive(p *Problem) Result {
	var w Workspace
	return w.Exhaustive(p)
}
