// Package selection implements the offline cache-selection algorithms of
// Section 4.4 and Appendix B: the optimal linear-time forest dynamic program
// for instances without shared caches (Theorem 4.1 / 4.2), exhaustive search
// over the 2^m candidate subsets (used for small m, as the paper does for
// n ≤ 6), the greedy O(log n)-approximation, and the randomized
// LP-rounding O(log n)-approximation (Theorem 4.3 / B.1).
//
// All algorithms work on a neutral Problem description: candidate caches
// with measured statistics, covering operator positions in pipelines, plus
// sharing groups whose update cost is paid once no matter how many group
// members are used.
package selection

import (
	"sort"
)

// Candidate is one candidate cache with its measured statistics.
type Candidate struct {
	// Pipeline and the covered operator positions Start..End (inclusive).
	Pipeline   int
	Start, End int
	// Group is the sharing-group index (Definition 4.1); every candidate
	// belongs to exactly one group, singletons included.
	Group int
	// Benefit is benefit(C): the unit-time processing saved by using the
	// cache, before maintenance cost (Section 4.1).
	Benefit float64
}

// ops returns the number of operators the candidate covers.
func (c *Candidate) ops() int { return c.End - c.Start + 1 }

func (c *Candidate) overlaps(d *Candidate) bool {
	return c.Pipeline == d.Pipeline && c.Start <= d.End && d.Start <= c.End
}

// Problem is a cache-selection instance.
type Problem struct {
	// OpCosts[i][j] is d_ij × c_ij: the unit-time processing cost of
	// operator j of pipeline i when no cache covers it. Only used by the
	// minimization-form algorithms (greedy, LP); the objective value
	// reported by every algorithm is the maximization form.
	OpCosts [][]float64
	// Cands are the candidate caches.
	Cands []Candidate
	// GroupCosts[g] is cost(C) for the caches of group g: the unit-time
	// maintenance cost, paid once per group used.
	GroupCosts []float64
}

// Result is a selected candidate subset and its objective value
// Σ benefit(C) − Σ_{groups used} cost(G) (the paper's maximization form).
type Result struct {
	Chosen []int // candidate indexes, ascending
	Value  float64
}

// objective computes the maximization-form value of a candidate subset.
func (p *Problem) objective(chosen []int) float64 {
	v := 0.0
	groups := make(map[int]bool)
	for _, i := range chosen {
		v += p.Cands[i].Benefit
		groups[p.Cands[i].Group] = true
	}
	for g := range groups {
		v -= p.GroupCosts[g]
	}
	return v
}

// hasSharing reports whether any group has two or more members.
func (p *Problem) hasSharing() bool {
	seen := make(map[int]bool)
	for _, c := range p.Cands {
		if seen[c.Group] {
			return true
		}
		seen[c.Group] = true
	}
	return false
}

// validate panics on overlapping chosen candidates; used by tests.
func (p *Problem) validate(chosen []int) bool {
	for a := 0; a < len(chosen); a++ {
		for b := a + 1; b < len(chosen); b++ {
			if p.Cands[chosen[a]].overlaps(&p.Cands[chosen[b]]) {
				return false
			}
		}
	}
	return true
}

// Select chooses the algorithm the way the implementation described in
// Section 4.4 does: the optimal forest DP when no candidate caches are
// shared; otherwise exhaustive search while 2^m stays cheap (m ≤
// exhaustiveLimit), falling back to the greedy approximation beyond that.
func Select(p *Problem) Result {
	if !p.hasSharing() {
		return OptimalNoSharing(p)
	}
	if len(p.Cands) <= exhaustiveLimit {
		return Exhaustive(p)
	}
	return Greedy(p)
}

// exhaustiveLimit caps exhaustive search at 2^18 subsets; the paper reports
// exhaustive overhead is negligible for n ≤ 6 (m = O(n²)).
const exhaustiveLimit = 18

// OptimalNoSharing solves instances whose groups are all singletons
// optimally in O(m) per pipeline (Theorem 4.1): candidates within a
// pipeline form a containment forest, and each subtree's optimum is the
// better of its root's net benefit and the sum of its children's optima.
// With sharing present the result is still a feasible solution but carries
// no optimality guarantee (each shared group's cost is charged to every
// member).
func OptimalNoSharing(p *Problem) Result {
	byPipe := make(map[int][]int)
	for i, c := range p.Cands {
		byPipe[c.Pipeline] = append(byPipe[c.Pipeline], i)
	}
	var chosen []int
	for _, idxs := range byPipe {
		chosen = append(chosen, optimalPipeline(p, idxs)...)
	}
	sort.Ints(chosen)
	return Result{Chosen: chosen, Value: p.objective(chosen)}
}

// optimalPipeline runs the forest DP over one pipeline's candidates.
func optimalPipeline(p *Problem, idxs []int) []int {
	// Sort by span length ascending so parents come after children.
	sort.Slice(idxs, func(a, b int) bool {
		return p.Cands[idxs[a]].ops() < p.Cands[idxs[b]].ops()
	})
	// parent[i] = position in idxs of the smallest strict superset.
	parent := make([]int, len(idxs))
	for i := range parent {
		parent[i] = -1
		ci := &p.Cands[idxs[i]]
		for j := i + 1; j < len(idxs); j++ {
			cj := &p.Cands[idxs[j]]
			if cj.Start <= ci.Start && ci.End <= cj.End && cj.ops() > ci.ops() {
				parent[i] = j
				break
			}
		}
	}
	net := func(i int) float64 {
		c := &p.Cands[idxs[i]]
		return c.Benefit - p.GroupCosts[c.Group]
	}
	// best[i]: optimal value within i's subtree; pick[i]: chosen indexes.
	best := make([]float64, len(idxs))
	pick := make([][]int, len(idxs))
	childSum := make([]float64, len(idxs))
	childPick := make([][]int, len(idxs))
	for i := range idxs {
		v := net(i)
		if v > childSum[i] {
			best[i] = v
			pick[i] = []int{idxs[i]}
		} else {
			best[i] = childSum[i]
			pick[i] = childPick[i]
		}
		if best[i] < 0 {
			best[i] = 0
			pick[i] = nil
		}
		if pr := parent[i]; pr != -1 {
			childSum[pr] += best[i]
			childPick[pr] = append(childPick[pr], pick[i]...)
		}
	}
	var out []int
	for i := range idxs {
		if parent[i] == -1 {
			out = append(out, pick[i]...)
		}
	}
	return out
}

// Exhaustive enumerates every nonoverlapping candidate subset and returns
// the best; exact for any instance, exponential in m.
func Exhaustive(p *Problem) Result {
	m := len(p.Cands)
	bestVal := 0.0
	var bestSet []int
	var cur []int
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			if v := p.objective(cur); v > bestVal {
				bestVal = v
				bestSet = append([]int(nil), cur...)
			}
			return
		}
		// Skip candidate i.
		rec(i + 1)
		// Take candidate i if compatible.
		for _, j := range cur {
			if p.Cands[i].overlaps(&p.Cands[j]) {
				return
			}
		}
		cur = append(cur, i)
		rec(i + 1)
		cur = cur[:len(cur)-1]
	}
	rec(0)
	sort.Ints(bestSet)
	return Result{Chosen: bestSet, Value: bestVal}
}
