package selection

import "sort"

// Budget-aware selection: the paper deliberately decouples cache selection
// (assuming infinite memory) from memory allocation (Section 5's greedy
// priorities), noting the full integrated problem as future work. This file
// provides the integrated variant for comparison: choose a nonoverlapping
// candidate subset maximizing net benefit subject to a memory budget over
// the chosen sharing groups. The ablation tests show where the paper's
// modular pipeline leaves benefit on the table.

// BudgetedProblem extends Problem with per-group memory footprints.
type BudgetedProblem struct {
	Problem
	// GroupBytes[g] is the expected memory footprint of group g's shared
	// cache instance.
	GroupBytes []float64
	// Budget is the available memory in the same unit.
	Budget float64
}

// feasible reports whether the chosen set's group footprints fit the budget.
func (p *BudgetedProblem) feasible(chosen []int) bool {
	groups := make(map[int]bool)
	total := 0.0
	for _, i := range chosen {
		g := p.Cands[i].Group
		if !groups[g] {
			groups[g] = true
			total += p.GroupBytes[g]
		}
	}
	return total <= p.Budget
}

// BudgetedExhaustive enumerates every nonoverlapping, budget-feasible
// candidate subset and returns the best — exact, exponential in m.
func BudgetedExhaustive(p *BudgetedProblem) Result {
	m := len(p.Cands)
	bestVal := 0.0
	var bestSet []int
	var cur []int
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			if !p.feasible(cur) {
				return
			}
			if v := p.objective(cur); v > bestVal {
				bestVal = v
				bestSet = append([]int(nil), cur...)
			}
			return
		}
		rec(i + 1)
		for _, j := range cur {
			if p.Cands[i].overlaps(&p.Cands[j]) {
				return
			}
		}
		cur = append(cur, i)
		rec(i + 1)
		cur = cur[:len(cur)-1]
	}
	rec(0)
	sort.Ints(bestSet)
	return Result{Chosen: bestSet, Value: bestVal}
}

// BudgetedGreedy adds whole sharing groups in descending net-benefit-per-
// byte order (the Section 5 priority, applied at selection time), skipping
// groups that no longer fit or whose members all overlap earlier choices.
func BudgetedGreedy(p *BudgetedProblem) Result {
	type groupInfo struct {
		id      int
		members []int
		benefit float64
	}
	groups := make(map[int]*groupInfo)
	var order []int
	for i, c := range p.Cands {
		g, ok := groups[c.Group]
		if !ok {
			g = &groupInfo{id: c.Group}
			groups[c.Group] = g
			order = append(order, c.Group)
		}
		g.members = append(g.members, i)
		if c.Benefit > 0 {
			g.benefit += c.Benefit
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := groups[order[a]], groups[order[b]]
		ba := bytesOr1(p.GroupBytes[ga.id])
		bb := bytesOr1(p.GroupBytes[gb.id])
		pa := (ga.benefit - p.GroupCosts[ga.id]) / ba
		pb := (gb.benefit - p.GroupCosts[gb.id]) / bb
		if pa != pb {
			return pa > pb
		}
		return ga.id < gb.id
	})
	remaining := p.Budget
	var chosen []int
	for _, gid := range order {
		g := groups[gid]
		if g.benefit <= p.GroupCosts[gid] || p.GroupBytes[gid] > remaining {
			continue
		}
		// Admit the group's non-overlapping, positive-benefit members.
		added := false
		for _, i := range g.members {
			if p.Cands[i].Benefit <= 0 {
				continue
			}
			ok := true
			for _, j := range chosen {
				if p.Cands[i].overlaps(&p.Cands[j]) {
					ok = false
					break
				}
			}
			if ok {
				chosen = append(chosen, i)
				added = true
			}
		}
		if added {
			remaining -= p.GroupBytes[gid]
		}
	}
	sort.Ints(chosen)
	return Result{Chosen: chosen, Value: p.objective(chosen)}
}

func bytesOr1(b float64) float64 {
	if b < 1 {
		return 1
	}
	return b
}

// ModularBaseline reproduces the paper's two-phase pipeline on a budgeted
// instance, for comparison: select assuming infinite memory, then keep
// groups in descending priority while they fit (groups that do not fit are
// dropped entirely — a cache granted no memory is pure overhead).
func ModularBaseline(p *BudgetedProblem) Result {
	sel := Select(&p.Problem)
	// Group the selection.
	byGroup := make(map[int][]int)
	var order []int
	benefit := make(map[int]float64)
	for _, i := range sel.Chosen {
		g := p.Cands[i].Group
		if _, ok := byGroup[g]; !ok {
			order = append(order, g)
		}
		byGroup[g] = append(byGroup[g], i)
		benefit[g] += p.Cands[i].Benefit
	}
	sort.Slice(order, func(a, b int) bool {
		pa := (benefit[order[a]] - p.GroupCosts[order[a]]) / bytesOr1(p.GroupBytes[order[a]])
		pb := (benefit[order[b]] - p.GroupCosts[order[b]]) / bytesOr1(p.GroupBytes[order[b]])
		if pa != pb {
			return pa > pb
		}
		return order[a] < order[b]
	})
	remaining := p.Budget
	var chosen []int
	for _, g := range order {
		if p.GroupBytes[g] > remaining {
			continue
		}
		remaining -= p.GroupBytes[g]
		chosen = append(chosen, byGroup[g]...)
	}
	sort.Ints(chosen)
	return Result{Chosen: chosen, Value: p.objective(chosen)}
}
