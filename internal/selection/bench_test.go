package selection

import (
	"math/rand"
	"testing"
)

// Wall-clock cost of the offline selection algorithms: the paper reports
// exhaustive search is "typically negligible for n ≤ 6" (m = O(n²)
// candidates); these benches back that claim for this implementation. The
// simulated cost meter deliberately excludes optimizer CPU (see DESIGN.md),
// so these are the numbers that justify the exclusion.

func benchProblem(m int, sharing bool) *Problem {
	rng := rand.New(rand.NewSource(int64(m)))
	p := &Problem{}
	// Enough pipelines that m nested-or-disjoint spans exist.
	nPipes := 2 + m/3
	for i := 0; i < nPipes; i++ {
		ops := make([]float64, 6)
		for j := range ops {
			ops[j] = 1 + rng.Float64()*20
		}
		p.OpCosts = append(p.OpCosts, ops)
	}
	groups := 0
	for attempts := 0; len(p.Cands) < m && attempts < 100*m; attempts++ {
		pipe := rng.Intn(nPipes)
		start := rng.Intn(5)
		end := start + 1 + rng.Intn(6-start-1)
		// Keep per-pipeline spans nested or disjoint.
		ok := true
		for _, c := range p.Cands {
			if c.Pipeline == pipe && c.Start <= end && start <= c.End {
				nested := (start >= c.Start && end <= c.End) || (c.Start >= start && c.End <= end)
				same := start == c.Start && end == c.End
				if !nested || same {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		g := groups
		if sharing && groups > 0 && rng.Intn(3) == 0 {
			g = rng.Intn(groups)
		} else {
			groups++
			p.GroupCosts = append(p.GroupCosts, rng.Float64()*10)
		}
		p.Cands = append(p.Cands, Candidate{
			Pipeline: pipe, Start: start, End: end, Group: g,
			Benefit: rng.Float64() * 25,
		})
	}
	return p
}

func BenchmarkExhaustive12(b *testing.B) {
	p := benchProblem(12, true)
	for i := 0; i < b.N; i++ {
		Exhaustive(p)
	}
}

func BenchmarkExhaustive18(b *testing.B) {
	p := benchProblem(18, true)
	for i := 0; i < b.N; i++ {
		Exhaustive(p)
	}
}

func BenchmarkGreedy18(b *testing.B) {
	p := benchProblem(18, true)
	for i := 0; i < b.N; i++ {
		Greedy(p)
	}
}

func BenchmarkGreedy60(b *testing.B) {
	p := benchProblem(60, true)
	for i := 0; i < b.N; i++ {
		Greedy(p)
	}
}

func BenchmarkOptimalNoSharing60(b *testing.B) {
	p := benchProblem(60, false)
	for i := 0; i < b.N; i++ {
		OptimalNoSharing(p)
	}
}

func BenchmarkRandomizedLP18(b *testing.B) {
	p := benchProblem(18, true)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if _, err := Randomized(p, rng); err != nil {
			b.Fatal(err)
		}
	}
}
