package selection

import (
	"math"
	"math/rand"
	"sort"

	"acache/internal/lp"
)

// Randomized is the LP-relaxation randomized-rounding O(log n) approximation
// of Theorem B.1: solve the fractional relaxation of the covering integer
// program, then — per rounding round — draw one threshold α_r per sharing
// group and take every cache whose fractional value reaches its group's
// threshold; repeat 3·log m rounds and union the picks so every operator is
// covered with high probability. Overlaps are resolved by keeping the widest
// cache and groups that do not pay for themselves are pruned, exactly as in
// the greedy variant.
//
// rng must be non-nil; the engine passes a seeded source so selections are
// reproducible.
func Randomized(p *Problem, rng *rand.Rand) (Result, error) {
	type item struct {
		cand  int // −1 for operator pseudo-caches
		pipe  int
		start int
		end   int
		proc  float64
		group int // dense group id; operators get singleton groups
	}
	var items []item
	groupCosts := []float64{}
	groupOf := make(map[int]int)
	for i, c := range p.Cands {
		proc := -c.Benefit
		for j := c.Start; j <= c.End; j++ {
			proc += p.OpCosts[c.Pipeline][j]
		}
		if proc < 0 {
			proc = 0
		}
		g, ok := groupOf[c.Group]
		if !ok {
			g = len(groupCosts)
			groupOf[c.Group] = g
			groupCosts = append(groupCosts, p.GroupCosts[c.Group])
		}
		items = append(items, item{cand: i, pipe: c.Pipeline, start: c.Start, end: c.End, proc: proc, group: g})
	}
	for pipe, costs := range p.OpCosts {
		for pos, cost := range costs {
			g := len(groupCosts)
			groupCosts = append(groupCosts, 0)
			items = append(items, item{cand: -1, pipe: pipe, start: pos, end: pos, proc: cost, group: g})
		}
	}

	nItems, nGroups := len(items), len(groupCosts)
	nVars := nItems + nGroups
	prob := lp.Problem{
		C:     make([]float64, nVars),
		Upper: make([]float64, nVars),
	}
	for i, it := range items {
		prob.C[i] = it.proc
		prob.Upper[i] = 1
	}
	for g, c := range groupCosts {
		prob.C[nItems+g] = c
		prob.Upper[nItems+g] = 1
	}
	// Coverage equalities: Σ_{items covering op p} x = 1.
	for pipe, costs := range p.OpCosts {
		for pos := range costs {
			row := make([]float64, nVars)
			for i, it := range items {
				if it.pipe == pipe && it.start <= pos && pos <= it.end {
					row[i] = 1
				}
			}
			prob.AEq = append(prob.AEq, row)
			prob.BEq = append(prob.BEq, 1)
		}
	}
	// Group activation: x_c − z_g ≤ 0, for groups with nonzero cost.
	for i, it := range items {
		if groupCosts[it.group] == 0 {
			continue
		}
		row := make([]float64, nVars)
		row[i] = 1
		row[nItems+it.group] = -1
		prob.AUb = append(prob.AUb, row)
		prob.BUb = append(prob.BUb, 0)
	}
	x, _, err := lp.Solve(prob)
	if err != nil {
		return Result{}, err
	}

	rounds := int(3*math.Log(float64(nItems+1))) + 1
	taken := make(map[int]bool)
	for r := 0; r < rounds; r++ {
		alpha := make([]float64, nGroups)
		for g := range alpha {
			alpha[g] = rng.Float64()
		}
		for i, it := range items {
			if it.cand >= 0 && x[i] >= alpha[it.group] {
				taken[it.cand] = true
			}
		}
	}
	var chosen []int
	for c := range taken {
		chosen = append(chosen, c)
	}
	chosen = resolveOverlaps(p, chosen)
	chosen = pruneNegative(p, chosen)
	sort.Ints(chosen)
	return Result{Chosen: chosen, Value: p.objective(chosen)}, nil
}
