package selection

import (
	"math"
	"math/rand"
	"testing"
)

// simpleProblem: one pipeline of 3 operators (costs 10, 10, 10), two nested
// candidates: small {0,1} benefit 12 cost 5 (net 7), big {0,1,2} benefit 18
// cost 12 (net 6). Optimal = small alone.
func simpleProblem() *Problem {
	return &Problem{
		OpCosts: [][]float64{{10, 10, 10}},
		Cands: []Candidate{
			{Pipeline: 0, Start: 0, End: 1, Group: 0, Benefit: 12},
			{Pipeline: 0, Start: 0, End: 2, Group: 1, Benefit: 18},
		},
		GroupCosts: []float64{5, 12},
	}
}

func TestOptimalNoSharingPicksBestNested(t *testing.T) {
	r := OptimalNoSharing(simpleProblem())
	if len(r.Chosen) != 1 || r.Chosen[0] != 0 {
		t.Fatalf("chose %v, want [0]", r.Chosen)
	}
	if math.Abs(r.Value-7) > 1e-9 {
		t.Fatalf("value %v, want 7", r.Value)
	}
}

func TestOptimalNoSharingNegativeNetDropsAll(t *testing.T) {
	p := simpleProblem()
	p.GroupCosts = []float64{20, 30}
	r := OptimalNoSharing(p)
	if len(r.Chosen) != 0 || r.Value != 0 {
		t.Fatalf("chose %v value %v, want nothing", r.Chosen, r.Value)
	}
}

func TestOptimalNoSharingSiblings(t *testing.T) {
	// Parent {0..3} net 10 vs two disjoint children {0,1} net 6 and {2,3}
	// net 7: children sum 13 wins.
	p := &Problem{
		OpCosts: [][]float64{{10, 10, 10, 10}},
		Cands: []Candidate{
			{Pipeline: 0, Start: 0, End: 3, Group: 0, Benefit: 15},
			{Pipeline: 0, Start: 0, End: 1, Group: 1, Benefit: 8},
			{Pipeline: 0, Start: 2, End: 3, Group: 2, Benefit: 9},
		},
		GroupCosts: []float64{5, 2, 2},
	}
	r := OptimalNoSharing(p)
	if len(r.Chosen) != 2 || r.Chosen[0] != 1 || r.Chosen[1] != 2 {
		t.Fatalf("chose %v, want [1 2]", r.Chosen)
	}
	if math.Abs(r.Value-13) > 1e-9 {
		t.Fatalf("value %v, want 13", r.Value)
	}
}

func TestExhaustiveMatchesOptimalOnNoSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng, false)
		a := OptimalNoSharing(p)
		b := Exhaustive(p)
		if !p.validate(a.Chosen) {
			t.Fatalf("trial %d: DP chose overlapping caches %v", trial, a.Chosen)
		}
		if math.Abs(a.Value-b.Value) > 1e-6 {
			t.Fatalf("trial %d: DP value %v != exhaustive %v (DP %v, EX %v)\n%+v",
				trial, a.Value, b.Value, a.Chosen, b.Chosen, p)
		}
	}
}

func TestSharedCachesFavoured(t *testing.T) {
	// Two pipelines, a shared cache in both: individually unprofitable
	// (benefit 6 each, cost 10) but shared it pays (12 > 10).
	p := &Problem{
		OpCosts: [][]float64{{5, 5}, {5, 5}},
		Cands: []Candidate{
			{Pipeline: 0, Start: 0, End: 1, Group: 0, Benefit: 6},
			{Pipeline: 1, Start: 0, End: 1, Group: 0, Benefit: 6},
		},
		GroupCosts: []float64{10},
	}
	r := Exhaustive(p)
	if len(r.Chosen) != 2 {
		t.Fatalf("chose %v, want both shared placements", r.Chosen)
	}
	if math.Abs(r.Value-2) > 1e-9 {
		t.Fatalf("value %v, want 2", r.Value)
	}
	g := Greedy(p)
	if len(g.Chosen) != 2 {
		t.Fatalf("greedy chose %v, want both shared placements", g.Chosen)
	}
}

func TestGreedyWithinLogFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng, true)
		opt := Exhaustive(p)
		g := Greedy(p)
		if !p.validate(g.Chosen) {
			t.Fatalf("trial %d: greedy chose overlapping caches %v", trial, g.Chosen)
		}
		if g.Value > opt.Value+1e-6 {
			t.Fatalf("trial %d: greedy value %v exceeds optimum %v", trial, g.Value, opt.Value)
		}
		// The approximation guarantee is on the minimization form; on the
		// maximization form we check the greedy never loses more than the
		// log-factor bound of the total covered cost.
		totalCost := 0.0
		for _, row := range p.OpCosts {
			for _, c := range row {
				totalCost += c
			}
		}
		n := float64(len(p.OpCosts[0]) + 1)
		bound := (math.Log(n) + 2) * (totalCost - opt.Value)
		if got := totalCost - g.Value; got > bound+totalCost*0.5+1e-6 {
			t.Fatalf("trial %d: greedy min-form cost %v way beyond bound %v (opt %v)",
				trial, got, bound, opt.Value)
		}
	}
}

func TestRandomizedFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		p := randomProblem(rng, true)
		opt := Exhaustive(p)
		r, err := Randomized(p, rng)
		if err != nil {
			t.Fatalf("trial %d: Randomized: %v\n%+v", trial, err, p)
		}
		if !p.validate(r.Chosen) {
			t.Fatalf("trial %d: randomized chose overlapping caches %v", trial, r.Chosen)
		}
		if r.Value > opt.Value+1e-6 {
			t.Fatalf("trial %d: randomized value %v exceeds optimum %v", trial, r.Value, opt.Value)
		}
	}
}

func TestSelectDispatch(t *testing.T) {
	// No sharing → DP (optimal); sharing and small m → exhaustive.
	p := simpleProblem()
	r := Select(p)
	if math.Abs(r.Value-7) > 1e-9 {
		t.Fatalf("Select on no-sharing: value %v, want 7", r.Value)
	}
	shared := &Problem{
		OpCosts: [][]float64{{5, 5}, {5, 5}},
		Cands: []Candidate{
			{Pipeline: 0, Start: 0, End: 1, Group: 0, Benefit: 6},
			{Pipeline: 1, Start: 0, End: 1, Group: 0, Benefit: 6},
		},
		GroupCosts: []float64{10},
	}
	r = Select(shared)
	if len(r.Chosen) != 2 {
		t.Fatalf("Select on shared: chose %v, want both", r.Chosen)
	}
}

// randomProblem generates a small instance: 2–3 pipelines of 3–5 operators,
// up to 6 candidates with random nested-or-disjoint spans. When sharing is
// requested, some candidates are assigned the same group.
func randomProblem(rng *rand.Rand, sharing bool) *Problem {
	nPipes := 2 + rng.Intn(2)
	p := &Problem{}
	for i := 0; i < nPipes; i++ {
		ops := make([]float64, 3+rng.Intn(3))
		for j := range ops {
			ops[j] = 1 + rng.Float64()*20
		}
		p.OpCosts = append(p.OpCosts, ops)
	}
	nCands := 1 + rng.Intn(6)
	nGroups := 0
	for c := 0; c < nCands; c++ {
		pipe := rng.Intn(nPipes)
		nOps := len(p.OpCosts[pipe])
		start := rng.Intn(nOps - 1)
		end := start + 1 + rng.Intn(nOps-start-1)
		group := nGroups
		if sharing && nGroups > 0 && rng.Intn(3) == 0 {
			group = rng.Intn(nGroups)
		} else {
			nGroups++
			p.GroupCosts = append(p.GroupCosts, rng.Float64()*15)
		}
		p.Cands = append(p.Cands, Candidate{
			Pipeline: pipe, Start: start, End: end,
			Group: group, Benefit: rng.Float64()*30 - 5,
		})
	}
	// Nested-only structure within a pipeline is required by the DP; drop
	// partially overlapping candidates to mirror the prefix invariant's
	// guarantee (Theorem 4.1's premise).
	var kept []Candidate
	for _, c := range p.Cands {
		ok := true
		for _, k := range kept {
			if c.Pipeline == k.Pipeline && c.Start <= k.End && k.Start <= c.End {
				nested := (c.Start >= k.Start && c.End <= k.End) || (k.Start >= c.Start && k.End <= c.End)
				same := c.Start == k.Start && c.End == k.End
				if !nested || same {
					ok = false
					break
				}
			}
		}
		if ok {
			kept = append(kept, c)
		}
	}
	p.Cands = kept
	return p
}
