package selection

import (
	"math"
	"math/rand"
	"testing"
)

// budgetedInstance: one pipeline, two disjoint candidates; the big one has
// higher net benefit but eats the whole budget, while two small ones
// together beat it. The integrated optimizer must see that; the modular
// pipeline (select-then-allocate) picks the big one first and strands the
// budget.
func budgetedInstance() *BudgetedProblem {
	return &BudgetedProblem{
		Problem: Problem{
			OpCosts: [][]float64{{10, 10, 10, 10}},
			Cands: []Candidate{
				{Pipeline: 0, Start: 0, End: 3, Group: 0, Benefit: 27}, // net 25, 10 bytes
				{Pipeline: 0, Start: 0, End: 1, Group: 1, Benefit: 12}, // net 11, 4 bytes
				{Pipeline: 0, Start: 2, End: 3, Group: 2, Benefit: 11}, // net 10, 4 bytes
			},
			GroupCosts: []float64{2, 1, 1},
		},
		GroupBytes: []float64{10, 4, 4},
		Budget:     8,
	}
}

func TestBudgetedExhaustiveRespectsBudget(t *testing.T) {
	p := budgetedInstance()
	r := BudgetedExhaustive(p)
	if !p.feasible(r.Chosen) {
		t.Fatalf("infeasible choice %v", r.Chosen)
	}
	// The two small caches (net 21, 8 bytes) beat the big one (net 18,
	// does not fit).
	if len(r.Chosen) != 2 || r.Chosen[0] != 1 || r.Chosen[1] != 2 {
		t.Fatalf("chose %v, want the two small caches", r.Chosen)
	}
	if math.Abs(r.Value-21) > 1e-9 {
		t.Fatalf("value = %v, want 21", r.Value)
	}
}

func TestModularBaselineStrandsBudget(t *testing.T) {
	// With a budget of 12 the big cache fits and the modular pipeline is
	// fine; at 8 it selects the big cache under infinite memory, cannot
	// fund it, and ends with nothing — the integrated optimizer's win.
	p := budgetedInstance()
	mod := ModularBaseline(p)
	integ := BudgetedExhaustive(p)
	if mod.Value >= integ.Value {
		t.Fatalf("expected the modular pipeline to strand benefit here: modular %v vs integrated %v",
			mod.Value, integ.Value)
	}
	p.Budget = 12
	mod = ModularBaseline(p)
	if math.Abs(mod.Value-25) > 1e-9 {
		t.Fatalf("with a fitting budget the modular value = %v, want 25", mod.Value)
	}
}

func TestBudgetedGreedyFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		base := randomProblem(rng, true)
		bp := &BudgetedProblem{Problem: *base}
		maxGroup := 0
		for _, c := range bp.Cands {
			if c.Group > maxGroup {
				maxGroup = c.Group
			}
		}
		bp.GroupBytes = make([]float64, maxGroup+1)
		total := 0.0
		for g := range bp.GroupBytes {
			bp.GroupBytes[g] = 1 + rng.Float64()*9
			total += bp.GroupBytes[g]
		}
		bp.Budget = total * rng.Float64()
		opt := BudgetedExhaustive(bp)
		gr := BudgetedGreedy(bp)
		if !bp.feasible(gr.Chosen) || !bp.validate(gr.Chosen) {
			t.Fatalf("trial %d: greedy infeasible %v", trial, gr.Chosen)
		}
		if gr.Value > opt.Value+1e-6 {
			t.Fatalf("trial %d: greedy %v beats exhaustive %v", trial, gr.Value, opt.Value)
		}
		mod := ModularBaseline(bp)
		if !bp.feasible(mod.Chosen) || !bp.validate(mod.Chosen) {
			t.Fatalf("trial %d: modular infeasible %v", trial, mod.Chosen)
		}
		if mod.Value > opt.Value+1e-6 {
			t.Fatalf("trial %d: modular %v beats exhaustive %v", trial, mod.Value, opt.Value)
		}
	}
}

func TestBudgetedZeroBudgetChoosesNothing(t *testing.T) {
	p := budgetedInstance()
	p.Budget = 0
	if r := BudgetedExhaustive(p); len(r.Chosen) != 0 {
		t.Fatalf("zero budget chose %v", r.Chosen)
	}
	if r := BudgetedGreedy(p); len(r.Chosen) != 0 {
		t.Fatalf("greedy zero budget chose %v", r.Chosen)
	}
}
