package selection

import (
	"math"
	"sort"
)

// Greedy is the Appendix-B greedy O(log n) approximation for instances with
// shared caches. It works on the minimization form: every operator must be
// covered exactly once, by a real cache or by itself (a zero-length cache of
// cost d_ij·c_ij and no group cost). Each round computes, for every sharing
// group, the cheapest cost rate D_r = (L_r + Σ_{c∈S} B_c) / (Σ_{c∈S} n_c)
// over prefix subsets S of the group's caches sorted by B_c/n_c (the claim
// in Appendix B shows a prefix is optimal), picks the best group, covers its
// operators, and repeats; overlapping choices are resolved afterwards by
// keeping the widest cache.
func Greedy(p *Problem) Result {
	type item struct {
		cand  int // candidate index, or −1 for an operator pseudo-cache
		pipe  int
		start int
		end   int
		proc  float64
	}
	type group struct {
		cost  float64
		items []int
	}

	var items []item
	var groups []group
	// Real candidates, grouped by sharing group.
	groupOf := make(map[int]int)
	for i, c := range p.Cands {
		proc := -c.Benefit
		for j := c.Start; j <= c.End; j++ {
			proc += p.OpCosts[c.Pipeline][j]
		}
		if proc < 0 {
			proc = 0
		}
		g, ok := groupOf[c.Group]
		if !ok {
			g = len(groups)
			groupOf[c.Group] = g
			groups = append(groups, group{cost: p.GroupCosts[c.Group]})
		}
		groups[g].items = append(groups[g].items, len(items))
		items = append(items, item{cand: i, pipe: c.Pipeline, start: c.Start, end: c.End, proc: proc})
	}
	// Operator pseudo-caches: cover themselves, no group cost.
	for pipe, costs := range p.OpCosts {
		for pos, cost := range costs {
			groups = append(groups, group{cost: 0, items: []int{len(items)}})
			items = append(items, item{cand: -1, pipe: pipe, start: pos, end: pos, proc: cost})
		}
	}

	covered := make(map[[2]int]bool)
	totalOps := 0
	for _, costs := range p.OpCosts {
		totalOps += len(costs)
	}
	// uncovered ops a cache still covers.
	nc := func(it *item) int {
		n := 0
		for j := it.start; j <= it.end; j++ {
			if !covered[[2]int{it.pipe, j}] {
				n++
			}
		}
		return n
	}

	var chosenItems []int
	for len(covered) < totalOps {
		bestD := math.Inf(1)
		var bestSet []int
		for _, g := range groups {
			// Live items of this group with their current coverage.
			type live struct {
				idx  int
				n    int
				rate float64
			}
			var ls []live
			for _, ii := range g.items {
				if n := nc(&items[ii]); n > 0 {
					ls = append(ls, live{idx: ii, n: n, rate: items[ii].proc / float64(n)})
				}
			}
			if len(ls) == 0 {
				continue
			}
			sort.Slice(ls, func(a, b int) bool { return ls[a].rate < ls[b].rate })
			sumB, sumN := g.cost, 0.0
			for k, l := range ls {
				sumB += items[l.idx].proc
				sumN += float64(l.n)
				if d := sumB / sumN; d < bestD {
					bestD = d
					bestSet = make([]int, 0, k+1)
					for _, x := range ls[:k+1] {
						bestSet = append(bestSet, x.idx)
					}
				}
			}
		}
		if bestSet == nil {
			break // nothing can cover the remainder (cannot happen: operators always can)
		}
		for _, ii := range bestSet {
			it := &items[ii]
			for j := it.start; j <= it.end; j++ {
				covered[[2]int{it.pipe, j}] = true
			}
			if it.cand >= 0 {
				chosenItems = append(chosenItems, it.cand)
			}
		}
	}
	chosen := resolveOverlaps(p, chosenItems)
	chosen = pruneNegative(p, chosen)
	sort.Ints(chosen)
	return Result{Chosen: chosen, Value: p.objective(chosen)}
}

// resolveOverlaps keeps, among mutually overlapping chosen caches, the one
// covering the most operators (Appendix B), iterating until conflict-free.
func resolveOverlaps(p *Problem, chosen []int) []int {
	sort.Slice(chosen, func(a, b int) bool {
		if oa, ob := p.Cands[chosen[a]].ops(), p.Cands[chosen[b]].ops(); oa != ob {
			return oa > ob
		}
		return chosen[a] < chosen[b]
	})
	var out []int
	for _, i := range chosen {
		ok := true
		for _, j := range out {
			if i == j || p.Cands[i].overlaps(&p.Cands[j]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// pruneNegative drops whole groups whose members' combined benefit does not
// pay for the group cost — the greedy covering can select caches that are
// cheaper than bare operators in the minimization form yet still carry
// negative net benefit relative to dropping them (operators then cover those
// positions for free in the maximization form).
func pruneNegative(p *Problem, chosen []int) []int {
	byGroup := make(map[int][]int)
	for _, i := range chosen {
		byGroup[p.Cands[i].Group] = append(byGroup[p.Cands[i].Group], i)
	}
	var out []int
	for g, members := range byGroup {
		sum := 0.0
		kept := members[:0]
		for _, i := range members {
			if p.Cands[i].Benefit > 0 {
				sum += p.Cands[i].Benefit
				kept = append(kept, i)
			}
		}
		if sum > p.GroupCosts[g] {
			out = append(out, kept...)
		}
	}
	return out
}
