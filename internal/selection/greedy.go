package selection

import (
	"math"
	"sort"
)

// gItem is one covering item of the greedy minimization form: a real
// candidate cache or an operator pseudo-cache (cand = −1).
type gItem struct {
	cand  int
	pipe  int
	start int
	end   int
	proc  float64
}

// gGroup is one sharing group of covering items; its cost is paid once.
type gGroup struct {
	cost  float64
	items []int
}

// gLive is a group item with its current uncovered-operator count and cost
// rate, rebuilt per greedy round.
type gLive struct {
	idx  int
	n    int
	rate float64
}

// Greedy is the Appendix-B greedy O(log n) approximation for instances with
// shared caches. It works on the minimization form: every operator must be
// covered exactly once, by a real cache or by itself (a zero-length cache of
// cost d_ij·c_ij and no group cost). Each round computes, for every sharing
// group, the cheapest cost rate D_r = (L_r + Σ_{c∈S} B_c) / (Σ_{c∈S} n_c)
// over prefix subsets S of the group's caches sorted by B_c/n_c (the claim
// in Appendix B shows a prefix is optimal), picks the best group, covers its
// operators, and repeats; overlapping choices are resolved afterwards by
// keeping the widest cache.
func Greedy(p *Problem) Result {
	var w Workspace
	return w.Greedy(p)
}

// Greedy is the Workspace-backed greedy covering; see the package function
// for the algorithm.
func (w *Workspace) Greedy(p *Problem) Result {
	// Build items and groups; group indexes are dense (0..len(GroupCosts)),
	// so the group lookup is a slice, not a map.
	w.gItems = w.gItems[:0]
	w.gGroups = w.gGroups[:0]
	w.gGroupIdx = growInts(w.gGroupIdx, len(p.GroupCosts))
	for i := range w.gGroupIdx {
		w.gGroupIdx[i] = -1
	}
	for i := range p.Cands {
		c := &p.Cands[i]
		proc := -c.Benefit
		for j := c.Start; j <= c.End; j++ {
			proc += p.OpCosts[c.Pipeline][j]
		}
		if proc < 0 {
			proc = 0
		}
		g := w.gGroupIdx[c.Group]
		if g < 0 {
			g = w.addGroup(p.GroupCosts[c.Group])
			w.gGroupIdx[c.Group] = g
		}
		w.gGroups[g].items = append(w.gGroups[g].items, len(w.gItems))
		w.gItems = append(w.gItems, gItem{cand: i, pipe: c.Pipeline, start: c.Start, end: c.End, proc: proc})
	}
	// Operator pseudo-caches: cover themselves, no group cost.
	for pipe, costs := range p.OpCosts {
		for pos, cost := range costs {
			g := w.addGroup(0)
			w.gGroups[g].items = append(w.gGroups[g].items, len(w.gItems))
			w.gItems = append(w.gItems, gItem{cand: -1, pipe: pipe, start: pos, end: pos, proc: cost})
		}
	}

	// Coverage as a flat bool array over (pipe, pos) with per-pipe offsets.
	w.gPipeOff = growInts(w.gPipeOff, len(p.OpCosts))
	totalOps := 0
	for i, costs := range p.OpCosts {
		w.gPipeOff[i] = totalOps
		totalOps += len(costs)
	}
	w.gCovered = growBools(w.gCovered, totalOps)
	coveredCount := 0

	w.gChosen = w.gChosen[:0]
	for coveredCount < totalOps {
		bestD := math.Inf(1)
		found := false
		for gi := range w.gGroups {
			g := &w.gGroups[gi]
			// Live items of this group with their current coverage.
			ls := w.gLive[:0]
			for _, ii := range g.items {
				if n := w.uncovered(&w.gItems[ii]); n > 0 {
					ls = append(ls, gLive{idx: ii, n: n, rate: w.gItems[ii].proc / float64(n)})
				}
			}
			w.gLive = ls
			if len(ls) == 0 {
				continue
			}
			// Insertion sort by rate: tiny inputs, no per-call closure.
			for i := 1; i < len(ls); i++ {
				for j := i; j > 0 && ls[j].rate < ls[j-1].rate; j-- {
					ls[j], ls[j-1] = ls[j-1], ls[j]
				}
			}
			sumB, sumN := g.cost, 0.0
			for k, l := range ls {
				sumB += w.gItems[l.idx].proc
				sumN += float64(l.n)
				if d := sumB / sumN; d < bestD {
					bestD = d
					found = true
					w.gBestSet = w.gBestSet[:0]
					for _, x := range ls[:k+1] {
						w.gBestSet = append(w.gBestSet, x.idx)
					}
				}
			}
		}
		if !found {
			break // nothing can cover the remainder (cannot happen: operators always can)
		}
		for _, ii := range w.gBestSet {
			it := &w.gItems[ii]
			base := w.gPipeOff[it.pipe]
			for j := it.start; j <= it.end; j++ {
				if !w.gCovered[base+j] {
					w.gCovered[base+j] = true
					coveredCount++
				}
			}
			if it.cand >= 0 {
				w.gChosen = append(w.gChosen, it.cand)
			}
		}
	}
	chosen := w.resolveOverlaps(p, w.gChosen)
	chosen = w.pruneNegative(p, chosen)
	sort.Ints(chosen)
	return Result{Chosen: chosen, Value: p.objective(chosen)}
}

// addGroup appends a group with the given cost, reusing a previously
// allocated slot (and its items capacity) when one exists.
func (w *Workspace) addGroup(cost float64) int {
	if len(w.gGroups) < cap(w.gGroups) {
		w.gGroups = w.gGroups[:len(w.gGroups)+1]
		g := &w.gGroups[len(w.gGroups)-1]
		g.cost = cost
		g.items = g.items[:0]
	} else {
		w.gGroups = append(w.gGroups, gGroup{cost: cost})
	}
	return len(w.gGroups) - 1
}

// uncovered counts the operators it still covers.
func (w *Workspace) uncovered(it *gItem) int {
	n := 0
	base := w.gPipeOff[it.pipe]
	for j := it.start; j <= it.end; j++ {
		if !w.gCovered[base+j] {
			n++
		}
	}
	return n
}

// resolveOverlaps keeps, among mutually overlapping chosen caches, the one
// covering the most operators (Appendix B), iterating until conflict-free.
// Sorts chosen in place; the result reuses a workspace buffer.
func (w *Workspace) resolveOverlaps(p *Problem, chosen []int) []int {
	sort.Slice(chosen, func(a, b int) bool {
		if oa, ob := p.Cands[chosen[a]].ops(), p.Cands[chosen[b]].ops(); oa != ob {
			return oa > ob
		}
		return chosen[a] < chosen[b]
	})
	out := w.gOut[:0]
	for _, i := range chosen {
		ok := true
		for _, j := range out {
			if i == j || p.Cands[i].overlaps(&p.Cands[j]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	w.gOut = out
	return out
}

// pruneNegative drops whole groups whose members' combined benefit does not
// pay for the group cost — the greedy covering can select caches that are
// cheaper than bare operators in the minimization form yet still carry
// negative net benefit relative to dropping them (operators then cover those
// positions for free in the maximization form). The result overwrites
// chosen's prefix (kept members preserve chosen order).
func (w *Workspace) pruneNegative(p *Problem, chosen []int) []int {
	w.groupSum = growFloats(w.groupSum, len(p.GroupCosts))
	for i := range w.groupSum {
		w.groupSum[i] = 0
	}
	for _, i := range chosen {
		if p.Cands[i].Benefit > 0 {
			w.groupSum[p.Cands[i].Group] += p.Cands[i].Benefit
		}
	}
	out := chosen[:0]
	for _, i := range chosen {
		g := p.Cands[i].Group
		if p.Cands[i].Benefit > 0 && w.groupSum[g] > p.GroupCosts[g] {
			out = append(out, i)
		}
	}
	return out
}

// resolveOverlaps and pruneNegative package-level wrappers for callers
// outside the workspace path (the randomized rounding pass).
func resolveOverlaps(p *Problem, chosen []int) []int {
	var w Workspace
	return w.resolveOverlaps(p, chosen)
}

func pruneNegative(p *Problem, chosen []int) []int {
	var w Workspace
	return w.pruneNegative(p, chosen)
}
