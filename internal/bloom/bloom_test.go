package bloom

import (
	"fmt"
	"math"
	"testing"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 3)
	for i := 0; i < 50; i++ {
		f.Add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 50; i++ {
		if !f.Contains(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestAddReportsPresence(t *testing.T) {
	f := New(4096, 2)
	if f.Add("x") {
		t.Fatal("first Add must report absent")
	}
	if !f.Add("x") {
		t.Fatal("second Add must report present")
	}
}

func TestFalsePositiveRate(t *testing.T) {
	// 1000 keys in 8×1000 bits with k=2: theoretical FPR ≈ (1−e^(−k n/m))^k
	// ≈ 2.2%. Allow generous slack.
	f := New(8000, 2)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("in-%d", i))
	}
	fp := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		if f.Contains(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / trials; rate > 0.08 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestEstimateDistinct(t *testing.T) {
	f := New(1<<14, 2)
	const n = 800
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("k-%d", i))
		f.Add(fmt.Sprintf("k-%d", i)) // duplicates must not inflate
	}
	est := f.EstimateDistinct()
	if math.Abs(est-n)/n > 0.15 {
		t.Fatalf("distinct estimate %.0f, want ≈ %d", est, n)
	}
}

func TestReset(t *testing.T) {
	f := New(256, 2)
	f.Add("a")
	if f.SetBits() == 0 {
		t.Fatal("no bits set after Add")
	}
	f.Reset()
	if f.SetBits() != 0 {
		t.Fatal("Reset left bits set")
	}
	if f.Contains("a") {
		t.Fatal("Reset did not clear key")
	}
	// Seeds survive Reset: re-adding yields the same bit pattern.
	f.Add("a")
	before := f.SetBits()
	f.Reset()
	f.Add("a")
	if f.SetBits() != before {
		t.Fatal("hash seeds changed across Reset")
	}
}

func TestSaturation(t *testing.T) {
	f := New(8, 1)
	for i := 0; i < 100; i++ {
		f.Add(fmt.Sprintf("k-%d", i))
	}
	if est := f.EstimateDistinct(); est != 8 {
		t.Fatalf("saturated estimate = %v, want bit count", est)
	}
}

func TestDegenerateSizes(t *testing.T) {
	f := New(0, 0) // clamps to 1 bit, 1 hash
	f.Add("x")
	if !f.Contains("x") {
		t.Fatal("degenerate filter lost key")
	}
	if f.Bits() != 1 || f.Hashes() != 1 {
		t.Fatalf("clamps wrong: bits=%d k=%d", f.Bits(), f.Hashes())
	}
}

// TestMaskMatchesModulo pins the power-of-two fast path to the modulo
// semantics: a masked filter and a one-bit-larger (non-power-of-two,
// modulo-path) filter must agree with a brute-force reimplementation on
// every probe position, so switching New between the two paths can never
// move a bit — profiler estimates derived from set-bit counts are the
// engine's adaptive decisions.
func TestMaskMatchesModulo(t *testing.T) {
	for _, nbits := range []int{1 << 10, 1<<10 + 1, 400, 1 << 16} {
		f := New(nbits, 2)
		ref := make(map[uint64]bool)
		for i := 0; i < 5000; i++ {
			key := []byte{byte(i), byte(i >> 8), byte(i * 7)}
			h1, h2 := HashBytes(key)
			f.AddHash(h1, h2)
			for j := 0; j < 2; j++ {
				ref[(h1+uint64(j)*h2)%uint64(nbits)] = true
			}
		}
		if got, want := f.SetBits(), len(ref); got != want {
			t.Fatalf("nbits=%d: %d set bits, brute force %d", nbits, got, want)
		}
		for pos := range ref {
			if f.bits[pos/64]&(1<<(pos%64)) == 0 {
				t.Fatalf("nbits=%d: position %d not set", nbits, pos)
			}
		}
	}
}
