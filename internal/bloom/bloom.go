// Package bloom implements the Bloom filter used by the profiler to estimate
// cache miss probabilities (Appendix A of the paper).
//
// The profiler hashes each cache-key probe of a window of Wd tuples into a
// filter with α·Wd bits; the number of set bits b estimates the number of
// distinct keys in the window, and b/Wd estimates miss_prob: every distinct
// key misses exactly once (its first occurrence) and hits thereafter.
package bloom

import (
	"math"

	"acache/internal/tuple"
)

// Filter is a fixed-size Bloom filter with k hash functions derived by
// double hashing from a single 64-bit hash (Kirsch–Mitzenmacher). Hashing is
// deterministically seeded, so fixed-seed workloads produce bit-identical
// profiler estimates across runs; flooding resistance is not a goal.
type Filter struct {
	bits  []uint64
	nbits uint64
	// mask is nbits−1 when nbits is a power of two, else 0: h & mask and
	// h % nbits are then the same position, and the AND keeps the 64-bit
	// divide off the shadow-tap path (the horizon filter is 2^16 bits).
	mask uint64
	k    int
	nset int // population count of set bits, maintained incrementally
}

// New creates a filter with at least nbits bits and k hash functions.
// k must be ≥ 1 and nbits ≥ 1.
func New(nbits int, k int) *Filter {
	if nbits < 1 {
		nbits = 1
	}
	if k < 1 {
		k = 1
	}
	words := (nbits + 63) / 64
	f := &Filter{
		bits:  make([]uint64, words),
		nbits: uint64(nbits),
		k:     k,
	}
	if f.nbits&(f.nbits-1) == 0 {
		f.mask = f.nbits - 1
	}
	return f
}

const (
	seed1 uint64 = 0x9ae16a3b2f90404f
	seed2 uint64 = 0xc949d7c7509e6557
)

// The byte hashing lives in the shared kernel (tuple.HashRawBytes and
// friends): the raw variants there are bit-identical to the implementation
// this package carried before deduplication, so profiler estimates — and
// every cached figure derived from them — are unchanged.

func (f *Filter) hash2(key string) (uint64, uint64) {
	h1 := tuple.MixWord(tuple.HashRawString(key, seed1), uint64(len(key)))
	h2 := tuple.MixWord(tuple.HashRawString(key, seed2), uint64(len(key)))
	// Guarantee h2 is odd so all k probes differ even when nbits is a
	// power of two.
	return h1, h2 | 1
}

func (f *Filter) hash2Bytes(key []byte) (uint64, uint64) {
	return HashBytes(key)
}

// HashBytes computes the double-hashing base pair (h1, h2) for a key. The
// pair is filter-independent — every filter derives its k probe positions
// from it — so a caller feeding the same key to several filters can hash
// once and pass the pair to AddHash on each, with bit-identical outcomes to
// calling AddBytes on every filter separately.
func HashBytes(key []byte) (uint64, uint64) {
	h1 := tuple.MixWord(tuple.HashRawBytes(key, seed1), uint64(len(key)))
	h2 := tuple.MixWord(tuple.HashRawBytes(key, seed2), uint64(len(key)))
	return h1, h2 | 1
}

// Add inserts key and reports whether it was possibly present before the
// insertion (true = all its bits were already set).
func (f *Filter) Add(key string) bool {
	h1, h2 := f.hash2(key)
	return f.add(h1, h2)
}

// AddBytes is Add for a key supplied as bytes (a scratch buffer on hot
// paths); it allocates nothing and matches Add for equal bytes.
func (f *Filter) AddBytes(key []byte) bool {
	h1, h2 := f.hash2Bytes(key)
	return f.add(h1, h2)
}

// AddHash inserts a key given its precomputed HashBytes pair, equivalent to
// AddBytes on the key that produced it. It lets a hot path that maintains
// several filters over the same key stream pay for one hash instead of one
// per filter.
func (f *Filter) AddHash(h1, h2 uint64) bool {
	return f.add(h1, h2)
}

func (f *Filter) add(h1, h2 uint64) bool {
	present := true
	for i := 0; i < f.k; i++ {
		pos := f.pos(h1 + uint64(i)*h2)
		word, mask := pos/64, uint64(1)<<(pos%64)
		if f.bits[word]&mask == 0 {
			present = false
			f.bits[word] |= mask
			f.nset++
		}
	}
	return present
}

func (f *Filter) pos(h uint64) uint64 {
	if f.mask != 0 {
		return h & f.mask
	}
	return h % f.nbits
}

// Contains reports whether key is possibly in the filter.
func (f *Filter) Contains(key string) bool {
	h1, h2 := f.hash2(key)
	return f.contains(h1, h2)
}

// ContainsBytes is Contains for a key supplied as bytes.
func (f *Filter) ContainsBytes(key []byte) bool {
	h1, h2 := f.hash2Bytes(key)
	return f.contains(h1, h2)
}

func (f *Filter) contains(h1, h2 uint64) bool {
	for i := 0; i < f.k; i++ {
		pos := f.pos(h1 + uint64(i)*h2)
		if f.bits[pos/64]&(uint64(1)<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// SetBits returns the number of set bits.
func (f *Filter) SetBits() int { return f.nset }

// Bits returns the filter size in bits.
func (f *Filter) Bits() int { return int(f.nbits) }

// Hashes returns the number of hash functions k.
func (f *Filter) Hashes() int { return f.k }

// Reset clears all bits, keeping the filter's allocation, so windows of
// probes reuse one filter.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.nset = 0
}

// EstimateDistinct estimates the number of distinct keys added since the last
// Reset using the standard Bloom-filter cardinality estimator
// n ≈ −(m/k)·ln(1 − b/m). For k = 1 and sparse filters this is close to the
// paper's simpler "b distinct keys" reading, but it stays accurate as the
// filter fills.
func (f *Filter) EstimateDistinct() float64 {
	m := float64(f.nbits)
	b := float64(f.nset)
	if b >= m {
		// Saturated: every probe looked distinct.
		return m
	}
	return -(m / float64(f.k)) * math.Log(1-b/m)
}
