package xjoin

import (
	"math"

	"acache/internal/cost"
	"acache/internal/query"
)

// Analytic tree planning: the paper chooses its XJoin baseline "by
// exhaustive search"; this file provides the cost-model flavor of that
// search, complementing the trial-measurement flavor the benchmark harness
// uses. Given per-stream statistics, it estimates each tree's unit-time
// processing cost analytically and returns the cheapest.

// Stats describes the workload as the planner needs it: per-relation update
// rates and window sizes, plus pairwise join selectivities (the probability
// that one tuple of each relation match).
type Stats struct {
	// Rates[i] is relation i's update rate (inserts + deletes per unit
	// time); relative values suffice.
	Rates []float64
	// Windows[i] is relation i's expected window cardinality.
	Windows []float64
	// Sel[i][j] is the pairwise join selectivity between relations i and
	// j; Sel[i][i] is ignored.
	Sel [][]float64
}

// cardinality estimates |⋈ rels| under independence: Π windows × Π pairwise
// selectivities over all crossing pairs.
func (s *Stats) cardinality(rels []int) float64 {
	card := 1.0
	for _, r := range rels {
		card *= s.Windows[r]
	}
	for i := 0; i < len(rels); i++ {
		for j := i + 1; j < len(rels); j++ {
			card *= s.Sel[rels[i]][rels[j]]
		}
	}
	return card
}

// deltaRate estimates the update rate of the join of rels: each relation's
// updates are amplified by the join of the others.
func (s *Stats) deltaRate(rels []int) float64 {
	total := 0.0
	for i, r := range rels {
		others := make([]int, 0, len(rels)-1)
		others = append(others, rels[:i]...)
		others = append(others, rels[i+1:]...)
		match := s.cardinality(others)
		for _, o := range others {
			match *= s.Sel[r][o]
		}
		total += s.Rates[r] * match
	}
	return total
}

// treeCost estimates the unit-time cost of running the tree: for every
// internal node, the deltas arriving from each side probe the other side
// and the node's materialization is maintained.
func (s *Stats) treeCost(t *Tree) float64 {
	_, c := s.nodeCost(t)
	return c
}

// nodeCost returns (delta rate of the subtree's join, cumulative unit-time
// cost of the subtree).
func (s *Stats) nodeCost(t *Tree) (float64, float64) {
	if t.Leaf() {
		return s.Rates[t.Rel], 0
	}
	ld, lc := s.nodeCost(t.Left)
	rd, rc := s.nodeCost(t.Right)
	probe := cost.Seconds(cost.IndexProbe)
	emit := cost.Seconds(cost.OutputTuple)
	insert := cost.Seconds(cost.HashInsert)
	out := s.deltaRate(t.Rels())
	// Each side's deltas probe the sibling once; every output delta is
	// materialized (insert) unless this is the root, but the planner does
	// not know rootness here — the constant offset is identical across
	// trees with the same output rate, so it does not affect the argmin.
	c := lc + rc + (ld+rd)*probe + out*(emit+insert)
	return out, c
}

// PlanBest returns the cheapest tree for q under the analytic cost model,
// breaking ties toward the first enumerated shape. It panics if stats
// dimensions do not match the query.
func PlanBest(q *query.Query, stats *Stats) *Tree {
	n := q.N()
	if len(stats.Rates) != n || len(stats.Windows) != n || len(stats.Sel) != n {
		panic("xjoin: stats dimensions do not match the query")
	}
	rels := make([]int, n)
	for i := range rels {
		rels[i] = i
	}
	var best *Tree
	bestCost := math.Inf(1)
	for _, t := range Enumerate(rels) {
		if c := stats.treeCost(t); c < bestCost {
			bestCost = c
			best = t
		}
	}
	return best
}

// MemoryEstimate predicts the tree's total materialized-subresult footprint
// in bytes under the stats, using the same accounting as MemoryBytes.
func (s *Stats) MemoryEstimate(t *Tree) float64 {
	if t.Leaf() {
		return 0
	}
	total := s.MemoryEstimate(t.Left) + s.MemoryEstimate(t.Right)
	// Only non-root internal nodes materialize; the caller invokes this on
	// the root, whose own materialization the executor skips — mirror that
	// by charging children only.
	charge := func(n *Tree) float64 {
		if n.Leaf() {
			return 0
		}
		rels := n.Rels()
		return s.cardinality(rels) * float64(len(rels)*32)
	}
	return total + charge(t.Left) + charge(t.Right)
}
