package xjoin

import (
	"math/rand"
	"testing"

	"acache/internal/cost"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tuple"
)

func BenchmarkXJoinProcess(b *testing.B) {
	q, err := benchClique4()
	if err != nil {
		b.Fatal(err)
	}
	x := New(q, LeftDeep(0, 1, 2, 3), &cost.Meter{})
	rng := rand.New(rand.NewSource(1))
	live := make([][]tuple.Tuple, 4)
	var ups []stream.Update
	for len(ups) < 4096 {
		rel := rng.Intn(4)
		if len(live[rel]) > 50 && rng.Intn(2) == 0 {
			j := rng.Intn(len(live[rel]))
			tp := live[rel][j]
			live[rel] = append(live[rel][:j:j], live[rel][j+1:]...)
			ups = append(ups, stream.Update{Op: stream.Delete, Rel: rel, Tuple: tp})
			continue
		}
		tp := tuple.Tuple{rng.Int63n(128)}
		live[rel] = append(live[rel], tp)
		ups = append(ups, stream.Update{Op: stream.Insert, Rel: rel, Tuple: tp})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%len(ups) == 0 {
			b.StopTimer()
			x = New(q, LeftDeep(0, 1, 2, 3), &cost.Meter{})
			b.StartTimer()
		}
		x.Process(ups[i%len(ups)])
	}
}

func BenchmarkEnumerate5(b *testing.B) {
	rels := []int{0, 1, 2, 3, 4}
	for i := 0; i < b.N; i++ {
		if got := len(Enumerate(rels)); got != 105 {
			b.Fatalf("trees = %d", got)
		}
	}
}

func benchClique4() (*query.Query, error) {
	schemas := make([]*tuple.Schema, 4)
	var preds []query.Pred
	for i := 0; i < 4; i++ {
		schemas[i] = tuple.RelationSchema(i, "A")
		if i > 0 {
			preds = append(preds, query.Pred{
				Left:  tuple.Attr{Rel: 0, Name: "A"},
				Right: tuple.Attr{Rel: i, Name: "A"},
			})
		}
	}
	return query.New(schemas, preds)
}
