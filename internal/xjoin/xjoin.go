// Package xjoin implements the XJoin baseline [28] the paper compares
// against: a binary tree of two-way joins over the windowed relations, with
// a fully materialized join subresult at every internal node except the
// root. Updates propagate from the changed leaf to the root, probing the
// sibling subtree's materialization (or leaf store) at each ancestor and
// incrementally maintaining the materializations along the way.
package xjoin

import (
	"fmt"
	"sort"

	"acache/internal/cost"
	"acache/internal/query"
	"acache/internal/relation"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// Tree is a binary join-tree shape: leaves are relation indexes.
type Tree struct {
	Rel         int // leaf relation; valid when Left == nil
	Left, Right *Tree
}

// Leaf reports whether the node is a leaf.
func (t *Tree) Leaf() bool { return t.Left == nil }

// Rels returns the relations under the node, sorted.
func (t *Tree) Rels() []int {
	var out []int
	var walk func(n *Tree)
	walk = func(n *Tree) {
		if n.Leaf() {
			out = append(out, n.Rel)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t)
	sort.Ints(out)
	return out
}

func (t *Tree) String() string {
	if t.Leaf() {
		return fmt.Sprintf("R%d", t.Rel+1)
	}
	return fmt.Sprintf("(%s ⋈ %s)", t.Left.String(), t.Right.String())
}

// LeftDeep builds the left-deep tree joining rels in the given order —
// Figure 1(b)'s plan shape.
func LeftDeep(rels ...int) *Tree {
	t := &Tree{Rel: rels[0]}
	for _, r := range rels[1:] {
		t = &Tree{Left: t, Right: &Tree{Rel: r}}
	}
	return t
}

// Enumerate returns every binary tree shape over the given relation set
// ((2n−3)!! trees: 15 for n = 4). Trees that differ only by swapping a
// node's children are enumerated once (left subtree always holds the
// smallest relation of the node).
func Enumerate(rels []int) []*Tree {
	if len(rels) == 1 {
		return []*Tree{{Rel: rels[0]}}
	}
	var out []*Tree
	// Split rels into nonempty (left, right) with rels[0] ∈ left to avoid
	// mirror duplicates.
	n := len(rels)
	for mask := 0; mask < 1<<(n-1); mask++ {
		var left, right []int
		left = append(left, rels[0])
		for i := 1; i < n; i++ {
			if mask&(1<<(i-1)) != 0 {
				left = append(left, rels[i])
			} else {
				right = append(right, rels[i])
			}
		}
		if len(right) == 0 {
			continue
		}
		for _, l := range Enumerate(left) {
			for _, r := range Enumerate(right) {
				out = append(out, &Tree{Left: l, Right: r})
			}
		}
	}
	return out
}

// mat is a materialized join subresult: a multiset of composite tuples with
// one hash index keyed on the classes its parent joins on.
type mat struct {
	schema  *tuple.Schema
	keyCols []int // parent-probe key columns; nil at the root
	buckets map[tuple.Key][]tuple.Tuple
	byVal   map[tuple.Key]int // value multiset, for memory-free counting
	count   int
}

func (m *mat) insert(t tuple.Tuple, meter *cost.Meter) {
	if m.keyCols != nil {
		k := tuple.KeyOf(t, m.keyCols)
		m.buckets[k] = append(m.buckets[k], t)
		meter.Charge(cost.HashInsert)
	}
	m.count++
}

func (m *mat) remove(t tuple.Tuple, meter *cost.Meter) {
	if m.keyCols != nil {
		k := tuple.KeyOf(t, m.keyCols)
		b := m.buckets[k]
		for i := range b {
			if b[i].Equal(t) {
				b[i] = b[len(b)-1]
				b = b[:len(b)-1]
				break
			}
		}
		if len(b) == 0 {
			delete(m.buckets, k)
		} else {
			m.buckets[k] = b
		}
		meter.Charge(cost.HashInsert)
	}
	m.count--
}

func (m *mat) probe(k tuple.Key, meter *cost.Meter) []tuple.Tuple {
	meter.Charge(cost.IndexProbe)
	return m.buckets[k]
}

// bytes returns the materialization's accounted memory: the composite
// tuples at the paper's 32-byte leaf-tuple granularity plus bucket slots.
func (m *mat) bytes(nrels int) int {
	return m.count*nrels*relation.TupleBytes + len(m.buckets)*8
}

// node is a compiled tree node.
type node struct {
	tree        *Tree
	parent      *node
	left, right *node
	rels        []int
	schema      *tuple.Schema
	m           *mat // nil for leaves and for the root
	// join compilation for internal nodes: classes shared between the two
	// children, plus each side's key columns in its own schema.
	classes  []int
	leftKey  []int
	rightKey []int
	// leaf fields
	rel       int
	leafIndex []string // index attribute names on the relation store
}

// Result mirrors join.Result.
type Result struct {
	Outputs int
	Units   cost.Units
}

// XJoin executes one tree over its own relation stores.
type XJoin struct {
	q      *query.Query
	meter  *cost.Meter
	stores []*relation.Store
	root   *node
	leaves []*node // by relation index
}

// New compiles tree for q. Every internal node except the root materializes
// its subresult.
func New(q *query.Query, tree *Tree, meter *cost.Meter) *XJoin {
	x := &XJoin{q: q, meter: meter}
	x.stores = make([]*relation.Store, q.N())
	for i := 0; i < q.N(); i++ {
		x.stores[i] = relation.NewStore(i, q.Schema(i), meter)
	}
	x.leaves = make([]*node, q.N())
	x.root = x.compile(tree, nil)
	return x
}

func (x *XJoin) compile(t *Tree, parent *node) *node {
	n := &node{tree: t, parent: parent, rels: t.Rels()}
	if t.Leaf() {
		n.rel = t.Rel
		n.schema = x.q.Schema(t.Rel)
		x.leaves[t.Rel] = n
		return n
	}
	n.left = x.compile(t.Left, n)
	n.right = x.compile(t.Right, n)
	n.schema = n.left.schema.Concat(n.right.schema)
	n.classes = x.q.SharedClasses(n.left.rels, n.right.rels)
	n.leftKey = x.q.RepresentativeCols(n.left.schema, n.classes)
	n.rightKey = x.q.RepresentativeCols(n.right.schema, n.classes)
	// Index each child for probes from this node: leaves get store
	// indexes; internal children get their materialization keyed here.
	x.prepareChild(n.left, n.classes)
	x.prepareChild(n.right, n.classes)
	if parent != nil {
		pClasses := x.parentClasses(parent)
		n.m = &mat{
			schema:  n.schema,
			keyCols: x.q.RepresentativeCols(n.schema, pClasses),
			buckets: make(map[tuple.Key][]tuple.Tuple),
		}
	}
	return n
}

// parentClasses returns the classes the parent joins its children on.
func (x *XJoin) parentClasses(parent *node) []int {
	return x.q.SharedClasses(parent.tree.Left.Rels(), parent.tree.Right.Rels())
}

func (x *XJoin) prepareChild(c *node, classes []int) {
	if c.Leaf() {
		var names []string
		for _, cl := range classes {
			names = append(names, x.q.ClassAttrsOf(c.rel, cl)...)
		}
		if len(names) > 0 {
			x.stores[c.rel].CreateIndex(names...)
			c.leafIndex = names
		}
		return
	}
	// Internal child: its materialization was keyed when compiled (the
	// parent's classes were computed there), nothing further needed.
}

// Leaf reports whether a node is a leaf (helper for node).
func (n *node) Leaf() bool { return n.tree.Leaf() }

// probeChild returns the child's tuples matching the given key values.
func (x *XJoin) probeChild(c *node, key tuple.Key, classes []int) []tuple.Tuple {
	if c.Leaf() {
		if c.leafIndex == nil {
			// Cross join at this node: scan everything.
			var out []tuple.Tuple
			x.stores[c.rel].Scan(func(t tuple.Tuple) bool {
				out = append(out, t)
				return true
			})
			return out
		}
		idx := x.stores[c.rel].Index(c.leafIndex...)
		// The store index key is ordered by sorted attribute names, each
		// attribute keyed by its class value. Rebuild the probe key in
		// that order.
		vals := key.Values()
		valOf := make(map[int]tuple.Value, len(classes))
		for i, cl := range classes {
			valOf[cl] = vals[i]
		}
		var probe []tuple.Value
		for _, col := range idx.Cols() {
			attr := x.q.Schema(c.rel).Col(col)
			cl, _ := x.q.ClassOf(attr)
			probe = append(probe, valOf[cl])
		}
		return x.stores[c.rel].Probe(idx, tuple.KeyOfValues(probe))
	}
	return c.m.probe(key, x.meter)
}

// Process runs one update through the tree and returns the number of result
// deltas emitted at the root.
func (x *XJoin) Process(u stream.Update) Result {
	sw := cost.NewStopwatch(x.meter)
	leaf := x.leaves[u.Rel]
	delta := []tuple.Tuple{u.Tuple}
	n := leaf
	for n.parent != nil {
		p := n.parent
		var sibling *node
		var myKey []int
		fromLeft := p.left == n
		if fromLeft {
			sibling = p.right
			myKey = p.leftKey
		} else {
			sibling = p.left
			myKey = p.rightKey
		}
		var next []tuple.Tuple
		for _, d := range delta {
			x.meter.ChargeN(cost.KeyExtract, len(myKey))
			k := tuple.KeyOf(d, myKey)
			for _, s := range x.probeChild(sibling, k, p.classes) {
				x.meter.Charge(cost.OutputTuple)
				if fromLeft {
					next = append(next, d.Concat(s))
				} else {
					next = append(next, s.Concat(d))
				}
			}
		}
		delta = next
		if p.m != nil {
			for _, d := range delta {
				if u.Op == stream.Insert {
					p.m.insert(d, x.meter)
				} else {
					p.m.remove(d, x.meter)
				}
			}
		}
		n = p
		if len(delta) == 0 {
			break
		}
	}
	if u.Op == stream.Insert {
		x.stores[u.Rel].Insert(u.Tuple)
	} else {
		x.stores[u.Rel].Delete(u.Tuple)
	}
	outputs := 0
	if n == x.root {
		outputs = len(delta)
	}
	return Result{Outputs: outputs, Units: sw.Elapsed()}
}

// MemoryBytes returns the total bytes of materialized join subresults — the
// quantity Figure 13's x-axis budgets.
func (x *XJoin) MemoryBytes() int {
	total := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n.Leaf() {
			return
		}
		if n.m != nil {
			total += n.m.bytes(len(n.rels))
		}
		walk(n.left)
		walk(n.right)
	}
	walk(x.root)
	return total
}

// Store exposes a relation store (tests).
func (x *XJoin) Store(rel int) *relation.Store { return x.stores[rel] }

// Meter returns the cost meter all of this XJoin's work is charged to.
func (x *XJoin) Meter() *cost.Meter { return x.meter }

// Tree returns the executed tree.
func (x *XJoin) Tree() *Tree { return x.root.tree }
