package xjoin

import (
	"testing"

	"acache/internal/cost"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/synth"
)

func uniformStats(n int, rate, window, sel float64) *Stats {
	s := &Stats{
		Rates:   make([]float64, n),
		Windows: make([]float64, n),
		Sel:     make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		s.Rates[i] = rate
		s.Windows[i] = window
		s.Sel[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				s.Sel[i][j] = sel
			}
		}
	}
	return s
}

func TestCardinalityAndDeltaRate(t *testing.T) {
	s := uniformStats(3, 2, 100, 0.01)
	// |R1⋈R2| = 100×100×0.01 = 100.
	if got := s.cardinality([]int{0, 1}); got != 100 {
		t.Fatalf("cardinality = %v", got)
	}
	// Delta rate of R1⋈R2: each side's updates match 100×0.01 = 1 partner.
	if got := s.deltaRate([]int{0, 1}); got != 4 {
		t.Fatalf("deltaRate = %v, want 2×(2×1)", got)
	}
}

func TestPlanBestAvoidsHotLeafDeepening(t *testing.T) {
	// Relation 0 is 50× hotter than the rest: the best tree keeps it
	// joined LAST (at the root), so its updates probe one materialization
	// instead of cascading through every node.
	s := uniformStats(4, 1, 200, 0.005)
	s.Rates[0] = 50
	q := clique4(t)
	best := PlanBest(q, s)
	// Relation 0 must be a direct child of the root.
	root := best
	if root.Leaf() {
		t.Fatal("root is a leaf")
	}
	hotAtRoot := (root.Left.Leaf() && root.Left.Rel == 0) || (root.Right.Leaf() && root.Right.Rel == 0)
	if !hotAtRoot {
		t.Fatalf("hot relation buried in %v", best)
	}
}

func TestPlanBestAgreesWithTrialMeasurementOnSkew(t *testing.T) {
	// Measure every tree on a skewed workload and check the analytic
	// choice lands in the top third of the measured ranking — cost models
	// need not pick the exact winner, but must not pick a loser.
	q := clique4(t)
	build := func() *stream.Source {
		rels := make([]stream.RelStream, 4)
		for i := range rels {
			rate := 1.0
			if i == 0 {
				rate = 20
			}
			rels[i] = stream.RelStream{
				Gen:        synth.Tuples(synth.Uniform(0, 300, int64(40+i))),
				WindowSize: 150,
				Rate:       rate,
			}
		}
		return stream.NewSource(rels)
	}
	type ranked struct {
		tree *Tree
		rate float64
	}
	var all []ranked
	for _, tr := range Enumerate([]int{0, 1, 2, 3}) {
		x := New(q, tr, &cost.Meter{})
		src := build()
		for src.TotalAppends() < 2000 {
			x.Process(src.Next())
		}
		start := x.Meter().Total()
		sa := src.TotalAppends()
		for src.TotalAppends() < sa+6000 {
			x.Process(src.Next())
		}
		all = append(all, ranked{tree: tr, rate: cost.Rate(int(src.TotalAppends()-sa), x.Meter().Total()-start)})
	}
	s := uniformStats(4, 1, 150, 1.0/300)
	s.Rates[0] = 20
	best := PlanBest(q, s)
	// Rank of the analytic choice among measured rates.
	var bestRate float64
	for _, r := range all {
		if r.tree.String() == best.String() {
			bestRate = r.rate
		}
	}
	better := 0
	for _, r := range all {
		if r.rate > bestRate {
			better++
		}
	}
	if better > len(all)/3 {
		t.Fatalf("analytic choice %v ranked %d of %d (rate %.0f)", best, better+1, len(all), bestRate)
	}
}

func TestMemoryEstimateTracksActual(t *testing.T) {
	q := clique4(t)
	tr := LeftDeep(0, 1, 2, 3)
	x := New(q, tr, &cost.Meter{})
	src := stream.NewSource([]stream.RelStream{
		{Gen: synth.Tuples(synth.Uniform(0, 50, 1)), WindowSize: 100, Rate: 1},
		{Gen: synth.Tuples(synth.Uniform(0, 50, 2)), WindowSize: 100, Rate: 1},
		{Gen: synth.Tuples(synth.Uniform(0, 50, 3)), WindowSize: 100, Rate: 1},
		{Gen: synth.Tuples(synth.Uniform(0, 50, 4)), WindowSize: 100, Rate: 1},
	})
	for src.TotalAppends() < 3000 {
		x.Process(src.Next())
	}
	s := uniformStats(4, 1, 100, 1.0/50)
	est := s.MemoryEstimate(tr)
	got := float64(x.MemoryBytes())
	if got == 0 || est == 0 {
		t.Fatalf("estimate %v, actual %v", est, got)
	}
	if est < got/4 || est > got*4 {
		t.Fatalf("memory estimate %v not within 4× of actual %v", est, got)
	}
}

func clique4(t *testing.T) *query.Query { return fourWayClique(t) }
