package xjoin

import (
	"math/rand"
	"testing"

	"acache/internal/cost"
	"acache/internal/oracle"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tuple"
)

func threeWay(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.New(
		[]*tuple.Schema{
			tuple.RelationSchema(0, "A"),
			tuple.RelationSchema(1, "A", "B"),
			tuple.RelationSchema(2, "B"),
		},
		[]query.Pred{
			{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
			{Left: tuple.Attr{Rel: 1, Name: "B"}, Right: tuple.Attr{Rel: 2, Name: "B"}},
		},
	)
	if err != nil {
		t.Fatalf("query.New: %v", err)
	}
	return q
}

func fourWayClique(t *testing.T) *query.Query {
	t.Helper()
	schemas := make([]*tuple.Schema, 4)
	var preds []query.Pred
	for i := 0; i < 4; i++ {
		schemas[i] = tuple.RelationSchema(i, "A")
		if i > 0 {
			preds = append(preds, query.Pred{
				Left:  tuple.Attr{Rel: 0, Name: "A"},
				Right: tuple.Attr{Rel: i, Name: "A"},
			})
		}
	}
	q, err := query.New(schemas, preds)
	if err != nil {
		t.Fatalf("query.New: %v", err)
	}
	return q
}

func randomUpdates(rng *rand.Rand, q *query.Query, count int, domain int64) []stream.Update {
	live := make([][]tuple.Tuple, q.N())
	var ups []stream.Update
	for len(ups) < count {
		rel := rng.Intn(q.N())
		if len(live[rel]) > 3 && rng.Intn(2) == 0 {
			i := rng.Intn(len(live[rel]))
			tp := live[rel][i]
			live[rel] = append(live[rel][:i:i], live[rel][i+1:]...)
			ups = append(ups, stream.Update{Op: stream.Delete, Rel: rel, Tuple: tp})
			continue
		}
		tp := make(tuple.Tuple, q.Schema(rel).Len())
		for c := range tp {
			tp[c] = rng.Int63n(domain)
		}
		live[rel] = append(live[rel], tp)
		ups = append(ups, stream.Update{Op: stream.Insert, Rel: rel, Tuple: tp})
	}
	return ups
}

func TestEnumerateCounts(t *testing.T) {
	// (2n−3)!! unordered binary trees: n=2 → 1, n=3 → 3, n=4 → 15.
	for _, tc := range []struct{ n, want int }{{2, 1}, {3, 3}, {4, 15}} {
		rels := make([]int, tc.n)
		for i := range rels {
			rels[i] = i
		}
		if got := len(Enumerate(rels)); got != tc.want {
			t.Fatalf("Enumerate(%d rels) = %d trees, want %d", tc.n, got, tc.want)
		}
	}
}

func TestLeftDeepShape(t *testing.T) {
	tr := LeftDeep(0, 1, 2)
	if tr.String() != "((R1 ⋈ R2) ⋈ R3)" {
		t.Fatalf("tree = %s", tr.String())
	}
}

func TestXJoinMatchesOracleAllTrees3Way(t *testing.T) {
	q := threeWay(t)
	for _, tr := range Enumerate([]int{0, 1, 2}) {
		meter := &cost.Meter{}
		x := New(q, tr, meter)
		o := oracle.New(q)
		rng := rand.New(rand.NewSource(21))
		for seq, u := range randomUpdates(rng, q, 500, 5) {
			u.Seq = uint64(seq)
			res := x.Process(u)
			want := o.Process(u)
			if res.Outputs != len(want) {
				t.Fatalf("tree %s update %d %v: got %d outputs, oracle %d",
					tr, seq, u, res.Outputs, len(want))
			}
		}
	}
}

func TestXJoinMatchesOracle4WayBushy(t *testing.T) {
	q := fourWayClique(t)
	// A bushy tree: (R1 ⋈ R2) ⋈ (R3 ⋈ R4).
	tr := &Tree{
		Left:  &Tree{Left: &Tree{Rel: 0}, Right: &Tree{Rel: 1}},
		Right: &Tree{Left: &Tree{Rel: 2}, Right: &Tree{Rel: 3}},
	}
	meter := &cost.Meter{}
	x := New(q, tr, meter)
	o := oracle.New(q)
	rng := rand.New(rand.NewSource(22))
	for seq, u := range randomUpdates(rng, q, 600, 4) {
		u.Seq = uint64(seq)
		res := x.Process(u)
		want := o.Process(u)
		if res.Outputs != len(want) {
			t.Fatalf("update %d %v: got %d outputs, oracle %d", seq, u, res.Outputs, len(want))
		}
	}
}

func TestXJoinMemoryAccounting(t *testing.T) {
	q := threeWay(t)
	tr := LeftDeep(0, 1, 2)
	meter := &cost.Meter{}
	x := New(q, tr, meter)
	if x.MemoryBytes() != 0 {
		t.Fatalf("fresh XJoin memory = %d, want 0", x.MemoryBytes())
	}
	// Insert a joining pair: the R1⋈R2 materialization holds one composite.
	x.Process(stream.Update{Op: stream.Insert, Rel: 0, Tuple: tuple.Tuple{1}})
	x.Process(stream.Update{Op: stream.Insert, Rel: 1, Tuple: tuple.Tuple{1, 9}})
	m := x.MemoryBytes()
	if m <= 0 {
		t.Fatalf("memory after materialization = %d, want > 0", m)
	}
	// Deleting either side empties the materialization again.
	x.Process(stream.Update{Op: stream.Delete, Rel: 1, Tuple: tuple.Tuple{1, 9}})
	if x.MemoryBytes() != 0 {
		t.Fatalf("memory after delete = %d, want 0", x.MemoryBytes())
	}
}

func TestXJoinWindowChurnKeepsMaterializationsExact(t *testing.T) {
	// After arbitrary churn, each internal materialization must equal the
	// oracle's join of its subtree.
	q := fourWayClique(t)
	tr := &Tree{
		Left:  &Tree{Left: &Tree{Rel: 0}, Right: &Tree{Rel: 1}},
		Right: &Tree{Left: &Tree{Rel: 2}, Right: &Tree{Rel: 3}},
	}
	meter := &cost.Meter{}
	x := New(q, tr, meter)
	o := oracle.New(q)
	rng := rand.New(rand.NewSource(23))
	for seq, u := range randomUpdates(rng, q, 400, 4) {
		u.Seq = uint64(seq)
		x.Process(u)
		o.Process(u)
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n.Leaf() {
			return
		}
		if n.m != nil {
			want := len(o.SegmentJoin(n.rels))
			if n.m.count != want {
				t.Fatalf("node %s materialization holds %d tuples, oracle %d",
					n.tree, n.m.count, want)
			}
		}
		walk(n.left)
		walk(n.right)
	}
	walk(x.root)
}
