package cql

import (
	"fmt"
	"sort"
	"strconv"
)

// WindowKind distinguishes the FROM-clause window specifications.
type WindowKind int

const (
	// Unbounded: a plain relation fed by explicit inserts and deletes.
	Unbounded WindowKind = iota
	// Rows: a count-based sliding window, `[ROWS n]`.
	Rows
	// Range: a time-based sliding window, `[RANGE n]`.
	Range
	// Partitioned: a per-partition count window, `[PARTITION BY a ROWS n]`.
	Partitioned
)

// Relation is one FROM-clause element.
type Relation struct {
	Name string
	// Attrs lists the relation's attributes: the declared list when the
	// query carries one, otherwise every attribute the WHERE clause
	// references for this relation, in first-reference order.
	Attrs []string
	// Window and N describe the window specification; N is the row count
	// or the range span. PartitionBy is the partitioning attribute for
	// Partitioned windows.
	Window      WindowKind
	N           int64
	PartitionBy string
}

// Ref is a rel.attr attribute reference.
type Ref struct {
	Rel, Attr string
}

func (r Ref) String() string { return r.Rel + "." + r.Attr }

// Pred is one equality predicate of the WHERE conjunction.
type Pred struct {
	Left, Right Ref
}

// Theta is one non-equality predicate of the WHERE conjunction; Op is one
// of "<", "<=", ">", ">=", "!=".
type Theta struct {
	Left  Ref
	Op    string
	Right Ref
}

// Statement is a parsed SELECT * FROM … WHERE … continuous query.
type Statement struct {
	Relations []Relation
	Preds     []Pred
	Thetas    []Theta
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("cql: expected %v, got %q at offset %d", kind, t.text, t.pos)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !t.keyword(kw) {
		return fmt.Errorf("cql: expected %s, got %q at offset %d", kw, t.text, t.pos)
	}
	return nil
}

// Parse parses one continuous query statement.
func Parse(src string) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokStar); err != nil {
		return nil, fmt.Errorf("%w (only SELECT * is supported: stream joins emit whole result tuples)", err)
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	st := &Statement{}
	for {
		rel, err := p.parseRelation()
		if err != nil {
			return nil, err
		}
		st.Relations = append(st.Relations, rel)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.peek().keyword("WHERE") {
		p.next()
		for {
			if err := p.parsePredInto(st); err != nil {
				return nil, err
			}
			if p.peek().keyword("AND") {
				p.next()
				continue
			}
			break
		}
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("cql: trailing input %q at offset %d", t.text, t.pos)
	}
	return st, p.finish(st)
}

func (p *parser) parseRelation() (Relation, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return Relation{}, err
	}
	if isKeyword(name.text) {
		return Relation{}, fmt.Errorf("cql: expected relation name, got keyword %q at offset %d", name.text, name.pos)
	}
	rel := Relation{Name: name.text}
	// Optional attribute declaration: (A, B, …).
	if p.peek().kind == tokLParen {
		p.next()
		for {
			a, err := p.expect(tokIdent)
			if err != nil {
				return rel, err
			}
			rel.Attrs = append(rel.Attrs, a.text)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return rel, err
		}
	}
	// Optional window: [ROWS n] | [RANGE n] | [PARTITION BY a ROWS n] |
	// [UNBOUNDED].
	if p.peek().kind == tokLBracket {
		p.next()
		spec := p.next()
		switch {
		case spec.keyword("PARTITION"):
			if err := p.expectKeyword("BY"); err != nil {
				return rel, err
			}
			attr, err := p.expect(tokIdent)
			if err != nil {
				return rel, err
			}
			if err := p.expectKeyword("ROWS"); err != nil {
				return rel, err
			}
			num, err := p.expect(tokNumber)
			if err != nil {
				return rel, err
			}
			n, err := strconv.ParseInt(num.text, 10, 64)
			if err != nil || n <= 0 {
				return rel, fmt.Errorf("cql: window size %q at offset %d must be a positive integer", num.text, num.pos)
			}
			rel.Window = Partitioned
			rel.N = n
			rel.PartitionBy = attr.text
		case spec.keyword("ROWS"), spec.keyword("RANGE"):
			num, err := p.expect(tokNumber)
			if err != nil {
				return rel, err
			}
			n, err := strconv.ParseInt(num.text, 10, 64)
			if err != nil || n <= 0 {
				return rel, fmt.Errorf("cql: window size %q at offset %d must be a positive integer", num.text, num.pos)
			}
			rel.N = n
			if spec.keyword("ROWS") {
				rel.Window = Rows
			} else {
				rel.Window = Range
			}
		case spec.keyword("UNBOUNDED"):
			rel.Window = Unbounded
		default:
			return rel, fmt.Errorf("cql: expected ROWS, RANGE, PARTITION BY, or UNBOUNDED, got %q at offset %d", spec.text, spec.pos)
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return rel, err
		}
	}
	return rel, nil
}

func (p *parser) parsePredInto(st *Statement) error {
	l, err := p.parseRef()
	if err != nil {
		return err
	}
	op := p.next()
	switch op.kind {
	case tokEq:
		r, err := p.parseRef()
		if err != nil {
			return err
		}
		st.Preds = append(st.Preds, Pred{Left: l, Right: r})
		return nil
	case tokCmp:
		r, err := p.parseRef()
		if err != nil {
			return err
		}
		st.Thetas = append(st.Thetas, Theta{Left: l, Op: op.text, Right: r})
		return nil
	default:
		return fmt.Errorf("cql: expected a comparison after %v, got %q at offset %d", l, op.text, op.pos)
	}
}

func (p *parser) parseRef() (Ref, error) {
	rel, err := p.expect(tokIdent)
	if err != nil {
		return Ref{}, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return Ref{}, fmt.Errorf("cql: predicates are Rel.Attr = Rel.Attr equalities: %w", err)
	}
	attr, err := p.expect(tokIdent)
	if err != nil {
		return Ref{}, err
	}
	return Ref{Rel: rel.text, Attr: attr.text}, nil
}

// finish validates the statement and infers undeclared attribute lists from
// the WHERE clause.
func (p *parser) finish(st *Statement) error {
	if len(st.Relations) < 2 {
		return fmt.Errorf("cql: a stream join needs at least 2 relations, got %d", len(st.Relations))
	}
	byName := make(map[string]int)
	for i, r := range st.Relations {
		if _, dup := byName[r.Name]; dup {
			return fmt.Errorf("cql: duplicate relation %q in FROM", r.Name)
		}
		byName[r.Name] = i
	}
	// Collect referenced attributes per relation, in reference order.
	referenced := make(map[string][]string)
	seen := make(map[Ref]bool)
	note := func(r Ref) error {
		if _, ok := byName[r.Rel]; !ok {
			return fmt.Errorf("cql: predicate references unknown relation %q", r.Rel)
		}
		if !seen[r] {
			seen[r] = true
			referenced[r.Rel] = append(referenced[r.Rel], r.Attr)
		}
		return nil
	}
	for _, pr := range st.Preds {
		if err := note(pr.Left); err != nil {
			return err
		}
		if err := note(pr.Right); err != nil {
			return err
		}
	}
	for _, th := range st.Thetas {
		if err := note(th.Left); err != nil {
			return err
		}
		if err := note(th.Right); err != nil {
			return err
		}
	}
	for i := range st.Relations {
		r := &st.Relations[i]
		if r.Window == Partitioned {
			// The partition attribute is part of the relation's schema even
			// when not referenced by a predicate.
			found := false
			for _, a := range referenced[r.Name] {
				if a == r.PartitionBy {
					found = true
				}
			}
			for _, a := range r.Attrs {
				if a == r.PartitionBy {
					found = true
				}
			}
			if !found {
				if r.Attrs != nil {
					return fmt.Errorf("cql: relation %q partitions by undeclared attribute %q", r.Name, r.PartitionBy)
				}
				referenced[r.Name] = append(referenced[r.Name], r.PartitionBy)
			}
		}
		if r.Attrs == nil {
			r.Attrs = referenced[r.Name]
			if r.Attrs == nil {
				return fmt.Errorf("cql: relation %q declares no attributes and none can be inferred from WHERE", r.Name)
			}
			continue
		}
		// Declared lists must cover every reference.
		declared := make(map[string]bool, len(r.Attrs))
		for _, a := range r.Attrs {
			if declared[a] {
				return fmt.Errorf("cql: relation %q declares attribute %q twice", r.Name, a)
			}
			declared[a] = true
		}
		for _, a := range referenced[r.Name] {
			if !declared[a] {
				return fmt.Errorf("cql: predicate references %s.%s but %q declares only %v",
					r.Name, a, r.Name, r.Attrs)
			}
		}
	}
	return nil
}

func isKeyword(s string) bool {
	for _, kw := range []string{"SELECT", "FROM", "WHERE", "AND", "ROWS", "RANGE", "UNBOUNDED", "PARTITION", "BY"} {
		if (token{kind: tokIdent, text: s}).keyword(kw) {
			return true
		}
	}
	return false
}

// String renders the statement back to canonical CQL.
func (st *Statement) String() string {
	out := "SELECT * FROM "
	for i, r := range st.Relations {
		if i > 0 {
			out += ", "
		}
		out += r.Name + " ("
		attrs := append([]string(nil), r.Attrs...)
		sort.Strings(attrs)
		for j, a := range attrs {
			if j > 0 {
				out += ", "
			}
			out += a
		}
		out += ")"
		switch r.Window {
		case Rows:
			out += fmt.Sprintf(" [ROWS %d]", r.N)
		case Range:
			out += fmt.Sprintf(" [RANGE %d]", r.N)
		case Partitioned:
			out += fmt.Sprintf(" [PARTITION BY %s ROWS %d]", r.PartitionBy, r.N)
		}
	}
	first := true
	sep := func() string {
		if first {
			first = false
			return " WHERE "
		}
		return " AND "
	}
	for _, pr := range st.Preds {
		out += sep() + pr.Left.String() + " = " + pr.Right.String()
	}
	for _, th := range st.Thetas {
		out += sep() + th.Left.String() + " " + th.Op + " " + th.Right.String()
	}
	return out
}
