package cql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func parseErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("Parse(%q) succeeded, want error containing %q", src, wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("Parse(%q) error %q, want substring %q", src, err, wantSub)
	}
}

func TestParseFullForm(t *testing.T) {
	st := parseOK(t, `SELECT * FROM R (A) [ROWS 100], S (A, B) [ROWS 50], T (B) [RANGE 60]
		WHERE R.A = S.A AND S.B = T.B`)
	if len(st.Relations) != 3 || len(st.Preds) != 2 {
		t.Fatalf("statement = %+v", st)
	}
	r, s, tt := st.Relations[0], st.Relations[1], st.Relations[2]
	if r.Name != "R" || r.Window != Rows || r.N != 100 || len(r.Attrs) != 1 {
		t.Fatalf("R = %+v", r)
	}
	if s.Window != Rows || s.N != 50 || len(s.Attrs) != 2 {
		t.Fatalf("S = %+v", s)
	}
	if tt.Window != Range || tt.N != 60 {
		t.Fatalf("T = %+v", tt)
	}
	if st.Preds[0].Left != (Ref{"R", "A"}) || st.Preds[0].Right != (Ref{"S", "A"}) {
		t.Fatalf("pred 0 = %+v", st.Preds[0])
	}
}

func TestParseInferredAttributes(t *testing.T) {
	st := parseOK(t, `SELECT * FROM R [ROWS 10], S [ROWS 10] WHERE R.K = S.K`)
	if len(st.Relations[0].Attrs) != 1 || st.Relations[0].Attrs[0] != "K" {
		t.Fatalf("inferred attrs = %v", st.Relations[0].Attrs)
	}
}

func TestParseUnboundedDefaultAndExplicit(t *testing.T) {
	st := parseOK(t, `SELECT * FROM A, B [UNBOUNDED] WHERE A.X = B.X`)
	if st.Relations[0].Window != Unbounded || st.Relations[1].Window != Unbounded {
		t.Fatalf("windows = %+v", st.Relations)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	parseOK(t, `select * from R [rows 5], S [range 7] where R.A = S.A`)
}

func TestParseMultiAttributeInference(t *testing.T) {
	st := parseOK(t, `SELECT * FROM R [ROWS 5], S [ROWS 5], T [ROWS 5]
		WHERE R.A = S.A AND S.B = T.B`)
	if got := st.Relations[1].Attrs; len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("S attrs = %v (reference order expected)", got)
	}
}

func TestParseErrors(t *testing.T) {
	parseErr(t, ``, "SELECT")
	parseErr(t, `SELECT A FROM R, S WHERE R.A = S.A`, "SELECT *")
	parseErr(t, `SELECT * FROM R`, "at least 2 relations")
	parseErr(t, `SELECT * FROM R, R WHERE R.A = R.A`, "duplicate relation")
	parseErr(t, `SELECT * FROM R, S WHERE R.A = Z.A`, "unknown relation")
	parseErr(t, `SELECT * FROM R, S WHERE R.A = S`, "Rel.Attr")
	parseErr(t, `SELECT * FROM R [ROWS 0], S WHERE R.A = S.A`, "positive integer")
	parseErr(t, `SELECT * FROM R [BOGUS 3], S WHERE R.A = S.A`, "ROWS, RANGE, PARTITION BY, or UNBOUNDED")
	parseErr(t, `SELECT * FROM R, S`, "no attributes")
	parseErr(t, `SELECT * FROM R (A), S (A) WHERE R.B = S.A`, "declares only")
	parseErr(t, `SELECT * FROM R (A, A), S (A) WHERE R.A = S.A`, "twice")
	parseErr(t, `SELECT * FROM R, S WHERE R.A = S.A garbage`, "trailing input")
	parseErr(t, `SELECT * FROM WHERE, S WHERE R.A = S.A`, "keyword")
	parseErr(t, `SELECT * FROM R, S WHERE R.A = S.A AND`, "identifier")
	parseErr(t, "SELECT * FROM R; S", "unexpected character")
}

func TestStringRoundTrips(t *testing.T) {
	src := `SELECT * FROM R (A) [ROWS 100], S (A, B) [ROWS 50], T (B) [RANGE 60] WHERE R.A = S.A AND S.B = T.B`
	st := parseOK(t, src)
	st2 := parseOK(t, st.String())
	if st.String() != st2.String() {
		t.Fatalf("round trip: %q vs %q", st.String(), st2.String())
	}
}

// TestPropertyRandomStatementsRoundTrip generates random statements from
// the grammar and checks Parse(String(Parse(s))) is a fixed point.
func TestPropertyRandomStatementsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		var b strings.Builder
		b.WriteString("SELECT * FROM ")
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "Rel%d (A%d)", i, i%2)
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&b, " [ROWS %d]", 1+rng.Intn(500))
			case 1:
				fmt.Fprintf(&b, " [RANGE %d]", 1+rng.Intn(500))
			}
		}
		b.WriteString(" WHERE ")
		for i := 1; i < n; i++ {
			if i > 1 {
				b.WriteString(" AND ")
			}
			op := []string{"=", "<", "<=", ">", ">=", "!="}[rng.Intn(6)]
			fmt.Fprintf(&b, "Rel%d.A%d %s Rel%d.A%d", i-1, (i-1)%2, op, i, i%2)
		}
		src := b.String()
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, src, err)
		}
		st2, err := Parse(st.String())
		if err != nil {
			t.Fatalf("trial %d: reparse(%q): %v", trial, st.String(), err)
		}
		if st.String() != st2.String() {
			t.Fatalf("trial %d: not a fixed point:\n%q\n%q", trial, st.String(), st2.String())
		}
		if len(st.Preds)+len(st.Thetas) != n-1 {
			t.Fatalf("trial %d: predicate count %d+%d, want %d",
				trial, len(st.Preds), len(st.Thetas), n-1)
		}
	}
}

func TestParsePartitionedWindow(t *testing.T) {
	st := parseOK(t, `SELECT * FROM Quotes (Instr, Px) [PARTITION BY Instr ROWS 10], Refs (Instr)
		WHERE Quotes.Instr = Refs.Instr`)
	r := st.Relations[0]
	if r.Window != Partitioned || r.N != 10 || r.PartitionBy != "Instr" {
		t.Fatalf("relation = %+v", r)
	}
	// Round trip.
	st2 := parseOK(t, st.String())
	if st.String() != st2.String() {
		t.Fatalf("round trip: %q vs %q", st.String(), st2.String())
	}
	// Partition attribute inferred into the schema when undeclared.
	st3 := parseOK(t, `SELECT * FROM Quotes [PARTITION BY Instr ROWS 5], Refs
		WHERE Quotes.Px = Refs.Px`)
	found := false
	for _, a := range st3.Relations[0].Attrs {
		if a == "Instr" {
			found = true
		}
	}
	if !found {
		t.Fatalf("partition attribute not inferred: %v", st3.Relations[0].Attrs)
	}
	parseErr(t, `SELECT * FROM Q (Px) [PARTITION BY Instr ROWS 5], R (Px) WHERE Q.Px = R.Px`,
		"partitions by undeclared attribute")
	parseErr(t, `SELECT * FROM Q [PARTITION BY Instr ROWS 0], R WHERE Q.Instr = R.Instr`,
		"positive integer")
}
