// Package cql parses a small fragment of CQL — the continuous query
// language of the STREAM project this paper belongs to [2] — sufficient to
// declare the stream joins the engine executes:
//
//	SELECT * FROM R (A) [ROWS 100], S (A, B) [ROWS 100], T (B) [RANGE 60]
//	WHERE R.A = S.A AND S.B = T.B
//
// Each FROM element names a relation, optionally declares its attributes
// (otherwise they are inferred from the WHERE clause), and carries a window
// specification: `[ROWS n]` for count-based windows, `[RANGE n]` for
// time-based windows, `[UNBOUNDED]` (the default) for plain relations fed by
// explicit inserts and deletes. The WHERE clause is a conjunction of
// equality predicates between attributes, per the paper's equijoin setting.
package cql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokStar
	tokComma
	tokDot
	tokEq
	tokCmp // <, <=, >, >=, !=
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokStar:
		return "'*'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokEq:
		return "'='"
	case tokCmp:
		return "comparison operator"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	default:
		return "?"
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes the input; errors carry byte offsets for messages.
func lex(src string) ([]token, error) {
	var out []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '*':
			out = append(out, token{tokStar, "*", i})
			i++
		case c == ',':
			out = append(out, token{tokComma, ",", i})
			i++
		case c == '.':
			out = append(out, token{tokDot, ".", i})
			i++
		case c == '=':
			out = append(out, token{tokEq, "=", i})
			i++
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
			}
			out = append(out, token{tokCmp, op, i})
			i += len(op)
		case c == '!':
			if i+1 >= len(src) || src[i+1] != '=' {
				return nil, fmt.Errorf("cql: expected '!=' at offset %d", i)
			}
			out = append(out, token{tokCmp, "!=", i})
			i += 2
		case c == '[':
			out = append(out, token{tokLBracket, "[", i})
			i++
		case c == ']':
			out = append(out, token{tokRBracket, "]", i})
			i++
		case c == '(':
			out = append(out, token{tokLParen, "(", i})
			i++
		case c == ')':
			out = append(out, token{tokRParen, ")", i})
			i++
		case unicode.IsDigit(c):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			out = append(out, token{tokNumber, src[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			out = append(out, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("cql: unexpected character %q at offset %d", c, i)
		}
	}
	out = append(out, token{tokEOF, "", len(src)})
	return out, nil
}

// keyword matches an identifier token against a keyword, case-insensitively
// (CQL keywords are conventionally upper-case but we accept any casing).
func (t token) keyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
