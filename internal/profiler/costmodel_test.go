package profiler

import (
	"testing"

	"acache/internal/planner"
)

// Cost-model branch coverage for the non-prefix cache modes: reduced
// (counted GC) and self-maintained candidates route their maintenance cost
// through different formulas.
func TestEstimateModes(t *testing.T) {
	q, e, pf, _ := setup(t, Config{SampleProb: 0.5, RateSpan: 20, Seed: 71})
	drive(e, pf, 3000)
	ord := [][]int{{1, 2}, {2, 0}, {1, 0}}

	prefixSpecs := planner.Candidates(q, planner.Ordering(ord))
	if len(prefixSpecs) == 0 {
		t.Fatal("no prefix candidates")
	}
	prefix := pf.Estimate(prefixSpecs[0], 0.1, 20)
	if !prefix.Ready || prefix.Cost <= 0 {
		t.Fatalf("prefix estimate %+v", prefix)
	}

	gcs := planner.GCCandidates(q, planner.Ordering(ord), prefixSpecs, 10)
	var sm *planner.Spec
	for _, c := range gcs {
		if c.SelfMaint {
			sm = c
			break
		}
	}
	if sm == nil {
		t.Fatal("no self-maintained candidate")
	}
	smEst := pf.Estimate(sm, 0.1, 20)
	if !smEst.Ready {
		t.Fatalf("self-maintained estimate not ready: %+v", smEst)
	}
	// Self-maintenance pays an explicit mini-join: its unit-time cost must
	// exceed zero and, on this workload, the prefix cache's free
	// maintenance (update_cost × delta rate) should be cheaper per the
	// mini-join's probe surcharge.
	if smEst.Cost <= 0 {
		t.Fatalf("self-maintained cost = %v", smEst.Cost)
	}
	// GC-mode estimates account three ints per element in the memory
	// estimate; prefix entries are cheaper per tuple.
	if smEst.ExpectedBytes <= prefix.ExpectedBytes {
		t.Fatalf("GC memory estimate %v should exceed prefix %v at equal entries",
			smEst.ExpectedBytes, prefix.ExpectedBytes)
	}
}

func TestEstimateMonotoneInDistinct(t *testing.T) {
	q, e, pf, _ := setup(t, Config{SampleProb: 0.5, RateSpan: 20, Seed: 72})
	drive(e, pf, 2500)
	spec := planner.Candidates(q, planner.Ordering([][]int{{1, 2}, {2, 0}, {1, 0}}))[0]
	small := pf.Estimate(spec, 0.1, 10)
	big := pf.Estimate(spec, 0.1, 1000)
	if big.ExpectedBytes <= small.ExpectedBytes {
		t.Fatalf("memory estimate not monotone in distinct keys: %v vs %v",
			big.ExpectedBytes, small.ExpectedBytes)
	}
	_ = q
}
