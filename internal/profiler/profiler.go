// Package profiler implements A-Caching's Profiler component (Figure 4,
// Section 4.3, Appendix A): online estimation of per-operator tuple rates
// d_ij and per-tuple costs c_ij from sampled full-pipeline profiling, stream
// rates rate(R_i), and cache miss probabilities — observed directly for used
// caches, and estimated with Bloom-filter distinct counting over shadow
// CacheLookup taps for caches not in use. Every statistic is the average of
// its W most recent measurements (Table 1).
package profiler

import (
	"math/rand"
	"time"

	"acache/internal/bloom"
	"acache/internal/cost"
	"acache/internal/join"
	"acache/internal/planner"
	"acache/internal/query"
	"acache/internal/stats"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// Config holds the profiler's tuning parameters, with the paper's defaults.
type Config struct {
	// W is the estimation window: every statistic is the mean of its W
	// most recent observations (default 10, Section 7.1).
	W int
	// Wd is the Bloom window: miss probability is estimated per
	// nonoverlapping window of Wd probe keys (Appendix A).
	Wd int
	// Alpha sizes the Bloom filter at Alpha × Wd bits, Alpha ≥ 1.
	Alpha int
	// SampleProb is p_i: the probability of profiling a tuple's complete
	// pipeline processing.
	SampleProb float64
	// SampleStride enables strided span sampling of the profiler itself:
	// with stride S > 1 only every S-th update draws a profiling decision
	// (with probability min(1, S × SampleProb), keeping the expected
	// profiled fraction at SampleProb) and every shadow estimator hashes
	// only every S-th probe of its key stream. Rates, δ/τ windows, and
	// miss-probability estimates remain unbiased ratio estimators over the
	// sampled substream; ShadowDistinct becomes a lower bound (a key's
	// first occurrence may be skipped), and shadow windows take S times as
	// many probes to fill. 0 or 1 keeps exact profiling: every statistic,
	// random draw, and meter charge is bit-identical to the pre-stride
	// profiler.
	SampleStride int
	// RateSpan is the number of updates per rate(R_i) measurement span.
	RateSpan int
	// PaperMissEstimator makes ShadowMissProb return the paper's
	// Appendix-A per-window estimate instead of the retention-aware
	// refinement — an ablation switch (see DESIGN.md deviation 2).
	PaperMissEstimator bool
	// FilterAware makes Estimate use the filtered probe-cost split
	// (FilteredProbeCostPerTuple with the observed false-positive rate)
	// instead of the paper's probe_cost. Off by default so the cost figures
	// of the paper's experiments are byte-identical with filters present.
	FilterAware bool
	// Seed makes sampling reproducible.
	Seed int64
}

// Defaults fills zero fields with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.W == 0 {
		c.W = 10
	}
	if c.Wd == 0 {
		c.Wd = 100
	}
	if c.Alpha == 0 {
		c.Alpha = 4
	}
	if c.SampleProb == 0 {
		c.SampleProb = 0.02
	}
	if c.RateSpan == 0 {
		c.RateSpan = 50
	}
	return c
}

// pipeStats holds one pipeline's per-operator windows.
type pipeStats struct {
	delta []*stats.Window // δ_j per position; index n−1 = pipeline outputs
	tau   []*stats.Window // τ_j per operator
	rate  *stats.RateEstimator
	spanN int
	spanT float64 // simulated seconds at span start
}

// Profiler maintains online statistics for one executor.
type Profiler struct {
	q     *query.Query
	e     *join.Exec
	meter *cost.Meter
	cfg   Config
	rng   *rand.Rand

	pipes      []*pipeStats
	shadows    map[string]*shadow
	totalTicks int64
	relTicks   []int64

	// statsEpoch counts statistic observations: it is bumped whenever a
	// value any readiness or estimate check reads can have changed — a
	// rate-span boundary, a profiled-update Observe, a filter observation,
	// a shadow window completing, a pipeline reset, or a shadow starting or
	// stopping. Between equal epochs, every window-backed statistic is
	// bitwise unchanged, which lets the engine answer its per-update
	// readiness poll from a memo instead of rescanning (the traffic-share
	// early exit of PipelineReady is the one non-epoch input; the engine
	// rechecks it separately).
	statsEpoch int64
	// strideN counts updates toward the next sampled one (SampleStride).
	strideN int
	// sampledUpdates counts updates that drew a profiling decision — all of
	// them in exact mode, one in SampleStride otherwise.
	sampledUpdates uint64
	// shadowPool recycles stopped shadow estimators (their Bloom filters
	// and windows are the profiling phase's only per-phase allocations);
	// colsMemo caches each spec's probe-key columns, invalidated per
	// pipeline on reorder.
	shadowPool []*shadow
	colsMemo   map[string]colsEntry
	// scopeBuf is Estimate's scratch for the widened GC maintenance scope.
	scopeBuf []int
	// instrument enables wall-clock attribution of shadow-tap work
	// (shadowNanos) for the per-phase cost breakdown; off on the default
	// hot path.
	instrument  bool
	shadowNanos int64

	// Observed fingerprint-filter effectiveness, fed by the engine's
	// monitor from structure counter deltas (ObserveFilter): what fraction
	// of misses the filters answered without a bucket walk, and how often a
	// filter-passed check missed anyway.
	filterEff *stats.Window // short-circuited fraction of misses
	filterFP  *stats.Window // false-positive rate among true misses
}

// New creates a profiler over the executor.
func New(q *query.Query, e *join.Exec, meter *cost.Meter, cfg Config) *Profiler {
	cfg = cfg.withDefaults()
	pf := &Profiler{
		q:       q,
		e:       e,
		meter:   meter,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		shadows: make(map[string]*shadow),
	}
	pf.pipes = make([]*pipeStats, q.N())
	for i := range pf.pipes {
		pf.pipes[i] = newPipeStats(q.N(), cfg)
	}
	pf.relTicks = make([]int64, q.N())
	pf.filterEff = stats.NewWindow(cfg.W)
	pf.filterFP = stats.NewWindow(cfg.W)
	return pf
}

func newPipeStats(n int, cfg Config) *pipeStats {
	ps := &pipeStats{rate: stats.NewRateEstimator(cfg.W)}
	for j := 0; j < n; j++ {
		ps.delta = append(ps.delta, stats.NewWindow(cfg.W))
	}
	for j := 0; j < n-1; j++ {
		ps.tau = append(ps.tau, stats.NewWindow(cfg.W))
	}
	return ps
}

// W returns the configured estimation window.
func (pf *Profiler) W() int { return pf.cfg.W }

// ShouldProfile decides whether the next update to rel is profiled. In
// exact mode every update draws; with SampleStride S > 1 only every S-th
// update draws, with probability min(1, S × SampleProb), so the expected
// profiled fraction stays SampleProb while S−1 of every S updates skip the
// random-number generator entirely.
func (pf *Profiler) ShouldProfile(rel int) bool {
	if s := pf.cfg.SampleStride; s > 1 {
		pf.strideN++
		if pf.strideN < s {
			return false
		}
		pf.strideN = 0
		pf.sampledUpdates++
		p := float64(s) * pf.cfg.SampleProb
		if p > 1 {
			p = 1
		}
		return pf.rng.Float64() < p
	}
	pf.sampledUpdates++
	return pf.rng.Float64() < pf.cfg.SampleProb
}

// SampledUpdates returns how many updates drew a profiling decision: equal
// to the update count in exact mode, roughly 1/SampleStride of it otherwise.
func (pf *Profiler) SampledUpdates() uint64 { return pf.sampledUpdates }

// StatsEpoch returns the statistics-observation counter (see the field).
// Equal epochs guarantee every windowed statistic is unchanged.
func (pf *Profiler) StatsEpoch() int64 { return pf.statsEpoch }

// SetInstrument toggles wall-clock attribution of shadow-tap maintenance;
// ShadowNanos returns the accumulated total.
func (pf *Profiler) SetInstrument(on bool) { pf.instrument = on }

// ShadowNanos returns the wall-clock nanoseconds spent in shadow-estimator
// taps since construction (0 unless SetInstrument(true)).
func (pf *Profiler) ShadowNanos() int64 { return pf.shadowNanos }

// Tick records one update to rel for rate estimation. Call it for every
// update, profiled or not, after processing. Span boundaries read the shared
// cost meter, so "after processing" includes staged pipeline execution's
// barrier: the executor folds every stage journal into the meter before
// Process/ProcessRun return, which keeps the simulated seconds a boundary
// observes identical to serial execution at any worker count.
func (pf *Profiler) Tick(rel int) {
	pf.totalTicks++
	pf.relTicks[rel]++
	ps := pf.pipes[rel]
	ps.spanN++
	if ps.spanN >= pf.cfg.RateSpan {
		now := cost.Seconds(pf.meter.Total())
		ps.rate.ObserveSpan(ps.spanN, now-ps.spanT)
		ps.spanN = 0
		ps.spanT = now
		pf.statsEpoch++
	}
}

// TickN records k consecutive updates to rel at once — equivalent to k Tick
// calls when the caller guarantees k ≤ TicksToSpan(rel), which the engine's
// batch driver does by capping run lengths there. At most one span boundary
// can then fire, at the end, after every charge of the run is already in the
// meter — exactly where the serial loop's boundary Tick would observe it.
func (pf *Profiler) TickN(rel, k int) {
	pf.totalTicks += int64(k)
	pf.relTicks[rel] += int64(k)
	ps := pf.pipes[rel]
	ps.spanN += k
	if ps.spanN >= pf.cfg.RateSpan {
		now := cost.Seconds(pf.meter.Total())
		ps.rate.ObserveSpan(ps.spanN, now-ps.spanT)
		ps.spanN = 0
		ps.spanT = now
		pf.statsEpoch++
	}
}

// TicksToSpan returns how many more Ticks to rel can happen before a
// rate-span boundary is observed, always ≥ 1 (spanN resets to zero at each
// boundary). The boundary tick reads the shared cost meter, so the engine's
// batch driver caps run lengths with this: a span boundary may coincide with
// a run's final tick — where every charge of the run is already in, exactly
// as in per-update processing — but never falls strictly inside one.
func (pf *Profiler) TicksToSpan(rel int) int {
	return pf.cfg.RateSpan - pf.pipes[rel].spanN
}

// Observe feeds one profiled update's per-operator measurements. Profiled
// updates always execute on the serial path — ProcessProfiled never stages —
// so the per-operator span splits (StepInputs, StepUnits) remain exactly
// attributable even when the engine runs staged pipelines for the unprofiled
// stream.
func (pf *Profiler) Observe(rel int, prof join.Profile) {
	ps := pf.pipes[rel]
	for j, d := range prof.StepInputs {
		ps.delta[j].Observe(float64(d))
	}
	for j, u := range prof.StepUnits {
		ps.tau[j].Observe(cost.Seconds(u))
	}
	pf.statsEpoch++
}

// ObserveFilter feeds one monitoring interval's filter counter deltas:
// shortCircuits misses answered by a filter alone, falsePositives
// filter-passed checks that then missed, and misses total misses (short-
// circuited included). Intervals with no misses carry no signal and are
// skipped.
func (pf *Profiler) ObserveFilter(shortCircuits, falsePositives, misses uint64) {
	if misses == 0 {
		return
	}
	// Maintenance-path short-circuits are not probe misses, so the ratio
	// can exceed one; clamp — it is "fraction of miss work avoided".
	pf.filterEff.Observe(minF(1, float64(shortCircuits)/float64(misses)))
	if trueAbsent := shortCircuits + falsePositives; trueAbsent > 0 {
		pf.filterFP.Observe(float64(falsePositives) / float64(trueAbsent))
	}
	pf.statsEpoch++
}

// FilterEffectiveness returns the windowed filter observations: the fraction
// of misses short-circuited, the false-positive rate among true-absent
// checks, and whether a full window backs them.
func (pf *Profiler) FilterEffectiveness() (shortCircuitFrac, fpRate float64, ok bool) {
	return pf.filterEff.Mean(), pf.filterFP.Mean(), pf.filterEff.Full()
}

// Rate returns the estimated updates/second of ΔR_rel.
func (pf *Profiler) Rate(rel int) float64 { return pf.pipes[rel].rate.Rate() }

// D returns d at (pipeline, position): tuples per second entering operator
// pos (position n−1 reads the pipeline's output rate). Appendix A:
// d_ij = rate(R_i) × mean(δ_j).
func (pf *Profiler) D(pipe, pos int) float64 {
	return pf.Rate(pipe) * pf.pipes[pipe].delta[pos].Mean()
}

// C returns c_ij: seconds of work per tuple processed by operator pos of
// pipeline pipe. Appendix A: c_ij = sum(τ_j)/sum(δ_j).
func (pf *Profiler) C(pipe, pos int) float64 {
	d := pf.pipes[pipe].delta[pos].Sum()
	if d <= 0 {
		return 0
	}
	return pf.pipes[pipe].tau[pos].Sum() / d
}

// OpCost returns d_ij × c_ij: the unit-time processing cost of the operator,
// the quantity the selection problem's minimization form covers.
func (pf *Profiler) OpCost(pipe, pos int) float64 { return pf.D(pipe, pos) * pf.C(pipe, pos) }

// PipelineReady reports whether pipeline pipe has W observations for every
// operator statistic and a full rate window (Section 4.5 step 2). A
// pipeline whose relation sees a negligible share of the update traffic is
// treated as ready with (near-)zero rates — a dimension table that never
// changes would otherwise never fill its windows and would block every
// estimate touching it, even though its contribution to any cost is
// bounded by its traffic share.
func (pf *Profiler) PipelineReady(pipe int) bool {
	if pf.TrafficShareReady(pipe) {
		return true
	}
	ps := pf.pipes[pipe]
	if !ps.rate.Ready() {
		return false
	}
	for _, w := range ps.delta {
		if !w.Full() {
			return false
		}
	}
	return true
}

// TrafficShareReady reports PipelineReady's negligible-traffic early exit in
// isolation: a pipeline whose relation sees under a 2% share of a
// long-enough update stream is ready by fiat. Unlike every window-backed
// statistic it moves with the raw tick counters — between equal StatsEpochs
// it is the only input that can flip a readiness answer, so the engine's
// epoch-memoized readiness poll rechecks exactly this per update.
func (pf *Profiler) TrafficShareReady(pipe int) bool {
	return pf.totalTicks > 20*int64(pf.cfg.RateSpan) &&
		pf.relTicks[pipe]*50 < pf.totalTicks
}

// Ready reports whether every pipeline is ready.
func (pf *Profiler) Ready() bool {
	for i := range pf.pipes {
		if !pf.PipelineReady(i) {
			return false
		}
	}
	return true
}

// ResetPipeline discards a pipeline's statistics (after reordering,
// Section 4.5 step 5) and the memoized probe-key columns of specs on it
// (their schema prefix just changed).
func (pf *Profiler) ResetPipeline(pipe int) {
	pf.pipes[pipe] = newPipeStats(pf.q.N(), pf.cfg)
	pf.statsEpoch++
	for k, e := range pf.colsMemo {
		if e.pipe == pipe {
			delete(pf.colsMemo, k)
		}
	}
}

// shadow estimates the miss probability of a cache not in use from a
// CacheLookup-position tap over the full probe-key stream (Appendix A).
//
// Two estimators are maintained per window of Wd probes:
//
//   - the paper's: each key is hashed into a per-window Bloom filter of
//     Alpha×Wd bits; the set-bit count b estimates the window's distinct
//     keys and b/Wd its miss probability ("each distinct key misses once,
//     then it is cached");
//   - a retention-aware refinement used for decisions: since resident
//     entries survive across windows under incremental maintenance, a
//     steady-state probe only misses the first time its key is EVER seen,
//     so misses are counted against a long-horizon filter instead. The
//     paper's estimator systematically overestimates misses for long-lived
//     caches (e.g. keys cycling with period > Wd); the refinement stays
//     optimistic instead, which the engine's continuous monitoring corrects
//     cheaply after adoption (Section 4.5(a)) — mispredicting toward "try
//     the cache" is the cheap direction, as adding and dropping caches is
//     nearly free.
//
// The horizon filter doubles as the distinct-key population estimate for
// memory sizing. The first window is treated as warm-up and not recorded.
type shadow struct {
	tapID       int
	keyCols     []int
	keyBuf      []byte // packed-key scratch, reused across tap batches
	filter      *bloom.Filter
	horizon     *bloom.Filter
	seen        int
	newKeys     int
	strideN     int // probes since the last sampled one (SampleStride)
	warm        bool
	windows     int           // completed windows since shadow start
	missWin     *stats.Window // retention-aware (decision) estimate
	windowedWin *stats.Window // the paper's per-window estimate
	distinct    *stats.Window
}

// colsEntry memoizes a spec's probe-key columns (invalidated per pipeline on
// reorder — the lookup position's schema prefix depends on the ordering).
type colsEntry struct {
	pipe int
	cols []int
}

// shadowMaxWindows caps how long a shadow keeps refining a still-falling
// miss estimate before it is declared ready regardless (large key domains
// decay slowly; at some point the engine must decide with what it has).
const shadowMaxWindows = 40

func shadowKey(spec *planner.Spec) string { return spec.Key() }

// StartShadow installs the shadow estimator for a candidate cache. It is a
// no-op if one is already running. Stopped shadows are recycled from a pool
// (filters and windows reset), so the profiling phases of a warm engine
// allocate nothing here; the probe-key columns are memoized per spec until
// the pipeline reorders.
func (pf *Profiler) StartShadow(spec *planner.Spec) {
	key := shadowKey(spec)
	if _, ok := pf.shadows[key]; ok {
		return
	}
	var sh *shadow
	if n := len(pf.shadowPool); n > 0 {
		sh = pf.shadowPool[n-1]
		pf.shadowPool = pf.shadowPool[:n-1]
	} else {
		sh = &shadow{
			filter:      bloom.New(pf.cfg.Alpha*pf.cfg.Wd, 1),
			horizon:     bloom.New(1<<16, 2),
			missWin:     stats.NewWindow(pf.cfg.W),
			windowedWin: stats.NewWindow(pf.cfg.W),
			distinct:    stats.NewWindow(pf.cfg.W),
		}
	}
	sh.warm = true
	// Key columns in the schema arriving at the lookup position.
	if pf.colsMemo == nil {
		pf.colsMemo = make(map[string]colsEntry)
	}
	if e, ok := pf.colsMemo[key]; ok {
		sh.keyCols = e.cols
	} else {
		sh.keyCols = pf.q.RepresentativeCols(pf.schemaAt(spec.Pipeline, spec.Start), spec.KeyClasses)
		pf.colsMemo[key] = colsEntry{pipe: spec.Pipeline, cols: sh.keyCols}
	}
	sh.tapID = pf.e.Tap(spec.Pipeline, spec.Start, func(batch []tuple.Tuple, _ stream.Op) {
		var t0 time.Time
		if pf.instrument {
			t0 = time.Now()
		}
		// One hash per key feeds both filters (their probe positions derive
		// from the same base pair), and the whole batch's hash work is
		// charged in one ChargeN: no meter read can interleave inside a tap
		// callback, so simulated time at every observation point is
		// identical to per-tuple charging.
		perKey := sh.filter.Hashes() + sh.horizon.Hashes()
		stride := pf.cfg.SampleStride
		hashed := 0
		for _, t := range batch {
			if stride > 1 {
				if sh.strideN++; sh.strideN < stride {
					continue
				}
				sh.strideN = 0
			}
			hashed++
			sh.keyBuf = tuple.AppendKey(sh.keyBuf[:0], t, sh.keyCols)
			h1, h2 := bloom.HashBytes(sh.keyBuf)
			sh.filter.AddHash(h1, h2)
			if !sh.horizon.AddHash(h1, h2) {
				sh.newKeys++
			}
			sh.seen++
			if sh.seen >= pf.cfg.Wd {
				if !sh.warm {
					sh.missWin.Observe(minF(1, float64(sh.newKeys)/float64(pf.cfg.Wd)))
					sh.windows++
				}
				sh.warm = false
				b := float64(sh.filter.SetBits())
				sh.windowedWin.Observe(minF(1, b/float64(pf.cfg.Wd)))
				sh.distinct.Observe(sh.filter.EstimateDistinct())
				sh.filter.Reset()
				sh.seen = 0
				sh.newKeys = 0
				pf.statsEpoch++
			}
		}
		if hashed > 0 {
			pf.meter.ChargeN(cost.BloomHash, perKey*hashed)
		}
		if pf.instrument {
			pf.shadowNanos += time.Since(t0).Nanoseconds()
		}
	})
	pf.shadows[key] = sh
	pf.statsEpoch++
}

// ShadowWindowedMissProb returns the paper's per-window Appendix-A estimate
// (kept for ablation benchmarks) and whether a full window backs it.
func (pf *Profiler) ShadowWindowedMissProb(spec *planner.Spec) (float64, bool) {
	sh, ok := pf.shadows[shadowKey(spec)]
	if !ok {
		return 0, false
	}
	return sh.windowedWin.Mean(), sh.windowedWin.Full()
}

// StopShadow removes a candidate's shadow estimator, keeping nothing. The
// estimator's filters and windows are reset and pooled for the next
// StartShadow.
func (pf *Profiler) StopShadow(spec *planner.Spec) {
	key := shadowKey(spec)
	if sh, ok := pf.shadows[key]; ok {
		pf.e.RemoveTap(sh.tapID)
		delete(pf.shadows, key)
		sh.filter.Reset()
		sh.horizon.Reset()
		sh.missWin.Reset()
		sh.windowedWin.Reset()
		sh.distinct.Reset()
		sh.seen, sh.newKeys, sh.strideN, sh.windows = 0, 0, 0, 0
		sh.keyCols = nil
		pf.shadowPool = append(pf.shadowPool, sh)
		pf.statsEpoch++
	}
}

// ShadowMissProb returns the shadow's miss-probability estimate and whether
// it is trustworthy. The reported value is the mean of the most recent
// windows: as the horizon filter fills, the first-time-key rate decays
// toward the true steady-state miss probability, so the newest observations
// are the best ones. The estimate is ready once it has a full window buffer
// AND has stopped falling rapidly (or the refinement cap is reached) — a
// still-decaying estimate would bias the selection against long-lived
// caches over large key domains.
func (pf *Profiler) ShadowMissProb(spec *planner.Spec) (float64, bool) {
	sh, ok := pf.shadows[shadowKey(spec)]
	if !ok {
		return 0, false
	}
	if pf.cfg.PaperMissEstimator {
		return sh.windowedWin.Mean(), sh.windowedWin.Full()
	}
	recent := sh.missWin.RecentMean(3)
	if !sh.missWin.Full() {
		return recent, false
	}
	stable := recent >= 0.7*sh.missWin.Mean() || sh.windows >= shadowMaxWindows
	return recent, stable
}

// ShadowDistinct returns the long-horizon distinct-key estimate: the
// expected number of cache entries, used for memory sizing (Section 4.3).
func (pf *Profiler) ShadowDistinct(spec *planner.Spec) (float64, bool) {
	sh, ok := pf.shadows[shadowKey(spec)]
	if !ok {
		return 0, false
	}
	return sh.horizon.EstimateDistinct(), sh.missWin.Len() > 0
}

func (pf *Profiler) schemaAt(pipe, pos int) *tuple.Schema {
	s := pf.q.Schema(pipe)
	for _, r := range pf.e.Ordering()[pipe][:pos] {
		s = s.Concat(pf.q.Schema(r))
	}
	return s
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
