// Package profiler implements A-Caching's Profiler component (Figure 4,
// Section 4.3, Appendix A): online estimation of per-operator tuple rates
// d_ij and per-tuple costs c_ij from sampled full-pipeline profiling, stream
// rates rate(R_i), and cache miss probabilities — observed directly for used
// caches, and estimated with Bloom-filter distinct counting over shadow
// CacheLookup taps for caches not in use. Every statistic is the average of
// its W most recent measurements (Table 1).
package profiler

import (
	"math/rand"

	"acache/internal/bloom"
	"acache/internal/cost"
	"acache/internal/join"
	"acache/internal/planner"
	"acache/internal/query"
	"acache/internal/stats"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// Config holds the profiler's tuning parameters, with the paper's defaults.
type Config struct {
	// W is the estimation window: every statistic is the mean of its W
	// most recent observations (default 10, Section 7.1).
	W int
	// Wd is the Bloom window: miss probability is estimated per
	// nonoverlapping window of Wd probe keys (Appendix A).
	Wd int
	// Alpha sizes the Bloom filter at Alpha × Wd bits, Alpha ≥ 1.
	Alpha int
	// SampleProb is p_i: the probability of profiling a tuple's complete
	// pipeline processing.
	SampleProb float64
	// RateSpan is the number of updates per rate(R_i) measurement span.
	RateSpan int
	// PaperMissEstimator makes ShadowMissProb return the paper's
	// Appendix-A per-window estimate instead of the retention-aware
	// refinement — an ablation switch (see DESIGN.md deviation 2).
	PaperMissEstimator bool
	// FilterAware makes Estimate use the filtered probe-cost split
	// (FilteredProbeCostPerTuple with the observed false-positive rate)
	// instead of the paper's probe_cost. Off by default so the cost figures
	// of the paper's experiments are byte-identical with filters present.
	FilterAware bool
	// Seed makes sampling reproducible.
	Seed int64
}

// Defaults fills zero fields with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.W == 0 {
		c.W = 10
	}
	if c.Wd == 0 {
		c.Wd = 100
	}
	if c.Alpha == 0 {
		c.Alpha = 4
	}
	if c.SampleProb == 0 {
		c.SampleProb = 0.02
	}
	if c.RateSpan == 0 {
		c.RateSpan = 50
	}
	return c
}

// pipeStats holds one pipeline's per-operator windows.
type pipeStats struct {
	delta []*stats.Window // δ_j per position; index n−1 = pipeline outputs
	tau   []*stats.Window // τ_j per operator
	rate  *stats.RateEstimator
	spanN int
	spanT float64 // simulated seconds at span start
}

// Profiler maintains online statistics for one executor.
type Profiler struct {
	q     *query.Query
	e     *join.Exec
	meter *cost.Meter
	cfg   Config
	rng   *rand.Rand

	pipes      []*pipeStats
	shadows    map[string]*shadow
	totalTicks int64
	relTicks   []int64

	// Observed fingerprint-filter effectiveness, fed by the engine's
	// monitor from structure counter deltas (ObserveFilter): what fraction
	// of misses the filters answered without a bucket walk, and how often a
	// filter-passed check missed anyway.
	filterEff *stats.Window // short-circuited fraction of misses
	filterFP  *stats.Window // false-positive rate among true misses
}

// New creates a profiler over the executor.
func New(q *query.Query, e *join.Exec, meter *cost.Meter, cfg Config) *Profiler {
	cfg = cfg.withDefaults()
	pf := &Profiler{
		q:       q,
		e:       e,
		meter:   meter,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		shadows: make(map[string]*shadow),
	}
	pf.pipes = make([]*pipeStats, q.N())
	for i := range pf.pipes {
		pf.pipes[i] = newPipeStats(q.N(), cfg)
	}
	pf.relTicks = make([]int64, q.N())
	pf.filterEff = stats.NewWindow(cfg.W)
	pf.filterFP = stats.NewWindow(cfg.W)
	return pf
}

func newPipeStats(n int, cfg Config) *pipeStats {
	ps := &pipeStats{rate: stats.NewRateEstimator(cfg.W)}
	for j := 0; j < n; j++ {
		ps.delta = append(ps.delta, stats.NewWindow(cfg.W))
	}
	for j := 0; j < n-1; j++ {
		ps.tau = append(ps.tau, stats.NewWindow(cfg.W))
	}
	return ps
}

// W returns the configured estimation window.
func (pf *Profiler) W() int { return pf.cfg.W }

// ShouldProfile decides whether the next update to rel is profiled.
func (pf *Profiler) ShouldProfile(rel int) bool {
	return pf.rng.Float64() < pf.cfg.SampleProb
}

// Tick records one update to rel for rate estimation. Call it for every
// update, profiled or not, after processing. Span boundaries read the shared
// cost meter, so "after processing" includes staged pipeline execution's
// barrier: the executor folds every stage journal into the meter before
// Process/ProcessRun return, which keeps the simulated seconds a boundary
// observes identical to serial execution at any worker count.
func (pf *Profiler) Tick(rel int) {
	pf.totalTicks++
	pf.relTicks[rel]++
	ps := pf.pipes[rel]
	ps.spanN++
	if ps.spanN >= pf.cfg.RateSpan {
		now := cost.Seconds(pf.meter.Total())
		ps.rate.ObserveSpan(ps.spanN, now-ps.spanT)
		ps.spanN = 0
		ps.spanT = now
	}
}

// TickN records k consecutive updates to rel at once — equivalent to k Tick
// calls when the caller guarantees k ≤ TicksToSpan(rel), which the engine's
// batch driver does by capping run lengths there. At most one span boundary
// can then fire, at the end, after every charge of the run is already in the
// meter — exactly where the serial loop's boundary Tick would observe it.
func (pf *Profiler) TickN(rel, k int) {
	pf.totalTicks += int64(k)
	pf.relTicks[rel] += int64(k)
	ps := pf.pipes[rel]
	ps.spanN += k
	if ps.spanN >= pf.cfg.RateSpan {
		now := cost.Seconds(pf.meter.Total())
		ps.rate.ObserveSpan(ps.spanN, now-ps.spanT)
		ps.spanN = 0
		ps.spanT = now
	}
}

// TicksToSpan returns how many more Ticks to rel can happen before a
// rate-span boundary is observed, always ≥ 1 (spanN resets to zero at each
// boundary). The boundary tick reads the shared cost meter, so the engine's
// batch driver caps run lengths with this: a span boundary may coincide with
// a run's final tick — where every charge of the run is already in, exactly
// as in per-update processing — but never falls strictly inside one.
func (pf *Profiler) TicksToSpan(rel int) int {
	return pf.cfg.RateSpan - pf.pipes[rel].spanN
}

// Observe feeds one profiled update's per-operator measurements. Profiled
// updates always execute on the serial path — ProcessProfiled never stages —
// so the per-operator span splits (StepInputs, StepUnits) remain exactly
// attributable even when the engine runs staged pipelines for the unprofiled
// stream.
func (pf *Profiler) Observe(rel int, prof join.Profile) {
	ps := pf.pipes[rel]
	for j, d := range prof.StepInputs {
		ps.delta[j].Observe(float64(d))
	}
	for j, u := range prof.StepUnits {
		ps.tau[j].Observe(cost.Seconds(u))
	}
}

// ObserveFilter feeds one monitoring interval's filter counter deltas:
// shortCircuits misses answered by a filter alone, falsePositives
// filter-passed checks that then missed, and misses total misses (short-
// circuited included). Intervals with no misses carry no signal and are
// skipped.
func (pf *Profiler) ObserveFilter(shortCircuits, falsePositives, misses uint64) {
	if misses == 0 {
		return
	}
	// Maintenance-path short-circuits are not probe misses, so the ratio
	// can exceed one; clamp — it is "fraction of miss work avoided".
	pf.filterEff.Observe(minF(1, float64(shortCircuits)/float64(misses)))
	if trueAbsent := shortCircuits + falsePositives; trueAbsent > 0 {
		pf.filterFP.Observe(float64(falsePositives) / float64(trueAbsent))
	}
}

// FilterEffectiveness returns the windowed filter observations: the fraction
// of misses short-circuited, the false-positive rate among true-absent
// checks, and whether a full window backs them.
func (pf *Profiler) FilterEffectiveness() (shortCircuitFrac, fpRate float64, ok bool) {
	return pf.filterEff.Mean(), pf.filterFP.Mean(), pf.filterEff.Full()
}

// Rate returns the estimated updates/second of ΔR_rel.
func (pf *Profiler) Rate(rel int) float64 { return pf.pipes[rel].rate.Rate() }

// D returns d at (pipeline, position): tuples per second entering operator
// pos (position n−1 reads the pipeline's output rate). Appendix A:
// d_ij = rate(R_i) × mean(δ_j).
func (pf *Profiler) D(pipe, pos int) float64 {
	return pf.Rate(pipe) * pf.pipes[pipe].delta[pos].Mean()
}

// C returns c_ij: seconds of work per tuple processed by operator pos of
// pipeline pipe. Appendix A: c_ij = sum(τ_j)/sum(δ_j).
func (pf *Profiler) C(pipe, pos int) float64 {
	d := pf.pipes[pipe].delta[pos].Sum()
	if d <= 0 {
		return 0
	}
	return pf.pipes[pipe].tau[pos].Sum() / d
}

// OpCost returns d_ij × c_ij: the unit-time processing cost of the operator,
// the quantity the selection problem's minimization form covers.
func (pf *Profiler) OpCost(pipe, pos int) float64 { return pf.D(pipe, pos) * pf.C(pipe, pos) }

// PipelineReady reports whether pipeline pipe has W observations for every
// operator statistic and a full rate window (Section 4.5 step 2). A
// pipeline whose relation sees a negligible share of the update traffic is
// treated as ready with (near-)zero rates — a dimension table that never
// changes would otherwise never fill its windows and would block every
// estimate touching it, even though its contribution to any cost is
// bounded by its traffic share.
func (pf *Profiler) PipelineReady(pipe int) bool {
	ps := pf.pipes[pipe]
	if pf.totalTicks > 20*int64(pf.cfg.RateSpan) &&
		pf.relTicks[pipe]*50 < pf.totalTicks {
		return true
	}
	if !ps.rate.Ready() {
		return false
	}
	for _, w := range ps.delta {
		if !w.Full() {
			return false
		}
	}
	return true
}

// Ready reports whether every pipeline is ready.
func (pf *Profiler) Ready() bool {
	for i := range pf.pipes {
		if !pf.PipelineReady(i) {
			return false
		}
	}
	return true
}

// ResetPipeline discards a pipeline's statistics (after reordering,
// Section 4.5 step 5).
func (pf *Profiler) ResetPipeline(pipe int) {
	pf.pipes[pipe] = newPipeStats(pf.q.N(), pf.cfg)
}

// shadow estimates the miss probability of a cache not in use from a
// CacheLookup-position tap over the full probe-key stream (Appendix A).
//
// Two estimators are maintained per window of Wd probes:
//
//   - the paper's: each key is hashed into a per-window Bloom filter of
//     Alpha×Wd bits; the set-bit count b estimates the window's distinct
//     keys and b/Wd its miss probability ("each distinct key misses once,
//     then it is cached");
//   - a retention-aware refinement used for decisions: since resident
//     entries survive across windows under incremental maintenance, a
//     steady-state probe only misses the first time its key is EVER seen,
//     so misses are counted against a long-horizon filter instead. The
//     paper's estimator systematically overestimates misses for long-lived
//     caches (e.g. keys cycling with period > Wd); the refinement stays
//     optimistic instead, which the engine's continuous monitoring corrects
//     cheaply after adoption (Section 4.5(a)) — mispredicting toward "try
//     the cache" is the cheap direction, as adding and dropping caches is
//     nearly free.
//
// The horizon filter doubles as the distinct-key population estimate for
// memory sizing. The first window is treated as warm-up and not recorded.
type shadow struct {
	tapID       int
	keyCols     []int
	keyBuf      []byte // packed-key scratch, reused across tap batches
	filter      *bloom.Filter
	horizon     *bloom.Filter
	seen        int
	newKeys     int
	warm        bool
	windows     int           // completed windows since shadow start
	missWin     *stats.Window // retention-aware (decision) estimate
	windowedWin *stats.Window // the paper's per-window estimate
	distinct    *stats.Window
}

// shadowMaxWindows caps how long a shadow keeps refining a still-falling
// miss estimate before it is declared ready regardless (large key domains
// decay slowly; at some point the engine must decide with what it has).
const shadowMaxWindows = 40

func shadowKey(spec *planner.Spec) string { return spec.Key() }

// StartShadow installs the shadow estimator for a candidate cache. It is a
// no-op if one is already running.
func (pf *Profiler) StartShadow(spec *planner.Spec) {
	key := shadowKey(spec)
	if _, ok := pf.shadows[key]; ok {
		return
	}
	sh := &shadow{
		filter:      bloom.New(pf.cfg.Alpha*pf.cfg.Wd, 1),
		horizon:     bloom.New(1<<16, 2),
		warm:        true,
		missWin:     stats.NewWindow(pf.cfg.W),
		windowedWin: stats.NewWindow(pf.cfg.W),
		distinct:    stats.NewWindow(pf.cfg.W),
	}
	// Key columns in the schema arriving at the lookup position.
	sh.keyCols = pf.q.RepresentativeCols(pf.schemaAt(spec.Pipeline, spec.Start), spec.KeyClasses)
	sh.tapID = pf.e.Tap(spec.Pipeline, spec.Start, func(batch []tuple.Tuple, _ stream.Op) {
		for _, t := range batch {
			pf.meter.ChargeN(cost.BloomHash, sh.filter.Hashes()+sh.horizon.Hashes())
			sh.keyBuf = tuple.AppendKey(sh.keyBuf[:0], t, sh.keyCols)
			sh.filter.AddBytes(sh.keyBuf)
			if !sh.horizon.AddBytes(sh.keyBuf) {
				sh.newKeys++
			}
			sh.seen++
			if sh.seen >= pf.cfg.Wd {
				if !sh.warm {
					sh.missWin.Observe(minF(1, float64(sh.newKeys)/float64(pf.cfg.Wd)))
					sh.windows++
				}
				sh.warm = false
				b := float64(sh.filter.SetBits())
				sh.windowedWin.Observe(minF(1, b/float64(pf.cfg.Wd)))
				sh.distinct.Observe(sh.filter.EstimateDistinct())
				sh.filter.Reset()
				sh.seen = 0
				sh.newKeys = 0
			}
		}
	})
	pf.shadows[key] = sh
}

// ShadowWindowedMissProb returns the paper's per-window Appendix-A estimate
// (kept for ablation benchmarks) and whether a full window backs it.
func (pf *Profiler) ShadowWindowedMissProb(spec *planner.Spec) (float64, bool) {
	sh, ok := pf.shadows[shadowKey(spec)]
	if !ok {
		return 0, false
	}
	return sh.windowedWin.Mean(), sh.windowedWin.Full()
}

// StopShadow removes a candidate's shadow estimator, keeping nothing.
func (pf *Profiler) StopShadow(spec *planner.Spec) {
	key := shadowKey(spec)
	if sh, ok := pf.shadows[key]; ok {
		pf.e.RemoveTap(sh.tapID)
		delete(pf.shadows, key)
	}
}

// ShadowMissProb returns the shadow's miss-probability estimate and whether
// it is trustworthy. The reported value is the mean of the most recent
// windows: as the horizon filter fills, the first-time-key rate decays
// toward the true steady-state miss probability, so the newest observations
// are the best ones. The estimate is ready once it has a full window buffer
// AND has stopped falling rapidly (or the refinement cap is reached) — a
// still-decaying estimate would bias the selection against long-lived
// caches over large key domains.
func (pf *Profiler) ShadowMissProb(spec *planner.Spec) (float64, bool) {
	sh, ok := pf.shadows[shadowKey(spec)]
	if !ok {
		return 0, false
	}
	if pf.cfg.PaperMissEstimator {
		return sh.windowedWin.Mean(), sh.windowedWin.Full()
	}
	recent := sh.missWin.RecentMean(3)
	if !sh.missWin.Full() {
		return recent, false
	}
	stable := recent >= 0.7*sh.missWin.Mean() || sh.windows >= shadowMaxWindows
	return recent, stable
}

// ShadowDistinct returns the long-horizon distinct-key estimate: the
// expected number of cache entries, used for memory sizing (Section 4.3).
func (pf *Profiler) ShadowDistinct(spec *planner.Spec) (float64, bool) {
	sh, ok := pf.shadows[shadowKey(spec)]
	if !ok {
		return 0, false
	}
	return sh.horizon.EstimateDistinct(), sh.missWin.Len() > 0
}

func (pf *Profiler) schemaAt(pipe, pos int) *tuple.Schema {
	s := pf.q.Schema(pipe)
	for _, r := range pf.e.Ordering()[pipe][:pos] {
		s = s.Concat(pf.q.Schema(r))
	}
	return s
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
