package profiler

import (
	"acache/internal/cache"
	"acache/internal/cost"
	"acache/internal/planner"
)

// Estimate is the Section 4.1 cost model evaluated from online statistics.
// All quantities are in seconds of processing per second of stream time
// (the unit-time cost metric), except the memory fields.
type Estimate struct {
	// Benefit is benefit(C): processing saved per unit time by using the
	// cache, before maintenance.
	Benefit float64
	// Cost is cost(C): the unit-time maintenance cost, shared across a
	// sharing group.
	Cost float64
	// Proc is proc(C) = Σ d_il·c_il − Benefit: the unit-time cost of
	// processing the segment through the cache (alternative minimization
	// formulation of Section 4.4).
	Proc float64
	// MissProb is the miss probability used in the model.
	MissProb float64
	// ExpectedEntries and ExpectedBytes are the memory sizing estimates
	// (Section 5): entries × (key + refs + bucket overhead).
	ExpectedEntries float64
	ExpectedBytes   float64
	// Ready reports whether every contributing statistic had a full
	// window of observations.
	Ready bool
}

// secs converts a per-operation unit charge to seconds.
func secs(u cost.Units) float64 { return cost.Seconds(u) }

// ProbeCostPerTuple returns probe_cost(C): seconds per probing tuple, as a
// function of the (constant) key size and the average number of tuples per
// cached entry (Appendix A) — the hash probe, key extraction, and hit
// emission of the entry's tuples.
func ProbeCostPerTuple(nKeyAttrs int, missProb, avgEntryTuples float64) float64 {
	return secs(cost.HashProbe) + float64(nKeyAttrs)*secs(cost.KeyExtract) +
		(1-missProb)*avgEntryTuples*secs(cost.OutputTuple)
}

// FilteredProbeCostPerTuple splits probe_cost(C) for a filtered structure
// into its hit path and its filtered-miss path. A hit pays the filter check
// on top of the full probe; a miss pays the filter check and then the bucket
// probe only on a false positive. With fpRate near zero and missProb near
// one this approaches secs(FilterProbe) — the source of the filtered
// speedup — while at missProb zero it is the unfiltered cost plus the small
// filter overhead. Advisory like the constants it reads: the meter charges
// the unfiltered tariff regardless.
func FilteredProbeCostPerTuple(nKeyAttrs int, missProb, avgEntryTuples, fpRate float64) float64 {
	hit := secs(cost.FilterProbe) + secs(cost.HashProbe) +
		float64(nKeyAttrs)*secs(cost.KeyExtract) + avgEntryTuples*secs(cost.OutputTuple)
	miss := secs(cost.FilterProbe) +
		fpRate*(secs(cost.HashProbe)+float64(nKeyAttrs)*secs(cost.KeyExtract))
	return missProb*miss + (1-missProb)*hit
}

// UpdateCostPerTuple returns update_cost(C): seconds per maintenance (or
// miss-population) tuple — key extraction, bucket lookup, and value edit.
func UpdateCostPerTuple(nKeyAttrs int) float64 {
	return secs(cost.HashProbe) + secs(cost.CacheInsertTuple) + float64(nKeyAttrs)*secs(cost.KeyExtract)
}

// Estimate evaluates the cost model for candidate spec using missProb
// (observed directly for used caches, or a shadow estimate — the caller
// picks per the cache's state). distinct is the expected-entries estimate
// for memory sizing, or 0 when unknown.
func (pf *Profiler) Estimate(spec *planner.Spec, missProb, distinct float64) Estimate {
	i := spec.Pipeline
	ready := pf.PipelineReady(i)

	// Σ_{l=j..k} d_il·c_il — the segment's unit-time cost without the cache.
	dcSum := 0.0
	for pos := spec.Start; pos <= spec.End; pos++ {
		dcSum += pf.OpCost(i, pos)
	}
	dProbe := pf.D(i, spec.Start)
	dNext := pf.D(i, spec.End+1)
	avgEntry := 0.0
	if dProbe > 0 {
		avgEntry = dNext / dProbe
	}
	nKey := len(spec.KeyClasses)
	probeCost := ProbeCostPerTuple(nKey, missProb, avgEntry)
	if pf.cfg.FilterAware {
		if _, fpRate, obsOK := pf.FilterEffectiveness(); obsOK {
			probeCost = FilteredProbeCostPerTuple(nKey, missProb, avgEntry, fpRate)
		}
	}
	updateCost := UpdateCostPerTuple(nKey)

	// Section 4.1:
	// benefit = Σ d·c − d_ij·probe_cost − miss_prob·(Σ d·c + d_{i,k+1}·update_cost)
	benefit := dcSum - dProbe*probeCost - missProb*(dcSum+dNext*updateCost)
	if spec.GC {
		// Miss population additionally probes the reduction join Y once
		// per populated tuple (Section 6 maintenance).
		benefit -= missProb * dNext * float64(len(spec.Y)) * secs(cost.HashProbe)
	}

	// cost = update_cost × Σ_{l∈scope} d_{l,|scope|−1}: the rate of
	// segment-join (or X∪Y-join) deltas flowing past the maintenance
	// operators (Section 4.1; Section 6 widens the scope to X ∪ Y).
	// Self-maintained caches instead pay, per segment-relation update, the
	// mini-join over the other segment relations plus the per-delta-tuple
	// maintenance, with the using pipeline's average entry size as the
	// delta-size proxy.
	var costC float64
	if spec.SelfMaint {
		perUpdate := float64(len(spec.Segment)-1)*secs(cost.IndexProbe) +
			avgEntry*(secs(cost.OutputTuple)+updateCost)
		for _, l := range spec.Segment {
			costC += pf.Rate(l) * perUpdate
			if !pf.PipelineReady(l) {
				ready = false
			}
		}
	} else {
		scope := spec.Segment
		if spec.GC {
			// Widened X ∪ Y scope, built in a reused scratch slice: Estimate
			// runs on every candidate each re-optimization and must not
			// allocate at steady state.
			pf.scopeBuf = append(append(pf.scopeBuf[:0], spec.Segment...), spec.Y...)
			scope = pf.scopeBuf
		}
		maintPos := len(scope) - 1
		maintRate := 0.0
		for _, l := range scope {
			maintRate += pf.D(l, maintPos)
			if !pf.PipelineReady(l) {
				ready = false
			}
		}
		costC = updateCost * maintRate
	}

	entryBytes := float64(8*nKey+cache.BucketBytes) + avgEntry*cache.RefBytes
	if spec.GC {
		entryBytes = float64(8*nKey+cache.BucketBytes) + avgEntry*3*cache.RefBytes
	}
	return Estimate{
		Benefit:         benefit,
		Cost:            costC,
		Proc:            dcSum - benefit,
		MissProb:        missProb,
		ExpectedEntries: distinct,
		ExpectedBytes:   distinct * entryBytes,
		Ready:           ready,
	}
}
