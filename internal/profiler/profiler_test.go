package profiler

import (
	"testing"

	"acache/internal/cost"
	"acache/internal/join"
	"acache/internal/planner"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/synth"
	"acache/internal/tuple"
)

func chain3(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.New(
		[]*tuple.Schema{
			tuple.RelationSchema(0, "A"),
			tuple.RelationSchema(1, "A", "B"),
			tuple.RelationSchema(2, "B"),
		},
		[]query.Pred{
			{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
			{Left: tuple.Attr{Rel: 1, Name: "B"}, Right: tuple.Attr{Rel: 2, Name: "B"}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func setup(t *testing.T, cfg Config) (*query.Query, *join.Exec, *Profiler, *cost.Meter) {
	t.Helper()
	q := chain3(t)
	meter := &cost.Meter{}
	e, err := join.NewExec(q, [][]int{{1, 2}, {2, 0}, {1, 0}}, meter, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return q, e, New(q, e, meter, cfg), meter
}

// drive feeds n window appends per relation in round-robin with full
// profiling so statistics fill deterministically.
func drive(e *join.Exec, pf *Profiler, n int) {
	gens := []stream.TupleGen{
		synth.Tuples(synth.Counter(0, 20, 1)),
		synth.Tuples(synth.Counter(0, 20, 1), synth.Counter(0, 20, 1)),
		synth.Tuples(synth.Counter(0, 20, 5)),
	}
	windows := []*stream.SlidingWindow{
		stream.NewSlidingWindow(20), stream.NewSlidingWindow(20), stream.NewSlidingWindow(20),
	}
	for i := 0; i < n; i++ {
		rel := i % 3
		for _, u := range windows[rel].Append(gens[rel]()) {
			u.Rel = rel
			if pf.ShouldProfile(rel) {
				_, prof := e.ProcessProfiled(u)
				pf.Observe(rel, prof)
			} else {
				e.Process(u)
			}
			pf.Tick(rel)
		}
	}
}

func TestStatisticsFillAndReady(t *testing.T) {
	_, e, pf, _ := setup(t, Config{SampleProb: 0.5, RateSpan: 20, Seed: 1})
	if pf.Ready() {
		t.Fatal("fresh profiler ready")
	}
	drive(e, pf, 2000)
	if !pf.Ready() {
		t.Fatal("profiler not ready after 2000 appends")
	}
	for pipe := 0; pipe < 3; pipe++ {
		if r := pf.Rate(pipe); r <= 0 {
			t.Fatalf("rate(%d) = %v", pipe, r)
		}
		// Every pipeline's first operator processes the raw update stream,
		// so its statistics must be strictly positive; downstream operators
		// may legitimately be starved (selective first join → c = 0).
		if c := pf.C(pipe, 0); c <= 0 {
			t.Fatalf("c(%d,0) = %v", pipe, c)
		}
		if d := pf.D(pipe, 0); d <= 0 {
			t.Fatalf("d(%d,0) = %v", pipe, d)
		}
		if c := pf.C(pipe, 1); c < 0 {
			t.Fatalf("c(%d,1) = %v", pipe, c)
		}
	}
	// d at position 0 is the update rate itself: D(i,0) = rate × mean(δ₀)
	// and δ₀ ≡ 1.
	for pipe := 0; pipe < 3; pipe++ {
		d0, r := pf.D(pipe, 0), pf.Rate(pipe)
		if d0 < 0.9*r || d0 > 1.1*r {
			t.Fatalf("D(%d,0)=%v vs rate %v", pipe, d0, r)
		}
	}
}

func TestResetPipeline(t *testing.T) {
	_, e, pf, _ := setup(t, Config{SampleProb: 0.5, RateSpan: 20, Seed: 2})
	drive(e, pf, 2000)
	pf.ResetPipeline(0)
	if pf.PipelineReady(0) {
		t.Fatal("reset pipeline still ready")
	}
}

func TestIdlePipelineCountsAsReady(t *testing.T) {
	_, e, pf, _ := setup(t, Config{SampleProb: 0.5, RateSpan: 20, Seed: 3})
	// Feed only relations 0 and 2; relation 1 stays idle.
	gen0 := synth.Tuples(synth.Counter(0, 20, 1))
	gen2 := synth.Tuples(synth.Counter(0, 20, 1))
	for i := 0; i < 3000; i++ {
		rel, gen := 0, gen0
		if i%2 == 1 {
			rel, gen = 2, gen2
		}
		u := stream.Update{Op: stream.Insert, Rel: rel, Tuple: gen()}
		if pf.ShouldProfile(rel) {
			_, prof := e.ProcessProfiled(u)
			pf.Observe(rel, prof)
		} else {
			e.Process(u)
		}
		pf.Tick(rel)
	}
	if !pf.PipelineReady(1) {
		t.Fatal("idle pipeline must be treated as ready (negligible traffic share)")
	}
}

func TestShadowMissProbConvergesForCyclicKeys(t *testing.T) {
	q, e, pf, _ := setup(t, Config{SampleProb: 0, Wd: 50, RateSpan: 20, Seed: 4})
	cands := planner.Candidates(q, [][]int{{1, 2}, {2, 0}, {1, 0}})
	spec := cands[0] // R2⋈R3 cache in ΔR1, probed on R1.A
	pf.StartShadow(spec)
	// Probe keys cycle over 10 values: steady-state misses ≈ 0 even though
	// each 50-probe window sees 10 distinct keys (the paper's windowed
	// estimator reads ~0.2).
	gen := synth.Counter(0, 10, 1)
	for i := 0; i < 4000; i++ {
		e.Process(stream.Update{Op: stream.Insert, Rel: 0, Tuple: tuple.Tuple{gen.Next()}})
		pf.Tick(0)
	}
	miss, ok := pf.ShadowMissProb(spec)
	if !ok {
		t.Fatal("shadow not ready")
	}
	if miss > 0.05 {
		t.Fatalf("retention-aware miss estimate %v, want ≈ 0", miss)
	}
	windowed, ok := pf.ShadowWindowedMissProb(spec)
	if !ok {
		t.Fatal("windowed estimate not ready")
	}
	if windowed < 0.1 {
		t.Fatalf("the paper's windowed estimator should read ≈ 10/50 here, got %v", windowed)
	}
	if d, ok := pf.ShadowDistinct(spec); !ok || d < 5 || d > 20 {
		t.Fatalf("distinct estimate %v (ok=%v), want ≈ 10", d, ok)
	}
	pf.StopShadow(spec)
	if _, ok := pf.ShadowMissProb(spec); ok {
		t.Fatal("stopped shadow still reporting")
	}
}

func TestShadowFreshKeysStayMissy(t *testing.T) {
	q, e, pf, _ := setup(t, Config{SampleProb: 0, Wd: 50, RateSpan: 20, Seed: 5})
	cands := planner.Candidates(q, [][]int{{1, 2}, {2, 0}, {1, 0}})
	spec := cands[0]
	pf.StartShadow(spec)
	// Every probe key is brand new: true miss probability is 1.
	gen := synth.Seq(0)
	for i := 0; i < 3000; i++ {
		e.Process(stream.Update{Op: stream.Insert, Rel: 0, Tuple: tuple.Tuple{gen.Next()}})
	}
	miss, ok := pf.ShadowMissProb(spec)
	if !ok {
		t.Fatal("shadow not ready (stationary stream should stabilize fast)")
	}
	if miss < 0.9 {
		t.Fatalf("fresh-key miss estimate %v, want ≈ 1", miss)
	}
}

func TestEstimateCostModelShapes(t *testing.T) {
	q, e, pf, _ := setup(t, Config{SampleProb: 0.5, RateSpan: 20, Seed: 6})
	drive(e, pf, 3000)
	cands := planner.Candidates(q, [][]int{{1, 2}, {2, 0}, {1, 0}})
	spec := cands[0]
	low := pf.Estimate(spec, 0.05, 20)
	high := pf.Estimate(spec, 0.95, 20)
	if !low.Ready {
		t.Fatal("estimate not ready after driving")
	}
	if low.Benefit <= high.Benefit {
		t.Fatalf("benefit must fall with miss probability: %v vs %v", low.Benefit, high.Benefit)
	}
	if low.Cost <= 0 {
		t.Fatalf("maintenance cost = %v", low.Cost)
	}
	if low.Cost != high.Cost {
		t.Fatal("maintenance cost must not depend on miss probability")
	}
	// proc(C) + benefit(C) = Σ d·c (Section 4.4's alternative formulation).
	dcSum := pf.OpCost(0, 0) + pf.OpCost(0, 1)
	if diff := low.Proc + low.Benefit - dcSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("proc + benefit = %v, want Σd·c = %v", low.Proc+low.Benefit, dcSum)
	}
	if low.ExpectedBytes <= 0 || low.ExpectedEntries != 20 {
		t.Fatalf("memory estimate: %v bytes, %v entries", low.ExpectedBytes, low.ExpectedEntries)
	}
}

func TestProbeAndUpdateCostFormulas(t *testing.T) {
	// probe_cost falls as miss probability rises (fewer hit emissions) and
	// grows with entry size; update_cost grows with key width.
	if ProbeCostPerTuple(1, 0, 10) <= ProbeCostPerTuple(1, 1, 10) {
		t.Fatal("probe cost vs miss prob inverted")
	}
	if ProbeCostPerTuple(1, 0, 10) <= ProbeCostPerTuple(1, 0, 1) {
		t.Fatal("probe cost vs entry size inverted")
	}
	if UpdateCostPerTuple(3) <= UpdateCostPerTuple(1) {
		t.Fatal("update cost vs key width inverted")
	}
}
