package planner

import (
	"fmt"
	"sort"
	"strings"

	"acache/internal/query"
)

// CrossID generalizes Spec.SharingID across queries: it renders the cache's
// identity in terms that survive attribute renaming and relation renumbering,
// so equivalent segments from *different* Query objects map to one ID. A
// hosting server uses it to pool cache demand across registered queries.
//
// relTokens[r] must identify relation r's extensional identity to the host —
// typically "stream-name|arity|window-signature". Attribute names are
// deliberately absent: two queries joining the same streams through the same
// column positions share contents even if they named the columns differently.
//
// The rendering canonicalizes:
//
//   - the segment (and, for globally-consistent caches, the reduction set Y)
//     as relation tokens sorted lexicographically — canonical positions;
//   - every equivalence class touching ≥ 2 of those relations, as the sorted
//     (canonical position, column index) pairs it equates — the join graph;
//   - the cache key classes, as their column positions within the segment;
//   - theta predicates internal to the covered relation set, direction-
//     normalized;
//   - the GC / self-maintained mode flags.
//
// Self-joins of one stream make canonical positions ambiguous (identical
// tokens tie-break by relation index, which renaming does not preserve); a
// missed match there costs only a pooling opportunity, never correctness —
// CrossID feeds accounting and telemetry, not physical sharing.
func CrossID(q *query.Query, s *Spec, relTokens []string) string {
	if len(relTokens) != q.N() {
		return ""
	}
	// Canonical positions: segment first, then Y, each sorted by token.
	rels := append([]int(nil), s.Segment...)
	sortByToken(rels, relTokens)
	segLen := len(rels)
	if s.GC {
		y := append([]int(nil), s.Y...)
		sortByToken(y, relTokens)
		rels = append(rels, y...)
	}
	pos := make(map[int]int, len(rels))
	for p, r := range rels {
		pos[r] = p
	}

	var b strings.Builder
	b.WriteString("seg=")
	for p, r := range rels {
		if p == segLen {
			b.WriteString("|y=")
		}
		b.WriteString(relTokens[r])
		b.WriteByte(';')
	}

	// Join graph: classes equating columns of ≥ 2 covered relations.
	var classes []string
	for c := 0; c < q.NumClasses(); c++ {
		cols := classCols(q, c, pos)
		if len(cols) >= 2 {
			classes = append(classes, strings.Join(cols, ","))
		}
	}
	sort.Strings(classes)
	b.WriteString("|join=")
	for _, cl := range classes {
		b.WriteString(cl)
		b.WriteByte(';')
	}

	// Cache key: the key classes' column positions within the segment.
	segPos := make(map[int]int, segLen)
	for _, r := range s.Segment {
		segPos[r] = pos[r]
	}
	b.WriteString("|key=")
	for _, c := range s.KeyClasses {
		b.WriteString(strings.Join(classCols(q, c, segPos), ","))
		b.WriteByte(';')
	}

	// Residual theta predicates internal to the covered relations,
	// direction-normalized (the lexicographically smaller orientation).
	var thetas []string
	for _, t := range q.Thetas() {
		pl, okL := pos[t.Left.Rel]
		pr, okR := pos[t.Right.Rel]
		if !okL || !okR {
			continue
		}
		cl, _ := q.Schema(t.Left.Rel).ColOf(t.Left)
		cr, _ := q.Schema(t.Right.Rel).ColOf(t.Right)
		fwd := fmt.Sprintf("%d.%d%v%d.%d", pl, cl, t.Op, pr, cr)
		rev := fmt.Sprintf("%d.%d%v%d.%d", pr, cr, flipCmp(t.Op), pl, cl)
		if rev < fwd {
			fwd = rev
		}
		thetas = append(thetas, fwd)
	}
	sort.Strings(thetas)
	b.WriteString("|theta=")
	for _, t := range thetas {
		b.WriteString(t)
		b.WriteByte(';')
	}

	if s.GC {
		b.WriteString("|gc")
		if s.SelfMaint {
			b.WriteString("|inv")
		}
	}
	return b.String()
}

// classCols renders class c's member columns over the relations in pos as
// sorted "position.column" strings.
func classCols(q *query.Query, c int, pos map[int]int) []string {
	var cols []string
	for _, a := range q.ClassAttrs(c) {
		p, ok := pos[a.Rel]
		if !ok {
			continue
		}
		col, _ := q.Schema(a.Rel).ColOf(a)
		cols = append(cols, fmt.Sprintf("%d.%d", p, col))
	}
	sort.Strings(cols)
	return cols
}

// sortByToken orders rels by their host-scope tokens, tie-breaking on the
// relation index for determinism within one query.
func sortByToken(rels []int, relTokens []string) {
	sort.Slice(rels, func(i, j int) bool {
		ti, tj := relTokens[rels[i]], relTokens[rels[j]]
		if ti != tj {
			return ti < tj
		}
		return rels[i] < rels[j]
	})
}

// flipCmp mirrors a comparison operator so a theta predicate can be rendered
// from either side.
func flipCmp(op query.CmpOp) query.CmpOp {
	switch op {
	case query.Lt:
		return query.Gt
	case query.Gt:
		return query.Lt
	case query.Le:
		return query.Ge
	case query.Ge:
		return query.Le
	default:
		return op
	}
}
