package planner

import (
	"testing"

	"acache/internal/query"
	"acache/internal/tuple"
)

// crossQuery builds a 3-way chain query R(a)-S(a,b)-T(b) with the given
// attribute names, so tests can rename attributes without changing structure.
func crossQuery(t *testing.T, ra, sa, sb, tb string) *query.Query {
	t.Helper()
	q, err := query.New(
		[]*tuple.Schema{
			tuple.RelationSchema(0, ra),
			tuple.RelationSchema(1, sa, sb),
			tuple.RelationSchema(2, tb),
		},
		[]query.Pred{
			{Left: tuple.Attr{Rel: 0, Name: ra}, Right: tuple.Attr{Rel: 1, Name: sa}},
			{Left: tuple.Attr{Rel: 1, Name: sb}, Right: tuple.Attr{Rel: 2, Name: tb}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func findSpec(t *testing.T, specs []*Spec, pipeline int, segLen int) *Spec {
	t.Helper()
	for _, s := range specs {
		if s.Pipeline == pipeline && len(s.Segment) == segLen {
			return s
		}
	}
	t.Fatalf("no candidate with pipeline %d and segment size %d", pipeline, segLen)
	return nil
}

func TestCrossIDStableUnderAttributeRenaming(t *testing.T) {
	tokens := []string{"R|1|s100", "S|2|s100", "T|1|s100"}
	q1 := crossQuery(t, "A", "A", "B", "B")
	q2 := crossQuery(t, "x", "x", "y", "y") // same structure, renamed columns

	ord := Ordering{{1, 2}, {2, 0}, {1, 0}}
	c1 := Candidates(q1, ord)
	c2 := Candidates(q2, ord)

	s1 := findSpec(t, c1, 0, 2) // ΔR: cache(S⋈T)
	s2 := findSpec(t, c2, 0, 2)
	id1 := CrossID(q1, s1, tokens)
	id2 := CrossID(q2, s2, tokens)
	if id1 == "" || id1 != id2 {
		t.Fatalf("renamed query's CrossID diverged:\n%q\nvs\n%q", id1, id2)
	}
}

func TestCrossIDDistinguishesWindowsAndStreams(t *testing.T) {
	q := crossQuery(t, "A", "A", "B", "B")
	ord := Ordering{{1, 2}, {2, 0}, {1, 0}}
	s := findSpec(t, Candidates(q, ord), 0, 2)

	base := CrossID(q, s, []string{"R|1|s100", "S|2|s100", "T|1|s100"})
	otherWin := CrossID(q, s, []string{"R|1|s100", "S|2|s200", "T|1|s100"})
	otherStream := CrossID(q, s, []string{"R|1|s100", "S2|2|s100", "T|1|s100"})
	if base == otherWin {
		t.Fatal("CrossID ignored a window change on a segment relation")
	}
	if base == otherStream {
		t.Fatal("CrossID ignored a stream change on a segment relation")
	}
	// A token change outside the segment (and outside Y, for non-GC specs)
	// must not perturb the ID: the cache contents depend only on the
	// covered relations.
	otherPrefix := CrossID(q, s, []string{"R9|1|s777", "S|2|s100", "T|1|s100"})
	if base != otherPrefix {
		t.Fatalf("CrossID depends on a relation outside the segment:\n%q\nvs\n%q", base, otherPrefix)
	}
}

func TestCrossIDSeparatesKeyAndMode(t *testing.T) {
	q := crossQuery(t, "A", "A", "B", "B")
	tokens := []string{"R|1|s100", "S|2|s100", "T|1|s100"}

	// ΔR's S⋈T segment vs ΔT's R⋈S segment (under the orderings that admit
	// each): different relation sets must never collide.
	sST := findSpec(t, Candidates(q, Ordering{{1, 2}, {2, 0}, {1, 0}}), 0, 2)
	sRS := findSpec(t, Candidates(q, Ordering{{1, 2}, {0, 2}, {1, 0}}), 2, 2)
	if CrossID(q, sST, tokens) == CrossID(q, sRS, tokens) {
		t.Fatal("CrossID collided for different segment relation sets")
	}

	// Wrong token arity → no cross-query identity.
	if got := CrossID(q, sST, tokens[:2]); got != "" {
		t.Fatalf("CrossID with mismatched tokens = %q, want empty", got)
	}
}
