package planner

import (
	"math/rand"
	"sort"
	"testing"

	"acache/internal/query"
	"acache/internal/tuple"
)

func chain3(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.New(
		[]*tuple.Schema{
			tuple.RelationSchema(0, "A"),
			tuple.RelationSchema(1, "A", "B"),
			tuple.RelationSchema(2, "B"),
		},
		[]query.Pred{
			{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
			{Left: tuple.Attr{Rel: 1, Name: "B"}, Right: tuple.Attr{Rel: 2, Name: "B"}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func clique(t *testing.T, n int) *query.Query {
	t.Helper()
	schemas := make([]*tuple.Schema, n)
	var preds []query.Pred
	for i := range schemas {
		schemas[i] = tuple.RelationSchema(i, "A")
		if i > 0 {
			preds = append(preds, query.Pred{
				Left:  tuple.Attr{Rel: 0, Name: "A"},
				Right: tuple.Attr{Rel: i, Name: "A"},
			})
		}
	}
	q, err := query.New(schemas, preds)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestOrderingValidate(t *testing.T) {
	good := Ordering{{1, 2}, {0, 2}, {0, 1}}
	if err := good.Validate(3); err != nil {
		t.Fatalf("good ordering rejected: %v", err)
	}
	bad := []Ordering{
		{{1, 2}, {0, 2}},         // wrong pipeline count
		{{1}, {0, 2}, {0, 1}},    // wrong step count
		{{1, 1}, {0, 2}, {0, 1}}, // duplicate
		{{0, 2}, {0, 2}, {0, 1}}, // self
		{{1, 3}, {0, 2}, {0, 1}}, // out of range
	}
	for i, ord := range bad {
		if err := ord.Validate(3); err == nil {
			t.Fatalf("bad ordering %d accepted", i)
		}
	}
}

func TestPrefixInvariant(t *testing.T) {
	// Figure 3's plan: ΔR1: R2,R3; ΔR2: R3,R1; ΔR3: R2,R1.
	ord := Ordering{{1, 2}, {2, 0}, {1, 0}}
	if !SatisfiesPrefixInvariant(ord, []int{1, 2}) {
		t.Fatal("{R2,R3} must satisfy the prefix invariant (Example 3.4)")
	}
	// Example 3.4's negative case: {R2,R1} fails because the join with R1
	// is not the first in ΔR2's pipeline.
	if SatisfiesPrefixInvariant(ord, []int{0, 1}) {
		t.Fatal("{R1,R2} must not satisfy the prefix invariant (Example 3.4)")
	}
	// The full relation set always satisfies it.
	if !SatisfiesPrefixInvariant(ord, []int{0, 1, 2}) {
		t.Fatal("full set must always satisfy the prefix invariant")
	}
}

func TestCandidatesFigure3(t *testing.T) {
	q := chain3(t)
	ord := Ordering{{1, 2}, {2, 0}, {1, 0}}
	cands := Candidates(q, ord)
	if len(cands) != 1 {
		t.Fatalf("candidates = %v, want exactly the R2⋈R3 cache in ΔR1", cands)
	}
	c := cands[0]
	if c.Pipeline != 0 || c.Start != 0 || c.End != 1 || c.GC {
		t.Fatalf("candidate = %+v", c)
	}
	// Its key is the B class (the probe uses R1.A → join attrs between
	// prefix {R1} and segment {R2,R3} is class A).
	if len(c.KeyClasses) != 1 {
		t.Fatalf("key classes = %v", c.KeyClasses)
	}
}

// TestExample41 reproduces the paper's Example 4.1: the 6-way equijoin on A
// with Figure 5(a)'s pipelines; the prefix property holds exactly for
// {R1,R2}, {R4,R5}, {R1,R2,R3}, and {R1,R2,R3,R4,R5}.
func TestExample41(t *testing.T) {
	q := clique(t, 6)
	ord := Ordering{
		{1, 2, 3, 4, 5}, // ΔR1: R2,R3,R4,R5,R6
		{0, 2, 4, 3, 5}, // ΔR2: R1,R3,R5,R4,R6
		{1, 0, 3, 4, 5}, // ΔR3: R2,R1,R4,R5,R6
		{4, 0, 1, 2, 5}, // ΔR5 wait—pipelines are by relation; see below
		{3, 0, 1, 2, 5}, // ΔR5: R4,R1,R2,R3,R6? adjusted below
		{1, 0, 3, 4, 2}, // ΔR6: R2,R1,R4,R5,R3
	}
	// Figure 5(a) lists pipelines for ΔR1..ΔR6 as:
	// R2,R3,R4,R5,R6 / R1,R3,R5,R4,R6 / R2,R1,R4,R5,R6 /
	// R5,R1,R2,R3,R6 / R4,R2,R3,R1,R6 / R2,R1,R4,R5,R3.
	ord = Ordering{
		{1, 2, 3, 4, 5},
		{0, 2, 4, 3, 5},
		{1, 0, 3, 4, 5},
		{4, 0, 1, 2, 5},
		{3, 1, 2, 0, 5},
		{1, 0, 3, 4, 2},
	}
	if err := ord.Validate(6); err != nil {
		t.Fatalf("ordering: %v", err)
	}
	sets := map[string][]int{
		"{R1,R2}":            {0, 1},
		"{R4,R5}":            {3, 4},
		"{R1,R2,R3}":         {0, 1, 2},
		"{R1,R2,R3,R4,R5}":   {0, 1, 2, 3, 4},
		"{R1,R3} (negative)": {0, 2},
		"{R2,R3} (negative)": {1, 2},
		"{R3,R4,R5} (neg)":   {2, 3, 4},
		"{R1,R2,R4} (neg)":   {0, 1, 3},
		"{R4,R5,R6} (neg)":   {3, 4, 5},
	}
	want := map[string]bool{
		"{R1,R2}": true, "{R4,R5}": true,
		"{R1,R2,R3}": true, "{R1,R2,R3,R4,R5}": true,
	}
	for name, rels := range sets {
		if got := SatisfiesPrefixInvariant(ord, rels); got != want[name] {
			t.Fatalf("%s: prefix invariant = %v, want %v", name, got, want[name])
		}
	}
	// Example 4.2: the {R1,R2} cache is shared in ΔR3, ΔR4, ΔR6 pipelines.
	cands := Candidates(q, ord)
	groups := Groups(cands)
	count12 := map[int]int{}
	for i, c := range cands {
		if len(c.Segment) == 2 && c.Segment[0] == 0 && c.Segment[1] == 1 {
			count12[groups[i]]++
		}
	}
	for g, n := range count12 {
		if n != 3 {
			t.Fatalf("{R1,R2} sharing group %d has %d placements, want 3 (ΔR3, ΔR4, ΔR6)", g, n)
		}
	}
	if len(count12) != 1 {
		t.Fatalf("{R1,R2} placements split across %d groups", len(count12))
	}
}

func TestForestNesting(t *testing.T) {
	q := clique(t, 6)
	ord := Ordering{
		{1, 2, 3, 4, 5},
		{0, 2, 4, 3, 5},
		{1, 0, 3, 4, 5},
		{4, 0, 1, 2, 5},
		{3, 1, 2, 0, 5},
		{1, 0, 3, 4, 2},
	}
	cands := Candidates(q, ord)
	// ΔR6's pipeline has three candidates: {R1,R2} ⊂ {R1,R2,R4,R5}? No —
	// Figure 5(c): {R1,R2} ⊂ {R1,R2,R4,R5} ⊂ ... Collect ΔR6's and check
	// the forest parents are consistent with containment.
	var six []*Spec
	for _, c := range cands {
		if c.Pipeline == 5 {
			six = append(six, c)
		}
	}
	if len(six) < 2 {
		t.Fatalf("ΔR6 candidates: %v", six)
	}
	parent := Forest(six)
	for i, p := range parent {
		if p == -1 {
			continue
		}
		if !six[p].Contains(six[i]) {
			t.Fatalf("parent %v does not contain %v", six[p], six[i])
		}
	}
}

func TestGCCandidatesQuotaAndClosure(t *testing.T) {
	q := clique(t, 4)
	// ΔR4: R2,R3,R1 — Example 6.1's shape: {R2,R3} in ΔR4 lacks the
	// prefix invariant but closes with Y = {R1}.
	ord := Ordering{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {1, 2, 0}}
	prefix := Candidates(q, ord)
	gcs := GCCandidates(q, ord, prefix, len(prefix)+100)
	foundClosure := false
	for _, c := range gcs {
		if c.Pipeline == 3 && len(c.Segment) == 2 && c.Segment[0] == 1 && c.Segment[1] == 2 {
			foundClosure = true
			if c.SelfMaint || len(c.Y) != 1 || c.Y[0] != 0 {
				t.Fatalf("(R2⋈R3) candidate should close with Y={R1}: %+v", c)
			}
		}
	}
	if !foundClosure {
		t.Fatalf("missing Example 6.1 candidate among %v", gcs)
	}
	// Quota: with quota ≤ p, no GC candidates.
	if got := GCCandidates(q, ord, prefix, len(prefix)); got != nil {
		t.Fatalf("quota ≤ p must yield none, got %v", got)
	}
	// Quota p+1 yields exactly one, and it must be a smallest-Y one.
	if got := GCCandidates(q, ord, prefix, len(prefix)+1); len(got) != 1 {
		t.Fatalf("quota p+1 yielded %v", got)
	}
}

func TestGCSelfMaintFallback(t *testing.T) {
	q := chain3(t)
	// n = 3: no host-free closure can exist, so every non-prefix segment
	// becomes a self-maintained candidate.
	ord := Ordering{{1, 2}, {0, 2}, {1, 0}}
	prefix := Candidates(q, ord)
	gcs := GCCandidates(q, ord, prefix, 10)
	if len(gcs) == 0 {
		t.Fatal("no GC candidates")
	}
	for _, c := range gcs {
		if !c.SelfMaint {
			t.Fatalf("3-way GC candidate %+v should be self-maintained", c)
		}
		if len(c.Y) != 0 {
			t.Fatalf("self-maintained candidate has Y = %v", c.Y)
		}
	}
}

func TestSharingIDDistinguishesModes(t *testing.T) {
	a := &Spec{Segment: []int{1, 2}, KeyClasses: []int{0}}
	b := &Spec{Segment: []int{1, 2}, KeyClasses: []int{0}, GC: true, SelfMaint: true}
	c := &Spec{Segment: []int{1, 2}, KeyClasses: []int{0}, GC: true, Y: []int{3}}
	if a.SharingID() == b.SharingID() || b.SharingID() == c.SharingID() || a.SharingID() == c.SharingID() {
		t.Fatal("sharing IDs must distinguish prefix, self-maintained, and reduced caches")
	}
}

func TestOverlapsAndContains(t *testing.T) {
	a := &Spec{Pipeline: 0, Start: 0, End: 1}
	b := &Spec{Pipeline: 0, Start: 1, End: 2}
	c := &Spec{Pipeline: 0, Start: 0, End: 2}
	d := &Spec{Pipeline: 1, Start: 0, End: 1}
	if !a.Overlaps(b) || !a.Overlaps(c) || a.Overlaps(d) {
		t.Fatal("overlap logic wrong")
	}
	if !c.Contains(a) || a.Contains(c) || a.Contains(a) {
		t.Fatal("contains logic wrong")
	}
}

// TestPropertyCandidatesWellFormed: for random orderings of random clique
// sizes, every enumerated candidate satisfies the prefix invariant, covers
// ≥ 2 operators, carries a nonempty key, and candidates within a pipeline
// are nested-or-disjoint (Theorem 4.1's premise, which the selection DP
// relies on).
func TestPropertyCandidatesWellFormed(t *testing.T) {
	rng := newRand(77)
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(4)
		q := clique(t, n)
		ord := make(Ordering, n)
		for i := 0; i < n; i++ {
			var others []int
			for r := 0; r < n; r++ {
				if r != i {
					others = append(others, r)
				}
			}
			rng.Shuffle(len(others), func(a, b int) { others[a], others[b] = others[b], others[a] })
			ord[i] = others
		}
		cands := Candidates(q, ord)
		for _, c := range cands {
			if c.End <= c.Start {
				t.Fatalf("trial %d: single-operator candidate %v", trial, c)
			}
			if !SatisfiesPrefixInvariant(ord, c.Segment) {
				t.Fatalf("trial %d: candidate %v violates the prefix invariant", trial, c)
			}
			if len(c.KeyClasses) == 0 {
				t.Fatalf("trial %d: candidate %v has an empty key", trial, c)
			}
		}
		// Per-pipeline nesting.
		byPipe := make(map[int][]*Spec)
		for _, c := range cands {
			byPipe[c.Pipeline] = append(byPipe[c.Pipeline], c)
		}
		for _, specs := range byPipe {
			Forest(specs) // panics on partial overlap
			for i := 0; i < len(specs); i++ {
				for j := i + 1; j < len(specs); j++ {
					a, b := specs[i], specs[j]
					if a.Overlaps(b) && !a.Contains(b) && !b.Contains(a) {
						t.Fatalf("trial %d: partial overlap %v / %v", trial, a, b)
					}
				}
			}
		}
		// GC candidates: closures must satisfy the prefix invariant with Y
		// added, or be self-maintained with empty Y.
		for _, c := range GCCandidates(q, ord, cands, len(cands)+20) {
			if c.SelfMaint {
				if len(c.Y) != 0 {
					t.Fatalf("trial %d: self-maintained %v has Y", trial, c)
				}
				continue
			}
			union := append(append([]int(nil), c.Segment...), c.Y...)
			sortInts(union)
			if !SatisfiesPrefixInvariant(ord, union) {
				t.Fatalf("trial %d: GC closure %v not prefix-closed", trial, c)
			}
			for _, y := range c.Y {
				if y == c.Pipeline {
					t.Fatalf("trial %d: host in Y: %v", trial, c)
				}
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	ord := Ordering{{1, 2}, {0, 2}, {0, 1}}
	cp := ord.Clone()
	cp[0][0] = 9
	if ord[0][0] == 9 {
		t.Fatal("Clone aliased")
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func sortInts(v []int) { sort.Ints(v) }
