// Package planner enumerates candidate caches for a set of MJoin pipelines:
// the prefix-invariant candidates of Section 4 and the globally-consistent
// candidates of Section 6. It computes cache keys (as attribute equivalence
// classes), canonical identities for cache sharing (Definition 4.1), and the
// per-pipeline containment forests the selection algorithms rely on
// (Theorem 4.1).
package planner

import (
	"fmt"
	"sort"
	"strings"

	"acache/internal/query"
)

// Ordering fixes the MJoin pipelines: Ordering[i] is the sequence of the
// other n−1 relations joined, in order, when an update to relation i is
// processed (the paper's R_i1 … R_i(n−1)).
type Ordering [][]int

// Validate checks that ord is a well-formed ordering for an n-way join:
// each pipeline i is a permutation of all relations except i.
func (ord Ordering) Validate(n int) error {
	if len(ord) != n {
		return fmt.Errorf("planner: ordering has %d pipelines, want %d", len(ord), n)
	}
	for i, pipe := range ord {
		if len(pipe) != n-1 {
			return fmt.Errorf("planner: pipeline %d has %d steps, want %d", i, len(pipe), n-1)
		}
		seen := make(map[int]bool, n)
		for _, r := range pipe {
			if r < 0 || r >= n || r == i || seen[r] {
				return fmt.Errorf("planner: pipeline %d is not a permutation of the other relations: %v", i, pipe)
			}
			seen[r] = true
		}
	}
	return nil
}

// Clone deep-copies the ordering.
func (ord Ordering) Clone() Ordering {
	out := make(Ordering, len(ord))
	for i, p := range ord {
		out[i] = append([]int(nil), p...)
	}
	return out
}

// Spec describes one candidate cache placement: cache C_ijk lives in
// pipeline Pipeline and covers join operators at positions Start..End
// (0-based, inclusive, End > Start−1; at least two relations so the cached
// subresult contains at least one join, per Example 4.1).
type Spec struct {
	// Pipeline is i: the pipeline whose CacheLookup probes this cache.
	Pipeline int
	// Start and End are the covered operator positions j..k, 0-based
	// inclusive, in pipeline i.
	Start, End int
	// Segment is the set of relations at positions Start..End, sorted.
	Segment []int
	// KeyClasses is the cache key K_ijk: the sorted attribute equivalence
	// classes shared between the pipeline's prefix relations and Segment.
	KeyClasses []int
	// GC marks a globally-consistent cache (Section 6) caching X ⋉ Y with
	// X = Segment; for prefix-invariant caches GC is false and Y is nil.
	GC bool
	// Y is the reduction set of a globally-consistent cache, sorted.
	// Segment ∪ Y satisfies the prefix invariant.
	Y []int
	// SelfMaint marks the fallback mode for segments with no host-free
	// reduction closure (the paper's X ⋉ Y with Y containing the hosting
	// pipeline's own relation, e.g. Figure 12's (T⋈S)⋉R): entries hold the
	// full segment-join selection and are maintained by an explicitly paid
	// mini-join — each segment relation's update is joined with the other
	// segment relations to compute the exact segment-join delta, which is
	// applied to the cache. This keeps the plain consistency invariant
	// (Definition 3.1) at a maintenance cost the cost model charges,
	// instead of the paper's host-in-Y reduction, whose probe-correctness
	// hole is analyzed in DESIGN.md.
	SelfMaint bool

	// key and sharingID memoize Key and SharingID; Spec fields are never
	// mutated after planning.
	key       string
	sharingID string
}

// Key identifies one candidate placement: pipeline, span, and mode. The
// adaptive engine and the profiler look placements up on every update, so
// the identifier is memoized rather than re-formatted per call. (The format
// matches the engine's historical placement key, whose string order breaks
// selection ties.)
func (s *Spec) Key() string {
	if s.key == "" {
		s.key = fmt.Sprintf("%d:%d:%d:gc=%v", s.Pipeline, s.Start, s.End, s.GC)
	}
	return s.key
}

// SharingID returns the canonical identity under which caches are shared
// across pipelines (Definition 4.1): same segment relation set and same key.
// Globally-consistent caches additionally require the same reduction set,
// since their contents depend on Y.
func (s *Spec) SharingID() string {
	if s.sharingID != "" {
		return s.sharingID
	}
	var b strings.Builder
	b.WriteString("seg=")
	for _, r := range s.Segment {
		fmt.Fprintf(&b, "%d,", r)
	}
	b.WriteString("key=")
	for _, c := range s.KeyClasses {
		fmt.Fprintf(&b, "%d,", c)
	}
	if s.GC {
		b.WriteString("Y=")
		for _, r := range s.Y {
			fmt.Fprintf(&b, "%d,", r)
		}
		if s.SelfMaint {
			b.WriteString("inv")
		}
	}
	s.sharingID = b.String()
	return s.sharingID
}

// String renders the spec in the paper's style, e.g. "C[ΔR1: R2⋈R3]".
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "C[ΔR%d:", s.Pipeline+1)
	for i, r := range s.Segment {
		if i > 0 {
			b.WriteString("⋈")
		} else {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "R%d", r+1)
	}
	switch {
	case s.SelfMaint:
		b.WriteString(" self-maint")
	case s.GC:
		b.WriteString(" ⋉")
		for _, r := range s.Y {
			fmt.Fprintf(&b, " R%d", r+1)
		}
	}
	b.WriteString("]")
	return b.String()
}

// Overlaps reports whether two specs share a join operator — only possible
// within one pipeline (nonoverlap is a per-pipeline constraint, Section 4.2).
func (s *Spec) Overlaps(t *Spec) bool {
	return s.Pipeline == t.Pipeline && s.Start <= t.End && t.Start <= s.End
}

// Contains reports whether s's segment strictly contains t's within the same
// pipeline.
func (s *Spec) Contains(t *Spec) bool {
	return s.Pipeline == t.Pipeline &&
		s.Start <= t.Start && t.End <= s.End &&
		(s.End-s.Start) > (t.End-t.Start)
}

// segmentSet returns the sorted relations at positions start..end of pipe.
func segmentSet(pipe []int, start, end int) []int {
	seg := append([]int(nil), pipe[start:end+1]...)
	sort.Ints(seg)
	return seg
}

// prefixSet returns the relations before position start in pipeline i
// (including relation i itself, which heads every composite tuple).
func prefixSet(i int, pipe []int, start int) []int {
	out := []int{i}
	out = append(out, pipe[:start]...)
	sort.Ints(out)
	return out
}

// SatisfiesPrefixInvariant reports whether the relation set rels satisfies
// Definition 3.2 under ord: for every relation l in rels, the first
// len(rels)−1 operators of ΔR_l's pipeline join exactly the other relations
// of rels (in some order).
func SatisfiesPrefixInvariant(ord Ordering, rels []int) bool {
	k := len(rels) - 1
	inSet := make(map[int]bool, len(rels))
	for _, r := range rels {
		inSet[r] = true
	}
	for _, l := range rels {
		pipe := ord[l]
		if len(pipe) < k {
			return false
		}
		for _, r := range pipe[:k] {
			if !inSet[r] {
				return false
			}
		}
	}
	return true
}

// Candidates enumerates all prefix-invariant candidate caches for the given
// ordering: every contiguous segment of ≥ 2 operators in every pipeline whose
// relation set satisfies the prefix invariant. Within each pipeline the
// result is sorted by (Start, End).
func Candidates(q *query.Query, ord Ordering) []*Spec {
	n := q.N()
	var out []*Spec
	for i := 0; i < n; i++ {
		pipe := ord[i]
		for start := 0; start < len(pipe); start++ {
			for end := start + 1; end < len(pipe); end++ {
				seg := segmentSet(pipe, start, end)
				if !SatisfiesPrefixInvariant(ord, seg) {
					continue
				}
				if !thetaSafe(q, ord, i, start, end) {
					continue
				}
				out = append(out, newSpec(q, ord, i, start, end, false, nil))
			}
		}
	}
	return out
}

// thetaSafe reports whether a placement's cache can stay consistent in the
// presence of residual theta predicates: no theta may cross from the
// placement's prefix (the host relation and the operators before the
// segment) into the segment. Such a theta would be evaluated inside the
// cached segment's operators, making the computed values depend on the
// probing tuple — cache entries must be pure key selections (Definition
// 3.1). Thetas internal to the segment, or between the segment and the
// pipeline's suffix, are applied identically with or without the cache.
func thetaSafe(q *query.Query, ord Ordering, i, start, end int) bool {
	pipe := ord[i]
	seg := segmentSet(pipe, start, end)
	prefix := prefixSet(i, pipe, start)
	return len(q.ThetasBetween(prefix, seg)) == 0
}

func newSpec(q *query.Query, ord Ordering, i, start, end int, gc bool, y []int) *Spec {
	pipe := ord[i]
	seg := segmentSet(pipe, start, end)
	prefix := prefixSet(i, pipe, start)
	return &Spec{
		Pipeline:   i,
		Start:      start,
		End:        end,
		Segment:    seg,
		KeyClasses: q.SharedClasses(prefix, seg),
		GC:         gc,
		Y:          y,
	}
}

// GCCandidates enumerates globally-consistent candidates per Section 6's
// quota scheme. quota is the paper's m: if the number of prefix-invariant
// candidates p ≥ quota, no GC candidates are added. Otherwise up to
// quota − p GC caches X ⋉ Y are generated, first with |Y| = 1 closures
// (X ∪ Y is all but zero extra relations beyond the smallest closure), then
// growing Y, until the quota fills. Each GC candidate is a segment of some
// pipeline whose relation set X does not itself satisfy the prefix
// invariant, paired with the smallest Y ⊇ ∅ disjoint from X such that X ∪ Y
// does (taking Y = all remaining relations always works, since the prefix
// invariant trivially holds for R_1…R_n).
func GCCandidates(q *query.Query, ord Ordering, prefixCands []*Spec, quota int) []*Spec {
	p := len(prefixCands)
	if p >= quota {
		return nil
	}
	n := q.N()
	type gcCand struct {
		spec  *Spec
		ySize int
	}
	var pool []gcCand
	seen := make(map[string]bool)
	for _, c := range prefixCands {
		seen[fmt.Sprintf("%d:%d:%d", c.Pipeline, c.Start, c.End)] = true
	}
	for i := 0; i < n; i++ {
		pipe := ord[i]
		for start := 0; start < len(pipe); start++ {
			for end := start + 1; end < len(pipe); end++ {
				if seen[fmt.Sprintf("%d:%d:%d", i, start, end)] {
					continue
				}
				if !thetaSafe(q, ord, i, start, end) {
					continue
				}
				seg := segmentSet(pipe, start, end)
				y := smallestClosure(ord, seg, i, n)
				if y == nil {
					// No host-free closure (the paper would put the host
					// relation itself in Y): fall back to the
					// invalidation-mode cache, ranked after every real
					// closure.
					spec := newSpec(q, ord, i, start, end, true, nil)
					spec.SelfMaint = true
					pool = append(pool, gcCand{spec: spec, ySize: n})
					continue
				}
				pool = append(pool, gcCand{spec: newSpec(q, ord, i, start, end, true, y), ySize: len(y)})
			}
		}
	}
	// Smaller reduction sets first (Section 6: "X is all but one relation,
	// then … all but two", i.e. prefer small Y), then canonical order.
	sort.SliceStable(pool, func(a, b int) bool {
		if pool[a].ySize != pool[b].ySize {
			return pool[a].ySize < pool[b].ySize
		}
		sa, sb := pool[a].spec, pool[b].spec
		if sa.Pipeline != sb.Pipeline {
			return sa.Pipeline < sb.Pipeline
		}
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		return sa.End < sb.End
	})
	limit := quota - p
	var out []*Spec
	for _, c := range pool {
		if len(out) >= limit {
			break
		}
		out = append(out, c.spec)
	}
	return out
}

// smallestClosure finds the smallest set Y (sorted), disjoint from seg and
// excluding the hosting pipeline's relation host, such that seg ∪ Y
// satisfies the prefix invariant; nil if none exists (it always does unless
// the only closure requires the host relation itself: the full set
// R_1…R_n \ {host} may not be prefix-closed, in which case the candidate is
// skipped — the full set including host can never be a cache segment of
// host's own pipeline).
func smallestClosure(ord Ordering, seg []int, host, n int) []int {
	// Candidates for Y members: all relations not in seg and not the host.
	inSeg := make(map[int]bool)
	for _, r := range seg {
		inSeg[r] = true
	}
	var others []int
	for r := 0; r < n; r++ {
		if r != host && !inSeg[r] {
			others = append(others, r)
		}
	}
	// Search subsets of others by increasing size. n is small (the paper's
	// experiments go to n = 9, quota m = 6), so the 2^|others| walk is fine;
	// we bound it for safety.
	if len(others) > 20 {
		others = others[:20]
	}
	best := []int(nil)
	for size := 0; size <= len(others); size++ {
		if found := searchClosure(ord, seg, others, size); found != nil {
			best = found
			break
		}
	}
	if best == nil {
		return nil
	}
	sort.Ints(best)
	return best
}

// searchClosure tries all size-element subsets of others as Y.
func searchClosure(ord Ordering, seg, others []int, size int) []int {
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	for {
		y := make([]int, size)
		for i, j := range idx {
			y[i] = others[j]
		}
		if size > 0 || !SatisfiesPrefixInvariant(ord, seg) {
			union := append(append([]int(nil), seg...), y...)
			sort.Ints(union)
			if SatisfiesPrefixInvariant(ord, union) {
				return y
			}
		}
		if size == 0 {
			return nil
		}
		// Next combination.
		i := size - 1
		for i >= 0 && idx[i] == len(others)-size+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < size; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Groups partitions specs into sharing groups (Definition 4.1). The returned
// slice maps each spec index to its group id; group ids are dense from 0.
func Groups(specs []*Spec) []int {
	ids := make(map[string]int)
	out := make([]int, len(specs))
	for i, s := range specs {
		id := s.SharingID()
		g, ok := ids[id]
		if !ok {
			g = len(ids)
			ids[id] = g
		}
		out[i] = g
	}
	return out
}

// Forest computes, for the specs of a single pipeline, each spec's parent:
// the smallest spec strictly containing it, or −1 for roots. It panics if
// two specs partially overlap, which Theorem 4.1's premise (and the prefix
// invariant) rules out.
func Forest(specs []*Spec) []int {
	parent := make([]int, len(specs))
	for i := range parent {
		parent[i] = -1
	}
	for i, a := range specs {
		for j, b := range specs {
			if i == j || !a.Overlaps(b) {
				continue
			}
			if !a.Contains(b) && !b.Contains(a) && !(a.Start == b.Start && a.End == b.End) {
				panic(fmt.Sprintf("planner: partially overlapping candidates %v and %v", a, b))
			}
			if b.Contains(a) {
				if parent[i] == -1 || specs[parent[i]].Contains(b) {
					parent[i] = j
				}
			}
		}
	}
	return parent
}
