// Package tier implements the file-backed cold tier under the engine's
// tiered slab storage: fixed-size page slots inside a memory-mapped spill
// file. Hot state lives in ordinary heap pages; pages demoted past the hot
// watermark are copied into a spill slot and accessed through the mapping,
// so cold tuples remain directly addressable (a probe that must walk a cold
// chain simply faults the page in) while the resident footprint reported to
// the memory allocator shrinks to the hot tier.
//
// The spill file doubles as durable state: its header records the codec
// version and page geometry, and a checkpoint may reference cold pages by
// slot instead of inlining their bytes, so a warm restart remaps the file
// and verifies the header instead of re-streaming the window.
package tier

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"acache/internal/fault"
)

// Options configure tiered slab storage. The zero value disables tiering
// entirely (every store and cache table stays fully in memory, byte-identical
// to the untired engine).
type Options struct {
	// Dir is the spill directory; empty disables tiering. The directory is
	// created on demand and holds one spill file per relation store plus one
	// shared spill for cache tables (per engine; sharded engines use a
	// per-shard subdirectory).
	Dir string
	// HotBytes is the per-store (and per-cache-table) hot-tier watermark in
	// bytes: state past it is demoted to the spill file. ≤ 0 uses a default.
	HotBytes int
	// PageBytes is the spill page size; ≤ 0 uses a default. Rounded up to the
	// OS page granularity so mapped segments stay aligned.
	PageBytes int
	// FS is the filesystem seam spill I/O goes through; nil uses the real
	// filesystem. Tests inject a fault.DiskInjector here to exercise the
	// ENOSPC / write-failure degradation paths deterministically. Note that
	// stores through an established mmap segment bypass the seam — only file
	// metadata operations (create, grow, header write, the no-mmap write-back
	// fallback) are interceptable.
	FS fault.FS
}

// Enabled reports whether tiering is configured.
func (o Options) Enabled() bool { return o.Dir != "" }

// Defaults for unset option fields.
const (
	DefaultHotBytes  = 1 << 20
	DefaultPageBytes = 1 << 16
)

// WithDefaults returns o with unset fields filled in and PageBytes aligned.
func (o Options) WithDefaults() Options {
	if o.HotBytes <= 0 {
		o.HotBytes = DefaultHotBytes
	}
	if o.PageBytes <= 0 {
		o.PageBytes = DefaultPageBytes
	}
	const align = 4096 // mmap offsets must be OS-page aligned
	if r := o.PageBytes % align; r != 0 {
		o.PageBytes += align - r
	}
	return o
}

// Spill file geometry. The header occupies one alignment unit so segment
// offsets stay mappable; segments are mapped once and never remapped, so a
// page window handed out stays valid until Close.
const (
	spillMagic   = 0xacac_5b11
	spillVersion = 1
	headerBytes  = 4096
	segPages     = 64 // pages mapped per segment
)

// Spill is one spill file: a header plus a growing array of fixed-size page
// slots, mapped in segments. Not safe for concurrent use; the engine's
// single-writer discipline (one goroutine owns a store at any instant)
// covers it.
type Spill struct {
	path      string
	f         fault.File
	fs        fault.FS
	pageBytes int
	meta      uint64
	segs      [][]byte
	dirty     []bool // per-segment, used by the no-mmap fallback only
	free      []int32
	nPages    int
	closed    bool
}

// Create creates (truncating any previous file) a spill at path with the
// given page size and caller metadata word — the codec identity a reopen
// must present back (stores record their tuple width there). I/O goes
// through fsys (nil = the real filesystem).
func Create(path string, pageBytes int, meta uint64, fsys fault.FS) (*Spill, error) {
	fsys = fault.Sys(fsys)
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	sp := &Spill{path: path, f: f, fs: fsys, pageBytes: pageBytes, meta: meta}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], spillMagic)
	binary.LittleEndian.PutUint32(hdr[4:], spillVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(pageBytes))
	binary.LittleEndian.PutUint64(hdr[16:], meta)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	return sp, nil
}

// Open maps an existing spill file, verifying the header against the
// expected page size and metadata word. Used by warm restart to resolve
// checkpoint page references.
func Open(path string, pageBytes int, meta uint64, fsys fault.FS) (*Spill, error) {
	fsys = fault.Sys(fsys)
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [32]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("tier: %s: short header: %w", path, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != spillMagic {
		f.Close()
		return nil, fmt.Errorf("tier: %s: bad magic %#x", path, m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != spillVersion {
		f.Close()
		return nil, fmt.Errorf("tier: %s: codec version %d, want %d", path, v, spillVersion)
	}
	if pb := binary.LittleEndian.Uint64(hdr[8:]); pb != uint64(pageBytes) {
		f.Close()
		return nil, fmt.Errorf("tier: %s: page size %d, want %d", path, pb, pageBytes)
	}
	if mw := binary.LittleEndian.Uint64(hdr[16:]); mw != meta {
		f.Close()
		return nil, fmt.Errorf("tier: %s: metadata %#x, want %#x", path, mw, meta)
	}
	sp := &Spill{path: path, f: f, fs: fsys, pageBytes: pageBytes, meta: meta}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	segBytes := int64(segPages * pageBytes)
	nSegs := int((st.Size() - headerBytes + segBytes - 1) / segBytes)
	for i := 0; i < nSegs; i++ {
		if err := sp.mapSegment(i); err != nil {
			sp.unmapAll()
			f.Close()
			return nil, err
		}
	}
	sp.nPages = nSegs * segPages
	return sp, nil
}

// Path returns the spill file's path.
func (sp *Spill) Path() string { return sp.path }

// PageBytes returns the page slot size.
func (sp *Spill) PageBytes() int { return sp.pageBytes }

// LivePages returns the number of allocated (not freed) page slots.
func (sp *Spill) LivePages() int { return sp.nPages - len(sp.free) }

// Pages returns the total page slots the file holds (allocated or free) —
// the bound a checkpoint page reference must validate against on reopen.
func (sp *Spill) Pages() int { return sp.nPages }

// Alloc claims a page slot, growing and mapping the file as needed.
func (sp *Spill) Alloc() (int32, error) {
	if n := len(sp.free); n > 0 {
		s := sp.free[n-1]
		sp.free = sp.free[:n-1]
		return s, nil
	}
	if sp.nPages == len(sp.segs)*segPages {
		seg := len(sp.segs)
		segBytes := int64(segPages * sp.pageBytes)
		if err := sp.f.Truncate(headerBytes + int64(seg+1)*segBytes); err != nil {
			return 0, err
		}
		if err := sp.mapSegment(seg); err != nil {
			return 0, err
		}
	}
	s := int32(sp.nPages)
	sp.nPages++
	return s, nil
}

// Free returns a page slot to the free list. The slot's bytes remain
// readable until it is reallocated, so stale readers within the current
// operation stay valid; the engine only reuses slots at operation
// boundaries.
func (sp *Spill) Free(slot int32) { sp.free = append(sp.free, slot) }

// Bytes returns page slot's window. On mmap platforms the window addresses
// the file mapping directly; writes through it are the demotion write path.
func (sp *Spill) Bytes(slot int32) []byte {
	seg, off := int(slot)/segPages, (int(slot)%segPages)*sp.pageBytes
	sp.dirtySeg(seg)
	return sp.segs[seg][off : off+sp.pageBytes : off+sp.pageBytes]
}

// Close unmaps, closes, and removes the spill file — the transient-state
// teardown (cache spills, and store spills of engines not closed for a warm
// restart). Idempotent.
func (sp *Spill) Close() error {
	if sp.closed {
		return nil
	}
	sp.closed = true
	sp.unmapAll()
	err := sp.f.Close()
	if rerr := sp.fs.Remove(sp.path); err == nil {
		err = rerr
	}
	return err
}

// CloseKeep unmaps and closes but keeps the file — the durable-shutdown
// path: the spill's cold pages remain on disk for a checkpointed warm
// restart to remap. Idempotent.
func (sp *Spill) CloseKeep() error {
	if sp.closed {
		return nil
	}
	sp.closed = true
	if err := sp.flushAll(); err != nil {
		sp.unmapAll()
		sp.f.Close()
		return err
	}
	sp.unmapAll()
	return sp.f.Close()
}
