//go:build !unix

package tier

import (
	"io"
	"unsafe"
)

// No-mmap fallback: segments live on the heap and are written back to the
// file explicitly, so the package builds everywhere the engine does. The
// resident-memory win of true mapping is lost, but behavior — including
// durable warm restart — is identical.

// mapSegment materializes segment seg on the heap, reading any existing file
// contents (a reopened spill) into it. A short read past EOF is fine: the
// tail is a fresh segment.
func (sp *Spill) mapSegment(seg int) error {
	segBytes := segPages * sp.pageBytes
	// Back the segment with a word slice so page windows are 8-byte aligned,
	// matching the mmap path (callers reinterpret pages as value arrays).
	words := make([]uint64, segBytes/8)
	b := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), segBytes)
	off := int64(headerBytes) + int64(seg)*int64(segBytes)
	if _, err := sp.f.ReadAt(b, off); err != nil && err != io.EOF {
		return err
	}
	sp.segs = append(sp.segs, b)
	sp.dirty = append(sp.dirty, false)
	return nil
}

func (sp *Spill) dirtySeg(seg int) { sp.dirty[seg] = true }

// flushAll writes dirty segments back to the file (durable shutdown).
func (sp *Spill) flushAll() error {
	segBytes := segPages * sp.pageBytes
	for i, b := range sp.segs {
		if !sp.dirty[i] {
			continue
		}
		off := int64(headerBytes) + int64(i)*int64(segBytes)
		if _, err := sp.f.WriteAt(b, off); err != nil {
			return err
		}
		sp.dirty[i] = false
	}
	return nil
}

func (sp *Spill) unmapAll() {
	sp.segs = nil
	sp.dirty = nil
}
