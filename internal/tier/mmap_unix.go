//go:build unix

package tier

import "syscall"

// mapSegment maps segment seg of the spill file read-write. Segments are
// mapped once at a fixed file offset and never remapped, so page windows
// handed to callers stay valid until Close.
func (sp *Spill) mapSegment(seg int) error {
	segBytes := segPages * sp.pageBytes
	off := int64(headerBytes) + int64(seg)*int64(segBytes)
	b, err := syscall.Mmap(int(sp.f.Fd()), off, segBytes,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return err
	}
	sp.segs = append(sp.segs, b)
	sp.dirty = append(sp.dirty, false)
	return nil
}

// dirtySeg is a no-op under mmap: stores through the mapping reach the file
// via the page cache without explicit write-back.
func (sp *Spill) dirtySeg(int) {}

// flushAll is a no-op under mmap; the kernel owns write-back (durable
// shutdown needs the bytes visible to a reopening process, which the shared
// mapping guarantees).
func (sp *Spill) flushAll() error { return nil }

func (sp *Spill) unmapAll() {
	for _, b := range sp.segs {
		syscall.Munmap(b)
	}
	sp.segs = nil
	sp.dirty = nil
}
