package tier

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSpillAllocWriteReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rel0.spill")
	opts := Options{Dir: dir, PageBytes: 1}.WithDefaults()
	if opts.PageBytes != 4096 {
		t.Fatalf("PageBytes alignment: got %d", opts.PageBytes)
	}
	sp, err := Create(path, opts.PageBytes, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	var slots []int32
	for i := 0; i < segPages+3; i++ { // force a second segment
		s, err := sp.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		b := sp.Bytes(s)
		for j := range b {
			b[j] = byte(i)
		}
		slots = append(slots, s)
	}
	if got := sp.LivePages(); got != segPages+3 {
		t.Fatalf("LivePages = %d", got)
	}
	sp.Free(slots[1])
	if got := sp.LivePages(); got != segPages+2 {
		t.Fatalf("LivePages after free = %d", got)
	}
	if s, _ := sp.Alloc(); s != slots[1] {
		t.Fatalf("free slot not reused: got %d want %d", s, slots[1])
	}
	if err := sp.CloseKeep(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("CloseKeep removed the file: %v", err)
	}

	// Reopen: header verifies, bytes survive.
	re, err := Open(path, opts.PageBytes, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range slots {
		b := re.Bytes(s)
		if b[0] != byte(i) || b[len(b)-1] != byte(i) {
			t.Fatalf("slot %d: bytes did not survive reopen (got %d, %d; want %d)", s, b[0], b[len(b)-1], i)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("Close left the file behind: %v", err)
	}
}

func TestSpillHeaderVerification(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.spill")
	sp, err := Create(path, 4096, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Alloc(); err != nil {
		t.Fatal(err)
	}
	if err := sp.CloseKeep(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 8192, 3, nil); err == nil {
		t.Fatal("page-size mismatch not detected")
	}
	if _, err := Open(path, 4096, 4, nil); err == nil {
		t.Fatal("metadata mismatch not detected")
	}
	re, err := Open(path, 4096, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
}
