package core

import (
	"math/rand"
	"testing"

	"acache/internal/oracle"
	"acache/internal/planner"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/synth"
	"acache/internal/tuple"
)

func threeWay(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.New(
		[]*tuple.Schema{
			tuple.RelationSchema(0, "A"),
			tuple.RelationSchema(1, "A", "B"),
			tuple.RelationSchema(2, "B"),
		},
		[]query.Pred{
			{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
			{Left: tuple.Attr{Rel: 1, Name: "B"}, Right: tuple.Attr{Rel: 2, Name: "B"}},
		},
	)
	if err != nil {
		t.Fatalf("query.New: %v", err)
	}
	return q
}

func fourWayClique(t *testing.T) *query.Query {
	t.Helper()
	schemas := make([]*tuple.Schema, 4)
	var preds []query.Pred
	for i := 0; i < 4; i++ {
		schemas[i] = tuple.RelationSchema(i, "A")
		if i > 0 {
			preds = append(preds, query.Pred{
				Left:  tuple.Attr{Rel: 0, Name: "A"},
				Right: tuple.Attr{Rel: i, Name: "A"},
			})
		}
	}
	q, err := query.New(schemas, preds)
	if err != nil {
		t.Fatalf("query.New: %v", err)
	}
	return q
}

// windowSource builds a small windowed synthetic source for q.
func windowSource(q *query.Query, window int, domain int64, seed int64) *stream.Source {
	rels := make([]stream.RelStream, q.N())
	for i := 0; i < q.N(); i++ {
		gens := make([]synth.ValueGen, q.Schema(i).Len())
		for c := range gens {
			gens[c] = synth.Uniform(0, domain, seed+int64(i*10+c))
		}
		rels[i] = stream.RelStream{Gen: synth.Tuples(gens...), WindowSize: window, Rate: 1}
	}
	return stream.NewSource(rels)
}

// runVsOracle drives n updates through the engine and the oracle, failing on
// any output-count divergence.
func runVsOracle(t *testing.T, q *query.Query, en *Engine, src *stream.Source, n int) {
	t.Helper()
	o := oracle.New(q)
	for i := 0; i < n; i++ {
		u := src.Next()
		got := en.Process(u)
		want := len(o.Process(u))
		if got != want {
			t.Fatalf("update %d %v: engine %d outputs, oracle %d (used caches: %v)",
				i, u, got, want, en.UsedCaches())
		}
	}
}

func TestEngineAdaptiveMatchesOracle3Way(t *testing.T) {
	q := threeWay(t)
	en, err := NewEngine(q, planner.Ordering{{1, 2}, {2, 0}, {1, 0}}, Config{
		ReoptInterval: 300,
		Seed:          1,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	runVsOracle(t, q, en, windowSource(q, 40, 10, 2), 5000)
	reopts, _ := en.Reopts()
	if reopts == 0 {
		t.Fatal("expected at least one re-optimization over 5000 updates")
	}
}

func TestEngineAdaptiveMatchesOracle4WayWithGC(t *testing.T) {
	q := fourWayClique(t)
	en, err := NewEngine(q, planner.Ordering{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {1, 2, 0}}, Config{
		ReoptInterval: 400,
		GCQuota:       6,
		Seed:          3,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	runVsOracle(t, q, en, windowSource(q, 30, 8, 4), 6000)
}

func TestEngineAdaptiveMatchesOracleWithOrderingAdaptivity(t *testing.T) {
	q := fourWayClique(t)
	en, err := NewEngine(q, nil, Config{
		ReoptInterval: 500,
		AdaptOrdering: true,
		GCQuota:       6,
		Seed:          5,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	runVsOracle(t, q, en, windowSource(q, 25, 6, 6), 6000)
}

func TestEngineUnderMemoryPressureMatchesOracle(t *testing.T) {
	q := threeWay(t)
	en, err := NewEngine(q, planner.Ordering{{1, 2}, {2, 0}, {1, 0}}, Config{
		ReoptInterval: 300,
		MemoryBudget:  2048, // tiny: force drops and partial caches
		Seed:          7,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	src := windowSource(q, 60, 6, 8)
	o := oracle.New(q)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		u := src.Next()
		got := en.Process(u)
		want := len(o.Process(u))
		if got != want {
			t.Fatalf("update %d: engine %d, oracle %d", i, got, want)
		}
		// Jiggle the budget mid-run (Figure 13's regime).
		if i%1000 == 999 {
			en.SetMemoryBudget(1024 + rng.Intn(8)*1024)
		}
	}
}

func TestEngineForcedCacheMatchesOracle(t *testing.T) {
	q := threeWay(t)
	ord := planner.Ordering{{1, 2}, {2, 0}, {1, 0}}
	cands := planner.Candidates(q, ord)
	if len(cands) != 1 {
		t.Fatalf("want 1 candidate, got %v", cands)
	}
	en, err := NewEngine(q, ord, Config{ForcedCaches: cands, Seed: 11})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	runVsOracle(t, q, en, windowSource(q, 50, 5, 12), 4000)
	if len(en.UsedCaches()) != 1 {
		t.Fatalf("forced cache not in use: %v", en.CacheStates())
	}
}

func TestEngineDisableCachingIsPlainMJoin(t *testing.T) {
	q := threeWay(t)
	en, err := NewEngine(q, planner.Ordering{{1, 2}, {2, 0}, {1, 0}}, Config{
		DisableCaching: true,
		Seed:           13,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	runVsOracle(t, q, en, windowSource(q, 40, 6, 14), 3000)
	if len(en.UsedCaches()) != 0 {
		t.Fatal("DisableCaching must never use caches")
	}
}

func TestEngineSelectionModesMatchOracle(t *testing.T) {
	for _, mode := range []SelectionMode{SelectExhaustive, SelectGreedy, SelectRandomized} {
		q := fourWayClique(t)
		en, err := NewEngine(q, planner.Ordering{{1, 2, 3}, {0, 2, 3}, {3, 0, 1}, {2, 0, 1}}, Config{
			ReoptInterval: 400,
			Selection:     mode,
			Seed:          17,
		})
		if err != nil {
			t.Fatalf("mode %v: NewEngine: %v", mode, err)
		}
		runVsOracle(t, q, en, windowSource(q, 30, 8, 18), 4000)
	}
}

func TestEngineEventuallyUsesProfitableCache(t *testing.T) {
	// The default three-way workload of Section 7.2: T.B values repeat
	// (multiplicity 5), so the R⋈S cache in ΔT's pipeline is profitable
	// and the engine should converge to using it.
	q := threeWay(t)
	ord := planner.Ordering{{1, 2}, {2, 0}, {1, 0}} // candidate: R2⋈R3 in ΔR1
	en, err := NewEngine(q, ord, Config{ReoptInterval: 500, Seed: 19})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// ΔR1 is the high-rate probing stream; R2/R3 change rarely.
	src := stream.NewSource([]stream.RelStream{
		{Gen: synth.Tuples(synth.Counter(0, 20, 5)), WindowSize: 100, Rate: 10},
		{Gen: synth.Tuples(synth.Counter(0, 20, 1), synth.Counter(0, 20, 1)), WindowSize: 50, Rate: 1},
		{Gen: synth.Tuples(synth.Counter(0, 20, 1)), WindowSize: 50, Rate: 1},
	})
	for i := 0; i < 20000; i++ {
		en.Process(src.Next())
	}
	if len(en.UsedCaches()) == 0 {
		t.Fatalf("engine never adopted the profitable cache; states: %v", en.CacheStates())
	}
}
