package core

import (
	"testing"

	"acache/internal/planner"
	"acache/internal/stream"
	"acache/internal/synth"
)

func TestPlanSnapshot(t *testing.T) {
	q := threeWay(t)
	ord := planner.Ordering{{1, 2}, {2, 0}, {1, 0}}
	en, err := NewEngine(q, ord, Config{ReoptInterval: 500, Seed: 19})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	src := stream.NewSource([]stream.RelStream{
		{Gen: synth.Tuples(synth.Counter(0, 20, 5)), WindowSize: 100, Rate: 10},
		{Gen: synth.Tuples(synth.Counter(0, 20, 1), synth.Counter(0, 20, 1)), WindowSize: 50, Rate: 1},
		{Gen: synth.Tuples(synth.Counter(0, 20, 1)), WindowSize: 50, Rate: 1},
	})
	for i := 0; i < 20000; i++ {
		en.Process(src.Next())
	}
	plan := en.Plan()
	if len(plan.Pipelines) != 3 {
		t.Fatalf("pipelines = %v", plan.Pipelines)
	}
	for i, p := range plan.Pipelines {
		if len(p) != 2 {
			t.Fatalf("pipeline %d = %v", i, p)
		}
	}
	if len(plan.Caches) == 0 {
		t.Fatalf("expected used caches in the snapshot; states: %v", en.CacheStates())
	}
	c := plan.Caches[0]
	if c.State != Used || c.Entries == 0 || c.Bytes == 0 {
		t.Fatalf("cache description %+v", c)
	}
	if c.HitRate <= 0 || c.HitRate > 1 {
		t.Fatalf("hit rate %v out of range", c.HitRate)
	}
	if len(c.Segments) < 2 {
		t.Fatalf("segments %v", c.Segments)
	}
}

func TestStateString(t *testing.T) {
	if Used.String() != "used" || Profiled.String() != "profiled" || Unused.String() != "unused" {
		t.Fatal("state strings wrong")
	}
	if State(99).String() != "unused" {
		t.Fatal("unknown state should render as unused")
	}
}
