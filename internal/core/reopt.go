package core

import (
	"acache/internal/memory"
	"acache/internal/planner"
	"acache/internal/profiler"
	"acache/internal/selection"
)

// refreshCandidates recomputes the candidate cache set for the current
// ordering: prefix-invariant candidates plus, when enabled, the Section 6
// globally-consistent quota. Existing candidate entries survive when their
// placement is still valid; the rest are dropped (detaching used ones).
// The spec enumeration is memoized per ordering (candidateSpecs) and the
// two candidate maps ping-pong, so an ordering flip back to a seen ordering
// allocates only the fresh cand entries it actually needs.
func (en *Engine) refreshCandidates() {
	ord := en.exec.OrderingRef()
	specs := en.candidateSpecs(ord)
	next := en.spareCands
	if next == nil {
		next = make(map[string]*cand, len(specs))
	}
	clear(next)
	for _, spec := range specs {
		k := placementKey(spec)
		if old, ok := en.cands[k]; ok && old.spec.SharingID() == spec.SharingID() {
			next[k] = old
			continue
		}
		next[k] = &cand{spec: spec, state: Unused}
	}
	for k, old := range en.cands {
		if _, keep := next[k]; !keep && old.state == Used {
			en.detach(old)
		}
		if _, keep := next[k]; !keep && old.state == Profiled {
			en.pf.StopShadow(old.spec)
		}
	}
	en.spareCands = en.cands
	en.cands = next
}

// candidateSpecs enumerates the candidate placements for ord, memoized by
// ordering key: planner.Candidates and GCCandidates are pure functions of
// (query, ordering), and an adapting engine revisits a small set of
// orderings, so a flip back to a seen ordering re-enumerates nothing. The
// memoized specs are shared across orderings' candidate maps — specs are
// immutable and their Key/SharingID memos warm exactly once.
// ReferenceAdaptivity recomputes every time (the memo's differential foil).
func (en *Engine) candidateSpecs(ord planner.Ordering) []*planner.Spec {
	en.ordKeyBuf = en.ordKeyBuf[:0]
	for _, pipe := range ord {
		for _, r := range pipe {
			en.ordKeyBuf = append(en.ordKeyBuf, byte(r))
		}
		en.ordKeyBuf = append(en.ordKeyBuf, 0xff)
	}
	if !en.cfg.ReferenceAdaptivity {
		if specs, ok := en.candSpecMemo[string(en.ordKeyBuf)]; ok {
			return specs
		}
	}
	specs := planner.Candidates(en.q, ord)
	if en.cfg.GCQuota > 0 {
		specs = append(specs, planner.GCCandidates(en.q, ord, specs, en.cfg.GCQuota)...)
	}
	if en.candSpecMemo == nil {
		en.candSpecMemo = make(map[string][]*planner.Spec)
	}
	en.candSpecMemo[string(en.ordKeyBuf)] = specs
	return specs
}

// fullProfileEvery is the profiling duty cycle: every Nth re-optimization
// pays the full price (suspending used caches that cover profiled subset
// candidates); the rest profile only unobstructed candidates.
const fullProfileEvery = 4

// startReopt begins a re-optimization (Section 4.5 steps 2–4): apply any
// ordering change, then move candidates into the profiled state so their
// statistics can be (re)collected, suspending used caches only when they
// deny an unused subset candidate its full probe stream (Section 4.5(b)) —
// and only on full-profile rounds.
func (en *Engine) startReopt() {
	if en.cfg.AdaptOrdering {
		en.adaptOrdering()
	}
	en.reoptCount++
	en.startProfilingPhase()
}

// adaptOrdering applies the ordering advisor per pipeline. A reordered
// pipeline invalidates every cache whose probes or maintenance flow through
// it, so all caches are detached and candidates recomputed (Section 4.5
// step 5; we widen "caches used in that pipeline" to all caches because
// maintenance operators of other pipelines' caches may also live in the
// reordered pipeline).
func (en *Engine) adaptOrdering() {
	ord := en.exec.Ordering()
	changed := false
	for i := 0; i < en.q.N(); i++ {
		next, ch := en.adv.Advise(i, ord[i])
		if !ch {
			continue
		}
		if !changed {
			for _, c := range en.cands {
				if c.state == Used {
					en.detach(c)
				}
			}
			changed = true
		}
		_ = en.exec.SetOrdering(i, next)
		en.pf.ResetPipeline(i)
		if en.resultTaps != nil {
			en.resultTaps[i] = -1 // pipeline rebuilt; tap is gone
		}
	}
	if changed {
		en.refreshCandidates()
		en.installResultTaps()
	}
}

// startProfilingPhase starts shadow estimators and enters the profiling
// state. On full-profile rounds, used caches covering a profiled subset
// candidate are suspended so the shadow sees the complete probe stream
// (Section 4.5(b)); on light rounds only unobstructed candidates profile,
// the rest keeping their previous estimates.
func (en *Engine) startProfilingPhase() {
	full := en.reoptCount%fullProfileEvery == 1 || en.reoptCount == 0
	if full {
		for _, c := range en.cands {
			if c.state != Used {
				continue
			}
			for _, d := range en.cands {
				if d.state == Used || d.spec.Pipeline != c.spec.Pipeline {
					continue
				}
				if d.spec.Start > c.spec.Start && d.spec.Start <= c.spec.End {
					if en.exec.SuspendLookup(c.spec) {
						c.suspended = true
						c.state = Profiled
						en.pf.StartShadow(c.spec)
						c.shadowOn = true
					}
					break
				}
			}
		}
	}
	covered := func(d *cand) bool {
		for _, c := range en.cands {
			if c.state == Used && d.spec.Pipeline == c.spec.Pipeline &&
				d.spec.Start > c.spec.Start && d.spec.Start <= c.spec.End {
				return true
			}
		}
		return false
	}
	for _, c := range en.cands {
		if c.state == Used {
			// Miss probability observed directly; reset the observation
			// window so the estimate is fresh.
			c.monStat = monitorSnapshot{}
			c.inst.Cache().ResetStats()
			continue
		}
		if !full && covered(c) {
			continue // estimate kept from the last full profile
		}
		c.state = Profiled
		en.pf.StartShadow(c.spec)
		c.shadowOn = true
	}
	en.profiling = true
	en.profilingFor = 0
	en.readyCand = nil
	en.readyEpochOK = false
}

// statsReady reports whether every pipeline statistic and every profiled
// candidate's shadow window is full.
//
// It is polled once per update during a profiling phase, so it memoizes at
// two levels:
//
//   - An epoch gate: every input except one is backed by windowed statistics
//     that change only at profiler stats epochs (span boundaries, profiled
//     observations, shadow-window completions, shadow start/stop, pipeline
//     resets). A false answer recorded at epoch E therefore stands while the
//     epoch is unchanged — except for the traffic-share early exit, which
//     moves with the raw tick counters; en.unreadyPipe records the pipeline
//     it blocked on (−1 when blocked on a window or shadow instead) and
//     exactly that one exit is re-checked per update. Sound because a
//     blocking window/shadow cannot fill without an epoch bump, and a
//     blocking pipeline's readiness can flip between epochs only through its
//     own traffic-share exit. ReferenceAdaptivity disables the gate.
//
//   - A cursor (en.readyCand) on the candidate last found unready, re-checked
//     first on a full scan. Sound because readiness is monotone within a
//     phase: shadow windows only fill, and candidate states change only at
//     phase boundaries (startReopt / finishReopt), which clear the cursor.
func (en *Engine) statsReady() bool {
	if !en.cfg.ReferenceAdaptivity && en.readyEpochOK && en.readyEpoch == en.pf.StatsEpoch() {
		if en.unreadyPipe < 0 || !en.pf.TrafficShareReady(en.unreadyPipe) {
			return false
		}
	}
	en.readyEpochOK = false
	if c := en.readyCand; c != nil {
		if c.state == Profiled && c.shadowOn {
			if _, ok := en.pf.ShadowMissProb(c.spec); !ok {
				en.noteUnready(-1)
				return false
			}
		}
		en.readyCand = nil
	}
	for i := 0; i < en.q.N(); i++ {
		if !en.pf.PipelineReady(i) {
			en.noteUnready(i)
			return false
		}
	}
	for _, c := range en.cands {
		if c.state != Profiled || !c.shadowOn {
			continue
		}
		if _, ok := en.pf.ShadowMissProb(c.spec); !ok {
			en.readyCand = c
			en.noteUnready(-1)
			return false
		}
	}
	return true
}

// noteUnready records a false readiness answer for the current stats epoch;
// pipe is the pipeline whose traffic-share exit blocked it, or −1 when the
// blocker was a window or shadow (which cannot fill without an epoch bump).
func (en *Engine) noteUnready(pipe int) {
	en.readyEpoch = en.pf.StatsEpoch()
	en.readyEpochOK = true
	en.unreadyPipe = pipe
}

// finishReopt evaluates the cost model for every candidate, applies the
// p-threshold skip rule, runs offline selection, and installs the chosen
// cache set.
func (en *Engine) finishReopt() {
	en.profiling = false
	en.readyCand = nil
	en.readyEpochOK = false
	rescoresSuppressed := false
	for _, c := range en.cands {
		if c.state == Used || c.shadowOn {
			if en.cfg.Incremental && c.selSet && c.est.Ready && c.unimportant >= unimportantAfter {
				// Learned-unimportant statistic (Section 8 future work (ii)
				// extended into the scoring path): its movements have not
				// changed the selection unimportantAfter times running, so
				// skip the re-score itself; the estimate refreshes when any
				// selection change rehabilitates the tracker.
				rescoresSuppressed = true
				continue
			}
			c.est = en.estimate(c)
		}
		// Candidates skipped by a light profile keep their previous
		// estimate (possibly stale; the next full profile refreshes it).
	}
	triggers, oscillators, suppressed := en.changedBeyondThreshold()
	if len(triggers) == 0 {
		en.skippedReopts++
		if suppressed || rescoresSuppressed {
			en.reoptsSuppressed++
		}
		en.stopShadows()
		return
	}
	en.reopts++
	var chosen []*cand
	if en.cfg.Incremental && en.reopts%incrementalFullEvery != 0 {
		chosen = en.incrementalSelect()
	} else {
		chosen = en.runSelection()
	}
	selectionChanged := en.selectionDiffers(chosen)
	en.applySelection(chosen)
	en.stopShadows()
	en.allocateMemory()
	for _, c := range en.cands {
		c.selEst = c.est
		c.selSet = true
	}
	if en.cfg.Incremental {
		en.noteSelectionOutcome(oscillators, selectionChanged)
	}
}

// inChosen builds the chosen-set membership map in a reused buffer (valid
// until the next call).
func (en *Engine) inChosen(chosen []*cand) map[*cand]bool {
	if en.inChosenBuf == nil {
		en.inChosenBuf = make(map[*cand]bool, len(chosen))
	}
	clear(en.inChosenBuf)
	for _, c := range chosen {
		en.inChosenBuf[c] = true
	}
	return en.inChosenBuf
}

// selectionDiffers reports whether the chosen set differs from the caches
// currently in use.
func (en *Engine) selectionDiffers(chosen []*cand) bool {
	inChosen := en.inChosen(chosen)
	used := 0
	for _, c := range en.cands {
		if c.state == Used {
			used++
			if !inChosen[c] {
				return true
			}
		}
	}
	return used != len(chosen)
}

func (en *Engine) stopShadows() {
	for _, c := range en.cands {
		if c.state == Profiled {
			en.pf.StopShadow(c.spec)
			c.state = Unused
		}
		c.shadowOn = false
	}
}

// estimate evaluates the cost model for a candidate: used caches supply
// their directly observed miss probability, profiled ones their shadow
// estimate (Section 4.3).
func (en *Engine) estimate(c *cand) profiler.Estimate {
	en.candRescores++
	var missProb float64
	var distinct float64
	switch c.state {
	case Used:
		st := c.inst.Cache().Stats()
		if st.Probes > 0 {
			missProb = float64(st.Misses) / float64(st.Probes)
		}
		distinct = float64(c.inst.Cache().Entries())
	default:
		missProb, _ = en.pf.ShadowMissProb(c.spec)
		distinct, _ = en.pf.ShadowDistinct(c.spec)
	}
	return en.pf.Estimate(c.spec, missProb, distinct)
}

// changedBeyondThreshold implements the p-threshold of Section 4.5(c):
// selection reruns only when some used or profiled cache's benefit or cost
// moved more than the configured fraction since the last selection.
// triggers holds every candidate justifying a re-optimization; oscillators
// is the subset flagged for plain statistic movement (as opposed to
// becoming estimable for the first time), the only kind the
// unimportant-statistics tracker may learn to suppress — suppressing
// readiness transitions could deadlock adoption outright. suppressed
// reports whether the filter silenced at least one beyond-threshold change
// this round. The returned slices are reused across rounds.
func (en *Engine) changedBeyondThreshold() (triggers, oscillators []*cand, suppressed bool) {
	p := en.cfg.ChangeThreshold
	triggers = en.triggerBuf[:0]
	oscillators = en.oscBuf[:0]
	for _, c := range en.cands {
		if !c.selSet || c.est.Ready != c.selEst.Ready {
			// Never selected with this candidate known, or it became
			// estimable (or lost its statistics) since the last selection.
			triggers = append(triggers, c)
			continue
		}
		if relChange(c.est.Benefit, c.selEst.Benefit) > p ||
			relChange(c.est.Cost, c.selEst.Cost) > p {
			if en.cfg.Incremental && c.unimportant >= unimportantAfter {
				suppressed = true
				continue // learned-unimportant statistic
			}
			triggers = append(triggers, c)
			oscillators = append(oscillators, c)
		}
	}
	en.triggerBuf = triggers
	en.oscBuf = oscillators
	return triggers, oscillators, suppressed
}

func relChange(now, then float64) float64 {
	d := now - then
	if d < 0 {
		d = -d
	}
	base := then
	if base < 0 {
		base = -base
	}
	if base == 0 {
		if d == 0 {
			return 0
		}
		return 1
	}
	return d / base
}

// runSelection builds the selection problem from current estimates and runs
// the configured offline algorithm. The problem, candidate list, group
// index, and algorithm workspace all live on the engine and are reused, so
// a warm selection allocates nothing; ReferenceAdaptivity rebuilds them
// from scratch each time (identical results, the reuse's differential
// foil). The returned slice is valid until the next selection.
func (en *Engine) runSelection() []*cand {
	ord := en.exec.OrderingRef()
	ref := en.cfg.ReferenceAdaptivity
	prob := &en.selProb
	ws := &en.selWS
	groupIDs := en.selGroupIDs
	list := en.selList[:0]
	if ref {
		prob = &selection.Problem{}
		ws = &selection.Workspace{}
		groupIDs = nil
		list = nil
	}
	if groupIDs == nil {
		groupIDs = make(map[string]int)
		if !ref {
			en.selGroupIDs = groupIDs
		}
	}
	clear(groupIDs)
	n := en.q.N()
	if cap(prob.OpCosts) < n {
		prob.OpCosts = make([][]float64, n)
	}
	prob.OpCosts = prob.OpCosts[:n]
	for i := 0; i < n; i++ {
		costs := prob.OpCosts[i][:0]
		for j := range ord[i] {
			costs = append(costs, en.pf.OpCost(i, j))
		}
		prob.OpCosts[i] = costs
	}
	prob.Cands = prob.Cands[:0]
	prob.GroupCosts = prob.GroupCosts[:0]
	// Deterministic candidate order.
	for _, k := range en.sortedCandKeys() {
		c := en.cands[k]
		if !c.est.Ready {
			continue
		}
		gid, ok := groupIDs[c.spec.SharingID()]
		if !ok {
			gid = len(prob.GroupCosts)
			groupIDs[c.spec.SharingID()] = gid
			prob.GroupCosts = append(prob.GroupCosts, c.est.Cost)
		}
		prob.Cands = append(prob.Cands, selection.Candidate{
			Pipeline: c.spec.Pipeline,
			Start:    c.spec.Start,
			End:      c.spec.End,
			Group:    gid,
			Benefit:  c.est.Benefit,
		})
		list = append(list, c)
	}
	if !ref {
		en.selList = list
	}
	var res selection.Result
	switch {
	case en.cfg.BudgetAware && en.mem.Budget() >= 0:
		// Integrated selection under the memory budget (extension; the
		// paper's modular pipeline is the default).
		bp := &selection.BudgetedProblem{Problem: *prob, Budget: float64(en.mem.Budget())}
		maxGroup := -1
		for _, c := range prob.Cands {
			if c.Group > maxGroup {
				maxGroup = c.Group
			}
		}
		bp.GroupBytes = make([]float64, maxGroup+1)
		for idx, c := range prob.Cands {
			if b := list[idx].est.ExpectedBytes; b > bp.GroupBytes[c.Group] {
				bp.GroupBytes[c.Group] = b
			}
		}
		if len(prob.Cands) <= 18 {
			res = selection.BudgetedExhaustive(bp)
		} else {
			res = selection.BudgetedGreedy(bp)
		}
	case en.cfg.Selection == SelectExhaustive:
		res = ws.Exhaustive(prob)
	case en.cfg.Selection == SelectGreedy:
		res = ws.Greedy(prob)
	case en.cfg.Selection == SelectRandomized:
		var err error
		res, err = selection.Randomized(prob, en.rng)
		if err != nil {
			res = ws.Greedy(prob)
		}
	default:
		res = ws.Select(prob)
	}
	chosen := en.chosenBuf[:0]
	for _, i := range res.Chosen {
		chosen = append(chosen, list[i])
	}
	en.chosenBuf = chosen
	return chosen
}

// applySelection moves the engine to the chosen cache set: detach used
// caches that fell out, attach newly chosen ones (sharing instances by
// identity).
func (en *Engine) applySelection(chosen []*cand) {
	inChosen := en.inChosen(chosen)
	for _, c := range en.cands {
		if !inChosen[c] && (c.state == Used || c.suspended) {
			en.detach(c)
		}
	}
	for _, c := range chosen {
		if c.state == Used {
			continue
		}
		if c.state == Profiled {
			en.pf.StopShadow(c.spec)
		}
		if c.suspended {
			// Resume warm: the instance stayed maintained while suspended.
			if !en.exec.ResumeLookup(c.spec) {
				// Conflicting state accumulated while suspended (e.g. a
				// maintenance operator landed inside the span); release
				// the placement instead.
				en.detach(c)
				continue
			}
			c.suspended = false
			c.state = Used
			c.attachedAt = en.updates
			st := c.inst.Cache().Stats()
			c.monStat = monitorSnapshot{probes: st.Probes, hits: st.Hits}
			continue
		}
		// Direct-mapped buckets collide birthday-style: at load factor 1
		// more than a third of keys evict each other, so over-provision 8×
		// (collision-miss ≈ 6%), rounded up to a power of two.
		buckets := 64
		for buckets < 8*int(c.est.ExpectedEntries) && buckets < 1<<17 {
			buckets *= 2
		}
		inst := en.instanceFor(c.spec, buckets)
		if err := en.exec.AttachCache(c.spec, inst); err != nil {
			// The executor enforces constraints the selection does not
			// model — notably that a cache span must not swallow another
			// cache's maintenance operator (possible with self-maintained
			// segments). Skip the placement; the next re-optimization may
			// order the attachments differently.
			if inst.Cache().Entries() == 0 {
				// Fresh instance that never attached: release it.
				id := c.spec.SharingID()
				orphan := true
				for _, d := range en.cands {
					if d != c && (d.state == Used || d.suspended) && d.spec.SharingID() == id {
						orphan = false
						break
					}
				}
				if orphan {
					en.releaseInstance(id)
				}
			}
			c.state = Unused
			continue
		}
		if en.cfg.PrimeCaches && inst.Cache().Entries() == 0 {
			inst.Prime(en.exec)
			c.warmed = true // primed caches need no cold-start grace
		} else {
			c.warmed = false
		}
		c.inst = inst
		c.state = Used
		c.attachedAt = en.updates
		c.warmProbes = 3 * int64(c.est.ExpectedEntries)
		if c.warmProbes < 100 {
			c.warmProbes = 100
		}
		st := inst.Cache().Stats()
		c.monStat = monitorSnapshot{probes: st.Probes, hits: st.Hits}
	}
}

// detach removes a used or suspended placement; when its instance's last
// placement goes away the instance is released.
func (en *Engine) detach(c *cand) {
	if c.state != Used && !c.suspended {
		return
	}
	if c.suspended {
		en.pf.StopShadow(c.spec)
	}
	en.exec.DetachCache(c.spec)
	id := c.spec.SharingID()
	inUse := false
	for _, d := range en.cands {
		if d != c && (d.state == Used || d.suspended) && d.spec.SharingID() == id {
			inUse = true
			break
		}
	}
	if !inUse {
		en.releaseInstance(id)
	}
	c.inst = nil
	c.suspended = false
	c.state = Unused
}

// allocInfo aggregates one shared instance's net benefit and byte appetite
// while allocateMemory groups candidates by sharing identity.
type allocInfo struct {
	net   float64
	bytes float64
}

// allocateMemory divides the budget among used caches by priority
// (Section 5) and applies the grants as per-instance byte budgets. Its
// grouping map, request slice, and grant map live on the engine and are
// reused, so the periodic rebalance path allocates nothing at steady state.
func (en *Engine) allocateMemory() {
	if en.allocInfos == nil {
		en.allocInfos = make(map[string]allocInfo)
		en.allocGrants = make(map[string]int)
	}
	clear(en.allocInfos)
	for _, c := range en.cands {
		if c.state != Used {
			continue
		}
		id := c.spec.SharingID()
		info, seen := en.allocInfos[id]
		if !seen {
			info.net = -c.est.Cost // group cost once
		}
		info.net += c.est.Benefit
		b := c.est.ExpectedBytes
		if actual := float64(en.instances[id].Cache().UsedBytes()); actual > b {
			b = actual
		}
		if b > info.bytes {
			info.bytes = b
		}
		en.allocInfos[id] = info
	}
	en.allocReqs = en.allocReqs[:0]
	for id, info := range en.allocInfos {
		bytes := int(info.bytes)
		if bytes < memory.PageBytes {
			bytes = memory.PageBytes
		}
		en.allocReqs = append(en.allocReqs, memory.Request{
			ID:       id,
			Priority: info.net / float64(bytes),
			Bytes:    bytes,
		})
	}
	en.mem.AllocateInto(en.allocGrants, en.allocReqs)
	for id, grant := range en.allocGrants {
		if inst, ok := en.instances[id]; ok {
			inst.Cache().SetBudget(grant)
		}
	}
}

// groupEval aggregates one sharing group's monitored net benefit; the
// engine's monEvals slice reuses these (and their member slices) across
// monitor runs so the periodic check allocates nothing at steady state.
type groupEval struct {
	net     float64
	members []*cand
	ready   bool
}

// monitorUsed implements Section 4.5(a): benefit(C) − cost(C) is monitored
// continuously for used caches via their live hit statistics, and a cache
// whose group turns unprofitable is moved to Unused immediately. (Gradual
// reaction — promoting unused caches — happens only at re-optimization.)
// Candidates are walked in sorted placement order so group benefit sums are
// deterministic.
func (en *Engine) monitorUsed() {
	// Evaluate per sharing group: benefits add up, cost is paid once.
	if en.monIdx == nil {
		en.monIdx = make(map[string]int)
	}
	clear(en.monIdx)
	evals := en.monEvals[:0]
	for _, k := range en.sortedCandKeys() {
		c := en.cands[k]
		if c.state != Used {
			continue
		}
		st := c.inst.Cache().Stats()
		if !c.warmed {
			// Warm-up grace: a freshly attached cache is still populating;
			// its cold-start misses must never count against it. Once
			// enough probes have passed to populate the expected entry
			// set, rebaseline and start judging from there.
			if st.Probes-c.monStat.probes >= c.warmProbes {
				c.warmed = true
				c.monStat = monitorSnapshot{probes: st.Probes, hits: st.Hits}
			}
			continue
		}
		dp := st.Probes - c.monStat.probes
		dh := st.Hits - c.monStat.hits
		if dp < int64(en.pf.W()) {
			continue // too few probes since the last check to judge
		}
		missProb := 1 - float64(dh)/float64(dp)
		c.monStat = monitorSnapshot{probes: st.Probes, hits: st.Hits}
		en.candRescores++
		est := en.pf.Estimate(c.spec, missProb, float64(c.inst.Cache().Entries()))
		if !est.Ready {
			continue
		}
		c.est = est
		id := c.spec.SharingID()
		gi, ok := en.monIdx[id]
		if !ok {
			gi = len(evals)
			en.monIdx[id] = gi
			if gi < cap(evals) {
				evals = evals[:gi+1]
				e := &evals[gi]
				e.net = -est.Cost
				e.members = e.members[:0]
				e.ready = false
			} else {
				evals = append(evals, groupEval{net: -est.Cost})
			}
		}
		e := &evals[gi]
		e.net += est.Benefit
		e.members = append(e.members, c)
		e.ready = true
	}
	en.monEvals = evals
	for i := range evals {
		g := &evals[i]
		if g.ready && g.net < 0 {
			for _, c := range g.members {
				c.demotions++
				en.detach(c)
			}
		}
	}
}
