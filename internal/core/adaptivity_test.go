package core

import (
	"fmt"
	"testing"

	"acache/internal/planner"
	"acache/internal/profiler"
	"acache/internal/query"
)

// driveBoth feeds the identical update sequence to two engines and fails on
// the first per-update output divergence.
func driveBoth(t *testing.T, q *query.Query, a, b *Engine, n int, window int, domain, seed int64) {
	t.Helper()
	srcA := windowSource(q, window, domain, seed)
	srcB := windowSource(q, window, domain, seed)
	for i := 0; i < n; i++ {
		u := srcA.Next()
		if got, want := b.Process(srcB.Next()), a.Process(u); got != want {
			t.Fatalf("update %d %v: %d outputs vs reference %d", i, u, got, want)
		}
	}
}

// TestReferenceAdaptivityDifferential: with SampleStride ≤ 1 (the exact
// profiler) the adaptivity fast paths — the statistics-epoch readiness gate,
// the memoized candidate enumeration, and the reused selection workspace —
// must be invisible: every output, every simulated-cost figure, every
// re-optimization decision, and every cache state is byte-identical to the
// reference implementation that recomputes everything from scratch.
func TestReferenceAdaptivityDifferential(t *testing.T) {
	cases := []struct {
		name string
		mk   func(t *testing.T) *query.Query
		ord  planner.Ordering
		cfg  Config
		n    int
	}{
		{
			name: "threeWay",
			mk:   threeWay,
			ord:  planner.Ordering{{1, 2}, {2, 0}, {1, 0}},
			cfg:  Config{ReoptInterval: 300, Seed: 41},
			n:    8000,
		},
		{
			name: "fourWayGC",
			mk:   fourWayClique,
			ord:  planner.Ordering{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {1, 2, 0}},
			cfg:  Config{ReoptInterval: 400, GCQuota: 6, Seed: 43},
			n:    8000,
		},
		{
			name: "threeWayBudget",
			mk:   threeWay,
			ord:  planner.Ordering{{1, 2}, {2, 0}, {1, 0}},
			cfg:  Config{ReoptInterval: 300, MemoryBudget: 4 * 1024, GCQuota: 6, Seed: 47},
			n:    8000,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.mk(t)
			refCfg := tc.cfg
			refCfg.ReferenceAdaptivity = true
			ref, err := NewEngine(q, tc.ord, refCfg)
			if err != nil {
				t.Fatalf("NewEngine(reference): %v", err)
			}
			fast, err := NewEngine(q, tc.ord, tc.cfg)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			driveBoth(t, q, ref, fast, tc.n, 40, 10, tc.cfg.Seed+1)

			a, b := ref.Snapshot(), fast.Snapshot()
			a.ReoptNanos, b.ReoptNanos = 0, 0 // wall clock, not logical work
			if a != b {
				t.Errorf("snapshot mismatch:\nreference %+v\nfast      %+v", a, b)
			}
			if a.Reopts == 0 {
				t.Error("workload never re-optimized; differential vacuous")
			}
			if as, bs := fmt.Sprint(ref.CacheStates()), fmt.Sprint(fast.CacheStates()); as != bs {
				t.Errorf("cache states mismatch:\nreference %s\nfast      %s", as, bs)
			}
		})
	}
}

// TestSampledProfilerOutputTransparency: sampling only changes measured
// statistics, never results — a strided engine stays oracle-exact.
func TestSampledProfilerOutputTransparency(t *testing.T) {
	q := threeWay(t)
	en, err := NewEngine(q, planner.Ordering{{1, 2}, {2, 0}, {1, 0}}, Config{
		ReoptInterval: 300,
		Seed:          51,
		Profiler:      profiler.Config{SampleStride: 4},
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	runVsOracle(t, q, en, windowSource(q, 40, 10, 52), 8000)
	snap := en.Snapshot()
	if snap.SampledUpdates >= uint64(snap.Updates) {
		t.Errorf("stride 4 profiled %d of %d updates; sampling inactive",
			snap.SampledUpdates, snap.Updates)
	}
}

// TestSampledProfilerEstimatorBounds: the property the sampling design
// must preserve — unbiased scaling keeps the strided estimators (per-operator
// selectivity-cost products D and C, and the shadow-derived miss
// probabilities behind each candidate estimate) within a constant factor of
// the exact profiler on a stationary workload, across seeds.
func TestSampledProfilerEstimatorBounds(t *testing.T) {
	ord := planner.Ordering{{1, 2}, {2, 0}, {1, 0}}
	const n = 24000
	for _, seed := range []int64{61, 67, 71} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			q := threeWay(t)
			exact, err := NewEngine(q, ord, Config{ReoptInterval: 300, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			sampled, err := NewEngine(q, ord, Config{
				ReoptInterval: 300,
				Seed:          seed,
				Profiler:      profiler.Config{SampleStride: 4},
			})
			if err != nil {
				t.Fatal(err)
			}
			driveBoth(t, q, exact, sampled, n, 40, 10, seed+1)

			// The stride is deterministic: 1-in-4 updates draw a decision.
			if got := sampled.Snapshot().SampledUpdates; got < n/4-1 || got > n/4+1 {
				t.Errorf("SampledUpdates = %d, want ~%d", got, n/4)
			}

			// D and C per operator position, exact vs sampled.
			pe, ps := exact.Profiler(), sampled.Profiler()
			compared := 0
			for pipe := 0; pipe < q.N(); pipe++ {
				for pos := 0; pos < q.N()-1; pos++ {
					for _, stat := range []struct {
						name     string
						ev, sv   float64
						loR, hiR float64
					}{
						{"D", pe.D(pipe, pos), ps.D(pipe, pos), 0.4, 2.5},
						{"C", pe.C(pipe, pos), ps.C(pipe, pos), 0.4, 2.5},
					} {
						if stat.ev <= 0 || stat.sv <= 0 {
							continue
						}
						if r := stat.sv / stat.ev; r < stat.loR || r > stat.hiR {
							t.Errorf("%s(%d,%d): sampled %.4f vs exact %.4f (ratio %.2f)",
								stat.name, pipe, pos, stat.sv, stat.ev, r)
						}
						compared++
					}
				}
			}
			if compared < 4 {
				t.Fatalf("only %d estimator pairs comparable; workload too short", compared)
			}

			// Candidate miss probabilities: sampling overestimates
			// conservatively but must stay in the same regime.
			missCompared := 0
			for k, ce := range exact.cands {
				cs, ok := sampled.cands[k]
				if !ok || !ce.est.Ready || !cs.est.Ready {
					continue
				}
				if d := cs.est.MissProb - ce.est.MissProb; d < -0.35 || d > 0.35 {
					t.Errorf("cand %s: sampled miss prob %.3f vs exact %.3f", k,
						cs.est.MissProb, ce.est.MissProb)
				}
				missCompared++
			}
			if missCompared == 0 {
				t.Error("no candidate estimates comparable; workload too short")
			}
		})
	}
}

// TestWarmReoptAllocFree pins the tentpole's allocation budget: once the
// engine's buffers are warm, re-running selection and re-enumerating
// candidates allocates nothing.
func TestWarmReoptAllocFree(t *testing.T) {
	q := threeWay(t)
	ordA := planner.Ordering{{1, 2}, {2, 0}, {1, 0}}
	en, err := NewEngine(q, ordA, Config{ReoptInterval: 300, GCQuota: 6, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	src := windowSource(q, 40, 10, 82)
	for i := 0; i < 9000; i++ {
		en.Process(src.Next())
	}
	if r, _ := en.Reopts(); r == 0 {
		t.Fatal("engine never re-optimized; nothing is warm")
	}

	en.runSelection() // warm the workspace at the current candidate shape
	if allocs := testing.AllocsPerRun(50, func() { en.runSelection() }); allocs > 0 {
		t.Errorf("warm runSelection allocates %.1f objects/run, want 0", allocs)
	}

	// Satellite: candidate-spec enumeration is memoized per ordering, so
	// flipping between seen orderings re-enumerates (and allocates) nothing.
	ordB := planner.Ordering{{1, 2}, {0, 2}, {1, 0}}
	sa, sb := en.candidateSpecs(ordA), en.candidateSpecs(ordB)
	if len(sa) == 0 || len(sb) == 0 {
		t.Fatal("no candidate specs enumerated")
	}
	if sa2 := en.candidateSpecs(ordA); &sa2[0] != &sa[0] {
		t.Error("candidateSpecs re-enumerated a seen ordering")
	}
	if allocs := testing.AllocsPerRun(50, func() {
		en.candidateSpecs(ordA)
		en.candidateSpecs(ordB)
	}); allocs > 0 {
		t.Errorf("warm candidateSpecs allocates %.1f objects/run, want 0", allocs)
	}
}

// TestWarmIncrementalSelectAllocFree: the incremental re-optimizer's local
// moves run out of reused engine buffers too.
func TestWarmIncrementalSelectAllocFree(t *testing.T) {
	q := threeWay(t)
	en, err := NewEngine(q, planner.Ordering{{1, 2}, {2, 0}, {1, 0}}, Config{
		ReoptInterval: 300,
		Incremental:   true,
		Seed:          83,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := windowSource(q, 40, 10, 84)
	for i := 0; i < 9000; i++ {
		en.Process(src.Next())
	}
	en.incrementalSelect()
	if allocs := testing.AllocsPerRun(50, func() { en.incrementalSelect() }); allocs > 1 {
		t.Errorf("warm incrementalSelect allocates %.1f objects/run, want ≤1", allocs)
	}
}

// TestReoptOffsetDelaysFirstCycle: the configured offset pushes the first
// post-startup re-optimization back without touching steady-state cadence.
func TestReoptOffsetDelaysFirstCycle(t *testing.T) {
	q := threeWay(t)
	ord := planner.Ordering{{1, 2}, {2, 0}, {1, 0}}
	base, err := NewEngine(q, ord, Config{ReoptInterval: 300, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewEngine(q, ord, Config{ReoptInterval: 300, ReoptOffset: 150, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	if got := off.ReoptOffset(); got != 150 {
		t.Fatalf("ReoptOffset() = %d, want 150", got)
	}
	// Outputs are unaffected — caches are transparent.
	driveBoth(t, q, base, off, 6000, 40, 10, 92)
	br, bs := base.Reopts()
	or, os := off.Reopts()
	if br+bs == 0 || or+os == 0 {
		t.Fatalf("no re-optimization activity (base %d+%d, offset %d+%d)", br, bs, or, os)
	}
}
