package core

import (
	"testing"

	"acache/internal/planner"
)

// TestSuspendResumeKeepsCacheWarm drives the Section 4.5(b) path directly:
// a used cache whose span covers a profiled subset candidate is suspended
// during a full profile — its lookup disappears but maintenance keeps the
// contents consistent — and resumes with its entries intact.
func TestSuspendResumeKeepsCacheWarm(t *testing.T) {
	q := fourWayClique(t)
	// Ordering with nested candidates in ΔR4: {R1,R2}@[0,1] inside
	// {R1,R2,R3}@[0,2].
	ord := planner.Ordering{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}}
	en, err := NewEngine(q, ord, Config{ReoptInterval: 400, Seed: 31})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	src := windowSource(q, 40, 10, 32)
	// Run until some cache is used.
	var target *cand
	for i := 0; i < 30000 && target == nil; i++ {
		en.Process(src.Next())
		for _, c := range en.cands {
			if c.state == Used && c.spec.End > c.spec.Start {
				target = c
			}
		}
	}
	if target == nil {
		t.Skip("no cache adopted under this workload; nothing to suspend")
	}
	// Let the freshly adopted cache populate before suspending it.
	for i := 0; i < 2000 && target.state == Used; i++ {
		en.Process(src.Next())
	}
	if target.state != Used {
		t.Skip("cache demoted before it warmed; nothing to suspend")
	}
	if target.inst.Cache().Entries() == 0 {
		t.Fatal("used cache has no entries after warm-up")
	}
	// Force a suspension via the executor API and verify contents persist
	// through further updates (maintenance still attached). A shared
	// instance may have sibling placements; suspend them all so no probe
	// path remains.
	inst := target.inst
	var suspended []*cand
	for _, c := range en.cands {
		if c.state == Used && c.inst == inst {
			if !en.exec.SuspendLookup(c.spec) {
				t.Fatalf("SuspendLookup failed on used placement %v", c.spec)
			}
			suspended = append(suspended, c)
		}
	}
	probesBefore := inst.Cache().Stats().Probes
	for i := 0; i < 500; i++ {
		en.exec.Process(src.Next())
	}
	if inst.Cache().Stats().Probes != probesBefore {
		t.Fatal("suspended cache was probed")
	}
	if inst.Cache().Entries() == 0 {
		t.Fatal("suspension lost the cache contents")
	}
	for _, c := range suspended {
		if !en.exec.ResumeLookup(c.spec) {
			t.Fatalf("ResumeLookup failed for %v", c.spec)
		}
	}
	for i := 0; i < 500; i++ {
		en.exec.Process(src.Next())
	}
	if inst.Cache().Stats().Probes == probesBefore {
		t.Fatal("resumed cache is not being probed")
	}
	// Double suspension / resume of absent attachments are no-ops.
	if en.exec.ResumeLookup(target.spec) {
		t.Fatal("resume of an active attachment must fail")
	}
}
