package core

import (
	"time"

	"acache/internal/cost"
	"acache/internal/stream"
)

// Batched ingestion. ProcessBatch splits an update batch into runs —
// maximal stretches of consecutive updates to the same relation with the
// same operation — and pushes each run through the executor's vectorized
// path (join.Exec.ProcessRun) in one pass, amortizing arena resets, operator
// dispatch, and adaptivity bookkeeping over the run while keeping results
// and simulated cost charges identical to the per-update loop.
//
// The equivalence rests on where the serial path *observes* shared state:
//
//   - The cost meter is read only at profiler rate-span boundaries (the
//     Tick that rolls a span over), by stopwatches, and by the monitor /
//     re-optimization machinery. Run lengths are capped (runLimit) so none
//     of those observation points falls strictly inside a run; reordering
//     charges within a run is therefore invisible.
//   - The profiler's random sequence is consumed only by ShouldProfile,
//     exactly once per update. The driver draws in update order while
//     sizing a run; a terminating "profile this one" draw is carried to the
//     next iteration instead of redrawn.
//   - Profiled updates, runs of one, and relations the executor reports as
//     non-batchable all go through processUpdate — literally the serial
//     code path.
//
// Adaptivity counters advance by the run length at run end, which lands on
// the same update indices as the serial loop because runLimit never lets a
// run cross a monitor or re-optimization boundary: a boundary can only
// coincide with a run's final update.
func (en *Engine) ProcessBatch(ups []stream.Update) int {
	total := 0
	carryProfiled := false // ups[i]'s draw already made (and true) while sizing
	for i := 0; i < len(ups); {
		u := ups[i]
		var profiled bool
		if carryProfiled {
			profiled, carryProfiled = true, false
		} else {
			profiled = en.pf.ShouldProfile(u.Rel)
		}
		limit := en.runLimit(u.Rel)
		if profiled || limit <= 1 {
			en.batchSerial++
			en.meter.Charge(cost.WindowMaint)
			total += en.processUpdate(u, profiled)
			i++
			continue
		}
		j := i + 1
		for j < len(ups) && j-i < limit && ups[j].Rel == u.Rel && ups[j].Op == u.Op {
			if en.pf.ShouldProfile(ups[j].Rel) {
				carryProfiled = true
				break
			}
			j++
		}
		if j == i+1 {
			// A run of one gains nothing over the serial path.
			en.batchSerial++
			en.meter.Charge(cost.WindowMaint)
			total += en.processUpdate(u, false)
			i++
			continue
		}
		k := j - i
		en.batchRuns++
		en.batchRunUpdates += uint64(k)
		en.meter.ChargeN(cost.WindowMaint, k)
		res := en.exec.ProcessRun(ups[i:j])
		en.pf.TickN(u.Rel, k)
		en.updates += k
		en.outputs += uint64(res.Outputs)
		total += res.Outputs
		i = j
		if len(en.cfg.ForcedCaches) > 0 || en.cfg.DisableCaching || en.pausedCaching {
			continue
		}
		en.sinceMonitor += k
		if en.sinceMonitor >= en.cfg.MonitorInterval {
			en.sinceMonitor = 0
			tm := time.Now()
			en.monitorUsed()
			en.reoptNanos += time.Since(tm).Nanoseconds()
		}
		// runLimit returned >1, so the engine was not profiling when the run
		// was admitted, and a run cannot start profiling mid-way: the serial
		// branch for en.profiling is unreachable here.
		en.sinceReopt += k
		if en.sinceReopt >= en.cfg.ReoptInterval {
			en.sinceReopt = 0
			tm := time.Now()
			en.startReopt()
			en.reoptNanos += time.Since(tm).Nanoseconds()
		}
	}
	return total
}

// BatchStats reports how ProcessBatch admitted its input since construction:
// vectorized runs (count and total updates), serially processed updates, and
// the executor's duplicate-replay count within runs.
func (en *Engine) BatchStats() (runs, runUpdates, serial, dupReplays uint64) {
	return en.batchRuns, en.batchRunUpdates, en.batchSerial, en.exec.DupReplays()
}

// runLimit bounds the length of a batched run starting at an update to rel so
// that no state observation point falls strictly inside the run. The profiler
// caps it at the next rate-span boundary; outside the forced / caching-off
// modes (which skip adaptivity entirely) the monitor and re-optimization
// intervals cap it too, and profiling phases force fully serial processing so
// every update's statsReady check happens at its per-update position.
func (en *Engine) runLimit(rel int) int {
	if en.exec.SharedStores() > 0 {
		// Cross-query shared stores require sharers to interleave per
		// update (join.Exec's lockstep contract); a vectorized run would
		// apply a whole stretch before co-sharers observed any of it.
		return 1
	}
	if !en.exec.Batchable(rel) {
		return 1
	}
	limit := en.pf.TicksToSpan(rel)
	if len(en.cfg.ForcedCaches) > 0 || en.cfg.DisableCaching || en.pausedCaching {
		return limit
	}
	if en.profiling {
		return 1
	}
	if m := en.cfg.MonitorInterval - en.sinceMonitor; m < limit {
		limit = m
	}
	if r := en.cfg.ReoptInterval - en.sinceReopt; r < limit {
		limit = r
	}
	return limit
}
