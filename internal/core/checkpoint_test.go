package core

import (
	"testing"

	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tuple"
)

func chainQuery(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.New(
		[]*tuple.Schema{
			tuple.RelationSchema(0, "A"),
			tuple.RelationSchema(1, "A", "B"),
			tuple.RelationSchema(2, "B"),
		},
		[]query.Pred{
			{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
			{Left: tuple.Attr{Rel: 1, Name: "B"}, Right: tuple.Attr{Rel: 2, Name: "B"}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func drive(t *testing.T, en *Engine, n int, seed int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		rel := i % 3
		v := int64(seed+int64(i)) % 17
		var tup tuple.Tuple
		if rel == 1 {
			tup = tuple.Tuple{v, v % 5}
		} else if rel == 2 {
			tup = tuple.Tuple{v % 5}
		} else {
			tup = tuple.Tuple{v}
		}
		en.Process(stream.Update{Op: stream.Insert, Rel: rel, Tuple: tup, Seq: uint64(i + 1)})
	}
}

// multiset counts a store's contents for comparison.
func storeMultiset(en *Engine, rel int) map[string]int {
	out := make(map[string]int)
	for _, tp := range en.Exec().Store(rel).All() {
		out[string(tuple.AppendKeyTuple(nil, tp))]++
	}
	return out
}

func TestCheckpointRoundTrip(t *testing.T) {
	q := chainQuery(t)
	en, err := NewEngine(q, nil, Config{ReoptInterval: 50, GCQuota: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, en, 400, 3)
	ck := en.Checkpoint()
	data, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Snap != ck.Snap {
		t.Fatalf("snapshot mismatch: %+v vs %+v", back.Snap, ck.Snap)
	}
	if len(back.Rels) != len(ck.Rels) {
		t.Fatalf("relation count mismatch")
	}
	for rel := range ck.Rels {
		if len(back.Rels[rel]) != len(ck.Rels[rel]) {
			t.Fatalf("relation %d tuple count mismatch", rel)
		}
		for i := range ck.Rels[rel] {
			if !back.Rels[rel][i].Equal(ck.Rels[rel][i]) {
				t.Fatalf("relation %d tuple %d mismatch", rel, i)
			}
		}
	}
	// Corruption is detected, not silently accepted.
	if err := new(Checkpoint).UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Fatal("truncated checkpoint unmarshalled without error")
	}
}

// TestRestoreConvergesToReference checkpoints an engine mid-stream, restores
// into a fresh cache-cold engine, feeds both the same suffix, and asserts
// identical window contents and identical result counts for the suffix — the
// paper's consistency-without-completeness property as a recovery primitive.
func TestRestoreConvergesToReference(t *testing.T) {
	q := chainQuery(t)
	mk := func() *Engine {
		en, err := NewEngine(q, nil, Config{ReoptInterval: 50, GCQuota: 6, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return en
	}
	ref := mk()
	drive(t, ref, 300, 9)
	ck := ref.Checkpoint()

	restored := mk()
	if err := restored.RestoreWindows(ck); err != nil {
		t.Fatal(err)
	}
	for rel := 0; rel < 3; rel++ {
		want := storeMultiset(ref, rel)
		got := storeMultiset(restored, rel)
		if len(want) != len(got) {
			t.Fatalf("relation %d: restored distinct count %d, want %d", rel, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("relation %d: restored multiset differs at %q", rel, k)
			}
		}
	}
	refBase := ref.Outputs()
	for i := 0; i < 200; i++ {
		u := stream.Update{Op: stream.Insert, Rel: i % 3, Tuple: tuple.Tuple{int64(i % 5)}, Seq: uint64(1000 + i)}
		if u.Rel == 1 {
			u.Tuple = tuple.Tuple{int64(i % 5), int64(i % 3)}
		}
		ref.Process(u)
		restored.Process(stream.Update{Op: u.Op, Rel: u.Rel, Tuple: u.Tuple.Clone(), Seq: u.Seq})
	}
	if got, want := restored.Outputs(), ref.Outputs()-refBase; got != want {
		t.Fatalf("restored engine emitted %d results over the suffix, reference %d", got, want)
	}
	if err := restored.RestoreWindows(ck); err == nil {
		t.Fatal("RestoreWindows on a non-fresh engine must fail")
	}
}

func TestSetCachingPausedDropsAndRecovers(t *testing.T) {
	q := chainQuery(t)
	en, err := NewEngine(q, nil, Config{ReoptInterval: 40, GCQuota: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, en, 600, 5)
	en.SetCachingPaused(true)
	if n := len(en.UsedCaches()); n != 0 {
		t.Fatalf("paused engine still uses %d caches", n)
	}
	reopts, skips := en.Reopts()
	drive(t, en, 300, 11)
	if r2, s2 := en.Reopts(); r2 != reopts || s2 != skips {
		t.Fatalf("paused engine ran re-optimizations (%d/%d → %d/%d)", reopts, skips, r2, s2)
	}
	if len(en.UsedCaches()) != 0 {
		t.Fatal("caches returned while paused")
	}
	en.SetCachingPaused(false)
	if en.CachingPaused() {
		t.Fatal("unpause did not clear the flag")
	}
	// After resuming, adaptivity runs again (a profiling phase begins and
	// eventually finishes; we only assert the machinery is live, not that a
	// cache is selected — that depends on the workload's cost model).
	drive(t, en, 600, 13)
	if r2, _ := en.Reopts(); r2 < reopts {
		t.Fatalf("reopt counter went backwards")
	}
}
