package core

import (
	"encoding/binary"
	"fmt"

	"acache/internal/cost"
	"acache/internal/tuple"
)

// Checkpoint is a serializable snapshot of the engine state a restart must
// preserve: the relation windows (the only state join results depend on) and
// the headline counters at capture time. Caches, profiler statistics, and
// adaptivity phase are deliberately excluded — the paper's central property
// (Section 3.2: caches obey consistency but not completeness) means a
// restored engine can start cache-cold and repopulate adaptively while every
// join result stays exact.
//
// Checkpoint must be called quiesced: the engine is single-goroutine, so the
// caller is either the goroutine driving it (a shard worker between batches)
// or has arranged the same happens-before a Flush barrier provides.
type Checkpoint struct {
	// Snap holds the counters at capture, so a supervisor can carry totals
	// across an engine rebuild (the rebuilt engine restarts from zero and
	// recounts only post-checkpoint replay).
	Snap Snapshot
	// Rels[rel] is relation rel's window contents at capture.
	Rels [][]tuple.Tuple
}

// Checkpoint captures the engine's windows and counters.
func (en *Engine) Checkpoint() *Checkpoint {
	n := en.q.N()
	ck := &Checkpoint{Snap: en.Snapshot(), Rels: make([][]tuple.Tuple, n)}
	// Adaptivity telemetry is process-local instrumentation, not replay
	// state: it is neither encoded by MarshalBinary nor meaningful after a
	// restore (the restored engine re-measures from scratch), so a
	// checkpoint carries it at zero.
	ck.Snap.ReoptNanos = 0
	ck.Snap.SampledUpdates = 0
	ck.Snap.CandidateRescores = 0
	ck.Snap.ReoptsSuppressed = 0
	for rel := 0; rel < n; rel++ {
		all := en.exec.Store(rel).All()
		ts := make([]tuple.Tuple, len(all))
		for i, t := range all {
			// Clone: store tuples live in the store's slab, which dies with
			// the engine the checkpoint is meant to outlive.
			ts[i] = t.Clone()
		}
		ck.Rels[rel] = ts
	}
	return ck
}

// RestoreWindows bulk-loads a checkpoint's window contents into a freshly
// constructed engine: tuples go straight into the relation stores (and their
// indexes) without join processing, so nothing is emitted and no cache is
// populated. The engine must not have processed any updates yet. A nil
// checkpoint restores nothing (recovery from the stream start).
func (en *Engine) RestoreWindows(ck *Checkpoint) error {
	if en.updates != 0 {
		return fmt.Errorf("core: RestoreWindows on an engine that has processed %d updates", en.updates)
	}
	if ck == nil {
		return nil
	}
	if len(ck.Rels) != en.q.N() {
		return fmt.Errorf("core: checkpoint has %d relations, engine %d", len(ck.Rels), en.q.N())
	}
	for rel, ts := range ck.Rels {
		st := en.exec.Store(rel)
		for _, t := range ts {
			if len(t) != en.q.Schema(rel).Len() {
				return fmt.Errorf("core: checkpoint relation %d tuple arity %d, want %d",
					rel, len(t), en.q.Schema(rel).Len())
			}
			st.Insert(t)
		}
	}
	return nil
}

// Binary checkpoint format: a magic+version header, the six counters, then
// per relation a tuple count, arity, and the row values, all little-endian
// fixed-width — trivially portable and versionable.
const ckptMagic = uint32(0xacac_0002)

// MarshalBinary serializes the checkpoint.
func (ck *Checkpoint) MarshalBinary() ([]byte, error) {
	size := 4 + 11*8 + 4
	for _, ts := range ck.Rels {
		size += 8
		for _, t := range ts {
			size += 8 * len(t)
		}
	}
	buf := make([]byte, 0, size)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	u32(ckptMagic)
	u64(uint64(ck.Snap.Updates))
	u64(ck.Snap.Outputs)
	u64(uint64(ck.Snap.Work))
	u64(uint64(ck.Snap.Reopts))
	u64(uint64(ck.Snap.SkippedReopts))
	u64(uint64(ck.Snap.CacheMemoryBytes))
	u64(uint64(ck.Snap.FilterBytes))
	u64(ck.Snap.FilteredProbes)
	u64(ck.Snap.FilterFalsePositives)
	u64(uint64(ck.Snap.WindowBytes))
	u64(uint64(ck.Snap.SharedStores))
	u32(uint32(len(ck.Rels)))
	for _, ts := range ck.Rels {
		u32(uint32(len(ts)))
		arity := 0
		if len(ts) > 0 {
			arity = len(ts[0])
		}
		u32(uint32(arity))
		for _, t := range ts {
			if len(t) != arity {
				return nil, fmt.Errorf("core: ragged checkpoint relation (arity %d vs %d)", len(t), arity)
			}
			for _, v := range t {
				u64(uint64(v))
			}
		}
	}
	return buf, nil
}

// UnmarshalBinary deserializes a checkpoint produced by MarshalBinary.
func (ck *Checkpoint) UnmarshalBinary(data []byte) error {
	pos := 0
	u32 := func() (uint32, error) {
		if pos+4 > len(data) {
			return 0, fmt.Errorf("core: truncated checkpoint at byte %d", pos)
		}
		v := binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		return v, nil
	}
	u64 := func() (uint64, error) {
		if pos+8 > len(data) {
			return 0, fmt.Errorf("core: truncated checkpoint at byte %d", pos)
		}
		v := binary.LittleEndian.Uint64(data[pos:])
		pos += 8
		return v, nil
	}
	magic, err := u32()
	if err != nil {
		return err
	}
	if magic != ckptMagic {
		return fmt.Errorf("core: bad checkpoint magic %#x", magic)
	}
	var fields [11]uint64
	for i := range fields {
		if fields[i], err = u64(); err != nil {
			return err
		}
	}
	ck.Snap = Snapshot{
		Updates:              int(fields[0]),
		Outputs:              fields[1],
		Work:                 cost.Units(fields[2]),
		Reopts:               int(fields[3]),
		SkippedReopts:        int(fields[4]),
		CacheMemoryBytes:     int(fields[5]),
		FilterBytes:          int(fields[6]),
		FilteredProbes:       fields[7],
		FilterFalsePositives: fields[8],
		WindowBytes:          int(fields[9]),
		SharedStores:         int(fields[10]),
	}
	nrels, err := u32()
	if err != nil {
		return err
	}
	ck.Rels = make([][]tuple.Tuple, nrels)
	for rel := range ck.Rels {
		count, err := u32()
		if err != nil {
			return err
		}
		arity, err := u32()
		if err != nil {
			return err
		}
		if uint64(count)*uint64(arity)*8 > uint64(len(data)-pos) {
			return fmt.Errorf("core: checkpoint relation %d claims %d×%d values beyond buffer", rel, count, arity)
		}
		ts := make([]tuple.Tuple, count)
		for i := range ts {
			t := make(tuple.Tuple, arity)
			for j := range t {
				v, err := u64()
				if err != nil {
					return err
				}
				t[j] = tuple.Value(v)
			}
			ts[i] = t
		}
		ck.Rels[rel] = ts
	}
	if pos != len(data) {
		return fmt.Errorf("core: %d trailing bytes after checkpoint", len(data)-pos)
	}
	return nil
}

// AddSnapshot accumulates another snapshot's cumulative counters into s —
// the supervisor-side merge when totals span engine rebuilds.
// CacheMemoryBytes and FilterBytes are point-in-time gauges, not cumulative
// counters, so they are not summed.
func (s *Snapshot) AddSnapshot(o Snapshot) {
	s.Updates += o.Updates
	s.Outputs += o.Outputs
	s.Work += o.Work
	s.Reopts += o.Reopts
	s.SkippedReopts += o.SkippedReopts
	s.FilteredProbes += o.FilteredProbes
	s.FilterFalsePositives += o.FilterFalsePositives
	s.StagedUpdates += o.StagedUpdates
	s.StageStalls += o.StageStalls
	s.TierPromotions += o.TierPromotions
	s.TierDemotions += o.TierDemotions
	s.TierWriteErrors += o.TierWriteErrors
	s.DurDegraded = s.DurDegraded || o.DurDegraded
	s.ReoptNanos += o.ReoptNanos
	s.SampledUpdates += o.SampledUpdates
	s.CandidateRescores += o.CandidateRescores
	s.ReoptsSuppressed += o.ReoptsSuppressed
	if o.PipelineWorkers > s.PipelineWorkers {
		s.PipelineWorkers = o.PipelineWorkers // config gauge, not a counter
	}
	if s.Updates > 0 {
		s.StageOverlapRatio = float64(s.StagedUpdates) / float64(s.Updates)
	}
}

// DropCaches detaches every used (or suspended) cache immediately — the
// paper's near-zero-cost degradation move: results stay exact, only the
// work saved by the caches is lost until they are re-selected.
func (en *Engine) DropCaches() {
	for _, c := range en.cands {
		if c.state == Used || c.suspended {
			en.detach(c)
		}
	}
}

// SetCachingPaused pauses (or resumes) adaptive caching at run time — the
// first rung of the overload degradation ladder. Pausing drops every cache
// and stops all adaptivity work (profiling, monitoring, re-optimization),
// shedding their overhead while results stay exact; resuming recomputes the
// candidate set and starts a fresh profiling phase so caches can return.
// No-op in forced-cache or caching-disabled modes, and when the state does
// not change.
func (en *Engine) SetCachingPaused(paused bool) {
	if len(en.cfg.ForcedCaches) > 0 || en.cfg.DisableCaching || paused == en.pausedCaching {
		return
	}
	en.pausedCaching = paused
	if paused {
		en.stopShadows()
		en.profiling = false
		en.readyCand = nil
		en.DropCaches()
		return
	}
	en.sinceReopt = 0
	en.sinceMonitor = 0
	en.refreshCandidates()
	en.startProfilingPhase()
}

// CachingPaused reports whether adaptive caching is paused.
func (en *Engine) CachingPaused() bool { return en.pausedCaching }
