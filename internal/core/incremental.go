package core

import "sort"

// This file implements the two future-work directions the paper sketches in
// Section 8 item 2:
//
//	(i)  an incremental re-optimization that adds or drops caches based
//	     solely on the statistics that changed, instead of re-running the
//	     offline selection from scratch; and
//	(ii) identification of "unimportant statistics" whose significant
//	     changes tend not to produce new cache selections, so they stop
//	     triggering re-optimizations.
//
// Both are off by default (Config.Incremental) and validated against the
// from-scratch selection by tests and the ablation harness.

// incrementalFullEvery forces a from-scratch selection every Nth
// re-optimization even in incremental mode, bounding the drift a sequence
// of local moves can accumulate.
const incrementalFullEvery = 8

// unimportantAfter is how many consecutive times a candidate's
// beyond-threshold change may fail to alter the selection before the
// candidate's statistics are deemed unimportant and stop triggering
// re-optimizations. A selection change anywhere resets every counter —
// conditions have genuinely moved.
const unimportantAfter = 3

// incrementalSelect starts from the currently used cache set and applies
// greedy local moves — toggling individual candidates and swapping
// overlapping ones — until no move improves the objective. Only candidates
// whose estimates moved beyond the change threshold since the last
// selection (plus the current used set) are considered, which is what makes
// the re-optimization incremental: stable candidates cost nothing.
func (en *Engine) incrementalSelect() []*cand {
	// Current solution: the used set.
	cur := make(map[*cand]bool)
	for _, c := range en.cands {
		if c.state == Used {
			cur[c] = true
		}
	}
	// Movable candidates: changed beyond threshold (including having just
	// become estimable — the same conditions that trigger re-optimization),
	// or currently used.
	p := en.cfg.ChangeThreshold
	var movable []*cand
	for _, c := range en.cands {
		if !c.est.Ready {
			continue
		}
		changed := !c.selSet ||
			c.est.Ready != c.selEst.Ready ||
			relChange(c.est.Benefit, c.selEst.Benefit) > p ||
			relChange(c.est.Cost, c.selEst.Cost) > p
		if changed || cur[c] {
			movable = append(movable, c)
		}
	}
	sort.Slice(movable, func(a, b int) bool {
		return placementKey(movable[a].spec) < placementKey(movable[b].spec)
	})

	value := func(sel map[*cand]bool) float64 {
		v := 0.0
		groups := make(map[string]float64)
		for c := range sel {
			v += c.est.Benefit
			groups[c.spec.SharingID()] = c.est.Cost
		}
		for _, cost := range groups {
			v -= cost
		}
		return v
	}
	overlapsAny := func(c *cand, sel map[*cand]bool) []*cand {
		var out []*cand
		for d := range sel {
			if d != c && d.spec.Overlaps(c.spec) {
				out = append(out, d)
			}
		}
		return out
	}

	best := value(cur)
	for pass := 0; pass < 2*len(movable)+1; pass++ {
		improved := false
		for _, c := range movable {
			if cur[c] {
				// Try dropping c.
				delete(cur, c)
				if v := value(cur); v > best {
					best = v
					improved = true
					continue
				}
				cur[c] = true
				continue
			}
			// Try adding c, evicting whatever it overlaps.
			evicted := overlapsAny(c, cur)
			for _, d := range evicted {
				delete(cur, d)
			}
			cur[c] = true
			if v := value(cur); v > best {
				best = v
				improved = true
				continue
			}
			delete(cur, c)
			for _, d := range evicted {
				cur[d] = true
			}
		}
		if !improved {
			break
		}
	}
	out := make([]*cand, 0, len(cur))
	for c := range cur {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool {
		return placementKey(out[a].spec) < placementKey(out[b].spec)
	})
	return out
}

// noteSelectionOutcome updates the unimportant-statistics tracker (future
// work (ii)): candidates whose beyond-threshold changes repeatedly leave the
// selection unchanged stop counting toward changedBeyondThreshold; any
// actual selection change rehabilitates everyone.
func (en *Engine) noteSelectionOutcome(changedCands []*cand, selectionChanged bool) {
	if selectionChanged {
		for _, c := range en.cands {
			c.unimportant = 0
		}
		return
	}
	for _, c := range changedCands {
		c.unimportant++
	}
}
