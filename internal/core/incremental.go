package core

// This file implements the two future-work directions the paper sketches in
// Section 8 item 2:
//
//	(i)  an incremental re-optimization that adds or drops caches based
//	     solely on the statistics that changed, instead of re-running the
//	     offline selection from scratch; and
//	(ii) identification of "unimportant statistics" whose significant
//	     changes tend not to produce new cache selections, so they stop
//	     triggering re-optimizations.
//
// Both are off by default (Config.Incremental) and validated against the
// from-scratch selection by tests and the ablation harness.

// incrementalFullEvery forces a from-scratch selection every Nth
// re-optimization even in incremental mode, bounding the drift a sequence
// of local moves can accumulate.
const incrementalFullEvery = 8

// unimportantAfter is how many consecutive times a candidate's
// beyond-threshold change may fail to alter the selection before the
// candidate's statistics are deemed unimportant and stop triggering
// re-optimizations. A selection change anywhere resets every counter —
// conditions have genuinely moved.
const unimportantAfter = 3

// incrementalSelect starts from the currently used cache set and applies
// greedy local moves — toggling individual candidates and swapping
// overlapping ones — until no move improves the objective. Only candidates
// whose estimates moved beyond the change threshold since the last
// selection (plus the current used set) are considered, which is what makes
// the re-optimization incremental: stable candidates cost nothing.
func (en *Engine) incrementalSelect() []*cand {
	// Current solution: the used set. The map, movable slice, and value()'s
	// group table live on the engine and are reused across rounds.
	if en.incCur == nil {
		en.incCur = make(map[*cand]bool)
		en.incGroups = make(map[string]float64)
	}
	clear(en.incCur)
	cur := en.incCur
	for _, c := range en.cands {
		if c.state == Used {
			cur[c] = true
		}
	}
	// Movable candidates: changed beyond threshold (including having just
	// become estimable — the same conditions that trigger re-optimization),
	// or currently used.
	p := en.cfg.ChangeThreshold
	movable := en.incMovable[:0]
	for _, c := range en.cands {
		if !c.est.Ready {
			continue
		}
		changed := !c.selSet ||
			c.est.Ready != c.selEst.Ready ||
			relChange(c.est.Benefit, c.selEst.Benefit) > p ||
			relChange(c.est.Cost, c.selEst.Cost) > p
		if changed || cur[c] {
			movable = append(movable, c)
		}
	}
	en.incMovable = movable
	sortCandsByKey(movable)

	value := func(sel map[*cand]bool) float64 {
		v := 0.0
		groups := en.incGroups
		clear(groups)
		for c := range sel {
			v += c.est.Benefit
			groups[c.spec.SharingID()] = c.est.Cost
		}
		for _, cost := range groups {
			v -= cost
		}
		return v
	}
	overlapsAny := func(c *cand, sel map[*cand]bool) []*cand {
		out := en.incOverlap[:0]
		for d := range sel {
			if d != c && d.spec.Overlaps(c.spec) {
				out = append(out, d)
			}
		}
		en.incOverlap = out
		return out
	}

	best := value(cur)
	for pass := 0; pass < 2*len(movable)+1; pass++ {
		improved := false
		for _, c := range movable {
			if cur[c] {
				// Try dropping c.
				delete(cur, c)
				if v := value(cur); v > best {
					best = v
					improved = true
					continue
				}
				cur[c] = true
				continue
			}
			// Try adding c, evicting whatever it overlaps.
			evicted := overlapsAny(c, cur)
			for _, d := range evicted {
				delete(cur, d)
			}
			cur[c] = true
			if v := value(cur); v > best {
				best = v
				improved = true
				continue
			}
			delete(cur, c)
			for _, d := range evicted {
				cur[d] = true
			}
		}
		if !improved {
			break
		}
	}
	out := en.chosenBuf[:0]
	for c := range cur {
		out = append(out, c)
	}
	sortCandsByKey(out)
	en.chosenBuf = out
	return out
}

// sortCandsByKey orders candidates by placement key (unique per candidate).
// Insertion sort: the slices are tiny and sort.Slice would allocate its
// closure and reflect swapper on every re-optimization.
func sortCandsByKey(cs []*cand) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && placementKey(cs[j].spec) < placementKey(cs[j-1].spec); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// noteSelectionOutcome updates the unimportant-statistics tracker (future
// work (ii)): candidates whose beyond-threshold changes repeatedly leave the
// selection unchanged stop counting toward changedBeyondThreshold; any
// actual selection change rehabilitates everyone.
func (en *Engine) noteSelectionOutcome(changedCands []*cand, selectionChanged bool) {
	if selectionChanged {
		for _, c := range en.cands {
			c.unimportant = 0
		}
		return
	}
	for _, c := range changedCands {
		c.unimportant++
	}
}
