// Package core implements A-Caching (Sections 4–6): the adaptive engine that
// ties the Executor, Profiler, and Re-optimizer together (Figure 4). It
// maintains candidate caches in the Used / Profiled / Unused state machine of
// Section 4.5, estimates their benefits and costs online, re-optimizes at a
// configurable interval with a change-threshold guard, reacts immediately
// when a used cache turns unprofitable, allocates memory by priority
// (Section 5), and optionally extends the candidate space with
// globally-consistent caches (Section 6).
package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"time"

	"acache/internal/cache"
	"acache/internal/cost"
	"acache/internal/join"
	"acache/internal/memory"
	"acache/internal/ordering"
	"acache/internal/planner"
	"acache/internal/profiler"
	"acache/internal/query"
	"acache/internal/selection"
	"acache/internal/stream"
	"acache/internal/tier"
	"acache/internal/tuple"
)

// State is a candidate cache's state (Section 4.5).
type State int

const (
	// Unused: neither used nor being profiled.
	Unused State = iota
	// Profiled: statistics are being collected (shadow estimator active).
	Profiled
	// Used: spliced into its pipeline and probed during join processing.
	Used
)

func (s State) String() string {
	switch s {
	case Used:
		return "used"
	case Profiled:
		return "profiled"
	default:
		return "unused"
	}
}

// SelectionMode picks the offline selection algorithm (for ablations;
// Auto follows the paper's implementation).
type SelectionMode int

const (
	// SelectAuto: optimal DP without sharing, exhaustive for small m,
	// greedy beyond (Section 4.4).
	SelectAuto SelectionMode = iota
	// SelectExhaustive forces exhaustive search.
	SelectExhaustive
	// SelectGreedy forces the Appendix-B greedy approximation.
	SelectGreedy
	// SelectRandomized forces the LP randomized-rounding approximation.
	SelectRandomized
)

// Config tunes the engine. Zero values select the paper's defaults.
type Config struct {
	// Profiler configures online estimation (W = 10 etc.).
	Profiler profiler.Config
	// ReoptInterval is I: updates processed between re-optimizations
	// (default 10 000; Section 7.4 uses 10 000 tuples, Section 7.1 two
	// seconds).
	ReoptInterval int
	// MonitorInterval is how often used caches' net benefit is rechecked
	// for the immediate-demotion rule of Section 4.5(a) (default I/10).
	MonitorInterval int
	// ChangeThreshold is p: re-optimization is skipped unless some used or
	// profiled cache's benefit or cost moved by more than this fraction
	// (default 0.2, Section 4.5(c)).
	ChangeThreshold float64
	// GCQuota is m: the maximum number of candidate caches considered when
	// globally-consistent caches are enabled (Section 6). 0 disables GC
	// candidates.
	GCQuota int
	// MemoryBudget is the bytes available for caches; < 0 is unlimited
	// (Section 5, Figure 13). 0 means no cache memory at all.
	MemoryBudget int
	// AdaptOrdering enables the A-Greedy-style ordering advisor.
	AdaptOrdering bool
	// DisableCaching runs a plain MJoin (the baseline M of Section 7.3).
	DisableCaching bool
	// ForcedCaches, when non-empty, pins exactly these caches in place and
	// disables adaptive selection — Figures 6–8 force the single candidate
	// cache to be used.
	ForcedCaches []*planner.Spec
	// Selection picks the offline algorithm.
	Selection SelectionMode
	// Incremental enables the Section 8 future-work re-optimizer: local
	// add/drop/swap moves over the candidates whose statistics changed,
	// instead of from-scratch selection (which still runs periodically as
	// a safety net), plus suppression of statistics whose changes never
	// alter the selection.
	Incremental bool
	// BudgetAware integrates the memory budget into selection itself
	// (choose the best cache set that fits) instead of the paper's modular
	// select-then-allocate pipeline — the integrated problem the paper
	// defers to future work. Only meaningful with a finite MemoryBudget.
	BudgetAware bool
	// TwoWayCaches switches plain caches to 2-way set-associative
	// replacement — the "other low-overhead replacement schemes"
	// experiment Section 3.3 plans; reduced X ⋉ Y caches stay
	// direct-mapped.
	TwoWayCaches bool
	// PrimeCaches eagerly populates freshly selected caches with the full
	// current segment join instead of the paper's incremental
	// miss-population — trading a one-time bulk computation for the
	// cold-start miss period (extension).
	PrimeCaches bool
	// DisableFilters turns off the fingerprint filters fronting store
	// indexes and cache slots, and the adaptive knob that manages them.
	// Results and simulated cost are identical either way (the filters
	// short-circuit only real CPU work); this exists for differential
	// testing and ablation.
	DisableFilters bool
	// FilterAwareCostModel makes the profiler's estimates use the
	// filtered probe-cost split (cost.FilterProbe / observed FP rate)
	// instead of the paper's probe_cost. Off by default so the paper's
	// figures are unchanged by the filters' presence.
	FilterAwareCostModel bool
	// MaxProfilingUpdates bounds the profiling phase before selection runs
	// with whatever statistics are available (default 4 × ReoptInterval).
	MaxProfilingUpdates int
	// Seed drives sampling and randomized selection.
	Seed int64
	// ScanOnly forwards index-free attributes to the executor (Figure 10).
	ScanOnly []tuple.Attr
	// Pipeline enables staged pipeline-parallel execution inside the
	// executor (join.PipelineOptions); the zero value keeps the serial path
	// byte-identical. Engines built with workers must be Closed.
	Pipeline join.PipelineOptions
	// StoreProvider, when non-nil, lets a host (the Server) substitute
	// cross-query shared window stores for this engine's relations at build
	// time. See join.Options.StoreProvider.
	StoreProvider join.StoreProvider
	// Tier enables tiered slab storage: relation-store pages and cache-entry
	// payloads past the hot watermark spill to memory-mapped files under
	// Tier.Dir. Results, window contents, and meter totals are bit-identical
	// with tiering on or off (the meter always charges the in-memory tariff);
	// only the resident footprint reported to the memory allocator and
	// wall-clock time change. The zero value disables tiering.
	Tier tier.Options
	// RelTokens, when non-nil, gives each relation a host-scope identity
	// token (stream name, arity, window shape). They anchor the cross-query
	// canonical cache identities (planner.CrossID) that a hosting server
	// pools benefit accounting over; without them, cache groups are private
	// to this engine.
	RelTokens []string
	// ReoptOffset delays the first post-startup re-optimization cycle by
	// this many updates. A sharded host staggers its shards' offsets so they
	// do not all pause to profile and re-optimize on the same tick; results
	// are identical for any offset (cache selection never changes results,
	// only cost).
	ReoptOffset int
	// ReferenceAdaptivity disables the adaptivity fast paths — the
	// epoch-memoized readiness poll, the candidate-set memo, and reusable
	// selection workspaces — so every poll and selection recomputes from
	// scratch. Decisions, cost figures, and results are identical either
	// way; this exists (like DisableFilters) for differential testing and
	// the adaptivity experiment's decision-identity cross-check.
	ReferenceAdaptivity bool
	// InstrumentPhases wall-clock-instruments the per-update path into
	// probe / cache-maintenance / profiler buckets (PhaseNanos). Off by
	// default: the instrumentation itself costs two clock reads per update,
	// so headline throughput runs leave it off and the bench harness takes
	// a second instrumented pass.
	InstrumentPhases bool
}

func (c Config) withDefaults() Config {
	if c.ReoptInterval == 0 {
		c.ReoptInterval = 10_000
	}
	if c.MonitorInterval == 0 {
		c.MonitorInterval = c.ReoptInterval / 10
		if c.MonitorInterval == 0 {
			c.MonitorInterval = 1
		}
	}
	if c.ChangeThreshold == 0 {
		c.ChangeThreshold = 0.2
	}
	if c.MemoryBudget == 0 {
		c.MemoryBudget = -1
	}
	if c.MaxProfilingUpdates == 0 {
		c.MaxProfilingUpdates = 2 * c.ReoptInterval
	}
	return c
}

// placementKey identifies one candidate placement (memoized on the spec).
func placementKey(s *planner.Spec) string { return s.Key() }

// cand tracks one candidate placement's state and statistics.
type cand struct {
	spec  *planner.Spec
	state State
	// est is the latest cost-model evaluation.
	est profiler.Estimate
	// selEst is the evaluation at the last selection, for the p-threshold.
	selEst profiler.Estimate
	selSet bool
	// shadowOn marks a live shadow estimator for this profiling phase;
	// candidates without one keep their previous estimate.
	shadowOn bool
	inst     *join.Instance // non-nil while Used
	// attachedAt is the engine update count when the cache entered the
	// Used state; warmProbes is how many probes the monitor lets pass
	// before judging it (a fresh cache starts empty and needs roughly its
	// expected entry population in probes before its miss rate reflects
	// steady state).
	attachedAt int
	warmProbes int64
	warmed     bool
	// suspended marks a previously-used cache whose lookup is withdrawn
	// for the profiling phase while its instance stays maintained
	// (Section 4.5(b)); it resumes warm if re-selected.
	suspended bool
	monStat   monitorSnapshot
	demotions int
	// unimportant counts consecutive beyond-threshold changes of this
	// candidate's statistics that produced no selection change (Section 8
	// future work (ii)); high counts stop triggering re-optimizations.
	unimportant int
}

type monitorSnapshot struct {
	probes, hits int64
}

// Engine is the adaptive stream-join engine.
type Engine struct {
	q     *query.Query
	cfg   Config
	meter *cost.Meter
	exec  *join.Exec
	pf    *profiler.Profiler
	adv   *ordering.Advisor
	mem   *memory.Manager
	rng   *rand.Rand

	cands     map[string]*cand          // by placementKey
	instances map[string]*join.Instance // by SharingID, for Used caches

	// cacheTier is the shared cold tier of this engine's cache instances,
	// created lazily at the first instance when Config.Tier is enabled.
	cacheTier *cache.Tier

	updates      int
	sinceReopt   int
	sinceMonitor int
	profiling    bool
	profilingFor int
	// sinceFilterAdapt drives the filter on/off knob's cadence. It runs on
	// its own counter, before the forced/disabled-caching early return in
	// processUpdate, because filters are orthogonal to cache selection —
	// a plain MJoin benefits from them the most.
	sinceFilterAdapt int
	filterSnaps      []filterSnap
	filterObsPrev    filterObsSnap
	// allocateMemory's and MemoryDemand's scratch, reused so a host
	// server's periodic rebalance allocates nothing at steady state.
	allocInfos  map[string]allocInfo
	allocReqs   []memory.Request
	allocGrants map[string]int
	demandSeen  map[string]bool
	// MemoryDemandDetail's scratch plus the CrossID memo (keyed by the
	// engine-local SharingID, which pins the cross-query identity for a
	// fixed Config.RelTokens).
	demandDetail    []GroupDemand
	demandDetailIdx map[string]int
	candKeys        []string
	crossIDs        map[string]string
	// pausedCaching suspends all adaptivity (profiling, monitoring,
	// re-optimization) with caches dropped — the overload degradation
	// ladder's first rung (see SetCachingPaused).
	pausedCaching bool
	// readyCand caches the candidate whose shadow window statsReady last
	// found unfilled, so the per-update readiness poll during a profiling
	// phase re-checks one window instead of scanning all candidates. Purely
	// a memo: statsReady's answer is unchanged (see the invariant there).
	readyCand *cand
	// reoptCount drives the profiling duty cycle: a full profile — which
	// suspends used caches that deny subset candidates their probe stream
	// (Section 4.5(b)) — runs only every fullProfileEvery-th
	// re-optimization; the others profile only candidates whose probe
	// stream is unobstructed, bounding the throughput lost to profiling.
	reoptCount int

	// Epoch-memoized readiness poll: statsReady is called once per update
	// during a profiling phase, but its window-backed inputs change only at
	// profiler stats epochs. readyEpoch/readyEpochOK memoize a false answer
	// per epoch; unreadyPipe records the pipeline whose traffic-share early
	// exit blocked it (−1 when blocked on a window or shadow), the one input
	// that moves between epochs and must be re-checked per update.
	readyEpoch   int64
	readyEpochOK bool
	unreadyPipe  int

	// Candidate-set memo: planner.Candidates/GCCandidates are pure in
	// (query, ordering), so refreshCandidates memoizes the spec slice per
	// ordering key and ping-pongs the cands map, making ordering flips
	// allocation-free once both orderings have been seen.
	candSpecMemo map[string][]*planner.Spec
	ordKeyBuf    []byte
	spareCands   map[string]*cand

	// Re-optimization scratch, reused across intervals so a warm
	// re-optimization allocates nothing: the selection problem and
	// workspace, the chosen/changed sets, and monitorUsed's group table.
	selWS       selection.Workspace
	selProb     selection.Problem
	selGroupIDs map[string]int
	selList     []*cand
	chosenBuf   []*cand
	inChosenBuf map[*cand]bool
	triggerBuf  []*cand
	oscBuf      []*cand
	incCur      map[*cand]bool
	incMovable  []*cand
	incGroups   map[string]float64
	incOverlap  []*cand
	monIdx      map[string]int
	monEvals    []groupEval

	// Adaptivity telemetry: cumulative wall nanos inside the re-optimizer
	// (monitor + profiling-phase transitions), cost-model re-evaluations,
	// and rounds suppressed by the learned-unimportance filter alone.
	reoptNanos       int64
	candRescores     uint64
	reoptsSuppressed int
	// Instrumented phase buckets (Config.InstrumentPhases): wall nanos in
	// unprofiled executor passes and in profiled passes + tick bookkeeping.
	execNanos     int64
	profilerNanos int64

	outputs uint64
	// Reopts counts selection runs; SkippedReopts counts p-threshold skips.
	reopts, skippedReopts int

	// Batch-path observability: how ProcessBatch admitted its input. Runs of
	// length ≥ 2 go through the vectorized executor (batchRuns/batchRunUpdates);
	// everything else takes the serial per-update path (batchSerial).
	batchRuns, batchRunUpdates, batchSerial uint64

	// resultSinks receive canonicalized join-result deltas; resultTaps
	// tracks the executor tap id per pipeline (−1 = none) so pipeline
	// rebuilds can re-register.
	resultSinks []func(insert bool, result []tuple.Value)
	resultTaps  []int
}

// NewEngine builds an engine for q starting from the given pipeline
// ordering (nil for the neutral initial ordering).
func NewEngine(q *query.Query, ord planner.Ordering, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if ord == nil {
		ord = ordering.InitialOrdering(q.N())
	}
	meter := &cost.Meter{}
	exec, err := join.NewExec(q, ord, meter, join.Options{ScanOnly: cfg.ScanOnly, Pipeline: cfg.Pipeline, StoreProvider: cfg.StoreProvider, Tier: cfg.Tier})
	if err != nil {
		return nil, err
	}
	if cfg.DisableFilters {
		exec.SetStoreFilters(false)
	}
	cfg.Profiler.Seed = cfg.Seed + 1
	cfg.Profiler.FilterAware = cfg.FilterAwareCostModel
	pf := profiler.New(q, exec, meter, cfg.Profiler)
	en := &Engine{
		q:           q,
		cfg:         cfg,
		meter:       meter,
		exec:        exec,
		pf:          pf,
		adv:         ordering.New(q, pf),
		mem:         memory.NewManager(cfg.MemoryBudget),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		cands:       make(map[string]*cand),
		instances:   make(map[string]*join.Instance),
		unreadyPipe: -1,
	}
	if cfg.InstrumentPhases {
		pf.SetInstrument(true)
	}
	if len(cfg.ForcedCaches) > 0 {
		if err := en.attachForced(); err != nil {
			return nil, err
		}
	} else if !cfg.DisableCaching {
		en.refreshCandidates()
		en.startProfilingPhase()
	}
	if cfg.ReoptOffset > 0 {
		// Counted off before sinceReopt can reach the interval: the first
		// post-startup re-optimization lands ReoptOffset updates later.
		en.sinceReopt = -cfg.ReoptOffset
	}
	return en, nil
}

// ReoptOffset returns the configured first-re-optimization delay (shard
// stagger), for tests and hosts inspecting shard phase.
func (en *Engine) ReoptOffset() int { return en.cfg.ReoptOffset }

// Meter exposes the engine's cost meter.
func (en *Engine) Meter() *cost.Meter { return en.meter }

// Exec exposes the executor (stores, ordering) for tests and tools.
func (en *Engine) Exec() *join.Exec { return en.exec }

// OnResult registers a callback receiving every join-result delta in
// canonical column order (relations ascending, each relation's schema
// order), with insert = true for additions and false for retractions. The
// callback runs synchronously inside update processing and must not call
// back into the engine. Reordering-induced pipeline rebuilds re-register
// the taps automatically.
func (en *Engine) OnResult(f func(insert bool, result []tuple.Value)) {
	en.resultSinks = append(en.resultSinks, f)
	en.installResultTaps()
}

// installResultTaps (re)wires output-position taps on every pipeline that
// canonicalize and fan out to the registered sinks.
func (en *Engine) installResultTaps() {
	if len(en.resultSinks) == 0 {
		return
	}
	n := en.q.N()
	for i := 0; i < n; i++ {
		if en.resultTaps == nil {
			en.resultTaps = make([]int, n)
			for j := range en.resultTaps {
				en.resultTaps[j] = -1
			}
		}
		if en.resultTaps[i] != -1 {
			continue
		}
		pipe := i
		// Canonicalization columns for this pipeline's output schema.
		schema := en.q.Schema(pipe)
		for _, r := range en.exec.Ordering()[pipe] {
			schema = schema.Concat(en.q.Schema(r))
		}
		var cols []int
		for rel := 0; rel < n; rel++ {
			for _, a := range en.q.Schema(rel).Cols() {
				cols = append(cols, schema.MustColOf(a))
			}
		}
		en.resultTaps[i] = en.exec.Tap(pipe, en.q.N()-1, func(batch []tuple.Tuple, op stream.Op) {
			for _, t := range batch {
				out := make([]tuple.Value, len(cols))
				for j, c := range cols {
					out[j] = t[c]
				}
				for _, sink := range en.resultSinks {
					sink(op == stream.Insert, out)
				}
			}
		})
	}
}

// Profiler exposes the online statistics.
func (en *Engine) Profiler() *profiler.Profiler { return en.pf }

// Outputs returns the total join-result updates emitted.
func (en *Engine) Outputs() uint64 { return en.outputs }

// Reopts returns (selection runs, p-threshold skips).
func (en *Engine) Reopts() (int, int) { return en.reopts, en.skippedReopts }

// attachForced pins the configured caches (Figures 6–8).
func (en *Engine) attachForced() error {
	for _, spec := range en.cfg.ForcedCaches {
		inst := en.instanceFor(spec, 4096)
		if err := en.exec.AttachCache(spec, inst); err != nil {
			return err
		}
		c := &cand{spec: spec, state: Used, inst: inst}
		en.cands[placementKey(spec)] = c
	}
	return nil
}

// instanceFor finds or creates the shared instance for a spec.
func (en *Engine) instanceFor(spec *planner.Spec, buckets int) *join.Instance {
	id := spec.SharingID()
	if inst, ok := en.instances[id]; ok {
		return inst
	}
	assoc := cache.DirectMapped
	if en.cfg.TwoWayCaches {
		assoc = cache.TwoWay
		buckets = (buckets + 1) / 2 // same total capacity: sets × 2 ways
	}
	inst := join.NewInstanceAssoc(en.q, spec, buckets, en.mem.Budget(), assoc, en.meter)
	if en.cfg.DisableFilters {
		inst.Cache().SetFilterEnabled(false)
	}
	if t := en.ensureCacheTier(); t != nil {
		inst.Cache().AttachTier(t)
	}
	en.instances[id] = inst
	return inst
}

// ensureCacheTier lazily creates the engine's shared cache spill. A creation
// failure disables cache tiering for the engine's lifetime (caches simply
// stay fully resident, which is always correct).
func (en *Engine) ensureCacheTier() *cache.Tier {
	if en.cacheTier != nil || !en.cfg.Tier.Enabled() {
		return en.cacheTier
	}
	o := en.cfg.Tier.WithDefaults()
	t, err := cache.NewTier(filepath.Join(o.Dir, "cache.spill"), o.PageBytes, o.HotBytes, o.FS)
	if err != nil {
		en.cfg.Tier = tier.Options{}
		return nil
	}
	en.cacheTier = t
	return t
}

// releaseInstance forgets an instance; under tiering its entries are cleared
// first so the shared spill's slots come back, and the cache unregisters
// from the tier's demotion clock.
func (en *Engine) releaseInstance(id string) {
	if inst, ok := en.instances[id]; ok {
		if en.cacheTier != nil {
			inst.Cache().Clear()
			inst.Cache().DetachTier()
		}
		delete(en.instances, id)
	}
}

// Process runs one update through the engine: profiling decision, join
// computation, adaptivity bookkeeping. It returns the number of join result
// updates emitted.
func (en *Engine) Process(u stream.Update) int {
	en.meter.Charge(cost.WindowMaint)
	return en.processUpdate(u, en.pf.ShouldProfile(u.Rel))
}

// processUpdate is the serial per-update path with the window-maintenance
// charge and the profiling draw hoisted to the caller: Process draws inline,
// while the batch driver (ProcessBatch) draws ahead when sizing runs and
// passes the outcome through so the profiler's random sequence is consumed in
// exactly the per-update order.
func (en *Engine) processUpdate(u stream.Update, profiled bool) int {
	var outputs int
	inst := en.cfg.InstrumentPhases
	var t0 time.Time
	if inst {
		t0 = time.Now()
	}
	if profiled {
		res, prof := en.exec.ProcessProfiled(u)
		en.pf.Observe(u.Rel, prof)
		outputs = res.Outputs
	} else {
		outputs = en.exec.Process(u).Outputs
	}
	if inst {
		el := time.Since(t0).Nanoseconds()
		if profiled {
			en.profilerNanos += el
		} else {
			en.execNanos += el
		}
		t0 = time.Now()
	}
	en.pf.Tick(u.Rel)
	if inst {
		en.profilerNanos += time.Since(t0).Nanoseconds()
	}
	en.updates++
	en.outputs += uint64(outputs)

	if !en.cfg.DisableFilters {
		en.sinceFilterAdapt++
		if en.sinceFilterAdapt >= en.cfg.MonitorInterval {
			en.sinceFilterAdapt = 0
			en.adaptFilters()
		}
	}

	if len(en.cfg.ForcedCaches) > 0 || en.cfg.DisableCaching || en.pausedCaching {
		return outputs
	}

	en.sinceMonitor++
	if en.sinceMonitor >= en.cfg.MonitorInterval {
		en.sinceMonitor = 0
		tm := time.Now()
		en.monitorUsed()
		en.reoptNanos += time.Since(tm).Nanoseconds()
	}

	if en.profiling {
		en.profilingFor++
		if en.statsReady() || en.profilingFor >= en.cfg.MaxProfilingUpdates {
			tm := time.Now()
			en.finishReopt()
			en.reoptNanos += time.Since(tm).Nanoseconds()
		}
		return outputs
	}
	en.sinceReopt++
	if en.sinceReopt >= en.cfg.ReoptInterval {
		en.sinceReopt = 0
		tm := time.Now()
		en.startReopt()
		en.reoptNanos += time.Since(tm).Nanoseconds()
	}
	return outputs
}

// PhaseNanos reports the wall-clock adaptivity breakdown. reopt (the
// re-optimizer: monitoring, profiling-phase transitions, selection) is
// always measured — its clock reads amortize over whole intervals. The
// per-update buckets require Config.InstrumentPhases: probe is the
// unprofiled executor pass net of shadow-tap time, cacheMaint the shadow
// estimators' tap time, profiler the profiled passes plus tick bookkeeping.
// The probe/cacheMaint split is approximate by one subtlety: shadow taps
// firing inside profiled passes are subtracted from the probe bucket rather
// than the profiler bucket (taps do not know which pass invoked them).
func (en *Engine) PhaseNanos() (probe, cacheMaint, profiler, reopt int64) {
	cacheMaint = en.pf.ShadowNanos()
	probe = en.execNanos - cacheMaint
	if probe < 0 {
		probe = 0
	}
	return probe, cacheMaint, en.profilerNanos, en.reoptNanos
}

// Snapshot is an aggregate of the engine's headline counters. Sharded
// execution reads one Snapshot per shard and sums them; the single-engine
// Stats API is a rendering of the same numbers.
type Snapshot struct {
	// Updates is the number of updates processed by this engine.
	Updates int
	// Outputs is the number of join-result updates emitted.
	Outputs uint64
	// Work is the simulated processing work consumed so far.
	Work cost.Units
	// Reopts and SkippedReopts count selection runs and p-threshold skips.
	Reopts, SkippedReopts int
	// CacheMemoryBytes is the bytes held by cache instances.
	CacheMemoryBytes int
	// FilterBytes is the resident footprint of the fingerprint filters
	// (store indexes + cache instances).
	FilterBytes int
	// FilteredProbes counts residency checks answered "guaranteed miss"
	// by a filter without touching the backing structure;
	// FilterFalsePositives counts filter-passed checks that then missed.
	FilteredProbes       uint64
	FilterFalsePositives uint64
	// PipelineWorkers is the configured staged-pipeline worker count
	// (0 = serial execution).
	PipelineWorkers int
	// StagedUpdates counts updates whose join pass ran on the staged
	// pipeline; StageStalls counts blocked inter-stage hand-offs
	// (backpressure events between stage groups).
	StagedUpdates uint64
	StageStalls   uint64
	// StageOverlapRatio is StagedUpdates / Updates: the fraction of the
	// stream that executed with stage overlap.
	StageOverlapRatio float64
	// WindowBytes is the tuple footprint of the relation window stores.
	WindowBytes int
	// SharedStores is the number of relations whose window store is
	// cross-query shared (attached through a hosting server's registry).
	SharedStores int
	// TierHotBytes / TierColdBytes split the engine's tuple and cache-entry
	// footprint into the resident hot tier and the spilled cold tier;
	// TierPromotions / TierDemotions count page and entry moves between the
	// tiers. All four are zero with tiering off (they are not persisted in
	// binary checkpoints — a restored engine re-measures them).
	TierHotBytes   int
	TierColdBytes  int
	TierPromotions uint64
	TierDemotions  uint64
	// TierWriteErrors counts failed spill writes across the relation stores
	// and the shared cache tier; DurDegraded is true once any of them has
	// fallen back to hot-only operation (results stay exact, the memory win
	// and — for store spills — by-ref checkpointing of the failed store are
	// lost).
	TierWriteErrors uint64
	DurDegraded     bool
	// ReoptNanos is cumulative wall-clock time inside the re-optimizer
	// (used-cache monitoring, profiling-phase transitions, selection) —
	// the adaptivity tax off the per-tuple path. Always measured.
	ReoptNanos int64
	// SampledUpdates counts updates that drew a profiling decision; under
	// a sample stride S it advances once per S updates per relation stream.
	SampledUpdates uint64
	// CandidateRescores counts cost-model re-evaluations of candidate
	// caches; incremental re-optimization keeps it sublinear in
	// re-optimizations × candidates.
	CandidateRescores uint64
	// ReoptsSuppressed counts re-optimization rounds skipped only because
	// every beyond-threshold change came from learned-unimportant
	// statistics (Config.Incremental); always ≤ SkippedReopts.
	ReoptsSuppressed int
	// Like the tier gauges, the four adaptivity counters are not persisted
	// in binary checkpoints — a restored engine re-measures them.
}

// Snapshot returns the engine's current counters. The method takes no locks:
// an Engine is single-goroutine, so the only safe cross-goroutine use is by a
// caller that has quiesced whatever goroutine drives this engine. Sharded
// execution does exactly that — ShardedEngine.Stats (and the shard package's
// Group.Snapshot it builds on) flush every mailbox and read the per-shard
// snapshots from the acknowledgement barrier, never concurrently with
// processing. Callers holding a raw *Engine from Shard() must arrange the
// same quiescence themselves.
func (en *Engine) Snapshot() Snapshot {
	sc, fp := en.FilterTelemetry()
	workers, stalls, _, stagedUpd := en.exec.PipelineStats()
	s := Snapshot{
		Updates:              en.updates,
		Outputs:              en.outputs,
		Work:                 en.meter.Total(),
		Reopts:               en.reopts,
		SkippedReopts:        en.skippedReopts,
		CacheMemoryBytes:     en.CacheMemoryBytes(),
		FilterBytes:          en.FilterMemoryBytes(),
		FilteredProbes:       sc,
		FilterFalsePositives: fp,
		PipelineWorkers:      workers,
		StagedUpdates:        stagedUpd,
		StageStalls:          stalls,
		WindowBytes:          en.WindowBytes(),
		SharedStores:         en.exec.SharedStores(),
	}
	s.TierHotBytes, s.TierColdBytes, s.TierPromotions, s.TierDemotions = en.TierStats()
	s.TierWriteErrors, s.DurDegraded = en.DurabilityStats()
	s.ReoptNanos = en.reoptNanos
	s.SampledUpdates = en.pf.SampledUpdates()
	s.CandidateRescores = en.candRescores
	s.ReoptsSuppressed = en.reoptsSuppressed
	if s.Updates > 0 {
		s.StageOverlapRatio = float64(s.StagedUpdates) / float64(s.Updates)
	}
	return s
}

// TierStats reports the hot/cold byte split and cumulative tier traffic
// across the relation stores and cache instances. With tiering off all four
// are zero, so snapshots of untiered engines are unchanged by the tier
// fields (and survive binary checkpoint round trips, which do not carry
// them).
func (en *Engine) TierStats() (hotBytes, coldBytes int, promotions, demotions uint64) {
	if !en.cfg.Tier.Enabled() {
		return 0, 0, 0, 0
	}
	for r := 0; r < en.q.N(); r++ {
		st := en.exec.Store(r)
		hotBytes += st.HotMemoryBytes()
		coldBytes += st.ColdMemoryBytes()
		p, d := st.TierCounters()
		promotions += p
		demotions += d
	}
	for _, inst := range en.instances {
		hotBytes += inst.Cache().HotUsedBytes()
		coldBytes += inst.Cache().ColdUsedBytes()
	}
	if en.cacheTier != nil {
		p, d := en.cacheTier.Counters()
		promotions += p
		demotions += d
	}
	return hotBytes, coldBytes, promotions, demotions
}

// DurabilityStats reports spill-write failures across the relation stores
// and the shared cache tier. writeErrors counts individual failed writes;
// degraded is true once any store or the cache tier has dropped to hot-only
// operation. Cheap (O(relations)) — the shard worker polls it after every
// batch to keep its health flag current.
func (en *Engine) DurabilityStats() (writeErrors uint64, degraded bool) {
	if !en.cfg.Tier.Enabled() && en.cacheTier == nil {
		return 0, false
	}
	for r := 0; r < en.q.N(); r++ {
		st := en.exec.Store(r)
		writeErrors += st.TierWriteErrors()
		degraded = degraded || st.TierDegraded()
	}
	if en.cacheTier != nil {
		writeErrors += en.cacheTier.WriteErrors()
		degraded = degraded || en.cacheTier.Degraded()
	}
	return writeErrors, degraded
}

// Close releases the executor's staged-pipeline workers, if any, and — when
// tiering is enabled — unmaps and removes every spill file (relation stores
// and the shared cache spill). Engines built with the zero Config need no
// Close; calling it is a no-op. Idempotent.
func (en *Engine) Close() {
	en.exec.Close()
	en.exec.CloseTiers()
	if en.cacheTier != nil {
		en.cacheTier.Close()
	}
}

// CloseKeep is Close for a durable shutdown: the relation-store spill files
// stay on disk (their cold pages back a checkpoint's page references) while
// the cache spill is still removed — caches restart cold by design
// (consistency without completeness keeps results exact).
func (en *Engine) CloseKeep() {
	en.exec.Close()
	en.exec.CloseTiersKeep()
	if en.cacheTier != nil {
		en.cacheTier.Close()
	}
}

// SetMemoryBudget changes the cache memory budget at run time (Figure 13)
// and immediately re-divides it among the used caches by priority.
func (en *Engine) SetMemoryBudget(bytes int) {
	en.mem.SetBudget(bytes)
	en.allocateMemory()
}

// CacheStates returns a snapshot of every known candidate's state, for
// tests, tools, and the demo CLI.
func (en *Engine) CacheStates() map[string]State {
	out := make(map[string]State, len(en.cands))
	for _, c := range en.cands {
		out[c.spec.String()] = c.state
	}
	return out
}

// UsedCaches returns the specs currently in the Used state.
func (en *Engine) UsedCaches() []*planner.Spec {
	var out []*planner.Spec
	for _, c := range en.cands {
		if c.state == Used {
			out = append(out, c.spec)
		}
	}
	return out
}

// Ordering returns the executor's current pipeline ordering.
func (en *Engine) Ordering() planner.Ordering { return en.exec.Ordering() }

// PlanDescription describes the engine's current physical plan: per
// pipeline, the join order and the caches spliced in.
type PlanDescription struct {
	// Pipelines[i] is relation i's join order.
	Pipelines [][]int
	// Caches describes every used cache placement.
	Caches []CacheDescription
}

// CacheDescription is one cache placement in the current plan.
type CacheDescription struct {
	Spec     *planner.Spec
	State    State
	Entries  int
	Bytes    int
	HitRate  float64
	Shared   bool // instance shared with another placement
	SelfMnt  bool
	Reduced  bool // counted X ⋉ Y cache
	Segments []int
}

// Plan snapshots the current physical plan for introspection.
func (en *Engine) Plan() PlanDescription {
	d := PlanDescription{Pipelines: en.exec.Ordering()}
	shareCount := make(map[string]int)
	for _, c := range en.cands {
		if c.state == Used {
			shareCount[c.spec.SharingID()]++
		}
	}
	for _, c := range en.cands {
		if c.state != Used {
			continue
		}
		d.Caches = append(d.Caches, CacheDescription{
			Spec:     c.spec,
			State:    c.state,
			Entries:  c.inst.Cache().Entries(),
			Bytes:    c.inst.Cache().UsedBytes(),
			HitRate:  c.inst.Cache().HitRate(),
			Shared:   shareCount[c.spec.SharingID()] > 1,
			SelfMnt:  c.spec.SelfMaint,
			Reduced:  c.spec.GC && !c.spec.SelfMaint,
			Segments: c.spec.Segment,
		})
	}
	sort.Slice(d.Caches, func(a, b int) bool {
		return placementKey(d.Caches[a].Spec) < placementKey(d.Caches[b].Spec)
	})
	return d
}

// Diagnose renders each candidate's latest estimate — a debugging and
// observability aid used by the demo CLI.
func (en *Engine) Diagnose() string {
	out := ""
	for _, c := range en.cands {
		out += fmt.Sprintf("%v[%s: ben=%.4f cost=%.4f miss=%.2f entries=%.0f ready=%v demoted=%d] ",
			c.spec, c.state, c.est.Benefit, c.est.Cost, c.est.MissProb, c.est.ExpectedEntries, c.est.Ready, c.demotions)
	}
	return out
}

// CandidateInfo is one candidate cache's state and latest cost-model
// evaluation, for the Explain API.
type CandidateInfo struct {
	Spec      *planner.Spec
	State     State
	Benefit   float64
	Cost      float64
	MissProb  float64
	Ready     bool
	Demotions int
}

// Candidates snapshots every known candidate cache with its latest
// estimates, sorted by placement — an EXPLAIN for the adaptive optimizer.
func (en *Engine) Candidates() []CandidateInfo {
	out := make([]CandidateInfo, 0, len(en.cands))
	for _, c := range en.cands {
		out = append(out, CandidateInfo{
			Spec:      c.spec,
			State:     c.state,
			Benefit:   c.est.Benefit,
			Cost:      c.est.Cost,
			MissProb:  c.est.MissProb,
			Ready:     c.est.Ready,
			Demotions: c.demotions,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		return placementKey(out[a].Spec) < placementKey(out[b].Spec)
	})
	return out
}

// CacheMemoryBytes returns the total bytes currently held by used cache
// instances (shared instances counted once), including bucket arrays.
func (en *Engine) CacheMemoryBytes() int {
	total := 0
	for _, inst := range en.instances {
		total += inst.Cache().UsedBytes() + inst.Cache().FixedBytes()
	}
	return total
}

// FilterMemoryBytes returns the resident footprint of every fingerprint
// filter — store indexes plus cache instances. Reported separately from
// CacheMemoryBytes (filters are not cache contents) but charged against the
// same server budget through MemoryDemand.
func (en *Engine) FilterMemoryBytes() int {
	total := en.exec.StoreFilterBytes()
	for _, inst := range en.instances {
		total += inst.Cache().FilterBytes()
	}
	return total
}

// FilterTelemetry sums the filter short-circuit and false-positive counters
// across store indexes and cache instances.
func (en *Engine) FilterTelemetry() (shortCircuits, falsePositives uint64) {
	fs := en.exec.StoreFilterStats()
	shortCircuits, falsePositives = fs.ShortCircuits, fs.FalsePositives
	for _, inst := range en.instances {
		cs := inst.Cache().Stats()
		shortCircuits += uint64(cs.FilterShortCircuits)
		falsePositives += uint64(cs.FilterFalsePositives)
	}
	return shortCircuits, falsePositives
}

// MemoryBudgetBytes returns the engine's current cache-memory budget
// (<0 = unlimited).
func (en *Engine) MemoryBudgetBytes() int { return en.mem.Budget() }

// MemoryDemand summarizes the engine's appetite for cache memory: the bytes
// its used caches want (the larger of expected and actual usage, summed per
// instance) and their aggregate net benefit per unit time. A DSMS hosting
// many continuous queries uses these to divide a global budget across
// queries by priority — the cross-query generalization of Section 5.
func (en *Engine) MemoryDemand() (bytes int, netBenefit float64) {
	if en.demandSeen == nil {
		en.demandSeen = make(map[string]bool)
	}
	clear(en.demandSeen)
	seen := en.demandSeen
	for _, c := range en.cands {
		if c.state != Used {
			continue
		}
		id := c.spec.SharingID()
		netBenefit += c.est.Benefit
		if !seen[id] {
			seen[id] = true
			netBenefit -= c.est.Cost
			b := int(c.est.ExpectedBytes)
			// Hot bytes only: spilled entries are not resident, and the
			// allocator divides resident memory. Identical to UsedBytes when
			// tiering is off.
			if actual := c.inst.Cache().HotUsedBytes(); actual > b {
				b = actual
			}
			bytes += b
		}
	}
	// Filters are server-budgeted memory too: small, but a host dividing a
	// global budget across queries must see them.
	bytes += en.FilterMemoryBytes()
	return bytes, netBenefit
}

// WindowBytes returns the tuple footprint of the relation window stores
// (shared stores included at full size; a host discounts duplicates through
// its sharing registry).
func (en *Engine) WindowBytes() int {
	n := 0
	for r := 0; r < en.q.N(); r++ {
		n += en.exec.Store(r).MemoryBytes()
	}
	return n
}

// SharedStores returns the number of relations on cross-query shared stores.
func (en *Engine) SharedStores() int { return en.exec.SharedStores() }

// GroupDemand is one used cache sharing group's memory appetite, identified
// by its cross-query canonical identity so a hosting server can pool demand
// across queries: equivalent groups from different engines charge their bytes
// once while every sharer's net benefit keeps flowing into its own request.
type GroupDemand struct {
	// CrossID is the planner.CrossID of the group ("" when the engine was
	// built without Config.RelTokens — such groups are never pooled).
	CrossID string
	// Bytes is the group's memory appetite: max(expected, actual) bytes of
	// the shared instance.
	Bytes int
	// Net is the group's net benefit: the members' benefits minus the
	// maintenance cost charged once per engine-local sharing group.
	Net float64
}

// MemoryDemandDetail is MemoryDemand broken down per sharing group, plus the
// engine's filter footprint (store-index and cache filters), for hosts that
// pool demand across queries. The returned slice is reused across calls.
func (en *Engine) MemoryDemandDetail() (groups []GroupDemand, filterBytes int) {
	if en.demandDetailIdx == nil {
		en.demandDetailIdx = make(map[string]int)
	}
	clear(en.demandDetailIdx)
	en.demandDetail = en.demandDetail[:0]
	for _, key := range en.sortedCandKeys() {
		c := en.cands[key]
		if c.state != Used {
			continue
		}
		id := c.spec.SharingID()
		gi, ok := en.demandDetailIdx[id]
		if !ok {
			gi = len(en.demandDetail)
			en.demandDetailIdx[id] = gi
			b := int(c.est.ExpectedBytes)
			if actual := c.inst.Cache().UsedBytes(); actual > b {
				b = actual
			}
			en.demandDetail = append(en.demandDetail, GroupDemand{
				CrossID: en.crossIDOf(c.spec),
				Bytes:   b,
				Net:     -c.est.Cost,
			})
		}
		en.demandDetail[gi].Net += c.est.Benefit
	}
	return en.demandDetail, en.FilterMemoryBytes()
}

// crossIDOf memoizes planner.CrossID per spec (keyed by the engine-local
// sharing id, which determines it given fixed RelTokens).
func (en *Engine) crossIDOf(spec *planner.Spec) string {
	if len(en.cfg.RelTokens) == 0 {
		return ""
	}
	if en.crossIDs == nil {
		en.crossIDs = make(map[string]string)
	}
	id := spec.SharingID()
	if cid, ok := en.crossIDs[id]; ok {
		return cid
	}
	cid := planner.CrossID(en.q, spec, en.cfg.RelTokens)
	en.crossIDs[id] = cid
	return cid
}

// sortedCandKeys returns the candidate placement keys in sorted order (the
// iteration order of every externally visible walk over candidates, so
// telemetry and pooled demand are reproducible across runs). The slice is
// reused across calls.
func (en *Engine) sortedCandKeys() []string {
	en.candKeys = en.candKeys[:0]
	for k := range en.cands {
		en.candKeys = append(en.candKeys, k)
	}
	sort.Strings(en.candKeys)
	return en.candKeys
}
