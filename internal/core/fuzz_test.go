package core

import (
	"math/rand"
	"testing"

	"acache/internal/oracle"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// TestFuzzEngineVsOracle is the in-test version of cmd/acache-verify:
// randomized queries (with theta predicates), adaptivity settings, and
// update streams, every output delta compared against the naive oracle.
func TestFuzzEngineVsOracle(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		rng := rand.New(rand.NewSource(seed))
		q := fuzzQuery(t, rng)
		cfg := Config{
			ReoptInterval: 100 + rng.Intn(400),
			GCQuota:       rng.Intn(8),
			AdaptOrdering: rng.Intn(2) == 0,
			Incremental:   rng.Intn(2) == 0,
			TwoWayCaches:  rng.Intn(2) == 0,
			BudgetAware:   rng.Intn(3) == 0,
			MemoryBudget:  -1,
			Seed:          seed,
		}
		if rng.Intn(4) == 0 {
			cfg.MemoryBudget = 1024 * (1 + rng.Intn(8))
		}
		en, err := NewEngine(q, nil, cfg)
		if err != nil {
			t.Fatalf("trial %d: NewEngine: %v", trial, err)
		}
		o := oracle.New(q)
		live := make([][]tuple.Tuple, q.N())
		domain := int64(3 + rng.Intn(8))
		for i := 0; i < 1200; i++ {
			rel := rng.Intn(q.N())
			var u stream.Update
			if len(live[rel]) > 3 && (len(live[rel]) > 12 || rng.Intn(2) == 0) {
				j := rng.Intn(len(live[rel]))
				u = stream.Update{Op: stream.Delete, Rel: rel, Tuple: live[rel][j]}
				live[rel] = append(live[rel][:j:j], live[rel][j+1:]...)
			} else {
				tp := make(tuple.Tuple, q.Schema(rel).Len())
				for c := range tp {
					tp[c] = rng.Int63n(domain)
				}
				live[rel] = append(live[rel], tp)
				u = stream.Update{Op: stream.Insert, Rel: rel, Tuple: tp}
			}
			got := en.Process(u)
			want := len(o.Process(u))
			if got != want {
				t.Fatalf("trial %d (seed %d) update %d %v: engine %d, oracle %d\nconfig %+v",
					trial, seed, i, u, got, want, cfg)
			}
		}
	}
}

func fuzzQuery(t *testing.T, rng *rand.Rand) *query.Query {
	t.Helper()
	n := 3 + rng.Intn(3)
	schemas := make([]*tuple.Schema, n)
	var preds []query.Pred
	for i := 0; i < n; i++ {
		schemas[i] = tuple.RelationSchema(i, "A", "C")
		if i > 0 {
			preds = append(preds, query.Pred{
				Left:  tuple.Attr{Rel: i - 1, Name: "A"},
				Right: tuple.Attr{Rel: i, Name: "A"},
			})
		}
	}
	var thetas []query.ThetaPred
	for i := 1; i < n; i++ {
		if rng.Intn(3) == 0 {
			thetas = append(thetas, query.ThetaPred{
				Left:  tuple.Attr{Rel: i - 1, Name: "C"},
				Op:    query.CmpOp(rng.Intn(5)),
				Right: tuple.Attr{Rel: i, Name: "C"},
			})
		}
	}
	q, err := query.NewWithThetas(schemas, preds, thetas)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
