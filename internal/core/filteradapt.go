package core

import (
	"acache/internal/cost"
)

// The filter on/off knob: fingerprint filters in front of the store indexes
// are pure wall-clock accelerators — results and simulated cost are identical
// either way — so the re-optimizer treats them like the caches of Section 3.2:
// consistent without being required, droppable and rebuildable (empty of
// obligations) at near-zero cost. The decision per store weighs what the
// filter saves (the slot search each miss avoids) against what it costs
// (a membership check on every probe plus maintenance mirrored on every
// chain creation and clear), using the advisory FilterProbe / FilterMaint
// constants — never the meter, which charges the unfiltered tariff always.
//
// The knob runs on observed counter deltas over its own MonitorInterval
// cadence, before the forced/disabled-caching early return: a plain MJoin
// (DisableCaching) is exactly the configuration filters help most. Probes
// and Misses are counted by the stores whether filters are on or off, so the
// decision has its inputs in both states. Hysteresis (enable above 1.25×,
// disable below 0.8×) keeps a borderline store from flapping, since each
// enable pays a rebuild walk over the index tables.

// filterSnap is the previous counter snapshot of one store, so the knob
// works on interval deltas.
type filterSnap struct {
	probes, misses, chainOps uint64
}

// filterObsSnap is the previous engine-wide telemetry snapshot, so the
// profiler sees interval deltas rather than cumulative ratios.
type filterObsSnap struct {
	shortCircuits, falsePositives, misses uint64
}

// filterEnableNum/Den and filterDisableNum/Den encode the hysteresis
// thresholds as integer ratios (gain : overhead).
const (
	filterEnableNum  = 5 // enable when gain > 1.25 × overhead
	filterEnableDen  = 4
	filterDisableNum = 4 // disable when gain < 0.8 × overhead
	filterDisableDen = 5
)

// adaptFilters re-decides the per-store filter knob from the last interval's
// counters and feeds the profiler's filter-effectiveness observations.
func (en *Engine) adaptFilters() {
	n := en.q.N()
	if en.filterSnaps == nil {
		en.filterSnaps = make([]filterSnap, n)
	}
	var aggShort, aggFP, aggMisses uint64
	for rel := 0; rel < n; rel++ {
		s := en.exec.Store(rel)
		fs := s.FilterStats()
		ops := s.ChainOps()
		snap := &en.filterSnaps[rel]
		dProbes := fs.Probes - snap.probes
		dMisses := fs.Misses - snap.misses
		dOps := ops - snap.chainOps
		*snap = filterSnap{probes: fs.Probes, misses: fs.Misses, chainOps: ops}

		aggShort += fs.ShortCircuits
		aggFP += fs.FalsePositives
		aggMisses += fs.Misses

		if dProbes == 0 && dOps == 0 {
			continue // idle store: no evidence either way
		}
		// gain: each miss would skip the slot search (≈ the cheap-probe
		// tariff) at the price of the filter check it pays anyway.
		gain := dMisses * uint64(cost.HashProbe-cost.FilterProbe)
		overhead := dProbes*uint64(cost.FilterProbe) + dOps*uint64(cost.FilterMaint)
		if s.FiltersEnabled() {
			if gain*filterDisableDen < overhead*filterDisableNum {
				s.SetFiltersEnabled(false)
			}
		} else {
			if gain*filterEnableDen > overhead*filterEnableNum {
				s.SetFiltersEnabled(true)
			}
		}
	}
	// Cache-side counters join the profiler observation (the caches keep
	// their filters unless DisableFilters; their residency checks are
	// hit-or-miss evidence for the filter-aware cost split).
	for _, inst := range en.instances {
		cs := inst.Cache().Stats()
		aggShort += uint64(cs.FilterShortCircuits)
		aggFP += uint64(cs.FilterFalsePositives)
		aggMisses += uint64(cs.Misses)
	}
	prev := en.filterObsPrev
	en.filterObsPrev = filterObsSnap{shortCircuits: aggShort, falsePositives: aggFP, misses: aggMisses}
	en.pf.ObserveFilter(aggShort-prev.shortCircuits, aggFP-prev.falsePositives, aggMisses-prev.misses)
}
