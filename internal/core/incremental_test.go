package core

import (
	"testing"

	"acache/internal/planner"
	"acache/internal/stream"
	"acache/internal/synth"
)

// TestIncrementalMatchesOracle: the incremental re-optimizer must never
// compromise correctness — outputs stay oracle-exact through its local
// add/drop/swap moves.
func TestIncrementalMatchesOracle(t *testing.T) {
	q := fourWayClique(t)
	en, err := NewEngine(q, planner.Ordering{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {1, 2, 0}}, Config{
		ReoptInterval: 400,
		GCQuota:       6,
		Incremental:   true,
		Seed:          21,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	runVsOracle(t, q, en, windowSource(q, 30, 8, 22), 6000)
}

// TestIncrementalAdoptsProfitableCache: the local-move re-optimizer reaches
// the same profitable plan the from-scratch selection does on the
// Section 7.2 default workload.
func TestIncrementalAdoptsProfitableCache(t *testing.T) {
	q := threeWay(t)
	ord := planner.Ordering{{1, 2}, {2, 0}, {1, 0}}
	en, err := NewEngine(q, ord, Config{ReoptInterval: 500, Incremental: true, Seed: 19})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	src := stream.NewSource([]stream.RelStream{
		{Gen: synth.Tuples(synth.Counter(0, 20, 5)), WindowSize: 100, Rate: 10},
		{Gen: synth.Tuples(synth.Counter(0, 20, 1), synth.Counter(0, 20, 1)), WindowSize: 50, Rate: 1},
		{Gen: synth.Tuples(synth.Counter(0, 20, 1)), WindowSize: 50, Rate: 1},
	})
	for i := 0; i < 20000; i++ {
		en.Process(src.Next())
	}
	if len(en.UsedCaches()) == 0 {
		t.Fatalf("incremental engine never adopted the profitable cache; states: %v", en.CacheStates())
	}
}

// TestUnimportantStatsSuppression: a candidate whose statistics oscillate
// beyond the threshold without ever changing the selection must eventually
// stop triggering re-optimizations.
func TestUnimportantStatsSuppression(t *testing.T) {
	q := threeWay(t)
	en, err := NewEngine(q, planner.Ordering{{1, 2}, {2, 0}, {1, 0}}, Config{
		ReoptInterval: 300,
		Incremental:   true,
		Seed:          23,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Drive a noisy workload long enough for several re-optimizations.
	src := windowSource(q, 40, 10, 24)
	for i := 0; i < 12000; i++ {
		en.Process(src.Next())
	}
	// Force the counter directly and verify the threshold check skips it.
	var target *cand
	for _, c := range en.cands {
		target = c
		break
	}
	if target == nil {
		t.Skip("no candidates under this ordering")
	}
	for _, c := range en.cands {
		c.selSet = true
		c.selEst = c.est
	}
	target.unimportant = unimportantAfter
	target.selEst.Benefit = target.est.Benefit*10 + 1 // huge apparent change
	triggers, _, suppressed := en.changedBeyondThreshold()
	if len(triggers) != 0 {
		t.Fatalf("suppressed candidate still triggered: %v", triggers)
	}
	if !suppressed {
		t.Fatal("suppression must be reported for the ReoptsSuppressed counter")
	}
	// Rehabilitation: a selection change clears every counter.
	en.noteSelectionOutcome(nil, true)
	if target.unimportant != 0 {
		t.Fatal("selection change must reset the unimportance counter")
	}
	triggers2, oscillators, _ := en.changedBeyondThreshold()
	if len(triggers2) == 0 || len(oscillators) == 0 {
		t.Fatal("rehabilitated candidate must trigger again as an oscillator")
	}
}

// TestBudgetAwareMatchesOracle: the integrated budgeted selection must stay
// oracle-correct under a tight, shifting budget.
func TestBudgetAwareMatchesOracle(t *testing.T) {
	q := threeWay(t)
	en, err := NewEngine(q, planner.Ordering{{1, 2}, {2, 0}, {1, 0}}, Config{
		ReoptInterval: 300,
		MemoryBudget:  3 * 1024,
		BudgetAware:   true,
		GCQuota:       6,
		Seed:          27,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	runVsOracle(t, q, en, windowSource(q, 50, 8, 28), 5000)
}

// TestIncrementalSelectRespectsOverlaps: local moves must never produce an
// overlapping cache set.
func TestIncrementalSelectRespectsOverlaps(t *testing.T) {
	q := fourWayClique(t)
	en, err := NewEngine(q, nil, Config{ReoptInterval: 400, Incremental: true, Seed: 25})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	src := windowSource(q, 30, 8, 26)
	for i := 0; i < 10000; i++ {
		en.Process(src.Next())
	}
	used := en.UsedCaches()
	for i := 0; i < len(used); i++ {
		for j := i + 1; j < len(used); j++ {
			if used[i].Overlaps(used[j]) {
				t.Fatalf("overlapping caches in use: %v and %v", used[i], used[j])
			}
		}
	}
}

// TestTwoWayCachesMatchOracle: the set-associative replacement scheme must
// be output-transparent.
func TestTwoWayCachesMatchOracle(t *testing.T) {
	q := fourWayClique(t)
	en, err := NewEngine(q, planner.Ordering{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {1, 2, 0}}, Config{
		ReoptInterval: 400,
		GCQuota:       6,
		TwoWayCaches:  true,
		Seed:          33,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	runVsOracle(t, q, en, windowSource(q, 30, 8, 34), 5000)
}

// TestPrimedCachesMatchOracle: eager warm-start population must be
// consistency-transparent, including for counted (reduced) caches.
func TestPrimedCachesMatchOracle(t *testing.T) {
	q := fourWayClique(t)
	en, err := NewEngine(q, planner.Ordering{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {1, 2, 0}}, Config{
		ReoptInterval: 400,
		GCQuota:       6,
		PrimeCaches:   true,
		Seed:          37,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	runVsOracle(t, q, en, windowSource(q, 30, 8, 38), 5000)
}

// TestPrimingFillsEntriesImmediately: a primed cache starts with its key
// population resident instead of empty.
func TestPrimingFillsEntriesImmediately(t *testing.T) {
	q := threeWay(t)
	ord := planner.Ordering{{1, 2}, {2, 0}, {1, 0}}
	for _, prime := range []bool{false, true} {
		en, err := NewEngine(q, ord, Config{ReoptInterval: 300, PrimeCaches: prime, Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		src := stream.NewSource([]stream.RelStream{
			{Gen: synth.Tuples(synth.Counter(0, 20, 5)), WindowSize: 100, Rate: 10},
			{Gen: synth.Tuples(synth.Counter(0, 20, 1), synth.Counter(0, 20, 1)), WindowSize: 50, Rate: 1},
			{Gen: synth.Tuples(synth.Counter(0, 20, 1)), WindowSize: 50, Rate: 1},
		})
		adoptedAt := -1
		for i := 0; i < 15000; i++ {
			en.Process(src.Next())
			if adoptedAt < 0 && len(en.UsedCaches()) > 0 {
				adoptedAt = i
				if prime {
					// Primed: entries resident the moment it is used.
					plan := en.Plan()
					if plan.Caches[0].Entries == 0 {
						t.Fatal("primed cache started empty")
					}
				}
				break
			}
		}
		if adoptedAt < 0 {
			t.Fatalf("prime=%v: cache never adopted", prime)
		}
	}
}
