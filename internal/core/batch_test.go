package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"acache/internal/planner"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// Equivalence tests for the vectorized batch path: for a fixed update
// sequence, ProcessBatch at any chunk size must leave an engine in exactly
// the state the per-update Process loop does — same result stream, same
// counters, same simulated cost total (the bit-identical charge guarantee),
// same store and cache contents, same candidate states.

// burstUpdates builds an update sequence with long same-relation same-op
// runs: each visit to a relation evicts the oldest window tuples as one
// delete burst, then appends a burst of fresh inserts. This is the shape the
// run splitter thrives on; the windowSource sequences in engineStates cover
// the opposite extreme (relations interleaved, runs of length one).
func burstUpdates(q *query.Query, n, window, burst int, domain, seed int64) []stream.Update {
	rng := rand.New(rand.NewSource(seed))
	wins := make([][]tuple.Tuple, q.N())
	ups := make([]stream.Update, 0, n)
	rel := 0
	for len(ups) < n {
		ncols := q.Schema(rel).Len()
		w := wins[rel]
		if evict := len(w) + burst - window; evict > 0 {
			if evict > len(w) {
				evict = len(w)
			}
			for _, t := range w[:evict] {
				ups = append(ups, stream.Update{Op: stream.Delete, Rel: rel, Tuple: t})
			}
			w = w[evict:]
		}
		for b := 0; b < burst; b++ {
			t := make(tuple.Tuple, ncols)
			for c := range t {
				t[c] = tuple.Value(rng.Int63n(domain))
			}
			ups = append(ups, stream.Update{Op: stream.Insert, Rel: rel, Tuple: t})
			w = append(w, t)
		}
		wins[rel] = w
		rel = (rel + 1) % q.N()
	}
	return ups[:n]
}

// sourceUpdates records n updates from a windowSource so the same sequence
// can be replayed into several engines.
func sourceUpdates(q *query.Query, n, window int, domain, seed int64) []stream.Update {
	src := windowSource(q, window, domain, seed)
	ups := make([]stream.Update, n)
	for i := range ups {
		ups[i] = src.Next()
	}
	return ups
}

// engineState is everything the equivalence tests compare between the serial
// and batched replays of a sequence.
type engineState struct {
	results []string
	snap    Snapshot
	states  string
	stores  []string
	caches  []string
}

func captureState(en *Engine) engineState {
	var st engineState
	st.snap = en.Snapshot()
	// Fingerprint-filter telemetry measures physical work avoided, which
	// legitimately differs between the serial and vectorized paths: the
	// batch executor replays duplicate probes and memoizes chains instead
	// of re-executing lookups, and cuckoo filter capacity is insertion-
	// order dependent. Results, charges, and contents — everything compared
	// below — are identical, which is the equivalence these tests assert.
	st.snap.FilterBytes = 0
	st.snap.FilteredProbes = 0
	st.snap.FilterFalsePositives = 0
	// ReoptNanos is wall-clock time, not logical work.
	st.snap.ReoptNanos = 0
	st.states = fmt.Sprint(en.CacheStates())
	for rel := 0; rel < en.q.N(); rel++ {
		st.stores = append(st.stores, fmt.Sprint(en.exec.Store(rel).All()))
	}
	ids := make([]string, 0, len(en.instances))
	for id := range en.instances {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		inst := en.instances[id]
		c := inst.Cache()
		cs := c.Stats()
		cs.FilterShortCircuits, cs.FilterFalsePositives = 0, 0 // physical, path-dependent
		dump := fmt.Sprintf("%s entries=%d used=%d stats=%+v;", id, c.Entries(), c.UsedBytes(), cs)
		if inst.GC() && !inst.SelfMaintained() {
			c.EachCounted(func(u tuple.Key, v []tuple.Tuple, mults, supports []int) {
				dump += fmt.Sprintf(" %v=%v*%v/%v", u, v, mults, supports)
			})
		} else {
			c.Each(func(u tuple.Key, v []tuple.Tuple) {
				dump += fmt.Sprintf(" %v=%v", u, v)
			})
		}
		st.caches = append(st.caches, dump)
	}
	return st
}

// replay drives ups through a fresh engine in chunks of the given size
// (chunk 0 = per-update Process loop) and captures the final state.
func replay(t *testing.T, mk func() *Engine, ups []stream.Update, chunk int) engineState {
	t.Helper()
	en := mk()
	var results []string
	en.OnResult(func(insert bool, result []tuple.Value) {
		results = append(results, fmt.Sprint(insert, result))
	})
	if chunk == 0 {
		for _, u := range ups {
			en.Process(u)
		}
	} else {
		for i := 0; i < len(ups); i += chunk {
			j := i + chunk
			if j > len(ups) {
				j = len(ups)
			}
			en.ProcessBatch(ups[i:j])
		}
	}
	st := captureState(en)
	st.results = results
	return st
}

func diffStates(t *testing.T, label string, want, got engineState) {
	t.Helper()
	if want.snap != got.snap {
		t.Errorf("%s: snapshot mismatch\nserial %+v\nbatch  %+v", label, want.snap, got.snap)
	}
	if len(want.results) != len(got.results) {
		t.Errorf("%s: %d serial results, %d batch results", label, len(want.results), len(got.results))
	} else {
		for i := range want.results {
			if want.results[i] != got.results[i] {
				t.Errorf("%s: result %d: serial %s, batch %s", label, i, want.results[i], got.results[i])
				break
			}
		}
	}
	if want.states != got.states {
		t.Errorf("%s: cache states\nserial %s\nbatch  %s", label, want.states, got.states)
	}
	for rel := range want.stores {
		if want.stores[rel] != got.stores[rel] {
			t.Errorf("%s: store %d contents diverge", label, rel)
		}
	}
	if len(want.caches) != len(got.caches) {
		t.Errorf("%s: %d serial cache instances, %d batch", label, len(want.caches), len(got.caches))
	} else {
		for i := range want.caches {
			if want.caches[i] != got.caches[i] {
				t.Errorf("%s: cache %d diverges\nserial %s\nbatch  %s", label, i, want.caches[i], got.caches[i])
			}
		}
	}
}

func checkBatchEquivalence(t *testing.T, mk func() *Engine, ups []stream.Update) {
	t.Helper()
	serial := replay(t, mk, ups, 0)
	for _, chunk := range []int{1, 7, 64, len(ups)} {
		diffStates(t, fmt.Sprintf("chunk=%d", chunk), serial, replay(t, mk, ups, chunk))
		if t.Failed() {
			t.FailNow()
		}
	}
}

func TestProcessBatchMatchesSerial3Way(t *testing.T) {
	q := threeWay(t)
	mk := func() *Engine {
		en, err := NewEngine(q, planner.Ordering{{1, 2}, {2, 0}, {1, 0}}, Config{
			ReoptInterval: 300, // several reopt + profiling phases inside the run
			Seed:          1,
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		return en
	}
	checkBatchEquivalence(t, mk, burstUpdates(q, 5000, 40, 16, 10, 2))
}

func TestProcessBatchMatchesSerialInterleaved(t *testing.T) {
	// Runs of length one: the driver must agree with serial even when it can
	// never vectorize.
	q := threeWay(t)
	mk := func() *Engine {
		en, err := NewEngine(q, planner.Ordering{{1, 2}, {2, 0}, {1, 0}}, Config{
			ReoptInterval: 300,
			Seed:          3,
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		return en
	}
	checkBatchEquivalence(t, mk, sourceUpdates(q, 4000, 40, 10, 4))
}

func TestProcessBatchMatchesSerialGC(t *testing.T) {
	// Counted (GC) maintenance marks pipelines non-batchable; the driver must
	// fall back to the serial path and still agree exactly.
	q := fourWayClique(t)
	mk := func() *Engine {
		en, err := NewEngine(q, planner.Ordering{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {1, 2, 0}}, Config{
			ReoptInterval: 400,
			GCQuota:       6,
			Seed:          5,
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		return en
	}
	checkBatchEquivalence(t, mk, burstUpdates(q, 5000, 30, 12, 8, 6))
}

func TestProcessBatchMatchesSerialTwoWay(t *testing.T) {
	// Two-way associative caches bypass the probe memo (LRU bits move on
	// every probe); equivalence must hold regardless.
	q := threeWay(t)
	mk := func() *Engine {
		en, err := NewEngine(q, planner.Ordering{{1, 2}, {2, 0}, {1, 0}}, Config{
			ReoptInterval: 300,
			TwoWayCaches:  true,
			Seed:          7,
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		return en
	}
	checkBatchEquivalence(t, mk, burstUpdates(q, 5000, 40, 16, 10, 8))
}

func TestProcessBatchMatchesSerialForcedAndDisabled(t *testing.T) {
	q := threeWay(t)
	ord := planner.Ordering{{1, 2}, {2, 0}, {1, 0}}
	cands := planner.Candidates(q, ord)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"forced", Config{ForcedCaches: cands, Seed: 11}},
		{"disabled", Config{DisableCaching: true, Seed: 13}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() *Engine {
				en, err := NewEngine(q, ord, tc.cfg)
				if err != nil {
					t.Fatalf("NewEngine: %v", err)
				}
				return en
			}
			checkBatchEquivalence(t, mk, burstUpdates(q, 4000, 50, 16, 5, 14))
		})
	}
}

func TestProcessBatchMatchesSerialMemoryPressure(t *testing.T) {
	// Tiny budget: caches drop and reallocate mid-run, versioning the probe
	// memos; batched replay must track every transition.
	q := threeWay(t)
	mk := func() *Engine {
		en, err := NewEngine(q, planner.Ordering{{1, 2}, {2, 0}, {1, 0}}, Config{
			ReoptInterval: 300,
			MemoryBudget:  2048,
			Seed:          17,
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		return en
	}
	checkBatchEquivalence(t, mk, burstUpdates(q, 5000, 60, 16, 6, 18))
}
