// Package filter implements the succinct fingerprint filters that front the
// engine's hash structures: a cuckoo filter (Fan et al., CoNEXT 2014) over
// 64-bit key hashes supporting Insert, Delete, and MayContain with no
// allocation on the probe path.
//
// The paper's cost model makes miss_prob a first-class quantity — a probe
// that misses pays full probe_cost for zero output. A filter in front of a
// relation index or cache answers most of those misses from a few cache-
// resident words instead of a bucket walk. False positives simply fall
// through to the backing structure, so results are bit-identical with the
// filter on or off; like the caches of Section 3.2, a filter can be dropped
// or rebuilt empty at any time without affecting correctness.
//
// Layout: each bucket is one uint64 holding four 16-bit fingerprint lanes
// (lane 0 in the low bits). A key hash h maps to fingerprint fp(h) — the top
// 16 bits, remapped away from zero, which marks an empty lane — and to two
// candidate buckets i1 = h & mask and i2 = i1 XOR (mix(fp) & mask), the
// partial-key cuckoo scheme: either bucket's index and the fingerprint
// recover the other bucket, so displaced fingerprints relocate without the
// original key. All derivations are fixed-seed deterministic, so cached
// figures stay reproducible.
//
// The filter is a multiset: inserting the same hash twice occupies two lanes
// and requires two deletes. Owners insert one fingerprint per resident key
// (or distinct index chain), so membership tracks residency exactly and
// MayContain == false is a guaranteed miss.
package filter

import "acache/internal/tuple"

const (
	lanesPerBucket = 4
	laneBits       = 16
	laneMask       = (1 << laneBits) - 1

	// maxKicks bounds the cuckoo eviction walk on Insert. 64 displacement
	// steps are far beyond what a table below the ~95% load ceiling needs;
	// hitting the bound means the table is effectively full and the owner
	// must rebuild larger.
	maxKicks = 64

	// altSeed derives a fingerprint's alternate-bucket offset; fixed so
	// placement is deterministic across runs.
	altSeed uint64 = 0x71c67d1a5b3f08e9

	// lanePattern replicates a lane value across all four lanes; laneHigh
	// marks each lane's top bit (both serve the zero-lane bit trick).
	lanePattern uint64 = 0x0001000100010001
	laneHigh    uint64 = 0x8000800080008000
)

// Filter is a cuckoo filter over 64-bit key hashes. The zero value is not
// ready; use New. Not safe for concurrent use (the data path is
// single-goroutine by design).
type Filter struct {
	buckets []uint64
	mask    uint64
	count   int
	kick    uint32 // deterministic victim-lane rotation for evictions
}

// New creates a filter sized for about capacity resident fingerprints:
// bucket count is the smallest power of two giving at least 4/3 lane
// headroom, so a full-capacity filter runs at ≤ 75% load.
func New(capacity int) *Filter {
	nb := 2
	for nb*lanesPerBucket*3 < capacity*4 {
		nb *= 2
	}
	return &Filter{buckets: make([]uint64, nb), mask: uint64(nb - 1)}
}

// fingerprintOf extracts the 16-bit fingerprint from a key hash, remapping
// zero (the empty-lane marker) to a fixed non-zero value.
func fingerprintOf(h uint64) uint16 {
	fp := uint16(h >> 48)
	if fp == 0 {
		fp = 0x9e37
	}
	return fp
}

// alt returns the other candidate bucket for fingerprint fp currently at
// bucket i. XOR-symmetric: alt(alt(i, fp), fp) == i.
func (f *Filter) alt(i uint64, fp uint16) uint64 {
	return i ^ (tuple.MixWord(altSeed, uint64(fp)) & f.mask)
}

// hasLane reports whether any 16-bit lane of w equals the lane replicated in
// pat (the exact zero-lane bit trick; empty lanes are zero and fingerprints
// are non-zero, so empties never match).
func hasLane(w, pat uint64) bool {
	x := w ^ pat
	return (x-lanePattern) & ^x & laneHigh != 0
}

// MayContainHash reports whether a key hashing to h may be present. A false
// answer is a guaranteed miss; a true answer may be a false positive
// (probability ≈ 8/2^16 per resident-free table, rising with load).
// Two bucket loads, no allocation.
func (f *Filter) MayContainHash(h uint64) bool {
	fp := fingerprintOf(h)
	pat := uint64(fp) * lanePattern
	i1 := h & f.mask
	if hasLane(f.buckets[i1], pat) {
		return true
	}
	return hasLane(f.buckets[f.alt(i1, fp)], pat)
}

// MayContainBytes is MayContainHash over a packed byte key hashed with the
// owner's seed, matching tuple.HashBytes.
func (f *Filter) MayContainBytes(k []byte, seed uint64) bool {
	return f.MayContainHash(tuple.HashBytes(k, seed))
}

// tryInsert places fp in the first empty lane of bucket i.
func (f *Filter) tryInsert(i uint64, fp uint16) bool {
	w := f.buckets[i]
	for lane := 0; lane < lanesPerBucket; lane++ {
		shift := uint(lane) * laneBits
		if w&(laneMask<<shift) == 0 {
			f.buckets[i] = w | uint64(fp)<<shift
			return true
		}
	}
	return false
}

// removeFrom clears one lane of bucket i holding fp.
func (f *Filter) removeFrom(i uint64, fp uint16) bool {
	w := f.buckets[i]
	for lane := 0; lane < lanesPerBucket; lane++ {
		shift := uint(lane) * laneBits
		if uint16(w>>shift) == fp {
			f.buckets[i] = w &^ (uint64(laneMask) << shift)
			return true
		}
	}
	return false
}

// Insert adds the fingerprint for key hash h. It reports false when the
// bounded eviction walk fails (the table is effectively full); the filter's
// contents are then INVALID — a displaced fingerprint has been dropped — and
// the owner must rebuild from its backing structure into a larger filter
// (New with doubled Capacity, re-inserting every resident hash). Owners can
// always do this because the backing tables retain the full 64-bit hashes.
func (f *Filter) Insert(h uint64) bool {
	fp := fingerprintOf(h)
	i1 := h & f.mask
	if f.tryInsert(i1, fp) {
		f.count++
		return true
	}
	i2 := f.alt(i1, fp)
	if f.tryInsert(i2, fp) {
		f.count++
		return true
	}
	// Both buckets full: displace a resident fingerprint along the cuckoo
	// walk. The victim lane rotates deterministically so the walk cannot
	// cycle between two lanes forever.
	i := i2
	cur := fp
	for k := 0; k < maxKicks; k++ {
		lane := uint(f.kick) % lanesPerBucket
		f.kick++
		shift := lane * laneBits
		victim := uint16(f.buckets[i] >> shift)
		f.buckets[i] = f.buckets[i]&^(uint64(laneMask)<<shift) | uint64(cur)<<shift
		cur = victim
		i = f.alt(i, cur)
		if f.tryInsert(i, cur) {
			f.count++
			return true
		}
	}
	return false
}

// InsertBytes is Insert over a packed byte key hashed with the owner's seed.
func (f *Filter) InsertBytes(k []byte, seed uint64) bool {
	return f.Insert(tuple.HashBytes(k, seed))
}

// Delete removes one fingerprint occurrence for key hash h, reporting
// whether one was found. Owners only delete hashes they inserted (and whose
// Insert succeeded), so false indicates an owner bug.
func (f *Filter) Delete(h uint64) bool {
	fp := fingerprintOf(h)
	i1 := h & f.mask
	if f.removeFrom(i1, fp) {
		f.count--
		return true
	}
	if f.removeFrom(f.alt(i1, fp), fp) {
		f.count--
		return true
	}
	return false
}

// DeleteBytes is Delete over a packed byte key hashed with the owner's seed.
func (f *Filter) DeleteBytes(k []byte, seed uint64) bool {
	return f.Delete(tuple.HashBytes(k, seed))
}

// Count returns the number of resident fingerprints.
func (f *Filter) Count() int { return f.count }

// Capacity returns the total lane count; New(2×Capacity) sizes a rebuild
// after an Insert overflow.
func (f *Filter) Capacity() int { return len(f.buckets) * lanesPerBucket }

// MemoryBytes returns the bucket array footprint, for budget accounting.
func (f *Filter) MemoryBytes() int { return len(f.buckets) * 8 }

// Reset clears every lane, keeping the allocation.
func (f *Filter) Reset() {
	for i := range f.buckets {
		f.buckets[i] = 0
	}
	f.count = 0
}
