package filter_test

// Engine-level differential property test for the fingerprint filters: a
// filtered engine and a DisableFilters engine replaying the same randomized
// insert/delete workload must be indistinguishable in everything observable —
// the result stream, the relation window contents, and the simulated
// cost-charge total (the filters short-circuit real slot searches, never the
// meter). The fuzz target extends the property to adversarial workload
// parameters; `go test -race` covers the whole package in CI.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"acache/internal/core"
	"acache/internal/planner"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tuple"
)

func diffQuery(t testing.TB) *query.Query {
	t.Helper()
	q, err := query.New(
		[]*tuple.Schema{
			tuple.RelationSchema(0, "A"),
			tuple.RelationSchema(1, "A", "B"),
			tuple.RelationSchema(2, "B"),
		},
		[]query.Pred{
			{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
			{Left: tuple.Attr{Rel: 1, Name: "B"}, Right: tuple.Attr{Rel: 2, Name: "B"}},
		},
	)
	if err != nil {
		t.Fatalf("query.New: %v", err)
	}
	return q
}

// diffUpdates builds a randomized insert/delete sequence honoring per-
// relation sliding windows, so deletes always target live tuples.
func diffUpdates(q *query.Query, n, window int, domain, seed int64) []stream.Update {
	rng := rand.New(rand.NewSource(seed))
	wins := make([][]tuple.Tuple, q.N())
	ups := make([]stream.Update, 0, n)
	for len(ups) < n {
		rel := rng.Intn(q.N())
		w := wins[rel]
		if len(w) >= window || (len(w) > 0 && rng.Intn(4) == 0) {
			ups = append(ups, stream.Update{Op: stream.Delete, Rel: rel, Tuple: w[0]})
			wins[rel] = w[1:]
			continue
		}
		tp := make(tuple.Tuple, q.Schema(rel).Len())
		for c := range tp {
			tp[c] = tuple.Value(rng.Int63n(domain))
		}
		ups = append(ups, stream.Update{Op: stream.Insert, Rel: rel, Tuple: tp})
		wins[rel] = append(w, tp)
	}
	return ups
}

// diffReplay drives ups through a fresh engine and captures everything the
// differential property compares.
func diffReplay(t testing.TB, q *query.Query, cfg core.Config, ups []stream.Update) (results []string, work string, windows []string) {
	t.Helper()
	en, err := core.NewEngine(q, planner.Ordering{{1, 2}, {2, 0}, {1, 0}}, cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	en.OnResult(func(insert bool, result []tuple.Value) {
		results = append(results, fmt.Sprint(insert, result))
	})
	for _, u := range ups {
		en.Process(u)
	}
	snap := en.Snapshot()
	work = fmt.Sprint(snap.Outputs, snap.Work, snap.Reopts, snap.SkippedReopts)
	for rel := 0; rel < q.N(); rel++ {
		all := en.Exec().Store(rel).All()
		rows := make([]string, len(all))
		for i, tp := range all {
			rows[i] = fmt.Sprint(tp)
		}
		sort.Strings(rows)
		windows = append(windows, fmt.Sprint(rows))
	}
	return results, work, windows
}

func checkFilteredMatchesUnfiltered(t testing.TB, cfg core.Config, n, window int, domain, seed int64) {
	t.Helper()
	q := diffQuery(t)
	ups := diffUpdates(q, n, window, domain, seed)
	offCfg := cfg
	offCfg.DisableFilters = true
	res, work, wins := diffReplay(t, q, cfg, ups)
	resOff, workOff, winsOff := diffReplay(t, q, offCfg, ups)
	if len(res) != len(resOff) {
		t.Fatalf("%d filtered results, %d unfiltered", len(res), len(resOff))
	}
	for i := range res {
		if res[i] != resOff[i] {
			t.Fatalf("result %d diverges: filtered %s, unfiltered %s", i, res[i], resOff[i])
		}
	}
	if work != workOff {
		t.Fatalf("cost-charge totals diverge: filtered %q, unfiltered %q", work, workOff)
	}
	for rel := range wins {
		if wins[rel] != winsOff[rel] {
			t.Fatalf("relation %d window contents diverge:\nfiltered   %s\nunfiltered %s",
				rel, wins[rel], winsOff[rel])
		}
	}
}

func TestFilteredEngineMatchesUnfiltered(t *testing.T) {
	for _, tc := range []struct {
		name   string
		cfg    core.Config
		domain int64
	}{
		// Small ReoptInterval exercises the adaptivity loop (including the
		// filter knob) many times inside each run.
		{"adaptive-missy", core.Config{ReoptInterval: 300, Seed: 1}, 200},
		{"adaptive-hitty", core.Config{ReoptInterval: 300, Seed: 2}, 8},
		{"nocache", core.Config{DisableCaching: true, Seed: 3}, 50},
		{"gc", core.Config{ReoptInterval: 300, GCQuota: 6, Seed: 4}, 30},
		{"twoway", core.Config{ReoptInterval: 300, TwoWayCaches: true, Seed: 5}, 50},
		{"budget", core.Config{ReoptInterval: 300, MemoryBudget: 2048, Seed: 6}, 50},
	} {
		t.Run(tc.name, func(t *testing.T) {
			checkFilteredMatchesUnfiltered(t, tc.cfg, 6_000, 50, tc.domain, 100+tc.cfg.Seed)
		})
	}
}

// FuzzFilteredEngineMatchesUnfiltered lets the fuzzer pick the workload
// shape; any divergence between the filtered and unfiltered engines is a
// correctness bug (a filter false negative or a charge leak).
func FuzzFilteredEngineMatchesUnfiltered(f *testing.F) {
	f.Add(int64(1), int64(20), uint8(30), uint16(1500))
	f.Add(int64(7), int64(3), uint8(10), uint16(800))
	f.Add(int64(42), int64(500), uint8(60), uint16(2000))
	f.Fuzz(func(t *testing.T, seed, domain int64, window uint8, n uint16) {
		if domain <= 0 {
			domain = 1
		}
		w := int(window%60) + 2
		steps := int(n)%2_000 + 100
		cfg := core.Config{ReoptInterval: 250, Seed: seed}
		checkFilteredMatchesUnfiltered(t, cfg, steps, w, domain, seed)
	})
}
