package filter

import (
	"math/rand"
	"testing"

	"acache/internal/tuple"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(256)
	rng := rand.New(rand.NewSource(1))
	var hs []uint64
	for i := 0; i < 200; i++ {
		h := rng.Uint64()
		if !f.Insert(h) {
			t.Fatalf("insert %d overflowed below capacity", i)
		}
		hs = append(hs, h)
	}
	for i, h := range hs {
		if !f.MayContainHash(h) {
			t.Fatalf("false negative for inserted hash %d", i)
		}
	}
	if f.Count() != len(hs) {
		t.Fatalf("Count = %d, want %d", f.Count(), len(hs))
	}
}

func TestDeleteRemovesMembership(t *testing.T) {
	f := New(64)
	h1, h2 := uint64(0x1234567890abcdef), uint64(0xfedcba0987654321)
	f.Insert(h1)
	f.Insert(h2)
	if !f.Delete(h1) {
		t.Fatal("Delete of inserted hash reported absent")
	}
	if !f.MayContainHash(h2) {
		t.Fatal("Delete removed the wrong fingerprint")
	}
	if f.Delete(h1) && f.MayContainHash(h1) {
		t.Fatal("double delete left membership")
	}
}

func TestDuplicatesAreMultiset(t *testing.T) {
	f := New(64)
	h := uint64(42)
	f.Insert(h)
	f.Insert(h)
	f.Delete(h)
	if !f.MayContainHash(h) {
		t.Fatal("one delete of a doubly-inserted hash removed membership")
	}
	f.Delete(h)
	if f.MayContainHash(h) {
		t.Fatal("membership survived matching deletes")
	}
}

func TestDeterministicPlacement(t *testing.T) {
	mk := func() *Filter {
		f := New(512)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 400; i++ {
			f.Insert(rng.Uint64())
		}
		return f
	}
	a, b := mk(), mk()
	if len(a.buckets) != len(b.buckets) {
		t.Fatal("sizes differ")
	}
	for i := range a.buckets {
		if a.buckets[i] != b.buckets[i] {
			t.Fatalf("bucket %d differs across identical runs", i)
		}
	}
}

func TestFalsePositiveRateIsSmall(t *testing.T) {
	f := New(4096)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		f.Insert(rng.Uint64())
	}
	fps := 0
	const trials = 100_000
	for i := 0; i < trials; i++ {
		if f.MayContainHash(rng.Uint64()) {
			fps++
		}
	}
	// 8 candidate lanes × 2^-16 ≈ 0.012%; allow generous slack.
	if rate := float64(fps) / trials; rate > 0.005 {
		t.Fatalf("false-positive rate %.4f too high", rate)
	}
}

func TestOverflowSignalsRebuild(t *testing.T) {
	f := New(8) // 8 lanes of headroom over 2 buckets minimum
	rng := rand.New(rand.NewSource(9))
	inserted := []uint64{}
	overflowed := false
	for i := 0; i < 10_000; i++ {
		h := rng.Uint64()
		if !f.Insert(h) {
			overflowed = true
			// Rebuild larger from the retained hashes, as owners do.
			nf := New(f.Capacity() * 2)
			for _, old := range inserted {
				if !nf.Insert(old) {
					t.Fatal("rebuild at double capacity overflowed")
				}
			}
			if !nf.Insert(h) {
				t.Fatal("rebuild could not take the triggering hash")
			}
			inserted = append(inserted, h)
			f = nf
			break
		}
		inserted = append(inserted, h)
	}
	if !overflowed {
		t.Skip("tiny filter never overflowed (unexpected but not wrong)")
	}
	for _, h := range inserted {
		if !f.MayContainHash(h) {
			t.Fatal("false negative after rebuild")
		}
	}
}

func TestByteKeyWrappersMatchHash(t *testing.T) {
	f := New(64)
	const seed = 0x2545f4914f6cdd1d
	k := []byte{1, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0}
	f.InsertBytes(k, seed)
	if !f.MayContainHash(tuple.HashBytes(k, seed)) {
		t.Fatal("byte insert not visible via hash probe")
	}
	if !f.MayContainBytes(k, seed) {
		t.Fatal("byte probe missed byte insert")
	}
	if !f.DeleteBytes(k, seed) {
		t.Fatal("byte delete missed")
	}
}

func TestProbeDoesNotAllocate(t *testing.T) {
	f := New(1024)
	rng := rand.New(rand.NewSource(5))
	hs := make([]uint64, 512)
	for i := range hs {
		hs[i] = rng.Uint64()
		f.Insert(hs[i])
	}
	var sink bool
	allocs := testing.AllocsPerRun(1000, func() {
		sink = f.MayContainHash(hs[17]) && !f.MayContainHash(0xdeadbeef)
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("MayContainHash allocated %.1f per probe", allocs)
	}
}

// FuzzFilterVsReference drives a randomized insert/delete/probe workload
// against a reference multiset: no false negatives ever, and count tracking
// stays exact.
func FuzzFilterVsReference(f *testing.F) {
	f.Add(int64(1), uint8(16))
	f.Add(int64(42), uint8(64))
	f.Fuzz(func(t *testing.T, seed int64, nOps uint8) {
		rng := rand.New(rand.NewSource(seed))
		fl := New(64)
		ref := map[uint64]int{}
		var live []uint64
		total := 0
		for i := 0; i < int(nOps)*8; i++ {
			switch {
			case len(live) > 0 && rng.Intn(3) == 0:
				j := rng.Intn(len(live))
				h := live[j]
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				if !fl.Delete(h) {
					t.Fatalf("delete of live hash %x failed", h)
				}
				ref[h]--
				total--
			default:
				h := rng.Uint64() % 512 // force fingerprint duplicates
				if !fl.Insert(h) {
					// Owner contract: rebuild from retained membership.
					nf := New(fl.Capacity() * 2)
					for rh, n := range ref {
						for k := 0; k < n; k++ {
							if !nf.Insert(rh) {
								t.Skip("pathological duplicate overflow")
							}
						}
					}
					if !nf.Insert(h) {
						t.Skip("pathological duplicate overflow")
					}
					fl = nf
				}
				ref[h]++
				live = append(live, h)
				total++
			}
			if fl.Count() != total {
				t.Fatalf("count drift: filter %d, reference %d", fl.Count(), total)
			}
		}
		for h, n := range ref {
			if n > 0 && !fl.MayContainHash(h) {
				t.Fatalf("false negative for resident hash %x", h)
			}
		}
	})
}
