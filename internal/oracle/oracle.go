// Package oracle provides a naive ground-truth recomputation of stream-join
// deltas, used by tests and invariant checks across the repository. It keeps
// plain slices of window contents and joins by brute force, enforcing
// shared-class equality — O(Πᵢ|Rᵢ|) per update, unusable for real workloads
// and therefore deliberately outside the measured engine.
package oracle

import (
	"sort"

	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// Oracle tracks relation contents and recomputes join deltas naively.
type Oracle struct {
	q        *query.Query
	contents [][]tuple.Tuple
}

// New creates an empty oracle for q.
func New(q *query.Query) *Oracle {
	return &Oracle{q: q, contents: make([][]tuple.Tuple, q.N())}
}

// Contents returns relation rel's current tuples.
func (o *Oracle) Contents(rel int) []tuple.Tuple {
	return append([]tuple.Tuple(nil), o.contents[rel]...)
}

// joinSet computes the join of the given relations' current contents
// (seeding one forced tuple for seedRel if seed != nil), returning
// composites in rels order with the concatenated schema.
func (o *Oracle) joinSet(rels []int, seedRel int, seed tuple.Tuple) ([]tuple.Tuple, *tuple.Schema) {
	cur := []tuple.Tuple{{}}
	schema := tuple.NewSchema()
	prefix := []int{}
	for _, r := range rels {
		var src []tuple.Tuple
		if r == seedRel && seed != nil {
			src = []tuple.Tuple{seed}
		} else {
			src = o.contents[r]
		}
		classes := o.q.SharedClasses(prefix, []int{r})
		thetas := o.q.ThetasBetween(prefix, []int{r})
		relSchema := o.q.Schema(r)
		var next []tuple.Tuple
		for _, a := range cur {
			for _, b := range src {
				ok := true
				for _, c := range classes {
					av := a[o.q.RepresentativeCols(schema, []int{c})[0]]
					for _, name := range o.q.ClassAttrsOf(r, c) {
						if b[relSchema.MustColOf(tuple.Attr{Rel: r, Name: name})] != av {
							ok = false
						}
					}
				}
				for _, th := range thetas {
					var lv, rv tuple.Value
					if th.Left.Rel == r {
						lv = b[relSchema.MustColOf(th.Left)]
						rv = a[schema.MustColOf(th.Right)]
					} else {
						lv = a[schema.MustColOf(th.Left)]
						rv = b[relSchema.MustColOf(th.Right)]
					}
					if !th.Op.Eval(lv, rv) {
						ok = false
					}
				}
				if ok {
					next = append(next, a.Concat(b))
				}
			}
		}
		cur = next
		schema = schema.Concat(relSchema)
		prefix = append(prefix, r)
	}
	return cur, schema
}

// Process applies update u and returns the delta to the n-way join result
// as canonical tuples (relations in ascending order).
func (o *Oracle) Process(u stream.Update) []tuple.Tuple {
	n := o.q.N()
	rels := make([]int, 0, n)
	rels = append(rels, u.Rel)
	for r := 0; r < n; r++ {
		if r != u.Rel {
			rels = append(rels, r)
		}
	}
	delta, schema := o.joinSet(rels, u.Rel, u.Tuple)
	out := Canonicalize(o.q, schema, delta)
	if u.Op == stream.Insert {
		o.contents[u.Rel] = append(o.contents[u.Rel], u.Tuple)
	} else {
		for i, t := range o.contents[u.Rel] {
			if t.Equal(u.Tuple) {
				o.contents[u.Rel] = append(o.contents[u.Rel][:i:i], o.contents[u.Rel][i+1:]...)
				break
			}
		}
	}
	return out
}

// SegmentJoin computes the current join of the given relation set, in
// canonical column order.
func (o *Oracle) SegmentJoin(rels []int) []tuple.Tuple {
	sorted := append([]int(nil), rels...)
	sort.Ints(sorted)
	res, schema := o.joinSet(sorted, -1, nil)
	return Canonicalize(o.q, schema, res)
}

// Canonicalize reorders composite columns into ascending-relation, schema
// order so tuples from different pipelines compare equal.
func Canonicalize(q *query.Query, schema *tuple.Schema, ts []tuple.Tuple) []tuple.Tuple {
	rels := schema.Relations()
	sort.Ints(rels)
	var cols []int
	for _, r := range rels {
		for _, a := range q.Schema(r).Cols() {
			cols = append(cols, schema.MustColOf(a))
		}
	}
	out := make([]tuple.Tuple, len(ts))
	for i, t := range ts {
		c := make(tuple.Tuple, len(cols))
		for j, col := range cols {
			c[j] = t[col]
		}
		out[i] = c
	}
	return out
}

// Multiset builds a count map over encoded tuples, for multiset comparison.
func Multiset(ts []tuple.Tuple) map[tuple.Key]int {
	m := make(map[tuple.Key]int)
	for _, t := range ts {
		m[tuple.Encode(t)]++
	}
	return m
}

// MultisetEqual compares two multisets.
func MultisetEqual(a, b map[tuple.Key]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
