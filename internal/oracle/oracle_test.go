package oracle

import (
	"testing"

	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tuple"
)

func chain3(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.New(
		[]*tuple.Schema{
			tuple.RelationSchema(0, "A"),
			tuple.RelationSchema(1, "A", "B"),
			tuple.RelationSchema(2, "B"),
		},
		[]query.Pred{
			{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
			{Left: tuple.Attr{Rel: 1, Name: "B"}, Right: tuple.Attr{Rel: 2, Name: "B"}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestOracleFigure2 checks the oracle against the paper's hand-worked
// Figure 2 example: inserting ⟨1⟩ into R1 yields exactly ⟨1,1,2,2⟩.
func TestOracleFigure2(t *testing.T) {
	q := chain3(t)
	o := New(q)
	for _, v := range []int64{0, 1, 2} {
		o.Process(stream.Update{Op: stream.Insert, Rel: 0, Tuple: tuple.Tuple{v}})
	}
	for _, p := range [][2]int64{{1, 2}, {1, 3}, {3, 6}} {
		o.Process(stream.Update{Op: stream.Insert, Rel: 1, Tuple: tuple.Tuple{p[0], p[1]}})
	}
	var last []tuple.Tuple
	for _, v := range []int64{2, 4} {
		last = o.Process(stream.Update{Op: stream.Insert, Rel: 2, Tuple: tuple.Tuple{v}})
	}
	_ = last
	delta := o.Process(stream.Update{Op: stream.Insert, Rel: 0, Tuple: tuple.Tuple{1}})
	if len(delta) != 1 || !delta[0].Equal(tuple.Tuple{1, 1, 2, 2}) {
		t.Fatalf("delta = %v, want [⟨1,1,2,2⟩]", delta)
	}
}

func TestOracleDeleteRetracts(t *testing.T) {
	q := chain3(t)
	o := New(q)
	o.Process(stream.Update{Op: stream.Insert, Rel: 0, Tuple: tuple.Tuple{1}})
	o.Process(stream.Update{Op: stream.Insert, Rel: 1, Tuple: tuple.Tuple{1, 2}})
	o.Process(stream.Update{Op: stream.Insert, Rel: 2, Tuple: tuple.Tuple{2}})
	delta := o.Process(stream.Update{Op: stream.Delete, Rel: 1, Tuple: tuple.Tuple{1, 2}})
	if len(delta) != 1 {
		t.Fatalf("retraction delta = %v", delta)
	}
	if len(o.Contents(1)) != 0 {
		t.Fatal("delete did not remove the tuple")
	}
	// Deleting one copy of a duplicate removes exactly one.
	o.Process(stream.Update{Op: stream.Insert, Rel: 1, Tuple: tuple.Tuple{1, 2}})
	o.Process(stream.Update{Op: stream.Insert, Rel: 1, Tuple: tuple.Tuple{1, 2}})
	o.Process(stream.Update{Op: stream.Delete, Rel: 1, Tuple: tuple.Tuple{1, 2}})
	if len(o.Contents(1)) != 1 {
		t.Fatalf("multiset delete: %v", o.Contents(1))
	}
}

func TestOracleSegmentJoin(t *testing.T) {
	q := chain3(t)
	o := New(q)
	o.Process(stream.Update{Op: stream.Insert, Rel: 1, Tuple: tuple.Tuple{1, 2}})
	o.Process(stream.Update{Op: stream.Insert, Rel: 2, Tuple: tuple.Tuple{2}})
	o.Process(stream.Update{Op: stream.Insert, Rel: 2, Tuple: tuple.Tuple{2}})
	seg := o.SegmentJoin([]int{1, 2})
	if len(seg) != 2 {
		t.Fatalf("segment join = %v, want both R3 copies", seg)
	}
	if !seg[0].Equal(tuple.Tuple{1, 2, 2}) {
		t.Fatalf("segment tuple = %v", seg[0])
	}
}

func TestMultisetHelpers(t *testing.T) {
	a := Multiset([]tuple.Tuple{{1}, {1}, {2}})
	b := Multiset([]tuple.Tuple{{2}, {1}, {1}})
	if !MultisetEqual(a, b) {
		t.Fatal("order must not matter")
	}
	c := Multiset([]tuple.Tuple{{1}, {2}})
	if MultisetEqual(a, c) {
		t.Fatal("multiplicities must matter")
	}
}

func TestCanonicalizeReordersColumns(t *testing.T) {
	q := chain3(t)
	// A composite in pipeline order R3 ⊗ R2 must canonicalize to R2 ⊗ R3.
	schema := q.Schema(2).Concat(q.Schema(1))
	got := Canonicalize(q, schema, []tuple.Tuple{{9, 1, 9}})
	if len(got) != 1 || !got[0].Equal(tuple.Tuple{1, 9, 9}) {
		t.Fatalf("canonicalized = %v", got)
	}
}
