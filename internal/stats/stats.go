// Package stats provides the windowed online estimators used by the profiler
// and re-optimizer.
//
// Per Table 1 of the paper, the online estimate of any statistic is the
// average of its W most recent measurements (default W = 10). Window keeps a
// ring buffer of the last W observations with an O(1) running sum.
package stats

// Window is a sliding window over the last W float64 observations.
// The zero value is unusable; construct with NewWindow.
type Window struct {
	buf  []float64
	next int
	n    int
	sum  float64
}

// NewWindow creates a window of capacity w (w ≥ 1).
func NewWindow(w int) *Window {
	if w < 1 {
		w = 1
	}
	return &Window{buf: make([]float64, w)}
}

// Observe appends an observation, evicting the oldest when full.
func (w *Window) Observe(v float64) {
	if w.n == len(w.buf) {
		w.sum -= w.buf[w.next]
	} else {
		w.n++
	}
	w.buf[w.next] = v
	w.sum += v
	w.next = (w.next + 1) % len(w.buf)
}

// Mean returns the average of the current observations, or 0 when empty.
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// Sum returns the sum of the current observations.
func (w *Window) Sum() float64 { return w.sum }

// RecentMean returns the mean of the most recent k observations (all of
// them when fewer are held), or 0 when empty.
func (w *Window) RecentMean(k int) float64 {
	if w.n == 0 {
		return 0
	}
	if k > w.n {
		k = w.n
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += w.buf[((w.next-1-i)+len(w.buf)*2)%len(w.buf)]
	}
	return sum / float64(k)
}

// Len returns the number of observations currently held.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity W.
func (w *Window) Cap() int { return len(w.buf) }

// Full reports whether W observations have been collected — the profiler's
// readiness criterion before a cache's statistics are trusted (Section 4.5
// step 2).
func (w *Window) Full() bool { return w.n == len(w.buf) }

// Reset discards all observations.
func (w *Window) Reset() {
	w.n, w.next, w.sum = 0, 0, 0
	for i := range w.buf {
		w.buf[i] = 0
	}
}

// RateEstimator tracks events per simulated second over a sliding window of
// (count, elapsed) spans: rate(R_i) in Appendix A.
type RateEstimator struct {
	counts  *Window
	elapsed *Window
}

// NewRateEstimator creates a rate estimator averaging the last w spans.
func NewRateEstimator(w int) *RateEstimator {
	return &RateEstimator{counts: NewWindow(w), elapsed: NewWindow(w)}
}

// ObserveSpan records that count events occurred over sec simulated seconds.
func (r *RateEstimator) ObserveSpan(count int, sec float64) {
	r.counts.Observe(float64(count))
	r.elapsed.Observe(sec)
}

// Rate returns the estimated events/second, 0 if no time has elapsed.
func (r *RateEstimator) Rate() float64 {
	t := r.elapsed.Sum()
	if t <= 0 {
		return 0
	}
	return r.counts.Sum() / t
}

// Ready reports whether the estimator has a full window of spans.
func (r *RateEstimator) Ready() bool { return r.counts.Full() }

// Reset discards all spans.
func (r *RateEstimator) Reset() {
	r.counts.Reset()
	r.elapsed.Reset()
}
