package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWindowMeanAndEviction(t *testing.T) {
	w := NewWindow(3)
	if w.Mean() != 0 || w.Len() != 0 {
		t.Fatal("empty window wrong")
	}
	w.Observe(1)
	w.Observe(2)
	if w.Full() {
		t.Fatal("not full yet")
	}
	w.Observe(3)
	if !w.Full() || w.Mean() != 2 {
		t.Fatalf("mean = %v", w.Mean())
	}
	w.Observe(10) // evicts 1
	if w.Mean() != 5 {
		t.Fatalf("mean after eviction = %v", w.Mean())
	}
	if w.Sum() != 15 {
		t.Fatalf("sum = %v", w.Sum())
	}
}

func TestWindowRunningSumMatchesRecompute(t *testing.T) {
	f := func(vals []float64, cap8 uint8) bool {
		cap := int(cap8%16) + 1
		w := NewWindow(cap)
		var kept []float64
		for _, raw := range vals {
			// Constrain magnitudes: the running-sum design trades perfect
			// cancellation for O(1) updates, which is fine at the scales
			// the profiler feeds it but not at ±1e308.
			v := math.Mod(raw, 1e6)
			if math.IsNaN(v) {
				v = 0
			}
			w.Observe(v)
			kept = append(kept, v)
			if len(kept) > cap {
				kept = kept[1:]
			}
		}
		sum := 0.0
		for _, v := range kept {
			sum += v
		}
		return math.Abs(w.Sum()-sum) < 1e-6*(1+math.Abs(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecentMean(t *testing.T) {
	w := NewWindow(5)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		w.Observe(v)
	}
	if m := w.RecentMean(2); m != 4.5 {
		t.Fatalf("RecentMean(2) = %v", m)
	}
	if m := w.RecentMean(10); m != 3 {
		t.Fatalf("RecentMean(10) = %v, want full mean", m)
	}
	w.Observe(6) // wraps: window now 2..6
	if m := w.RecentMean(3); math.Abs(m-5) > 1e-9 {
		t.Fatalf("RecentMean(3) after wrap = %v", m)
	}
	if NewWindow(3).RecentMean(2) != 0 {
		t.Fatal("empty RecentMean must be 0")
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(2)
	w.Observe(5)
	w.Reset()
	if w.Len() != 0 || w.Sum() != 0 || w.Mean() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestWindowCapClamp(t *testing.T) {
	if NewWindow(0).Cap() != 1 {
		t.Fatal("cap must clamp to 1")
	}
}

func TestRateEstimator(t *testing.T) {
	r := NewRateEstimator(3)
	if r.Rate() != 0 {
		t.Fatal("empty rate must be 0")
	}
	r.ObserveSpan(100, 2)
	r.ObserveSpan(50, 1)
	if math.Abs(r.Rate()-50) > 1e-9 {
		t.Fatalf("rate = %v", r.Rate())
	}
	if r.Ready() {
		t.Fatal("not ready with 2 of 3 spans")
	}
	r.ObserveSpan(150, 1)
	if !r.Ready() {
		t.Fatal("ready with full window")
	}
	// Window slides: the first span evicts.
	r.ObserveSpan(300, 2)
	want := (50.0 + 150 + 300) / (1 + 1 + 2)
	if math.Abs(r.Rate()-want) > 1e-9 {
		t.Fatalf("sliding rate = %v, want %v", r.Rate(), want)
	}
	r.Reset()
	if r.Rate() != 0 || r.Ready() {
		t.Fatal("reset failed")
	}
}

func TestWindowRandomizedAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := NewWindow(7)
	var naive []float64
	for i := 0; i < 500; i++ {
		v := rng.NormFloat64() * 100
		w.Observe(v)
		naive = append(naive, v)
		if len(naive) > 7 {
			naive = naive[1:]
		}
		mean := 0.0
		for _, x := range naive {
			mean += x
		}
		mean /= float64(len(naive))
		if math.Abs(w.Mean()-mean) > 1e-6 {
			t.Fatalf("step %d: mean %v vs naive %v", i, w.Mean(), mean)
		}
	}
}
