package shard

import (
	"math/rand"
	"sync"
	"testing"

	"acache/internal/core"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// chainQuery is R(A) ⋈_A S(A,B) ⋈_B T(B): two classes of degree 2, so the
// partition plan must pick class 0 ({R.A, S.A}) and broadcast T.
func chainQuery(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.New(
		[]*tuple.Schema{
			tuple.RelationSchema(0, "A"),
			tuple.RelationSchema(1, "A", "B"),
			tuple.RelationSchema(2, "B"),
		},
		[]query.Pred{
			{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
			{Left: tuple.Attr{Rel: 1, Name: "B"}, Right: tuple.Attr{Rel: 2, Name: "B"}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// starQuery is R1(A) ⋈_A R2(A) ⋈_A R3(A): one class covering every relation,
// so every relation is partitioned and nothing is broadcast.
func starQuery(t *testing.T, n int) *query.Query {
	t.Helper()
	schemas := make([]*tuple.Schema, n)
	var preds []query.Pred
	for i := 0; i < n; i++ {
		schemas[i] = tuple.RelationSchema(i, "A")
		if i > 0 {
			preds = append(preds, query.Pred{
				Left:  tuple.Attr{Rel: i - 1, Name: "A"},
				Right: tuple.Attr{Rel: i, Name: "A"},
			})
		}
	}
	q, err := query.New(schemas, preds)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestPlanPartitionsCommonClass(t *testing.T) {
	q := starQuery(t, 5)
	p := PlanPartitions(q, 4)
	if p.Shards != 4 || p.Class != 0 {
		t.Fatalf("plan = %v, want P=4 on class 0", p)
	}
	if p.NumBroadcast() != 0 {
		t.Fatalf("common-class plan broadcasts %d relations, want 0", p.NumBroadcast())
	}
	for rel := 0; rel < q.N(); rel++ {
		if !p.Covered(rel) {
			t.Errorf("relation %d not covered by common class", rel)
		}
	}
}

func TestPlanPartitionsBroadcastFallback(t *testing.T) {
	q := chainQuery(t)
	p := PlanPartitions(q, 4)
	if p.Shards != 4 || p.Class != 0 {
		t.Fatalf("plan = %v, want P=4 on class 0", p)
	}
	if !p.Covered(0) || !p.Covered(1) || p.Covered(2) {
		t.Fatalf("cover = %v, want R,S partitioned and T broadcast", p.KeyCols)
	}
	if p.NumBroadcast() != 1 {
		t.Fatalf("NumBroadcast = %d, want 1", p.NumBroadcast())
	}
}

func TestPlanPartitionsSerialFallback(t *testing.T) {
	q := chainQuery(t)
	p := PlanPartitions(q, 1)
	if p.Shards != 1 || p.Class != -1 {
		t.Fatalf("plan = %v, want serial fallback", p)
	}
}

func TestShardOfDeterministicRouting(t *testing.T) {
	q := starQuery(t, 3)
	p := PlanPartitions(q, 4)
	ins := stream.Update{Op: stream.Insert, Rel: 1, Tuple: tuple.Tuple{42}}
	del := stream.Update{Op: stream.Delete, Rel: 1, Tuple: tuple.Tuple{42}}
	if p.ShardOf(ins) != p.ShardOf(del) {
		t.Fatal("a tuple's delete must route to the same shard as its insert")
	}
	// All shards must be reachable over a modest domain.
	seen := make(map[int]bool)
	for v := int64(0); v < 64; v++ {
		seen[p.ShardOf(stream.Update{Rel: 0, Tuple: tuple.Tuple{v}})] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 shards hit over 64 values", len(seen))
	}
}

func mkEngine(q *query.Query) func(int) (*core.Engine, error) {
	return func(i int) (*core.Engine, error) {
		return core.NewEngine(q, nil, core.Config{Seed: int64(1 + i)})
	}
}

// driveBoth replays the same windowed update sequence through a serial core
// engine and a sharded engine and returns (serial outputs, sharded outputs).
func driveBoth(t *testing.T, q *query.Query, shards, appends int, arity func(rel int) int) (uint64, uint64) {
	t.Helper()
	serial, err := core.NewEngine(q, nil, core.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(PlanPartitions(q, shards), Options{BatchSize: 16}, mkEngine(q))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	rng := rand.New(rand.NewSource(7))
	wins := make([]*stream.SlidingWindow, q.N())
	for i := range wins {
		wins[i] = stream.NewSlidingWindow(20)
	}
	seq := uint64(0)
	for i := 0; i < appends; i++ {
		rel := rng.Intn(q.N())
		vals := make(tuple.Tuple, arity(rel))
		for j := range vals {
			vals[j] = rng.Int63n(30)
		}
		for _, u := range wins[rel].Append(vals) {
			u.Rel = rel
			seq++
			u.Seq = seq
			serial.Process(u)
			sharded.Offer(u)
		}
	}
	return serial.Outputs(), sharded.Outputs()
}

func TestShardedOutputsMatchSerialStar(t *testing.T) {
	q := starQuery(t, 3)
	s, sh := driveBoth(t, q, 4, 600, func(int) int { return 1 })
	if s != sh {
		t.Fatalf("outputs: serial %d, sharded %d", s, sh)
	}
	if s == 0 {
		t.Fatal("workload produced no results; test is vacuous")
	}
}

func TestShardedOutputsMatchSerialBroadcast(t *testing.T) {
	q := chainQuery(t)
	arity := func(rel int) int {
		if rel == 1 {
			return 2
		}
		return 1
	}
	s, sh := driveBoth(t, q, 4, 600, arity)
	if s != sh {
		t.Fatalf("outputs: serial %d, sharded %d", s, sh)
	}
	if s == 0 {
		t.Fatal("workload produced no results; test is vacuous")
	}
}

func TestMergedOnResultPreservesPerShardCounts(t *testing.T) {
	q := starQuery(t, 3)
	sharded, err := New(PlanPartitions(q, 4), Options{BatchSize: 8}, mkEngine(q))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	var mu sync.Mutex
	got := 0
	sharded.OnResult(func(ins bool, vals []tuple.Value) {
		mu.Lock()
		got++
		mu.Unlock()
		if len(vals) != 3 {
			t.Errorf("result width %d, want 3", len(vals))
		}
	})
	rng := rand.New(rand.NewSource(3))
	seq := uint64(0)
	for i := 0; i < 400; i++ {
		seq++
		sharded.Offer(stream.Update{
			Op:    stream.Insert,
			Rel:   i % 3,
			Tuple: tuple.Tuple{rng.Int63n(20)},
			Seq:   seq,
		})
	}
	want := sharded.Outputs() // flushes
	mu.Lock()
	defer mu.Unlock()
	if uint64(got) != want {
		t.Fatalf("callback saw %d results, engine counted %d", got, want)
	}
}

func TestFlushQuiescesAndSumsSnapshots(t *testing.T) {
	q := starQuery(t, 3)
	sharded, err := New(PlanPartitions(q, 2), Options{BatchSize: 64}, mkEngine(q))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	for i := 0; i < 100; i++ {
		sharded.Offer(stream.Update{Op: stream.Insert, Rel: i % 3, Tuple: tuple.Tuple{int64(i % 10)}})
	}
	snap := sharded.Snapshot()
	if snap.Updates != 100 {
		t.Fatalf("snapshot saw %d updates, want 100", snap.Updates)
	}
	if got := sharded.Shard(0).Snapshot().Updates + sharded.Shard(1).Snapshot().Updates; got != 100 {
		t.Fatalf("per-shard updates sum to %d, want 100", got)
	}
}
