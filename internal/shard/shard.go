// Package shard hash-partitions a continuous multiway join across P
// independent worker shards, each running its own unmodified single-goroutine
// core.Engine — its own executor, cost meter, profiler, and cache set — on a
// dedicated goroutine fed by a batched mailbox.
//
// Partitioning multi-way stream joins by join key is the standard scale-out
// move for this plan shape, and it composes cleanly with A-Caching because
// each shard is just a smaller instance of the paper's engine: every
// consistency invariant of Section 3.2 is per-shard state, so no cross-shard
// coordination is ever needed.
//
// The partitioning scheme is chosen from the join graph's attribute
// equivalence classes:
//
//   - When one class has an attribute in every relation (the n-way join on a
//     common attribute), every relation is partitioned by that class's value
//     and each shard computes a disjoint slice of the result.
//   - Otherwise the largest-degree class partitions the relations it covers,
//     and updates of non-covered relations are broadcast to all shards. A
//     result tuple's covered constituents all carry the same class value (the
//     class is an equivalence class), so they live in exactly one shard and
//     the result is still produced exactly once.
//   - Degenerate graphs (no class spanning two relations) fall back to P=1.
//
// Ordering contract: updates offered by the single ingress goroutine are
// processed in offer order within each shard (a shard's input is the offer
// order restricted to that shard); cross-shard interleaving is unspecified.
// Result callbacks preserve per-shard emission order; emissions from
// different shards interleave arbitrarily.
//
// Resilience: the zero Options value runs the engine exactly as described
// above. Setting any resilience option (admission policy, offer timeout,
// checkpointing, stall watchdog, fault injector) switches the workers to the
// recoverable path in resilience.go: bounded admission with shed accounting,
// panic-isolated workers that rebuild their engine from a windows checkpoint
// plus a replay log, quarantine when recovery is exhausted, and a per-shard
// Health report.
package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"acache/internal/core"
	"acache/internal/fault"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// Plan describes how a query's update streams are hash-partitioned across
// shards.
type Plan struct {
	// Shards is the number of worker shards P (1 = serial fallback).
	Shards int
	// Class is the partitioning attribute equivalence class, or −1 when the
	// plan fell back to P=1.
	Class int
	// KeyCols[rel] is the tuple column of relation rel carrying the
	// partitioning class's value, or −1 when the relation is not covered by
	// the class and its updates are broadcast to every shard.
	KeyCols []int
}

// Covered reports whether relation rel is hash-partitioned (as opposed to
// broadcast).
func (p Plan) Covered(rel int) bool { return p.Shards > 1 && p.KeyCols[rel] >= 0 }

// NumBroadcast returns the number of relations whose updates are broadcast.
func (p Plan) NumBroadcast() int {
	if p.Shards <= 1 {
		return 0
	}
	n := 0
	for _, c := range p.KeyCols {
		if c < 0 {
			n++
		}
	}
	return n
}

func (p Plan) String() string {
	if p.Shards <= 1 {
		return "serial (P=1)"
	}
	return fmt.Sprintf("P=%d on class %d (%d broadcast)", p.Shards, p.Class, p.NumBroadcast())
}

// PlanPartitions picks the partitioning scheme for q from its join graph:
// the attribute equivalence class covering the most relations wins (ties to
// the lowest class id, so plans are deterministic); relations it does not
// cover are broadcast. When no class spans at least two relations — a
// degenerate graph — or shards ≤ 1, the plan falls back to P=1.
func PlanPartitions(q *query.Query, shards int) Plan {
	n := q.N()
	plan := Plan{Shards: 1, Class: -1, KeyCols: make([]int, n)}
	for i := range plan.KeyCols {
		plan.KeyCols[i] = -1
	}
	if shards <= 1 {
		return plan
	}
	best, bestDeg := -1, 1
	for c := 0; c < q.NumClasses(); c++ {
		deg := 0
		for rel := 0; rel < n; rel++ {
			if len(q.ClassAttrsOf(rel, c)) > 0 {
				deg++
			}
		}
		if deg > bestDeg {
			best, bestDeg = c, deg
		}
	}
	if best < 0 {
		return plan
	}
	plan.Shards = shards
	plan.Class = best
	for rel := 0; rel < n; rel++ {
		names := q.ClassAttrsOf(rel, best)
		if len(names) == 0 {
			continue
		}
		// Any member attribute works: inside a valid composite tuple all
		// attributes of one class carry equal values. Use the first in the
		// canonical (sorted) order.
		plan.KeyCols[rel] = q.Schema(rel).MustColOf(tuple.Attr{Rel: rel, Name: names[0]})
	}
	return plan
}

// mix is the splitmix64 finalizer: raw join-attribute values are often dense
// small integers, which would otherwise land consecutive values on
// consecutive shards and turn range-skewed streams into shard skew.
func mix(v int64) uint64 {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardOf returns the shard an update routes to, or −1 when the update's
// relation is broadcast to every shard. Routing is a pure function of the
// partitioning value, so a tuple's delete always follows its insert to the
// same shard.
func (p Plan) ShardOf(u stream.Update) int {
	if p.Shards <= 1 {
		return 0
	}
	col := p.KeyCols[u.Rel]
	if col < 0 {
		return -1
	}
	return int(mix(u.Tuple[col]) % uint64(p.Shards))
}

// mailboxDepth is the per-shard channel buffer in batches; it decouples the
// ingress from transient per-shard slowdowns (a shard mid-re-optimization)
// while still applying backpressure when a shard falls persistently behind.
const mailboxDepth = 8

// DefaultBatchSize is the ingress batch size when the caller passes ≤ 0:
// large enough to amortize a channel hand-off over many updates, small
// enough to keep shard latency and ingress buffering negligible.
const DefaultBatchSize = 128

// Options tune the mailbox machinery between the ingress and the shards. The
// zero value (plus BatchSize / MaxBatch) reproduces the non-resilient engine
// exactly; setting any of the remaining fields switches the workers to the
// recoverable path (see resilience.go).
type Options struct {
	// BatchSize is how many updates the ingress buffers per shard before
	// handing the batch to the shard's mailbox (≤ 0 uses DefaultBatchSize).
	BatchSize int
	// MaxBatch caps how many updates a worker passes to its engine's
	// ProcessBatch per call (≤ 0: the whole mailbox batch at once). The
	// engine's vectorized path gets faster with bigger batches, so the cap
	// exists for experiments that bound batch effects, not for throughput.
	MaxBatch int

	// Admission selects the policy applied when a shard's mailbox is full
	// (default AdmitBlock: block the ingress — classic backpressure).
	Admission AdmissionPolicy
	// OfferTimeout bounds how long AdmitBlock may block the ingress before
	// the batch is shed instead (0 = block indefinitely).
	OfferTimeout time.Duration
	// CheckpointEvery enables panic recovery: each shard checkpoints its
	// window contents every CheckpointEvery committed updates, keeps a
	// replay log of updates since, and after a worker panic rebuilds its
	// engine from checkpoint + replay. ≤ 0 disables recovery: a panicking
	// shard is quarantined immediately.
	CheckpointEvery int
	// MaxRecoveries caps successful recoveries per shard before it is
	// quarantined (0 with CheckpointEvery > 0 defaults to 3; < 0 disables
	// recovery).
	MaxRecoveries int
	// StallTimeout enables a watchdog that marks a shard Degraded when its
	// mailbox is non-empty but its worker makes no progress for this long.
	StallTimeout time.Duration
	// Injector arms deterministic faults for chaos tests and overload
	// benchmarks. Nil in production; the plain path never consults it.
	Injector *fault.Injector
	// ForceResilient switches to the recoverable path even when no other
	// resilience option is set — callers that need live occupancy telemetry
	// or cache pausing (the degradation ladder) require the resilient
	// workers' progress counters and control channels.
	ForceResilient bool
}

// resilient reports whether any resilience option is set, switching the
// engine from the plain (pre-resilience, bit-identical) code path to the
// recoverable one.
func (o Options) resilient() bool {
	return o.Admission != AdmitBlock || o.OfferTimeout > 0 || o.CheckpointEvery > 0 ||
		o.MaxRecoveries != 0 || o.StallTimeout > 0 || o.Injector != nil || o.ForceResilient
}

type batchMsg struct {
	ups []stream.Update
	ack chan<- struct{}
}

// Engine fans updates out to per-shard core engines. One ingress goroutine
// calls Offer/Flush/Close; each shard runs on its own goroutine. All
// inspection (Snapshot, Shard, per-shard state) must happen with the shards
// quiesced: after a Flush and before the next Offer. Close is idempotent and
// safe to call from multiple goroutines; Health may be read at any time.
type Engine struct {
	plan      Plan
	shards    []*core.Engine
	mail      []chan batchMsg
	ing       *stream.Batcher
	maxBatch  int
	batchSize int
	wg        sync.WaitGroup
	resMu     sync.Mutex // serializes merged result callbacks
	userCB    func(insert bool, result []tuple.Value)
	closeOnce sync.Once
	// MemoryDemandDetail's concatenation buffer, reused per call.
	demandDetail []core.GroupDemand

	// Resilience state (resilience.go). res gates every non-default branch
	// so the zero-Options engine runs the exact plain code path.
	res           bool
	admission     AdmissionPolicy
	offerTimeout  time.Duration
	ckptEvery     int
	maxRecoveries int
	inj           *fault.Injector
	mk            func(shard int) (*core.Engine, error)
	states        []*shardState
	ctrl          []chan func(*core.Engine)
	// pending holds per-route deletes deferred by a shed batch; they are
	// disposed ahead of the route's next submission. Ingress-owned.
	pending [][]stream.Update
	// live counts, per route and tuple key, instances submitted to the shard
	// minus deletes submitted — the disposition-time guard that drops the
	// expiry deletes of shed inserts so windows never retract tuples they do
	// not hold. Ingress-owned.
	live []map[string]int
	// deque buffers per-route undisposed batches under shed-oldest admission
	// so evictions always precede later dispositions in stream order.
	// Ingress-owned.
	deque           [][][]stream.Update
	shedByRel       []atomic.Uint64
	filteredDeletes atomic.Uint64
	cbPanics        atomic.Uint64
	// subCtx bounds blocking mailbox sends during OfferContext/FlushContext;
	// subErr carries the abort out of the Batcher emit callback.
	subCtx    context.Context
	subErr    error
	stopWatch chan struct{}
}

// New builds a sharded engine over plan.Shards core engines constructed by
// mk (one call per shard, so each shard gets its own meter, profiler, cache
// set, and seed) and starts the worker goroutines. mk is retained when
// recovery is enabled: a recovering shard rebuilds its engine with mk(i).
func New(plan Plan, opts Options, mk func(shard int) (*core.Engine, error)) (*Engine, error) {
	if plan.Shards < 1 {
		return nil, fmt.Errorf("shard: plan has %d shards", plan.Shards)
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	e := &Engine{
		plan:          plan,
		maxBatch:      opts.MaxBatch,
		batchSize:     batchSize,
		res:           opts.resilient(),
		admission:     opts.Admission,
		offerTimeout:  opts.OfferTimeout,
		ckptEvery:     opts.CheckpointEvery,
		maxRecoveries: opts.MaxRecoveries,
		inj:           opts.Injector,
		mk:            mk,
	}
	if e.maxRecoveries == 0 && e.ckptEvery > 0 {
		e.maxRecoveries = 3
	}
	if e.maxRecoveries < 0 {
		e.maxRecoveries = 0
	}
	for i := 0; i < plan.Shards; i++ {
		en, err := mk(i)
		if err != nil {
			for _, built := range e.shards {
				built.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		e.shards = append(e.shards, en)
		e.mail = append(e.mail, make(chan batchMsg, mailboxDepth))
		e.states = append(e.states, &shardState{})
	}
	e.shedByRel = make([]atomic.Uint64, len(plan.KeyCols))
	if e.res {
		e.ctrl = make([]chan func(*core.Engine), plan.Shards)
		for i := range e.ctrl {
			e.ctrl[i] = make(chan func(*core.Engine), 4)
		}
		e.pending = make([][]stream.Update, plan.Shards)
		e.live = make([]map[string]int, plan.Shards)
		if opts.Admission == AdmitShedOldest {
			e.deque = make([][][]stream.Update, plan.Shards)
		}
		e.ing = stream.NewBatcher(plan.Shards, batchSize, e.submit)
	} else {
		e.ing = stream.NewBatcher(plan.Shards, batchSize, func(route int, ups []stream.Update) {
			e.mail[route] <- batchMsg{ups: ups}
		})
	}
	for i := range e.shards {
		e.wg.Add(1)
		if e.res {
			go e.resilientWorker(i)
		} else {
			go e.worker(i)
		}
	}
	if opts.StallTimeout > 0 {
		e.stopWatch = make(chan struct{})
		e.wg.Add(1)
		go e.watchdog(opts.StallTimeout)
	}
	return e, nil
}

func (e *Engine) worker(i int) {
	defer e.wg.Done()
	en := e.shards[i]
	ws := e.states[i]
	defer en.Close() // release staged-pipeline workers when the mailbox drains
	for m := range e.mail[i] {
		ups := m.ups
		for len(ups) > 0 {
			n := len(ups)
			if e.maxBatch > 0 && n > e.maxBatch {
				n = e.maxBatch
			}
			en.ProcessBatch(ups[:n])
			ups = ups[n:]
		}
		if len(m.ups) > 0 {
			if _, deg := en.DurabilityStats(); deg {
				ws.durDegraded.Store(true)
			}
		}
		if m.ack != nil {
			m.ack <- struct{}{}
		}
	}
}

// Plan returns the partitioning plan in effect.
func (e *Engine) Plan() Plan { return e.plan }

// NumShards returns P.
func (e *Engine) NumShards() int { return len(e.shards) }

// Offer routes one update to its shard's pending batch (or to every shard's,
// for a broadcast relation). The update's tuple must not be mutated
// afterwards: broadcast shards share it, and shards retain tuples in their
// windows.
func (e *Engine) Offer(u stream.Update) {
	s := e.plan.ShardOf(u)
	if s >= 0 {
		e.ing.Add(s, u)
		return
	}
	for i := range e.mail {
		e.ing.Add(i, u)
	}
}

// Flush submits every pending batch and returns only after every shard has
// processed everything offered so far — the quiescent point at which
// per-shard state may be inspected from the ingress goroutine.
func (e *Engine) Flush() {
	if e.res {
		// Background context: cannot expire, so the error is always nil.
		_ = e.flushResilient(context.Background())
		return
	}
	e.ing.Flush()
	ack := make(chan struct{}, len(e.mail))
	for _, m := range e.mail {
		m <- batchMsg{ack: ack}
	}
	for range e.mail {
		<-ack
	}
}

// FlushContext is Flush bounded by ctx: it aborts (returning the context's
// error) if a shard cannot drain in time — a stalled worker no longer wedges
// the ingress forever. On abort the engine stays usable: unsubmitted batches
// are retried by the next Offer/Flush, and stray flush acks are ignored.
func (e *Engine) FlushContext(ctx context.Context) error {
	if !e.res {
		e.Flush()
		return nil
	}
	return e.flushResilient(ctx)
}

// Close flushes, stops the worker goroutines, and waits for them to exit.
// Idempotent and safe to call from multiple goroutines (every caller returns
// only after shutdown completes); the engine must not be offered to
// afterwards.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		if e.res {
			_ = e.flushResilient(context.Background())
		} else {
			e.ing.Flush()
		}
		if e.stopWatch != nil {
			close(e.stopWatch)
		}
		for _, m := range e.mail {
			close(m)
		}
		e.wg.Wait()
	})
}

// Shard exposes shard i's core engine for inspection. A core.Engine takes no
// locks anywhere — including core.Engine.Snapshot — so every read through
// this handle is only valid while the shard goroutines are quiesced: after a
// Flush and before the next Offer. Snapshot and Snapshots bundle the flush
// and are the safe way to read counters.
func (e *Engine) Shard(i int) *core.Engine { return e.shards[i] }

// Snapshots flushes — quiescing every shard goroutine, which
// core.Engine.Snapshot's no-locks contract requires — and then reads one
// snapshot per shard, in shard order. Counters carried over from engines
// replaced during recovery are folded in, so totals span rebuilds.
func (e *Engine) Snapshots() []core.Snapshot {
	e.Flush()
	out := make([]core.Snapshot, len(e.shards))
	for i, en := range e.shards {
		out[i] = en.Snapshot()
		out[i].AddSnapshot(e.states[i].snapBase)
	}
	return out
}

// Snapshot flushes and returns the sum of all shards' counters.
func (e *Engine) Snapshot() core.Snapshot {
	var total core.Snapshot
	for _, s := range e.Snapshots() {
		total.Updates += s.Updates
		total.Outputs += s.Outputs
		total.Work += s.Work
		total.Reopts += s.Reopts
		total.SkippedReopts += s.SkippedReopts
		total.CacheMemoryBytes += s.CacheMemoryBytes
		total.FilterBytes += s.FilterBytes
		total.FilteredProbes += s.FilteredProbes
		total.FilterFalsePositives += s.FilterFalsePositives
		total.StagedUpdates += s.StagedUpdates
		total.StageStalls += s.StageStalls
		total.WindowBytes += s.WindowBytes
		total.TierHotBytes += s.TierHotBytes
		total.TierColdBytes += s.TierColdBytes
		total.TierPromotions += s.TierPromotions
		total.TierDemotions += s.TierDemotions
		total.TierWriteErrors += s.TierWriteErrors
		total.DurDegraded = total.DurDegraded || s.DurDegraded
		if s.PipelineWorkers > total.PipelineWorkers {
			total.PipelineWorkers = s.PipelineWorkers
		}
	}
	if total.Updates > 0 {
		total.StageOverlapRatio = float64(total.StagedUpdates) / float64(total.Updates)
	}
	return total
}

// Outputs flushes and returns the total join-result updates emitted across
// shards. Note that a broadcast relation's update may emit results in
// several shards; the sum is the same total a serial engine would emit.
func (e *Engine) Outputs() uint64 { return e.Snapshot().Outputs }

// OnResult registers a merged result callback: every shard's join-result
// deltas are funneled through one mutex into f. Per-shard emission order is
// preserved; cross-shard interleaving is unspecified. Must be called before
// the first Offer. f runs on shard goroutines and must not call back into
// the engine. A panic in f is contained: it is swallowed, counted (see
// CallbackPanics), and processing continues.
//
// In resilient mode delivery is transactional: results are staged and handed
// to f only after their sub-batch commits, so a recovered shard's replay
// never delivers a result twice and a discarded attempt delivers nothing.
func (e *Engine) OnResult(f func(insert bool, result []tuple.Value)) {
	e.userCB = f
	if e.res {
		for i, en := range e.shards {
			e.attachSink(i, en)
		}
		return
	}
	for _, en := range e.shards {
		en.OnResult(func(ins bool, vals []tuple.Value) {
			e.resMu.Lock()
			e.safeCall(ins, vals)
			e.resMu.Unlock()
		})
	}
}

// safeCall invokes the user callback with panic containment. Caller holds
// resMu.
func (e *Engine) safeCall(ins bool, vals []tuple.Value) {
	defer func() {
		if r := recover(); r != nil {
			e.cbPanics.Add(1)
		}
	}()
	e.userCB(ins, vals)
}

// MemoryDemandDetail flushes and concatenates the shards' per-group demand
// detail — shard-scoped group identities never collide across shards, so the
// concatenation is itself a valid detail. The returned slice is reused
// across calls. Quarantined shards are skipped.
func (e *Engine) MemoryDemandDetail() (groups []core.GroupDemand, filterBytes int) {
	e.Flush()
	e.demandDetail = e.demandDetail[:0]
	for i, en := range e.shards {
		if e.res && e.states[i].getHealth() == Quarantined {
			continue
		}
		g, fb := en.MemoryDemandDetail()
		e.demandDetail = append(e.demandDetail, g...)
		filterBytes += fb
	}
	return e.demandDetail, filterBytes
}

// MemoryDemand flushes and sums the shards' cache-memory demand — the
// sharded engine's appetite when a server divides a global budget across
// queries. Quarantined shards are skipped.
func (e *Engine) MemoryDemand() (bytes int, netBenefit float64) {
	e.Flush()
	for i, en := range e.shards {
		if e.res && e.states[i].getHealth() == Quarantined {
			continue
		}
		b, net := en.MemoryDemand()
		bytes += b
		netBenefit += net
	}
	return bytes, netBenefit
}

// SetMemoryBudget flushes and divides a cache-memory budget evenly across
// the shards (each shard runs its own Section 5 allocation below its slice);
// bytes < 0 grants every shard unlimited memory. Quarantined shards are
// skipped.
func (e *Engine) SetMemoryBudget(bytes int) {
	e.Flush()
	per := bytes
	if bytes >= 0 {
		per = bytes / len(e.shards)
	}
	for i, en := range e.shards {
		if e.res && e.states[i].getHealth() == Quarantined {
			continue
		}
		en.SetMemoryBudget(per)
	}
}
