package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"acache/internal/core"
	"acache/internal/fault"
	"acache/internal/join"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tier"
	"acache/internal/tuple"
)

// checkGoroutines waits for the goroutine count to return to the baseline,
// failing the test if shard workers or their engines' stage workers leak.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// countFDs returns the number of open file descriptors (linux only; callers
// skip elsewhere). Spill mappings hold their fd for the mapping's lifetime,
// so a leaked tier shows up here even after the engine is unreachable.
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// mkTieredEngine builds per-shard engines with tiered slab storage under
// dir/shard<i>, with a tiny watermark so spills actually populate.
func mkTieredEngine(q *query.Query, dir string) func(int) (*core.Engine, error) {
	return func(i int) (*core.Engine, error) {
		return core.NewEngine(q, nil, core.Config{
			Seed: int64(1 + i),
			Tier: tier.Options{
				Dir:       filepath.Join(dir, fmt.Sprintf("shard%d", i)),
				HotBytes:  4096,
				PageBytes: 4096,
			},
		})
	}
}

// mkStagedEngine is mkEngine with staged pipeline workers enabled, so every
// shard owns a stage-worker pool on top of its mailbox goroutine.
func mkStagedEngine(q *query.Query) func(int) (*core.Engine, error) {
	return func(i int) (*core.Engine, error) {
		return core.NewEngine(q, nil, core.Config{
			Seed:     int64(1 + i),
			Pipeline: join.PipelineOptions{Workers: 2},
		})
	}
}

// TestCloseReleasesStageWorkers: closing a sharded engine whose shards run
// staged pipelines must stop the mailbox workers AND each engine's stage
// workers — including on repeated Close.
func TestCloseReleasesStageWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	q := starQuery(t, 3)
	sharded, err := New(PlanPartitions(q, 4), Options{BatchSize: 8}, mkStagedEngine(q))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		sharded.Offer(stream.Update{Op: stream.Insert, Rel: i % 3, Tuple: tuple.Tuple{int64(i % 10)}, Seq: uint64(i + 1)})
	}
	sharded.Flush()
	sharded.Close()
	sharded.Close() // idempotent-Close path
	checkGoroutines(t, base)
}

// TestCloseReleasesTierFDs: closing a sharded engine whose shards spill to
// mmap-backed cold tiers must unmap the spills, close their descriptors, and
// remove the files — fd-leak assertions beside the goroutine checks.
func TestCloseReleasesTierFDs(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("fd accounting via /proc/self/fd")
	}
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	fds := countFDs(t)
	q := starQuery(t, 3)
	sharded, err := New(PlanPartitions(q, 4), Options{BatchSize: 8}, mkTieredEngine(q, dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12000; i++ {
		sharded.Offer(stream.Update{Op: stream.Insert, Rel: i % 3, Tuple: tuple.Tuple{int64(i % 3000)}, Seq: uint64(i + 1)})
	}
	sharded.Flush()
	if snap := sharded.Snapshot(); snap.TierColdBytes == 0 || snap.TierDemotions == 0 {
		t.Fatalf("tiny watermark produced no cold state: %+v", snap)
	}
	sharded.Close()
	sharded.Close()
	if got := countFDs(t); got > fds {
		t.Fatalf("fd leak: %d open after Close, baseline %d", got, fds)
	}
	spills, err := filepath.Glob(filepath.Join(dir, "shard*", "*.spill"))
	if err != nil {
		t.Fatal(err)
	}
	if len(spills) != 0 {
		t.Fatalf("Close left spill files behind: %v", spills)
	}
	checkGoroutines(t, base)
}

// TestRecoveryReleasesTierFDs: a panic-recovery rebuild replaces a shard's
// engine with a fresh one over the SAME spill paths. The rebuild must close
// the panicked engine's tier first (unmapping and removing its files) so the
// replacement can recreate them, and nothing — old mapping, old descriptor,
// worker goroutine — may leak across the swap or the final Close.
func TestRecoveryReleasesTierFDs(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("fd accounting via /proc/self/fd")
	}
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	fds := countFDs(t)
	q := starQuery(t, 3)
	inj := fault.New().PanicAt(1, 50)
	sharded, err := New(PlanPartitions(q, 4), Options{
		BatchSize:       8,
		CheckpointEvery: 16,
		Injector:        inj,
	}, mkTieredEngine(q, dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12000; i++ {
		sharded.Offer(stream.Update{Op: stream.Insert, Rel: i % 3, Tuple: tuple.Tuple{int64(i % 3000)}, Seq: uint64(i + 1)})
	}
	sharded.Flush()
	if sharded.Recoveries() != 1 {
		t.Fatalf("Recoveries() = %d, want 1", sharded.Recoveries())
	}
	sharded.Close()
	if got := countFDs(t); got > fds {
		t.Fatalf("fd leak: %d open after recovery+Close, baseline %d", got, fds)
	}
	if spills, _ := filepath.Glob(filepath.Join(dir, "shard*", "*.spill")); len(spills) != 0 {
		t.Fatalf("Close left spill files behind: %v", spills)
	}
	checkGoroutines(t, base)
}

// TestRecoveryReleasesStageWorkers: a panic-recovery rebuild replaces a
// shard's engine mid-stream; the replaced engine's stage workers must be
// stopped by the rebuild, and Close must release the replacement's.
func TestRecoveryReleasesStageWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	q := starQuery(t, 3)
	inj := fault.New().PanicAt(1, 50)
	sharded, err := New(PlanPartitions(q, 4), Options{
		BatchSize:       8,
		CheckpointEvery: 16,
		Injector:        inj,
	}, mkStagedEngine(q))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		sharded.Offer(stream.Update{Op: stream.Insert, Rel: i % 3, Tuple: tuple.Tuple{int64(i % 10)}, Seq: uint64(i + 1)})
	}
	sharded.Flush()
	if sharded.Recoveries() != 1 {
		t.Fatalf("Recoveries() = %d, want 1", sharded.Recoveries())
	}
	sharded.Close()
	checkGoroutines(t, base)
}
