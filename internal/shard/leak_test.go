package shard

import (
	"runtime"
	"testing"
	"time"

	"acache/internal/core"
	"acache/internal/fault"
	"acache/internal/join"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// checkGoroutines waits for the goroutine count to return to the baseline,
// failing the test if shard workers or their engines' stage workers leak.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// mkStagedEngine is mkEngine with staged pipeline workers enabled, so every
// shard owns a stage-worker pool on top of its mailbox goroutine.
func mkStagedEngine(q *query.Query) func(int) (*core.Engine, error) {
	return func(i int) (*core.Engine, error) {
		return core.NewEngine(q, nil, core.Config{
			Seed:     int64(1 + i),
			Pipeline: join.PipelineOptions{Workers: 2},
		})
	}
}

// TestCloseReleasesStageWorkers: closing a sharded engine whose shards run
// staged pipelines must stop the mailbox workers AND each engine's stage
// workers — including on repeated Close.
func TestCloseReleasesStageWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	q := starQuery(t, 3)
	sharded, err := New(PlanPartitions(q, 4), Options{BatchSize: 8}, mkStagedEngine(q))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		sharded.Offer(stream.Update{Op: stream.Insert, Rel: i % 3, Tuple: tuple.Tuple{int64(i % 10)}, Seq: uint64(i + 1)})
	}
	sharded.Flush()
	sharded.Close()
	sharded.Close() // idempotent-Close path
	checkGoroutines(t, base)
}

// TestRecoveryReleasesStageWorkers: a panic-recovery rebuild replaces a
// shard's engine mid-stream; the replaced engine's stage workers must be
// stopped by the rebuild, and Close must release the replacement's.
func TestRecoveryReleasesStageWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	q := starQuery(t, 3)
	inj := fault.New().PanicAt(1, 50)
	sharded, err := New(PlanPartitions(q, 4), Options{
		BatchSize:       8,
		CheckpointEvery: 16,
		Injector:        inj,
	}, mkStagedEngine(q))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		sharded.Offer(stream.Update{Op: stream.Insert, Rel: i % 3, Tuple: tuple.Tuple{int64(i % 10)}, Seq: uint64(i + 1)})
	}
	sharded.Flush()
	if sharded.Recoveries() != 1 {
		t.Fatalf("Recoveries() = %d, want 1", sharded.Recoveries())
	}
	sharded.Close()
	checkGoroutines(t, base)
}
