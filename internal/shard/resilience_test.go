package shard

import (
	"context"
	"flag"
	"math/rand"
	"sync"
	"testing"
	"time"

	"acache/internal/core"
	"acache/internal/fault"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// chaosSeed adds one extra randomized schedule to TestRandomizedChaos on top
// of its fixed seeds — CI passes a fresh value per run so the sweep keeps
// exploring new fault interleavings (failures reproduce with the same seed).
var chaosSeed = flag.Int64("chaos.seed", 0, "extra TestRandomizedChaos schedule seed (0 = none)")

// resultLog collects delivered results as a multiset, safe for concurrent
// delivery.
type resultLog struct {
	mu   sync.Mutex
	seen map[string]int
	n    int
}

func newResultLog() *resultLog { return &resultLog{seen: make(map[string]int)} }

func (l *resultLog) add(ins bool, vals []tuple.Value) {
	k := "-"
	if ins {
		k = "+"
	}
	l.mu.Lock()
	l.seen[k+string(tuple.AppendKeyTuple(nil, vals))]++
	l.n++
	l.mu.Unlock()
}

func (l *resultLog) equal(o *resultLog) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(l.seen) != len(o.seen) {
		return false
	}
	for k, n := range l.seen {
		if o.seen[k] != n {
			return false
		}
	}
	return true
}

// driveWindowed replays a windowed workload through a serial reference and a
// resilient sharded engine, comparing delivered-result multisets.
func driveWindowed(t *testing.T, shards, appends, window int, opts Options) (serial *core.Engine, sharded *Engine, refLog, gotLog *resultLog) {
	t.Helper()
	q := starQuery(t, 3)
	var err error
	serial, err = core.NewEngine(q, nil, core.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err = New(PlanPartitions(q, shards), opts, mkEngine(q))
	if err != nil {
		t.Fatal(err)
	}
	refLog, gotLog = newResultLog(), newResultLog()
	serial.OnResult(refLog.add)
	sharded.OnResult(gotLog.add)

	rng := rand.New(rand.NewSource(11))
	wins := make([]*stream.SlidingWindow, q.N())
	for i := range wins {
		wins[i] = stream.NewSlidingWindow(window)
	}
	seq := uint64(0)
	for i := 0; i < appends; i++ {
		rel := rng.Intn(q.N())
		vals := tuple.Tuple{rng.Int63n(25)}
		for _, u := range wins[rel].Append(vals) {
			u.Rel = rel
			seq++
			u.Seq = seq
			serial.Process(u)
			sharded.Offer(u)
		}
	}
	sharded.Flush()
	return serial, sharded, refLog, gotLog
}

// TestPanicRecoveryMatchesSerial injects a panic into one of four shards
// mid-stream and asserts the engine keeps serving, recovers the shard from
// its checkpoint, reports the recovery in Health, and converges to exactly
// the serial reference: same output count and same delivered-result multiset
// (exactly-once across the crash).
func TestPanicRecoveryMatchesSerial(t *testing.T) {
	inj := fault.New().PanicAt(1, 50)
	serial, sharded, refLog, gotLog := driveWindowed(t, 4, 900, 20, Options{
		BatchSize:       16,
		CheckpointEvery: 32,
		Injector:        inj,
	})
	defer sharded.Close()

	if p, _, _, _ := inj.Counts(); p != 1 {
		t.Fatalf("injector fired %d panics, want 1", p)
	}
	if sharded.Recoveries() != 1 {
		t.Fatalf("Recoveries() = %d, want 1", sharded.Recoveries())
	}
	h := sharded.Health()[1]
	if h.Recoveries != 1 {
		t.Fatalf("shard 1 health reports %d recoveries, want 1", h.Recoveries)
	}
	if h.LastError == "" {
		t.Fatal("recovered shard reports no LastError")
	}
	if sharded.Shed() != 0 {
		t.Fatalf("shed %d updates with blocking admission", sharded.Shed())
	}
	if got, want := sharded.Outputs(), serial.Outputs(); got != want {
		t.Fatalf("outputs: sharded %d, serial %d", got, want)
	}
	if !refLog.equal(gotLog) {
		t.Fatalf("delivered result multisets differ (serial %d, sharded %d deliveries)", refLog.n, gotLog.n)
	}
	if refLog.n == 0 {
		t.Fatal("workload delivered no results; test is vacuous")
	}
	// Post-recovery window contents match the serial reference per relation.
	for rel := 0; rel < 3; rel++ {
		want := serial.Exec().Store(rel).Len()
		got := 0
		for i := 0; i < sharded.NumShards(); i++ {
			got += sharded.Shard(i).Exec().Store(rel).Len()
		}
		if got != want {
			t.Fatalf("relation %d: sharded windows hold %d tuples, serial %d", rel, got, want)
		}
	}
}

// TestStackedPanicsQuarantine arms more consecutive panics at one update
// than MaxRecoveries allows: the shard must quarantine, the engine must keep
// serving and flushing, and the quarantined shard's input must be counted
// shed.
func TestStackedPanicsQuarantine(t *testing.T) {
	inj := fault.New()
	for i := 0; i < 5; i++ {
		inj.PanicAt(0, 10)
	}
	_, sharded, _, gotLog := driveWindowed(t, 4, 600, 20, Options{
		BatchSize:       8,
		CheckpointEvery: 16,
		MaxRecoveries:   2,
		Injector:        inj,
	})
	defer sharded.Close()

	h := sharded.Health()
	if h[0].State != Quarantined {
		t.Fatalf("shard 0 state = %v, want quarantined", h[0].State)
	}
	if h[0].Recoveries != 2 {
		t.Fatalf("shard 0 recoveries = %d, want 2", h[0].Recoveries)
	}
	if h[0].Shed == 0 {
		t.Fatal("quarantined shard shed nothing")
	}
	for i := 1; i < 4; i++ {
		if h[i].State != Healthy {
			t.Fatalf("shard %d state = %v, want healthy", i, h[i].State)
		}
		if h[i].Shed != 0 {
			t.Fatalf("healthy shard %d shed %d updates", i, h[i].Shed)
		}
	}
	if gotLog.n == 0 {
		t.Fatal("engine stopped serving after quarantine")
	}
	// The flush barrier still works with a quarantined shard.
	sharded.Flush()
}

// TestCallbackPanicIsolation feeds a callback that panics on every third
// result and asserts the workers survive, the panics are counted, and the
// engine's own result count is unaffected — in both plain and resilient
// modes.
func TestCallbackPanicIsolation(t *testing.T) {
	for _, res := range []bool{false, true} {
		name := "plain"
		opts := Options{BatchSize: 8}
		if res {
			name = "resilient"
			opts.CheckpointEvery = 64
		}
		t.Run(name, func(t *testing.T) {
			q := starQuery(t, 3)
			sharded, err := New(PlanPartitions(q, 4), opts, mkEngine(q))
			if err != nil {
				t.Fatal(err)
			}
			defer sharded.Close()
			var mu sync.Mutex
			calls := 0
			sharded.OnResult(func(ins bool, vals []tuple.Value) {
				mu.Lock()
				calls++
				n := calls
				mu.Unlock()
				if n%3 == 0 {
					panic("user callback bug")
				}
			})
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 500; i++ {
				sharded.Offer(stream.Update{
					Op: stream.Insert, Rel: i % 3, Tuple: tuple.Tuple{rng.Int63n(8)}, Seq: uint64(i + 1),
				})
			}
			sharded.Flush()
			out := sharded.Outputs()
			if out == 0 {
				t.Fatal("no results; test is vacuous")
			}
			mu.Lock()
			delivered := calls
			mu.Unlock()
			if uint64(delivered) != out {
				t.Fatalf("callback invoked %d times, engine emitted %d", delivered, out)
			}
			if want := uint64(delivered / 3); sharded.CallbackPanics() != want {
				t.Fatalf("CallbackPanics = %d, want %d", sharded.CallbackPanics(), want)
			}
		})
	}
}

// TestAdmissionRejectAccounting overloads slowed workers with non-blocking
// admission and asserts exact conservation on an insert-only workload:
// every offered update is either in a shard window or counted shed.
func TestAdmissionRejectAccounting(t *testing.T) {
	q := starQuery(t, 3)
	inj := fault.New().SlowEvery(-1, 1, 16, 2*time.Millisecond)
	sharded, err := New(PlanPartitions(q, 2), Options{
		BatchSize: 4,
		Admission: AdmitReject,
		Injector:  inj,
	}, mkEngine(q))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	const offered = 4000
	for i := 0; i < offered; i++ {
		sharded.Offer(stream.Update{
			Op: stream.Insert, Rel: i % 3, Tuple: tuple.Tuple{int64(i % 40)}, Seq: uint64(i + 1),
		})
	}
	sharded.Flush()
	shed := sharded.Shed()
	if shed == 0 {
		t.Fatal("overload produced no shedding; tighten the workload")
	}
	inWindows := 0
	for i := 0; i < sharded.NumShards(); i++ {
		for rel := 0; rel < 3; rel++ {
			inWindows += sharded.Shard(i).Exec().Store(rel).Len()
		}
	}
	if uint64(inWindows)+shed != offered {
		t.Fatalf("conservation violated: %d in windows + %d shed != %d offered",
			inWindows, shed, offered)
	}
	var byRel uint64
	for _, n := range sharded.ShedByRelation() {
		byRel += n
	}
	if byRel != shed {
		t.Fatalf("per-relation shed counters sum to %d, total %d", byRel, shed)
	}
	if sharded.AdmissionWait() < 0 {
		t.Fatal("negative admission wait")
	}
}

// TestShedOldestKeepsDeletes runs a windowed (insert+delete) workload under
// shed-oldest admission and asserts exact conservation: shed inserts never
// reach windows, their expiry deletes are dropped by the filter, and every
// retained delete is eventually applied.
func TestShedOldestKeepsDeletes(t *testing.T) {
	q := starQuery(t, 3)
	inj := fault.New().SlowEvery(-1, 1, 16, 2*time.Millisecond)
	sharded, err := New(PlanPartitions(q, 2), Options{
		BatchSize: 4,
		Admission: AdmitShedOldest,
		Injector:  inj,
	}, mkEngine(q))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	rng := rand.New(rand.NewSource(5))
	wins := make([]*stream.SlidingWindow, 3)
	for i := range wins {
		wins[i] = stream.NewSlidingWindow(12)
	}
	inserts, deletes := uint64(0), uint64(0)
	seq := uint64(0)
	for i := 0; i < 3000; i++ {
		rel := rng.Intn(3)
		for _, u := range wins[rel].Append(tuple.Tuple{rng.Int63n(30)}) {
			u.Rel = rel
			seq++
			u.Seq = seq
			if u.Op == stream.Insert {
				inserts++
			} else {
				deletes++
			}
			sharded.Offer(u)
		}
	}
	sharded.Flush()
	shed, filtered := sharded.Shed(), sharded.FilteredDeletes()
	if shed == 0 {
		t.Fatal("overload produced no shedding; tighten the workload")
	}
	if filtered > shed {
		t.Fatalf("filtered %d deletes but shed only %d inserts", filtered, shed)
	}
	inWindows := uint64(0)
	for i := 0; i < sharded.NumShards(); i++ {
		for rel := 0; rel < 3; rel++ {
			inWindows += uint64(sharded.Shard(i).Exec().Store(rel).Len())
		}
	}
	if want := (inserts - shed) - (deletes - filtered); inWindows != want {
		t.Fatalf("conservation violated: %d in windows, want %d (I=%d D=%d shed=%d filtered=%d)",
			inWindows, want, inserts, deletes, shed, filtered)
	}
}

// TestFlushContextTimeoutOnStall stalls a worker, asserts FlushContext times
// out instead of wedging and the watchdog flags the shard, then releases the
// stall and asserts the engine drains clean.
func TestFlushContextTimeoutOnStall(t *testing.T) {
	q := starQuery(t, 3)
	inj := fault.New().StallAt(0, 5)
	sharded, err := New(PlanPartitions(q, 2), Options{
		BatchSize:       4,
		CheckpointEvery: 64,
		StallTimeout:    20 * time.Millisecond,
		Injector:        inj,
	}, mkEngine(q))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	// 40 updates (≈20 per shard) fit the stalled shard's mailbox, so Offer
	// never blocks behind the stall; the flush barrier is what must time out.
	for i := 0; i < 40; i++ {
		sharded.Offer(stream.Update{
			Op: stream.Insert, Rel: i % 3, Tuple: tuple.Tuple{int64(i % 10)}, Seq: uint64(i + 1),
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := sharded.FlushContext(ctx); err == nil {
		t.Fatal("FlushContext returned nil while a worker was stalled")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if sharded.Health()[0].State == Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never flagged the stalled shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
	inj.Release()
	if err := sharded.FlushContext(context.Background()); err != nil {
		t.Fatalf("flush after release: %v", err)
	}
	if got := sharded.Snapshot().Updates; got != 40 {
		t.Fatalf("processed %d updates after release, want 40", got)
	}
}

// TestCloseIdempotentAndConcurrent closes engines twice sequentially and
// from several goroutines at once, in both modes.
func TestCloseIdempotentAndConcurrent(t *testing.T) {
	for _, res := range []bool{false, true} {
		opts := Options{BatchSize: 8}
		if res {
			opts.CheckpointEvery = 32
		}
		q := starQuery(t, 3)
		sharded, err := New(PlanPartitions(q, 4), opts, mkEngine(q))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			sharded.Offer(stream.Update{
				Op: stream.Insert, Rel: i % 3, Tuple: tuple.Tuple{int64(i % 10)}, Seq: uint64(i + 1),
			})
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sharded.Close()
			}()
		}
		wg.Wait()
		sharded.Close() // and once more after shutdown
	}
}

// TestRandomizedChaos replays seeded random fault schedules (panics and
// slowdowns) against the serial reference: with nothing shed the engines
// must agree exactly; with quarantine-induced shedding the sharded engine
// must emit a subset and account for every dropped update.
func TestRandomizedChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short")
	}
	seeds := []int64{1, 2, 3, 4}
	if *chaosSeed != 0 {
		seeds = append(seeds, *chaosSeed)
	}
	for _, seed := range seeds {
		chaosSweep(t, seed)
	}
}

func chaosSweep(t *testing.T, seed int64) {
	t.Helper()
	inj := fault.RandomSchedule(seed, 4, 800, 6)
	serial, sharded, refLog, gotLog := driveWindowed(t, 4, 900, 20, Options{
		BatchSize:       16,
		CheckpointEvery: 32,
		Injector:        inj,
	})
	defer sharded.Close()
	shed := sharded.Shed()
	if shed == 0 {
		if got, want := sharded.Outputs(), serial.Outputs(); got != want {
			t.Fatalf("seed %d: outputs %d, serial %d with nothing shed", seed, got, want)
		}
		if !refLog.equal(gotLog) {
			t.Fatalf("seed %d: result multisets differ with nothing shed", seed)
		}
		return
	}
	if got, want := sharded.Outputs(), serial.Outputs(); got > want {
		t.Fatalf("seed %d: sharded emitted %d results, more than serial's %d", seed, got, want)
	}
	quarantined := false
	for _, h := range sharded.Health() {
		if h.State == Quarantined {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("seed %d: %d updates shed without a quarantined shard under blocking admission", seed, shed)
	}
}
