package shard

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"acache/internal/core"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// AdmissionPolicy decides what happens when a shard's mailbox is full.
type AdmissionPolicy int

const (
	// AdmitBlock blocks the ingress until the mailbox drains (optionally
	// bounded by Options.OfferTimeout, after which the batch is shed) — the
	// pre-resilience behaviour when no timeout is set.
	AdmitBlock AdmissionPolicy = iota
	// AdmitReject sheds the new batch instead of blocking.
	AdmitReject
	// AdmitShedOldest evicts the oldest queued batch to make room for the
	// new one: fresher data wins under overload. Expiry deletes of evicted
	// batches are retained (windows must still shrink), so a shard's window
	// may transiently exceed its nominal size until the re-queued deletes
	// are processed.
	AdmitShedOldest
)

func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitReject:
		return "reject"
	case AdmitShedOldest:
		return "shed-oldest"
	default:
		return "block"
	}
}

// HealthState is a shard's liveness classification.
type HealthState int32

const (
	// Healthy: processing normally.
	Healthy HealthState = iota
	// Degraded: serving, but recently recovered from a panic (until its next
	// clean checkpoint) or flagged stalled by the watchdog.
	Degraded
	// Recovering: a rebuild + replay is in progress right now.
	Recovering
	// Quarantined: recovery was exhausted; the shard sheds its input and the
	// engine serves the remaining shards.
	Quarantined
)

func (h HealthState) String() string {
	switch h {
	case Degraded:
		return "degraded"
	case Recovering:
		return "recovering"
	case Quarantined:
		return "quarantined"
	default:
		return "healthy"
	}
}

// ShardHealth is one shard's health report. Safe to request from any
// goroutine at any time (unlike Snapshot, it reads only atomics).
type ShardHealth struct {
	Shard      int
	State      HealthState
	Recoveries int
	// Pending is the shard's current mailbox backlog in updates.
	Pending int
	// Shed counts updates dropped for this shard (admission + quarantine).
	Shed uint64
	// LastError is the most recent recovered panic message, if any.
	LastError string
	// DurabilityDegraded is true once a spill-write failure has dropped this
	// shard's engine to hot-only tiering (results stay exact; the cold-tier
	// memory win and by-ref checkpointing of the failed store are lost).
	DurabilityDegraded bool
}

// staged is one join-result delta held back until its sub-batch commits.
type staged struct {
	insert bool
	vals   []tuple.Value
}

// shardState is the per-shard resilience state. The atomics form the
// cross-goroutine surface (ingress admission, watchdog, Health); the rest is
// owned by the shard's worker goroutine (or by the ingress between a Flush
// and the next Offer).
type shardState struct {
	health     atomic.Int32
	recoveries atomic.Int64
	lastErr    atomic.Value // string
	// beat increments on every worker progress step — the watchdog's
	// heartbeat.
	beat atomic.Uint64
	// enq / done count updates handed to / retired by the worker (processed
	// or shed); their difference is the mailbox backlog.
	enq  atomic.Int64
	done atomic.Int64
	// waitNs accumulates ingress time spent blocked on this mailbox.
	waitNs atomic.Int64
	// shed counts updates dropped for this shard.
	shed atomic.Uint64

	// Worker-owned recovery state.
	ckpt      *core.Checkpoint
	wal       []stream.Update // updates applied (and delivered) since ckpt
	sinceCkpt int
	admitted  uint64   // updates admitted to the engine, the fault-index clock
	stage     []staged // results of the in-flight sub-batch
	mute      bool     // discard results (checkpoint replay re-processing)
	snapBase  core.Snapshot
	// fragileFlag marks a shard that recovered since its last clean
	// checkpoint (worker writes, watchdog reads → atomic).
	fragileFlag atomic.Bool
	// durDegraded mirrors the shard engine's spill-write degradation flag
	// (worker refreshes it after every batch, Health reads → atomic).
	durDegraded atomic.Bool
}

func (ws *shardState) pending() int {
	n := ws.enq.Load() - ws.done.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

func (ws *shardState) setHealth(h HealthState) { ws.health.Store(int32(h)) }
func (ws *shardState) getHealth() HealthState  { return HealthState(ws.health.Load()) }

// Health reports every shard's current state. Callable from any goroutine.
func (e *Engine) Health() []ShardHealth {
	out := make([]ShardHealth, len(e.states))
	for i, ws := range e.states {
		h := ShardHealth{
			Shard:              i,
			State:              ws.getHealth(),
			Recoveries:         int(ws.recoveries.Load()),
			Pending:            ws.pending(),
			Shed:               ws.shed.Load(),
			DurabilityDegraded: ws.durDegraded.Load(),
		}
		if msg, ok := ws.lastErr.Load().(string); ok {
			h.LastError = msg
		}
		out[i] = h
	}
	return out
}

// Recoveries returns the total successful panic recoveries across shards.
func (e *Engine) Recoveries() int {
	total := 0
	for _, ws := range e.states {
		total += int(ws.recoveries.Load())
	}
	return total
}

// CallbackPanics returns how many OnResult callback panics were swallowed.
func (e *Engine) CallbackPanics() uint64 { return e.cbPanics.Load() }

// ShedByRelation returns a copy of the per-relation shed-update counters
// (admission sheds and quarantine drains; counted per update dropped).
func (e *Engine) ShedByRelation() []uint64 {
	out := make([]uint64, len(e.shedByRel))
	for i := range e.shedByRel {
		out[i] = e.shedByRel[i].Load()
	}
	return out
}

// AdmissionWait returns the cumulative time the ingress spent blocked on
// full mailboxes.
func (e *Engine) AdmissionWait() time.Duration {
	var total int64
	for _, ws := range e.states {
		total += ws.waitNs.Load()
	}
	return time.Duration(total)
}

// MaxOccupancy returns the fullest shard mailbox as a fraction of its
// capacity in updates — the degradation ladder's pressure signal. Callable
// from the ingress at any time.
func (e *Engine) MaxOccupancy() float64 {
	cap := float64(mailboxDepth * e.batchSize)
	if cap <= 0 {
		return 0
	}
	worst := 0.0
	for _, ws := range e.states {
		if occ := float64(ws.pending()) / cap; occ > worst {
			worst = occ
		}
	}
	return worst
}

// PauseCaching asks every live shard to pause (or resume) adaptive caching —
// the degradation ladder's cache-first rung. The request rides a non-blocking
// control channel so a loaded ingress never waits on a busy worker; a full
// control channel drops the request (the ladder re-issues it on its next
// pressure check).
func (e *Engine) PauseCaching(paused bool) {
	for i := range e.ctrl {
		select {
		case e.ctrl[i] <- func(en *core.Engine) { en.SetCachingPaused(paused) }:
		default:
		}
	}
}

// ── Ingress side: admission, shedding, context-bounded flushing ──────────────

// shedKey identifies a tuple instance for insert/delete pairing across the
// shed filter: relation id then the tuple's values, byte-encoded.
func shedKey(rel int, t tuple.Tuple) string {
	b := tuple.AppendKeyTuple(nil, tuple.Tuple{tuple.Value(rel)})
	return string(tuple.AppendKeyTuple(b, t))
}

func (e *Engine) countShed(rel int) {
	if rel >= 0 && rel < len(e.shedByRel) {
		e.shedByRel[rel].Add(1)
	}
}

// The disposition model: every update's fate — submitted to its shard or
// shed — is decided exactly once, on the ingress goroutine, in per-route
// stream order (submission order; under shed-oldest, deque order with
// evictions taken front-first, which precede every later disposition).
// live[route] counts per tuple key the instances submitted minus the deletes
// submitted; a delete disposed while its key has no live instance is dropped
// — its insert was shed — so a shard never runs the join pipeline for a
// retraction of a tuple it does not hold. Because dispositions are strictly
// ordered and multiset windows make equal-valued instances interchangeable,
// every submitted delete finds its tuple present: shard windows are exact
// multisets of the admitted subset.

// send disposes a batch as admitted — stripping deletes whose key has no
// live instance — and hands it to the shard's mailbox. The send blocks only
// if the caller did not first observe space (single producer: an observed
// len < cap cannot be invalidated by anyone but this goroutine).
func (e *Engine) send(route int, ups []stream.Update) {
	lv := e.live[route]
	cleaned := ups[:0]
	for _, u := range ups {
		k := shedKey(u.Rel, u.Tuple)
		if u.Op == stream.Insert {
			if lv == nil {
				lv = make(map[string]int)
				e.live[route] = lv
			}
			lv[k]++
			cleaned = append(cleaned, u)
			continue
		}
		if n := lv[k]; n > 0 {
			if n == 1 {
				delete(lv, k)
			} else {
				lv[k] = n - 1
			}
			cleaned = append(cleaned, u)
		} else {
			e.filteredDeletes.Add(1)
		}
	}
	if len(cleaned) == 0 {
		return
	}
	e.states[route].enq.Add(int64(len(cleaned)))
	e.mail[route] <- batchMsg{ups: cleaned}
}

// evict disposes a batch's inserts as shed and returns its deletes
// undisposed: a dropped insert never reaches the live map, so its eventual
// expiry delete is stripped by send; deletes of admitted tuples must still
// shrink the window and are decided at their eventual disposition.
func (e *Engine) evict(route int, ups []stream.Update) []stream.Update {
	ws := e.states[route]
	var kept []stream.Update
	for _, u := range ups {
		if u.Op == stream.Insert {
			e.countShed(u.Rel)
			ws.shed.Add(1)
			continue
		}
		kept = append(kept, u)
	}
	return kept
}

// shedBatch disposes a batch as shed; its deletes are deferred and ride in
// front of the route's next submission (so under shedding a window may
// transiently exceed its nominal size until they land).
func (e *Engine) shedBatch(route int, ups []stream.Update) {
	if kept := e.evict(route, ups); len(kept) > 0 {
		e.pending[route] = append(e.pending[route], kept...)
	}
}

// hasSpace reports whether the route's mailbox can take a batch without
// blocking. Only the worker shrinks the queue, so a true result holds until
// the ingress itself sends.
func (e *Engine) hasSpace(route int) bool {
	return len(e.mail[route]) < cap(e.mail[route])
}

// waitSpace polls for mailbox space until the timeout or context fires.
// Polling (rather than a channel send that might have to be retracted) keeps
// disposition atomic: a batch is disposed only once its fate is certain.
func (e *Engine) waitSpace(route int, timeoutC <-chan time.Time, done <-chan struct{}) bool {
	for !e.hasSpace(route) {
		select {
		case <-timeoutC:
			return false
		case <-done:
			return false
		default:
			time.Sleep(20 * time.Microsecond)
		}
	}
	return true
}

// submit is the resilient Batcher emit callback: it prepends deferred
// deletes, then disposes the batch under the admission policy. Ingress
// goroutine only.
func (e *Engine) submit(route int, ups []stream.Update) {
	if e.admission == AdmitShedOldest {
		e.submitShedOldest(route, ups)
		return
	}
	if p := e.pending[route]; len(p) > 0 {
		ups = append(p, ups...)
		e.pending[route] = nil
	}
	if e.hasSpace(route) {
		e.send(route, ups)
		return
	}
	if e.admission == AdmitReject {
		e.shedBatch(route, ups)
		return
	}
	// AdmitBlock: backpressure, optionally bounded by OfferTimeout or the
	// caller's OfferContext/FlushContext deadline.
	ws := e.states[route]
	start := time.Now()
	var timeoutC <-chan time.Time
	if e.offerTimeout > 0 {
		timer := time.NewTimer(e.offerTimeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	var done <-chan struct{}
	if e.subCtx != nil {
		done = e.subCtx.Done()
	}
	if timeoutC == nil && done == nil {
		// Unbounded backpressure: dispose now and block on the channel.
		e.send(route, ups)
		ws.waitNs.Add(time.Since(start).Nanoseconds())
		return
	}
	ok := e.waitSpace(route, timeoutC, done)
	ws.waitNs.Add(time.Since(start).Nanoseconds())
	if ok {
		e.send(route, ups)
		return
	}
	if done != nil && e.subCtx.Err() != nil && e.subErr == nil {
		e.subErr = fmt.Errorf("shard %d: admission blocked, batch shed: %w",
			route, e.subCtx.Err())
	}
	e.shedBatch(route, ups)
}

// submitShedOldest queues the batch behind the route's deque, drains the
// deque front into available mailbox space, and evicts the oldest queued
// batches once the deque exceeds its depth — freshest data wins. The deque
// sits in front of the mailbox so an eviction always precedes the
// disposition of every update behind it; the in-flight insert/delete pairs
// a mailbox eviction would tear cannot exist.
func (e *Engine) submitShedOldest(route int, ups []stream.Update) {
	dq := append(e.deque[route], ups)
	i := 0
	for i < len(dq) && e.hasSpace(route) {
		e.send(route, dq[i])
		i++
	}
	dq = dq[i:]
	for len(dq) > mailboxDepth {
		kept := e.evict(route, dq[0])
		dq = dq[1:]
		if len(kept) == 0 {
			continue
		}
		if len(dq) == 0 {
			dq = [][]stream.Update{kept}
		} else {
			// Retained deletes are older than everything still queued: they
			// merge into the front so disposition order stays stream order.
			dq[0] = append(kept, dq[0]...)
		}
	}
	e.deque[route] = dq
}

// drainDeferred pushes every route's deferred work (shed-oldest deque,
// deferred deletes) into the mailboxes, bounded by ctx. On abort the
// remainder stays queued for the next flush.
func (e *Engine) drainDeferred(ctx context.Context) error {
	done := ctx.Done()
	for route, dq := range e.deque {
		for len(dq) > 0 {
			if !e.waitSpace(route, nil, done) {
				e.deque[route] = dq
				return ctx.Err()
			}
			e.send(route, dq[0])
			dq = dq[1:]
		}
		e.deque[route] = nil
	}
	for route, p := range e.pending {
		if len(p) == 0 {
			continue
		}
		if !e.waitSpace(route, nil, done) {
			return ctx.Err()
		}
		e.send(route, p)
		e.pending[route] = nil
	}
	return nil
}

// flushResilient is the recoverable-path flush: submit buffered batches
// (admission policy applies), drain deferred work, then run the ack barrier
// — every step bounded by ctx.
func (e *Engine) flushResilient(ctx context.Context) error {
	e.subCtx, e.subErr = ctx, nil
	e.ing.Flush()
	err := e.subErr
	e.subCtx, e.subErr = nil, nil
	if err != nil {
		return err
	}
	if err := e.drainDeferred(ctx); err != nil {
		return err
	}
	done := ctx.Done()
	ack := make(chan struct{}, len(e.mail))
	for _, m := range e.mail {
		select {
		case m <- batchMsg{ack: ack}:
		case <-done:
			return ctx.Err()
		}
	}
	for range e.mail {
		select {
		case <-ack:
		case <-done:
			return ctx.Err()
		}
	}
	return nil
}

// OfferContext is Offer bounded by ctx: if admitting the update blocks on a
// full mailbox past the context's deadline, the blocked batch is shed
// (counted, with its deletes deferred) and the context's error is returned.
// The update itself is still accounted: either admitted or part of the shed
// batch.
func (e *Engine) OfferContext(ctx context.Context, u stream.Update) error {
	if !e.res {
		e.Offer(u)
		return nil
	}
	e.subCtx, e.subErr = ctx, nil
	e.Offer(u)
	err := e.subErr
	e.subCtx, e.subErr = nil, nil
	return err
}

// Shed returns the total updates dropped across shards (admission sheds and
// quarantine drains; filtered deletes are counted separately).
func (e *Engine) Shed() uint64 {
	var total uint64
	for _, ws := range e.states {
		total += ws.shed.Load()
	}
	return total
}

// FilteredDeletes returns how many deletes were dropped because the insert
// they retract had been shed.
func (e *Engine) FilteredDeletes() uint64 { return e.filteredDeletes.Load() }

// QueueDepth returns the updates buffered between the ingress and the shard
// engines: ingress batches, deferred deletes, and mailbox backlogs. Ingress
// goroutine only (it reads the batcher).
func (e *Engine) QueueDepth() int {
	n := e.ing.Pending()
	for _, p := range e.pending {
		n += len(p)
	}
	for _, dq := range e.deque {
		for _, b := range dq {
			n += len(b)
		}
	}
	for _, ws := range e.states {
		n += ws.pending()
	}
	return n
}

// ── Worker side: panic isolation, checkpoint/replay recovery, quarantine ─────

// resilientWorker is the recoverable variant of worker: control messages are
// interleaved with mailbox batches, processing is panic-isolated, and a
// quarantined shard keeps consuming (shedding) so flushes never wedge.
func (e *Engine) resilientWorker(i int) {
	defer e.wg.Done()
	// Close whatever engine holds the slot when the mailbox drains — rebuilds
	// replace e.shards[i], so resolve it at exit, not entry.
	defer func() { e.shards[i].Close() }()
	ws := e.states[i]
	for {
		select {
		case fn := <-e.ctrl[i]:
			e.runCtrl(i, ws, fn)
		case m, ok := <-e.mail[i]:
			if !ok {
				return
			}
			if len(m.ups) > 0 {
				if ws.getHealth() == Quarantined {
					e.shedUpdates(ws, m.ups)
				} else {
					e.processResilient(i, ws, m.ups)
				}
			}
			if m.ack != nil {
				ws.beat.Add(1)
				m.ack <- struct{}{}
			}
		}
	}
}

// runCtrl applies a control function (e.g. pause caching) to the shard's
// engine, panic-contained so a control action can never take a worker down.
func (e *Engine) runCtrl(i int, ws *shardState, fn func(*core.Engine)) {
	if ws.getHealth() == Quarantined {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			ws.lastErr.Store(fmt.Sprintf("control: %v", r))
		}
	}()
	fn(e.shards[i])
	ws.beat.Add(1)
}

// processResilient feeds a mailbox batch to the shard engine in committed
// sub-batches, splitting at injector trigger indexes so faults land at exact
// update positions, and shedding the remainder if the shard quarantines
// mid-batch.
func (e *Engine) processResilient(i int, ws *shardState, ups []stream.Update) {
	pos := 0
	for pos < len(ups) {
		if ws.getHealth() == Quarantined {
			e.shedUpdates(ws, ups[pos:])
			return
		}
		n := len(ups) - pos
		if e.maxBatch > 0 && n > e.maxBatch {
			n = e.maxBatch
		}
		next := ws.admitted + 1 // 1-based index of the next update
		if at, ok := e.inj.Next(i, next, next+uint64(n)); ok {
			if pre := int(at - next); pre > 0 {
				// Commit the fault-free prefix first, then re-split: a
				// recovery in between may re-arm or consume triggers.
				if e.applySeg(i, ws, ups[pos:pos+pre], 0, false) {
					pos += pre
				}
				continue
			}
			// The trigger lands on the very next update: process it alone so
			// the fault fires at exactly its configured index.
			if e.applySeg(i, ws, ups[pos:pos+1], at, true) {
				pos++
			}
			continue
		}
		if e.applySeg(i, ws, ups[pos:pos+n], 0, false) {
			pos += n
		}
	}
}

// applySeg processes one sub-batch transactionally: on success it delivers
// the staged results, logs the sub-batch for replay, and checkpoints when
// due; on panic it discards the staged results and either recovers (rebuild
// from checkpoint + replay; the caller retries the sub-batch) or
// quarantines. Returns whether the sub-batch committed.
func (e *Engine) applySeg(i int, ws *shardState, seg []stream.Update, fireAt uint64, fire bool) bool {
	err := e.tryProcess(i, seg, fireAt, fire)
	if _, deg := e.shards[i].DurabilityStats(); deg {
		ws.durDegraded.Store(true)
	}
	if err == nil {
		e.deliverStage(ws)
		ws.wal = append(ws.wal, seg...)
		ws.sinceCkpt += len(seg)
		ws.admitted += uint64(len(seg))
		ws.done.Add(int64(len(seg)))
		ws.beat.Add(1)
		if e.ckptEvery > 0 && ws.sinceCkpt >= e.ckptEvery {
			e.takeCheckpoint(i, ws)
		}
		return true
	}
	ws.stage = ws.stage[:0]
	ws.lastErr.Store(err.Error())
	if e.ckptEvery <= 0 || int(ws.recoveries.Load()) >= e.maxRecoveries {
		ws.setHealth(Quarantined)
		return false
	}
	ws.setHealth(Recovering)
	if rerr := e.rebuild(i, ws); rerr != nil {
		ws.lastErr.Store(rerr.Error())
		ws.setHealth(Quarantined)
		return false
	}
	ws.recoveries.Add(1)
	ws.fragileFlag.Store(true)
	ws.setHealth(Degraded)
	ws.beat.Add(1)
	return false
}

// tryProcess runs one sub-batch under a recover barrier. An armed fault
// fires before the sub-batch (matching the injector's "before the nth
// update" contract); a Collapse fault zeroes the shard's cache budget.
func (e *Engine) tryProcess(i int, seg []stream.Update, fireAt uint64, fire bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard %d: panic: %v", i, r)
		}
	}()
	if fire {
		if e.inj.Fire(i, fireAt) {
			e.shards[i].SetMemoryBudget(0)
		}
	}
	e.shards[i].ProcessBatch(seg)
	return nil
}

// deliverStage hands the committed sub-batch's staged results to the user
// callback, each panic-contained.
func (e *Engine) deliverStage(ws *shardState) {
	if len(ws.stage) == 0 {
		return
	}
	e.resMu.Lock()
	for _, s := range ws.stage {
		e.safeCall(s.insert, s.vals)
	}
	e.resMu.Unlock()
	ws.stage = ws.stage[:0]
}

// attachSink wires a shard engine's result callback to the shard's stage
// buffer (muted during checkpoint replay, whose results were already
// delivered before the crash).
func (e *Engine) attachSink(i int, en *core.Engine) {
	ws := e.states[i]
	en.OnResult(func(ins bool, vals []tuple.Value) {
		if ws.mute {
			return
		}
		ws.stage = append(ws.stage, staged{insert: ins, vals: vals})
	})
}

// takeCheckpoint captures the shard's windows and counters. The stored
// snapshot is made cumulative from the stream start (folding in snapBase) so
// repeated recoveries from the same checkpoint never double-count.
func (e *Engine) takeCheckpoint(i int, ws *shardState) {
	ck := e.shards[i].Checkpoint()
	ck.Snap.AddSnapshot(ws.snapBase)
	ws.ckpt = ck
	ws.wal = ws.wal[:0]
	ws.sinceCkpt = 0
	if ws.fragileFlag.Load() {
		// A clean checkpoint after recovery: the shard is whole again.
		ws.fragileFlag.Store(false)
		ws.health.CompareAndSwap(int32(Degraded), int32(Healthy))
	}
}

// rebuild replaces a panicked shard engine: a fresh engine from the factory,
// windows restored from the last checkpoint, and the replay log reapplied
// with result delivery muted. The rebuilt engine starts cache-cold — the
// paper's consistency-without-completeness property makes that exact, just
// temporarily slower.
func (e *Engine) rebuild(i int, ws *shardState) error {
	// Close the panicked engine before building its replacement: with tiering
	// enabled both own the same spill paths, and the old engine's Close would
	// otherwise delete the files the new engine just created. Close is
	// idempotent, so the worker's deferred Close stays safe even when the
	// rebuild fails below and the slot keeps the closed engine.
	e.shards[i].Close()
	en, err := e.mk(i)
	if err != nil {
		return err
	}
	if err := en.RestoreWindows(ws.ckpt); err != nil {
		en.Close()
		return err
	}
	if ws.ckpt != nil {
		base := ws.ckpt.Snap
		base.CacheMemoryBytes = 0 // a dead engine's gauge must not linger
		base.FilterBytes = 0      // likewise
		base.TierHotBytes = 0
		base.TierColdBytes = 0
		ws.snapBase = base
	} else {
		ws.snapBase = core.Snapshot{}
	}
	if e.userCB != nil {
		e.attachSink(i, en)
	}
	e.shards[i] = en
	if len(ws.wal) > 0 {
		ws.mute = true
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("shard %d: replay panic: %v", i, r)
				}
			}()
			en.ProcessBatch(ws.wal)
			return nil
		}()
		ws.mute = false
		if err != nil {
			return err
		}
	}
	ws.sinceCkpt = len(ws.wal)
	return nil
}

// shedUpdates drops a quarantined shard's input, keeping the counters (and
// the flush barrier) honest.
func (e *Engine) shedUpdates(ws *shardState, ups []stream.Update) {
	for _, u := range ups {
		e.countShed(u.Rel)
	}
	ws.shed.Add(uint64(len(ups)))
	ws.done.Add(int64(len(ups)))
	ws.beat.Add(1)
}

// watchdog flags shards that stop draining a non-empty mailbox for longer
// than the stall threshold, and clears the flag when progress resumes. It
// never touches worker state — it only moves Healthy ↔ Degraded, so a panic
// recovery in flight (Recovering / Quarantined) is left alone.
func (e *Engine) watchdog(stall time.Duration) {
	defer e.wg.Done()
	type obs struct {
		beat    uint64
		since   time.Time
		flagged bool
	}
	last := make([]obs, len(e.states))
	now := time.Now()
	for i := range last {
		last[i] = obs{beat: e.states[i].beat.Load(), since: now}
	}
	tick := stall / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopWatch:
			return
		case now = <-ticker.C:
		}
		for i, ws := range e.states {
			beat := ws.beat.Load()
			if beat != last[i].beat {
				last[i] = obs{beat: beat, since: now, flagged: false}
				if ws.getHealth() == Degraded && !ws.fragileFlag.Load() {
					// Stall cleared and the shard is not post-recovery
					// fragile: back to healthy.
					ws.health.CompareAndSwap(int32(Degraded), int32(Healthy))
				}
				continue
			}
			if !last[i].flagged && ws.pending() > 0 && now.Sub(last[i].since) >= stall {
				last[i].flagged = true
				ws.health.CompareAndSwap(int32(Healthy), int32(Degraded))
			}
		}
	}
}
