package query

import (
	"testing"

	"acache/internal/tuple"
)

func chain3(t *testing.T) *Query {
	t.Helper()
	q, err := New(
		[]*tuple.Schema{
			tuple.RelationSchema(0, "A"),
			tuple.RelationSchema(1, "A", "B"),
			tuple.RelationSchema(2, "B"),
		},
		[]Pred{
			{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
			{Left: tuple.Attr{Rel: 1, Name: "B"}, Right: tuple.Attr{Rel: 2, Name: "B"}},
		},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return q
}

func clique4(t *testing.T) *Query {
	t.Helper()
	schemas := make([]*tuple.Schema, 4)
	var preds []Pred
	for i := range schemas {
		schemas[i] = tuple.RelationSchema(i, "A")
		if i > 0 {
			// Chain-written predicates; transitivity must merge them.
			preds = append(preds, Pred{
				Left:  tuple.Attr{Rel: i - 1, Name: "A"},
				Right: tuple.Attr{Rel: i, Name: "A"},
			})
		}
	}
	q, err := New(schemas, preds)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return q
}

func TestEquivalenceClasses(t *testing.T) {
	q := chain3(t)
	if q.NumClasses() != 2 {
		t.Fatalf("classes = %d, want 2 (A and B)", q.NumClasses())
	}
	ca, _ := q.ClassOf(tuple.Attr{Rel: 0, Name: "A"})
	cb, _ := q.ClassOf(tuple.Attr{Rel: 2, Name: "B"})
	if ca == cb {
		t.Fatal("A and B merged")
	}
	if c1, _ := q.ClassOf(tuple.Attr{Rel: 1, Name: "A"}); c1 != ca {
		t.Fatal("R1.A and R2.A must share a class")
	}
	if _, ok := q.ClassOf(tuple.Attr{Rel: 0, Name: "Z"}); ok {
		t.Fatal("unknown attribute has a class")
	}
}

func TestTransitiveClosureMergesChain(t *testing.T) {
	q := clique4(t)
	if q.NumClasses() != 1 {
		t.Fatalf("chain-written clique: classes = %d, want 1", q.NumClasses())
	}
	if len(q.ClassAttrs(0)) != 4 {
		t.Fatalf("class members = %v", q.ClassAttrs(0))
	}
}

func TestSharedClasses(t *testing.T) {
	q := chain3(t)
	// {R1} vs {R2,R3}: both A (via R2) and B (via R2,R3)? R1 only has A.
	got := q.SharedClasses([]int{0}, []int{1, 2})
	if len(got) != 1 {
		t.Fatalf("shared({R1},{R2,R3}) = %v, want just class A", got)
	}
	// {R1,R2} vs {R3}: class B crosses.
	got = q.SharedClasses([]int{0, 1}, []int{2})
	cb, _ := q.ClassOf(tuple.Attr{Rel: 2, Name: "B"})
	if len(got) != 1 || got[0] != cb {
		t.Fatalf("shared({R1,R2},{R3}) = %v, want [%d]", got, cb)
	}
	// Disjoint crossing: {R1} vs {R3} share nothing.
	if got = q.SharedClasses([]int{0}, []int{2}); len(got) != 0 {
		t.Fatalf("shared({R1},{R3}) = %v, want none", got)
	}
}

func TestRelClassesAndAttrs(t *testing.T) {
	q := chain3(t)
	if got := q.RelClasses(1); len(got) != 2 {
		t.Fatalf("R2 classes = %v", got)
	}
	ca, _ := q.ClassOf(tuple.Attr{Rel: 1, Name: "A"})
	if names := q.ClassAttrsOf(1, ca); len(names) != 1 || names[0] != "A" {
		t.Fatalf("R2 attrs of class A = %v", names)
	}
	if names := q.ClassAttrsOf(0, ca); len(names) != 1 || names[0] != "A" {
		t.Fatalf("R1 attrs of class A = %v", names)
	}
}

func TestRepresentativeCols(t *testing.T) {
	q := chain3(t)
	s := q.Schema(0).Concat(q.Schema(1)) // (R1.A, R2.A, R2.B)
	ca, _ := q.ClassOf(tuple.Attr{Rel: 0, Name: "A"})
	cb, _ := q.ClassOf(tuple.Attr{Rel: 1, Name: "B"})
	cols := q.RepresentativeCols(s, []int{ca, cb})
	if cols[0] != 0 && cols[0] != 1 {
		t.Fatalf("class A representative col = %d", cols[0])
	}
	if cols[1] != 2 {
		t.Fatalf("class B representative col = %d", cols[1])
	}
}

func TestRepresentativeColsPanicsWhenAbsent(t *testing.T) {
	q := chain3(t)
	cb, _ := q.ClassOf(tuple.Attr{Rel: 2, Name: "B"})
	defer func() {
		if recover() == nil {
			t.Fatal("must panic for class absent from schema")
		}
	}()
	q.RepresentativeCols(q.Schema(0), []int{cb})
}

func TestValidationErrors(t *testing.T) {
	a := tuple.RelationSchema(0, "A")
	b := tuple.RelationSchema(1, "A")
	if _, err := New([]*tuple.Schema{a}, nil); err == nil {
		t.Fatal("single relation accepted")
	}
	if _, err := New([]*tuple.Schema{a, b}, []Pred{
		{Left: tuple.Attr{Rel: 0, Name: "Z"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
	}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := New([]*tuple.Schema{a, b}, []Pred{
		{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 5, Name: "A"}},
	}); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := New([]*tuple.Schema{a, b}, nil); err == nil {
		t.Fatal("disconnected join graph accepted")
	}
	c := tuple.RelationSchema(2, "A", "B")
	if _, err := New([]*tuple.Schema{a, b, c}, []Pred{
		{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
		{Left: tuple.Attr{Rel: 2, Name: "A"}, Right: tuple.Attr{Rel: 2, Name: "B"}},
	}); err == nil {
		t.Fatal("self-join predicate accepted")
	}
}

func TestPredsRoundTrip(t *testing.T) {
	q := chain3(t)
	if len(q.Preds()) != 2 {
		t.Fatalf("preds = %v", q.Preds())
	}
	if q.N() != 3 {
		t.Fatalf("N = %d", q.N())
	}
}
