// Package query models the continuous n-way equijoin: relation schemas plus
// equality predicates, closed under transitivity into attribute equivalence
// classes.
//
// The paper assumes equijoins R_i.attr_j = R_k.attr_l (Section 3.1) and its
// shared-cache definition (Example 4.2) treats transitively equated
// attributes as one join attribute — e.g. the n-way join on A has a single
// join attribute A even when predicates are written as a chain. We therefore
// canonicalize predicates into equivalence classes: a join operator joining a
// new relation to a pipeline prefix enforces, for every class shared between
// them, equality on that class's value. This guarantees that within any
// composite tuple all attributes of one class carry the same value, which is
// what makes cache keys well-defined and shareable across pipelines.
package query

import (
	"fmt"
	"sort"

	"acache/internal/tuple"
)

// Pred is an equality predicate between two base-relation attributes.
type Pred struct {
	Left, Right tuple.Attr
}

func (p Pred) String() string { return fmt.Sprintf("%v = %v", p.Left, p.Right) }

// CmpOp is a non-equality comparison operator for theta predicates.
type CmpOp int

// Comparison operators. Equality is not among them: equalities form the
// attribute equivalence classes and drive hash indexes and cache keys;
// theta predicates are residual filters.
const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Ne
)

func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Ne:
		return "!="
	default:
		return "?"
	}
}

// Eval applies the comparison to two values.
func (op CmpOp) Eval(a, b tuple.Value) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	case Ne:
		return a != b
	default:
		return false
	}
}

// ThetaPred is a non-equality join predicate between attributes of two
// different relations — an extension beyond the paper's equijoin setting
// (Section 3.1 assumes equijoins "for clarity of presentation"). Theta
// predicates are evaluated as residual filters by the join operators as
// soon as both sides are present in a composite tuple; they form no cache
// keys and candidate caches whose probe would bypass one are excluded by
// the planner.
type ThetaPred struct {
	Left  tuple.Attr
	Op    CmpOp
	Right tuple.Attr
}

func (p ThetaPred) String() string { return fmt.Sprintf("%v %v %v", p.Left, p.Op, p.Right) }

// Query is an n-way equijoin over windowed relations, optionally carrying
// residual theta predicates.
type Query struct {
	schemas []*tuple.Schema
	preds   []Pred
	thetas  []ThetaPred

	classOf    map[tuple.Attr]int
	classAttrs [][]tuple.Attr // class id -> member attributes, sorted
}

// New validates the schemas and predicates and computes attribute
// equivalence classes. Every predicate attribute must exist in its relation's
// schema, and every relation must be connected to the rest of the join graph
// (the paper's plans never contain cross products by construction; the
// executor still supports degenerate classes via scans, but an entirely
// disconnected relation is almost always a specification bug).
func New(schemas []*tuple.Schema, preds []Pred) (*Query, error) {
	if len(schemas) < 2 {
		return nil, fmt.Errorf("query: need at least 2 relations, got %d", len(schemas))
	}
	q := &Query{schemas: schemas, preds: append([]Pred(nil), preds...), classOf: make(map[tuple.Attr]int)}

	// Union-find over predicate attributes.
	parent := make(map[tuple.Attr]tuple.Attr)
	var find func(a tuple.Attr) tuple.Attr
	find = func(a tuple.Attr) tuple.Attr {
		if parent[a] != a {
			parent[a] = find(parent[a])
		}
		return parent[a]
	}
	add := func(a tuple.Attr) error {
		if a.Rel < 0 || a.Rel >= len(schemas) {
			return fmt.Errorf("query: predicate attribute %v references unknown relation", a)
		}
		if _, ok := schemas[a.Rel].ColOf(a); !ok {
			return fmt.Errorf("query: predicate attribute %v not in schema %v", a, schemas[a.Rel])
		}
		if _, ok := parent[a]; !ok {
			parent[a] = a
		}
		return nil
	}
	for _, p := range preds {
		if err := add(p.Left); err != nil {
			return nil, err
		}
		if err := add(p.Right); err != nil {
			return nil, err
		}
		if p.Left.Rel == p.Right.Rel {
			return nil, fmt.Errorf("query: self-join predicate %v not supported", p)
		}
		ra, rb := find(p.Left), find(p.Right)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Assign dense class ids in a canonical (sorted-root) order so class ids
	// are stable across runs.
	roots := make(map[tuple.Attr][]tuple.Attr)
	for a := range parent {
		r := find(a)
		roots[r] = append(roots[r], a)
	}
	sortedRoots := make([]tuple.Attr, 0, len(roots))
	for r := range roots {
		sortedRoots = append(sortedRoots, r)
	}
	sort.Slice(sortedRoots, func(i, j int) bool { return attrLess(sortedRoots[i], sortedRoots[j]) })
	for _, r := range sortedRoots {
		members := roots[r]
		sort.Slice(members, func(i, j int) bool { return attrLess(members[i], members[j]) })
		id := len(q.classAttrs)
		q.classAttrs = append(q.classAttrs, members)
		for _, a := range members {
			q.classOf[a] = id
		}
	}

	// Connectivity check over the join graph induced by classes.
	if err := q.checkConnected(); err != nil {
		return nil, err
	}
	return q, nil
}

// NewWithThetas builds a query carrying residual theta predicates alongside
// the equijoins. Every theta attribute must exist in its relation's schema
// and the two sides must name different relations; the equijoin graph alone
// must still connect every relation (thetas are filters, not join paths —
// a theta-only connection would force cross products).
func NewWithThetas(schemas []*tuple.Schema, preds []Pred, thetas []ThetaPred) (*Query, error) {
	q, err := New(schemas, preds)
	if err != nil {
		return nil, err
	}
	for _, t := range thetas {
		for _, a := range []tuple.Attr{t.Left, t.Right} {
			if a.Rel < 0 || a.Rel >= len(schemas) {
				return nil, fmt.Errorf("query: theta attribute %v references unknown relation", a)
			}
			if _, ok := schemas[a.Rel].ColOf(a); !ok {
				return nil, fmt.Errorf("query: theta attribute %v not in schema %v", a, schemas[a.Rel])
			}
		}
		if t.Left.Rel == t.Right.Rel {
			return nil, fmt.Errorf("query: theta predicate %v must span two relations", t)
		}
	}
	q.thetas = append([]ThetaPred(nil), thetas...)
	return q, nil
}

// Thetas returns the residual theta predicates.
func (q *Query) Thetas() []ThetaPred { return append([]ThetaPred(nil), q.thetas...) }

// ThetasBetween returns the theta predicates with one side in setA and the
// other in setB.
func (q *Query) ThetasBetween(setA, setB []int) []ThetaPred {
	inA, inB := make(map[int]bool), make(map[int]bool)
	for _, r := range setA {
		inA[r] = true
	}
	for _, r := range setB {
		inB[r] = true
	}
	var out []ThetaPred
	for _, t := range q.thetas {
		if (inA[t.Left.Rel] && inB[t.Right.Rel]) || (inB[t.Left.Rel] && inA[t.Right.Rel]) {
			out = append(out, t)
		}
	}
	return out
}

func attrLess(a, b tuple.Attr) bool {
	if a.Rel != b.Rel {
		return a.Rel < b.Rel
	}
	return a.Name < b.Name
}

func (q *Query) checkConnected() error {
	n := len(q.schemas)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, members := range q.classAttrs {
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				adj[members[x].Rel][members[y].Rel] = true
				adj[members[y].Rel][members[x].Rel] = true
			}
		}
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for w := 0; w < n; w++ {
			if adj[v][w] && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("query: relation R%d is disconnected from the join graph", i+1)
		}
	}
	return nil
}

// N returns the number of joining relations.
func (q *Query) N() int { return len(q.schemas) }

// Schema returns relation rel's schema.
func (q *Query) Schema(rel int) *tuple.Schema { return q.schemas[rel] }

// Preds returns the original predicate list.
func (q *Query) Preds() []Pred { return append([]Pred(nil), q.preds...) }

// NumClasses returns the number of attribute equivalence classes.
func (q *Query) NumClasses() int { return len(q.classAttrs) }

// ClassOf returns the equivalence class of attribute a, or ok=false when a
// participates in no predicate.
func (q *Query) ClassOf(a tuple.Attr) (int, bool) {
	c, ok := q.classOf[a]
	return c, ok
}

// ClassAttrs returns the member attributes of class c, sorted canonically.
func (q *Query) ClassAttrs(c int) []tuple.Attr {
	return append([]tuple.Attr(nil), q.classAttrs[c]...)
}

// RelClasses returns the sorted class ids having at least one attribute in
// relation rel.
func (q *Query) RelClasses(rel int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, members := range q.classAttrs {
		for _, a := range members {
			if a.Rel == rel {
				c := q.classOf[a]
				if !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// ClassAttrsOf returns relation rel's attribute names in class c, sorted.
func (q *Query) ClassAttrsOf(rel, c int) []string {
	var out []string
	for _, a := range q.classAttrs[c] {
		if a.Rel == rel {
			out = append(out, a.Name)
		}
	}
	sort.Strings(out)
	return out
}

// SharedClasses returns the sorted class ids shared between any relation in
// setA and any relation in setB. These are the join attributes the executor
// enforces when joining across the two sets, and — for a cache whose prefix
// is setA and segment is setB — the cache key K_ijk (Section 3.2).
func (q *Query) SharedClasses(setA, setB []int) []int {
	inA, inB := make(map[int]bool), make(map[int]bool)
	for _, r := range setA {
		inA[r] = true
	}
	for _, r := range setB {
		inB[r] = true
	}
	var out []int
	for c, members := range q.classAttrs {
		hasA, hasB := false, false
		for _, a := range members {
			if inA[a.Rel] {
				hasA = true
			}
			if inB[a.Rel] {
				hasB = true
			}
		}
		if hasA && hasB {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// RepresentativeCols returns, for each class in classes, the column in schema
// s holding that class's value (any member attribute present in s — they all
// carry equal values inside a valid composite tuple). It panics if a class
// has no attribute in s; callers only ask for classes they know are present.
func (q *Query) RepresentativeCols(s *tuple.Schema, classes []int) []int {
	cols := make([]int, len(classes))
	for i, c := range classes {
		found := false
		for _, a := range q.classAttrs[c] {
			if col, ok := s.ColOf(a); ok {
				cols[i] = col
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("query: class %d has no attribute in schema %v", c, s))
		}
	}
	return cols
}
