// Package lp provides a small dense two-phase primal simplex solver for the
// linear relaxation of the cache-selection integer program (Appendix B).
//
// Problems are given in the form
//
//	minimize  cᵀx
//	subject to A_eq x = b_eq, A_ub x ≤ b_ub, 0 ≤ x ≤ ub
//
// which is all the cache-selection LP needs: coverage equalities
// Σ_{c∋p} x_c = 1, group-activation inequalities x_c − z_r ≤ 0, and [0,1]
// bounds. Sizes are tiny (tens of variables), so a dense tableau with
// Bland's rule is entirely adequate and immune to cycling.
package lp

import (
	"errors"
	"math"
)

// Problem is a linear program in the package's canonical form.
type Problem struct {
	C     []float64   // objective coefficients, length n
	AEq   [][]float64 // equality rows, each length n
	BEq   []float64
	AUb   [][]float64 // inequality rows (≤), each length n
	BUb   []float64
	Upper []float64 // per-variable upper bounds (math.Inf(1) for none)
}

// ErrInfeasible is returned when no feasible point exists.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: unbounded")

const eps = 1e-9

// Solve minimizes the problem, returning the optimal x and objective value.
func Solve(p Problem) ([]float64, float64, error) {
	n := len(p.C)
	// Convert upper bounds to inequality rows.
	aub := append([][]float64(nil), p.AUb...)
	bub := append([]float64(nil), p.BUb...)
	for j, u := range p.Upper {
		if math.IsInf(u, 1) {
			continue
		}
		row := make([]float64, n)
		row[j] = 1
		aub = append(aub, row)
		bub = append(bub, u)
	}
	me, mu := len(p.AEq), len(aub)
	m := me + mu
	// Tableau variables: n structural + mu slacks + m artificials.
	total := n + mu + m
	// Rows: m constraints + 2 objective rows (phase-2 cost, phase-1 cost).
	t := make([][]float64, m+2)
	for i := range t {
		t[i] = make([]float64, total+1)
	}
	basis := make([]int, m)
	for i := 0; i < me; i++ {
		copy(t[i], p.AEq[i])
		rhs := p.BEq[i]
		if rhs < 0 {
			for j := 0; j < n; j++ {
				t[i][j] = -t[i][j]
			}
			rhs = -rhs
		}
		t[i][n+mu+i] = 1
		t[i][total] = rhs
		basis[i] = n + mu + i
	}
	for i := 0; i < mu; i++ {
		r := me + i
		copy(t[r], aub[i])
		rhs := bub[i]
		slackSign := 1.0
		if rhs < 0 {
			for j := 0; j < n; j++ {
				t[r][j] = -t[r][j]
			}
			rhs = -rhs
			slackSign = -1
		}
		t[r][n+i] = slackSign
		t[r][n+mu+r] = 1
		t[r][total] = rhs
		basis[r] = n + mu + r
	}
	costRow := m // phase-2 objective
	phase1Row := m + 1
	for j := 0; j < n; j++ {
		t[costRow][j] = p.C[j]
	}
	// Phase-1 objective: sum of artificials (cost 1 each), then reduce by
	// the basic rows so basic (artificial) columns read zero.
	for i := 0; i < m; i++ {
		t[phase1Row][n+mu+i] = 1
	}
	for i := 0; i < m; i++ {
		for j := 0; j <= total; j++ {
			t[phase1Row][j] -= t[i][j]
		}
	}
	if err := iterate(t, basis, phase1Row, n+mu+m); err != nil {
		return nil, 0, err
	}
	if t[phase1Row][total] < -1e-7 {
		return nil, 0, ErrInfeasible
	}
	// Drive remaining artificial variables out of the basis where possible.
	for i := 0; i < m; i++ {
		if basis[i] < n+mu {
			continue
		}
		pivoted := false
		for j := 0; j < n+mu; j++ {
			if math.Abs(t[i][j]) > eps {
				pivot(t, basis, i, j)
				pivoted = true
				break
			}
		}
		if !pivoted && math.Abs(t[i][total]) > 1e-7 {
			return nil, 0, ErrInfeasible
		}
	}
	// Phase 2: forbid artificial columns by restricting the column range.
	if err := iterate(t, basis, costRow, n+mu); err != nil {
		return nil, 0, err
	}
	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = t[i][len(t[i])-1]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return x, obj, nil
}

// iterate runs simplex pivots on the given objective row until optimal,
// considering only columns < limit for entering variables. Bland's rule
// (lowest-index entering and leaving) prevents cycling.
func iterate(t [][]float64, basis []int, objRow, limit int) error {
	m := len(basis)
	rhsCol := len(t[0]) - 1
	for iter := 0; iter < 10000; iter++ {
		enter := -1
		for j := 0; j < limit; j++ {
			if t[objRow][j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return nil
		}
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][rhsCol] / t[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return ErrUnbounded
		}
		pivot(t, basis, leave, enter)
	}
	return errors.New("lp: iteration limit exceeded")
}

func pivot(t [][]float64, basis []int, row, col int) {
	pv := t[row][col]
	for j := range t[row] {
		t[row][j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if math.Abs(f) < eps {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * t[row][j]
		}
	}
	basis[row] = col
}
