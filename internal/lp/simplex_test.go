package lp

import (
	"math"
	"testing"
)

func solveOK(t *testing.T, p Problem) ([]float64, float64) {
	t.Helper()
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return x, obj
}

func TestSimpleEquality(t *testing.T) {
	// min x1 + 2 x2 s.t. x1 + x2 = 1, x ≥ 0 → x = (1,0), obj 1.
	x, obj := solveOK(t, Problem{
		C:     []float64{1, 2},
		AEq:   [][]float64{{1, 1}},
		BEq:   []float64{1},
		Upper: []float64{math.Inf(1), math.Inf(1)},
	})
	if math.Abs(obj-1) > 1e-7 || math.Abs(x[0]-1) > 1e-7 {
		t.Fatalf("x=%v obj=%v, want x1=1 obj=1", x, obj)
	}
}

func TestInequalityAndBounds(t *testing.T) {
	// max 3x+2y s.t. x+y ≤ 4, x ≤ 2, y ≤ 3 → min −3x−2y → x=2,y=2, obj −10.
	x, obj := solveOK(t, Problem{
		C:     []float64{-3, -2},
		AUb:   [][]float64{{1, 1}},
		BUb:   []float64{4},
		Upper: []float64{2, 3},
	})
	if math.Abs(obj+10) > 1e-7 {
		t.Fatalf("x=%v obj=%v, want obj=-10", x, obj)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// A classic degenerate instance; Bland's rule must terminate.
	_, obj := solveOK(t, Problem{
		C:     []float64{-0.75, 150, -0.02, 6},
		AUb:   [][]float64{{0.25, -60, -0.04, 9}, {0.5, -90, -0.02, 3}, {0, 0, 1, 0}},
		BUb:   []float64{0, 0, 1},
		Upper: []float64{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)},
	})
	if math.Abs(obj+0.05) > 1e-6 {
		t.Fatalf("obj=%v, want -0.05", obj)
	}
}

func TestInfeasible(t *testing.T) {
	_, _, err := Solve(Problem{
		C:     []float64{1},
		AEq:   [][]float64{{1}},
		BEq:   []float64{2},
		Upper: []float64{1},
	})
	if err != ErrInfeasible {
		t.Fatalf("err=%v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	_, _, err := Solve(Problem{
		C:     []float64{-1},
		Upper: []float64{math.Inf(1)},
	})
	if err != ErrUnbounded {
		t.Fatalf("err=%v, want ErrUnbounded", err)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. −x ≤ −2 (i.e. x ≥ 2) → x = 2.
	x, obj := solveOK(t, Problem{
		C:     []float64{1},
		AUb:   [][]float64{{-1}},
		BUb:   []float64{-2},
		Upper: []float64{math.Inf(1)},
	})
	if math.Abs(obj-2) > 1e-7 || math.Abs(x[0]-2) > 1e-7 {
		t.Fatalf("x=%v obj=%v, want 2", x, obj)
	}
}

func TestCoverageLPShape(t *testing.T) {
	// A miniature of the cache-selection LP: two operators, one cache
	// covering both (cost 3 incl. group) vs. two operator pseudo-caches
	// (costs 2 and 2). Optimal fractional = integral: take the cache.
	// Variables: x_cache, x_op1, x_op2, z_group.
	x, obj := solveOK(t, Problem{
		C: []float64{2, 2, 2, 1}, // proc(cache)=2, ops 2+2, group cost 1
		AEq: [][]float64{
			{1, 1, 0, 0}, // op1 covered once
			{1, 0, 1, 0}, // op2 covered once
		},
		BEq: []float64{1, 1},
		AUb: [][]float64{
			{1, 0, 0, -1}, // x_cache ≤ z
		},
		BUb:   []float64{0},
		Upper: []float64{1, 1, 1, 1},
	})
	if math.Abs(obj-3) > 1e-7 || math.Abs(x[0]-1) > 1e-7 {
		t.Fatalf("x=%v obj=%v, want cache chosen obj=3", x, obj)
	}
}
