package tuple

import "testing"

func TestSchemaBasics(t *testing.T) {
	s := RelationSchema(1, "A", "B")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Col(0) != (Attr{Rel: 1, Name: "A"}) {
		t.Fatalf("Col(0) = %v", s.Col(0))
	}
	if i, ok := s.ColOf(Attr{Rel: 1, Name: "B"}); !ok || i != 1 {
		t.Fatalf("ColOf(B) = %d, %v", i, ok)
	}
	if _, ok := s.ColOf(Attr{Rel: 0, Name: "A"}); ok {
		t.Fatal("ColOf found attribute of wrong relation")
	}
	if !s.Has(1) || s.Has(0) {
		t.Fatal("Has wrong")
	}
}

func TestSchemaConcat(t *testing.T) {
	a := RelationSchema(0, "A")
	b := RelationSchema(1, "A", "B")
	c := a.Concat(b)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.MustColOf(Attr{Rel: 1, Name: "B"}) != 2 {
		t.Fatal("concat column positions wrong")
	}
	rels := c.Relations()
	if len(rels) != 2 || rels[0] != 0 || rels[1] != 1 {
		t.Fatalf("Relations = %v", rels)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attribute must panic")
		}
	}()
	NewSchema(Attr{Rel: 0, Name: "A"}, Attr{Rel: 0, Name: "A"})
}

func TestMustColOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustColOf on absent attribute must panic")
		}
	}()
	RelationSchema(0, "A").MustColOf(Attr{Rel: 3, Name: "Z"})
}

func TestSchemaProject(t *testing.T) {
	s := RelationSchema(2, "X", "Y", "Z")
	cols := s.Project([]Attr{{Rel: 2, Name: "Z"}, {Rel: 2, Name: "X"}})
	if len(cols) != 2 || cols[0] != 2 || cols[1] != 0 {
		t.Fatalf("Project = %v", cols)
	}
}

func TestSchemaString(t *testing.T) {
	if s := RelationSchema(0, "A").String(); s != "(R1.A)" {
		t.Fatalf("String = %q", s)
	}
}
