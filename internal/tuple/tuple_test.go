package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConcatAndClone(t *testing.T) {
	a := Tuple{1, 2}
	b := Tuple{3}
	c := a.Concat(b)
	if !c.Equal(Tuple{1, 2, 3}) {
		t.Fatalf("concat = %v", c)
	}
	// Concat must not alias its inputs.
	c[0] = 9
	if a[0] != 1 {
		t.Fatal("concat aliased input")
	}
	d := a.Clone()
	d[1] = 7
	if a[1] != 2 {
		t.Fatal("clone aliased input")
	}
}

func TestEqual(t *testing.T) {
	if !(Tuple{1, 2}).Equal(Tuple{1, 2}) {
		t.Fatal("equal tuples not equal")
	}
	if (Tuple{1, 2}).Equal(Tuple{1, 2, 3}) {
		t.Fatal("different lengths equal")
	}
	if (Tuple{1, 2}).Equal(Tuple{1, 3}) {
		t.Fatal("different values equal")
	}
	if !(Tuple{}).Equal(Tuple{}) {
		t.Fatal("empty tuples not equal")
	}
}

func TestString(t *testing.T) {
	if s := (Tuple{1, 1, 2, 2}).String(); s != "<1, 1, 2, 2>" {
		t.Fatalf("String = %q", s)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		k := KeyOfValues(vals)
		got := k.Values()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyOfColumnOrderMatters(t *testing.T) {
	tup := Tuple{10, 20}
	if KeyOf(tup, []int{0, 1}) == KeyOf(tup, []int{1, 0}) {
		t.Fatal("key must depend on column order")
	}
}

func TestKeyOfMatchesKeyOfValues(t *testing.T) {
	tup := Tuple{5, -3, 12}
	if KeyOf(tup, []int{2, 0}) != KeyOfValues([]Value{12, 5}) {
		t.Fatal("KeyOf and KeyOfValues disagree")
	}
}

func TestEncodeDistinguishesTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := make(map[Key]Tuple)
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(4)
		tup := make(Tuple, n)
		for j := range tup {
			tup[j] = rng.Int63n(50)
		}
		k := Encode(tup)
		if prev, ok := seen[k]; ok && !prev.Equal(tup) {
			t.Fatalf("encoding collision: %v and %v", prev, tup)
		}
		seen[k] = tup
	}
}

func TestNegativeValuesRoundTrip(t *testing.T) {
	vals := []Value{-1, -(1 << 62), 0}
	got := KeyOfValues(vals).Values()
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("negative round-trip: got %v want %v", got, vals)
		}
	}
}
