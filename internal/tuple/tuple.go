// Package tuple defines the value, tuple, schema, and key primitives shared
// by every layer of the stream-join engine.
//
// All join attributes are int64 values (the paper's experiments use integer
// equijoin attributes drawn from synthetic domains). A Tuple is an immutable
// flat slice of values; composite tuples produced by join pipelines are
// concatenations of base-relation tuples, with a Schema describing which
// columns belong to which relation.
package tuple

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Value is a single attribute value.
type Value = int64

// Tuple is a flat, immutable sequence of attribute values. Composite tuples
// produced during join processing concatenate the values of their source
// tuples in pipeline order.
type Tuple []Value

// Concat returns a new tuple consisting of t followed by u. Neither input is
// modified.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether t and u have identical length and values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// String renders the tuple in the paper's ⟨v1, v2, …⟩ style.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte('>')
	return b.String()
}

// Key is a packed, comparable encoding of a projection of a tuple. It is used
// as a map key by hash indexes and caches.
type Key string

// KeyOf packs the values of t at the given column positions into a Key. The
// column order is significant: the same columns in a different order produce
// a different Key, so callers must canonicalize column order when keys from
// different pipelines must match (see planner cache-key construction).
func KeyOf(t Tuple, cols []int) Key {
	buf := make([]byte, 8*len(cols))
	for i, c := range cols {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(t[c]))
	}
	return Key(buf)
}

// KeyOfValues packs raw values into a Key, matching KeyOf for the same values.
func KeyOfValues(vals []Value) Key {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return Key(buf)
}

// Values decodes the key back into its constituent values.
func (k Key) Values() []Value {
	n := len(k) / 8
	out := make([]Value, n)
	for i := 0; i < n; i++ {
		out[i] = int64(binary.LittleEndian.Uint64([]byte(k[8*i : 8*i+8])))
	}
	return out
}

// Encode packs an entire tuple into a Key. It is used by relation stores to
// locate tuples for deletion (windows deliver deletes by value).
func Encode(t Tuple) Key {
	buf := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return Key(buf)
}

// AppendKey appends the packed key of t's cols to dst and returns the
// extended buffer — the zero-allocation counterpart of KeyOf for hot paths
// that reuse a per-pipeline scratch buffer. AppendKey(dst[:0], t, cols)
// produces bytes identical to KeyOf(t, cols).
func AppendKey(dst []byte, t Tuple, cols []int) []byte {
	var w [8]byte
	for _, c := range cols {
		binary.LittleEndian.PutUint64(w[:], uint64(t[c]))
		dst = append(dst, w[:]...)
	}
	return dst
}

// AppendKeyTuple appends the packed encoding of the entire tuple to dst,
// matching Encode(t) byte for byte.
func AppendKeyTuple(dst []byte, t Tuple) []byte {
	var w [8]byte
	for _, v := range t {
		binary.LittleEndian.PutUint64(w[:], uint64(v))
		dst = append(dst, w[:]...)
	}
	return dst
}

// AppendKeyValues appends the packed encoding of raw values to dst, matching
// KeyOfValues(vals) byte for byte.
func AppendKeyValues(dst []byte, vals []Value) []byte {
	var w [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(w[:], uint64(v))
		dst = append(dst, w[:]...)
	}
	return dst
}

// Hashing: a fixed-seed multiply-xor word hash (splitmix64-style finalizer
// per value word) used by the open-addressing stores and indexes. It is
// deliberately deterministic across runs so fixed-seed workloads reproduce
// bit-identically; hash-flooding resistance is not a goal of this engine.

const (
	hashMul1 = 0xff51afd7ed558ccd
	hashMul2 = 0xc4ceb9fe1a85ec53
)

func hashWord(h, v uint64) uint64 { return MixWord(h, v) }

// HashOf returns a 64-bit hash of t's values at cols. The same values in the
// same order produce the same hash regardless of how they are supplied
// (HashOf, HashValues, or HashTuple over an equal projection).
func HashOf(t Tuple, cols []int, seed uint64) uint64 {
	h := seed
	for _, c := range cols {
		h = hashWord(h, uint64(t[c]))
	}
	return hashWord(h, uint64(len(cols)))
}

// HashValues hashes raw values, matching HashOf for the same value sequence.
func HashValues(vals []Value, seed uint64) uint64 {
	h := seed
	for _, v := range vals {
		h = hashWord(h, uint64(v))
	}
	return hashWord(h, uint64(len(vals)))
}

// HashTuple hashes the full tuple, matching HashValues(t, seed).
func HashTuple(t Tuple, seed uint64) uint64 {
	h := seed
	for _, v := range t {
		h = hashWord(h, uint64(v))
	}
	return hashWord(h, uint64(len(t)))
}

// HashKey hashes a packed key, word by word. HashKey(KeyOf(t, cols), seed)
// equals HashOf(t, cols, seed); HashBytes over the same bytes matches too.
func HashKey(k Key, seed uint64) uint64 {
	h := seed
	n := len(k) / 8
	for i := 0; i < n; i++ {
		h = hashWord(h, binary.LittleEndian.Uint64([]byte(k[8*i:8*i+8])))
	}
	return hashWord(h, uint64(n))
}

// HashBytes hashes packed key bytes, matching HashKey for equal bytes.
func HashBytes(b []byte, seed uint64) uint64 {
	h := seed
	n := len(b) / 8
	for i := 0; i < n; i++ {
		h = hashWord(h, binary.LittleEndian.Uint64(b[8*i:]))
	}
	return hashWord(h, uint64(n))
}
