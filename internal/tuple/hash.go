package tuple

import "encoding/binary"

// Shared seeded hash kernel. Every fixed-seed hash in the engine — the
// open-addressing stores and indexes (HashOf and friends in tuple.go), the
// profiler's Bloom estimators, and the execution-path fingerprint filters —
// mixes words through the same multiply-xor finalizer so one kernel serves
// them all. Two byte-level variants exist on purpose:
//
//   - HashBytes (tuple.go) consumes whole 8-byte words and folds the word
//     count in as a finalizer — the variant for packed keys, which are always
//     a multiple of 8 bytes.
//   - HashRawBytes / HashRawString below consume arbitrary-length input with
//     a zero-padded tail and *no* length finalizer — the Bloom-filter
//     variant, whose callers fold the length themselves via MixWord so the
//     two double-hashing seeds share one pass over the bytes.
//
// The raw variants must stay bit-identical to the kernel internal/bloom
// carried before it was deduplicated here: profiler estimates (and therefore
// every cached figure) depend on the exact bit patterns.

// MixWord folds one 64-bit word into hash state h with the splitmix64-style
// multiply-xor finalizer used across the engine.
func MixWord(h, v uint64) uint64 {
	h ^= v
	h *= hashMul1
	h ^= h >> 33
	h *= hashMul2
	h ^= h >> 29
	return h
}

// HashRawBytes hashes arbitrary bytes: 8-byte little-endian words with a
// zero-padded tail and no length finalizer (callers fold the length in via
// MixWord when they need it). HashRawString produces identical values for
// identical bytes.
func HashRawBytes(b []byte, seed uint64) uint64 {
	h := seed
	for len(b) >= 8 {
		h = MixWord(h, binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	n := len(b)
	if n > 0 {
		var v uint64
		for j := 0; j < n; j++ {
			v |= uint64(b[j]) << (8 * j)
		}
		h = MixWord(h, v)
	}
	return h
}

// HashRawString is HashRawBytes for a string, allocating nothing.
func HashRawString(s string, seed uint64) uint64 {
	h := seed
	i := 0
	for ; i+8 <= len(s); i += 8 {
		v := uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
		h = MixWord(h, v)
	}
	if i < len(s) {
		var v uint64
		for j := 0; i+j < len(s); j++ {
			v |= uint64(s[i+j]) << (8 * j)
		}
		h = MixWord(h, v)
	}
	return h
}
