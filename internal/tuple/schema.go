package tuple

import "fmt"

// Attr identifies an attribute of a base relation by relation index and
// attribute name, e.g. {Rel: 2, Name: "B"} is R3.B in the paper's notation
// (relations are 0-indexed internally).
type Attr struct {
	Rel  int
	Name string
}

func (a Attr) String() string { return fmt.Sprintf("R%d.%s", a.Rel+1, a.Name) }

// Schema describes the columns of a (possibly composite) tuple: for each
// column, which base-relation attribute it carries.
type Schema struct {
	cols []Attr
	// pos maps an attribute to its column, for O(1) resolution.
	pos map[Attr]int
}

// NewSchema builds a schema from an ordered list of attributes. Duplicate
// attributes are rejected: a composite tuple never carries the same base
// attribute twice because each base relation appears at most once in a
// pipeline prefix.
func NewSchema(cols ...Attr) *Schema {
	s := &Schema{cols: append([]Attr(nil), cols...), pos: make(map[Attr]int, len(cols))}
	for i, a := range cols {
		if _, dup := s.pos[a]; dup {
			panic(fmt.Sprintf("tuple: duplicate attribute %v in schema", a))
		}
		s.pos[a] = i
	}
	return s
}

// RelationSchema builds the schema of base relation rel with the given
// attribute names.
func RelationSchema(rel int, names ...string) *Schema {
	cols := make([]Attr, len(names))
	for i, n := range names {
		cols[i] = Attr{Rel: rel, Name: n}
	}
	return NewSchema(cols...)
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the attribute carried by column i.
func (s *Schema) Col(i int) Attr { return s.cols[i] }

// Cols returns a copy of the ordered column attributes.
func (s *Schema) Cols() []Attr { return append([]Attr(nil), s.cols...) }

// ColOf returns the column index of attribute a and whether it is present.
func (s *Schema) ColOf(a Attr) (int, bool) {
	i, ok := s.pos[a]
	return i, ok
}

// MustColOf is ColOf for attributes known to be present; it panics otherwise.
func (s *Schema) MustColOf(a Attr) int {
	i, ok := s.pos[a]
	if !ok {
		panic(fmt.Sprintf("tuple: attribute %v not in schema %v", a, s.cols))
	}
	return i
}

// Has reports whether any column of relation rel is present.
func (s *Schema) Has(rel int) bool {
	for _, a := range s.cols {
		if a.Rel == rel {
			return true
		}
	}
	return false
}

// Concat returns the schema of t.Concat(u) for tuples with schemas s and u.
func (s *Schema) Concat(u *Schema) *Schema {
	return NewSchema(append(s.Cols(), u.Cols()...)...)
}

// Project returns the column indexes of the given attributes, in order.
func (s *Schema) Project(attrs []Attr) []int {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = s.MustColOf(a)
	}
	return cols
}

// Relations returns the distinct relation indexes present, in column order of
// first appearance.
func (s *Schema) Relations() []int {
	seen := make(map[int]bool)
	var out []int
	for _, a := range s.cols {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			out = append(out, a.Rel)
		}
	}
	return out
}

func (s *Schema) String() string {
	out := "("
	for i, a := range s.cols {
		if i > 0 {
			out += ", "
		}
		out += a.String()
	}
	return out + ")"
}
