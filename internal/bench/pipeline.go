package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"acache/internal/core"
	"acache/internal/join"
	"acache/internal/stream"
)

// The pipeline experiment measures the wall-clock effect of staged
// pipeline-parallel execution inside a single engine: the same bursty n-way
// workload RunBatch uses, digested through ProcessBatch, with the join
// pipelines either run serially (the workers=0 baseline) or split into
// bounded-buffer stage groups. Staged execution is charge-identical to
// serial by construction — results, windows, caches, and cost-meter totals
// are bit-identical (see internal/join/staged_test.go) — so, like sharding,
// only the clock can show the overlap. On a single-core host the stage
// groups time-slice one CPU and every point collapses to ≈1× (the numbers
// then measure staging overhead, not overlap); the per-point GOMAXPROCS
// and the report's NumCPU make that visible in the JSON.

// PipelinePoint is one measured worker count. Workers=0 is the serial
// baseline the speedups are relative to.
type PipelinePoint struct {
	Workers      int     `json:"workers"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	WallSeconds  float64 `json:"wall_seconds"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// SpeedupVsSerial is this point's throughput over the workers=0 point's.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// Outputs cross-checks that staging did not change result cardinality.
	Outputs uint64 `json:"outputs"`
	// StagedShare is the fraction of measured updates that actually took the
	// staged path (pipelines with self-maintained or counted caches fall
	// back to serial execution); a low share caps the achievable speedup.
	StagedShare float64 `json:"staged_share"`
	// StageStalls counts producer stalls on full inter-stage rings —
	// backpressure from slower downstream groups.
	StageStalls uint64 `json:"stage_stalls"`
}

// PipelineReport is the full run, JSON-ready for BENCH_pipeline.json.
type PipelineReport struct {
	Relations  int             `json:"relations"`
	Window     int             `json:"window"`
	Burst      int             `json:"burst"`
	Domain     int64           `json:"domain"`
	Batch      int             `json:"batch"`
	Warmup    int             `json:"warmup_appends"`
	Measure   int             `json:"measure_appends"`
	NumCPU    int             `json:"num_cpu"`
	GoVersion string          `json:"go_version"`
	Points    []PipelinePoint `json:"points"`
}

// RunPipeline measures wall-clock throughput of a single engine at each
// staged worker count (plus the workers=0 serial baseline as the first
// point), replaying the identical stream on a fresh engine per point.
// Worker counts above runtime.NumCPU are still measured — unlike extra
// GOMAXPROCS they change the stage partitioning, so their overhead on a
// smaller host is worth recording — but cannot speed anything up there.
func RunPipeline(n int, workerCounts []int, cfg RunConfig) *PipelineReport {
	// Same workload shape as RunBatch: fan-out ≈4 per probe so the stage
	// groups have real join work to overlap, batches large enough that a
	// pass is split into several chunks in flight at once.
	rep := &PipelineReport{
		Relations: n,
		Window:    64,
		Burst:     64,
		Domain:    16,
		Batch:     256,
		Warmup:    cfg.Warmup,
		Measure:   cfg.Measure,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	rep.Points = append(rep.Points, runPipelinePoint(rep, 0, cfg))
	for _, w := range workerCounts {
		rep.Points = append(rep.Points, runPipelinePoint(rep, w, cfg))
	}
	if base := rep.Points[0].TuplesPerSec; base > 0 {
		for i := range rep.Points {
			rep.Points[i].SpeedupVsSerial = rep.Points[i].TuplesPerSec / base
		}
	}
	return rep
}

func runPipelinePoint(rep *PipelineReport, workers int, cfg RunConfig) PipelinePoint {
	q := nWayQuery(rep.Relations)
	// Steady-state configuration, as in RunBatch: the initial selection
	// installs its caches, the huge re-optimization interval keeps later
	// reopts (whose profiling phases force serial processing in both modes)
	// out of the measured window.
	cc := core.Config{
		ReoptInterval: 10_000_000,
		Seed:          cfg.Seed,
	}
	if workers > 0 {
		cc.Pipeline = join.PipelineOptions{Workers: workers}
	}
	en, err := core.NewEngine(q, nil, cc)
	if err != nil {
		panic(err)
	}
	defer en.Close()
	src := newBurstSource(rep.Relations, rep.Window, rep.Burst, rep.Domain, cfg.Seed)
	var ups = make([]stream.Update, 0, rep.Batch)
	for done := 0; done < rep.Warmup; done += rep.Batch {
		ups = src.NextBatch(rep.Batch, ups)
		en.ProcessBatch(ups)
	}
	preStaged := en.Snapshot().StagedUpdates
	start := time.Now()
	for done := 0; done < rep.Measure; done += rep.Batch {
		ups = src.NextBatch(rep.Batch, ups)
		en.ProcessBatch(ups)
	}
	wall := time.Since(start).Seconds()
	snap := en.Snapshot()
	pt := PipelinePoint{
		Workers:     workers,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		WallSeconds: wall,
		Outputs:     snap.Outputs,
		StageStalls: snap.StageStalls,
	}
	if wall > 0 {
		pt.TuplesPerSec = float64(rep.Measure) / wall
	}
	if staged := snap.StagedUpdates - preStaged; rep.Measure > 0 {
		pt.StagedShare = float64(staged) / float64(rep.Measure)
	}
	return pt
}

// JSON renders the report for BENCH_pipeline.json.
func (r *PipelineReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Experiment renders the report in the package's common table/chart form.
func (r *PipelineReport) Experiment() *Experiment {
	var x, tput, speedup, share []float64
	for _, pt := range r.Points {
		x = append(x, float64(pt.Workers))
		tput = append(tput, pt.TuplesPerSec)
		speedup = append(speedup, pt.SpeedupVsSerial)
		share = append(share, pt.StagedShare)
	}
	return &Experiment{
		ID:     "pipeline",
		Title:  "Staged pipeline parallelism (wall clock)",
		XLabel: "stage workers (0 = serial path)",
		YLabel: "appends/sec (wall)",
		Series: []Series{
			{Label: "tuples/sec", X: x, Y: tput},
			{Label: "speedup vs serial", X: x, Y: speedup},
			{Label: "staged share", X: x, Y: share},
		},
		Notes: []string{
			fmt.Sprintf("n=%d relations, window=%d, burst=%d, domain=%d, batch=%d, GOMAXPROCS=%d, NumCPU=%d, %s (wall-clock measurement)",
				r.Relations, r.Window, r.Burst, r.Domain, r.Batch,
				runtime.GOMAXPROCS(0), r.NumCPU, r.GoVersion),
		},
	}
}
