package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"acache/internal/core"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// The batch experiment measures the real (wall-clock and heap) effect of the
// engine's vectorized batch path: ProcessBatch splits its input into
// same-relation runs, groups equal-key probes (one index probe per update
// sub-batch where the key comes from the root tuple), replays duplicate
// updates wholesale, and amortizes arena resets and adaptivity bookkeeping.
// Like hotpath it steps outside the deterministic cost meter — the batch path
// is charge-identical to the per-update loop by construction, so only ns/op
// can show the effect.

// burstSource generates the batch-friendly analogue of the Fig9 n-way
// workload: an endless update stream that visits relations round-robin and,
// per visit, emits the expiry deletes of the oldest window tuples as one run
// followed by a run of fresh inserts — exactly the grouped schedule the
// window layer's AppendBatch produces. Values are uniform draws over a
// domain comparable to the window, so probe keys repeat within a run and the
// probe memos have something to share.
type burstSource struct {
	rng    *rand.Rand
	wins   [][]tuple.Tuple
	buf    []stream.Update
	pos    int
	rel    int
	nrel   int
	window int
	burst  int
	domain int64
}

func newBurstSource(nrel, window, burst int, domain, seed int64) *burstSource {
	return &burstSource{
		rng:    rand.New(rand.NewSource(seed)),
		wins:   make([][]tuple.Tuple, nrel),
		nrel:   nrel,
		window: window,
		burst:  burst,
		domain: domain,
	}
}

// refill generates the next relation visit's delete run + insert run.
func (s *burstSource) refill() {
	s.buf = s.buf[:0]
	s.pos = 0
	rel := s.rel
	s.rel = (s.rel + 1) % s.nrel
	w := s.wins[rel]
	if evict := len(w) + s.burst - s.window; evict > 0 {
		for _, t := range w[:evict] {
			s.buf = append(s.buf, stream.Update{Op: stream.Delete, Rel: rel, Tuple: t})
		}
		w = w[evict:]
	}
	for b := 0; b < s.burst; b++ {
		t := tuple.Tuple{tuple.Value(s.rng.Int63n(s.domain))}
		s.buf = append(s.buf, stream.Update{Op: stream.Insert, Rel: rel, Tuple: t})
		w = append(w, t)
	}
	s.wins[rel] = append(s.wins[rel][:0], w...)
}

// Next returns the next update of the stream.
func (s *burstSource) Next() stream.Update {
	if s.pos >= len(s.buf) {
		s.refill()
	}
	u := s.buf[s.pos]
	s.pos++
	return u
}

// NextBatch fills dst[:0] with the next n updates and returns it.
func (s *burstSource) NextBatch(n int, dst []stream.Update) []stream.Update {
	dst = dst[:0]
	for len(dst) < n {
		if s.pos >= len(s.buf) {
			s.refill()
		}
		take := len(s.buf) - s.pos
		if need := n - len(dst); take > need {
			take = need
		}
		dst = append(dst, s.buf[s.pos:s.pos+take]...)
		s.pos += take
	}
	return dst
}

// BatchPoint is one measured ingestion mode: the steady-state per-update
// cost of the bursty n-way workload, processed through ProcessBatch at the
// given batch size — or through the per-update Process loop when BatchSize
// is zero, the baseline the speedups are relative to.
type BatchPoint struct {
	BatchSize     int     `json:"batch_size"` // 0 = per-update loop
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	Iterations    int     `json:"iterations"`
	SpeedupVsLoop float64 `json:"speedup_vs_loop"`
}

// BatchReport is the full run, JSON-ready for BENCH_batch.json. GOMAXPROCS
// and NumCPU record the host the numbers were taken on — wall-clock
// measurements do not transfer across machines.
type BatchReport struct {
	Relations  int          `json:"relations"`
	Window     int          `json:"window"`
	Burst      int          `json:"burst"`
	Domain     int64        `json:"domain"`
	Warmup     int          `json:"warmup_appends"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	GoVersion  string       `json:"go_version"`
	Points     []BatchPoint `json:"points"`
}

// RunBatch measures the warm per-update cost of the bursty n-way workload
// for the per-update loop (the first point) and for ProcessBatch at each
// batch size. Every point replays the identical stream on a fresh engine.
func RunBatch(n int, batches []int, cfg RunConfig) *BatchReport {
	// Window 64 over domain 16 gives each probe a fan-out of ~4 — a join
	// selectivity in the range the paper's experiments run at. Fan-out is
	// what the vectorized path amortizes (sub-batches of composites sharing
	// one probe key, duplicate updates sharing whole pipeline passes); a
	// near-key-unique workload has sub-batches of size one and measures pure
	// run-splitting overhead instead.
	rep := &BatchReport{
		Relations:  n,
		Window:     64,
		Burst:      64,
		Domain:     16,
		Warmup:     cfg.Warmup,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	rep.Points = append(rep.Points, runBatchPoint(rep, 0, cfg))
	for _, b := range batches {
		rep.Points = append(rep.Points, runBatchPoint(rep, b, cfg))
	}
	if base := rep.Points[0].NsPerOp; base > 0 {
		for i := range rep.Points {
			rep.Points[i].SpeedupVsLoop = base / rep.Points[i].NsPerOp
		}
	}
	return rep
}

func runBatchPoint(rep *BatchReport, batch int, cfg RunConfig) BatchPoint {
	q := nWayQuery(rep.Relations)
	// Steady-state configuration: the initial selection still runs and
	// installs its caches, but the huge re-optimization interval keeps later
	// reopts — whose profiling phases force fully serial processing in both
	// modes and would compress the ratio toward 1 — out of the measured
	// window. The adaptivity experiments (fig6–10) measure those phases; this
	// one isolates the ingestion paths themselves.
	en, err := core.NewEngine(q, nil, core.Config{
		ReoptInterval: 10_000_000,
		Seed:          cfg.Seed,
	})
	if err != nil {
		panic(err)
	}
	src := newBurstSource(rep.Relations, rep.Window, rep.Burst, rep.Domain, cfg.Seed)
	for i := 0; i < cfg.Warmup; i++ {
		en.Process(src.Next())
	}
	var ups []stream.Update
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if batch <= 0 {
			for i := 0; i < b.N; i++ {
				en.Process(src.Next())
			}
			return
		}
		for done := 0; done < b.N; done += batch {
			k := batch
			if rest := b.N - done; k > rest {
				k = rest
			}
			ups = src.NextBatch(k, ups)
			en.ProcessBatch(ups)
		}
	})
	return BatchPoint{
		BatchSize:   batch,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// JSON renders the report for BENCH_batch.json.
func (r *BatchReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Experiment renders the report in the package's common table/chart form.
func (r *BatchReport) Experiment() *Experiment {
	var x, ns, speedup []float64
	for _, pt := range r.Points {
		x = append(x, float64(pt.BatchSize))
		ns = append(ns, pt.NsPerOp)
		speedup = append(speedup, pt.SpeedupVsLoop)
	}
	return &Experiment{
		ID:     "batch",
		Title:  "Vectorized batch ingestion (wall clock)",
		XLabel: "batch size (0 = per-update loop)",
		YLabel: "ns/update",
		Series: []Series{
			{Label: "ns/update", X: x, Y: ns},
			{Label: "speedup vs loop", X: x, Y: speedup},
		},
		Notes: []string{
			fmt.Sprintf("n=%d relations, window=%d, burst=%d, domain=%d, GOMAXPROCS=%d, NumCPU=%d, %s (wall-clock measurement)",
				r.Relations, r.Window, r.Burst, r.Domain, r.GOMAXPROCS, r.NumCPU, r.GoVersion),
		},
	}
}
