package bench

import (
	"strings"
	"testing"
)

func TestCSVRendering(t *testing.T) {
	e := &Experiment{
		ID: "x", Title: "t", XLabel: "n",
		Series: []Series{
			{Label: "plain", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: `with "quotes", commas`, X: []float64{1, 2}, Y: []float64{30, 40}},
		},
		Notes: []string{"a note"},
	}
	got := e.CSV()
	want := "n,plain,\"with \"\"quotes\"\", commas\"\n1,10,30\n2,20,40\n# a note\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}

func TestCSVShortSeries(t *testing.T) {
	e := &Experiment{
		XLabel: "x",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{30}}, // short
		},
	}
	lines := strings.Split(strings.TrimSpace(e.CSV()), "\n")
	if lines[2] != "2,20," {
		t.Fatalf("short series row = %q", lines[2])
	}
}

// Smoke tests for the ablation and extension experiments at tiny scale —
// they must produce finite series with the expected labels.
func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := RunConfig{Warmup: 800, Measure: 1500, Seed: 42}
	for _, e := range Ablations(cfg) {
		if len(e.Series) == 0 {
			t.Fatalf("%s: no series", e.ID)
		}
		for _, s := range e.Series {
			finitePositive(t, s)
		}
	}
}

func TestExtensionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := RunConfig{Warmup: 800, Measure: 1500, Seed: 42}
	for _, e := range Extensions(cfg) {
		if len(e.Series) == 0 {
			t.Fatalf("%s: no series", e.ID)
		}
		for _, s := range e.Series {
			for i, y := range s.Y {
				if y < 0 {
					t.Fatalf("%s series %q point %d negative: %v", e.ID, s.Label, i, y)
				}
			}
		}
	}
}
