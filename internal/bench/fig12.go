package bench

import (
	"acache/internal/core"
	"acache/internal/cost"
	"acache/internal/planner"
)

// Fig12 — "Adaptivity to changing stream rate": the 3-way query with a
// bursty ΔR whose rate jumps ×20 partway through the run and stays high.
// Three plans are tracked over time (x = ΔS tuples arrived):
//
//   - static T⋈(R⋈S): always caches R⋈S in ΔT's pipeline — optimal before
//     the burst (ΔT carries 5× the traffic);
//   - static R⋈(T⋈S): always caches T⋈S in ΔR's pipeline — optimal during
//     the burst;
//   - adaptive A-Caching with globally-consistent candidates.
//
// The paper's findings: the adaptive plan tracks the best static plan
// before the burst with near-zero overhead, and converges quickly to the
// burst winner — in the paper a (T⋈S)⋉R cache; here its invalidation-mode
// equivalent (see DESIGN.md) — once the burst starts.
func Fig12(cfg RunConfig) *Experiment {
	// Scale the paper's horizon (burst at 100k ΔS tuples) to the config.
	burstAtS := uint64(cfg.Warmup + cfg.Measure)
	totalS := burstAtS + uint64(cfg.Measure)
	startS := uint64(cfg.Warmup) // rates reported from here on
	chunk := (totalS - startS) / 24
	if chunk == 0 {
		chunk = 1
	}

	staticA := func() (*core.Engine, planner.Ordering) {
		ord := threeWayOrdering() // ΔT: S,R admits the R⋈S cache
		q := threeWayQuery()
		spec := forcedRSCache(q)
		en, err := core.NewEngine(q, ord, core.Config{
			ForcedCaches: []*planner.Spec{spec},
			Seed:         cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		return en, ord
	}
	staticB := func() (*core.Engine, planner.Ordering) {
		// ΔR: S,T; ΔS: T,R; ΔT: S,R — the {S,T} segment in ΔR's pipeline
		// satisfies the prefix invariant and is the forced cache.
		ord := planner.Ordering{{1, 2}, {2, 0}, {1, 0}}
		q := threeWayQuery()
		var spec *planner.Spec
		for _, c := range planner.Candidates(q, ord) {
			if c.Pipeline == 0 && c.Start == 0 && c.End == 1 {
				spec = c
			}
		}
		if spec == nil {
			panic("bench: T⋈S cache not a candidate")
		}
		en, err := core.NewEngine(q, ord, core.Config{
			ForcedCaches: []*planner.Spec{spec},
			Seed:         cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		return en, ord
	}
	adaptive := func() (*core.Engine, planner.Ordering) {
		ord := threeWayOrdering()
		q := threeWayQuery()
		en, err := core.NewEngine(q, ord, core.Config{
			ReoptInterval: cfg.Measure / 6,
			GCQuota:       6,
			Seed:          cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		return en, ord
	}

	run := func(build func() (*core.Engine, planner.Ordering)) ([]float64, []float64) {
		en, _ := build()
		s := defaultThreeWay()
		w := s.workload()
		src := w.source()
		var xs, ys []float64
		lastAppends := uint64(0)
		lastUnits := cost.Units(0)
		nextBoundary := chunk
		bursted := false
		for src.Appends(1) < totalS {
			u := src.Next()
			en.Process(u)
			if !bursted && src.Appends(1) >= burstAtS {
				bursted = true
				// ΔR bursts to 20× its normal rate (Section 7.4).
				src.SetRates([]float64{s.rateR * 20, s.rateS, s.rateT})
			}
			if src.Appends(1) >= nextBoundary {
				if nextBoundary > startS {
					apps := src.TotalAppends() - lastAppends
					units := en.Meter().Total() - lastUnits
					xs = append(xs, float64(nextBoundary)/1000)
					ys = append(ys, cost.Rate(int(apps), units))
				}
				lastAppends = src.TotalAppends()
				lastUnits = en.Meter().Total()
				nextBoundary += chunk
			}
		}
		return xs, ys
	}

	xa, ya := run(staticA)
	_, yb := run(staticB)
	_, yc := run(adaptive)
	return &Experiment{
		ID:     "fig12",
		Title:  "Adaptivity to changing stream rate (ΔR burst ×20)",
		XLabel: "ΔS tuples (k)",
		YLabel: "current processing rate (tuples/sec)",
		Series: []Series{
			{Label: "Adaptive caching", X: xa, Y: yc},
			{Label: "T join (R join S)", X: xa, Y: ya},
			{Label: "R join (T join S)", X: xa, Y: yb},
		},
	}
}
