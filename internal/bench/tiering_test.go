package bench

import (
	"encoding/json"
	"testing"
)

func TestRunTieringShape(t *testing.T) {
	cfg := RunConfig{Warmup: 2000, Measure: 4000, Seed: 42}
	rep := RunTiering(3, cfg)
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(rep.Points))
	}
	base, uncon, con := rep.Points[0], rep.Points[1], rep.Points[2]
	if base.Label != "in-memory" || uncon.Label != "tiered-unconstrained" || con.Label != "tiered-constrained" {
		t.Fatalf("labels = %q, %q, %q", base.Label, uncon.Label, con.Label)
	}
	for i, pt := range rep.Points {
		if pt.TuplesPerSec <= 0 || pt.WallSeconds <= 0 || pt.ResidentBytes <= 0 {
			t.Fatalf("point %d not measured: %+v", i, pt)
		}
	}
	// Charge identity on the bench workload: same outputs and cost totals
	// at every configuration.
	if !rep.Identical {
		t.Fatalf("points diverge: %+v", rep.Points)
	}
	// The unconstrained watermark never demotes; the constrained one must
	// spill most of the footprint and keep its resident set several times
	// smaller than the in-memory baseline's.
	if uncon.Demotions != 0 || uncon.ColdBytes != 0 {
		t.Fatalf("unconstrained point spilled: %+v", uncon)
	}
	if con.Demotions == 0 || con.ColdBytes == 0 {
		t.Fatalf("constrained point never spilled: %+v", con)
	}
	if con.ResidentRatio < 4 {
		t.Fatalf("constrained resident ratio = %v, want >= 4 (resident %d vs baseline %d)",
			con.ResidentRatio, con.ResidentBytes, base.ResidentBytes)
	}

	var back TieringReport
	if err := json.Unmarshal(rep.JSON(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.NumCPU != rep.NumCPU || len(back.Points) != 3 || !back.Identical {
		t.Fatalf("JSON lost fields: %+v", back)
	}

	e := rep.Experiment()
	if e.ID != "tiering" || len(e.Series) != 3 {
		t.Fatalf("experiment shape: %+v", e)
	}
}
