package bench

import (
	"encoding/json"
	"testing"
)

func TestRunPipelineShape(t *testing.T) {
	cfg := RunConfig{Warmup: 500, Measure: 1500, Seed: 42}
	rep := RunPipeline(4, []int{1, 2}, cfg)
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d, want 3 (serial + 2 worker counts)", len(rep.Points))
	}
	if rep.Points[0].Workers != 0 || rep.Points[1].Workers != 1 || rep.Points[2].Workers != 2 {
		t.Fatalf("worker counts = %d, %d, %d", rep.Points[0].Workers, rep.Points[1].Workers, rep.Points[2].Workers)
	}
	if rep.Points[0].SpeedupVsSerial != 1 {
		t.Fatalf("serial speedup = %v, want 1", rep.Points[0].SpeedupVsSerial)
	}
	for i, pt := range rep.Points {
		if pt.TuplesPerSec <= 0 || pt.WallSeconds <= 0 {
			t.Fatalf("point %d not measured: %+v", i, pt)
		}
		// Staging must not change result cardinality: same stream, same
		// outputs at every worker count.
		if pt.Outputs != rep.Points[0].Outputs {
			t.Fatalf("outputs diverge at workers=%d: %d vs %d",
				pt.Workers, pt.Outputs, rep.Points[0].Outputs)
		}
		if pt.Workers > 0 && pt.StagedShare <= 0 {
			t.Fatalf("workers=%d never took the staged path", pt.Workers)
		}
	}

	var back PipelineReport
	if err := json.Unmarshal(rep.JSON(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.NumCPU != rep.NumCPU || len(back.Points) != 3 {
		t.Fatalf("JSON lost fields: %+v", back)
	}

	e := rep.Experiment()
	if e.ID != "pipeline" || len(e.Series) != 3 {
		t.Fatalf("experiment shape: %+v", e)
	}
	for _, s := range e.Series {
		finitePositive(t, s)
	}
}
