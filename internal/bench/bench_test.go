package bench

import (
	"math"
	"testing"

	"acache/internal/core"
)

// tiny returns a very small run configuration so shape tests stay fast.
func tiny() RunConfig { return RunConfig{Warmup: 1500, Measure: 3000, Seed: 42} }

func finitePositive(t *testing.T, s Series) {
	t.Helper()
	if len(s.Y) == 0 {
		t.Fatalf("series %q empty", s.Label)
	}
	for i, y := range s.Y {
		if math.IsNaN(y) || math.IsInf(y, 0) || y < 0 {
			t.Fatalf("series %q point %d = %v", s.Label, i, y)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	e := Fig6(tiny())
	for _, s := range e.Series {
		finitePositive(t, s)
	}
	cache, mjoin := e.Series[0].Y, e.Series[1].Y
	// Caching must beat MJoin at high multiplicity, and the relative gap
	// must grow from multiplicity 1 to 10.
	last := len(cache) - 1
	if cache[last] <= mjoin[last] {
		t.Fatalf("at multiplicity 10 caching (%.0f) should beat MJoin (%.0f)", cache[last], mjoin[last])
	}
	r1 := mjoin[0] / cache[0]
	r10 := mjoin[last] / cache[last]
	if r10 >= r1 {
		t.Fatalf("time ratio should fall with hit probability: ratio(1)=%.3f ratio(10)=%.3f", r1, r10)
	}
}

func TestFig7Shape(t *testing.T) {
	e := Fig7(tiny())
	for _, s := range e.Series {
		finitePositive(t, s)
	}
	cache, mjoin := e.Series[0].Y, e.Series[1].Y
	wins := 0
	for i := range cache {
		if cache[i] > mjoin[i] {
			wins++
		}
	}
	if wins < len(cache)-1 {
		t.Fatalf("caching should win across (almost) the whole selectivity range; won %d/%d", wins, len(cache))
	}
}

func TestFig8Shape(t *testing.T) {
	e := Fig8(tiny())
	for _, s := range e.Series {
		finitePositive(t, s)
	}
	ratio := e.Series[2].Y
	// Caching's relative advantage should erode as the update/probe ratio
	// grows (the ratio series rises toward 1).
	if ratio[len(ratio)-1] <= ratio[0] {
		t.Fatalf("time ratio should rise with update rate: first %.3f last %.3f", ratio[0], ratio[len(ratio)-1])
	}
}

func TestFig10Shape(t *testing.T) {
	e := Fig10(tiny())
	for _, s := range e.Series {
		finitePositive(t, s)
	}
	ratio := e.Series[2].Y
	// The relative benefit of caching must grow (ratio fall) with join cost.
	if ratio[len(ratio)-1] >= ratio[0] {
		t.Fatalf("time ratio should fall with join cost: first %.3f last %.3f", ratio[0], ratio[len(ratio)-1])
	}
	cache, mjoin := e.Series[0].Y, e.Series[1].Y
	last := len(cache) - 1
	if cache[last] <= mjoin[last] {
		t.Fatalf("at |S|=2000 caching (%.0f) must beat the nested-loop MJoin (%.0f)", cache[last], mjoin[last])
	}
}

func TestFig9Shape(t *testing.T) {
	e := Fig9(tiny())
	for _, s := range e.Series {
		finitePositive(t, s)
	}
	cache, mjoin := e.Series[0].Y, e.Series[1].Y
	// The paper's finding: the improvement is maintained across the range;
	// at larger n the cacheable surface grows, so caching must win clearly
	// somewhere in the upper half.
	won := false
	for i := len(cache) / 2; i < len(cache); i++ {
		if cache[i] > 1.05*mjoin[i] {
			won = true
		}
	}
	if !won {
		t.Fatalf("caching never clearly won at large n: cache %v vs mjoin %v", cache, mjoin)
	}
}

func TestFig12Shape(t *testing.T) {
	e := Fig12(tiny())
	adaptive, staticA, staticB := e.Series[0].Y, e.Series[1].Y, e.Series[2].Y
	n := len(adaptive)
	if n < 8 {
		t.Fatalf("too few buckets: %d", n)
	}
	// Pre-burst: adaptive within 15% of static A (the pre-burst winner).
	if adaptive[1] < 0.85*staticA[1] {
		t.Fatalf("pre-burst adaptive %v too far below static A %v", adaptive[1], staticA[1])
	}
	// Post-burst: static B wins over static A, and adaptive beats static A
	// (it must have switched plans).
	if staticB[n-1] <= staticA[n-1] {
		t.Fatalf("burst did not invert the static plans: A %v B %v", staticA[n-1], staticB[n-1])
	}
	if adaptive[n-1] <= 1.05*staticA[n-1] {
		t.Fatalf("post-burst adaptive %v did not leave the stale plan %v behind",
			adaptive[n-1], staticA[n-1])
	}
}

func TestFig13Shape(t *testing.T) {
	e := Fig13(tiny())
	xj, adaptive, mjoin := e.Series[0].Y, e.Series[1].Y, e.Series[2].Y
	// MJoin flat.
	for i := 1; i < len(mjoin); i++ {
		if mjoin[i] != mjoin[0] {
			t.Fatalf("MJoin series not flat: %v", mjoin)
		}
	}
	// XJoin: infeasible (0) below its footprint, constant above.
	if xj[0] != 0 {
		t.Fatalf("XJoin feasible at zero memory: %v", xj)
	}
	last := xj[len(xj)-1]
	if last <= 0 {
		t.Fatalf("XJoin never feasible: %v", xj)
	}
	// Adaptive: positive everywhere, and its large-memory rate beats its
	// zero-memory rate (caches pay once they fit).
	for i, y := range adaptive {
		if y <= 0 {
			t.Fatalf("adaptive rate 0 at point %d", i)
		}
	}
	if adaptive[len(adaptive)-1] <= adaptive[0] {
		t.Fatalf("memory did not help the adaptive plan: %v", adaptive)
	}
}

// TestFig11D8Shape locks the plan-spectrum story at one point: adaptive
// prefix caching must beat the plain MJoin at D8 once given room to
// converge. Guarded by -short because it needs a longer horizon than the
// other shape tests.
func TestFig11D8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := RunConfig{Warmup: 8_000, Measure: 20_000, Seed: 42}
	pt := Table2()[7]
	w := pt.workload(cfg.Seed)
	mEn, err := core.NewEngine(w.q, nil, core.Config{DisableCaching: true, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	m := measureEngine(mEn, w.source(), cfg)
	pEn, err := core.NewEngine(w.q, nil, core.Config{
		ReoptInterval: cfg.Measure / 8,
		Selection:     core.SelectExhaustive,
		Seed:          cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := measureEngine(pEn, w.source(), cfg)
	if p < 1.02*m {
		t.Fatalf("P (%.0f) should clearly beat M (%.0f) at D8", p, m)
	}
}

func TestTable2Matrix(t *testing.T) {
	pts := Table2()
	if len(pts) != 8 {
		t.Fatalf("Table 2 has %d points, want 8", len(pts))
	}
	m := pts[2].selMatrix() // D3
	if m[0][1] != 0.003 || m[1][0] != 0.003 || m[2][3] != 0.008 {
		t.Fatalf("selMatrix wrong: %v", m)
	}
	for i := 0; i < 4; i++ {
		if m[i][i] != 0 {
			t.Fatalf("diagonal must be 0")
		}
	}
}

func TestExperimentTableRenders(t *testing.T) {
	e := &Experiment{
		ID: "figX", Title: "t", XLabel: "x",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}}},
		Notes:  []string{"n"},
	}
	out := e.Table()
	if out == "" || len(out) < 10 {
		t.Fatalf("table render too small: %q", out)
	}
}

func TestFilterReportShape(t *testing.T) {
	// Tiny horizons: this checks wiring and telemetry, not the headline
	// ratios (those need the full-scale run behind BENCH_filter.json).
	rep := RunFilter(RunConfig{Warmup: 500, Measure: 1_000, Seed: 42})
	if len(rep.Points) != 4 {
		t.Fatalf("%d points, want 4 (2 workloads × filters on/off)", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.Workload == "miss-heavy" && pt.MissProb < 0.9 {
			t.Fatalf("miss-heavy miss_prob = %.2f, want ≥ 0.9", pt.MissProb)
		}
		if pt.Workload == "miss-heavy" && pt.Filters && pt.ShortCircuits == 0 {
			t.Fatal("filtered miss-heavy run short-circuited nothing")
		}
		if !pt.Filters && (pt.ShortCircuits != 0 || pt.FilterBytes != 0) {
			t.Fatalf("unfiltered point reports filter activity: %+v", pt)
		}
	}
	if rep.SpeedupMissHeavy <= 0 || rep.Experiment() == nil {
		t.Fatal("report incomplete")
	}
}
