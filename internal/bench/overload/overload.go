// Package overload measures the resilience layer under sustained pressure.
// It lives outside package bench because it drives the public acache API
// (the degradation ladder is implemented there), and package bench is
// imported by acache's own benchmarks.
package overload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"acache"

	"acache/internal/bench"
)

// The overload experiment measures what the resilience layer buys under
// sustained pressure. Worker capacity is reduced with an injected per-update
// slowdown (deterministic, so every configuration faces the same deficit)
// while the ingress offers as fast as it can; admission then sheds what the
// shards cannot absorb. Each load level runs twice — with and without the
// cache-first degradation ladder — to quantify the paper's §3.2 story as an
// overload defense: pausing caches is free to switch and keeps results
// exact, so it is the first thing to sacrifice, before any tuple is dropped.
// Wall-clock based, like the sharding experiment.

// OverloadPoint is one (load level, ladder setting) measurement.
type OverloadPoint struct {
	Load string `json:"load"`
	// SlowEveryNth / SlowMicros define the injected worker slowdown: every
	// nth update costs an extra SlowMicros µs on every shard (0 = none).
	SlowEveryNth int   `json:"slow_every_nth"`
	SlowMicros   int64 `json:"slow_micros"`
	// Ladder is whether the cache-first degradation ladder was enabled.
	Ladder bool `json:"cache_first_ladder"`
	// Offered is the appends offered; Shed counts shed events (ladder
	// ingress drops plus admission-rejected updates), and ShedRate is
	// Shed/Offered.
	Offered  uint64  `json:"offered_appends"`
	Shed     uint64  `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	Outputs  uint64  `json:"outputs"`
	// MaxDegradeLevel is the highest ladder rung observed (0 when off).
	MaxDegradeLevel int     `json:"max_degrade_level"`
	WallSeconds     float64 `json:"wall_seconds"`
	AppendsPerSec   float64 `json:"appends_per_sec"`
	// AdmissionWaitSeconds is total ingress time blocked on backpressure.
	AdmissionWaitSeconds float64 `json:"admission_wait_seconds"`
}

// OverloadReport is the full run, JSON-ready for BENCH_overload.json.
type OverloadReport struct {
	Relations  int             `json:"relations"`
	Window     int             `json:"window"`
	Shards     int             `json:"shards"`
	BatchSize  int             `json:"batch_size"`
	Measure    int             `json:"measure_appends"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Points     []OverloadPoint `json:"points"`
}

// overloadQuery is an n-way star join over count windows — enough join work
// that shedding and cache pausing have real effects on throughput.
func overloadQuery(n, window int) *acache.Query {
	q := acache.NewQuery()
	for i := 0; i < n; i++ {
		q.WindowedRelation(fmt.Sprintf("R%d", i), window, "A", "B")
	}
	for i := 1; i < n; i++ {
		q.Join("R0.A", fmt.Sprintf("R%d.A", i))
	}
	return q
}

// RunOverload sweeps load levels (injected worker slowdowns) and, at each,
// measures throughput and shed rate with and without the degradation ladder.
func Run(cfg bench.RunConfig) *OverloadReport {
	const (
		nRels  = 4
		window = 64
		shards = 4
		batch  = 8
	)
	rep := &OverloadReport{
		Relations:  nRels,
		Window:     window,
		Shards:     shards,
		BatchSize:  batch,
		Measure:    cfg.Measure,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	loads := []struct {
		name string
		nth  int
		d    time.Duration
	}{
		{"baseline", 0, 0},
		{"mild", 8, 100 * time.Microsecond},
		{"heavy", 2, 200 * time.Microsecond},
	}
	for _, load := range loads {
		for _, ladder := range []bool{false, true} {
			rep.Points = append(rep.Points,
				runOverloadPoint(load.name, load.nth, load.d, ladder, nRels, window, shards, batch, cfg))
		}
	}
	return rep
}

func runOverloadPoint(name string, nth int, d time.Duration, ladder bool,
	nRels, window, shards, batch int, cfg bench.RunConfig) OverloadPoint {
	// Latency-budget admission: the ingress absorbs transient backlog by
	// blocking up to OfferTimeout, then sheds — so the baseline sheds ~0 and
	// shed rate grows with the genuine capacity deficit, not with burstiness.
	r := acache.ResilienceOptions{
		Admission:    acache.AdmitBlock,
		OfferTimeout: 500 * time.Microsecond,
	}
	if nth > 0 {
		r.FaultInjector = acache.NewFaultInjector().
			SlowEvery(-1, 1, uint64(nth), d)
	}
	if ladder {
		r.DegradeHighWater = 0.75
	}
	eng, err := overloadQuery(nRels, window).BuildSharded(
		acache.Options{Seed: cfg.Seed},
		acache.ShardOptions{Shards: shards, BatchSize: batch, Resilience: r},
	)
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	maxLevel := 0
	start := time.Now()
	for i := 0; i < cfg.Measure; i++ {
		rel := fmt.Sprintf("R%d", rng.Intn(nRels))
		eng.Append(rel, rng.Int63n(16), rng.Int63n(64))
		if lvl := eng.DegradeLevel(); lvl > maxLevel {
			maxLevel = lvl
		}
	}
	eng.Flush()
	wall := time.Since(start).Seconds()

	st := eng.Stats()
	pt := OverloadPoint{
		Load:                 name,
		SlowEveryNth:         nth,
		SlowMicros:           d.Microseconds(),
		Ladder:               ladder,
		Offered:              uint64(cfg.Measure),
		Shed:                 st.Shedded,
		Outputs:              st.Outputs,
		MaxDegradeLevel:      maxLevel,
		WallSeconds:          wall,
		AdmissionWaitSeconds: st.AdmissionWaitSeconds,
	}
	if pt.Offered > 0 {
		pt.ShedRate = float64(pt.Shed) / float64(pt.Offered)
	}
	if wall > 0 {
		pt.AppendsPerSec = float64(cfg.Measure) / wall
	}
	return pt
}

// JSON renders the report for BENCH_overload.json.
func (r *OverloadReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Experiment renders the report in the package's common table/chart form:
// one x position per load level, throughput and shed rate with the ladder
// off and on.
func (r *OverloadReport) Experiment() *bench.Experiment {
	var x, tputOff, tputOn, shedOff, shedOn []float64
	seen := map[string]int{}
	for _, pt := range r.Points {
		idx, ok := seen[pt.Load]
		if !ok {
			idx = len(seen)
			seen[pt.Load] = idx
			x = append(x, float64(idx))
		}
		if pt.Ladder {
			tputOn = append(tputOn, pt.AppendsPerSec)
			shedOn = append(shedOn, pt.ShedRate)
		} else {
			tputOff = append(tputOff, pt.AppendsPerSec)
			shedOff = append(shedOff, pt.ShedRate)
		}
	}
	notes := []string{
		fmt.Sprintf("n=%d relations, W=%d, P=%d, GOMAXPROCS=%d (wall-clock measurement)",
			r.Relations, r.Window, r.Shards, r.GOMAXPROCS),
		"x axis: load level index (baseline, mild, heavy — injected worker slowdown)",
	}
	return &bench.Experiment{
		ID:     "overload",
		Title:  "Overload: throughput & shed rate, ladder off vs on",
		XLabel: "load level",
		YLabel: "appends/sec (wall)",
		Series: []bench.Series{
			{Label: "tuples/sec (no ladder)", X: x, Y: tputOff},
			{Label: "tuples/sec (cache-first ladder)", X: x, Y: tputOn},
			{Label: "shed rate (no ladder)", X: x, Y: shedOff},
			{Label: "shed rate (cache-first ladder)", X: x, Y: shedOn},
		},
		Notes: notes,
	}
}
