package overload

import (
	"encoding/json"
	"testing"

	"acache/internal/bench"
)

// TestRunSmoke runs the sweep at a tiny scale and checks shape and
// accounting invariants — not timings, which depend on the host.
func TestRunSmoke(t *testing.T) {
	rep := Run(bench.RunConfig{Measure: 400, Seed: 1})
	if len(rep.Points) != 6 {
		t.Fatalf("got %d points, want 6 (3 loads × ladder off/on)", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.Offered != 400 {
			t.Fatalf("%s ladder=%v: offered %d, want 400", pt.Load, pt.Ladder, pt.Offered)
		}
		if pt.WallSeconds <= 0 || pt.AppendsPerSec <= 0 {
			t.Fatalf("%s ladder=%v: non-positive timing %+v", pt.Load, pt.Ladder, pt)
		}
		if pt.ShedRate < 0 || float64(pt.Shed) < pt.ShedRate*float64(pt.Offered)-1 {
			t.Fatalf("%s ladder=%v: shed accounting inconsistent: %+v", pt.Load, pt.Ladder, pt)
		}
		if !pt.Ladder && pt.MaxDegradeLevel != 0 {
			t.Fatalf("%s: degrade level %d with the ladder off", pt.Load, pt.MaxDegradeLevel)
		}
	}
	var back OverloadReport
	if err := json.Unmarshal(rep.JSON(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(back.Points) != len(rep.Points) {
		t.Fatalf("round-trip lost points")
	}
	e := rep.Experiment()
	if e == nil || len(e.Series) != 4 {
		t.Fatalf("Experiment shape wrong: %+v", e)
	}
}
