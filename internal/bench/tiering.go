package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"acache/internal/core"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tier"
	"acache/internal/tuple"
)

// The tiering experiment measures what the mmap-backed cold tier buys and
// costs on one engine: the same wide-tuple windowed workload is replayed
// in-memory (the baseline), tiered with an unlimited hot watermark (spill
// machinery installed, nothing demoted), and tiered with the watermark
// constrained to a fraction of the baseline's resident footprint. Tiered
// execution is charge-identical to in-memory by construction — results,
// windows, and cost totals are bit-identical (tiering_test.go at the repo
// root) — so the points differ only in wall clock and in where the bytes
// live. The headline claims checked here: the constrained point keeps its
// resident hot set ≥4× smaller than the baseline's footprint, and the
// tiering machinery itself costs ≤10% on the hot path — that is the
// unconstrained point, where every access stays hot and the only cost is
// page-table bookkeeping. The constrained point additionally pays for cold
// faults and promotion/demotion copies; that is the price of the smaller
// resident set, kept low here by the filter-fronted probes (the workload is
// selective, so most probes are answered "guaranteed miss" without faulting
// a cold page). Wall-clock numbers do not transfer across hosts — and are
// noise-dominated on a single-CPU one — so the JSON records
// GOMAXPROCS/NumCPU alongside them.

// TieringPoint is one measured configuration.
type TieringPoint struct {
	// Label is "in-memory", "tiered-unconstrained", or "tiered-constrained".
	Label string `json:"label"`
	// HotBytes is the configured hot watermark (0 = tiering disabled).
	HotBytes     int     `json:"hot_bytes"`
	WallSeconds  float64 `json:"wall_seconds"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// ResidentBytes is the point's resident store footprint: hot-tier bytes
	// when tiered, the full window+cache footprint when in-memory.
	ResidentBytes int `json:"resident_bytes"`
	// ColdBytes is the spilled (non-resident) footprint.
	ColdBytes  int    `json:"cold_bytes"`
	Promotions uint64 `json:"promotions"`
	Demotions  uint64 `json:"demotions"`
	// Outputs and WorkUnits cross-check charge identity across the points.
	Outputs   uint64 `json:"outputs"`
	WorkUnits int64  `json:"work_units"`
	// OverheadVsBaseline is WallSeconds over the in-memory point's, minus 1.
	OverheadVsBaseline float64 `json:"overhead_vs_baseline"`
	// ResidentRatio is the in-memory footprint over this point's resident
	// bytes — how many times smaller this configuration's hot set is.
	ResidentRatio float64 `json:"resident_ratio"`
}

// TieringReport is the full run, JSON-ready for BENCH_tiering.json.
type TieringReport struct {
	Relations int   `json:"relations"`
	Width     int   `json:"width"`
	Window    int   `json:"window"`
	Burst     int   `json:"burst"`
	Domain    int64 `json:"domain"`
	Batch     int   `json:"batch"`
	PageBytes int   `json:"page_bytes"`
	Warmup    int   `json:"warmup_appends"`
	Measure   int   `json:"measure_appends"`
	NumCPU    int   `json:"num_cpu"`
	GoVersion string `json:"go_version"`
	// Identical reports whether Outputs and WorkUnits agreed across every
	// point — the charge-identity contract, verified on the bench workload.
	Identical bool           `json:"identical"`
	Points    []TieringPoint `json:"points"`
}

// wideQuery is the star join over n relations of the given tuple width:
// column 0 carries the join attribute, the rest pad each tuple so windows
// span many spill pages and the resident footprint is worth tiering.
func wideQuery(n, width int) *query.Query {
	names := make([]string, width)
	names[0] = "A"
	for i := 1; i < width; i++ {
		names[i] = fmt.Sprintf("P%d", i)
	}
	schemas := make([]*tuple.Schema, n)
	var preds []query.Pred
	for i := 0; i < n; i++ {
		schemas[i] = tuple.RelationSchema(i, names...)
		if i > 0 {
			preds = append(preds, query.Pred{
				Left:  tuple.Attr{Rel: i - 1, Name: "A"},
				Right: tuple.Attr{Rel: i, Name: "A"},
			})
		}
	}
	return mustQuery(schemas, preds)
}

// wideSource is burstSource generalised to wide tuples: column 0 joins,
// padding columns take pseudo-random filler. Deletes replay the exact
// widened tuples previously inserted, so windows stay at the target size.
type wideSource struct {
	rng    *rand.Rand
	wins   [][]tuple.Tuple
	buf    []stream.Update
	pos    int
	rel    int
	nrel   int
	width  int
	window int
	burst  int
	domain int64
}

func newWideSource(nrel, width, window, burst int, domain, seed int64) *wideSource {
	return &wideSource{
		rng:    rand.New(rand.NewSource(seed)),
		wins:   make([][]tuple.Tuple, nrel),
		nrel:   nrel,
		width:  width,
		window: window,
		burst:  burst,
		domain: domain,
	}
}

func (s *wideSource) refill() {
	s.buf = s.buf[:0]
	s.pos = 0
	rel := s.rel
	s.rel = (s.rel + 1) % s.nrel
	w := s.wins[rel]
	if evict := len(w) + s.burst - s.window; evict > 0 {
		for _, t := range w[:evict] {
			s.buf = append(s.buf, stream.Update{Op: stream.Delete, Rel: rel, Tuple: t})
		}
		w = w[evict:]
	}
	for b := 0; b < s.burst; b++ {
		t := make(tuple.Tuple, s.width)
		t[0] = tuple.Value(s.rng.Int63n(s.domain))
		for i := 1; i < s.width; i++ {
			t[i] = tuple.Value(s.rng.Int63n(1 << 30))
		}
		s.buf = append(s.buf, stream.Update{Op: stream.Insert, Rel: rel, Tuple: t})
		w = append(w, t)
	}
	s.wins[rel] = append(s.wins[rel][:0], w...)
}

func (s *wideSource) next() stream.Update {
	if s.pos >= len(s.buf) {
		s.refill()
	}
	u := s.buf[s.pos]
	s.pos++
	return u
}

// RunTiering replays the workload at the three tier configurations.
// HotBytes is a per-store (and per-cache-table) watermark, so the engine's
// total hot floor is roughly watermark × table count; the constrained
// point sets it to 1/32 of the in-memory point's measured resident
// footprint (floored at two pages), which lands the total hot set well
// past the ≥4× reduction target even with several tables resident.
func RunTiering(n int, cfg RunConfig) *TieringReport {
	rep := &TieringReport{
		Relations: n,
		Width:     8,
		Window:    2048,
		Burst:     64,
		Domain:    32768,
		Batch:     256,
		PageBytes: 4096,
		Warmup:    cfg.Warmup,
		Measure:   cfg.Measure,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	base := runTieringPoint(rep, "in-memory", 0, cfg)
	rep.Points = append(rep.Points, base)
	rep.Points = append(rep.Points, runTieringPoint(rep, "tiered-unconstrained", 1<<30, cfg))
	constrained := base.ResidentBytes / 32
	if min := 2 * rep.PageBytes; constrained < min {
		constrained = min
	}
	rep.Points = append(rep.Points, runTieringPoint(rep, "tiered-constrained", constrained, cfg))

	rep.Identical = true
	for i := range rep.Points {
		pt := &rep.Points[i]
		if base.WallSeconds > 0 {
			pt.OverheadVsBaseline = pt.WallSeconds/base.WallSeconds - 1
		}
		if pt.ResidentBytes > 0 {
			pt.ResidentRatio = float64(base.ResidentBytes) / float64(pt.ResidentBytes)
		}
		if pt.Outputs != base.Outputs || pt.WorkUnits != base.WorkUnits {
			rep.Identical = false
		}
	}
	return rep
}

func runTieringPoint(rep *TieringReport, label string, hotBytes int, cfg RunConfig) TieringPoint {
	cc := core.Config{
		ReoptInterval: 10_000_000,
		Seed:          cfg.Seed,
	}
	var dir string
	if hotBytes > 0 {
		var err error
		dir, err = os.MkdirTemp("", "acache-tiering-bench")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		cc.Tier = tier.Options{Dir: dir, HotBytes: hotBytes, PageBytes: rep.PageBytes}
	}
	en, err := core.NewEngine(wideQuery(rep.Relations, rep.Width), nil, cc)
	if err != nil {
		panic(err)
	}
	defer en.Close()
	src := newWideSource(rep.Relations, rep.Width, rep.Window, rep.Burst, rep.Domain, cfg.Seed)
	ups := make([]stream.Update, 0, rep.Batch)
	nextBatch := func() []stream.Update {
		ups = ups[:0]
		for len(ups) < rep.Batch {
			ups = append(ups, src.next())
		}
		return ups
	}
	for done := 0; done < rep.Warmup; done += rep.Batch {
		en.ProcessBatch(nextBatch())
	}
	start := time.Now()
	for done := 0; done < rep.Measure; done += rep.Batch {
		en.ProcessBatch(nextBatch())
	}
	wall := time.Since(start).Seconds()
	snap := en.Snapshot()
	pt := TieringPoint{
		Label:       label,
		HotBytes:    hotBytes,
		WallSeconds: wall,
		Outputs:     snap.Outputs,
		WorkUnits:   int64(snap.Work),
		ColdBytes:   snap.TierColdBytes,
		Promotions:  snap.TierPromotions,
		Demotions:   snap.TierDemotions,
	}
	if hotBytes > 0 {
		pt.ResidentBytes = snap.TierHotBytes
	} else {
		pt.ResidentBytes = snap.WindowBytes + snap.CacheMemoryBytes
	}
	if wall > 0 {
		pt.TuplesPerSec = float64(rep.Measure) / wall
	}
	return pt
}

// JSON renders the report for BENCH_tiering.json.
func (r *TieringReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Experiment renders the report in the package's common table/chart form.
func (r *TieringReport) Experiment() *Experiment {
	var x, resident, overhead, ratio []float64
	for i, pt := range r.Points {
		x = append(x, float64(i))
		resident = append(resident, float64(pt.ResidentBytes))
		overhead = append(overhead, pt.OverheadVsBaseline)
		ratio = append(ratio, pt.ResidentRatio)
	}
	notes := []string{
		fmt.Sprintf("points: 0=%s, 1=%s, 2=%s", r.Points[0].Label, r.Points[1].Label, r.Points[2].Label),
		fmt.Sprintf("n=%d relations, width=%d, window=%d, burst=%d, domain=%d, batch=%d, page=%dB, GOMAXPROCS=%d, NumCPU=%d, %s (wall-clock measurement)",
			r.Relations, r.Width, r.Window, r.Burst, r.Domain, r.Batch, r.PageBytes,
			runtime.GOMAXPROCS(0), r.NumCPU, r.GoVersion),
		fmt.Sprintf("charge identity across points: %v", r.Identical),
	}
	return &Experiment{
		ID:     "tiering",
		Title:  "Tiered slab storage (resident footprint vs overhead)",
		XLabel: "configuration (see notes)",
		YLabel: "resident bytes",
		Series: []Series{
			{Label: "resident bytes", X: x, Y: resident},
			{Label: "overhead vs in-memory", X: x, Y: overhead},
			{Label: "resident ratio (baseline/this)", X: x, Y: ratio},
		},
		Notes: notes,
	}
}
