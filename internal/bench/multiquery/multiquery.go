package multiquery

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"acache"

	"acache/internal/bench"
)

// The multiquery experiment measures server-scope cross-query sharing: k
// identical continuous queries run once on a Server (shared window stores,
// pooled cache accounting) and once as k isolated engines fed the same
// stream. Charge identity means the simulated cost totals must agree exactly
// between the two configurations; the wins show up in wall-clock throughput
// (one physical window apply instead of k) and resident state bytes.

// Side is one measured configuration (shared server or isolated
// engines) of the comparison.
type Side struct {
	WallSeconds  float64 `json:"wall_seconds"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// ResidentBytes is the state footprint after the run: window stores +
	// used caches + fingerprint filters, counting each shared store once.
	ResidentBytes int `json:"resident_bytes"`
	// Outputs and WorkSeconds aggregate across all queries; both must match
	// the other side exactly (charge identity).
	Outputs     uint64  `json:"outputs"`
	WorkSeconds float64 `json:"work_seconds"`
}

// Report is the full comparison, JSON-ready for
// BENCH_multiquery.json.
type Report struct {
	Queries  int  `json:"queries"`
	Warmup   int  `json:"warmup_appends"`
	Measure  int  `json:"measure_appends"`
	Shared   Side `json:"shared"`
	Isolated Side `json:"isolated"`
	// ThroughputRatio is shared tuples/sec over isolated tuples/sec.
	ThroughputRatio float64 `json:"throughput_ratio"`
	// ResidentBytesRatio is isolated resident bytes over shared resident
	// bytes — how many times more state the unshared configuration holds.
	ResidentBytesRatio float64 `json:"resident_bytes_ratio"`
	// IdentityVerified is true when every query's outputs and simulated
	// work seconds were bit-identical between the two configurations.
	IdentityVerified bool `json:"identity_verified"`
}

func multiQueryDecl(win int) *acache.Query {
	return acache.NewQuery().
		WindowedRelation("R", win, "A").
		WindowedRelation("S", win, "A", "B").
		WindowedRelation("T", win, "B").
		Join("R.A", "S.A").
		Join("S.B", "T.B")
}

type multiAppend struct {
	rel    string
	values []int64
}

func multiQueryStream(total int, seed int64) []multiAppend {
	rng := rand.New(rand.NewSource(seed))
	ups := make([]multiAppend, total)
	for i := range ups {
		a, b := rng.Int63n(192), rng.Int63n(192)
		switch i % 3 {
		case 0:
			ups[i] = multiAppend{"R", []int64{a}}
		case 1:
			ups[i] = multiAppend{"S", []int64{a, b}}
		default:
			ups[i] = multiAppend{"T", []int64{b}}
		}
	}
	return ups
}

// Run runs k identical 3-way queries shared and isolated over the
// same stream and reports throughput, resident bytes, and the identity check.
func Run(k int, cfg bench.RunConfig) *Report {
	const win = 1024
	rep := &Report{Queries: k, Warmup: cfg.Warmup, Measure: cfg.Measure}
	stream := multiQueryStream(cfg.Warmup+cfg.Measure, cfg.Seed)
	opt := func(i int) acache.Options {
		return acache.Options{Seed: cfg.Seed + int64(i)*7919, ReoptInterval: cfg.Measure / 8}
	}

	// Shared side: one server, k registered queries, Server.Append fan-out.
	srv := acache.NewServer(0)
	srv.RebalanceEvery = 0
	var sharedStats []acache.Stats
	for i := 0; i < k; i++ {
		if _, err := srv.Register(fmt.Sprintf("q%d", i), multiQueryDecl(win), opt(i)); err != nil {
			panic(err)
		}
	}
	for _, u := range stream[:cfg.Warmup] {
		srv.Append(u.rel, u.values...)
	}
	start := time.Now()
	for _, u := range stream[cfg.Warmup:] {
		srv.Append(u.rel, u.values...)
	}
	rep.Shared.WallSeconds = time.Since(start).Seconds()
	stats := srv.Stats()
	for i := 0; i < k; i++ {
		st := stats[fmt.Sprintf("q%d", i)]
		sharedStats = append(sharedStats, st)
		rep.Shared.Outputs += st.Outputs
		rep.Shared.WorkSeconds += st.WorkSeconds
		rep.Shared.ResidentBytes += st.WindowBytes + st.CacheMemoryBytes + st.FilterBytes - st.SharedBytesSaved
	}

	// Isolated side: k private engines, the same updates interleaved per
	// update index — the identical processing order Server.Append used.
	engines := make([]*acache.Engine, k)
	for i := range engines {
		e, err := multiQueryDecl(win).Build(opt(i))
		if err != nil {
			panic(err)
		}
		engines[i] = e
	}
	for _, u := range stream[:cfg.Warmup] {
		for _, e := range engines {
			e.Append(u.rel, u.values...)
		}
	}
	start = time.Now()
	for _, u := range stream[cfg.Warmup:] {
		for _, e := range engines {
			e.Append(u.rel, u.values...)
		}
	}
	rep.Isolated.WallSeconds = time.Since(start).Seconds()
	rep.IdentityVerified = true
	for i, e := range engines {
		st := e.Stats()
		rep.Isolated.Outputs += st.Outputs
		rep.Isolated.WorkSeconds += st.WorkSeconds
		rep.Isolated.ResidentBytes += st.WindowBytes + st.CacheMemoryBytes + st.FilterBytes
		if st.Outputs != sharedStats[i].Outputs || st.WorkSeconds != sharedStats[i].WorkSeconds {
			rep.IdentityVerified = false
		}
	}

	appends := float64(cfg.Measure)
	if rep.Shared.WallSeconds > 0 {
		rep.Shared.TuplesPerSec = appends / rep.Shared.WallSeconds
	}
	if rep.Isolated.WallSeconds > 0 {
		rep.Isolated.TuplesPerSec = appends / rep.Isolated.WallSeconds
	}
	if rep.Isolated.TuplesPerSec > 0 {
		rep.ThroughputRatio = rep.Shared.TuplesPerSec / rep.Isolated.TuplesPerSec
	}
	if rep.Shared.ResidentBytes > 0 {
		rep.ResidentBytesRatio = float64(rep.Isolated.ResidentBytes) / float64(rep.Shared.ResidentBytes)
	}
	return rep
}

// JSON renders the report for BENCH_multiquery.json.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Experiment renders the report in the package's common table/chart form.
func (r *Report) Experiment() *bench.Experiment {
	return &bench.Experiment{
		ID:     "multiquery",
		Title:  "Cross-query sharing: shared server vs isolated engines",
		XLabel: "configuration (1=isolated, 2=shared)",
		YLabel: "appends/sec (wall)",
		Series: []bench.Series{
			{Label: "tuples/sec", X: []float64{1, 2},
				Y: []float64{r.Isolated.TuplesPerSec, r.Shared.TuplesPerSec}},
			{Label: "resident KiB", X: []float64{1, 2},
				Y: []float64{float64(r.Isolated.ResidentBytes) / 1024, float64(r.Shared.ResidentBytes) / 1024}},
		},
		Notes: []string{
			fmt.Sprintf("k=%d identical 3-way queries (wall-clock measurement)", r.Queries),
			fmt.Sprintf("throughput ratio %.2fx, resident-bytes ratio %.2fx, identity_verified=%v",
				r.ThroughputRatio, r.ResidentBytesRatio, r.IdentityVerified),
		},
	}
}
