package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"acache/internal/core"
)

// The hotpath experiment measures the real (wall-clock and heap) cost of the
// engine's per-update hot path — the quantity the zero-allocation storage
// layer optimizes. Like the sharding experiment it steps outside the
// deterministic cost meter: meter units are identical by construction across
// storage-layer rewrites, so only ns/op and allocs/op can show the effect.

// HotpathPoint is one measured configuration: the steady-state (post-warmup)
// per-update cost of the n-way join workload of Fig9.
type HotpathPoint struct {
	Relations   int     `json:"relations"`
	Caching     bool    `json:"caching"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`

	// Per-phase breakdown of the per-update wall clock, measured on a
	// separate instrumented engine (Config.InstrumentPhases) over the same
	// workload so the headline NsPerOp above stays un-instrumented: probe
	// execution, cache-maintenance (shadow estimator) taps, profiler
	// bookkeeping, and the re-optimizer. See core.PhaseNanos for the
	// bucket semantics and the probe/cache-maintenance approximation.
	ProbeNsPerOp      float64 `json:"probe_ns_per_op"`
	CacheMaintNsPerOp float64 `json:"cache_maint_ns_per_op"`
	ProfilerNsPerOp   float64 `json:"profiler_ns_per_op"`
	ReoptNsPerOp      float64 `json:"reopt_ns_per_op"`
}

// HotpathReport is the full run, JSON-ready for BENCH_hotpath.json.
// GOMAXPROCS and NumCPU record the host the numbers were taken on — they are
// wall-clock measurements and do not transfer across machines.
type HotpathReport struct {
	Warmup     int            `json:"warmup_appends"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	GoVersion  string         `json:"go_version"`
	Points     []HotpathPoint `json:"points"`
}

// RunHotpath measures the warm per-update cost of the Fig9 n-way workload
// for each relation count, with the adaptive engine and with the plain MJoin
// (caching disabled). Warmup fills windows and lets the adaptive engine
// settle on a cache set before the timer starts.
func RunHotpath(ns []int, cfg RunConfig) *HotpathReport {
	rep := &HotpathReport{
		Warmup:     cfg.Warmup,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	for _, n := range ns {
		rep.Points = append(rep.Points, runHotpathPoint(n, true, cfg))
		rep.Points = append(rep.Points, runHotpathPoint(n, false, cfg))
	}
	return rep
}

func runHotpathPoint(n int, caching bool, cfg RunConfig) HotpathPoint {
	w := nWayWorkload(n)
	c := core.Config{Seed: cfg.Seed}
	if caching {
		c.ReoptInterval = cfg.Measure / 8
		c.GCQuota = 6
	} else {
		c.DisableCaching = true
	}
	en, err := core.NewEngine(w.q, nil, c)
	if err != nil {
		panic(err)
	}
	src := w.source()
	for src.TotalAppends() < uint64(cfg.Warmup) {
		en.Process(src.Next())
	}
	r := benchMedian(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			en.Process(src.Next())
		}
	})
	pt := HotpathPoint{
		Relations:   n,
		Caching:     caching,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
	pt.ProbeNsPerOp, pt.CacheMaintNsPerOp, pt.ProfilerNsPerOp, pt.ReoptNsPerOp =
		hotpathPhases(w, c, cfg)
	return pt
}

// benchMedian runs testing.Benchmark three times and returns the run with
// the median ns/op. Single runs on a shared or throttled host swing by tens
// of percent — more than the adaptivity overheads these experiments resolve —
// and the median of three recovers a stable figure without averaging in a
// stalled run. The workload source persists across runs, so each run
// continues the same warm steady state.
func benchMedian(fn func(b *testing.B)) testing.BenchmarkResult {
	var rs [3]testing.BenchmarkResult
	for i := range rs {
		rs[i] = testing.Benchmark(fn)
	}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && nsPerOp(rs[j]) < nsPerOp(rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	return rs[1]
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// hotpathPhases reruns the point's workload on a phase-instrumented engine
// and returns the steady-state (post-warmup) per-update nanoseconds spent in
// probe execution, cache maintenance, profiling, and re-optimization. A
// separate engine keeps the clock reads out of the headline measurement.
func hotpathPhases(w *workload, c core.Config, cfg RunConfig) (probe, maint, prof, reopt float64) {
	c.InstrumentPhases = true
	en, err := core.NewEngine(w.q, nil, c)
	if err != nil {
		panic(err)
	}
	src := w.source()
	for src.TotalAppends() < uint64(cfg.Warmup) {
		en.Process(src.Next())
	}
	p0, m0, f0, r0 := en.PhaseNanos()
	updates := 0
	for src.TotalAppends() < uint64(cfg.Warmup+cfg.Measure) {
		en.Process(src.Next())
		updates++
	}
	p1, m1, f1, r1 := en.PhaseNanos()
	if updates == 0 {
		return 0, 0, 0, 0
	}
	d := float64(updates)
	return float64(p1-p0) / d, float64(m1-m0) / d, float64(f1-f0) / d, float64(r1-r0) / d
}

// JSON renders the report for BENCH_hotpath.json.
func (r *HotpathReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Experiment renders the report in the package's common table/chart form.
func (r *HotpathReport) Experiment() *Experiment {
	var x, cacheNs, mjoinNs, cacheAllocs []float64
	for _, pt := range r.Points {
		if pt.Caching {
			x = append(x, float64(pt.Relations))
			cacheNs = append(cacheNs, pt.NsPerOp)
			cacheAllocs = append(cacheAllocs, float64(pt.AllocsPerOp))
		} else {
			mjoinNs = append(mjoinNs, pt.NsPerOp)
		}
	}
	return &Experiment{
		ID:     "hotpath",
		Title:  "Hot-path cost per update (wall clock)",
		XLabel: "relations",
		YLabel: "ns/update",
		Series: []Series{
			{Label: "With caches (ns/op)", X: x, Y: cacheNs},
			{Label: "MJoin (ns/op)", X: x, Y: mjoinNs},
			{Label: "With caches (allocs/op)", X: x, Y: cacheAllocs},
		},
		Notes: r.notes(),
	}
}

func (r *HotpathReport) notes() []string {
	notes := []string{
		fmt.Sprintf("GOMAXPROCS=%d, NumCPU=%d, %s (wall-clock measurement)",
			r.GOMAXPROCS, r.NumCPU, r.GoVersion),
	}
	for _, pt := range r.Points {
		if pt.Caching {
			notes = append(notes, fmt.Sprintf(
				"n=%d phases (ns/op): probe %.0f, cache-maint %.0f, profiler %.0f, reopt %.0f",
				pt.Relations, pt.ProbeNsPerOp, pt.CacheMaintNsPerOp,
				pt.ProfilerNsPerOp, pt.ReoptNsPerOp))
		}
	}
	return notes
}
