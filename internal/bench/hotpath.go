package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"acache/internal/core"
)

// The hotpath experiment measures the real (wall-clock and heap) cost of the
// engine's per-update hot path — the quantity the zero-allocation storage
// layer optimizes. Like the sharding experiment it steps outside the
// deterministic cost meter: meter units are identical by construction across
// storage-layer rewrites, so only ns/op and allocs/op can show the effect.

// HotpathPoint is one measured configuration: the steady-state (post-warmup)
// per-update cost of the n-way join workload of Fig9.
type HotpathPoint struct {
	Relations   int     `json:"relations"`
	Caching     bool    `json:"caching"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// HotpathReport is the full run, JSON-ready for BENCH_hotpath.json.
// GOMAXPROCS and NumCPU record the host the numbers were taken on — they are
// wall-clock measurements and do not transfer across machines.
type HotpathReport struct {
	Warmup     int            `json:"warmup_appends"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	GoVersion  string         `json:"go_version"`
	Points     []HotpathPoint `json:"points"`
}

// RunHotpath measures the warm per-update cost of the Fig9 n-way workload
// for each relation count, with the adaptive engine and with the plain MJoin
// (caching disabled). Warmup fills windows and lets the adaptive engine
// settle on a cache set before the timer starts.
func RunHotpath(ns []int, cfg RunConfig) *HotpathReport {
	rep := &HotpathReport{
		Warmup:     cfg.Warmup,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	for _, n := range ns {
		rep.Points = append(rep.Points, runHotpathPoint(n, true, cfg))
		rep.Points = append(rep.Points, runHotpathPoint(n, false, cfg))
	}
	return rep
}

func runHotpathPoint(n int, caching bool, cfg RunConfig) HotpathPoint {
	w := nWayWorkload(n)
	c := core.Config{Seed: cfg.Seed}
	if caching {
		c.ReoptInterval = cfg.Measure / 8
		c.GCQuota = 6
	} else {
		c.DisableCaching = true
	}
	en, err := core.NewEngine(w.q, nil, c)
	if err != nil {
		panic(err)
	}
	src := w.source()
	for src.TotalAppends() < uint64(cfg.Warmup) {
		en.Process(src.Next())
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			en.Process(src.Next())
		}
	})
	return HotpathPoint{
		Relations:   n,
		Caching:     caching,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// JSON renders the report for BENCH_hotpath.json.
func (r *HotpathReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Experiment renders the report in the package's common table/chart form.
func (r *HotpathReport) Experiment() *Experiment {
	var x, cacheNs, mjoinNs, cacheAllocs []float64
	for _, pt := range r.Points {
		if pt.Caching {
			x = append(x, float64(pt.Relations))
			cacheNs = append(cacheNs, pt.NsPerOp)
			cacheAllocs = append(cacheAllocs, float64(pt.AllocsPerOp))
		} else {
			mjoinNs = append(mjoinNs, pt.NsPerOp)
		}
	}
	return &Experiment{
		ID:     "hotpath",
		Title:  "Hot-path cost per update (wall clock)",
		XLabel: "relations",
		YLabel: "ns/update",
		Series: []Series{
			{Label: "With caches (ns/op)", X: x, Y: cacheNs},
			{Label: "MJoin (ns/op)", X: x, Y: mjoinNs},
			{Label: "With caches (allocs/op)", X: x, Y: cacheAllocs},
		},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d, NumCPU=%d, %s (wall-clock measurement)",
				r.GOMAXPROCS, r.NumCPU, r.GoVersion),
		},
	}
}
