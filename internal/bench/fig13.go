package bench

import (
	"fmt"

	"acache/internal/core"
	"acache/internal/cost"
	"acache/internal/xjoin"
)

// Fig13 — "Adaptivity to memory availability": the D8 setup (uniform rates,
// all pairwise selectivities 0.001), sweeping the memory available for
// storing join subresults. The paper's findings: the MJoin is flat (it
// stores no subresults); the XJoin is infeasible below its subresult
// footprint and steps up beyond it; adaptive caching degrades smoothly as
// memory shrinks and spans the whole range.
func Fig13(cfg RunConfig) *Experiment {
	pt := Table2()[7] // D8
	w := pt.workload(cfg.Seed)

	// MJoin: memory-insensitive; measure once.
	mEn, err := core.NewEngine(w.q, nil, core.Config{
		DisableCaching: true,
		AdaptOrdering:  false, // static A-Greedy-style ordering; online reordering resets caches and only adds noise on these near-symmetric workloads
		ReoptInterval:  cfg.Measure / 8,
		Seed:           cfg.Seed,
	})
	if err != nil {
		panic(err)
	}
	mRate := measureEngine(mEn, w.source(), cfg)

	// XJoin: best tree, measured once; its subresult footprint defines the
	// infeasible region.
	tree := bestXJoin(w, cfg)
	xj := xjoin.New(w.q, tree, &cost.Meter{})
	xRate := measureXJoin(xj, w.source(), cfg)
	xBytes := xj.MemoryBytes()

	budgets := []float64{0, 5, 10, 15, 20, 25, 30, 40, 50, 60, 70} // KB
	var xs, m, x, a []float64
	for _, kb := range budgets {
		xs = append(xs, kb)
		m = append(m, mRate)
		if int(kb*1024) >= xBytes {
			x = append(x, xRate)
		} else {
			x = append(x, 0) // infeasible region
		}
		aEn, err := core.NewEngine(w.q, nil, core.Config{
			AdaptOrdering: false,
			ReoptInterval: cfg.Measure / 8,
			GCQuota:       6,
			MemoryBudget:  int(kb * 1024),
			Seed:          cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		if kb == 0 {
			// Zero budget: caches can hold nothing; equivalent to MJoin
			// plus profiling overhead.
			aEn.SetMemoryBudget(0)
		}
		a = append(a, measureEngine(aEn, w.source(), cfg))
	}
	return &Experiment{
		ID:     "fig13",
		Title:  "Adaptivity to memory availability (D8 setup)",
		XLabel: "memory (KB)",
		YLabel: "avg processing rate (tuples/sec)",
		Series: []Series{
			{Label: "XJoin", X: xs, Y: x},
			{Label: "Adaptive caching", X: xs, Y: a},
			{Label: "MJoin", X: xs, Y: m},
		},
		Notes: []string{
			fmt.Sprintf("best XJoin %s requires %.1f KB for its join subresults; budgets below that are infeasible (rate 0)",
				tree, float64(xBytes)/1024),
		},
	}
}

// All runs every experiment at the given scale, in paper order.
func All(cfg RunConfig) []*Experiment {
	return []*Experiment{
		Fig6(cfg), Fig7(cfg), Fig8(cfg), Fig9(cfg),
		Fig10(cfg), Fig11(cfg), Fig12(cfg), Fig13(cfg),
	}
}
