package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"acache/internal/core"
	"acache/internal/stream"
	"acache/internal/tuple"
)

// The filter experiment measures the real (wall-clock) effect of the
// fingerprint filters in front of the relation indexes. Like hotpath it
// steps outside the deterministic cost meter: the meter charges the
// unfiltered tariff whether filters are on or off (results and simulated
// cost are bit-identical by construction), so only ns/op can show what the
// short-circuited slot searches save. Two regimes bracket the design
// targets: a miss-heavy workload (disjoint join domains, miss probability
// ≈ 1) where filters should win ≥ 1.3×, and a hit-heavy workload (a tiny
// shared domain, probes nearly always match) where the filters are pure
// overhead and the adaptive knob is expected to hold the regression ≤ 5%.

// FilterPoint is one measured configuration.
type FilterPoint struct {
	Workload    string  `json:"workload"` // "miss-heavy" | "hit-heavy"
	Filters     bool    `json:"filters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	// MissProb is the observed index-probe miss probability over the run.
	MissProb float64 `json:"miss_prob"`
	// ShortCircuits and FalsePositives are the filter telemetry at the end
	// of the measured run; FilterBytes is the resident filter footprint.
	ShortCircuits  uint64 `json:"short_circuits"`
	FalsePositives uint64 `json:"false_positives"`
	FilterBytes    int    `json:"filter_bytes"`
}

// FilterReport is the full run, JSON-ready for BENCH_filter.json.
type FilterReport struct {
	Warmup     int           `json:"warmup_appends"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	GoVersion  string        `json:"go_version"`
	Points     []FilterPoint `json:"points"`
	// SpeedupMissHeavy is unfiltered-ns / filtered-ns on the miss-heavy
	// workload (target ≥ 1.3); RegressionHitHeavy is filtered-ns /
	// unfiltered-ns − 1 on the hit-heavy workload (target ≤ 0.05).
	SpeedupMissHeavy   float64 `json:"speedup_miss_heavy"`
	RegressionHitHeavy float64 `json:"regression_hit_heavy"`
}

// filterSource generates the three-way workload's update stream: relations
// round-robin, each keeping a sliding window of the given size, values drawn
// from per-relation domains. Disjoint domains (miss-heavy) make every index
// probe a guaranteed miss; a shared tiny domain (hit-heavy) makes nearly
// every probe match.
type filterSource struct {
	rng    *simpleRNG
	wins   [][]tuple.Tuple
	arity  []int
	base   []int64
	domain int64
	window int
	rel    int
}

// simpleRNG is a splitmix64 step — deterministic across runs and cheap
// enough to vanish against the measured engine work.
type simpleRNG struct{ s uint64 }

func (r *simpleRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func newFilterSource(missHeavy bool, window int, seed uint64) *filterSource {
	s := &filterSource{
		rng:    &simpleRNG{s: seed},
		wins:   make([][]tuple.Tuple, 3),
		arity:  []int{1, 2, 1},
		base:   []int64{0, 0, 0},
		window: window,
	}
	if missHeavy {
		// Disjoint per-relation value ranges: no probe ever matches.
		s.base = []int64{0, 1 << 40, 1 << 41}
		s.domain = 1 << 20
	} else {
		// A tiny shared domain: even composite (A,B) probes draw from just
		// domain² = 16 combinations against a window of 50, so nearly every
		// probe matches and the filters are pure overhead.
		s.domain = 4
	}
	return s
}

func (s *filterSource) next() stream.Update {
	rel := s.rel
	s.rel = (s.rel + 1) % 3
	if w := s.wins[rel]; len(w) >= s.window {
		s.wins[rel] = w[1:]
		return stream.Update{Op: stream.Delete, Rel: rel, Tuple: w[0]}
	}
	t := make(tuple.Tuple, s.arity[rel])
	for c := range t {
		t[c] = tuple.Value(s.base[rel] + int64(s.rng.next()%uint64(s.domain)))
	}
	s.wins[rel] = append(s.wins[rel], t)
	return stream.Update{Op: stream.Insert, Rel: rel, Tuple: t}
}

// RunFilter measures both regimes with filters on and off and derives the
// headline speedup and regression ratios.
func RunFilter(cfg RunConfig) *FilterReport {
	rep := &FilterReport{
		Warmup:     cfg.Warmup,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	var ns [2][2]float64 // [missHeavy][filters]
	for _, missHeavy := range []bool{true, false} {
		for _, filters := range []bool{true, false} {
			pt := runFilterPoint(missHeavy, filters, cfg)
			rep.Points = append(rep.Points, pt)
			i, j := 0, 0
			if missHeavy {
				i = 1
			}
			if filters {
				j = 1
			}
			ns[i][j] = pt.NsPerOp
		}
	}
	rep.SpeedupMissHeavy = ns[1][0] / ns[1][1]
	rep.RegressionHitHeavy = ns[0][1]/ns[0][0] - 1
	return rep
}

func runFilterPoint(missHeavy, filters bool, cfg RunConfig) FilterPoint {
	w := filterQueryWorkload()
	// Plain MJoin: with no caches in the pipelines every probe hits the
	// store indexes, the configuration the filters accelerate most.
	c := core.Config{Seed: cfg.Seed, DisableCaching: true, DisableFilters: !filters}
	en, err := core.NewEngine(w.q, nil, c)
	if err != nil {
		panic(err)
	}
	name := "hit-heavy"
	if missHeavy {
		name = "miss-heavy"
	}
	src := newFilterSource(missHeavy, 50, uint64(cfg.Seed)+1)
	for i := 0; i < cfg.Warmup; i++ {
		en.Process(src.next())
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			en.Process(src.next())
		}
	})
	fs := en.Exec().StoreFilterStats()
	missProb := 0.0
	if fs.Probes > 0 {
		missProb = float64(fs.Misses) / float64(fs.Probes)
	}
	return FilterPoint{
		Workload:       name,
		Filters:        filters,
		NsPerOp:        float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:    r.AllocsPerOp(),
		BytesPerOp:     r.AllocedBytesPerOp(),
		Iterations:     r.N,
		MissProb:       missProb,
		ShortCircuits:  fs.ShortCircuits,
		FalsePositives: fs.FalsePositives,
		FilterBytes:    en.FilterMemoryBytes(),
	}
}

// filterQueryWorkload is Section 7.1's R(A) ⋈ S(A,B) ⋈ T(B) chain, the same
// shape the other micro-experiments use.
func filterQueryWorkload() *workload {
	return &workload{q: threeWayQuery()}
}

// JSON renders the report for BENCH_filter.json.
func (r *FilterReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Experiment renders the report in the package's common table/chart form.
func (r *FilterReport) Experiment() *Experiment {
	var x, filtered, unfiltered []float64
	for i, pt := range r.Points {
		if pt.Filters {
			x = append(x, float64(i/2)) // 0 = miss-heavy, 1 = hit-heavy
			filtered = append(filtered, pt.NsPerOp)
		} else {
			unfiltered = append(unfiltered, pt.NsPerOp)
		}
	}
	return &Experiment{
		ID:     "filter",
		Title:  "Fingerprint-filtered probes (wall clock)",
		XLabel: "workload (0 = miss-heavy, 1 = hit-heavy)",
		YLabel: "ns/update",
		Series: []Series{
			{Label: "Filters on (ns/op)", X: x, Y: filtered},
			{Label: "Filters off (ns/op)", X: x, Y: unfiltered},
		},
		Notes: []string{
			fmt.Sprintf("miss-heavy speedup %.2f× (target ≥ 1.3), hit-heavy regression %.1f%% (target ≤ 5%%)",
				r.SpeedupMissHeavy, 100*r.RegressionHitHeavy),
			fmt.Sprintf("GOMAXPROCS=%d, NumCPU=%d, %s (wall-clock measurement)",
				r.GOMAXPROCS, r.NumCPU, r.GoVersion),
		},
	}
}
