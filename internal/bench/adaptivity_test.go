package bench

import "testing"

// TestAdaptivityReport exercises the experiment end to end at test scale and
// asserts the published decision-identity differential actually holds.
func TestAdaptivityReport(t *testing.T) {
	cfg := RunConfig{Warmup: 1500, Measure: 3000, Seed: 42}
	rep := RunAdaptivity([]int{3}, []int{4}, cfg)
	if !rep.DecisionsIdentical {
		t.Fatal("stride-1 fast paths diverged from the reference implementation")
	}
	if len(rep.Points) != 3 {
		t.Fatalf("got %d points, want 3 (mjoin, exact, stride4)", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v", pt.Mode, pt.NsPerOp)
		}
	}
	exact, stride := rep.Points[1], rep.Points[2]
	if exact.SampledFrac != 1.0 {
		t.Errorf("exact mode sampled %.2f of updates, want 1.0", exact.SampledFrac)
	}
	if stride.SampledFrac >= 0.5 {
		t.Errorf("stride-4 mode sampled %.2f of updates, sampling inactive", stride.SampledFrac)
	}
	if got := rep.Experiment(); got.ID != "adaptivity" || len(got.Series) != 3 {
		t.Errorf("experiment rendering wrong: id=%q series=%d", got.ID, len(got.Series))
	}
}
