package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"acache/internal/core"
	"acache/internal/shard"
)

// The sharding experiment is the one measurement in this package that uses
// wall-clock time instead of the deterministic cost meter: hash-partitioned
// parallelism cuts elapsed time by spreading work across cores, while the
// aggregate simulated work stays the same (shards run the same operators on
// slices of the same stream). Meter units therefore cannot show a speedup —
// only the clock can.

// ShardingPoint is one measured (GOMAXPROCS, shard count) pair of the
// scaling run.
type ShardingPoint struct {
	// GOMAXPROCS is the scheduler parallelism this point ran under; the
	// sweep re-measures every shard count at each value so the JSON
	// separates sharding overhead (visible at GOMAXPROCS=1) from actual
	// multi-core scaling.
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Shards       int     `json:"shards"`
	Partitioning string  `json:"partitioning"`
	WallSeconds  float64 `json:"wall_seconds"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// SpeedupVsSerial is this point's throughput over the P=1 point's at
	// the same GOMAXPROCS.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	Outputs         uint64  `json:"outputs"`
}

// ShardingReport is the full scaling run, JSON-ready for BENCH_sharding.json.
// GOMAXPROCS records the process default before the sweep (each point carries
// the value it actually ran under); NumCPU records the host parallelism the
// run had available: on a single-core host the sweep collapses to the
// GOMAXPROCS=1 group, every point sits at ≈1×, and the numbers measure
// sharding overhead, not scaling.
type ShardingReport struct {
	Relations int `json:"relations"`
	Warmup    int `json:"warmup_appends"`
	Measure   int `json:"measure_appends"`
	// BatchSize is the ingress→mailbox batch size in effect (the mailbox
	// batch is also what each shard's vectorized ProcessBatch digests per
	// call, up to MaxBatch); MaxBatch ≤ 0 means uncapped.
	BatchSize  int             `json:"batch_size"`
	MaxBatch   int             `json:"max_batch"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Points     []ShardingPoint `json:"points"`
}

// RunSharding measures wall-clock throughput of the sharded engine on the
// Fig9 n-way workload at each (GOMAXPROCS, shard count) pair, with the given
// mailbox batching options. procs lists the GOMAXPROCS values to sweep
// (values above runtime.NumCPU cannot exercise parallelism the host lacks
// and are skipped; nil means the current setting only). Every run replays
// the identical update stream; the Outputs column cross-checks that
// partitioning did not change the result cardinality.
func RunSharding(n int, shardCounts, procs []int, sopts shard.Options, cfg RunConfig) *ShardingReport {
	batchSize := sopts.BatchSize
	if batchSize <= 0 {
		batchSize = shard.DefaultBatchSize
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	rep := &ShardingReport{
		Relations:  n,
		Warmup:     cfg.Warmup,
		Measure:    cfg.Measure,
		BatchSize:  batchSize,
		MaxBatch:   sopts.MaxBatch,
		GOMAXPROCS: prev,
		NumCPU:     runtime.NumCPU(),
	}
	if len(procs) == 0 {
		procs = []int{prev}
	}
	for _, gmp := range procs {
		if gmp > runtime.NumCPU() {
			continue
		}
		runtime.GOMAXPROCS(gmp)
		base := len(rep.Points)
		for _, p := range shardCounts {
			pt := runShardingPoint(n, p, sopts, cfg)
			pt.GOMAXPROCS = gmp
			rep.Points = append(rep.Points, pt)
		}
		for i := base; i < len(rep.Points); i++ {
			if b := rep.Points[base].TuplesPerSec; b > 0 {
				rep.Points[i].SpeedupVsSerial = rep.Points[i].TuplesPerSec / b
			}
		}
	}
	return rep
}

func runShardingPoint(n, shards int, sopts shard.Options, cfg RunConfig) ShardingPoint {
	w := nWayWorkload(n)
	plan := shard.PlanPartitions(w.q, shards)
	sh, err := shard.New(plan, sopts, func(i int) (*core.Engine, error) {
		return core.NewEngine(w.q, nil, core.Config{
			ReoptInterval: cfg.Measure / 8,
			GCQuota:       6,
			// Decorrelate per-shard sampling, as BuildSharded does.
			Seed: cfg.Seed + int64(i)*1_000_003,
		})
	})
	if err != nil {
		panic(err)
	}
	defer sh.Close()
	src := w.source()
	for src.TotalAppends() < uint64(cfg.Warmup) {
		sh.Offer(src.Next())
	}
	sh.Flush()
	startAppends := src.TotalAppends()
	start := time.Now()
	for src.TotalAppends() < startAppends+uint64(cfg.Measure) {
		sh.Offer(src.Next())
	}
	sh.Flush()
	wall := time.Since(start).Seconds()
	pt := ShardingPoint{
		Shards:       plan.Shards,
		Partitioning: plan.String(),
		WallSeconds:  wall,
		Outputs:      sh.Outputs(),
	}
	if wall > 0 {
		pt.TuplesPerSec = float64(cfg.Measure) / wall
	}
	return pt
}

// JSON renders the report for BENCH_sharding.json.
func (r *ShardingReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Experiment renders the report in the package's common table/chart form:
// one tuples/sec + speedup series pair per GOMAXPROCS group.
func (r *ShardingReport) Experiment() *Experiment {
	notes := []string{
		fmt.Sprintf("n=%d relations, NumCPU=%d (wall-clock measurement)",
			r.Relations, r.NumCPU),
	}
	var series []Series
	for i := 0; i < len(r.Points); {
		gmp := r.Points[i].GOMAXPROCS
		var x, tput, speedup []float64
		for ; i < len(r.Points) && r.Points[i].GOMAXPROCS == gmp; i++ {
			x = append(x, float64(r.Points[i].Shards))
			tput = append(tput, r.Points[i].TuplesPerSec)
			speedup = append(speedup, r.Points[i].SpeedupVsSerial)
		}
		series = append(series,
			Series{Label: fmt.Sprintf("tuples/sec @GOMAXPROCS=%d", gmp), X: x, Y: tput},
			Series{Label: fmt.Sprintf("speedup vs P=1 @GOMAXPROCS=%d", gmp), X: x, Y: speedup})
	}
	if len(r.Points) > 0 {
		notes = append(notes, "partitioning: "+r.Points[len(r.Points)-1].Partitioning)
	}
	return &Experiment{
		ID:     "sharding",
		Title:  "Hash-partitioned scaling (wall clock)",
		XLabel: "shards",
		YLabel: "appends/sec (wall)",
		Series: series,
		Notes:  notes,
	}
}
