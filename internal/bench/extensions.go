package bench

import (
	"acache/internal/core"
	"acache/internal/synth"
)

// Extension experiments beyond the paper's evaluation.

// ExtSkew sweeps key skew: the three-way query with ΔT's probe keys drawn
// from a Zipf distribution of increasing skew parameter. The paper's
// workloads control hit probability through multiplicity; real streams are
// often skewed instead, and skew concentrates probes on few keys — the
// cache's best case. Not a paper figure; an extension.
func ExtSkew(cfg RunConfig) *Experiment {
	xs := []float64{1.1, 1.3, 1.5, 2, 2.5, 3}
	var mj, ca []float64
	for _, skew := range xs {
		w := &workload{
			q: threeWayQuery(),
			rels: []relSpec{
				{gen: synth.Tuples(synth.Uniform(0, 100, cfg.Seed)), window: 100, rate: 1},
				{gen: synth.Tuples(synth.Uniform(0, 100, cfg.Seed+1), synth.Uniform(0, 100, cfg.Seed+2)), window: 100, rate: 1},
				{gen: synth.Tuples(synth.Zipf(0, 100, skew, cfg.Seed+3)), window: 100, rate: 5},
			},
		}
		mj = append(mj, mjoinThreeWay(w, cfg, nil))
		ca = append(ca, cachedThreeWay(w, cfg, nil))
	}
	return &Experiment{
		ID:     "ext-skew",
		Title:  "Extension: probe-key skew (Zipf parameter) vs caching benefit",
		XLabel: "zipf s",
		YLabel: "avg processing rate (tuples/sec)",
		Series: []Series{
			{Label: "With caches", X: xs, Y: ca},
			{Label: "MJoin", X: xs, Y: mj},
			ratioSeries(xs, mj, ca),
		},
	}
}

// ExtIncremental compares from-scratch re-optimization against the
// Section 8 future-work incremental re-optimizer on the bursty Figure 12
// style workload — same adaptivity demands, different re-optimizer.
func ExtIncremental(cfg RunConfig) *Experiment {
	xs := []float64{1}
	var series []Series
	for _, m := range []struct {
		label string
		inc   bool
	}{
		{"From-scratch selection", false},
		{"Incremental (Section 8)", true},
	} {
		s := defaultThreeWay()
		w := s.workload()
		en, err := core.NewEngine(w.q, threeWayOrdering(), core.Config{
			ReoptInterval: cfg.Measure / 10,
			GCQuota:       6,
			Incremental:   m.inc,
			Seed:          cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		rate := measureEngine(en, w.source(), cfg)
		reopts, skipped := en.Reopts()
		series = append(series, Series{Label: m.label, X: xs, Y: []float64{rate}})
		series = append(series, Series{Label: m.label + " reopts", X: xs, Y: []float64{float64(reopts)}})
		_ = skipped
	}
	return &Experiment{
		ID:     "ext-incremental",
		Title:  "Extension: incremental re-optimization (Section 8 future work)",
		XLabel: "-",
		YLabel: "avg processing rate (tuples/sec)",
		Series: series,
	}
}

// ExtBudgetAware compares the paper's modular select-then-allocate pipeline
// against the integrated budget-aware selection (the future work the paper
// defers) across a sweep of tight memory budgets on the D8 workload.
func ExtBudgetAware(cfg RunConfig) *Experiment {
	pt := Table2()[7]
	budgets := []float64{2, 4, 8, 16, 32}
	var modular, integrated []float64
	for _, kb := range budgets {
		for _, aware := range []bool{false, true} {
			w := pt.workload(cfg.Seed)
			en, err := core.NewEngine(w.q, nil, core.Config{
				ReoptInterval: cfg.Measure / 8,
				MemoryBudget:  int(kb * 1024),
				BudgetAware:   aware,
				Seed:          cfg.Seed,
			})
			if err != nil {
				panic(err)
			}
			rate := measureEngine(en, w.source(), cfg)
			if aware {
				integrated = append(integrated, rate)
			} else {
				modular = append(modular, rate)
			}
		}
	}
	return &Experiment{
		ID:     "ext-budget",
		Title:  "Extension: integrated budget-aware selection vs the paper's modular pipeline",
		XLabel: "memory (KB)",
		YLabel: "avg processing rate (tuples/sec)",
		Series: []Series{
			{Label: "Modular (paper)", X: budgets, Y: modular},
			{Label: "Integrated", X: budgets, Y: integrated},
		},
	}
}

// ExtAdaptivityOverhead quantifies the paper's "near-zero adaptivity
// overhead" claim (visible in Figure 12 pre-burst): the same stationary
// workload run with the full adaptive machinery (profiling, shadows,
// re-optimization) against the same plan forced statically — the rate gap
// is the price of staying adaptive.
func ExtAdaptivityOverhead(cfg RunConfig) *Experiment {
	multiplicities := []float64{1, 5, 10}
	var static, adaptive []float64
	for _, r := range multiplicities {
		s := defaultThreeWay()
		s.multT = int(r)
		s.rateT = r
		w := s.workload()
		static = append(static, cachedThreeWay(w, cfg, nil))
		en, err := core.NewEngine(w.q, threeWayOrdering(), core.Config{
			ReoptInterval: cfg.Measure / 8,
			GCQuota:       6,
			Seed:          cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		adaptive = append(adaptive, measureEngine(en, w.source(), cfg))
	}
	return &Experiment{
		ID:     "ext-overhead",
		Title:  "Extension: adaptivity overhead — adaptive engine vs the same plan forced statically",
		XLabel: "multiplicity",
		YLabel: "avg processing rate (tuples/sec)",
		Series: []Series{
			{Label: "Static (forced cache)", X: multiplicities, Y: static},
			{Label: "Adaptive (full machinery)", X: multiplicities, Y: adaptive},
		},
	}
}

// Extensions runs the extension experiments.
func Extensions(cfg RunConfig) []*Experiment {
	return []*Experiment{ExtSkew(cfg), ExtIncremental(cfg), ExtBudgetAware(cfg), ExtAdaptivityOverhead(cfg)}
}
