// Package bench reproduces every table and figure of the paper's
// experimental evaluation (Section 7). Each experiment builds the paper's
// workload from the synthetic generator, runs the competing plans on the
// deterministic cost model, and reports the same rows/series the paper
// plots: absolute average tuple-processing rates and the caching-to-MJoin
// time ratios.
//
// Rates are appends (input stream tuples) per simulated second, exactly the
// paper's "maximum load the system can handle" metric under the work-unit
// substitution documented in DESIGN.md; all adaptivity overheads (profiling,
// shadow Bloom filters, re-optimization) are charged to the same meter and
// therefore included, as in the paper.
package bench

import (
	"fmt"
	"strings"

	"acache/internal/core"
	"acache/internal/cost"
	"acache/internal/query"
	"acache/internal/stream"
	"acache/internal/tuple"
	"acache/internal/xjoin"
)

// Series is one plotted line: parallel X/Y points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Experiment is one reproduced table or figure.
type Experiment struct {
	ID     string // e.g. "fig6"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Table renders the experiment as an aligned text table, one row per X.
func (e *Experiment) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", e.ID, e.Title)
	fmt.Fprintf(&b, "%-14s", e.XLabel)
	for _, s := range e.Series {
		fmt.Fprintf(&b, "  %16s", s.Label)
	}
	b.WriteByte('\n')
	if len(e.Series) > 0 {
		for i := range e.Series[0].X {
			fmt.Fprintf(&b, "%-14.4g", e.Series[0].X[i])
			for _, s := range e.Series {
				if i < len(s.Y) {
					fmt.Fprintf(&b, "  %16.1f", s.Y[i])
				} else {
					fmt.Fprintf(&b, "  %16s", "-")
				}
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the experiment as plot-ready CSV: a header of the x label and
// series labels, then one row per x value. Notes become trailing comment
// lines.
func (e *Experiment) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(e.XLabel))
	for _, s := range e.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Label))
	}
	b.WriteByte('\n')
	if len(e.Series) > 0 {
		for i := range e.Series[0].X {
			fmt.Fprintf(&b, "%g", e.Series[0].X[i])
			for _, s := range e.Series {
				b.WriteByte(',')
				if i < len(s.Y) {
					fmt.Fprintf(&b, "%g", s.Y[i])
				}
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// RunConfig scales experiment length: the full runs match the paper's
// horizons; tests shrink them.
type RunConfig struct {
	// Warmup and Measure are append counts per measured plan.
	Warmup, Measure int
	Seed            int64
}

// Full returns the default full-scale configuration.
func Full() RunConfig { return RunConfig{Warmup: 30_000, Measure: 60_000, Seed: 42} }

// Quick returns a scaled-down configuration for tests.
func Quick() RunConfig { return RunConfig{Warmup: 3_000, Measure: 6_000, Seed: 42} }

// relSpec describes one input stream for a workload.
type relSpec struct {
	gen    stream.TupleGen
	window int
	rate   float64
}

// workload couples a query with its input streams.
type workload struct {
	q    *query.Query
	rels []relSpec
}

func (w *workload) source() *stream.Source {
	rs := make([]stream.RelStream, len(w.rels))
	for i, r := range w.rels {
		rs[i] = stream.RelStream{Gen: r.gen, WindowSize: r.window, Rate: r.rate}
	}
	return stream.NewSource(rs)
}

// measureEngine drives the engine over a fresh source: warmup appends, then
// measure appends with the meter differenced. Returns appends per simulated
// second.
func measureEngine(en *core.Engine, src *stream.Source, cfg RunConfig) float64 {
	for src.TotalAppends() < uint64(cfg.Warmup) {
		en.Process(src.Next())
	}
	start := en.Meter().Total()
	startAppends := src.TotalAppends()
	for src.TotalAppends() < startAppends+uint64(cfg.Measure) {
		en.Process(src.Next())
	}
	return cost.Rate(int(src.TotalAppends()-startAppends), en.Meter().Total()-start)
}

// measureXJoin mirrors measureEngine for an XJoin baseline.
func measureXJoin(x *xjoin.XJoin, src *stream.Source, cfg RunConfig) float64 {
	for src.TotalAppends() < uint64(cfg.Warmup) {
		x.Process(src.Next())
	}
	start := x.Meter().Total()
	startAppends := src.TotalAppends()
	for src.TotalAppends() < startAppends+uint64(cfg.Measure) {
		x.Process(src.Next())
	}
	return cost.Rate(int(src.TotalAppends()-startAppends), x.Meter().Total()-start)
}

// bestXJoin trials every tree shape on a short prefix of the workload and
// returns the best performer's shape — the paper's "X is chosen by
// exhaustive search".
func bestXJoin(w *workload, cfg RunConfig) *xjoin.Tree {
	rels := make([]int, w.q.N())
	for i := range rels {
		rels[i] = i
	}
	trial := RunConfig{Warmup: cfg.Warmup / 4, Measure: cfg.Measure / 4, Seed: cfg.Seed}
	if trial.Warmup == 0 {
		trial.Warmup = 1
	}
	if trial.Measure == 0 {
		trial.Measure = 1
	}
	var best *xjoin.Tree
	bestRate := -1.0
	for _, tr := range xjoin.Enumerate(rels) {
		x := xjoin.New(w.q, tr, &cost.Meter{})
		if rate := measureXJoin(x, w.source(), trial); rate > bestRate {
			bestRate = rate
			best = tr
		}
	}
	return best
}

// mustQuery panics on a malformed experiment query — a harness bug.
func mustQuery(schemas []*tuple.Schema, preds []query.Pred) *query.Query {
	q, err := query.New(schemas, preds)
	if err != nil {
		panic(err)
	}
	return q
}

// threeWayQuery is Section 7.1's R(A) ⋈_A S(A,B) ⋈_B T(B); relations are
// indexed R=0, S=1, T=2.
func threeWayQuery() *query.Query {
	return mustQuery(
		[]*tuple.Schema{
			tuple.RelationSchema(0, "A"),
			tuple.RelationSchema(1, "A", "B"),
			tuple.RelationSchema(2, "B"),
		},
		[]query.Pred{
			{Left: tuple.Attr{Rel: 0, Name: "A"}, Right: tuple.Attr{Rel: 1, Name: "A"}},
			{Left: tuple.Attr{Rel: 1, Name: "B"}, Right: tuple.Attr{Rel: 2, Name: "B"}},
		},
	)
}

// nWayQuery is Section 7.1's R1(A) ⋈_A … ⋈_A Rn(A).
func nWayQuery(n int) *query.Query {
	schemas := make([]*tuple.Schema, n)
	var preds []query.Pred
	for i := 0; i < n; i++ {
		schemas[i] = tuple.RelationSchema(i, "A")
		if i > 0 {
			preds = append(preds, query.Pred{
				Left:  tuple.Attr{Rel: i - 1, Name: "A"},
				Right: tuple.Attr{Rel: i, Name: "A"},
			})
		}
	}
	return mustQuery(schemas, preds)
}

// ratioSeries computes the paper's relative graphs: the tuple-processing
// time ratio of caching to MJoin, time_C/time_M = rate_M/rate_C.
func ratioSeries(x []float64, mjoin, caching []float64) Series {
	y := make([]float64, len(x))
	for i := range x {
		if caching[i] > 0 {
			y[i] = mjoin[i] / caching[i]
		}
	}
	return Series{Label: "time ratio C/M", X: x, Y: y}
}

// WorkloadOf, QueryOf, and SourceOf expose workload internals for the
// diagnostic tooling in cmd/.
func WorkloadOf(pt SamplePoint, seed int64) *workload { return pt.workload(seed) }

// QueryOf returns the workload's query.
func QueryOf(w *workload) *query.Query { return w.q }

// SourceOf builds a fresh source for the workload.
func SourceOf(w *workload) *stream.Source { return w.source() }
