package bench

import (
	"encoding/json"
	"testing"

	"acache/internal/shard"
)

func TestRunShardingShape(t *testing.T) {
	cfg := RunConfig{Warmup: 500, Measure: 1500, Seed: 42}
	rep := RunSharding(4, []int{1, 2}, []int{1}, shard.Options{}, cfg)
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	if rep.Points[0].Shards != 1 || rep.Points[1].Shards != 2 {
		t.Fatalf("shard counts = %d, %d", rep.Points[0].Shards, rep.Points[1].Shards)
	}
	for i, pt := range rep.Points {
		if pt.GOMAXPROCS != 1 {
			t.Fatalf("point %d gomaxprocs = %d, want 1", i, pt.GOMAXPROCS)
		}
	}
	// Partitioning must not change result cardinality: same stream, same
	// outputs at every shard count.
	if rep.Points[0].Outputs != rep.Points[1].Outputs {
		t.Fatalf("outputs diverge across shard counts: %d vs %d",
			rep.Points[0].Outputs, rep.Points[1].Outputs)
	}
	for i, pt := range rep.Points {
		if pt.TuplesPerSec <= 0 || pt.WallSeconds <= 0 {
			t.Fatalf("point %d not measured: %+v", i, pt)
		}
	}
	if rep.Points[0].SpeedupVsSerial != 1 {
		t.Fatalf("P=1 speedup = %v, want 1", rep.Points[0].SpeedupVsSerial)
	}

	var back ShardingReport
	if err := json.Unmarshal(rep.JSON(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.GOMAXPROCS != rep.GOMAXPROCS || len(back.Points) != 2 {
		t.Fatalf("JSON lost fields: %+v", back)
	}

	e := rep.Experiment()
	if e.ID != "sharding" || len(e.Series) != 2 {
		t.Fatalf("experiment shape: %+v", e)
	}
	for _, s := range e.Series {
		finitePositive(t, s)
	}
}
