package bench

import (
	"fmt"

	"acache/internal/core"
	"acache/internal/cost"
	"acache/internal/synth"
	"acache/internal/xjoin"
)

// SamplePoint is one row of Table 2: relative stream arrival rates (to T)
// and pairwise join selectivities for the 4-way join
// R(A) ⋈ S(A) ⋈ T(A) ⋈ U(A). Relations are indexed R=0, S=1, T=2, U=3.
type SamplePoint struct {
	Name  string
	Rates [4]float64
	// Sel holds the six pairwise selectivities in the paper's column
	// order: RS, RT, RU, ST, SU, TU.
	Sel [6]float64
}

// Table2 reproduces the paper's eight sample points.
func Table2() []SamplePoint {
	return []SamplePoint{
		{"D1", [4]float64{10, 1, 1, 1}, [6]float64{0.004, 0.005, 0.005, 0.007, 0.0045, 0.005}},
		{"D2", [4]float64{8, 1, 1, 8}, [6]float64{0.004, 0.005, 0.005, 0.007, 0.0045, 0.005}},
		{"D3", [4]float64{10, 15, 1, 5}, [6]float64{0.003, 0.005, 0.007, 0.0045, 0.006, 0.008}},
		{"D4", [4]float64{1, 1, 1, 1}, [6]float64{0.003, 0.004, 0.0067, 0.002, 0.0023, 0.0027}},
		{"D5", [4]float64{4, 1, 1, 4}, [6]float64{0.005, 0.007, 0.005, 0.006, 0.005, 0.002}},
		{"D6", [4]float64{1, 1, 1, 1}, [6]float64{0.005, 0.0033, 0.0025, 0.0067, 0.005, 0.0075}},
		{"D7", [4]float64{1, 1, 1, 1}, [6]float64{0, 0, 0, 0, 0, 0}},
		{"D8", [4]float64{1, 1, 1, 1}, [6]float64{0.001, 0.001, 0.001, 0.001, 0.001, 0.001}},
	}
}

// selMatrix expands the six pairwise selectivities into a symmetric matrix.
func (p SamplePoint) selMatrix() [][]float64 {
	m := make([][]float64, 4)
	for i := range m {
		m[i] = make([]float64, 4)
	}
	pairs := [6][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for k, pr := range pairs {
		m[pr[0]][pr[1]] = p.Sel[k]
		m[pr[1]][pr[0]] = p.Sel[k]
	}
	return m
}

// workload builds the point's input streams: uniform draws over nested
// domains fitted to the selectivity matrix (disjoint domains when every
// selectivity is zero), windows of 200 tuples, rates per Table 2.
func (p SamplePoint) workload(seed int64) *workload {
	w := &workload{q: nWayQuery(4)}
	const window = 200
	domains := synth.FitDomains(p.selMatrix())
	allZero := true
	for _, d := range domains {
		if d != 0 {
			allZero = false
		}
	}
	var gens []synth.ValueGen
	if allZero {
		gens = synth.DisjointUniform(4, 1000, seed)
	} else {
		gens = make([]synth.ValueGen, 4)
		for i, d := range domains {
			if d == 0 {
				d = 1_000_000 // no positive selectivity with any partner
			}
			gens[i] = synth.Uniform(0, d, seed+int64(i))
		}
	}
	for i := 0; i < 4; i++ {
		w.rels = append(w.rels, relSpec{
			gen:    synth.Tuples(gens[i]),
			window: window,
			rate:   p.Rates[i],
		})
	}
	return w
}

// Fig11 — "Performance of stream-join plans": the four plan families at the
// eight Table 2 sample points. M = best MJoin (adaptive ordering, no
// caches), X = best XJoin (exhaustive tree search), P = caching with the
// prefix invariant, G = caching with globally-consistent candidates
// (quota m = 6). The paper's findings: X, P, G ≫ M almost always; X > P at
// D1–D3 (the prefix invariant blocks a high-benefit cache); G ≈ X; and G >
// X at D2, D3, D4, D7 (an XJoin can materialize at most one 3-way
// subresult, G is unrestricted).
func Fig11(cfg RunConfig) *Experiment {
	points := Table2()
	xs := make([]float64, len(points))
	var m, x, pp, g []float64
	var notes []string
	for i, pt := range points {
		xs[i] = float64(i + 1)
		w := pt.workload(cfg.Seed)

		mEn, err := core.NewEngine(w.q, nil, core.Config{
			DisableCaching: true,
			AdaptOrdering:  false, // static A-Greedy-style ordering; online reordering resets caches and only adds noise on these near-symmetric workloads
			ReoptInterval:  cfg.Measure / 8,
			Seed:           cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		m = append(m, measureEngine(mEn, w.source(), cfg))

		tree := bestXJoin(w, cfg)
		xj := xjoin.New(w.q, tree, &cost.Meter{})
		x = append(x, measureXJoin(xj, w.source(), cfg))

		pEn, err := core.NewEngine(w.q, nil, core.Config{
			AdaptOrdering: false,
			ReoptInterval: cfg.Measure / 8,
			Selection:     core.SelectExhaustive,
			Seed:          cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		pp = append(pp, measureEngine(pEn, w.source(), cfg))

		gEn, err := core.NewEngine(w.q, nil, core.Config{
			AdaptOrdering: false,
			ReoptInterval: cfg.Measure / 8,
			GCQuota:       6,
			Selection:     core.SelectExhaustive,
			Seed:          cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		g = append(g, measureEngine(gEn, w.source(), cfg))

		notes = append(notes, fmt.Sprintf("%s: best XJoin %s; P used %d caches, G used %d",
			pt.Name, tree, len(pEn.UsedCaches()), len(gEn.UsedCaches())))
	}
	return &Experiment{
		ID:     "fig11",
		Title:  "Performance of stream-join plans at Table 2's sample points D1–D8",
		XLabel: "sample point",
		YLabel: "max input load (tuples/sec)",
		Series: []Series{
			{Label: "M (MJoin)", X: xs, Y: m},
			{Label: "X (XJoin)", X: xs, Y: x},
			{Label: "P (prefix caching)", X: xs, Y: pp},
			{Label: "G (global caching)", X: xs, Y: g},
		},
		Notes: notes,
	}
}
