// Package recovery measures the durability layer end to end: the cost of
// write-ahead logging on the ingest path, checkpoint save time, and — the
// numbers a recovery-time objective is written against — the wall clock of a
// WAL-replay restart after a kill and of a checkpoint-based warm restart. It
// lives outside package bench because it drives the public acache API (the
// WAL and checkpoint are implemented there), and package bench is imported
// by acache's own benchmarks.
package recovery

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"acache"

	"acache/internal/bench"
)

// Point is one measured phase of the recovery lifecycle.
type Point struct {
	// Label is "in-memory-ingest", "logged-ingest", "replay-restart",
	// "checkpoint-save", or "warm-restart".
	Label       string  `json:"label"`
	WallSeconds float64 `json:"wall_seconds"`
	// TuplesPerSec is the ingest or replay rate (0 for checkpoint-save and
	// warm-restart, which do not stream tuples).
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// RecordsReplayed is the WAL record count a restart re-applied.
	RecordsReplayed uint64 `json:"records_replayed,omitempty"`
	// ReplayReason is how WAL replay ended on a restart phase.
	ReplayReason string `json:"replay_reason,omitempty"`
}

// Report is the full run, JSON-ready for BENCH_recovery.json.
type Report struct {
	Relations int    `json:"relations"`
	Window    int    `json:"window"`
	Appends   int    `json:"appends"`
	WALBytes  int64  `json:"wal_bytes"`
	CkptBytes int64  `json:"ckpt_bytes"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
	// LogOverhead is logged-ingest wall over in-memory wall, minus 1 — what
	// durability costs on the hot path.
	LogOverhead float64 `json:"log_overhead"`
	// Exact reports whether both restarts reproduced the in-memory run's
	// window state (per-relation cardinalities) — the correctness cross-check
	// behind the timing numbers.
	Exact  bool    `json:"exact"`
	Points []Point `json:"points"`
}

const (
	window = 2048
	seed   = 42
)

func durQuery() *acache.Query {
	return acache.NewQuery().
		WindowedRelation("R", window, "A", "P1", "P2", "P3").
		WindowedRelation("S", window, "A", "B", "P1", "P2").
		WindowedRelation("T", window, "B", "P1", "P2", "P3").
		Join("R.A", "S.A").
		Join("S.B", "T.B")
}

func durOpts(dir string) acache.Options {
	return acache.Options{
		ReoptInterval: 10_000_000,
		Seed:          seed,
		Tier:          acache.TierOptions{Dir: dir},
	}
}

// ingest streams n deterministic appends and returns the wall clock.
func ingest(e *acache.Engine, n int) float64 {
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			e.Append("R", rng.Int63n(500), 0, 0, 0)
		case 1:
			e.Append("S", rng.Int63n(500), rng.Int63n(500), 0, 0)
		default:
			e.Append("T", rng.Int63n(500), 0, 0, 0)
		}
	}
	return time.Since(start).Seconds()
}

func windowLens(e *acache.Engine) [3]int {
	return [3]int{e.WindowLen("R"), e.WindowLen("S"), e.WindowLen("T")}
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Run measures the five phases on cfg.Measure appends.
func Run(cfg bench.RunConfig) *Report {
	n := cfg.Measure
	rep := &Report{
		Relations: 3,
		Window:    window,
		Appends:   n,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}

	// Phase 1: the undurable baseline the log overhead is measured against.
	base, err := durQuery().Build(acache.Options{ReoptInterval: 10_000_000, Seed: seed})
	if err != nil {
		panic(err)
	}
	baseWall := ingest(base, n)
	baseLens := windowLens(base)
	base.Close()
	rep.Points = append(rep.Points, Point{
		Label: "in-memory-ingest", WallSeconds: baseWall,
		TuplesPerSec: rate(n, baseWall),
	})

	dir, err := os.MkdirTemp("", "acache-recovery-bench")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Phase 2: the same ingest with the WAL on, synced at the end.
	e, _, err := durQuery().BuildDurable(durOpts(dir))
	if err != nil {
		panic(err)
	}
	logWall := ingest(e, n)
	if err := e.SyncWAL(); err != nil {
		panic(err)
	}
	rep.WALBytes = fileSize(filepath.Join(dir, "wal.log"))
	if baseWall > 0 {
		rep.LogOverhead = logWall/baseWall - 1
	}
	rep.Points = append(rep.Points, Point{
		Label: "logged-ingest", WallSeconds: logWall,
		TuplesPerSec: rate(n, logWall),
	})

	// Phase 3: kill (the engine is abandoned un-closed) and restart; every
	// record replays through the checksummed frame scanner.
	start := time.Now()
	r1, _, err := durQuery().BuildDurable(durOpts(dir))
	if err != nil {
		panic(err)
	}
	replayWall := time.Since(start).Seconds()
	st := r1.Stats()
	exact := windowLens(r1) == baseLens && st.WALRecordsReplayed == uint64(n)
	rep.Points = append(rep.Points, Point{
		Label: "replay-restart", WallSeconds: replayWall,
		TuplesPerSec:    rate(int(st.WALRecordsReplayed), replayWall),
		RecordsReplayed: st.WALRecordsReplayed,
		ReplayReason:    st.WALReplayReason,
	})

	// Phase 4: checkpoint the replayed state (write, fsync, rename, fsync).
	start = time.Now()
	if err := r1.SaveCheckpoint(); err != nil {
		panic(err)
	}
	ckptWall := time.Since(start).Seconds()
	rep.CkptBytes = fileSize(filepath.Join(dir, "engine.ckpt"))
	rep.Points = append(rep.Points, Point{Label: "checkpoint-save", WallSeconds: ckptWall})

	// Phase 5: clean shutdown, then the checkpoint-based warm restart — no
	// records to replay, state loads from the verified snapshot.
	if err := r1.CloseKeep(); err != nil {
		panic(err)
	}
	start = time.Now()
	r2, warm, err := durQuery().BuildDurable(durOpts(dir))
	if err != nil {
		panic(err)
	}
	warmWall := time.Since(start).Seconds()
	st = r2.Stats()
	exact = exact && warm && windowLens(r2) == baseLens && st.WALRecordsReplayed == 0
	rep.Points = append(rep.Points, Point{
		Label: "warm-restart", WallSeconds: warmWall,
		RecordsReplayed: st.WALRecordsReplayed,
		ReplayReason:    st.WALReplayReason,
	})
	r2.Close()
	rep.Exact = exact
	return rep
}

func rate(n int, wall float64) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(n) / wall
}

// JSON renders the report for BENCH_recovery.json.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Experiment renders the report in the bench package's common table form.
func (r *Report) Experiment() *bench.Experiment {
	var x, wall, tps []float64
	labels := make([]string, len(r.Points))
	for i, pt := range r.Points {
		x = append(x, float64(i))
		wall = append(wall, pt.WallSeconds)
		tps = append(tps, pt.TuplesPerSec)
		labels[i] = fmt.Sprintf("%d=%s", i, pt.Label)
	}
	notes := []string{
		fmt.Sprintf("phases: %v", labels),
		fmt.Sprintf("appends=%d, window=%d, wal=%dB, ckpt=%dB, GOMAXPROCS=%d, NumCPU=%d, %s (wall-clock measurement)",
			r.Appends, r.Window, r.WALBytes, r.CkptBytes,
			runtime.GOMAXPROCS(0), r.NumCPU, r.GoVersion),
		fmt.Sprintf("log overhead vs in-memory: %.1f%%", r.LogOverhead*100),
		fmt.Sprintf("restarts exact: %v", r.Exact),
	}
	return &bench.Experiment{
		ID:     "recovery",
		Title:  "Durability lifecycle (WAL overhead, replay and warm restart)",
		XLabel: "phase (see notes)",
		YLabel: "seconds",
		Series: []bench.Series{
			{Label: "wall seconds", X: x, Y: wall},
			{Label: "tuples/sec", X: x, Y: tps},
		},
		Notes: notes,
	}
}
