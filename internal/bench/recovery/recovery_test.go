package recovery

import (
	"encoding/json"
	"testing"

	"acache/internal/bench"
)

// TestRunSmoke runs the lifecycle at a tiny scale and checks shape and
// correctness invariants — not timings, which depend on the host.
func TestRunSmoke(t *testing.T) {
	rep := Run(bench.RunConfig{Measure: 1500, Seed: 1})
	if len(rep.Points) != 5 {
		t.Fatalf("got %d points, want 5 lifecycle phases", len(rep.Points))
	}
	if !rep.Exact {
		t.Fatal("a restart diverged from the in-memory run")
	}
	if rep.WALBytes <= 0 || rep.CkptBytes <= 0 {
		t.Fatalf("durable files unmeasured: wal=%d ckpt=%d", rep.WALBytes, rep.CkptBytes)
	}
	byLabel := map[string]Point{}
	for _, pt := range rep.Points {
		byLabel[pt.Label] = pt
	}
	if pt := byLabel["replay-restart"]; pt.RecordsReplayed != uint64(rep.Appends) || pt.ReplayReason != "clean" {
		t.Fatalf("replay phase wrong: %+v", pt)
	}
	if pt := byLabel["warm-restart"]; pt.RecordsReplayed != 0 {
		t.Fatalf("warm restart replayed %d records, want 0", pt.RecordsReplayed)
	}
	var back Report
	if err := json.Unmarshal(rep.JSON(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(back.Points) != len(rep.Points) {
		t.Fatal("round-trip lost points")
	}
	if e := rep.Experiment(); e == nil || len(e.Series) != 2 {
		t.Fatal("Experiment shape wrong")
	}
}
