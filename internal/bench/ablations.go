package bench

import (
	"acache/internal/core"
	"acache/internal/profiler"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. These are
// not paper figures; they quantify the reproduction's own decisions.

// AblationSelection compares the four offline cache-selection algorithms
// (Section 4.4 / Appendix B) end to end: the same D8-style workload run
// under each algorithm, plus the caching-disabled baseline. Exhaustive is
// exact; the greedy and randomized-LP approximations should land within
// their O(log n) factor — in practice nearly indistinguishable at n = 4.
func AblationSelection(cfg RunConfig) *Experiment {
	pt := Table2()[7] // D8
	w := pt.workload(cfg.Seed)
	modes := []struct {
		label string
		mode  core.SelectionMode
		off   bool
	}{
		{"No caching", 0, true},
		{"Exhaustive", core.SelectExhaustive, false},
		{"Greedy", core.SelectGreedy, false},
		{"Randomized LP", core.SelectRandomized, false},
		{"Auto", core.SelectAuto, false},
	}
	xs := []float64{1}
	var series []Series
	for _, m := range modes {
		en, err := core.NewEngine(w.q, nil, core.Config{
			DisableCaching: m.off,
			ReoptInterval:  cfg.Measure / 8,
			Selection:      m.mode,
			Seed:           cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		rate := measureEngine(en, w.source(), cfg)
		series = append(series, Series{Label: m.label, X: xs, Y: []float64{rate}})
	}
	return &Experiment{
		ID:     "ablation-selection",
		Title:  "Offline selection algorithms, end to end (D8 workload)",
		XLabel: "-",
		YLabel: "avg processing rate (tuples/sec)",
		Series: series,
	}
}

// AblationMissEstimator compares the paper's Appendix-A windowed
// miss-probability estimator against the retention-aware refinement this
// reproduction uses for decisions (DESIGN.md deviation 2), on the
// Section 7.2 three-way workload whose probe keys cycle with a period far
// beyond the estimation window — the case where the windowed estimator's
// bias suppresses profitable caches.
func AblationMissEstimator(cfg RunConfig) *Experiment {
	xs := []float64{1}
	var series []Series
	for _, m := range []struct {
		label string
		paper bool
	}{
		{"Retention-aware", false},
		{"Paper windowed", true},
	} {
		// Multiplicity 1: probe keys cycle with period = domain ≫ Wd, so
		// within-window repeats are rare and only cross-window retention
		// produces hits — the regime where the windowed estimator's bias
		// suppresses a profitable cache (hits here come from the window
		// deletes re-probing their insert's key, the paper's own
		// Figure 6 multiplicity-1 observation).
		s := defaultThreeWay()
		s.multT = 1
		s.rateT = 5
		w := s.workload()
		en, err := core.NewEngine(w.q, threeWayOrdering(), core.Config{
			ReoptInterval: cfg.Measure / 8,
			Profiler:      profiler.Config{PaperMissEstimator: m.paper},
			Seed:          cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		rate := measureEngine(en, w.source(), cfg)
		series = append(series, Series{Label: m.label, X: xs, Y: []float64{rate}})
	}
	return &Experiment{
		ID:     "ablation-missprob",
		Title:  "Miss-probability estimator: retention-aware vs Appendix A windowed",
		XLabel: "-",
		YLabel: "avg processing rate (tuples/sec)",
		Series: series,
		Notes: []string{
			"probe keys cycle with period ≫ Wd: the windowed estimator overestimates misses and under-adopts caches",
		},
	}
}

// AblationProfilingRate sweeps the tuple-sampling probability p_i
// (Appendix A): higher sampling gives fresher statistics but every profiled
// update runs cache-free — the run-time-overhead-vs-adaptivity trade-off of
// Section 4.5(a).
func AblationProfilingRate(cfg RunConfig) *Experiment {
	xs := []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2}
	var ys []float64
	for _, p := range xs {
		s := defaultThreeWay()
		w := s.workload()
		en, err := core.NewEngine(w.q, threeWayOrdering(), core.Config{
			ReoptInterval: cfg.Measure / 8,
			Profiler:      profiler.Config{SampleProb: p},
			Seed:          cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		ys = append(ys, measureEngine(en, w.source(), cfg))
	}
	return &Experiment{
		ID:     "ablation-sampling",
		Title:  "Profiling sample probability p_i vs throughput",
		XLabel: "p_i",
		YLabel: "avg processing rate (tuples/sec)",
		Series: []Series{{Label: "A-Caching", X: xs, Y: ys}},
	}
}

// AblationReplacement compares the paper's direct-mapped cache replacement
// against 2-way set-associative replacement (Section 3.3's planned
// experiment) end to end, at equal cache capacity, under a tight memory
// budget where collisions matter most.
func AblationReplacement(cfg RunConfig) *Experiment {
	xs := []float64{1}
	var series []Series
	for _, m := range []struct {
		label  string
		twoWay bool
	}{
		{"Direct-mapped (paper)", false},
		{"2-way set-associative", true},
	} {
		s := defaultThreeWay()
		w := s.workload()
		en, err := core.NewEngine(w.q, threeWayOrdering(), core.Config{
			ReoptInterval: cfg.Measure / 8,
			TwoWayCaches:  m.twoWay,
			Seed:          cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		rate := measureEngine(en, w.source(), cfg)
		series = append(series, Series{Label: m.label, X: xs, Y: []float64{rate}})
	}
	return &Experiment{
		ID:     "ablation-replacement",
		Title:  "Cache replacement scheme: direct-mapped vs 2-way set-associative",
		XLabel: "-",
		YLabel: "avg processing rate (tuples/sec)",
		Series: series,
	}
}

// AblationPriming compares the paper's incremental miss-population against
// eager warm-start priming of freshly selected caches. Priming's win is the
// cold period: it shows most on shorter runs and larger key populations.
func AblationPriming(cfg RunConfig) *Experiment {
	xs := []float64{1}
	var series []Series
	for _, m := range []struct {
		label string
		prime bool
	}{
		{"Incremental population (paper)", false},
		{"Primed (warm start)", true},
	} {
		s := defaultThreeWay()
		w := s.workload()
		en, err := core.NewEngine(w.q, threeWayOrdering(), core.Config{
			ReoptInterval: cfg.Measure / 8,
			PrimeCaches:   m.prime,
			Seed:          cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		rate := measureEngine(en, w.source(), cfg)
		series = append(series, Series{Label: m.label, X: xs, Y: []float64{rate}})
	}
	return &Experiment{
		ID:     "ablation-priming",
		Title:  "Cache population: incremental (miss-driven) vs primed (warm start)",
		XLabel: "-",
		YLabel: "avg processing rate (tuples/sec)",
		Series: series,
	}
}

// Ablations runs all ablation experiments.
func Ablations(cfg RunConfig) []*Experiment {
	return []*Experiment{
		AblationSelection(cfg),
		AblationMissEstimator(cfg),
		AblationProfilingRate(cfg),
		AblationReplacement(cfg),
		AblationPriming(cfg),
	}
}
