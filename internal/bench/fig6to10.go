package bench

import (
	"fmt"

	"acache/internal/core"
	"acache/internal/planner"
	"acache/internal/query"
	"acache/internal/synth"
	"acache/internal/tuple"
)

// threeWaySetup builds the Section 7.2 default workload for
// R(A) ⋈_A S(A,B) ⋈_B T(B): join attributes drawn from the same domain in
// the same (cyclic) order, multiplicity 1 in R and S and r in T, and ΔT's
// rate r times that of ΔR and ΔS. Windows default to the domain size so
// each value is resident exactly once in R and S.
type threeWaySetup struct {
	domainA int64 // R.A/S.A domain
	domainB int64 // S.B/T.B domain
	multT   int   // r: multiplicity of T.B
	winR    int
	winS    int
	winT    int
	rateR   float64
	rateS   float64
	rateT   float64
}

func defaultThreeWay() threeWaySetup {
	return threeWaySetup{
		domainA: 100, domainB: 100,
		multT: 5,
		winR:  100, winS: 100, winT: 100,
		rateR: 1, rateS: 1, rateT: 5,
	}
}

func (s threeWaySetup) workload() *workload {
	return &workload{
		q: threeWayQuery(),
		rels: []relSpec{
			{gen: synth.Tuples(synth.Counter(0, s.domainA, 1)), window: s.winR, rate: s.rateR},
			{gen: synth.Tuples(synth.Counter(0, s.domainA, 1), synth.Counter(0, s.domainB, 1)), window: s.winS, rate: s.rateS},
			{gen: synth.Tuples(synth.Counter(0, s.domainB, s.multT)), window: s.winT, rate: s.rateT},
		},
	}
}

// threeWayOrdering is the Figure 3 plan family: ΔR: S,T; ΔS: R,T; ΔT: S,R —
// the ordering under which the R⋈S segment in ΔT's pipeline is the single
// prefix-invariant candidate, probed on T.B.
func threeWayOrdering() planner.Ordering {
	return planner.Ordering{{1, 2}, {0, 2}, {1, 0}}
}

// forcedRSCache returns the R⋈S candidate in ΔT's pipeline under
// threeWayOrdering — the cache Figures 6–8 force to be used.
func forcedRSCache(q *query.Query) *planner.Spec {
	cands := planner.Candidates(q, threeWayOrdering())
	for _, c := range cands {
		if c.Pipeline == 2 && c.Start == 0 && c.End == 1 {
			return c
		}
	}
	panic(fmt.Sprintf("bench: forced R⋈S cache not among candidates %v", cands))
}

// mjoinThreeWay measures the best MJoin (no caches) on the workload.
func mjoinThreeWay(w *workload, cfg RunConfig, scan []string) float64 {
	en, err := core.NewEngine(w.q, threeWayOrdering(), core.Config{
		DisableCaching: true,
		Seed:           cfg.Seed,
		ScanOnly:       scanAttrs(w.q, scan),
	})
	if err != nil {
		panic(err)
	}
	return measureEngine(en, w.source(), cfg)
}

// cachedThreeWay measures the forced-cache plan on the workload.
func cachedThreeWay(w *workload, cfg RunConfig, scan []string) float64 {
	en, err := core.NewEngine(w.q, threeWayOrdering(), core.Config{
		ForcedCaches: []*planner.Spec{forcedRSCache(w.q)},
		Seed:         cfg.Seed,
		ScanOnly:     scanAttrs(w.q, scan),
	})
	if err != nil {
		panic(err)
	}
	return measureEngine(en, w.source(), cfg)
}

func scanAttrs(q *query.Query, refs []string) (out []tuple.Attr) {
	for _, ref := range refs {
		switch ref {
		case "S.B":
			out = append(out, tuple.Attr{Rel: 1, Name: "B"})
		default:
			panic("bench: unknown scan attr " + ref)
		}
	}
	return out
}

// Fig6 — "Varying cache hit probability": the multiplicity of T.B is swept
// 1–10; higher multiplicity means consecutive ΔT tuples probe the same key
// and hit. The paper's finding: caching beats the MJoin over the whole
// range, even at multiplicity 1 (window deletes re-probe their insert's
// key), with the gap growing with hit probability.
func Fig6(cfg RunConfig) *Experiment {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var mj, ca []float64
	for _, r := range xs {
		s := defaultThreeWay()
		s.multT = int(r)
		s.rateT = r // ΔT's rate is r times ΔR's and ΔS's (Section 7.2)
		w := s.workload()
		mj = append(mj, mjoinThreeWay(w, cfg, nil))
		ca = append(ca, cachedThreeWay(w, cfg, nil))
	}
	return &Experiment{
		ID:     "fig6",
		Title:  "Varying cache hit probability (multiplicity of T.B)",
		XLabel: "multiplicity",
		YLabel: "avg processing rate (tuples/sec)",
		Series: []Series{
			{Label: "With caches", X: xs, Y: ca},
			{Label: "MJoin", X: xs, Y: mj},
			ratioSeries(xs, mj, ca),
		},
	}
}

// Fig7 — "Varying join selectivity": the number of R⋈S tuples joining each
// ΔT tuple is swept by scaling the windows of R and S against the shared
// domain. The paper's finding: caching wins across the whole range, with
// the smallest relative win near selectivity 1 (each hit saves more work as
// selectivity grows, but each miss also inserts more tuples).
func Fig7(cfg RunConfig) *Experiment {
	xs := []float64{0.25, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4}
	var mj, ca []float64
	for _, sel := range xs {
		s := defaultThreeWay()
		// matches per ΔT tuple ≈ winS/domainB; winR scales with winS so
		// each S tuple keeps exactly one R partner.
		s.domainA = 400
		s.domainB = 400
		s.winS = int(sel * float64(s.domainB))
		if s.winS < 1 {
			s.winS = 1
		}
		s.winR = s.winS
		w := s.workload()
		mj = append(mj, mjoinThreeWay(w, cfg, nil))
		ca = append(ca, cachedThreeWay(w, cfg, nil))
	}
	return &Experiment{
		ID:     "fig7",
		Title:  "Varying join selectivity for T tuples",
		XLabel: "selectivity",
		YLabel: "avg processing rate (tuples/sec)",
		Series: []Series{
			{Label: "With caches", X: xs, Y: ca},
			{Label: "MJoin", X: xs, Y: mj},
			ratioSeries(xs, mj, ca),
		},
	}
}

// Fig8 — "Varying update to probe ratio": the rate of updates to R⋈S
// relative to the cache's probe rate (ΔT's rate) is swept. The paper's
// finding: caching degrades as the update rate grows but remains ahead even
// past ratio 1, because a cache update costs far less than the work a hit
// saves.
func Fig8(cfg RunConfig) *Experiment {
	xs := []float64{0.25, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4}
	var mj, ca []float64
	for _, ratio := range xs {
		s := defaultThreeWay()
		// Each ΔR/ΔS append changes exactly one R⋈S tuple (multiplicity
		// 1, windows = domain), so rate(R⋈S) ≈ rateR + rateS.
		s.rateT = 1
		s.multT = 5
		s.rateR = ratio / 2
		s.rateS = ratio / 2
		w := s.workload()
		mj = append(mj, mjoinThreeWay(w, cfg, nil))
		ca = append(ca, cachedThreeWay(w, cfg, nil))
	}
	return &Experiment{
		ID:     "fig8",
		Title:  "Varying update to probe ratio (rate(R⋈S)/rate(T))",
		XLabel: "ratio",
		YLabel: "avg processing rate (tuples/sec)",
		Series: []Series{
			{Label: "With caches", X: xs, Y: ca},
			{Label: "MJoin", X: xs, Y: mj},
			ratioSeries(xs, mj, ca),
		},
	}
}

// Fig9 — "Varying number of joins": the n-way join R1 ⋈_A … ⋈_A Rn for
// n = 3…9, multiplicity 1 for ⌊n/2⌋ of the streams and 5 for the rest,
// full A-Caching (adaptive selection over all candidates) against the
// MJoin. The paper's finding: the improvement is maintained across the
// range (their 7-way run used 6 of 15 candidate caches).
func Fig9(cfg RunConfig) *Experiment {
	xs := []float64{3, 4, 5, 6, 7, 8, 9}
	var mj, ca []float64
	var notes []string
	for _, nf := range xs {
		n := int(nf)
		w := nWayWorkload(n)
		mjEn, err := core.NewEngine(w.q, nil, core.Config{DisableCaching: true, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		mj = append(mj, measureEngine(mjEn, w.source(), cfg))
		caEn, err := core.NewEngine(w.q, nil, core.Config{
			ReoptInterval: cfg.Measure / 8,
			// The expensive high-multiplicity segments sit at the tails of
			// the pipelines where the prefix invariant fails; Section 6's
			// candidates (self-maintained here) are what capture them.
			GCQuota: 6,
			Seed:    cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		ca = append(ca, measureEngine(caEn, w.source(), cfg))
		notes = append(notes, fmt.Sprintf("n=%d: %d caches in use at end of run", n, len(caEn.UsedCaches())))
	}
	return &Experiment{
		ID:     "fig9",
		Title:  "Varying number of joining relations",
		XLabel: "relations",
		YLabel: "avg processing rate (tuples/sec)",
		Series: []Series{
			{Label: "With caches", X: xs, Y: ca},
			{Label: "MJoin", X: xs, Y: mj},
			ratioSeries(xs, mj, ca),
		},
		Notes: notes,
	}
}

func nWayWorkload(n int) *workload {
	w := &workload{q: nWayQuery(n)}
	// Values are independent uniform draws ("window sizes set
	// appropriately to get the desired join selectivity", Section 7.1):
	// per-level join fanout stays ≈ window/domain = 0.5 regardless of n,
	// so result sizes do not explode combinatorially with the relation
	// count and the measurement reflects join processing rather than
	// result emission (which no plan can avoid). Multiplicity 5 on half
	// the streams (the paper's setup) repeats each drawn value five times,
	// raising probe-key repetition — cache hit probability — without
	// correlating the windows.
	const domain = 100
	for i := 0; i < n; i++ {
		var gen synth.ValueGen = synth.Uniform(0, domain, int64(1000+i))
		if i >= n/2 {
			gen = synth.Repeat(gen, 5)
		}
		w.rels = append(w.rels, relSpec{
			gen:    synth.Tuples(gen),
			window: 50,
			rate:   1,
		})
	}
	return w
}

// Fig10 — "Varying join cost": the hash index on S.B is dropped so ΔT's
// join with S runs as a nested loop; the number of tuples in S's window is
// swept. The S.B domain scales with the window so each probe still matches
// one tuple — isolating per-join cost, which grows linearly with |S|. The
// paper's finding: the relative benefit of caching grows sharply with join
// cost.
func Fig10(cfg RunConfig) *Experiment {
	xs := []float64{100, 250, 500, 750, 1000, 1500, 2000}
	var mj, ca []float64
	for _, ws := range xs {
		s := defaultThreeWay()
		s.winS = int(ws)
		s.domainB = int64(ws) // keep one match per probe as |S| grows
		s.winT = 100
		w := s.workload()
		mj = append(mj, mjoinThreeWay(w, cfg, []string{"S.B"}))
		ca = append(ca, cachedThreeWay(w, cfg, []string{"S.B"}))
	}
	return &Experiment{
		ID:     "fig10",
		Title:  "Varying join cost (nested-loop join with S, no index on S.B)",
		XLabel: "|S| window",
		YLabel: "avg processing rate (tuples/sec)",
		Series: []Series{
			{Label: "With caches", X: xs, Y: ca},
			{Label: "MJoin", X: xs, Y: mj},
			ratioSeries(xs, mj, ca),
		},
	}
}
